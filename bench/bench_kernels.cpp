// E8 — kernel-level microbenchmarks (google-benchmark): the building
// blocks whose costs the models in core/perf.hpp abstract. Useful for
// porting the calibration to a new host.

#include <benchmark/benchmark.h>

#include <map>
#include <vector>

#include "core/analysis.hpp"
#include "grape/cycle_sim.hpp"
#include "grape/driver.hpp"
#include "grape/host_reference.hpp"
#include "ic/plummer.hpp"
#include "ic/uniform.hpp"
#include "math/fft.hpp"
#include "math/lns.hpp"
#include "math/morton.hpp"
#include "math/rng.hpp"
#include "tree/groupwalk.hpp"
#include "tree/tree.hpp"

namespace {

using namespace g5;
using grape::Vec3d;

const model::ParticleSet& cached_plummer(std::size_t n) {
  static std::map<std::size_t, model::ParticleSet> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    ic::PlummerConfig pc;
    pc.n = n;
    pc.seed = 31;
    it = cache.emplace(n, ic::make_plummer(pc)).first;
  }
  return it->second;
}

void BM_TreeBuild(benchmark::State& state) {
  const auto& pset = cached_plummer(static_cast<std::size_t>(state.range(0)));
  tree::BhTree tree;
  for (auto _ : state) {
    tree.build(pset);
    benchmark::DoNotOptimize(tree.node_count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TreeBuild)->Arg(1024)->Arg(8192)->Arg(32768);

void BM_WalkOriginal(benchmark::State& state) {
  const auto& pset = cached_plummer(static_cast<std::size_t>(state.range(0)));
  tree::BhTree tree;
  tree.build(pset);
  tree::InteractionList list;
  const tree::WalkConfig wc{0.75};
  std::size_t i = 0;
  for (auto _ : state) {
    tree::walk_original(tree, tree.sorted_pos()[i % pset.size()], wc, list);
    benchmark::DoNotOptimize(list.size());
    ++i;
  }
}
BENCHMARK(BM_WalkOriginal)->Arg(8192)->Arg(32768);

void BM_WalkGroup(benchmark::State& state) {
  const auto& pset = cached_plummer(8192);
  tree::BhTree tree;
  tree.build(pset);
  const auto groups = tree::collect_groups(
      tree, tree::GroupConfig{static_cast<std::uint32_t>(state.range(0))});
  tree::InteractionList list;
  const tree::WalkConfig wc{0.75};
  std::size_t g = 0;
  for (auto _ : state) {
    tree::walk_group(tree, groups[g % groups.size()], wc, list);
    benchmark::DoNotOptimize(list.size());
    ++g;
  }
}
BENCHMARK(BM_WalkGroup)->Arg(64)->Arg(256)->Arg(1024);

void BM_HostKernel(benchmark::State& state) {
  const auto& pset = cached_plummer(static_cast<std::size_t>(state.range(0)));
  const std::size_t n = pset.size();
  std::vector<Vec3d> acc(n);
  std::vector<double> pot(n);
  for (auto _ : state) {
    grape::host_forces_on_targets(
        std::span<const Vec3d>(pset.pos().data(), 256), pset.pos(),
        pset.mass(), 0.01, std::span<Vec3d>(acc.data(), 256),
        std::span<double>(pot.data(), 256));
    benchmark::DoNotOptimize(acc[0]);
  }
  state.SetItemsProcessed(state.iterations() * 256 *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_HostKernel)->Arg(4096)->Arg(16384);

void BM_PipelineEmulation(benchmark::State& state) {
  grape::PipelineNumerics num;
  num.exact_arithmetic = state.range(0) != 0;
  grape::Pipeline pipe(num);
  grape::PipelineScaling scaling;
  scaling.range_lo = -2.0;
  scaling.range_hi = 2.0;
  scaling.eps = 0.01;
  scaling.force_quantum = 1e-16;
  scaling.potential_quantum = 1e-16;
  pipe.configure(scaling);
  math::Rng rng(3);
  std::vector<grape::JWord> js;
  for (int k = 0; k < 1024; ++k) {
    js.push_back(pipe.encode_j(rng.in_unit_ball(), rng.uniform(0.5, 1.0)));
  }
  auto istate = pipe.encode_i(Vec3d{0.1, 0.2, 0.3});
  for (auto _ : state) {
    for (const auto& j : js) pipe.interact(istate, j);
    benchmark::DoNotOptimize(istate);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
  state.SetLabel(num.exact_arithmetic ? "exact-arithmetic" : "lns-datapath");
}
BENCHMARK(BM_PipelineEmulation)->Arg(0)->Arg(1);

void BM_LnsRoundTrip(benchmark::State& state) {
  math::LnsFormat fmt(static_cast<int>(state.range(0)));
  math::Rng rng(9);
  std::vector<double> xs(1024);
  for (auto& x : xs) x = rng.uniform(1e-6, 1e6);
  for (auto _ : state) {
    double sink = 0.0;
    for (double x : xs) sink += fmt.quantize(x);
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_LnsRoundTrip)->Arg(8)->Arg(12);

void BM_MortonEncode(benchmark::State& state) {
  math::Rng rng(17);
  std::vector<math::Vec3d> ps(1024);
  for (auto& p : ps) p = rng.in_unit_ball();
  const math::Vec3d lo{-1.0, -1.0, -1.0};
  for (auto _ : state) {
    std::uint64_t sink = 0;
    for (const auto& p : ps) sink ^= math::morton_key(p, lo, 2.0);
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_MortonEncode);

void BM_Fft3D(benchmark::State& state) {
  math::Grid3C grid(static_cast<std::size_t>(state.range(0)));
  grid.at(1, 2, 3) = math::Complex(1.0, 0.0);
  for (auto _ : state) {
    grid.forward();
    grid.inverse();
    benchmark::DoNotOptimize(grid.at(1, 2, 3));
  }
}
BENCHMARK(BM_Fft3D)->Arg(16)->Arg(32);

void BM_EvaluateListQuadrupole(benchmark::State& state) {
  const bool quad = state.range(0) != 0;
  const auto& pset = cached_plummer(8192);
  tree::BhTree tree;
  tree::TreeBuildConfig cfg;
  cfg.quadrupole = quad;
  tree.build(pset, cfg);
  tree::InteractionList list;
  tree::WalkConfig wc;
  wc.use_quadrupole = quad;
  tree::walk_original(tree, pset.pos()[0], wc, list);
  Vec3d acc;
  double pot;
  const Vec3d target = pset.pos()[0];
  for (auto _ : state) {
    tree::evaluate_list_host(list, {&target, 1}, 0.01, {&acc, 1}, {&pot, 1});
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(list.size()));
  state.SetLabel(quad ? "monopole+quadrupole" : "monopole");
}
BENCHMARK(BM_EvaluateListQuadrupole)->Arg(0)->Arg(1);

void BM_CorrelationFunction(benchmark::State& state) {
  const auto& pset = cached_plummer(static_cast<std::size_t>(state.range(0)));
  core::CorrelationConfig cfg;
  cfg.r_min = 0.05;
  cfg.r_max = 2.0;
  cfg.bins = 12;
  for (auto _ : state) {
    const auto xi = core::correlation_function(pset, cfg);
    benchmark::DoNotOptimize(xi.xi[0]);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CorrelationFunction)->Arg(4096)->Arg(16384);

void BM_CycleSim(benchmark::State& state) {
  const grape::SystemConfig cfg = grape::SystemConfig::paper_system();
  for (auto _ : state) {
    const auto r = grape::simulate_system_call(cfg, 2000, 13431);
    benchmark::DoNotOptimize(r.seconds);
  }
}
BENCHMARK(BM_CycleSim);

void BM_GrapeForceCall(benchmark::State& state) {
  const auto src = ic::make_uniform_cube(
      static_cast<std::size_t>(state.range(0)), -1.0, 1.0, 1.0, 5);
  grape::Grape5Device device;
  device.set_range(-2.0, 2.0, src.mass()[0]);
  device.set_eps(0.01);
  device.set_j(src.pos(), src.mass());
  std::vector<Vec3d> acc(128);
  std::vector<double> pot(128);
  for (auto _ : state) {
    device.compute_forces(std::span<const Vec3d>(src.pos().data(), 128), acc,
                          pot);
    benchmark::DoNotOptimize(acc[0]);
  }
  state.SetItemsProcessed(state.iterations() * 128 * state.range(0));
}
BENCHMARK(BM_GrapeForceCall)->Arg(1024)->Arg(4096);

}  // namespace
