// E2 — Section 3: the host/GRAPE tradeoff and the optimal group size n_g.
//
// "The modified tree algorithm reduces the calculation cost of the host
//  computer by roughly a factor of n_g ... the amount of work on GRAPE-5
//  increases ... There is, therefore, an optimal n_g at which the total
//  computing time is minimum. ... For the present configuration, the
//  optimal n_g is around 2000."
//
// We freeze one clustered snapshot, sweep n_crit, measure the walk
// workload (groups, list entries, interactions) and evaluate modeled host
// and GRAPE times for (a) the paper's 1999 host/GRAPE-5 configuration at
// the paper's N and (b) this run's N. The sweep prints the series a
// time-vs-n_g figure would plot; the optimum for (a) should land near
// n_g ~ 2000.
//
//   ./bench_e2_ng_sweep [--grid 64] [--theta 0.75]

#include <cmath>
#include <cstdio>

#include "core/perf.hpp"
#include "ic/zeldovich.hpp"
#include "model/units.hpp"
#include "tree/groupwalk.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace g5;
  util::Options opt(argc, argv);

  // A clustered snapshot: evolve nothing, just use the Zel'dovich field
  // (already mildly clustered); workload counts depend on geometry, not
  // dynamics.
  ic::CosmologicalSphereConfig cc;
  cc.grid_n = static_cast<std::size_t>(opt.get_int("grid", 64));
  while ((cc.grid_n & (cc.grid_n - 1)) != 0) ++cc.grid_n;
  const auto icr = ic::make_cosmological_sphere(cc);
  const model::ParticleSet& pset = icr.particles;
  const auto n = pset.size();

  const double theta = opt.get_double("theta", 0.75);
  const grape::SystemConfig system = grape::SystemConfig::paper_system();
  const core::HostCostModel host;

  tree::BhTree tree;
  tree.build(pset);

  std::printf("E2: optimal group size n_g (N=%zu snapshot, theta=%g)\n"
              "paper claim: optimum n_g ~ 2000 at N = 2.16e6 on the 1999 "
              "host/GRAPE ratio\n\n", n, theta);

  util::Table t({"n_crit", "groups", "mean n_g", "mean list", "inter/step",
                 "host s/step*", "grape s/step*", "total s/step*"});

  double best_total = 1e300, best_ng = 0.0;
  for (std::uint32_t n_crit : {8u, 16u, 32u, 64u, 128u, 256u, 512u, 1024u,
                               2048u, 4096u, 8192u, 16384u, 32768u}) {
    if (n_crit > n) break;
    const auto groups =
        tree::collect_groups(tree, tree::GroupConfig{n_crit});
    tree::WalkStats stats;
    const tree::WalkConfig wc{theta};
    for (const auto& g : groups) {
      tree::count_group(tree, g, wc, &stats);
    }

    // Scale the measured per-particle workload up to the paper's N so the
    // host/GRAPE balance is the 1999 one (list lengths grow ~log N; this
    // underestimates them slightly, which shifts no conclusions).
    const double scale = 2159038.0 / static_cast<double>(n);
    tree::WalkStats scaled = stats;
    scaled.lists = static_cast<std::uint64_t>(
        static_cast<double>(stats.lists) * scale);
    scaled.list_entries = static_cast<std::uint64_t>(
        static_cast<double>(stats.list_entries) * scale);
    scaled.interactions = static_cast<std::uint64_t>(
        static_cast<double>(stats.interactions) * scale);
    const auto point = core::sweep_point(system, host, 2159038, scaled);

    const double mean_ng = static_cast<double>(n) /
                           static_cast<double>(groups.size());
    char c0[16], c1[16], c2[16], c3[16], c4[20], c5[16], c6[16], c7[16];
    std::snprintf(c0, sizeof(c0), "%u", n_crit);
    std::snprintf(c1, sizeof(c1), "%zu", groups.size());
    std::snprintf(c2, sizeof(c2), "%.1f", mean_ng);
    std::snprintf(c3, sizeof(c3), "%.0f", stats.mean_list());
    std::snprintf(c4, sizeof(c4), "%.3e",
                  static_cast<double>(stats.interactions));
    std::snprintf(c5, sizeof(c5), "%.2f", point.host_s);
    std::snprintf(c6, sizeof(c6), "%.2f", point.grape_s);
    std::snprintf(c7, sizeof(c7), "%.2f", point.total_s());
    t.add_row({c0, c1, c2, c3, c4, c5, c6, c7});

    if (point.total_s() < best_total) {
      best_total = point.total_s();
      best_ng = point.n_g;
    }
  }
  t.print();
  std::printf("\n(*) modeled seconds per step at the paper's N = 2,159,038 "
              "on the 1999 configuration.\n");
  std::printf("optimum of the sweep: n_g ~ %.0f (paper: ~2000)\n", best_ng);

  // Section 3's explicit claim: "The optimal n_g strongly depends on the
  // ratio of the speed of the host computer and GRAPE." Re-run the sweep
  // with faster/slower hosts (the same workloads, scaled host constants).
  std::printf("\noptimal n_g vs host speed (same GRAPE-5, host scaled):\n");
  util::Table ht({"host speed", "optimal n_g", "total s/step at optimum"});
  for (double speedup : {0.25, 1.0, 4.0, 16.0}) {
    core::HostCostModel scaled_host;
    scaled_host.per_particle_build_us /= speedup;
    scaled_host.per_particle_step_us /= speedup;
    scaled_host.per_list_entry_us /= speedup;
    scaled_host.per_group_us /= speedup;
    double opt_total = 1e300, opt_ng = 0.0;
    for (std::uint32_t n_crit : {8u, 16u, 32u, 64u, 128u, 256u, 512u, 1024u,
                                 2048u, 4096u, 8192u, 16384u, 32768u}) {
      if (n_crit > n) break;
      const auto groups =
          tree::collect_groups(tree, tree::GroupConfig{n_crit});
      tree::WalkStats stats;
      for (const auto& g : groups) {
        tree::count_group(tree, g, tree::WalkConfig{theta}, &stats);
      }
      const double scale = 2159038.0 / static_cast<double>(n);
      tree::WalkStats scaled = stats;
      scaled.lists = static_cast<std::uint64_t>(
          static_cast<double>(stats.lists) * scale);
      scaled.list_entries = static_cast<std::uint64_t>(
          static_cast<double>(stats.list_entries) * scale);
      scaled.interactions = static_cast<std::uint64_t>(
          static_cast<double>(stats.interactions) * scale);
      const auto point =
          core::sweep_point(system, scaled_host, 2159038, scaled);
      if (point.total_s() < opt_total) {
        opt_total = point.total_s();
        opt_ng = point.n_g;
      }
    }
    char c0[24], c1[16], c2[16];
    std::snprintf(c0, sizeof(c0), "%.2fx 1999 host", speedup);
    std::snprintf(c1, sizeof(c1), "%.0f", opt_ng);
    std::snprintf(c2, sizeof(c2), "%.2f", opt_total);
    ht.add_row({c0, c1, c2});
  }
  ht.print();
  std::printf("(a faster host shifts the optimum to smaller groups — "
              "shorter, more accurate lists;\na slower host pushes work "
              "onto GRAPE with bigger groups. The 2000-particle optimum\n"
              "is a property of the 1999 balance, exactly as Section 3 "
              "says.)\n");
  return 0;
}
