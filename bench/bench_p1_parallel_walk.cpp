// P1 — parallel group-walk scaling on the real host.
//
// The paper's host walked the tree on one Alpha core while GRAPE-5 did the
// force arithmetic; here the walk + host evaluation of HostTreeEngine
// (modified algorithm) runs on 1..max host threads over the same snapshot
// and we report measured wall clock, speedup over the serial run, and the
// HostCostModel projection for the same core count. Forces are checked
// bitwise against the serial run at every thread count.
//
//   ./bench_p1_parallel_walk [--n 131072] [--theta 0.75] [--ncrit 256]
//                            [--maxthreads 0 (auto)] [--eps 0.02]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/engines.hpp"
#include "core/perf.hpp"
#include "ic/plummer.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"
#include "util/options.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace g5;
  util::Options opt(argc, argv);
  const auto n = static_cast<std::size_t>(opt.get_int("n", 131072));
  const double theta = opt.get_double("theta", 0.75);
  const double eps = opt.get_double("eps", 0.02);
  const auto n_crit = static_cast<std::uint32_t>(opt.get_int("ncrit", 256));
  auto max_threads =
      static_cast<unsigned>(opt.get_int("maxthreads", 0));
  if (max_threads == 0) max_threads = util::resolve_thread_count();

  ic::PlummerConfig pc;
  pc.n = n;
  pc.seed = 101;
  const auto base = ic::make_plummer(pc);

  std::printf(
      "P1: parallel group walk, N=%zu, theta=%g, n_crit=%u, "
      "up to %u threads\n\n",
      n, theta, n_crit, max_threads);

  auto run = [&](std::uint32_t threads, model::ParticleSet& pset) {
    core::ForceParams fp;
    fp.eps = eps;
    fp.theta = theta;
    fp.n_crit = n_crit;
    fp.threads = threads;
    core::HostTreeEngine engine(fp, core::HostTreeEngine::Mode::Modified);
    util::Stopwatch watch;
    engine.compute(pset);
    return std::pair{watch.elapsed(), engine.stats()};
  };

  model::ParticleSet serial = base;
  const auto [serial_s, serial_stats] = run(1, serial);

  util::Table t({"threads", "wall s", "speedup", "modeled", "walk cpu-s",
                 "kernel cpu-s", "bitwise"});
  core::HostCostModel model;
  t.add_row({"1", util::sci(serial_s), "1.00", "1.00",
             util::sci(serial_stats.seconds_walk),
             util::sci(serial_stats.seconds_kernel), "ref"});

  bool all_identical = true;
  for (unsigned threads = 2; threads <= max_threads; threads *= 2) {
    model::ParticleSet pset = base;
    const auto [wall_s, stats] = run(threads, pset);
    bool identical = true;
    for (std::size_t i = 0; i < pset.size(); ++i) {
      if (!(pset.acc()[i] == serial.acc()[i]) ||
          pset.pot()[i] != serial.pot()[i]) {
        identical = false;
        break;
      }
    }
    all_identical = all_identical && identical;
    model.threads = threads;
    char speedup[32], modeled[32];
    std::snprintf(speedup, sizeof speedup, "%.2f", serial_s / wall_s);
    std::snprintf(modeled, sizeof modeled, "%.2f", model.walk_speedup());
    t.add_row({std::to_string(threads), util::sci(wall_s), speedup, modeled,
               util::sci(stats.seconds_walk), util::sci(stats.seconds_kernel),
               identical ? "yes" : "NO"});
  }
  t.print();
  std::printf(
      "\nspeedup = serial wall / threaded wall (walk + host kernel phases;"
      "\nsee bench_p4_treebuild for the build phase on its own)."
      "\nmodeled = HostCostModel.walk_speedup()."
      "\nbitwise = forces identical to the serial run.\n");
  if (!all_identical) {
    std::printf("ERROR: threaded run diverged from serial forces\n");
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
