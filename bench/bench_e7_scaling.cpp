// E7 — context for Section 1: O(N^2) direct summation vs O(N log N) tree,
// on the host and on the (modeled) GRAPE-5.
//
// For an N sweep we measure per-force-phase work (interactions) and wall
// clock for host-direct and host-tree, and modeled GRAPE-5 time for
// grape-direct and grape-tree shapes, showing (a) the N^2 vs N log N
// growth and (b) where the tree overtakes direct summation on each
// platform (the crossover moves up on GRAPE because its direct rate is so
// high — why a special-purpose machine still wants the tree at N ~ 1e6).
//
//   ./bench_e7_scaling [--nmax 16384] [--theta 0.75] [--ncrit 256]

#include <cstdio>
#include <vector>

#include "core/engines.hpp"
#include "core/perf.hpp"
#include "ic/plummer.hpp"
#include "tree/groupwalk.hpp"
#include "util/options.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace g5;
  util::Options opt(argc, argv);
  const auto nmax = static_cast<std::size_t>(opt.get_int("nmax", 16384));
  const double theta = opt.get_double("theta", 0.75);
  const auto n_crit = static_cast<std::uint32_t>(opt.get_int("ncrit", 256));

  const grape::SystemConfig system = grape::SystemConfig::paper_system();
  const grape::TimingModel timing(system);
  const core::HostCostModel host;

  std::printf("E7: direct vs tree scaling (theta=%g, n_crit=%u)\n\n", theta,
              n_crit);
  util::Table t({"N", "tree inter/step", "direct inter/step",
                 "host-tree s*", "host-direct s*", "grape-tree s*",
                 "grape-direct s*"});

  for (std::size_t n = 1024; n <= nmax; n *= 2) {
    ic::PlummerConfig pc;
    pc.n = n;
    pc.seed = 77;
    const auto pset = ic::make_plummer(pc);

    tree::BhTree tree;
    tree.build(pset);
    tree::WalkStats stats;
    const tree::WalkConfig wc{theta};
    for (const auto& g :
         tree::collect_groups(tree, tree::GroupConfig{n_crit})) {
      tree::count_group(tree, g, wc, &stats);
    }

    const double direct_inter = static_cast<double>(n) *
                                static_cast<double>(n);

    // Modeled times on the 1999 configuration.
    const auto tree_point = core::sweep_point(system, host, n, stats);
    // Direct on GRAPE: one huge call, i = j = all (jmem chunking ignored
    // in the model: it only adds DMA, included below).
    const auto direct_call = timing.force_call(n, n, true);
    // Direct on the 1999 host: calibrated ~55 flops/pair at ~200 Mflops
    // sustained -> ~0.28 us per pair; consistent with the host model's
    // per-entry constants.
    const double host_direct_s = 0.28e-6 * direct_inter;

    char c0[12], c1[16], c2[16], c3[16], c4[16], c5[16], c6[16];
    std::snprintf(c0, sizeof(c0), "%zu", n);
    std::snprintf(c1, sizeof(c1), "%.3e",
                  static_cast<double>(stats.interactions));
    std::snprintf(c2, sizeof(c2), "%.3e", direct_inter);
    std::snprintf(c3, sizeof(c3), "%.3f", tree_point.host_s +
                  0.75e-6 * static_cast<double>(stats.interactions));
    std::snprintf(c4, sizeof(c4), "%.3f", host_direct_s);
    std::snprintf(c5, sizeof(c5), "%.4f", tree_point.total_s());
    std::snprintf(c6, sizeof(c6), "%.4f", direct_call.total());
    t.add_row({c0, c1, c2, c3, c4, c5, c6});
  }
  t.print();

  std::printf(
      "\n(*) modeled seconds per force phase on the 1999 configuration: "
      "host columns include\nevaluating the kernels on the host; grape "
      "columns run the kernels on GRAPE-5.\nhost-tree evaluates its own "
      "lists (0.75 us/interaction on the DS10); grape-tree ships\nthem to "
      "the boards. The direct/tree crossover sits orders of magnitude "
      "higher on GRAPE\nthan on the host — and at N ~ 2e6 the tree still "
      "wins by ~100x, which is the paper's\nwhole premise.\n");
  return 0;
}
