// P3 — async device pipeline: walk/eval overlap on GrapeTreeEngine.
//
// The paper's host built interaction lists while GRAPE-5 evaluated the
// previous ones (the asynchronous interface of Section 4); this bench
// measures what restoring that concurrency buys the emulator. The same
// snapshot runs through GrapeTreeEngine twice — synchronous
// (pipeline_depth=0: walk, then eval, strictly alternating) and
// pipelined (depth >= 2: walks overlap the AsyncDevice submitter thread,
// with the emulated boards running board-parallel inside each job) — and
// we report end-to-end wall clock, the measured overlap fraction
// (g5.pipeline.overlap: how much of the cheaper phase was hidden), and
// the speedup. Forces are checked bitwise between the two runs.
//
// On a single host core the pipeline cannot help (all phases timeshare
// one core) and the speedup prints near 1.0; the acceptance target
// (>= 1.25x at N >= 64k) applies to multi-core hosts. --min-speedup
// turns the target into a hard failure for CI gating.
//
//   ./bench_p3_pipeline [--n 65536] [--theta 0.75] [--ncrit 256]
//                       [--eps 0.02] [--threads 0 (auto)] [--depth 2]
//                       [--backend bit-exact|native] [--boards 0 (paper)]
//                       [--min-speedup 0 (off)] [--json FILE]
//
// --backend selects the pipeline arithmetic (BackendKind): bit-exact is
// the bit-level datapath (the default; BENCH_p3.json's baseline), native
// evaluates the same lists in plain double. BENCH_p6.json records both.
// --boards scales the emulated cluster (0 = the paper's 2 boards); more
// boards means more board-parallel lanes inside each device job, and the
// forces stay bitwise-identical across B (docs/scaling.md; BENCH_p8.json
// records the --boards {1,2,4} sweep for both backends).

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/engines.hpp"
#include "ic/plummer.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "util/options.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

struct RunResult {
  double wall_s = 0.0;
  double walk_cpu_s = 0.0;
  double kernel_s = 0.0;
  double overlap = 0.0;
  g5::model::ParticleSet pset;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace g5;
  util::Options opt(argc, argv);
  const auto n = static_cast<std::size_t>(opt.get_int("n", 65536));
  const double theta = opt.get_double("theta", 0.75);
  const double eps = opt.get_double("eps", 0.02);
  const auto n_crit = static_cast<std::uint32_t>(opt.get_int("ncrit", 256));
  const auto threads = static_cast<std::uint32_t>(opt.get_int("threads", 0));
  const auto depth = static_cast<std::uint32_t>(opt.get_int("depth", 2));
  const double min_speedup = opt.get_double("min-speedup", 0.0);
  const std::string json = opt.get_string("json", "");
  const auto boards = static_cast<std::uint32_t>(opt.get_int("boards", 0));
  const std::string backend_str = opt.get_string("backend", "bit-exact");
  grape::BackendKind backend = grape::BackendKind::BitExact;
  if (!grape::parse_backend(backend_str, backend)) {
    std::printf("ERROR: unknown --backend '%s' (bit-exact, native)\n",
                backend_str.c_str());
    return EXIT_FAILURE;
  }

  ic::PlummerConfig pc;
  pc.n = n;
  pc.seed = 211;
  const auto base = ic::make_plummer(pc);

  std::printf(
      "P3: async device pipeline, N=%zu, theta=%g, n_crit=%u, "
      "threads=%u (0=auto: %u), depth=%u, backend=%s, boards=%u (0=paper)\n\n",
      n, theta, n_crit, threads, util::resolve_thread_count(threads), depth,
      std::string(grape::backend_name(backend)).c_str(), boards);

  obs::set_enabled(true);
  auto run = [&](std::uint32_t pipeline_depth) {
    RunResult r;
    r.pset = base;
    core::ForceParams fp;
    fp.eps = eps;
    fp.theta = theta;
    fp.n_crit = n_crit;
    fp.threads = threads;
    fp.pipeline_depth = pipeline_depth;
    fp.backend = backend;
    fp.boards = boards;
    // Fresh engine + fresh device per run: no cross-run device state.
    auto engine = core::make_engine("grape-tree", fp);
    obs::gauge("g5.pipeline.overlap").set(0.0);
    util::Stopwatch watch;
    engine->compute(r.pset);
    r.wall_s = watch.elapsed();
    r.walk_cpu_s = engine->stats().seconds_walk;
    r.kernel_s = engine->stats().seconds_kernel;
    r.overlap = obs::gauge("g5.pipeline.overlap").value();
    return r;
  };

  const RunResult sync = run(0);
  const RunResult piped = run(depth);

  bool identical = true;
  for (std::size_t i = 0; i < base.size(); ++i) {
    if (!(piped.pset.acc()[i] == sync.pset.acc()[i]) ||
        piped.pset.pot()[i] != sync.pset.pot()[i]) {
      identical = false;
      break;
    }
  }

  const double speedup = piped.wall_s > 0.0 ? sync.wall_s / piped.wall_s : 0.0;
  char speedup_str[32], overlap_str[32];
  std::snprintf(speedup_str, sizeof speedup_str, "%.2f", speedup);
  std::snprintf(overlap_str, sizeof overlap_str, "%.2f", piped.overlap);

  util::Table t({"mode", "wall s", "walk cpu-s", "device s", "overlap",
                 "speedup", "bitwise"});
  t.add_row({"sync", util::sci(sync.wall_s), util::sci(sync.walk_cpu_s),
             util::sci(sync.kernel_s), "-", "1.00", "ref"});
  t.add_row({"pipelined", util::sci(piped.wall_s), util::sci(piped.walk_cpu_s),
             util::sci(piped.kernel_s), overlap_str, speedup_str,
             identical ? "yes" : "NO"});
  t.print();
  std::printf(
      "\noverlap = fraction of the pipeline wall the producer spent walking/"
      "\nsubmitting while device jobs were in flight (g5.pipeline.overlap;"
      "\n0 = strictly serial phases). device s = emulated-datapath wall"
      "\nfrom per-job accounting.\n");

  if (!json.empty()) {
    std::FILE* f = std::fopen(json.c_str(), "w");
    if (f == nullptr) {
      std::printf("ERROR: cannot write %s\n", json.c_str());
      return EXIT_FAILURE;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"run\": {\"n\": %zu, \"theta\": %g, \"n_crit\": %u, "
                 "\"threads\": %u, \"depth\": %u, \"backend\": \"%s\", "
                 "\"boards\": %u},\n"
                 "  \"sync\": {\"wall_s\": %.6g, \"walk_cpu_s\": %.6g, "
                 "\"device_s\": %.6g},\n"
                 "  \"pipelined\": {\"wall_s\": %.6g, \"walk_cpu_s\": %.6g, "
                 "\"device_s\": %.6g, \"overlap\": %.4g},\n"
                 "  \"speedup\": %.4g,\n"
                 "  \"bitwise_identical\": %s\n"
                 "}\n",
                 n, theta, n_crit, util::resolve_thread_count(threads), depth,
                 std::string(grape::backend_name(backend)).c_str(),
                 boards != 0 ? boards
                             : static_cast<std::uint32_t>(
                                   grape::SystemConfig::paper_system().boards),
                 sync.wall_s, sync.walk_cpu_s, sync.kernel_s, piped.wall_s,
                 piped.walk_cpu_s, piped.kernel_s, piped.overlap, speedup,
                 identical ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", json.c_str());
  }

  if (!identical) {
    std::printf("ERROR: pipelined forces diverged from synchronous run\n");
    return EXIT_FAILURE;
  }
  if (min_speedup > 0.0 && speedup < min_speedup) {
    std::printf("ERROR: speedup %.2f below required %.2f\n", speedup,
                min_speedup);
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
