// E1 — Section 5 statistics table (the paper's headline numbers).
//
// Three blocks:
//  (1) the paper's published row;
//  (2) the cycle/cost model evaluated on the paper's own workload
//      (N = 2,159,038, 999 steps, 2.90e13 interactions) — checks that our
//      GRAPE-5 timing model + calibrated host model reproduce the
//      published wall clock, Gflops and $/Mflops;
//  (3) a real scaled run on the emulated hardware (SCDM sphere, the same
//      code path end to end), with its measured workload pushed through
//      the same models, plus the measured-vs-modeled comparison.
//
//   ./bench_e1_section5 [--grid 32] [--steps 48] [--ncrit 256] [--theta 0.75]

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/engines.hpp"
#include "core/perf.hpp"
#include "core/simulation.hpp"
#include "ic/zeldovich.hpp"
#include "model/units.hpp"
#include "tree/groupwalk.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

namespace {

using namespace g5;

void print_report(const char* title, const core::PerformanceReport& r) {
  std::printf("\n%s\n", title);
  util::Table t({"quantity", "value"});
  t.add_row({"N", std::to_string(r.work.n_particles)});
  t.add_row({"timesteps", std::to_string(r.work.steps)});
  t.add_row({"total interactions (modified tree)",
             util::sci(static_cast<double>(r.work.interactions))});
  t.add_row({"average interaction-list length",
             util::sci(r.avg_list_length, 4)});
  t.add_row({"interactions (original tree, est.)",
             util::sci(static_cast<double>(r.work.original_interactions))});
  t.add_row({"GRAPE-5 compute (modeled)", util::human_seconds(r.grape_compute_s)});
  t.add_row({"GRAPE-5 DMA (modeled)", util::human_seconds(r.grape_dma_s)});
  t.add_row({"host time (modeled 1999 host)", util::human_seconds(r.host_s)});
  t.add_row({"total wall clock (modeled)", util::human_seconds(r.total_s)});
  t.add_row({"raw speed", util::human_flops(r.raw_flops)});
  t.add_row({"effective sustained speed", util::human_flops(r.effective_flops)});
  char usd[32];
  std::snprintf(usd, sizeof(usd), "$%.0f", r.usd_total);
  t.add_row({"system cost", usd});
  std::snprintf(usd, sizeof(usd), "$%.1f/Mflops", r.usd_per_mflops);
  t.add_row({"price/performance", usd});
  t.print();
}

}  // namespace

int main(int argc, char** argv) {
  util::Options opt(argc, argv);
  const grape::SystemConfig system = grape::SystemConfig::paper_system();
  const core::HostCostModel host_model;
  const grape::CostModel cost;

  // ---- block 1: the published numbers ---------------------------------
  std::printf("E1: Section 5 of Kawai, Fukushige & Makino (SC'99)\n");
  std::printf("\npaper (published):\n");
  util::Table paper({"quantity", "value"});
  paper.add_row({"N", "2159038"});
  paper.add_row({"timesteps", "999"});
  paper.add_row({"total interactions (modified tree)", "2.90e+13"});
  paper.add_row({"average interaction-list length", "13431"});
  paper.add_row({"interactions (original tree, est.)", "4.69e+12"});
  paper.add_row({"total wall clock", "30141 s (8.37 h)"});
  paper.add_row({"raw speed", "36.4 Gflops"});
  paper.add_row({"effective sustained speed", "5.92 Gflops"});
  paper.add_row({"system cost", "$40900"});
  paper.add_row({"price/performance", "$7.0/Mflops"});
  paper.print();

  // ---- block 2: model on the paper's workload -------------------------
  const core::RunWorkload pw = core::paper_workload();
  const auto projected = core::project_performance(system, host_model, cost, pw);
  print_report("model on the paper's workload (should reproduce the row "
               "above):", projected);

  // ---- block 3: scaled end-to-end run on the emulated hardware --------
  ic::CosmologicalSphereConfig cc;
  cc.grid_n = static_cast<std::size_t>(opt.get_int("grid", 32));
  while ((cc.grid_n & (cc.grid_n - 1)) != 0) ++cc.grid_n;
  cc.seed = static_cast<std::uint64_t>(opt.get_int("seed", 1999));

  const auto icr = ic::make_cosmological_sphere(cc);
  model::ParticleSet pset = icr.particles;
  const double G = model::gravitational_constant();
  for (auto& m : pset.mass()) m *= G;

  core::ForceParams fp;
  const double spacing = icr.box_size / static_cast<double>(cc.grid_n);
  fp.eps = opt.get_double("eps", 0.05 * spacing);
  fp.theta = opt.get_double("theta", 0.75);
  fp.n_crit = static_cast<std::uint32_t>(opt.get_int("ncrit", 256));

  auto engine = core::make_engine("grape-tree", fp);

  core::SimulationConfig sc;
  sc.steps = static_cast<std::uint64_t>(opt.get_int("steps", 48));
  const model::Cosmology cosmo(cc.cosmo);
  sc.dt_schedule = cosmo.log_a_timesteps(icr.a_start, 1.0, sc.steps);
  sc.log_every = 0;

  std::printf("\nscaled run on the emulated hardware: N=%zu, %llu steps, "
              "n_crit=%u, theta=%g\n",
              pset.size(), static_cast<unsigned long long>(sc.steps),
              fp.n_crit, fp.theta);

  // Track how the per-step mean list length evolves (the quantity behind
  // the paper's "average length of the interaction list is 13,431" —
  // clustering lengthens the lists as the run progresses).
  std::vector<double> step_mean_list;
  core::Simulation sim(*engine, sc);
  auto* gt = dynamic_cast<core::GrapeTreeEngine*>(engine.get());
  std::uint64_t prev_lists = 0, prev_entries = 0;
  sim.set_step_hook([&](std::uint64_t, const model::ParticleSet&) {
    const auto& walk = gt->stats().walk;
    if (walk.lists > prev_lists) {
      step_mean_list.push_back(
          static_cast<double>(walk.list_entries - prev_entries) /
          static_cast<double>(walk.lists - prev_lists));
      prev_lists = walk.lists;
      prev_entries = walk.list_entries;
    }
  });
  const auto summary = sim.run(pset);

  // Estimate the original-tree interaction count on the final snapshot
  // (the paper did this with five snapshots; E4 sweeps epochs).
  tree::BhTree tree;
  tree::TreeBuildConfig tb;
  tb.leaf_max = fp.leaf_max;
  tree.build(pset, tb);
  tree::WalkStats orig_stats;
  const tree::WalkConfig wc{fp.theta};
  for (std::size_t i = 0; i < pset.size(); ++i) {
    tree::count_original(tree, tree.sorted_pos()[i], wc, &orig_stats);
  }
  // Scale the per-step original count to the whole run.
  const double steps_d = static_cast<double>(summary.steps + 1);

  core::RunWorkload scaled;
  scaled.n_particles = pset.size();
  scaled.steps = summary.steps + 1;  // prime + steps force phases
  scaled.interactions = summary.engine.interactions;
  scaled.list_entries = summary.engine.walk.list_entries;
  scaled.groups = summary.engine.groups;
  scaled.original_interactions = static_cast<std::uint64_t>(
      static_cast<double>(orig_stats.interactions) * steps_d);
  const auto scaled_report =
      core::project_performance(system, host_model, cost, scaled);
  print_report("scaled run, measured workload through the same models:",
               scaled_report);

  std::printf("\nscaled run, measured quantities:\n");
  util::Table m({"quantity", "value"});
  m.add_row({"emulation wall clock (measured)",
             util::human_seconds(summary.wall_seconds)});
  m.add_row({"pipeline emulation time (measured)",
             util::human_seconds(summary.grape.emulation_wall)});
  m.add_row({"host tree build (measured)",
             util::human_seconds(summary.engine.seconds_tree_build)});
  m.add_row({"host tree walk (measured)",
             util::human_seconds(summary.engine.seconds_walk)});
  // A cosmological sphere's total energy is near zero (Hubble-flow kinetic
  // vs potential), so normalize the drift by |W| instead of |E|.
  const double w_final = std::fabs(summary.energy_final.potential);
  m.add_row({"energy drift / |W|",
             util::sci(std::fabs(summary.energy_final.total() -
                                 summary.energy_initial.total()) /
                       std::max(w_final, 1e-300))});
  m.add_row({"mean list length (measured)",
             util::sci(summary.engine.walk.mean_list(), 4)});
  m.add_row({"modified/original interaction ratio",
             util::sci(static_cast<double>(scaled.interactions) /
                           static_cast<double>(
                               std::max<std::uint64_t>(
                                   scaled.original_interactions, 1)),
                       3)});
  m.add_row({"bytes moved host<->GRAPE",
             util::human_bytes(static_cast<double>(
                 dynamic_cast<core::GrapeTreeEngine&>(*engine)
                     .device()
                     .system()
                     .bytes_moved()))});
  m.print();

  if (step_mean_list.size() >= 4) {
    std::printf("\nmean list length vs epoch (at paper scale clustering "
                "lengthens lists; at this\nminiature radius bulk dispersal "
                "competes — see E6's scale caveat):\n  start %.0f -> "
                "quarter %.0f -> half %.0f -> end %.0f\n",
                step_mean_list.front(),
                step_mean_list[step_mean_list.size() / 4],
                step_mean_list[step_mean_list.size() / 2],
                step_mean_list.back());
  }

  std::printf("\nNOTE: 'modeled' rows use the GRAPE-5 cycle/DMA model and the "
              "calibrated 1999-host cost model\n(DESIGN.md section 7); "
              "'measured' rows are wall clock of this emulation run.\n");
  return 0;
}
