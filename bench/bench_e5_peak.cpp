// E5 — Section 2: "The theoretical peak speed of the GRAPE-5 system is
// 109.44 Gflops. Total number of pipeline processors is 32. Each processor
// pipeline operates 38 operations in a clock cycle."
//
// Blocks:
//  (1) the architectural peak from the configuration (pipelines x clock x
//      38) — must print 109.44 Gflops;
//  (2) the timing model's effective rate vs call shape (ni, nj): the VMP
//      partial-fill penalty and the DMA overhead fraction, i.e. how much
//      of peak a direct N^2 call and a treecode group call actually reach;
//  (3) the emulator's own throughput on this machine (measured), for
//      context on bench runtimes.
//
//   ./bench_e5_peak [--nj 8192] [--reps 3]

#include <cstdio>
#include <vector>

#include "grape/cycle_sim.hpp"
#include "grape/driver.hpp"
#include "ic/uniform.hpp"
#include "util/options.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace g5;
  using grape::Vec3d;
  util::Options opt(argc, argv);

  const grape::SystemConfig cfg = grape::SystemConfig::paper_system();
  const grape::TimingModel timing(cfg);

  std::printf("E5: theoretical peak and sustained fraction\n\n");
  util::Table arch({"quantity", "value"});
  arch.add_row({"boards", std::to_string(cfg.boards)});
  arch.add_row({"chips/board", std::to_string(cfg.board.chips)});
  arch.add_row({"pipelines", std::to_string(cfg.total_pipelines())});
  arch.add_row({"pipeline clock", "90 MHz"});
  arch.add_row({"memory clock", "15 MHz"});
  arch.add_row({"VMP factor", std::to_string(cfg.board.vmp_factor)});
  arch.add_row({"flops/interaction", "38"});
  arch.add_row({"peak interaction rate",
                util::sci(cfg.peak_interaction_rate()) + " /s"});
  arch.add_row({"theoretical peak", util::human_flops(cfg.peak_flops())});
  arch.print();
  std::printf("(paper: 109.44 Gflops)\n\n");

  std::printf("modeled sustained fraction vs call shape:\n");
  util::Table t({"ni", "nj", "compute s", "dma s", "eff. rate",
                 "fraction of peak"});
  const std::size_t shapes[][2] = {
      {96, 8192},   {192, 8192},   {200, 8192},  {2000, 16384},
      {2000, 2000}, {8192, 8192},  {131072, 131072}};
  for (const auto& shape : shapes) {
    const std::size_t ni = shape[0], nj = shape[1];
    const auto call = timing.force_call(ni, nj, true);
    const double inter = static_cast<double>(ni) * static_cast<double>(nj);
    const double rate = inter / call.total();
    char c0[16], c1[16], c2[16], c3[16], c4[24], c5[12];
    std::snprintf(c0, sizeof(c0), "%zu", ni);
    std::snprintf(c1, sizeof(c1), "%zu", nj);
    std::snprintf(c2, sizeof(c2), "%.2e", call.compute);
    std::snprintf(c3, sizeof(c3), "%.2e",
                  call.dma_i + call.dma_j + call.dma_result);
    std::snprintf(c4, sizeof(c4), "%s",
                  util::human_flops(rate * grape::kFlopsPerInteraction).c_str());
    std::snprintf(c5, sizeof(c5), "%.1f%%",
                  100.0 * rate / cfg.peak_interaction_rate());
    t.add_row({c0, c1, c2, c3, c4, c5});
  }
  t.print();
  std::printf("(ni = 96k multiples fill every virtual pipeline slot; the "
              "treecode's ni ~ n_g = 2000\nagainst nj ~ 13000 lists runs "
              "the hardware near its sustained fraction)\n\n");

  // Cross-check: the discrete-event cycle simulation vs the closed form.
  std::printf("cycle simulation vs analytic compute model:\n");
  util::Table cs({"ni", "nj", "analytic s", "simulated s", "delta",
                  "sim utilization"});
  for (const auto& shape : shapes) {
    const std::size_t ni = shape[0], nj = shape[1];
    const double analytic =
        timing.board_compute_time(ni, timing.j_per_board(nj));
    const auto sim = grape::simulate_system_call(cfg, ni, nj);
    char c0[16], c1[16], c2[16], c3[16], c4[12], c5[12];
    std::snprintf(c0, sizeof(c0), "%zu", ni);
    std::snprintf(c1, sizeof(c1), "%zu", nj);
    std::snprintf(c2, sizeof(c2), "%.3e", analytic);
    std::snprintf(c3, sizeof(c3), "%.3e", sim.seconds);
    std::snprintf(c4, sizeof(c4), "%+.2f%%",
                  100.0 * (sim.seconds - analytic) /
                      (analytic > 0.0 ? analytic : 1.0));
    std::snprintf(c5, sizeof(c5), "%.1f%%", 100.0 * sim.utilization);
    cs.add_row({c0, c1, c2, c3, c4, c5});
  }
  cs.print();
  std::printf("(delta = pipeline fill/drain latency the closed form "
              "ignores; negligible at treecode\nlist lengths)\n\n");

  // ---- emulator throughput on this machine ----------------------------
  const auto nj = static_cast<std::size_t>(opt.get_int("nj", 8192));
  const auto reps = static_cast<std::size_t>(opt.get_int("reps", 3));
  const auto src = ic::make_uniform_cube(nj, -1.0, 1.0, 1.0, 5);
  grape::Grape5Device device(cfg);
  device.set_range(-2.0, 2.0, src.mass()[0]);
  device.set_eps(0.01);
  device.set_j(src.pos(), src.mass());
  const std::size_t ni = 512;
  std::vector<Vec3d> acc(ni);
  std::vector<double> pot(ni);
  util::Stopwatch watch;
  for (std::size_t r = 0; r < reps; ++r) {
    device.compute_forces(std::span<const Vec3d>(src.pos().data(), ni), acc,
                          pot);
  }
  const double wall = watch.elapsed();
  const double inter = static_cast<double>(reps) * static_cast<double>(ni) *
                       static_cast<double>(nj);
  std::printf("emulator throughput on this machine (measured): %.2f M "
              "interactions/s\n-> the emulator is ~%.0fx slower than the "
              "modeled silicon, hence the scaled bench sizes.\n",
              inter / wall / 1e6,
              cfg.peak_interaction_rate() / (inter / wall));
  return 0;
}
