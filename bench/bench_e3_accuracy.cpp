// E3 — Section 2 accuracy claims:
//
//  * "G5 chip ... calculates a pair-wise force with a relative error of
//     about 0.3%."
//  * "The average error of the force in our simulation is around 0.1%,
//     which is dominated by the approximation made in the tree algorithm
//     and not by the accuracy of the hardware."
//  * "The relative accuracy was practically the same when we performed the
//     same force calculation using standard 64-bit floating point
//     arithmetic."
//
// Blocks:
//  (1) pairwise error distribution of the emulated pipeline vs double;
//  (2) whole-force error vs exact N^2 for: grape-direct (hardware error
//      alone), host-tree (tree error alone), grape-tree (both) at
//      theta = 0.75, plus a theta sweep;
//  (3) ablation: lns fraction bits and table resolution vs pairwise error.
//
//   ./bench_e3_accuracy [--n 4096] [--pairs 20000]

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/engines.hpp"
#include "grape/host_reference.hpp"
#include "ic/plummer.hpp"
#include "math/rng.hpp"
#include "util/options.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace g5;
using grape::Vec3d;

/// RMS relative pairwise force error of a pipeline configuration;
/// optionally fills a log-binned error histogram.
double pairwise_rms_error(const grape::PipelineNumerics& numerics,
                          std::size_t pairs, std::uint64_t seed,
                          util::Histogram* hist = nullptr) {
  grape::Pipeline pipe(numerics);
  grape::PipelineScaling scaling;
  scaling.range_lo = -10.0;
  scaling.range_hi = 10.0;
  scaling.eps = 0.0;
  // Close pairs reach |f| ~ m/r^2 ~ 1e7 here; keep that within the 63-bit
  // accumulator while leaving the weakest forces ~1e5 quanta of headroom.
  scaling.force_quantum = 1e-8;
  scaling.potential_quantum = 1e-10;
  pipe.configure(scaling);

  math::Rng rng(seed);
  util::RunningStat err;
  for (std::size_t k = 0; k < pairs; ++k) {
    const Vec3d xi = 4.0 * rng.in_unit_ball();
    // Log-uniform separations over 4 decades: exercises the dynamic range
    // of the format the way a treecode interaction list does. Both ends
    // stay inside the configured range window (|x| < 8 < 10).
    const double r = std::pow(10.0, rng.uniform(-3.5, 0.5));
    const Vec3d xj = xi + r * rng.on_unit_sphere();
    const double mj = std::pow(10.0, rng.uniform(-2.0, 0.0));

    auto state = pipe.encode_i(xi);
    pipe.interact(state, pipe.encode_j(xj, mj));
    const Vec3d got = pipe.read_force(state);

    Vec3d ref;
    double pot_ref;
    grape::pairwise(xi, xj, mj, 0.0, ref, pot_ref);
    const double rn = ref.norm();
    if (rn > 0.0) {
      const double e = (got - ref).norm() / rn;
      err.add(e);
      if (hist != nullptr) hist->add(e);
    }
  }
  return err.rms();
}

struct ForceErrors {
  double rms = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

ForceErrors force_error_vs_exact(model::ParticleSet work,
                                 const model::ParticleSet& exact_set,
                                 core::ForceEngine& engine) {
  engine.compute(work);
  util::RunningStat err;
  util::Histogram hist(1e-6, 1.0, 60, util::Histogram::Scale::Log10);
  for (std::size_t i = 0; i < work.size(); ++i) {
    const double ref = exact_set.acc()[i].norm();
    if (ref <= 0.0) continue;
    const double e = (work.acc()[i] - exact_set.acc()[i]).norm() / ref;
    err.add(e);
    hist.add(e);
  }
  return {err.rms(), hist.quantile(0.99), err.max()};
}

}  // namespace

int main(int argc, char** argv) {
  util::Options opt(argc, argv);
  const auto pairs = static_cast<std::size_t>(opt.get_int("pairs", 20000));
  const auto n = static_cast<std::size_t>(opt.get_int("n", 4096));

  // ---- block 1: pairwise hardware error --------------------------------
  std::printf("E3: force accuracy (Section 2)\n\n");
  std::printf("pairwise relative force error of the emulated G5 pipeline "
              "(%zu random pairs):\n", pairs);
  grape::PipelineNumerics default_numerics;
  util::Histogram err_hist(1e-5, 3e-2, 12, util::Histogram::Scale::Log10);
  const double rms_default =
      pairwise_rms_error(default_numerics, pairs, 7, &err_hist);
  std::printf("  default format (lns %d frac bits, %d-bit table index): "
              "rms = %.4f%%  (paper: ~0.3%%)\n\n",
              default_numerics.lns_frac_bits,
              default_numerics.table_index_bits, 100.0 * rms_default);
  std::printf("pairwise relative-error distribution (log bins):\n%s"
              "  median %.4f%%, 99th percentile %.4f%%\n\n",
              err_hist.ascii(44).c_str(), 100.0 * err_hist.quantile(0.5),
              100.0 * err_hist.quantile(0.99));

  // ---- block 3 (cheap, do early): format ablation ----------------------
  std::printf("format ablation (rms pairwise error vs log-format width):\n");
  util::Table fmt({"lns frac bits", "table bits", "rms error %"});
  for (int bits : {5, 6, 7, 8, 9, 10, 12}) {
    grape::PipelineNumerics num;
    num.lns_frac_bits = bits;
    num.table_index_bits = 0;  // full-resolution power unit for this sweep
    char b0[8], b1[8], b2[16];
    std::snprintf(b0, sizeof(b0), "%d", bits);
    std::snprintf(b1, sizeof(b1), "full");
    std::snprintf(b2, sizeof(b2), "%.4f",
                  100.0 * pairwise_rms_error(num, pairs / 2, 11));
    fmt.add_row({b0, b1, b2});
  }
  for (int tbits : {4, 6}) {
    grape::PipelineNumerics num;
    num.table_index_bits = tbits;
    char b0[8], b1[8], b2[16];
    std::snprintf(b0, sizeof(b0), "%d", num.lns_frac_bits);
    std::snprintf(b1, sizeof(b1), "%d", tbits);
    std::snprintf(b2, sizeof(b2), "%.4f",
                  100.0 * pairwise_rms_error(num, pairs / 2, 13));
    fmt.add_row({b0, b1, b2});
  }
  fmt.print();

  // ---- block 2: whole-force errors vs exact N^2 -------------------------
  ic::PlummerConfig pc;
  pc.n = n;
  pc.seed = 99;
  model::ParticleSet pset = ic::make_plummer(pc);
  const double eps = opt.get_double("eps", 0.01);

  model::ParticleSet exact = pset;
  grape::host_direct_self(exact.pos(), exact.mass(), eps, exact.acc(),
                          exact.pot());

  std::printf("\nwhole-force relative error vs exact N^2 double "
              "(N=%zu Plummer, eps=%g):\n", n, eps);
  util::Table t({"engine", "theta", "rms error %", "99%% error %",
                 "max error %"});
  auto add_engine_row = [&](const char* name, double theta) {
    core::ForceParams fp;
    fp.eps = eps;
    fp.theta = theta;
    fp.n_crit = 256;
    auto engine = core::make_engine(name, fp);
    const auto e = force_error_vs_exact(pset, exact, *engine);
    char c1[12], c2[16], c3[16], c4[16];
    std::snprintf(c1, sizeof(c1), "%.2f", theta);
    std::snprintf(c2, sizeof(c2), "%.4f", 100.0 * e.rms);
    std::snprintf(c3, sizeof(c3), "%.4f", 100.0 * e.p99);
    std::snprintf(c4, sizeof(c4), "%.4f", 100.0 * e.max);
    t.add_row({name, c1, c2, c3, c4});
  };

  add_engine_row("grape-direct", 0.0);       // hardware error alone
  add_engine_row("host-tree-modified", 0.75); // tree error alone (64-bit)
  add_engine_row("grape-tree", 0.75);         // the paper's system
  // Theta sweep: tree error growing past the hardware floor.
  for (double theta : {0.3, 0.5, 1.0}) {
    add_engine_row("host-tree-modified", theta);
    add_engine_row("grape-tree", theta);
  }
  t.print();

  std::printf(
      "\nreading: grape-tree at theta=0.75 should sit close to "
      "host-tree-modified at the same theta\n(tree error dominates; \"the "
      "relative accuracy was practically the same ... using standard\n"
      "64-bit floating point arithmetic\"), and well above grape-direct's "
      "hardware floor.\n");
  return 0;
}
