// P4 — parallel Morton-ordered tree build scaling (build phase only).
//
// The paper's host built the tree serially on one Alpha core; at the
// paper's N = 2,159,038 the serial sort + node construction is the
// dominant host phase once the force loop is off-loaded. This harness
// times BhTree::build alone over an N x threads sweep and verifies the
// threaded build is bitwise-identical (nodes, keys, permutation) to the
// serial one at every thread count.
//
//   ./bench_p4_treebuild [--n 65536,524288,2159038] [--maxthreads 0 (auto)]
//                        [--reps 2] [--cutoff 32768] [--leafmax 8]
//                        [--json out.json]
//
// JSON rows: {"n", "threads", "build_ms", "speedup",
// "bitwise_identical"}; threads = 0 encodes the serial reference run.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "ic/uniform.hpp"
#include "tree/tree.hpp"
#include "util/options.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace g5;

std::vector<std::size_t> parse_sizes(const std::string& spec) {
  std::vector<std::size_t> out;
  std::size_t start = 0;
  while (start < spec.size()) {
    std::size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    out.push_back(static_cast<std::size_t>(
        std::strtoull(spec.substr(start, comma - start).c_str(), nullptr, 10)));
    start = comma + 1;
  }
  return out;
}

bool trees_identical(const tree::BhTree& a, const tree::BhTree& b) {
  if (a.node_count() != b.node_count() || a.keys() != b.keys() ||
      a.original_index() != b.original_index() ||
      a.sorted_pos() != b.sorted_pos() ||
      a.sorted_mass() != b.sorted_mass() ||
      a.max_depth_reached() != b.max_depth_reached()) {
    return false;
  }
  for (std::size_t i = 0; i < a.node_count(); ++i) {
    const tree::Node& na = a.node(i);
    const tree::Node& nb = b.node(i);
    bool same = na.first == nb.first && na.count == nb.count &&
                na.parent == nb.parent && na.center == nb.center &&
                na.half_size == nb.half_size && na.com == nb.com &&
                na.mass == nb.mass && na.bradius == nb.bradius &&
                na.depth == nb.depth && na.leaf == nb.leaf;
    for (unsigned oct = 0; oct < 8; ++oct) {
      same = same && na.child[oct] == nb.child[oct];
    }
    if (!same) return false;
  }
  return true;
}

struct Row {
  std::size_t n = 0;
  unsigned threads = 0;  ///< 0 = serial reference
  double build_ms = 0.0;
  double speedup = 1.0;
  bool identical = true;
};

}  // namespace

int main(int argc, char** argv) {
  util::Options opt(argc, argv);
  const auto sizes =
      parse_sizes(opt.get_string("n", "65536,524288,2159038"));
  auto max_threads = static_cast<unsigned>(opt.get_int("maxthreads", 0));
  if (max_threads == 0) max_threads = util::resolve_thread_count();
  const auto reps = static_cast<int>(opt.get_int("reps", 2));
  const auto cutoff = static_cast<std::uint32_t>(opt.get_int("cutoff", 32768));
  const auto leaf_max = static_cast<std::uint32_t>(opt.get_int("leafmax", 8));
  const std::string json_path = opt.get_string("json", "");

  std::printf("P4: tree build, N in {");
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    std::printf("%s%zu", i ? ", " : "", sizes[i]);
  }
  std::printf("}, up to %u threads, %d reps\n\n", max_threads, reps);

  std::vector<Row> rows;
  bool all_identical = true;

  for (const std::size_t n : sizes) {
    const auto pset = ic::make_uniform_ball(n, 1.0, 1.0, 101);
    tree::TreeBuildConfig cfg;
    cfg.leaf_max = leaf_max;
    cfg.parallel.parallel_cutoff = cutoff;

    auto timed_build = [&](tree::BhTree& tree,
                           util::ThreadPool* pool) -> double {
      double best = 0.0;
      for (int rep = 0; rep < reps; ++rep) {
        util::Stopwatch watch;
        tree.build(pset, cfg, pool);
        const double ms = watch.elapsed() * 1e3;
        if (rep == 0 || ms < best) best = ms;
      }
      return best;
    };

    tree::BhTree serial;
    const double serial_ms = timed_build(serial, nullptr);
    rows.push_back(Row{n, 0, serial_ms, 1.0, true});

    util::Table t({"threads", "build ms", "speedup", "bitwise"});
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.2f", serial_ms);
    t.add_row({"serial", buf, "1.00", "ref"});

    for (unsigned threads = 1; threads <= max_threads; threads *= 2) {
      util::ThreadPool pool(threads);
      tree::BhTree par;
      const double ms = timed_build(par, &pool);
      const bool identical = trees_identical(serial, par);
      all_identical = all_identical && identical;
      rows.push_back(Row{n, threads, ms, serial_ms / ms, identical});
      char ms_s[64], sp_s[64];
      std::snprintf(ms_s, sizeof ms_s, "%.2f", ms);
      std::snprintf(sp_s, sizeof sp_s, "%.2f", serial_ms / ms);
      t.add_row({std::to_string(threads), ms_s, sp_s,
                 identical ? "yes" : "NO"});
    }
    std::printf("N = %zu (serial %.2f ms, %zu nodes, depth %d)\n", n,
                serial_ms, serial.node_count(), serial.max_depth_reached());
    t.print();
    std::printf("\n");
  }

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::printf("ERROR: cannot write %s\n", json_path.c_str());
      return EXIT_FAILURE;
    }
    std::fprintf(f, "[\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(f,
                   "  {\"n\": %zu, \"threads\": %u, \"build_ms\": %.3f, "
                   "\"speedup\": %.3f, \"bitwise_identical\": %s}%s\n",
                   r.n, r.threads, r.build_ms, r.speedup,
                   r.identical ? "true" : "false",
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }

  std::printf(
      "threads = 0/serial row is the reference std::sort build; threaded"
      "\nrows run the chunked bbox/keys, parallel radix sort and subtree"
      "\ntasks. bitwise = nodes/keys/permutation identical to serial.\n");
  if (!all_identical) {
    std::printf("ERROR: threaded build diverged from the serial tree\n");
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
