// E4 — Section 5's operation-count correction.
//
// "The total number of the particle-particle interactions is 2.90e13
//  [modified tree] ... we estimated the operation count of the original
//  tree algorithm for the same simulation, using five snapshot files and
//  the same accuracy parameter. The estimated number of the interaction
//  is 4.69e12."  => ratio ~ 6.2, and the average modified-list length of
//  13,431 at n_g ~ 2000.
//
// We evolve a scaled cosmological sphere, take five snapshots across the
// run (as the paper did), and on each snapshot count interactions under
// both walks with the same theta. Printed: per-snapshot counts, the ratio,
// and the mean list lengths.
//
//   ./bench_e4_opcount [--grid 16] [--steps 32] [--ncrit 256] [--theta 0.75]

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/engines.hpp"
#include "core/simulation.hpp"
#include "ic/zeldovich.hpp"
#include "model/units.hpp"
#include "tree/groupwalk.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

namespace {

using namespace g5;

struct SnapshotCounts {
  double time = 0.0;
  tree::WalkStats modified;
  tree::WalkStats original;
};

SnapshotCounts count_snapshot(const model::ParticleSet& pset, double theta,
                              std::uint32_t n_crit, double time) {
  SnapshotCounts out;
  out.time = time;
  tree::BhTree tree;
  tree.build(pset);
  const tree::WalkConfig wc{theta};
  for (const auto& g : tree::collect_groups(tree, tree::GroupConfig{n_crit})) {
    tree::count_group(tree, g, wc, &out.modified);
  }
  for (std::size_t i = 0; i < pset.size(); ++i) {
    tree::count_original(tree, tree.sorted_pos()[i], wc, &out.original);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  util::Options opt(argc, argv);

  ic::CosmologicalSphereConfig cc;
  cc.grid_n = static_cast<std::size_t>(opt.get_int("grid", 16));
  while ((cc.grid_n & (cc.grid_n - 1)) != 0) ++cc.grid_n;
  const auto icr = ic::make_cosmological_sphere(cc);
  model::ParticleSet pset = icr.particles;
  const double G = model::gravitational_constant();
  for (auto& m : pset.mass()) m *= G;

  const double theta = opt.get_double("theta", 0.75);
  const auto n_crit = static_cast<std::uint32_t>(opt.get_int("ncrit", 256));
  const auto steps = static_cast<std::uint64_t>(opt.get_int("steps", 32));

  core::ForceParams fp;
  const double spacing = icr.box_size / static_cast<double>(cc.grid_n);
  fp.eps = 0.05 * spacing;
  fp.theta = theta;
  fp.n_crit = n_crit;
  // Host engine: this bench only needs the dynamics, not the emulator.
  auto engine = core::make_engine("host-tree-modified", fp);

  core::SimulationConfig sc;
  sc.steps = steps;
  const model::Cosmology cosmo(cc.cosmo);
  sc.dt_schedule = cosmo.log_a_timesteps(icr.a_start, 1.0, steps);
  sc.log_every = 0;

  std::printf("E4: modified vs original interaction counts "
              "(N=%zu, theta=%g, n_crit=%u, 5 snapshots over %llu steps)\n\n",
              pset.size(), theta, n_crit,
              static_cast<unsigned long long>(steps));

  std::vector<SnapshotCounts> counts;
  counts.push_back(count_snapshot(pset, theta, n_crit, 0.0));
  const std::uint64_t every = std::max<std::uint64_t>(1, steps / 4);
  core::Simulation sim(*engine, sc);
  std::vector<double> cum_time(sc.dt_schedule.size() + 1, 0.0);
  for (std::size_t k = 0; k < sc.dt_schedule.size(); ++k) {
    cum_time[k + 1] = cum_time[k] + sc.dt_schedule[k];
  }
  sim.set_step_hook([&](std::uint64_t step, const model::ParticleSet& ps) {
    if (step % every == 0 && counts.size() < 5) {
      counts.push_back(count_snapshot(ps, theta, n_crit,
                                      cum_time[static_cast<std::size_t>(step)]));
    }
  });
  (void)sim.run(pset);

  util::Table t({"t [Gyr]", "modified inter.", "original inter.", "ratio",
                 "mean mod. list", "mean orig. list"});
  double ratio_sum = 0.0;
  for (const auto& c : counts) {
    char c0[16], c1[16], c2[16], c3[12], c4[12], c5[12];
    std::snprintf(c0, sizeof(c0), "%.2f", c.time);
    std::snprintf(c1, sizeof(c1), "%.3e",
                  static_cast<double>(c.modified.interactions));
    std::snprintf(c2, sizeof(c2), "%.3e",
                  static_cast<double>(c.original.interactions));
    const double ratio = static_cast<double>(c.modified.interactions) /
                         static_cast<double>(c.original.interactions);
    ratio_sum += ratio;
    std::snprintf(c3, sizeof(c3), "%.2f", ratio);
    std::snprintf(c4, sizeof(c4), "%.0f", c.modified.mean_list());
    std::snprintf(c5, sizeof(c5), "%.0f", c.original.mean_list());
    t.add_row({c0, c1, c2, c3, c4, c5});
  }
  t.print();

  std::printf("\nmean modified/original ratio: %.2f\n",
              ratio_sum / static_cast<double>(counts.size()));
  std::printf("paper at N=2.16e6, n_g~2000: 2.90e13 / 4.69e12 = 6.18, "
              "mean modified list 13431.\n");
  std::printf("(the ratio grows with n_g and N; at this bench's scale a "
              "smaller value is expected —\n sweep --ncrit and --grid to "
              "watch it move toward the paper's figure)\n");
  return 0;
}
