// E6 — Figure 4: "A snapshot of the simulation at z = 0 (present time).
// Particles in a 45 Mpc x 45 Mpc x 2.5 Mpc box are plotted."
//
// We run the scaled cosmological sphere to z = 0 with the grape-tree
// engine and render the same kind of slab projection (dimensions scaled to
// this run's sphere radius, i.e. 0.9 R x 0.9 R x 0.05 R like the paper's
// 45 x 45 x 2.5 out of R = 50). Output: ASCII art on stdout and a PGM
// image next to the binary, plus clustering summary statistics that show
// structure actually formed (the point of the figure).
//
//   ./bench_e6_figure4 [--grid 32] [--steps 48] [--pgm out.pgm]
//
// --pgm defaults to figure4.pgm inside the build's bench/ directory
// (G5_BENCH_OUT_DIR), never the source tree.

#include <cmath>
#include <cstdio>

#include "core/engines.hpp"
#include "core/render.hpp"
#include "core/simulation.hpp"
#include "ic/zeldovich.hpp"
#include "model/units.hpp"
#include "util/options.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace g5;
  util::Options opt(argc, argv);

  ic::CosmologicalSphereConfig cc;
  cc.grid_n = static_cast<std::size_t>(opt.get_int("grid", 32));
  while ((cc.grid_n & (cc.grid_n - 1)) != 0) ++cc.grid_n;
  const auto icr = ic::make_cosmological_sphere(cc);
  model::ParticleSet pset = icr.particles;
  const double G = model::gravitational_constant();
  for (auto& m : pset.mass()) m *= G;

  core::ForceParams fp;
  const double spacing = icr.box_size / static_cast<double>(cc.grid_n);
  fp.eps = 0.05 * spacing;
  fp.theta = 0.75;
  fp.n_crit = static_cast<std::uint32_t>(opt.get_int("ncrit", 256));
  auto engine = core::make_engine(opt.get_string("engine", "grape-tree"), fp);

  core::SimulationConfig sc;
  sc.steps = static_cast<std::uint64_t>(opt.get_int("steps", 48));
  const model::Cosmology cosmo(cc.cosmo);
  sc.dt_schedule = cosmo.log_a_timesteps(icr.a_start, 1.0, sc.steps);
  sc.log_every = 0;

  std::printf("E6: Figure 4 — z=0 slab projection "
              "(N=%zu, %llu steps, z=24 -> 0, engine=%s)\n",
              pset.size(), static_cast<unsigned long long>(sc.steps),
              engine->name().data());

  // Clustering measure: rms density contrast on a coarse mesh over the
  // *comoving* central cube (expansion removed via the scale factor; only
  // cells inside the initial sphere count, so geometry does not pollute
  // the statistic).
  auto rms_contrast = [&](const model::ParticleSet& ps, double a) {
    const int m = 8;
    std::vector<double> cell(static_cast<std::size_t>(m * m * m), 0.0);
    // Central cube inscribed in the sphere (comoving half-width R/sqrt(3)).
    const double h = icr.sphere_radius / std::sqrt(3.0);
    std::size_t inside = 0;
    for (const auto& p : ps.pos()) {
      const double u = (p.x / a + h) / (2.0 * h),
                   v = (p.y / a + h) / (2.0 * h),
                   w = (p.z / a + h) / (2.0 * h);
      if (u < 0 || u >= 1 || v < 0 || v >= 1 || w < 0 || w >= 1) continue;
      const auto iu = static_cast<int>(u * m), iv = static_cast<int>(v * m),
                 iw = static_cast<int>(w * m);
      cell[static_cast<std::size_t>((iu * m + iv) * m + iw)] += 1.0;
      ++inside;
    }
    const double mean = static_cast<double>(inside) /
                        static_cast<double>(cell.size());
    if (mean <= 0.0) return 0.0;
    double sum2 = 0.0;
    for (double c : cell) {
      const double d = c / mean - 1.0;
      sum2 += d * d;
    }
    return std::sqrt(sum2 / static_cast<double>(cell.size()));
  };
  const double contrast0 = rms_contrast(pset, icr.a_start);

  core::Simulation sim(*engine, sc);
  const auto summary = sim.run(pset);
  const double contrast1 = rms_contrast(pset, 1.0);

  // The paper plots the central 45 x 45 x 2.5 Mpc of the 100 Mpc-diameter
  // sphere: half-width 0.45 R in-plane, half-depth 0.025 R.
  const double r = icr.sphere_radius;
  core::SlabConfig slab;
  slab.axis = 2;
  slab.lo0 = -0.45 * r;
  slab.hi0 = -slab.lo0;
  slab.lo1 = slab.lo0;
  slab.hi1 = slab.hi0;
  slab.slab_lo = -0.025 * r;
  slab.slab_hi = 0.025 * r;
  slab.width = 96;
  slab.height = 48;
  const core::SlabImage img(slab, pset);

  std::printf("\nslab %.1f x %.1f x %.1f Mpc (paper: 45 x 45 x 2.5 of "
              "R = 50):\n%s\n", slab.hi0 - slab.lo0, slab.hi1 - slab.lo1,
              slab.slab_hi - slab.slab_lo, img.ascii().c_str());

  // Default into the build tree (G5_BENCH_OUT_DIR, set by CMake) so
  // running from the repo root doesn't litter the source tree.
#ifdef G5_BENCH_OUT_DIR
  const char* default_pgm = G5_BENCH_OUT_DIR "/figure4.pgm";
#else
  const char* default_pgm = "figure4.pgm";
#endif
  const std::string pgm = opt.get_string("pgm", default_pgm);
  img.write_pgm(pgm);
  std::printf("wrote %s (%zux%zu, %llu particles in slab, peak cell %llu)\n",
              pgm.c_str(), img.config().width, img.config().height,
              static_cast<unsigned long long>(img.particles_in_slab()),
              static_cast<unsigned long long>(img.peak_count()));

  // At the paper's N = 2.16e6 the 5%-depth slab holds thousands of
  // particles; at this bench's scaled N it holds only tens, so also render
  // a thicker slab (30 % depth) that shows the morphology at this N.
  core::SlabConfig thick = slab;
  thick.lo0 = -0.8 * r;
  thick.hi0 = 0.8 * r;
  thick.lo1 = -0.8 * r;
  thick.hi1 = 0.8 * r;
  thick.slab_lo = -0.15 * r;
  thick.slab_hi = 0.15 * r;
  const core::SlabImage img2(thick, pset);
  std::printf("\nthicker slab for this N (%.1f x %.1f x %.1f Mpc, %llu "
              "particles):\n%s",
              thick.hi0 - thick.lo0, thick.hi1 - thick.lo1,
              thick.slab_hi - thick.slab_lo,
              static_cast<unsigned long long>(img2.particles_in_slab()),
              img2.ascii().c_str());

  std::printf("\nclustering growth: rms cell-density contrast %.2f (z=24) "
              "-> %.2f (z=0)\n", contrast0, contrast1);
  std::printf("energy drift over the run: %.2e\n", summary.energy_drift);
  std::printf(
      "\nscale caveat: at this miniature radius (R = %.0f Mpc vs the "
      "paper's 50) the z=0 rms\nbulk displacement (~8 Mpc comoving) is "
      "comparable to R, so large-scale flows disperse\npart of the sphere "
      "— the paper-scale run keeps its identity (displacement/R ~ 0.2).\n"
      "Raise --grid to watch the slab fill in.\n",
      r);
  return 0;
}
