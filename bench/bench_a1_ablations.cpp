// A1 — design-choice ablations called out in DESIGN.md. Four studies:
//
//  (a) MAC variant: classic edge/d criterion vs Barnes' bmax/d — list
//      length and force error at equal theta;
//  (b) hardware generation: GRAPE-3-class vs GRAPE-5 number formats —
//      pairwise error and whole-force error through the same treecode;
//  (c) system scaling: boards = 1..8 — modeled time for the paper's
//      workload and price/performance (the knob the group actually turned
//      between GRAPE generations);
//  (d) host-interface bandwidth: where DMA starts to dominate the n_g
//      tradeoff.
//
//   ./bench_a1_ablations [--n 4096]

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/engines.hpp"
#include "core/perf.hpp"
#include "grape/host_reference.hpp"
#include "ic/plummer.hpp"
#include "tree/groupwalk.hpp"
#include "util/options.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace g5;
using math::Vec3d;

double engine_rms_error(const model::ParticleSet& base,
                        const model::ParticleSet& exact,
                        core::ForceEngine& engine) {
  model::ParticleSet work = base;
  engine.compute(work);
  util::RunningStat err;
  for (std::size_t i = 0; i < work.size(); ++i) {
    const double rn = exact.acc()[i].norm();
    if (rn > 0.0) err.add((work.acc()[i] - exact.acc()[i]).norm() / rn);
  }
  return err.rms();
}

}  // namespace

int main(int argc, char** argv) {
  util::Options opt(argc, argv);
  const auto n = static_cast<std::size_t>(opt.get_int("n", 4096));

  ic::PlummerConfig pc;
  pc.n = n;
  pc.seed = 2024;
  const model::ParticleSet base = ic::make_plummer(pc);
  const double eps = 0.01;
  model::ParticleSet exact = base;
  grape::host_direct_self(exact.pos(), exact.mass(), eps, exact.acc(),
                          exact.pot());

  // ---------------- (a) MAC variant + quadrupole ------------------------
  std::printf("A1(a): MAC variant and moment order (N=%zu Plummer)\n\n", n);
  {
    tree::BhTree tree;
    tree.build(base);
    util::Table t({"mac", "moments", "theta", "mean list", "inter. (1 step)",
                   "rms force err %"});
    auto add_row = [&](tree::Mac mac, bool quadrupole, double theta) {
      tree::WalkStats stats;
      const tree::WalkConfig wc{theta, mac};
      for (const auto& g :
           tree::collect_groups(tree, tree::GroupConfig{256})) {
        tree::count_group(tree, g, wc, &stats);
      }
      core::ForceParams fp;
      fp.eps = eps;
      fp.theta = theta;
      fp.n_crit = 256;
      fp.mac = mac;
      fp.quadrupole = quadrupole;
      core::HostTreeEngine engine(fp, core::HostTreeEngine::Mode::Modified);
      const double err = engine_rms_error(base, exact, engine);
      char c1[8], c2[12], c3[16], c4[16];
      std::snprintf(c1, sizeof(c1), "%.2f", theta);
      std::snprintf(c2, sizeof(c2), "%.0f", stats.mean_list());
      std::snprintf(c3, sizeof(c3), "%.3e",
                    static_cast<double>(stats.interactions));
      std::snprintf(c4, sizeof(c4), "%.4f", 100.0 * err);
      t.add_row({mac == tree::Mac::Edge ? "edge" : "bmax",
                 quadrupole ? "quad" : "mono", c1, c2, c3, c4});
    };
    for (const tree::Mac mac : {tree::Mac::Edge, tree::Mac::Bmax}) {
      for (double theta : {0.5, 0.75, 1.0}) {
        add_row(mac, false, theta);
      }
    }
    // Quadrupole (host-only: GRAPE consumes point masses) buys accuracy
    // at equal theta — or equal accuracy at larger theta/shorter lists.
    add_row(tree::Mac::Edge, true, 0.75);
    add_row(tree::Mac::Edge, true, 1.0);
    t.print();
    std::printf("(the bounding radius is a tighter size measure, so at "
                "equal theta bmax trades\nerror for list length; matching "
                "error budgets means running bmax at a smaller\ntheta — "
                "compare bmax@0.5 against edge@0.75)\n\n");
  }

  // ---------------- (b) hardware generation ----------------------------
  std::printf("A1(b): GRAPE-3-class vs GRAPE-5 number formats\n\n");
  {
    util::Table t({"machine", "pos bits", "lns frac", "whole-force rms err %"});
    struct GenRow {
      const char* name;
      grape::PipelineNumerics numerics;
      grape::SystemConfig system;
    };
    std::vector<GenRow> rows;
    rows.push_back({"GRAPE-3-class", grape::PipelineNumerics::grape3(),
                    grape::SystemConfig::grape3_system()});
    rows.push_back({"GRAPE-5", grape::PipelineNumerics{},
                    grape::SystemConfig::paper_system()});
    grape::PipelineNumerics exact_numerics;
    exact_numerics.exact_arithmetic = true;
    grape::SystemConfig exact_system = grape::SystemConfig::paper_system();
    exact_system.numerics = exact_numerics;
    rows.push_back({"64-bit float", exact_numerics, exact_system});

    for (const auto& row : rows) {
      auto device = std::make_shared<grape::Grape5Device>(row.system);
      core::ForceParams fp;
      fp.eps = eps;
      fp.theta = 0.75;
      fp.n_crit = 256;
      core::GrapeTreeEngine engine(fp, device);
      const double err = engine_rms_error(base, exact, engine);
      char c1[8], c2[8], c3[16];
      std::snprintf(c1, sizeof(c1), "%d", row.numerics.position_bits);
      std::snprintf(c2, sizeof(c2), "%d", row.numerics.lns_frac_bits);
      std::snprintf(c3, sizeof(c3), "%.4f", 100.0 * err);
      t.add_row({row.name, c1, c2, c3});
    }
    t.print();
    std::printf("(the GRAPE-5 row sits at the tree-error floor — the 64-bit "
                "row — while the\nGRAPE-3-class formats dominate the error "
                "budget: why GRAPE-5 was built)\n\n");
  }

  // ---------------- (c) board scaling -----------------------------------
  std::printf("A1(c): boards 1..8 on the paper's workload (modeled)\n\n");
  {
    util::Table t({"boards", "peak", "total s", "effective", "cost",
                   "$/Mflops"});
    for (std::size_t boards : {1u, 2u, 4u, 8u}) {
      grape::SystemConfig sys = grape::SystemConfig::paper_system();
      sys.boards = boards;
      grape::CostModel cost;
      cost.boards = boards;
      const auto report = core::project_performance(
          sys, core::HostCostModel{}, cost, core::paper_workload());
      char c1[24], c2[20], c3[16], c4[20], c5[12], c6[12];
      std::snprintf(c1, sizeof(c1), "%zu", boards);
      std::snprintf(c2, sizeof(c2), "%s",
                    util::human_flops(sys.peak_flops()).c_str());
      std::snprintf(c3, sizeof(c3), "%.0f", report.total_s);
      std::snprintf(c4, sizeof(c4), "%s",
                    util::human_flops(report.effective_flops).c_str());
      std::snprintf(c5, sizeof(c5), "$%.0f", report.usd_total);
      std::snprintf(c6, sizeof(c6), "%.1f", report.usd_per_mflops);
      t.add_row({c1, c2, c3, c4, c5, c6});
    }
    t.print();
    std::printf("(host work bounds the return: 4x the boards buys only "
                "~1.4x the speed and worsens\n$/Mflops; a single board is "
                "marginally cheaper per Mflops but 40%% slower to\n"
                "solution — the paper's 2-board point balances both)\n\n");
  }

  // ---------------- (d) DMA bandwidth -----------------------------------
  std::printf("A1(d): host-interface bandwidth sweep (modeled, paper "
              "workload)\n\n");
  {
    util::Table t({"bandwidth", "grape dma s", "total s", "effective"});
    for (double mb : {10.0, 30.0, 70.0, 200.0}) {
      grape::SystemConfig sys = grape::SystemConfig::paper_system();
      sys.hib.bandwidth_bytes_per_s = mb * 1e6;
      const auto report = core::project_performance(
          sys, core::HostCostModel{}, grape::CostModel{},
          core::paper_workload());
      char c1[16], c2[12], c3[12], c4[20];
      std::snprintf(c1, sizeof(c1), "%.0f MB/s", mb);
      std::snprintf(c2, sizeof(c2), "%.0f", report.grape_dma_s);
      std::snprintf(c3, sizeof(c3), "%.0f", report.total_s);
      std::snprintf(c4, sizeof(c4), "%s",
                    util::human_flops(report.effective_flops).c_str());
      t.add_row({c1, c2, c3, c4});
    }
    t.print();
    std::printf("(a 10 MB/s interface would have added ~5 h of DMA to the "
                "8.4 h run — the\nhost-interface boards mattered)\n");
  }
  return 0;
}
