// P2 — observability overhead on the instrumented hot paths.
//
// The obs cost contract (src/obs/span.hpp): with the master switch off a
// G5_OBS_SPAN is one relaxed atomic load, so instrumentation-off runs
// must be indistinguishable from the seed; with the switch on (phase
// accumulation, no tracing) the end-to-end overhead of a force
// computation must stay under a few percent. This harness measures both
// on HostTreeEngine (modified algorithm) force phases over a Plummer
// sphere and FAILS (exit 1) when the switched-on overhead exceeds the
// budget — it is the regression gate for anyone adding spans to a hot
// loop. The disabled-span micro cost is also reported in ns.
//
// A third configuration runs with the obs::Telemetry sampler live at
// its default 1 s period (status file + flight recorder armed) — the
// acceptance gate for leaving telemetry on during paper-scale runs.
//
//   ./bench_p2_obs_overhead [--n 16384] [--reps 6] [--budget-pct 3.0]
//                           [--theta 0.75] [--ncrit 256]

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/engines.hpp"
#include "ic/plummer.hpp"
#include "obs/obs.hpp"
#include "util/options.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace g5;
  util::Options opt(argc, argv);
  const auto n = static_cast<std::size_t>(opt.get_int("n", 16384));
  const int reps = std::max(3, static_cast<int>(opt.get_int("reps", 6)));
  const double budget_pct = opt.get_double("budget-pct", 3.0);
  const double theta = opt.get_double("theta", 0.75);
  const auto n_crit = static_cast<std::uint32_t>(opt.get_int("ncrit", 256));

  ic::PlummerConfig pc;
  pc.n = n;
  pc.seed = 2026;
  auto pset = ic::make_plummer(pc);

  core::ForceParams fp;
  fp.theta = theta;
  fp.n_crit = n_crit;
  core::HostTreeEngine engine(fp, core::HostTreeEngine::Mode::Modified);

  // Best-of-reps force-phase seconds under the given switch state. Best
  // (not mean) is the right statistic for an overhead bound: scheduler
  // noise only ever adds time.
  auto measure = [&](bool on) {
    obs::set_enabled(on);
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
      util::Stopwatch watch;
      engine.compute(pset);
      best = std::min(best, watch.elapsed());
    }
    obs::set_enabled(false);
    return best;
  };

  engine.compute(pset);  // warm up pool, tree and caches
  const double off_s = measure(false);
  const double on_s = measure(true);
  const double overhead_pct = (on_s / off_s - 1.0) * 100.0;

  // Spans on + the background sampler live at the default period,
  // exporting a status file and keeping the flight recorder armed —
  // the telemetry configuration a long run would actually use.
  const std::string status_path = "bench_p2_status.json";
  obs::set_enabled(true);
  double sampled_s = 1e300;
  {
    obs::TelemetryConfig tc;
    tc.status_path = status_path;
    obs::Telemetry sampler(tc);
    for (int r = 0; r < reps; ++r) {
      util::Stopwatch watch;
      engine.compute(pset);
      sampled_s = std::min(sampled_s, watch.elapsed());
    }
    sampler.stop();
  }
  obs::set_enabled(false);
  obs::FlightRecorder::instance().disarm();
  std::remove(status_path.c_str());
  const double sampled_pct = (sampled_s / off_s - 1.0) * 100.0;

  // Disabled-span micro cost: the per-span price every hot path pays
  // when nothing is observing.
  constexpr int kSpans = 1 << 20;
  obs::set_enabled(false);
  util::Stopwatch micro;
  for (int i = 0; i < kSpans; ++i) {
    G5_OBS_SPAN("noop", "bench");
  }
  const double ns_per_span = micro.elapsed() / kSpans * 1e9;

  std::printf("P2: obs overhead, N=%zu, best of %d force phases\n\n", n,
              reps);
  util::Table t({"configuration", "force phase", "overhead"});
  char c1[32], c2[32];
  std::snprintf(c1, sizeof(c1), "%.4f s", off_s);
  t.add_row({"instrumentation off", c1, "(baseline)"});
  std::snprintf(c1, sizeof(c1), "%.4f s", on_s);
  std::snprintf(c2, sizeof(c2), "%+.2f %%", overhead_pct);
  t.add_row({"spans + phase accumulation on", c1, c2});
  std::snprintf(c1, sizeof(c1), "%.4f s", sampled_s);
  std::snprintf(c2, sizeof(c2), "%+.2f %%", sampled_pct);
  t.add_row({"spans on + telemetry sampler live", c1, c2});
  std::snprintf(c1, sizeof(c1), "%.1f ns", ns_per_span);
  t.add_row({"disabled G5_OBS_SPAN (micro)", c1, "-"});
  t.print();

  if (overhead_pct > budget_pct) {
    std::printf("\nFAIL: switched-on overhead %.2f %% exceeds the %.1f %% "
                "budget\n",
                overhead_pct, budget_pct);
    return 1;
  }
  if (sampled_pct > budget_pct) {
    std::printf("\nFAIL: sampler-live overhead %.2f %% exceeds the %.1f %% "
                "budget\n",
                sampled_pct, budget_pct);
    return 1;
  }
  std::printf("\nOK: within the %.1f %% budget\n", budget_pct);
  return 0;
}
