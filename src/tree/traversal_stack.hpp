// Guarded DFS stack for tree traversals.
//
// The walkers used to run on bare `std::int32_t stack[512]` arrays with no
// overflow check — undefined behavior the moment a tree is deeper than the
// fixed bound assumes. This class keeps the fast path (an inline array that
// covers every tree the Morton build can produce: a depth-D octree demands
// at most 7*D + 8 pending entries, and the build caps D at the Morton
// resolution of 21 levels) but spills to a heap vector instead of writing
// past the end when a traversal ever needs more. Correctness of the
// traversal therefore no longer depends on invariants of the builder.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "math/morton.hpp"

namespace g5::tree {

/// Worst-case DFS stack demand for an octree of the given depth: along the
/// current path each ancestor level holds at most 7 pending siblings, plus
/// the 8 children just pushed at the deepest level.
[[nodiscard]] constexpr std::size_t dfs_stack_bound(int max_depth) noexcept {
  return 7 * static_cast<std::size_t>(max_depth > 0 ? max_depth : 0) + 8;
}

class TraversalStack {
 public:
  /// Inline capacity: the bound for the deepest tree the Morton build can
  /// emit (depth cap = 21 levels), rounded up a little.
  static constexpr std::size_t kInlineCapacity =
      dfs_stack_bound(math::kMortonBitsPerDim) + 8;

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  /// High-water mark of the stack over its lifetime.
  [[nodiscard]] std::size_t max_size() const noexcept { return max_size_; }

  void push(std::int32_t v) {
    if (size_ < kInlineCapacity) {
      inline_[size_] = v;
    } else {
      spill_.push_back(v);
    }
    ++size_;
    if (size_ > max_size_) max_size_ = size_;
  }

  std::int32_t pop() noexcept {
    --size_;
    if (size_ < kInlineCapacity) return inline_[size_];
    const std::int32_t v = spill_.back();
    spill_.pop_back();
    return v;
  }

 private:
  std::int32_t inline_[kInlineCapacity];
  std::vector<std::int32_t> spill_;
  std::size_t size_ = 0;
  std::size_t max_size_ = 0;
};

}  // namespace g5::tree
