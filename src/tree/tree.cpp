#include "tree/tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace g5::tree {

void BhTree::build(std::span<const Vec3d> pos, std::span<const double> mass,
                   const TreeBuildConfig& config) {
  if (pos.size() != mass.size()) {
    throw std::invalid_argument("position/mass arity mismatch");
  }
  if (pos.size() >
      static_cast<std::size_t>(std::numeric_limits<std::uint32_t>::max())) {
    throw std::invalid_argument("tree supports < 2^32 particles");
  }
  cfg_ = config;
  // Morton keys resolve kMortonBitsPerDim levels; below that every body in
  // a cell shares the remaining digit stream, so further splits could never
  // separate particles (they would only grow single-child chains, overflow
  // the uint8 node depth, and read octant digits past the key). Clamp the
  // cap instead of trusting the caller's value.
  cfg_.max_depth =
      std::clamp(cfg_.max_depth, 0, math::kMortonBitsPerDim - 1);
  nodes_.clear();
  quads_.clear();
  max_depth_ = 0;
  const auto n = static_cast<std::uint32_t>(pos.size());
  sorted_pos_.resize(n);
  sorted_mass_.resize(n);
  orig_index_.resize(n);
  keys_.resize(n);
  if (n == 0) return;

  // Cubic hull, padded so boundary particles stay strictly inside.
  model::Aabb box;
  box.lo = pos[0];
  box.hi = pos[0];
  for (const auto& p : pos) {
    box.lo = math::cwise_min(box.lo, p);
    box.hi = math::cwise_max(box.hi, p);
  }
  const double size = std::max(box.cube_size(), 1e-300) * (1.0 + 1e-9);
  const Vec3d center = box.center();
  root_lo_ = center - Vec3d{0.5 * size, 0.5 * size, 0.5 * size};
  root_size_ = size;

  // Sort by Morton key.
  std::iota(orig_index_.begin(), orig_index_.end(), 0u);
  std::vector<std::uint64_t> raw_keys(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    raw_keys[i] = math::morton_key(pos[i], root_lo_, root_size_);
  }
  std::sort(orig_index_.begin(), orig_index_.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return raw_keys[a] != raw_keys[b] ? raw_keys[a] < raw_keys[b]
                                                : a < b;
            });
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t src = orig_index_[i];
    sorted_pos_[i] = pos[src];
    sorted_mass_[i] = mass[src];
    keys_[i] = raw_keys[src];
  }

  nodes_.reserve(2 * n / std::max(1u, cfg_.leaf_max) + 64);
  build_node(0, n, 0, center, 0.5 * size, -1);

  if (cfg_.quadrupole) {
    quads_.resize(nodes_.size());
    for (std::size_t idx = 0; idx < nodes_.size(); ++idx) {
      const Node& node = nodes_[idx];
      Quadrupole& q = quads_[idx];
      for (std::uint32_t k = node.first; k < node.first + node.count; ++k) {
        const Vec3d d = sorted_pos_[k] - node.com;
        const double m = sorted_mass_[k];
        const double d2 = d.norm2();
        q.xx += m * (3.0 * d.x * d.x - d2);
        q.yy += m * (3.0 * d.y * d.y - d2);
        q.zz += m * (3.0 * d.z * d.z - d2);
        q.xy += m * 3.0 * d.x * d.y;
        q.xz += m * 3.0 * d.x * d.z;
        q.yz += m * 3.0 * d.y * d.z;
      }
    }
  }
}

std::int32_t BhTree::build_node(std::uint32_t first, std::uint32_t count,
                                int depth, const Vec3d& center,
                                double half_size, std::int32_t parent) {
  const auto idx = static_cast<std::int32_t>(nodes_.size());
  nodes_.emplace_back();
  {
    Node& node = nodes_.back();
    node.first = first;
    node.count = count;
    node.center = center;
    node.half_size = half_size;
    node.depth = static_cast<std::uint8_t>(depth);
    node.parent = parent;
  }
  max_depth_ = std::max(max_depth_, depth);

  const bool split = count > cfg_.leaf_max && depth < cfg_.max_depth;
  if (split) {
    nodes_[static_cast<std::size_t>(idx)].leaf = false;
    // Partition [first, first+count) by octant at this depth: keys are
    // sorted, so each octant is a contiguous sub-range found by binary
    // search on the 3-bit digit.
    std::uint32_t begin = first;
    const std::uint32_t end = first + count;
    for (unsigned oct = 0; oct < 8; ++oct) {
      // Upper bound of this octant's range.
      std::uint32_t lo = begin, hi = end;
      while (lo < hi) {
        const std::uint32_t mid = lo + (hi - lo) / 2;
        if (math::morton_octant(keys_[mid], depth) <= oct) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      const std::uint32_t child_count = lo - begin;
      if (child_count > 0) {
        const double quarter = 0.5 * half_size;
        const Vec3d child_center{
            center.x + ((oct & 1u) ? quarter : -quarter),
            center.y + ((oct & 2u) ? quarter : -quarter),
            center.z + ((oct & 4u) ? quarter : -quarter)};
        const std::int32_t child =
            build_node(begin, child_count, depth + 1, child_center, quarter,
                       idx);
        nodes_[static_cast<std::size_t>(idx)].child[oct] = child;
      }
      begin = lo;
      if (begin >= end) break;
    }
  }

  // Moments (children are complete now — post-order).
  Node& node = nodes_[static_cast<std::size_t>(idx)];
  double m = 0.0;
  Vec3d com{};
  for (std::uint32_t k = node.first; k < node.first + node.count; ++k) {
    m += sorted_mass_[k];
    com += sorted_mass_[k] * sorted_pos_[k];
  }
  node.mass = m;
  node.com = m > 0.0 ? com / m : node.center;
  double br2 = 0.0;
  for (std::uint32_t k = node.first; k < node.first + node.count; ++k) {
    br2 = std::max(br2, (sorted_pos_[k] - node.center).norm2());
  }
  node.bradius = std::sqrt(br2);
  return idx;
}

}  // namespace g5::tree
