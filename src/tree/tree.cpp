#include "tree/tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace g5::tree {

namespace {

/// Fixed chunk edge of the parallel phases. Chunk boundaries depend only
/// on N, never on the lane count — the determinism contract of every
/// per-chunk merge below.
constexpr std::size_t kChunk = std::size_t{1} << 16;

/// LSD radix sort geometry: 8-bit digits over the 63 used key bits.
constexpr unsigned kRadixBits = 8;
constexpr std::size_t kRadixBuckets = std::size_t{1} << kRadixBits;
constexpr unsigned kRadixPasses = 8;

constexpr std::size_t chunk_count(std::size_t n) {
  return (n + kChunk - 1) / kChunk;
}

}  // namespace

void BhTree::build(std::span<const Vec3d> pos, std::span<const double> mass,
                   const TreeBuildConfig& config, util::ThreadPool* pool) {
  if (pos.size() != mass.size()) {
    throw std::invalid_argument("position/mass arity mismatch");
  }
  if (pos.size() >
      static_cast<std::size_t>(std::numeric_limits<std::uint32_t>::max())) {
    throw std::invalid_argument("tree supports < 2^32 particles");
  }
  cfg_ = config;
  // Morton keys resolve kMortonBitsPerDim levels; below that every body in
  // a cell shares the remaining digit stream, so further splits could never
  // separate particles (they would only grow single-child chains, overflow
  // the uint8 node depth, and read octant digits past the key). Clamp the
  // cap instead of trusting the caller's value.
  cfg_.max_depth =
      std::clamp(cfg_.max_depth, 0, math::kMortonBitsPerDim - 1);
  nodes_.clear();
  quads_.clear();
  max_depth_ = 0;
  const auto n = static_cast<std::uint32_t>(pos.size());
  sorted_pos_.resize(n);
  sorted_mass_.resize(n);
  orig_index_.resize(n);
  keys_.resize(n);
  if (n == 0) return;

  // The parallel path needs a pool with >1 lanes, enough bodies to beat
  // the fork-join overhead, and no explicit serial override. Either path
  // produces bitwise-identical nodes_/keys_/orig_index_.
  const bool par = pool != nullptr && pool->size() > 1 &&
                   cfg_.parallel.threads != 1 &&
                   n >= cfg_.parallel.parallel_cutoff;
  util::Stopwatch build_watch;

  // Cubic hull, padded so boundary particles stay strictly inside.
  model::Aabb box;
  {
    G5_OBS_SPAN("bbox", "tree");
    box.lo = pos[0];
    box.hi = pos[0];
    if (par) {
      // Per-chunk hulls merged in chunk order. min/max is exact, so the
      // merged hull is bit-identical to the serial left-to-right scan.
      const std::size_t chunks = chunk_count(n);
      std::vector<model::Aabb> partial(chunks, model::Aabb{pos[0], pos[0]});
      pool->parallel_for(
          n, kChunk, [&](std::size_t begin, std::size_t end, unsigned) {
            model::Aabb local{pos[begin], pos[begin]};
            for (std::size_t i = begin; i < end; ++i) {
              local.lo = math::cwise_min(local.lo, pos[i]);
              local.hi = math::cwise_max(local.hi, pos[i]);
            }
            partial[begin / kChunk] = local;
          });
      for (const auto& p : partial) {
        box.lo = math::cwise_min(box.lo, p.lo);
        box.hi = math::cwise_max(box.hi, p.hi);
      }
    } else {
      for (const auto& p : pos) {
        box.lo = math::cwise_min(box.lo, p);
        box.hi = math::cwise_max(box.hi, p);
      }
    }
  }
  const double size = std::max(box.cube_size(), 1e-300) * (1.0 + 1e-9);
  const Vec3d center = box.center();
  root_lo_ = center - Vec3d{0.5 * size, 0.5 * size, 0.5 * size};
  root_size_ = size;

  // Morton keys, still in caller order (keys_[i] belongs to particle i
  // until the sort below permutes the pairs).
  {
    G5_OBS_SPAN("keys", "tree");
    std::iota(orig_index_.begin(), orig_index_.end(), 0u);
    if (par) {
      pool->parallel_for(
          n, kChunk, [&](std::size_t begin, std::size_t end, unsigned) {
            // g5lint: hot-begin(tree_keys)
            for (std::size_t i = begin; i < end; ++i) {
              keys_[i] = math::morton_key(pos[i], root_lo_, root_size_);
            }
            // g5lint: hot-end
          });
    } else {
      for (std::uint32_t i = 0; i < n; ++i) {
        keys_[i] = math::morton_key(pos[i], root_lo_, root_size_);
      }
    }
  }

  // Sort the (key, original index) pairs by key, ties broken by original
  // index — the pinned order coincident particles rely on. The serial
  // comparator sort and the stable radix sort (which starts from the
  // identity permutation) produce exactly this order, so the two paths
  // agree bit for bit.
  {
    G5_OBS_SPAN("sort", "tree");
    if (par) {
      sort_pairs_parallel(n, *pool);
      pool->parallel_for(
          n, kChunk, [&](std::size_t begin, std::size_t end, unsigned) {
            for (std::size_t i = begin; i < end; ++i) {
              const std::uint32_t src = orig_index_[i];
              sorted_pos_[i] = pos[src];
              sorted_mass_[i] = mass[src];
            }
          });
    } else {
      std::sort(orig_index_.begin(), orig_index_.end(),
                [&](std::uint32_t a, std::uint32_t b) {
                  return keys_[a] != keys_[b] ? keys_[a] < keys_[b] : a < b;
                });
      key_scratch_.resize(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint32_t src = orig_index_[i];
        sorted_pos_[i] = pos[src];
        sorted_mass_[i] = mass[src];
        key_scratch_[i] = keys_[src];
      }
      std::swap(keys_, key_scratch_);
    }
  }

  {
    G5_OBS_SPAN("nodes", "tree");
    if (par) {
      build_nodes_parallel(n, center, 0.5 * size, *pool);
    } else {
      nodes_.reserve(2 * n / std::max(1u, cfg_.leaf_max) + 64);
      build_structure(nodes_, 0, n, 0, center, 0.5 * size, -1, max_depth_);
    }
  }

  {
    G5_OBS_SPAN("moments", "tree");
    if (par) {
      pool->parallel_for(
          nodes_.size(), 64,
          [&](std::size_t begin, std::size_t end, unsigned) {
            moments_range(begin, end);
          });
    } else {
      moments_range(0, nodes_.size());
    }
    if (cfg_.quadrupole) {
      quads_.resize(nodes_.size());
      if (par) {
        pool->parallel_for(
            nodes_.size(), 64,
            [&](std::size_t begin, std::size_t end, unsigned) {
              quadrupole_range(begin, end);
            });
      } else {
        quadrupole_range(0, nodes_.size());
      }
    }
  }

  if (obs::enabled()) {
    obs::histogram("g5.tree.build_ms").observe(build_watch.elapsed() * 1e3);
  }
}

std::int32_t BhTree::build_structure(std::vector<Node>& arena,
                                     std::uint32_t first, std::uint32_t count,
                                     int depth, const Vec3d& center,
                                     double half_size, std::int32_t parent,
                                     int& max_depth) const {
  const auto idx = static_cast<std::int32_t>(arena.size());
  // g5lint: hot-begin(tree_nodes)
  arena.emplace_back();
  {
    Node& node = arena.back();
    node.first = first;
    node.count = count;
    node.center = center;
    node.half_size = half_size;
    node.depth = static_cast<std::uint8_t>(depth);
    node.parent = parent;
  }
  // g5lint: hot-end
  max_depth = std::max(max_depth, depth);

  const bool split = count > cfg_.leaf_max && depth < cfg_.max_depth;
  if (split) {
    arena[static_cast<std::size_t>(idx)].leaf = false;
    // Partition [first, first+count) by octant at this depth: keys are
    // sorted, so each octant is a contiguous sub-range found by binary
    // search on the 3-bit digit.
    std::uint32_t begin = first;
    const std::uint32_t end = first + count;
    for (unsigned oct = 0; oct < 8; ++oct) {
      // Upper bound of this octant's range.
      std::uint32_t lo = begin, hi = end;
      while (lo < hi) {
        const std::uint32_t mid = lo + (hi - lo) / 2;
        if (math::morton_octant(keys_[mid], depth) <= oct) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      const std::uint32_t child_count = lo - begin;
      if (child_count > 0) {
        const double quarter = 0.5 * half_size;
        const Vec3d child_center{
            center.x + ((oct & 1u) ? quarter : -quarter),
            center.y + ((oct & 2u) ? quarter : -quarter),
            center.z + ((oct & 4u) ? quarter : -quarter)};
        const std::int32_t child =
            build_structure(arena, begin, child_count, depth + 1, child_center,
                            quarter, idx, max_depth);
        arena[static_cast<std::size_t>(idx)].child[oct] = child;
      }
      begin = lo;
      if (begin >= end) break;
    }
  }
  return idx;
}

void BhTree::build_nodes_parallel(std::uint32_t n, const Vec3d& center,
                                  double half_size, util::ThreadPool& pool) {
  // Subtree task planned by the serial top-of-tree split: one complete
  // octant subtree, built into a private arena by one pool lane.
  struct SubtreeTask {
    std::uint32_t first = 0;
    std::uint32_t count = 0;
    int depth = 0;
    Vec3d center{};
    double half_size = 0.0;
    std::int32_t parent_top = -1;  ///< owning top node (tops index)
    unsigned oct = 0;              ///< octant slot in the owner
  };
  // Node of the serially built top of the tree; children are either other
  // top nodes or whole subtree tasks, per octant.
  struct TopNode {
    Node node;
    std::int32_t child_top[8] = {-1, -1, -1, -1, -1, -1, -1, -1};
    std::int32_t child_task[8] = {-1, -1, -1, -1, -1, -1, -1, -1};
  };

  // Stop the serial descent once a subtree is small enough to be one
  // task. Depends only on N (never on the lane count), so the task
  // decomposition — and with it the stitched layout — is identical for
  // every thread count. The depth cap bounds the skeleton for adversarial
  // (e.g. fully coincident) distributions.
  const std::uint32_t top_cutoff = std::max(4096u, n / 256u);
  constexpr int kTopDepthCap = 8;

  std::vector<TopNode> tops;
  std::vector<SubtreeTask> tasks;
  tops.reserve(1024);
  tasks.reserve(1024);

  // Serial top split: exactly the build_structure recursion, except that
  // child subtrees below the cutoff become tasks instead of recursing.
  const auto plan = [&](auto&& self, std::uint32_t first, std::uint32_t count,
                        int depth, const Vec3d& cell_center, double cell_half,
                        std::int32_t parent) -> std::int32_t {
    const auto ti = static_cast<std::int32_t>(tops.size());
    tops.emplace_back();
    {
      Node& node = tops.back().node;
      node.first = first;
      node.count = count;
      node.center = cell_center;
      node.half_size = cell_half;
      node.depth = static_cast<std::uint8_t>(depth);
      node.parent = parent;
    }
    max_depth_ = std::max(max_depth_, depth);

    const bool split = count > cfg_.leaf_max && depth < cfg_.max_depth;
    if (split) {
      tops[static_cast<std::size_t>(ti)].node.leaf = false;
      std::uint32_t begin = first;
      const std::uint32_t end = first + count;
      for (unsigned oct = 0; oct < 8; ++oct) {
        std::uint32_t lo = begin, hi = end;
        while (lo < hi) {
          const std::uint32_t mid = lo + (hi - lo) / 2;
          if (math::morton_octant(keys_[mid], depth) <= oct) {
            lo = mid + 1;
          } else {
            hi = mid;
          }
        }
        const std::uint32_t child_count = lo - begin;
        if (child_count > 0) {
          const double quarter = 0.5 * cell_half;
          const Vec3d child_center{
              cell_center.x + ((oct & 1u) ? quarter : -quarter),
              cell_center.y + ((oct & 2u) ? quarter : -quarter),
              cell_center.z + ((oct & 4u) ? quarter : -quarter)};
          const bool child_splits =
              child_count > cfg_.leaf_max && depth + 1 < cfg_.max_depth;
          auto& slots = tops[static_cast<std::size_t>(ti)];
          if (child_splits && child_count > top_cutoff &&
              depth + 1 < kTopDepthCap) {
            slots.child_top[oct] = self(self, begin, child_count, depth + 1,
                                        child_center, quarter, ti);
          } else {
            slots.child_task[oct] = static_cast<std::int32_t>(tasks.size());
            tasks.push_back(SubtreeTask{begin, child_count, depth + 1,
                                        child_center, quarter, ti, oct});
          }
        }
        begin = lo;
        if (begin >= end) break;
      }
    }
    return ti;
  };
  plan(plan, 0, n, 0, center, half_size, -1);

  // Build every subtree into its own arena across the pool. Each task
  // writes only its own arena and depth slot, so the results are
  // lane-assignment independent.
  std::vector<std::vector<Node>> arenas(tasks.size());
  std::vector<int> task_depth(tasks.size(), 0);
  pool.parallel_for(
      tasks.size(), 1, [&](std::size_t begin, std::size_t end, unsigned) {
        for (std::size_t t = begin; t < end; ++t) {
          const SubtreeTask& task = tasks[t];
          std::vector<Node>& arena = arenas[t];
          arena.reserve(2 * task.count / std::max(1u, cfg_.leaf_max) + 16);
          int local_depth = 0;
          build_structure(arena, task.first, task.count, task.depth,
                          task.center, task.half_size, -1, local_depth);
          task_depth[t] = local_depth;
        }
      });
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    max_depth_ = std::max(max_depth_, task_depth[t]);
  }

  // Stitch: a serial preorder walk over the top skeleton assigns every
  // top node and every task arena its final index block — node, then the
  // octant children's complete subtrees in order, which is exactly the
  // layout the serial recursion emits. Top nodes are written here; the
  // arenas are rebased and copied across the pool afterwards.
  std::size_t total = tops.size();
  for (const auto& arena : arenas) total += arena.size();
  nodes_.resize(total);
  std::vector<std::int32_t> task_base(tasks.size(), 0);
  std::vector<std::int32_t> task_parent(tasks.size(), -1);
  std::size_t cursor = 0;
  const auto emit = [&](auto&& self, std::int32_t ti,
                        std::int32_t parent_final) -> void {
    const auto final_idx = static_cast<std::int32_t>(cursor++);
    const TopNode& top = tops[static_cast<std::size_t>(ti)];
    Node& dst = nodes_[static_cast<std::size_t>(final_idx)];
    dst = top.node;
    dst.parent = parent_final;
    for (unsigned oct = 0; oct < 8; ++oct) {
      if (top.child_top[oct] >= 0) {
        dst.child[oct] = static_cast<std::int32_t>(cursor);
        self(self, top.child_top[oct], final_idx);
      } else if (top.child_task[oct] >= 0) {
        const auto t = static_cast<std::size_t>(top.child_task[oct]);
        const auto base = static_cast<std::int32_t>(cursor);
        dst.child[oct] = base;
        task_base[t] = base;
        task_parent[t] = final_idx;
        cursor += arenas[t].size();
      }
    }
  };
  emit(emit, 0, -1);

  // Rebase each arena's local indices by its block base and copy it into
  // place; blocks are disjoint, so the copies parallelize freely.
  pool.parallel_for(
      tasks.size(), 1, [&](std::size_t begin, std::size_t end, unsigned) {
        for (std::size_t t = begin; t < end; ++t) {
          const std::vector<Node>& arena = arenas[t];
          const std::int32_t base = task_base[t];
          // g5lint: hot-begin(tree_stitch)
          for (std::size_t j = 0; j < arena.size(); ++j) {
            Node& dst = nodes_[static_cast<std::size_t>(base) + j];
            dst = arena[j];
            for (unsigned oct = 0; oct < 8; ++oct) {
              if (dst.child[oct] >= 0) dst.child[oct] += base;
            }
            dst.parent = dst.parent >= 0 ? dst.parent + base : task_parent[t];
          }
          // g5lint: hot-end
        }
      });
}

void BhTree::sort_pairs_parallel(std::uint32_t n, util::ThreadPool& pool) {
  key_scratch_.resize(n);
  idx_scratch_.resize(n);
  const std::size_t chunks = chunk_count(n);
  // Per-(chunk, digit) histogram; cell (c, d) is touched only by chunk c
  // in both the count and scatter sweeps, so the table needs no locks and
  // the scatter offsets are independent of lane assignment.
  std::vector<std::uint32_t> hist(chunks * kRadixBuckets);

  std::uint64_t* key_src = keys_.data();
  std::uint64_t* key_dst = key_scratch_.data();
  std::uint32_t* idx_src = orig_index_.data();
  std::uint32_t* idx_dst = idx_scratch_.data();

  for (unsigned pass = 0; pass < kRadixPasses; ++pass) {
    const unsigned shift = pass * kRadixBits;
    pool.parallel_for(
        n, kChunk, [&](std::size_t begin, std::size_t end, unsigned) {
          std::uint32_t* row = hist.data() + (begin / kChunk) * kRadixBuckets;
          std::fill(row, row + kRadixBuckets, 0u);
          // g5lint: hot-begin(tree_radix_count)
          for (std::size_t i = begin; i < end; ++i) {
            ++row[(key_src[i] >> shift) & (kRadixBuckets - 1)];
          }
          // g5lint: hot-end
        });

    // Exclusive prefix sums in digit-major, then chunk order — the order
    // a serial stable pass would visit the elements. A digit holding
    // every element means the pass is the identity permutation; skip it.
    bool skip = false;
    std::uint32_t running = 0;
    for (std::size_t d = 0; d < kRadixBuckets && !skip; ++d) {
      std::uint32_t digit_total = 0;
      for (std::size_t c = 0; c < chunks; ++c) {
        std::uint32_t& cell = hist[c * kRadixBuckets + d];
        digit_total += cell;
        const std::uint32_t offset = running;
        running += cell;
        cell = offset;
      }
      if (digit_total == n) skip = true;
    }
    if (skip) continue;

    pool.parallel_for(
        n, kChunk, [&](std::size_t begin, std::size_t end, unsigned) {
          std::uint32_t* row = hist.data() + (begin / kChunk) * kRadixBuckets;
          // g5lint: hot-begin(tree_radix_scatter)
          for (std::size_t i = begin; i < end; ++i) {
            const std::size_t d = (key_src[i] >> shift) & (kRadixBuckets - 1);
            const std::size_t dst = row[d]++;
            key_dst[dst] = key_src[i];
            idx_dst[dst] = idx_src[i];
          }
          // g5lint: hot-end
        });
    std::swap(key_src, key_dst);
    std::swap(idx_src, idx_dst);
  }

  if (key_src != keys_.data()) {
    std::swap(keys_, key_scratch_);
    std::swap(orig_index_, idx_scratch_);
  }
}

void BhTree::moments_range(std::size_t begin, std::size_t end) {
  // g5lint: hot-begin(tree_moments)
  for (std::size_t idx = begin; idx < end; ++idx) {
    Node& node = nodes_[idx];
    double m = 0.0;
    Vec3d com{};
    for (std::uint32_t k = node.first; k < node.first + node.count; ++k) {
      m += sorted_mass_[k];
      com += sorted_mass_[k] * sorted_pos_[k];
    }
    node.mass = m;
    node.com = m > 0.0 ? com / m : node.center;
    double br2 = 0.0;
    for (std::uint32_t k = node.first; k < node.first + node.count; ++k) {
      br2 = std::max(br2, (sorted_pos_[k] - node.center).norm2());
    }
    node.bradius = std::sqrt(br2);
  }
  // g5lint: hot-end
}

void BhTree::quadrupole_range(std::size_t begin, std::size_t end) {
  // g5lint: hot-begin(tree_quadrupole)
  for (std::size_t idx = begin; idx < end; ++idx) {
    const Node& node = nodes_[idx];
    Quadrupole& q = quads_[idx];
    for (std::uint32_t k = node.first; k < node.first + node.count; ++k) {
      const Vec3d d = sorted_pos_[k] - node.com;
      const double m = sorted_mass_[k];
      const double d2 = d.norm2();
      q.xx += m * (3.0 * d.x * d.x - d2);
      q.yy += m * (3.0 * d.y * d.y - d2);
      q.zz += m * (3.0 * d.z * d.z - d2);
      q.xy += m * 3.0 * d.x * d.y;
      q.xz += m * 3.0 * d.x * d.z;
      q.yz += m * 3.0 * d.y * d.z;
    }
  }
  // g5lint: hot-end
}

}  // namespace g5::tree
