// Barnes' modified tree algorithm (Barnes 1990): grouped interaction lists.
//
// Neighboring particles are grouped — a group is a maximal tree cell with
// at most n_crit bodies — and ONE interaction list is shared by all bodies
// of the group. The list is built with the opening criterion evaluated
// against the whole group: the distance entering the MAC is the distance
// from the candidate cell's center of mass to the group's bounding sphere
// (center c_g, radius r_g), i.e. d_eff = |com - c_g| - r_g. Forces between
// members of the same group are computed directly: the walk excludes the
// group's own subtree and the group's bodies are appended to the list as
// particle terms.
//
// This trades host work (one traversal per group instead of per particle,
// ~ a factor n_g) for extra pipeline work (longer, shared lists) — the
// paper's Section 3, and the tradeoff bench_e2_ng_sweep measures.
#pragma once

#include <cstdint>
#include <vector>

#include "tree/walk.hpp"

namespace g5::tree {

struct GroupConfig {
  /// Largest body count of a group cell (the paper's n_g knob; its
  /// optimum for the 1999 host/GRAPE speed ratio is ~2000).
  std::uint32_t n_crit = 256;
};

/// One group: a tree node index plus its particle slot range.
struct Group {
  std::int32_t node = -1;
  std::uint32_t first = 0;
  std::uint32_t count = 0;
};

/// Collect the groups of a tree: maximal cells with count <= n_crit.
std::vector<Group> collect_groups(const BhTree& tree,
                                  const GroupConfig& config);

/// Same, into a caller-owned vector (cleared first). The engines call
/// this every step with a reused member so the group array's heap
/// allocation is paid once per run, not once per step.
void collect_groups(const BhTree& tree, const GroupConfig& config,
                    std::vector<Group>& out);

/// Build the shared interaction list of one group (external terms via the
/// group MAC + the group's own bodies as direct terms). Returns list size.
std::size_t walk_group(const BhTree& tree, const Group& group,
                       const WalkConfig& config, InteractionList& out,
                       WalkStats* stats = nullptr);

/// Count-only variant: returns the list length without materializing it,
/// and accounts interactions as count * list length in `stats`.
std::uint64_t count_group(const BhTree& tree, const Group& group,
                          const WalkConfig& config,
                          WalkStats* stats = nullptr);

}  // namespace g5::tree
