#include "tree/walk.hpp"

#include <algorithm>
#include <cmath>

#include "tree/traversal_stack.hpp"

namespace g5::tree {

void WalkStats::merge(const WalkStats& o) {
  lists += o.lists;
  interactions += o.interactions;
  list_entries += o.list_entries;
  node_terms += o.node_terms;
  particle_terms += o.particle_terms;
  nodes_visited += o.nodes_visited;
  max_list = std::max(max_list, o.max_list);
}

namespace {

// g5lint: hot-begin(tree-traverse) — the per-target walk inner loop; the
// only storage is the guarded TraversalStack (inline, heap spill only on
// pathological depth).
/// Shared traversal: calls on_node(node) for accepted cells and
/// on_particle(slot) for expanded leaves; returns visits.
template <typename NodeFn, typename ParticleFn>
std::uint64_t traverse(const BhTree& tree, const Vec3d& target,
                       const WalkConfig& cfg, NodeFn&& on_node,
                       ParticleFn&& on_particle) {
  // Explicit guarded stack: inline storage covers the Morton-bounded
  // worst case, deeper trees spill to the heap instead of overflowing.
  std::uint64_t visits = 0;
  TraversalStack stack;
  stack.push(0);
  const double theta2 = cfg.theta * cfg.theta;
  while (!stack.empty()) {
    const Node& node = tree.node(static_cast<std::size_t>(stack.pop()));
    ++visits;
    const double d2 = (node.com - target).norm2();
    const double s = mac_size(node, cfg.mac);
    // Accept when (s/d)^2 < theta^2 — but never a cell that contains the
    // target itself (with theta > 1/sqrt(3) such a cell could otherwise
    // pass the MAC and absorb the target's own mass into a monopole).
    const Vec3d dc = target - node.center;
    const bool contains_target = std::fabs(dc.x) <= node.half_size &&
                                 std::fabs(dc.y) <= node.half_size &&
                                 std::fabs(dc.z) <= node.half_size;
    const bool accept = !contains_target && s * s < theta2 * d2;
    if (accept) {
      on_node(node, static_cast<std::size_t>(
                        &node - tree.nodes().data()));
      continue;
    }
    if (node.leaf) {
      for (std::uint32_t k = node.first; k < node.first + node.count; ++k) {
        on_particle(k);
      }
      continue;
    }
    for (int oct = 7; oct >= 0; --oct) {
      const std::int32_t c = node.child[oct];
      if (c >= 0) stack.push(c);
    }
  }
  return visits;
}
// g5lint: hot-end

}  // namespace

std::size_t walk_original(const BhTree& tree, const Vec3d& target,
                          const WalkConfig& config, InteractionList& out,
                          WalkStats* stats) {
  out.clear();
  if (tree.empty() || tree.particle_count() == 0) return 0;
  std::uint64_t node_terms = 0, particle_terms = 0;
  const bool quads = config.use_quadrupole && tree.has_quadrupoles();
  const auto visits = traverse(
      tree, target, config,
      [&](const Node& node, std::size_t idx) {
        if (quads) {
          out.push(node.com, node.mass, tree.quadrupole(idx));
        } else {
          out.push(node.com, node.mass);
        }
        ++node_terms;
      },
      [&](std::uint32_t slot) {
        if (quads) {
          out.push(tree.sorted_pos()[slot], tree.sorted_mass()[slot],
                   Quadrupole{});
        } else {
          out.push(tree.sorted_pos()[slot], tree.sorted_mass()[slot]);
        }
        ++particle_terms;
      });
  if (stats != nullptr) {
    ++stats->lists;
    stats->interactions += out.size();
    stats->list_entries += out.size();
    stats->node_terms += node_terms;
    stats->particle_terms += particle_terms;
    stats->nodes_visited += visits;
    stats->max_list = std::max<std::uint64_t>(stats->max_list, out.size());
  }
  return out.size();
}

std::uint64_t count_original(const BhTree& tree, const Vec3d& target,
                             const WalkConfig& config, WalkStats* stats) {
  if (tree.empty() || tree.particle_count() == 0) return 0;
  std::uint64_t node_terms = 0, particle_terms = 0;
  const auto visits = traverse(
      tree, target, config,
      [&](const Node&, std::size_t) { ++node_terms; },
      [&](std::uint32_t) { ++particle_terms; });
  const std::uint64_t len = node_terms + particle_terms;
  if (stats != nullptr) {
    ++stats->lists;
    stats->interactions += len;
    stats->list_entries += len;
    stats->node_terms += node_terms;
    stats->particle_terms += particle_terms;
    stats->nodes_visited += visits;
    stats->max_list = std::max(stats->max_list, len);
  }
  return len;
}

// g5lint: hot-begin(list-eval-host) — the host-side O(targets x list)
// kernel; everything lives in registers / the caller's spans.
void evaluate_list_host(const InteractionList& list,
                        std::span<const Vec3d> targets, double eps,
                        std::span<Vec3d> acc, std::span<double> pot,
                        std::span<const double> self_mass) {
  const double eps2 = eps * eps;
  const bool quads = list.has_quadrupoles();
  const bool self_aware = !self_mass.empty() && eps2 > 0.0;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    Vec3d a{};
    double p = 0.0;
    double coincident_mass = 0.0;
    const Vec3d xi = targets[i];
    for (std::size_t j = 0; j < list.size(); ++j) {
      const Vec3d dx = list.pos[j] - xi;
      if (dx.norm2() == 0.0) {
        // Zero separation: the softened force is exactly zero, the
        // softened potential is -m/eps. Collect the mass so the self term
        // (and only the self term) can be excluded below; without
        // self-mass information — or unsoftened, where the pair is
        // singular — these entries are skipped entirely.
        coincident_mass += list.mass[j];
        continue;
      }
      const double r2 = dx.norm2() + eps2;
      const double rinv = 1.0 / std::sqrt(r2);
      const double rinv2 = rinv * rinv;
      const double rinv3 = rinv * rinv2;
      a += (list.mass[j] * rinv3) * dx;
      p -= list.mass[j] * rinv;
      if (quads) {
        const Quadrupole& q = list.quad[j];
        if (q.is_zero()) continue;
        // Traceless-quadrupole terms about the source's center of mass:
        //   phi  = -(dx^T Q dx) / (2 r^5)
        //   a    = -Q dx / r^5 + (5/2) (dx^T Q dx) dx / r^7.
        const double rinv5 = rinv3 * rinv2;
        const Vec3d qdx = q.apply(dx);
        const double dqd = dx.dot(qdx);
        a += -rinv5 * qdx + (2.5 * dqd * rinv5 * rinv2) * dx;
        p -= 0.5 * dqd * rinv5;
      }
    }
    if (self_aware) {
      // The target appears once in its own list; every other coincident
      // entry is a distinct particle whose softened potential was lost by
      // the old drop-all-coincident cut. The common case (self term only)
      // leaves `excess` exactly zero, keeping results bit-identical.
      const double excess = coincident_mass - self_mass[i];
      if (excess != 0.0) p -= excess / std::sqrt(eps2);
    }
    acc[i] = a;
    pot[i] = p;
  }
}
// g5lint: hot-end

}  // namespace g5::tree
