// Barnes-Hut octree over a particle snapshot.
//
// Construction is the standard Morton-order linear build: particles are
// sorted by Morton key of their position inside the root cube, every
// octree cell then owns a contiguous index range, and the tree is built
// recursively by splitting ranges at octant boundaries (binary search on
// the sorted keys). Monopole moments (mass, center of mass) are computed
// per node from its contiguous particle range — GRAPE-5 evaluates
// point-mass forces, so monopole is what the paper's code shipped to the
// hardware.
//
// The build runs serially or, given a util::ThreadPool, in parallel over
// every phase (bounding box, keys, sort, node construction, moments).
// The parallel build is bitwise-identical to the serial one for any
// thread count: chunk boundaries, the sort order (Morton key, then
// original index), the node preorder layout, and every per-node moment
// loop are independent of how chunks land on lanes.
//
// The tree keeps its own sorted copies of positions and masses; walks emit
// interaction lists that point into these arrays, and `original_index`
// maps sorted slots back to the caller's ordering.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "math/morton.hpp"
#include "math/vec3.hpp"
#include "model/particles.hpp"

namespace g5::util {
class ThreadPool;
}

namespace g5::tree {

using math::Vec3d;

/// Threading knobs of the tree build (tentatively plumbed from
/// core::ForceParams by the tree engines).
struct TreeBuildParams {
  /// Requested build parallelism. 1 forces the serial path even when a
  /// pool is supplied; any other value uses every lane of the supplied
  /// pool (0 = default). Results are bitwise-identical either way.
  std::uint32_t threads = 0;
  /// Minimum particle count for the parallel path: below this the serial
  /// build wins on fork-join overhead alone, so the pool is ignored.
  std::uint32_t parallel_cutoff = 1u << 15;
};

struct TreeBuildConfig {
  /// A cell with <= leaf_max bodies becomes a leaf.
  std::uint32_t leaf_max = 8;
  /// Hard depth cap. Morton keys resolve 21 levels, so the build clamps
  /// this to [0, kMortonBitsPerDim - 1] — deeper splits could never
  /// separate particles.
  int max_depth = math::kMortonBitsPerDim - 1;
  /// Also compute traceless quadrupole moments per node. GRAPE-5 consumes
  /// point masses only, so quadrupoles serve the host-evaluation path
  /// (accuracy-vs-cost ablation against the hardware's monopole lists).
  bool quadrupole = false;
  /// Parallel-build knobs; only honored when build() is handed a pool.
  TreeBuildParams parallel;
};

/// Traceless quadrupole tensor about the node's center of mass:
/// Q_ij = sum_k m_k (3 dx_i dx_j - |dx|^2 delta_ij).
struct Quadrupole {
  double xx = 0.0, yy = 0.0, zz = 0.0;
  double xy = 0.0, xz = 0.0, yz = 0.0;

  [[nodiscard]] bool is_zero() const {
    return xx == 0.0 && yy == 0.0 && zz == 0.0 && xy == 0.0 && xz == 0.0 &&
           yz == 0.0;
  }
  /// Q * v (symmetric matrix-vector product).
  [[nodiscard]] Vec3d apply(const Vec3d& v) const {
    return {xx * v.x + xy * v.y + xz * v.z,
            xy * v.x + yy * v.y + yz * v.z,
            xz * v.x + yz * v.y + zz * v.z};
  }
};

struct Node {
  std::uint32_t first = 0;   ///< first particle slot (sorted order)
  std::uint32_t count = 0;   ///< particles in the subtree
  std::int32_t child[8] = {-1, -1, -1, -1, -1, -1, -1, -1};
  std::int32_t parent = -1;
  Vec3d center{};            ///< geometric cell center
  double half_size = 0.0;    ///< half the cell edge
  Vec3d com{};               ///< center of mass of the subtree
  double mass = 0.0;
  /// Distance from the cell center to the farthest member particle
  /// (bounding radius used by the grouped walk's opening criterion).
  double bradius = 0.0;
  std::uint8_t depth = 0;
  bool leaf = true;

  [[nodiscard]] double edge() const { return 2.0 * half_size; }
};

class BhTree {
 public:
  BhTree() = default;

  /// Build over the given snapshot (positions copied and sorted inside).
  /// With a pool and config.parallel permitting, every phase runs across
  /// the pool's lanes; the result is bitwise-identical to the serial
  /// build (pool == nullptr) for any lane count. The pool must not be
  /// executing another parallel_for (ThreadPool is not reentrant).
  void build(std::span<const Vec3d> pos, std::span<const double> mass,
             const TreeBuildConfig& config = TreeBuildConfig{},
             util::ThreadPool* pool = nullptr);

  /// Convenience overload.
  void build(const model::ParticleSet& pset,
             const TreeBuildConfig& config = TreeBuildConfig{},
             util::ThreadPool* pool = nullptr) {
    build(pset.pos(), pset.mass(), config, pool);
  }

  [[nodiscard]] bool empty() const noexcept { return nodes_.empty(); }
  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] std::size_t particle_count() const noexcept {
    return sorted_pos_.size();
  }

  [[nodiscard]] const Node& node(std::size_t idx) const {
    return nodes_[idx];
  }
  /// Quadrupole of a node (valid when built with config.quadrupole).
  [[nodiscard]] const Quadrupole& quadrupole(std::size_t idx) const {
    return quads_.at(idx);
  }
  [[nodiscard]] bool has_quadrupoles() const noexcept {
    return !quads_.empty();
  }
  [[nodiscard]] const Node& root() const { return nodes_.front(); }
  [[nodiscard]] const std::vector<Node>& nodes() const noexcept {
    return nodes_;
  }

  /// Particle attributes in tree (Morton) order.
  [[nodiscard]] const std::vector<Vec3d>& sorted_pos() const noexcept {
    return sorted_pos_;
  }
  [[nodiscard]] const std::vector<double>& sorted_mass() const noexcept {
    return sorted_mass_;
  }
  /// sorted slot -> caller index.
  [[nodiscard]] const std::vector<std::uint32_t>& original_index()
      const noexcept {
    return orig_index_;
  }
  /// Morton keys in sorted order. Ties (coincident particles) are broken
  /// by original index, so equal-key runs of original_index() ascend.
  [[nodiscard]] const std::vector<std::uint64_t>& keys() const noexcept {
    return keys_;
  }

  [[nodiscard]] const TreeBuildConfig& config() const noexcept {
    return cfg_;
  }
  /// Root cube (cubic hull of the snapshot, slightly padded).
  [[nodiscard]] Vec3d root_lo() const noexcept { return root_lo_; }
  [[nodiscard]] double root_size() const noexcept { return root_size_; }

  [[nodiscard]] int max_depth_reached() const noexcept { return max_depth_; }

 private:
  TreeBuildConfig cfg_;
  std::vector<Node> nodes_;
  std::vector<Quadrupole> quads_;
  std::vector<Vec3d> sorted_pos_;
  std::vector<double> sorted_mass_;
  std::vector<std::uint32_t> orig_index_;
  std::vector<std::uint64_t> keys_;
  /// Radix-sort ping-pong halves (parallel path); kept as members so
  /// steady-state per-step rebuilds reuse their capacity.
  std::vector<std::uint64_t> key_scratch_;
  std::vector<std::uint32_t> idx_scratch_;
  Vec3d root_lo_{};
  double root_size_ = 0.0;
  int max_depth_ = 0;

  /// Recursive preorder structure build into `arena` (node fields except
  /// moments; child/parent indices are arena-local, the arena root's
  /// parent is `parent`). Returns the arena index of the subtree root and
  /// maxes the deepest level into `max_depth`.
  std::int32_t build_structure(std::vector<Node>& arena, std::uint32_t first,
                               std::uint32_t count, int depth,
                               const Vec3d& center, double half_size,
                               std::int32_t parent, int& max_depth) const;
  /// Parallel node construction: serial top-of-tree split into subtree
  /// tasks, per-task arenas built across the pool, stitched into nodes_
  /// in the exact serial preorder.
  void build_nodes_parallel(std::uint32_t n, const Vec3d& center,
                            double half_size, util::ThreadPool& pool);
  /// Stable LSD radix sort of (keys_, orig_index_) pairs by key across
  /// the pool; reproduces the serial comparator order exactly.
  void sort_pairs_parallel(std::uint32_t n, util::ThreadPool& pool);
  /// Per-node monopole moments (mass, com, bradius) over [begin, end).
  void moments_range(std::size_t begin, std::size_t end);
  /// Per-node quadrupole moments over [begin, end).
  void quadrupole_range(std::size_t begin, std::size_t end);
};

}  // namespace g5::tree
