// The original Barnes-Hut walk: one interaction list per particle.
//
// Opening criterion (MAC): a cell of edge s at distance d from the target
// is accepted as a single point mass when s / d < theta; otherwise it is
// opened. d is measured from the target position to the cell's center of
// mass. This is the classic Barnes & Hut (1986) criterion, and the variant
// the paper's "original algorithm" operation counts refer to.
#pragma once

#include <cstdint>
#include <vector>

#include "tree/tree.hpp"

namespace g5::tree {

/// A flat interaction list: field sources as (position, mass) pairs —
/// exactly the stream a GRAPE board consumes. When a walk runs with
/// use_quadrupole, a parallel array of quadrupole tensors is filled (host
/// evaluation only; the hardware takes point masses). Reused across walks
/// to keep allocations off the hot path.
struct InteractionList {
  std::vector<Vec3d> pos;
  std::vector<double> mass;
  std::vector<Quadrupole> quad;  ///< empty unless built with quadrupoles

  [[nodiscard]] std::size_t size() const noexcept { return pos.size(); }
  [[nodiscard]] bool has_quadrupoles() const noexcept {
    return !quad.empty();
  }
  void clear() noexcept {
    pos.clear();
    mass.clear();
    quad.clear();
  }
  void push(const Vec3d& p, double m) {
    pos.push_back(p);
    mass.push_back(m);
  }
  void push(const Vec3d& p, double m, const Quadrupole& q) {
    pos.push_back(p);
    mass.push_back(m);
    quad.push_back(q);
  }
  void reserve(std::size_t n) {
    pos.reserve(n);
    mass.reserve(n);
  }
};

/// Counters describing one or more walks.
struct WalkStats {
  std::uint64_t lists = 0;          ///< interaction lists built
  std::uint64_t interactions = 0;   ///< sum over lists of ni * nj
  std::uint64_t list_entries = 0;   ///< sum over lists of nj
  std::uint64_t node_terms = 0;     ///< entries that were cell monopoles
  std::uint64_t particle_terms = 0; ///< entries that were real particles
  std::uint64_t nodes_visited = 0;  ///< traversal visits (host work proxy)
  std::uint64_t max_list = 0;
  [[nodiscard]] double mean_list() const {
    return lists ? static_cast<double>(list_entries) /
                       static_cast<double>(lists)
                 : 0.0;
  }
  void merge(const WalkStats& o);
};

/// Multipole acceptance criterion variant.
enum class Mac {
  /// Classic Barnes & Hut: open when cell edge / distance >= theta.
  Edge,
  /// Barnes-style tighter variant: use the cell's bounding radius
  /// (distance from the cell center to the farthest member) instead of
  /// the geometric edge — sparse cells close earlier, shrinking lists.
  /// Ablation: bench_a1_ablations.
  Bmax,
};

struct WalkConfig {
  double theta = 0.75;  ///< opening angle
  Mac mac = Mac::Edge;  ///< acceptance criterion variant
  /// Emit quadrupole tensors for accepted cells (requires a tree built
  /// with TreeBuildConfig::quadrupole; particles get zero tensors).
  bool use_quadrupole = false;
};

/// The size measure the MAC compares against theta * distance: the cell
/// edge for the classic criterion, the bounding radius (center to the
/// farthest member — smaller than the edge for sparse cells, at most
/// sqrt(3)/2 of it for full ones) for the bmax variant.
inline double mac_size(const Node& node, Mac mac) {
  return mac == Mac::Edge ? node.edge() : node.bradius;
}

/// Build the interaction list for one target position. The leaf containing
/// the target is expanded to particles (including the target itself when
/// `self_slot` points at it; the pipeline/self-potential convention deals
/// with the self pair). Returns the list length.
std::size_t walk_original(const BhTree& tree, const Vec3d& target,
                          const WalkConfig& config, InteractionList& out,
                          WalkStats* stats = nullptr);

/// Count-only variant (no list materialization) — used by the
/// "original-algorithm operation count" correction of Section 5.
std::uint64_t count_original(const BhTree& tree, const Vec3d& target,
                             const WalkConfig& config,
                             WalkStats* stats = nullptr);

/// Evaluate an interaction list on targets in double precision (host
/// backend). acc/pot overwritten. Lists carrying quadrupole tensors get
/// the quadrupole force/potential terms added per entry.
///
/// Zero-separation handling: when `self_mass` is supplied (one mass per
/// target; each target is assumed to appear exactly once in the list),
/// distinct particles coinciding with the target contribute their softened
/// potential -m/eps (their force is exactly zero) and only the target's
/// own self term is excluded — the engine convention that the potential
/// carries no self term. With `self_mass` empty, every zero-separation
/// entry is skipped (callers comparing against the GRAPE pipeline rely on
/// that hardware-style cut). Unsoftened (eps == 0) zero-separation pairs
/// are always skipped: they are singular.
void evaluate_list_host(const InteractionList& list,
                        std::span<const Vec3d> targets, double eps,
                        std::span<Vec3d> acc, std::span<double> pot,
                        std::span<const double> self_mass = {});

}  // namespace g5::tree
