#include "tree/groupwalk.hpp"

#include <algorithm>
#include <cmath>

#include "tree/traversal_stack.hpp"

namespace g5::tree {

std::vector<Group> collect_groups(const BhTree& tree,
                                  const GroupConfig& config) {
  std::vector<Group> groups;
  collect_groups(tree, config, groups);
  return groups;
}

void collect_groups(const BhTree& tree, const GroupConfig& config,
                    std::vector<Group>& out) {
  out.clear();
  if (tree.empty() || tree.particle_count() == 0) return;
  // DFS: stop descending at the first cell with count <= n_crit; a leaf
  // above n_crit (can only happen at the depth cap) becomes its own group.
  std::vector<std::int32_t> stack{0};
  while (!stack.empty()) {
    const std::int32_t idx = stack.back();
    stack.pop_back();
    const Node& node = tree.node(static_cast<std::size_t>(idx));
    if (node.count <= config.n_crit || node.leaf) {
      out.push_back(Group{idx, node.first, node.count});
      continue;
    }
    for (int oct = 7; oct >= 0; --oct) {
      const std::int32_t c = node.child[oct];
      if (c >= 0) stack.push_back(c);
    }
  }
}

namespace {

// g5lint: hot-begin(group-traverse) — one walk per group instead of per
// particle (the paper's modified algorithm); same no-allocation rule as
// the per-target traversal.
/// Group-MAC traversal skipping the group's own subtree. Calls on_node /
/// on_particle for external sources only; returns node visits.
template <typename NodeFn, typename ParticleFn>
std::uint64_t traverse_group(const BhTree& tree, const Group& group,
                             const WalkConfig& cfg, NodeFn&& on_node,
                             ParticleFn&& on_particle) {
  const Node& gnode = tree.node(static_cast<std::size_t>(group.node));
  // Bounding sphere of the group: cell center + radius to farthest member.
  const Vec3d gcenter = gnode.center;
  const double gradius = gnode.bradius;

  std::uint64_t visits = 0;
  TraversalStack stack;
  stack.push(0);
  while (!stack.empty()) {
    const std::int32_t idx = stack.pop();
    if (idx == group.node) continue;  // own subtree handled directly
    const Node& node = tree.node(static_cast<std::size_t>(idx));
    ++visits;
    // The group's ancestors must always be opened (the group is inside
    // them); the containment test covers that: the group's center lies in
    // every ancestor cell.
    const Vec3d dc = gcenter - node.center;
    const double reach = node.half_size + gradius;
    const bool overlaps = std::fabs(dc.x) <= reach &&
                          std::fabs(dc.y) <= reach &&
                          std::fabs(dc.z) <= reach;
    const double d_eff =
        std::max((node.com - gcenter).norm() - gradius, 0.0);
    const double s = mac_size(node, cfg.mac);
    const bool accept = !overlaps && s < cfg.theta * d_eff;
    if (accept) {
      on_node(node, static_cast<std::size_t>(idx));
      continue;
    }
    if (node.leaf) {
      for (std::uint32_t k = node.first; k < node.first + node.count; ++k) {
        on_particle(k);
      }
      continue;
    }
    for (int oct = 7; oct >= 0; --oct) {
      const std::int32_t c = node.child[oct];
      if (c >= 0) stack.push(c);
    }
  }
  return visits;
}
// g5lint: hot-end

}  // namespace

std::size_t walk_group(const BhTree& tree, const Group& group,
                       const WalkConfig& config, InteractionList& out,
                       WalkStats* stats) {
  out.clear();
  if (tree.empty() || tree.particle_count() == 0) return 0;
  std::uint64_t node_terms = 0, particle_terms = 0;
  const bool quads = config.use_quadrupole && tree.has_quadrupoles();
  const auto visits = traverse_group(
      tree, group, config,
      [&](const Node& node, std::size_t idx) {
        if (quads) {
          out.push(node.com, node.mass, tree.quadrupole(idx));
        } else {
          out.push(node.com, node.mass);
        }
        ++node_terms;
      },
      [&](std::uint32_t slot) {
        if (quads) {
          out.push(tree.sorted_pos()[slot], tree.sorted_mass()[slot],
                   Quadrupole{});
        } else {
          out.push(tree.sorted_pos()[slot], tree.sorted_mass()[slot]);
        }
        ++particle_terms;
      });
  // Members of the group: direct-sum sources shared by the whole group.
  for (std::uint32_t k = group.first; k < group.first + group.count; ++k) {
    if (quads) {
      out.push(tree.sorted_pos()[k], tree.sorted_mass()[k], Quadrupole{});
    } else {
      out.push(tree.sorted_pos()[k], tree.sorted_mass()[k]);
    }
    ++particle_terms;
  }
  if (stats != nullptr) {
    ++stats->lists;
    stats->list_entries += out.size();
    stats->interactions +=
        static_cast<std::uint64_t>(out.size()) * group.count;
    stats->node_terms += node_terms;
    stats->particle_terms += particle_terms;
    stats->nodes_visited += visits;
    stats->max_list = std::max<std::uint64_t>(stats->max_list, out.size());
  }
  return out.size();
}

std::uint64_t count_group(const BhTree& tree, const Group& group,
                          const WalkConfig& config, WalkStats* stats) {
  if (tree.empty() || tree.particle_count() == 0) return 0;
  std::uint64_t node_terms = 0, particle_terms = 0;
  const auto visits = traverse_group(
      tree, group, config,
      [&](const Node&, std::size_t) { ++node_terms; },
      [&](std::uint32_t) { ++particle_terms; });
  const std::uint64_t len = node_terms + particle_terms + group.count;
  if (stats != nullptr) {
    ++stats->lists;
    stats->list_entries += len;
    stats->interactions += len * group.count;
    stats->node_terms += node_terms;
    stats->particle_terms += particle_terms + group.count;
    stats->nodes_visited += visits;
    stats->max_list = std::max(stats->max_list, len);
  }
  return len;
}

}  // namespace g5::tree
