#include "obs/span.hpp"

#include <atomic>
#include <chrono>
#include <map>
#include <utility>

#include "obs/flight.hpp"
#include "obs/trace.hpp"
#include "util/mutex.hpp"

namespace g5::obs {

namespace {

std::atomic<bool> g_enabled{false};

/// Per-thread span bookkeeping. `path` is the concatenation of the open
/// spans' names; `base` is a parent path propagated from another thread
/// (ScopedParentPath), applied when the outermost span opens.
struct ThreadState {
  std::string path;
  std::string base;
  int depth = 0;
};

ThreadState& thread_state() {
  thread_local ThreadState state;
  return state;
}

struct PhaseAccumulator {
  util::Mutex mutex;
  /// path -> (count, total seconds)
  std::map<std::string, std::pair<std::uint64_t, double>> table
      G5_GUARDED_BY(mutex);
};

PhaseAccumulator& phases() {
  static PhaseAccumulator acc;
  return acc;
}

void add_phase(const std::string& path, double seconds, std::uint64_t count) {
  PhaseAccumulator& acc = phases();
  const util::MutexLock lock(acc.mutex);
  auto& slot = acc.table[path];
  slot.first += count;
  slot.second += seconds;
}

}  // namespace

bool enabled() noexcept {
  return g_enabled.load(std::memory_order_relaxed);
}

void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

double now_us() noexcept {
  using clock = std::chrono::steady_clock;
  static const clock::time_point t0 = clock::now();
  return std::chrono::duration<double, std::micro>(clock::now() - t0).count();
}

Span::Span(std::string_view name, std::string_view category)
    : category_(category) {
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  ThreadState& ts = thread_state();
  if (ts.depth == 0) ts.path = ts.base;
  prev_len_ = ts.path.size();
  ts.path += '/';
  ts.path += name;
  ++ts.depth;
  active_ = true;
  // Flight recorder (armed only during live-telemetry runs): publish
  // this thread's new live path so a post-mortem can print per-thread
  // span stacks. One relaxed load when disarmed.
  if (FlightRecorder::armed()) {
    FlightRecorder::instance().publish_thread_path(ts.path);
  }
  start_us_ = now_us();
}

Span::~Span() {
  if (!active_) return;
  const double dur_us = now_us() - start_us_;
  ThreadState& ts = thread_state();
  add_phase(ts.path, dur_us * 1e-6, 1);
  if (tracing()) trace_complete_event(ts.path, category_, start_us_, dur_us);
  if (FlightRecorder::armed()) {
    FlightRecorder& fr = FlightRecorder::instance();
    fr.record_span(ts.path, start_us_, dur_us);
    // prev_len_ bytes of ts.path survive the resize below: publish the
    // popped path now so the live slot never points at a closed span.
    fr.publish_thread_path(
        std::string_view(ts.path.data(), prev_len_));
  }
  ts.path.resize(prev_len_);
  --ts.depth;
}

int Span::current_depth() noexcept { return thread_state().depth; }

std::string Span::current_path() {
  const ThreadState& ts = thread_state();
  return ts.depth > 0 ? ts.path : ts.base;
}

ScopedParentPath::ScopedParentPath(const std::string& parent_path) {
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  if (parent_path.empty()) return;
  ThreadState& ts = thread_state();
  // A thread that already has open spans (the fork-join caller re-entering
  // its own job) or an active base keeps its context.
  if (ts.depth != 0 || !ts.base.empty()) return;
  ts.base = parent_path;
  active_ = true;
}

ScopedParentPath::~ScopedParentPath() {
  if (!active_) return;
  ThreadState& ts = thread_state();
  ts.base.clear();
  if (ts.depth == 0) ts.path.clear();
}

void record_phase(std::string_view name, double seconds, std::uint64_t count) {
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  std::string path = Span::current_path();
  path += '/';
  path += name;
  add_phase(path, seconds, count);
}

std::vector<PhaseStat> phase_report() {
  PhaseAccumulator& acc = phases();
  const util::MutexLock lock(acc.mutex);
  std::vector<PhaseStat> out;
  out.reserve(acc.table.size());
  for (const auto& [path, stat] : acc.table) {
    out.push_back({path, stat.first, stat.second});
  }
  return out;  // std::map iteration order: already sorted by path
}

void reset_phases() {
  PhaseAccumulator& acc = phases();
  const util::MutexLock lock(acc.mutex);
  acc.table.clear();
}

}  // namespace g5::obs
