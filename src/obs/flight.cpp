#include "obs/flight.hpp"

#include <type_traits>

#include "util/thread.hpp"

namespace g5::obs {

static_assert(std::is_trivially_copyable_v<StepMetrics> &&
                  sizeof(StepMetrics) % 8 == 0,
              "StepMetrics rides through word-atomic seqlock cells");

FlightRecorder& FlightRecorder::instance() noexcept {
  // Constant-initializable members only: no destructor ordering hazards
  // and the instance exists before any crash handler could fire.
  static FlightRecorder recorder;
  return recorder;
}

void FlightRecorder::clear() noexcept {
  step_count_.store(0, std::memory_order_relaxed);
  span_count_.store(0, std::memory_order_relaxed);
  // Thread slots stay: threads keep their thread_local assignment.
}

void FlightRecorder::record_step(const StepMetrics& m) noexcept {
  const std::uint64_t idx = step_count_.load(std::memory_order_relaxed);
  steps_[idx % kStepCapacity].store(&m);
  step_count_.store(idx + 1, std::memory_order_release);
}

void FlightRecorder::record_span(std::string_view path, double start_us,
                                 double dur_us) noexcept {
  SpanEvent ev{};
  const std::size_t n =
      path.size() < sizeof(ev.path) - 1 ? path.size() : sizeof(ev.path) - 1;
  std::memcpy(ev.path, path.data(), n);
  const char* name = util::current_thread_name();
  std::size_t tn = 0;
  for (; tn + 1 < sizeof(ev.thread) && name[tn] != '\0'; ++tn) {
    ev.thread[tn] = name[tn];
  }
  ev.start_us = start_us;
  ev.dur_us = dur_us;
  const std::uint64_t idx = span_count_.fetch_add(1, std::memory_order_relaxed);
  spans_[idx % kSpanCapacity].store(&ev);
}

std::uint32_t FlightRecorder::thread_slot_for_caller() noexcept {
  // Lazily assign each thread a slot for life; kThreadCapacity excess
  // threads go unrecorded rather than contending.
  thread_local std::uint32_t slot = [this]() noexcept {
    return thread_count_.fetch_add(1, std::memory_order_relaxed);
  }();
  return slot;
}

void FlightRecorder::publish_thread_path(std::string_view path) noexcept {
  const std::uint32_t slot = thread_slot_for_caller();
  if (slot >= kThreadCapacity) return;
  ThreadPath tp{};
  const char* name = util::current_thread_name();
  std::size_t tn = 0;
  for (; tn + 1 < sizeof(tp.thread) && name[tn] != '\0'; ++tn) {
    tp.thread[tn] = name[tn];
  }
  const std::size_t n =
      path.size() < kPathBytes - 1 ? path.size() : kPathBytes - 1;
  std::memcpy(tp.path, path.data(), n);
  threads_[slot].store(&tp);
}

std::size_t FlightRecorder::thread_slots() const noexcept {
  const std::uint32_t n = thread_count_.load(std::memory_order_relaxed);
  return n < kThreadCapacity ? n : kThreadCapacity;
}

bool FlightRecorder::read_step(std::uint64_t index,
                               StepMetrics* out) const noexcept {
  const std::uint64_t count = step_count_.load(std::memory_order_acquire);
  if (index >= count || index + kStepCapacity < count) return false;
  return steps_[index % kStepCapacity].load(out);
}

bool FlightRecorder::read_span(std::uint64_t index,
                               SpanEvent* out) const noexcept {
  const std::uint64_t count = span_count_.load(std::memory_order_relaxed);
  if (index >= count || index + kSpanCapacity < count) return false;
  if (!spans_[index % kSpanCapacity].load(out)) return false;
  out->path[sizeof(out->path) - 1] = '\0';
  out->thread[sizeof(out->thread) - 1] = '\0';
  return true;
}

bool FlightRecorder::read_thread(std::size_t slot,
                                 ThreadPath* out) const noexcept {
  if (slot >= thread_slots()) return false;
  if (!threads_[slot].load(out)) return false;
  out->thread[sizeof(out->thread) - 1] = '\0';
  out->path[sizeof(out->path) - 1] = '\0';
  return true;
}

std::vector<StepMetrics> FlightRecorder::last_steps() const {
  const std::uint64_t count = step_count();
  const std::uint64_t first =
      count > kStepCapacity ? count - kStepCapacity : 0;
  std::vector<StepMetrics> out;
  out.reserve(static_cast<std::size_t>(count - first));
  for (std::uint64_t i = first; i < count; ++i) {
    StepMetrics m;
    if (read_step(i, &m)) out.push_back(m);
  }
  return out;
}

std::vector<SpanEvent> FlightRecorder::last_spans() const {
  const std::uint64_t count = span_count();
  const std::uint64_t first =
      count > kSpanCapacity ? count - kSpanCapacity : 0;
  std::vector<SpanEvent> out;
  out.reserve(static_cast<std::size_t>(count - first));
  for (std::uint64_t i = first; i < count; ++i) {
    SpanEvent ev;
    if (read_span(i, &ev)) out.push_back(ev);
  }
  return out;
}

std::vector<ThreadPath> FlightRecorder::thread_paths() const {
  std::vector<ThreadPath> out;
  const std::size_t n = thread_slots();
  out.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    ThreadPath tp;
    if (read_thread(s, &tp)) out.push_back(tp);
  }
  return out;
}

}  // namespace g5::obs
