// Sampling force-error probe: in-run accuracy telemetry.
//
// Every measurement re-evaluates a deterministic random subset of
// particles with the exact O(N) host kernel (grape::host_reference) and
// splits the engine's relative force error into its two physical
// components, following the paper's Section 3 error budget:
//
//   * tree error  — a host-double Barnes-Hut walk against the exact
//     sum: the multipole-acceptance truncation alone (~0.1 % for the
//     paper's theta);
//   * codec error — the sampled interaction list pushed through the
//     emulated GRAPE-5 pipeline vs the same list in host double: the
//     number-format error alone (~0.3 % pairwise for 8-bit LNS
//     fractions);
//   * total error — the engine-produced accelerations against the
//     exact sum (what the simulation actually integrates).
//
// The probe runs serially in double precision on the host, so its
// results are bitwise-invariant across walk threads and pipeline depth;
// the sampled subset is a pure function of (seed, call index), so a
// fixed seed reproduces the same numbers run after run.
//
// Compiled into its own target (g5_obs_probe): unlike the rest of
// src/obs/ — which sits below every other library — the probe *uses*
// tree/grape/model, so it must not live in g5_obs itself.
#pragma once

#include <cstdint>
#include <vector>

#include "grape/config.hpp"
#include "model/particles.hpp"
#include "tree/tree.hpp"
#include "tree/walk.hpp"

namespace g5::obs {

/// What to sample and which engine geometry to replicate. The walk
/// parameters must mirror the force engine's ForceParams so the probe's
/// lists match what the engine shipped (Simulation fills them in).
struct ProbeConfig {
  std::uint32_t samples = 64;     ///< particles re-evaluated per call
  std::uint64_t seed = 0x5eedULL; ///< sampling stream seed
  double eps = 0.01;              ///< Plummer softening
  double theta = 0.75;            ///< opening angle
  tree::Mac mac = tree::Mac::Edge;
  std::uint32_t leaf_max = 8;
  bool quadrupole = false;        ///< host-tree engines only
  /// Pipeline backend the codec leg replicates (mirror the engine's
  /// ForceParams::backend). With BackendKind::Native the codec error
  /// collapses to the coordinate-quantization floor (~0).
  grape::BackendKind backend = grape::BackendKind::BitExact;
};

/// Error distribution over one sampled subset. Percentiles are exact
/// order statistics of the sample (not histogram estimates). All errors
/// are |dF| / |F_reference|; samples with |F_reference| == 0 are skipped.
struct ProbeResult {
  std::uint32_t samples = 0;  ///< usable samples (skips excluded)
  double total_p50 = 0.0, total_p99 = 0.0, total_max = 0.0;
  double tree_p50 = 0.0, tree_p99 = 0.0, tree_max = 0.0;
  double codec_p50 = 0.0, codec_p99 = 0.0, codec_max = 0.0;
};

class ForceErrorProbe {
 public:
  explicit ForceErrorProbe(const ProbeConfig& config) : config_(config) {}

  /// Measure the error split on the current state. pset.acc() must hold
  /// the engine's accelerations for the current positions. Publishes
  /// the g5.err.* histograms/gauges when instrumentation is enabled and
  /// returns the result either way.
  ProbeResult measure(const model::ParticleSet& pset);

  [[nodiscard]] const ProbeConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] std::uint64_t calls() const noexcept { return calls_; }

 private:
  ProbeConfig config_;
  std::uint64_t calls_ = 0;
  // Scratch reused across calls to keep the probe allocation-quiet.
  tree::BhTree tree_;
  tree::InteractionList list_;
  std::vector<std::uint32_t> indices_;
  std::vector<double> err_total_, err_tree_, err_codec_;
};

}  // namespace g5::obs
