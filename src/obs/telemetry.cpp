#include "obs/telemetry.hpp"

#include <chrono>
#include <utility>

#include "obs/crash.hpp"
#include "obs/export.hpp"
#include "obs/flight.hpp"

namespace g5::obs {

Telemetry::Telemetry(TelemetryConfig config) : cfg_(std::move(config)) {
  // Arm and take the first sample synchronously, before the thread
  // exists: a status file is on disk when the constructor returns.
  if (cfg_.arm_flight) FlightRecorder::instance().arm();
  sample();
  thread_ = util::Thread("g5-telemetry", [this] { loop(); });
}

Telemetry::~Telemetry() { stop(); }

void Telemetry::stop() {
  {
    const util::MutexLock lock(mutex_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
    // Final sample after the join: the exported documents reflect the
    // run's end state, not the last periodic tick.
    sample();
  }
}

void Telemetry::sample_now() { sample(); }

void Telemetry::loop() {
  for (;;) {
    {
      const util::MutexLock lock(mutex_);
      if (stop_requested_) return;
      cv_.wait_for(mutex_, std::chrono::milliseconds(cfg_.period_ms));
      if (stop_requested_) return;
    }
    sample();
  }
}

void Telemetry::sample() {
  if (!cfg_.status_path.empty()) {
    atomic_write_file(cfg_.status_path, build_status_json());
  }
  if (!cfg_.prom_path.empty()) {
    atomic_write_file(cfg_.prom_path, prometheus_text());
  }
  // Keep the crash dump's pre-serialized state at most one period old.
  if (crash::installed()) crash::refresh();
  samples_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace g5::obs
