#include "obs/registry.hpp"

#include <algorithm>
#include <map>
#include <memory>

#include "util/mutex.hpp"

namespace g5::obs {

struct Registry::Impl {
  util::Mutex mutex;
  // unique_ptr slots: references handed out stay valid across rehash-free
  // map growth and for the life of the process.
  std::map<std::string, std::unique_ptr<Counter>> counters
      G5_GUARDED_BY(mutex);
  std::map<std::string, std::unique_ptr<Gauge>> gauges G5_GUARDED_BY(mutex);
  std::map<std::string, std::unique_ptr<Histogram>> histograms
      G5_GUARDED_BY(mutex);
};

std::size_t Histogram::shard_index() noexcept {
  // Threads round-robin onto shards at first observe; the assignment is
  // stable per thread, so a lane's observations never migrate.
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t idx =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return idx;
}

Histogram::Snapshot Histogram::snapshot() const noexcept {
  Snapshot out;
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const Shard& s : shards_) {
    out.count += s.count.load(std::memory_order_relaxed);
    out.sum += s.sum.load(std::memory_order_relaxed);
    lo = std::min(lo, s.min.load(std::memory_order_relaxed));
    hi = std::max(hi, s.max.load(std::memory_order_relaxed));
    for (int b = 0; b < kBuckets; ++b) {
      out.buckets[static_cast<std::size_t>(b)] +=
          s.buckets[static_cast<std::size_t>(b)].load(
              std::memory_order_relaxed);
    }
  }
  out.min = out.count != 0 ? lo : 0.0;
  out.max = out.count != 0 ? hi : 0.0;
  return out;
}

double Histogram::Snapshot::quantile(double q) const noexcept {
  if (count == 0) return 0.0;
  q = q < 0.0 ? 0.0 : (q > 1.0 ? 1.0 : q);
  // Rank of the q-th observation (1-based, ceil convention).
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  const std::uint64_t target = rank == 0 ? 1 : rank;
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets[static_cast<std::size_t>(b)];
    if (seen >= target) {
      // Geometric midpoint of [2^(b-bias), 2^(b-bias+1)), clamped to
      // the observed range so edge buckets stay honest.
      const double mid =
          std::ldexp(std::sqrt(2.0), b - kExpBias);
      return mid < min ? min : (mid > max ? max : mid);
    }
  }
  return max;
}

void Histogram::reset() noexcept {
  for (Shard& s : shards_) {
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0.0, std::memory_order_relaxed);
    s.min.store(std::numeric_limits<double>::infinity(),
                std::memory_order_relaxed);
    s.max.store(-std::numeric_limits<double>::infinity(),
                std::memory_order_relaxed);
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
  }
}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

Registry::Impl& Registry::impl() {
  static Impl impl;
  return impl;
}

Counter& Registry::counter(std::string_view name) {
  Impl& state = impl();
  const util::MutexLock lock(state.mutex);
  auto& slot = state.counters[std::string(name)];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(std::string_view name) {
  Impl& state = impl();
  const util::MutexLock lock(state.mutex);
  auto& slot = state.gauges[std::string(name)];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Gauge* Registry::find_gauge(std::string_view name) {
  Impl& state = impl();
  const util::MutexLock lock(state.mutex);
  const auto it = state.gauges.find(std::string(name));
  return it != state.gauges.end() ? it->second.get() : nullptr;
}

Histogram& Registry::histogram(std::string_view name) {
  Impl& state = impl();
  const util::MutexLock lock(state.mutex);
  auto& slot = state.histograms[std::string(name)];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::vector<MetricSample> Registry::snapshot() {
  Impl& state = impl();
  const util::MutexLock lock(state.mutex);
  std::vector<MetricSample> out;
  out.reserve(state.counters.size() + state.gauges.size() +
              state.histograms.size());
  for (const auto& [name, c] : state.counters) {
    MetricSample s;
    s.name = name;
    s.kind = MetricKind::kCounter;
    s.is_counter = true;
    s.count = c->value();
    s.value = static_cast<double>(s.count);
    out.push_back(std::move(s));
  }
  for (const auto& [name, g] : state.gauges) {
    MetricSample s;
    s.name = name;
    s.kind = MetricKind::kGauge;
    s.is_counter = false;
    s.value = g->value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, h] : state.histograms) {
    MetricSample s;
    s.name = name;
    s.kind = MetricKind::kHistogram;
    s.is_counter = false;
    s.hist = h->snapshot();
    s.count = s.hist.count;
    s.value = s.hist.mean();
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return out;
}

void Registry::reset_values() {
  Impl& state = impl();
  const util::MutexLock lock(state.mutex);
  for (auto& [name, c] : state.counters) {
    static_cast<void>(name);
    c->value_.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, g] : state.gauges) {
    static_cast<void>(name);
    g->value_.store(0.0, std::memory_order_relaxed);
  }
  for (auto& [name, h] : state.histograms) {
    static_cast<void>(name);
    h->reset();
  }
}

}  // namespace g5::obs
