#include "obs/registry.hpp"

#include <algorithm>
#include <map>
#include <memory>

#include "util/mutex.hpp"

namespace g5::obs {

struct Registry::Impl {
  util::Mutex mutex;
  // unique_ptr slots: references handed out stay valid across rehash-free
  // map growth and for the life of the process.
  std::map<std::string, std::unique_ptr<Counter>> counters
      G5_GUARDED_BY(mutex);
  std::map<std::string, std::unique_ptr<Gauge>> gauges G5_GUARDED_BY(mutex);
};

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

Registry::Impl& Registry::impl() {
  static Impl impl;
  return impl;
}

Counter& Registry::counter(std::string_view name) {
  Impl& state = impl();
  const util::MutexLock lock(state.mutex);
  auto& slot = state.counters[std::string(name)];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(std::string_view name) {
  Impl& state = impl();
  const util::MutexLock lock(state.mutex);
  auto& slot = state.gauges[std::string(name)];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

std::vector<MetricSample> Registry::snapshot() {
  Impl& state = impl();
  const util::MutexLock lock(state.mutex);
  std::vector<MetricSample> out;
  out.reserve(state.counters.size() + state.gauges.size());
  for (const auto& [name, c] : state.counters) {
    MetricSample s;
    s.name = name;
    s.is_counter = true;
    s.count = c->value();
    s.value = static_cast<double>(s.count);
    out.push_back(std::move(s));
  }
  for (const auto& [name, g] : state.gauges) {
    MetricSample s;
    s.name = name;
    s.is_counter = false;
    s.value = g->value();
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return out;
}

void Registry::reset_values() {
  Impl& state = impl();
  const util::MutexLock lock(state.mutex);
  for (auto& [name, c] : state.counters) {
    static_cast<void>(name);
    c->value_.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, g] : state.gauges) {
    static_cast<void>(name);
    g->value_.store(0.0, std::memory_order_relaxed);
  }
}

}  // namespace g5::obs
