#include "obs/probe.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <span>

#include "grape/config.hpp"
#include "grape/host_reference.hpp"
#include "grape/pipeline.hpp"
#include "math/rng.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"

namespace g5::obs {

namespace {

/// Exact order-statistic percentile (ceil convention, q in [0, 1]) of an
/// already-sorted sample.
double percentile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto n = static_cast<double>(sorted.size());
  auto rank = static_cast<std::size_t>(std::ceil(q * n));
  if (rank == 0) rank = 1;
  if (rank > sorted.size()) rank = sorted.size();
  return sorted[rank - 1];
}

struct Stats {
  double p50 = 0.0, p99 = 0.0, max = 0.0;
};

Stats summarize(std::vector<double>& errs) {
  std::sort(errs.begin(), errs.end());
  Stats s;
  if (!errs.empty()) {
    s.p50 = percentile_sorted(errs, 0.50);
    s.p99 = percentile_sorted(errs, 0.99);
    s.max = errs.back();
  }
  return s;
}

void publish(const char* base, const Stats& s,
             const std::vector<double>& errs) {
  Histogram& h = histogram(base);
  for (double e : errs) h.observe(e);
  gauge(std::string(base) + ".p50").set(s.p50);
  gauge(std::string(base) + ".p99").set(s.p99);
}

/// Emulated pipeline configured exactly as the engines' device path does
/// (configure_device_window + Grape5System quantum derivation): window =
/// 1.25x the bounding cube around its center, accumulator quanta from
/// the smallest particle mass at 2^-34 of the window scale.
grape::Pipeline make_codec_pipeline(const model::ParticleSet& pset,
                                    double eps, grape::BackendKind backend) {
  const model::Aabb box = pset.bounding_box();
  const double size = std::max(box.cube_size(), 1e-12) * 1.25;
  const math::Vec3d c = box.center();
  double min_mass = pset.mass().empty() ? 1.0 : pset.mass()[0];
  for (double m : pset.mass()) min_mass = std::min(min_mass, m);
  if (!(min_mass > 0.0)) min_mass = 1.0;

  grape::PipelineScaling scaling;
  scaling.range_lo = c.min_component() - 0.5 * size;
  scaling.range_hi = c.max_component() + 0.5 * size;
  scaling.eps = eps;
  // The same accumulator-quantum derivation as the driver (one shared
  // definition — grape::derive_scaling_quanta — so the probe's emulated
  // pipeline is configured bit-for-bit as the device path).
  grape::derive_scaling_quanta(scaling, min_mass);

  grape::PipelineNumerics numerics;
  numerics.backend = backend;
  grape::Pipeline pipeline{numerics};
  pipeline.configure(scaling);
  return pipeline;
}

}  // namespace

ProbeResult ForceErrorProbe::measure(const model::ParticleSet& pset) {
  G5_OBS_SPAN("probe", "obs");
  ProbeResult result;
  const std::size_t n = pset.size();
  if (n == 0 || config_.samples == 0) return result;

  // Deterministic distinct sample: a (seed, call-index) stream selects
  // via rejection, so a fixed seed reproduces the subset sequence.
  math::Rng rng(config_.seed + 0x9e3779b97f4a7c15ULL * ++calls_);
  const auto want =
      static_cast<std::size_t>(std::min<std::uint64_t>(config_.samples, n));
  indices_.clear();
  while (indices_.size() < want) {
    const auto idx = static_cast<std::uint32_t>(rng.uniform_index(n));
    if (std::find(indices_.begin(), indices_.end(), idx) == indices_.end()) {
      indices_.push_back(idx);
    }
  }

  // Exact ground truth: O(samples * N) direct sum in double, with the
  // engine convention for the self term (i_mass supplied).
  std::vector<math::Vec3d> i_pos(want), acc_exact(want);
  std::vector<double> i_mass(want), pot_exact(want);
  for (std::size_t k = 0; k < want; ++k) {
    i_pos[k] = pset.pos()[indices_[k]];
    i_mass[k] = pset.mass()[indices_[k]];
  }
  grape::host_forces_on_targets(i_pos, pset.pos(), pset.mass(), config_.eps,
                                acc_exact, pot_exact, i_mass);

  // Probe-owned tree replicating the engine's build/walk geometry.
  tree::TreeBuildConfig build_cfg;
  build_cfg.leaf_max = config_.leaf_max;
  build_cfg.quadrupole = config_.quadrupole;
  tree_.build(pset, build_cfg);
  const tree::WalkConfig walk_cfg{config_.theta, config_.mac,
                                  config_.quadrupole};

  grape::Pipeline pipeline =
      make_codec_pipeline(pset, config_.eps, config_.backend);

  err_total_.clear();
  err_tree_.clear();
  err_codec_.clear();
  for (std::size_t k = 0; k < want; ++k) {
    const math::Vec3d xi = i_pos[k];
    const double f_exact = acc_exact[k].norm();
    if (!(f_exact > 0.0)) continue;

    // Total: what the engine wrote vs exact.
    err_total_.push_back((pset.acc()[indices_[k]] - acc_exact[k]).norm() /
                         f_exact);

    // Tree component: host-double list evaluation vs exact.
    tree::walk_original(tree_, xi, walk_cfg, list_);
    math::Vec3d acc_tree{};
    double pot_tree = 0.0;
    tree::evaluate_list_host(list_, {&xi, 1}, config_.eps, {&acc_tree, 1},
                             {&pot_tree, 1}, {&i_mass[k], 1});
    err_tree_.push_back((acc_tree - acc_exact[k]).norm() / f_exact);

    // Codec component: the *same* list through the emulated pipeline vs
    // host double, both with the hardware-style zero-separation cut, so
    // the list (tree) error divides out entirely.
    math::Vec3d acc_host{};
    double pot_host = 0.0;
    tree::evaluate_list_host(list_, {&xi, 1}, config_.eps, {&acc_host, 1},
                             {&pot_host, 1});
    grape::IState is = pipeline.encode_i(xi);
    for (std::size_t j = 0; j < list_.size(); ++j) {
      pipeline.interact(is, pipeline.encode_j(list_.pos[j], list_.mass[j]));
    }
    const math::Vec3d acc_codec = pipeline.read_force(is);
    const double f_host = acc_host.norm();
    if (f_host > 0.0) {
      err_codec_.push_back((acc_codec - acc_host).norm() / f_host);
    }
  }

  result.samples = static_cast<std::uint32_t>(err_total_.size());
  const Stats total = summarize(err_total_);
  const Stats tre = summarize(err_tree_);
  const Stats codec = summarize(err_codec_);
  result.total_p50 = total.p50;
  result.total_p99 = total.p99;
  result.total_max = total.max;
  result.tree_p50 = tre.p50;
  result.tree_p99 = tre.p99;
  result.tree_max = tre.max;
  result.codec_p50 = codec.p50;
  result.codec_p99 = codec.p99;
  result.codec_max = codec.max;

  if (enabled()) {
    publish("g5.err.force_rel", total, err_total_);
    publish("g5.err.tree_rel", tre, err_tree_);
    publish("g5.err.codec_rel", codec, err_codec_);
    counter("g5.probe.calls").add(1);
    counter("g5.probe.samples").add(result.samples);
  }
  return result;
}

}  // namespace g5::obs
