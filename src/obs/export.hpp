// Live exporters: the status-file document and the Prometheus text
// exposition of the metric registry.
//
// Both are pull-side views of the same sources — the registry
// (counters/gauges/histograms), the flight recorder's heartbeat and
// last-step record — rendered on demand. obs::Telemetry writes them to
// files on its sampling period (atomic_write_file: temp + rename, so a
// scraper never reads a half-written document); g5run's --live-port
// serves them over util::HttpListener.
//
// The status document is versioned ("schema": "g5.status.v1") and
// machine-checked by tools/check_trace.py against
// tools/schema/status.schema.json. The Prometheus output follows the
// text exposition format 0.0.4: dotted g5.* names mangle to
// underscores, histograms emit cumulative _bucket{le=...} series over
// the power-of-two bucket bounds plus _sum/_count.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace g5::obs {

/// The full status document as a JSON string. `sequence` increments
/// per call (process-wide), so a poller can detect staleness.
[[nodiscard]] std::string build_status_json();

/// Registry-only JSON fragment: {"counters":{...},"gauges":{...},
/// "histograms":{...}}. The crash path pre-serializes this per
/// telemetry tick so a signal handler can embed it verbatim.
[[nodiscard]] std::string registry_json();

/// The whole g5.* catalog in Prometheus text exposition format 0.0.4.
[[nodiscard]] std::string prometheus_text();

/// Write `content` to `path` via a same-directory temp file + rename,
/// so readers see the old or the new document, never a torn one.
bool atomic_write_file(const std::string& path, std::string_view content);

}  // namespace g5::obs
