#include "obs/crash.hpp"

#include <atomic>
#include <csignal>
#include <cstring>
#include <exception>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "obs/export.hpp"
#include "obs/flight.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "util/mutex.hpp"
#include "util/sigsafe.hpp"

namespace g5::obs::crash {

namespace {

constexpr std::size_t kPathCap = 512;
constexpr std::size_t kDumpCap = 256 * 1024;
constexpr std::size_t kRegistryCap = 32 * 1024;
constexpr std::size_t kMaxBoards = 16;

// Everything the handler touches is static: no allocation at dump time.
char g_path[kPathCap] = {};
char g_dump[kDumpCap];
std::atomic<bool> g_installed{false};
std::atomic<bool> g_dumping{false};
std::atomic<long> g_page_size{4096};

/// Registry JSON pre-serialized off the signal path (refresh()), held
/// in a seqlock of relaxed atomic words so the handler can copy it out
/// without locks and detect a racing refresh.
struct RegistryCell {
  std::atomic<std::uint32_t> seq{0};
  std::atomic<std::uint32_t> len{0};
  std::atomic<std::uint64_t> words[kRegistryCap / 8];
};
RegistryCell g_registry;
alignas(8) char g_registry_stage[kRegistryCap];  // refresh() scratch
alignas(8) char g_registry_read[kRegistryCap];   // handler scratch
util::Mutex g_refresh_mutex;  // serializes concurrent refresh() calls

/// Device gauges resolved via find_gauge (never created) and cached as
/// pointers: Gauge::value() is one relaxed load, safe in a handler.
std::atomic<const Gauge*> g_queue_depth{nullptr};
std::atomic<const Gauge*> g_in_flight{nullptr};
std::atomic<const Gauge*> g_board_count{nullptr};
std::atomic<const Gauge*> g_jmem[kMaxBoards] = {};

double cached_gauge(const std::atomic<const Gauge*>& slot) noexcept {
  const Gauge* g = slot.load(std::memory_order_relaxed);
  return g != nullptr ? g->value() : 0.0;
}

std::uint64_t read_rss_bytes() noexcept {
#if defined(__linux__)
  const int fd = ::open("/proc/self/statm", O_RDONLY);
  if (fd < 0) return 0;
  char buf[128];
  const ssize_t n = ::read(fd, buf, sizeof(buf) - 1);
  ::close(fd);
  if (n <= 0) return 0;
  buf[n] = '\0';
  // statm: "size resident shared ..." in pages; we want field 2.
  std::size_t i = 0;
  while (i < static_cast<std::size_t>(n) && buf[i] != ' ') ++i;
  while (i < static_cast<std::size_t>(n) && buf[i] == ' ') ++i;
  std::uint64_t pages = 0;
  while (i < static_cast<std::size_t>(n) && buf[i] >= '0' && buf[i] <= '9') {
    pages = pages * 10 + static_cast<std::uint64_t>(buf[i] - '0');
    ++i;
  }
  return pages *
         static_cast<std::uint64_t>(g_page_size.load(std::memory_order_relaxed));
#else
  return 0;
#endif
}

const char* signal_name(int sig) noexcept {
  switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGABRT: return "SIGABRT";
    case SIGTERM: return "SIGTERM";
    case SIGFPE: return "SIGFPE";
    case SIGILL: return "SIGILL";
#if defined(SIGBUS)
    case SIGBUS: return "SIGBUS";
#endif
    default: return "UNKNOWN";
  }
}

void append_step_json(util::SigsafeWriter& w, const StepMetrics& m) noexcept {
  w.append("{\"step\":");
  w.append_u64(m.step);
  w.append(",\"t_sim\":");
  w.append_double(m.t_sim);
  w.append(",\"wall_s\":");
  w.append_double(m.wall_s);
  w.append(",\"build_s\":");
  w.append_double(m.build_s);
  w.append(",\"walk_s\":");
  w.append_double(m.walk_s);
  w.append(",\"kernel_s\":");
  w.append_double(m.kernel_s);
  w.append(",\"engine_s\":");
  w.append_double(m.engine_s);
  w.append(",\"interactions\":");
  w.append_u64(m.interactions);
  w.append(",\"list_entries\":");
  w.append_u64(m.list_entries);
  w.append(",\"groups\":");
  w.append_u64(m.groups);
  w.append(",\"grape_force_calls\":");
  w.append_u64(m.grape_force_calls);
  w.append(",\"grape_emulation_s\":");
  w.append_double(m.grape_emulation_s);
  w.append(",\"grape_occupancy\":");
  w.append_double(m.grape_occupancy);
  w.append(",\"energy_drift\":");
  w.append_double(m.energy_drift);
  w.append_char('}');
}

/// Copy the pre-serialized registry section into the dump; false when
/// never refreshed or torn by a racing refresh.
bool append_registry_section(util::SigsafeWriter& w) noexcept {
  const std::uint32_t s0 = g_registry.seq.load(std::memory_order_acquire);
  if (s0 == 0 || (s0 & 1U) != 0) return false;
  std::uint32_t len = g_registry.len.load(std::memory_order_relaxed);
  if (len == 0 || len > kRegistryCap) return false;
  const std::size_t nwords = (len + 7) / 8;
  for (std::size_t i = 0; i < nwords; ++i) {
    const std::uint64_t word =
        g_registry.words[i].load(std::memory_order_relaxed);
    std::memcpy(g_registry_read + i * 8, &word, 8);
  }
  std::atomic_thread_fence(std::memory_order_acquire);
  if (g_registry.seq.load(std::memory_order_relaxed) != s0) return false;
  w.append(std::string_view(g_registry_read, len));
  return true;
}

std::size_t serialize(std::string_view kind, int signo,
                      std::string_view name) noexcept {
  util::SigsafeWriter w(g_dump, kDumpCap);
  w.append("{\"schema\":\"g5.postmortem.v1\",\"cause\":{\"kind\":");
  w.append_json_string(kind);
  if (signo > 0) {
    w.append(",\"signal\":");
    w.append_i64(signo);
  }
  if (!name.empty()) {
    w.append(",\"name\":");
    w.append_json_string(name);
  }
  w.append("},\"pid\":");
#if defined(__unix__) || defined(__APPLE__)
  w.append_i64(static_cast<std::int64_t>(::getpid()));
#else
  w.append_i64(0);
#endif
  w.append(",\"uptime_us\":");
  w.append_double(now_us());
  w.append(",\"rss_bytes\":");
  w.append_u64(read_rss_bytes());

  const FlightRecorder& fr = FlightRecorder::instance();
  w.append(",\"steps\":[");
  {
    const std::uint64_t count = fr.step_count();
    const std::uint64_t first = count > FlightRecorder::kStepCapacity
                                    ? count - FlightRecorder::kStepCapacity
                                    : 0;
    StepMetrics m;
    bool first_el = true;
    for (std::uint64_t i = first; i < count; ++i) {
      if (!fr.read_step(i, &m)) continue;
      if (!first_el) w.append_char(',');
      first_el = false;
      append_step_json(w, m);
    }
  }
  w.append("],\"spans\":[");
  {
    const std::uint64_t count = fr.span_count();
    const std::uint64_t first = count > FlightRecorder::kSpanCapacity
                                    ? count - FlightRecorder::kSpanCapacity
                                    : 0;
    SpanEvent ev;
    bool first_el = true;
    for (std::uint64_t i = first; i < count; ++i) {
      if (!fr.read_span(i, &ev)) continue;
      if (!first_el) w.append_char(',');
      first_el = false;
      w.append("{\"path\":");
      w.append_json_string(ev.path);
      w.append(",\"thread\":");
      w.append_json_string(ev.thread);
      w.append(",\"start_us\":");
      w.append_double(ev.start_us);
      w.append(",\"dur_us\":");
      w.append_double(ev.dur_us);
      w.append_char('}');
    }
  }
  w.append("],\"threads\":[");
  {
    ThreadPath tp;
    bool first_el = true;
    for (std::size_t s = 0; s < fr.thread_slots(); ++s) {
      if (!fr.read_thread(s, &tp)) continue;
      if (!first_el) w.append_char(',');
      first_el = false;
      w.append("{\"name\":");
      w.append_json_string(tp.thread);
      w.append(",\"path\":");
      w.append_json_string(tp.path);
      w.append_char('}');
    }
  }
  w.append("],\"device\":{\"queue_depth\":");
  w.append_double(cached_gauge(g_queue_depth));
  w.append(",\"in_flight\":");
  w.append_double(cached_gauge(g_in_flight));
  w.append(",\"boards\":");
  w.append_double(cached_gauge(g_board_count));
  w.append(",\"jmem_fill\":[");
  {
    bool first_el = true;
    for (std::size_t b = 0; b < kMaxBoards; ++b) {
      const Gauge* g = g_jmem[b].load(std::memory_order_relaxed);
      if (g == nullptr) continue;
      if (!first_el) w.append_char(',');
      first_el = false;
      w.append_double(g->value());
    }
  }
  w.append("]},\"metrics\":");
  if (!append_registry_section(w)) w.append("null");
  w.append("}\n");
  return w.size();
}

std::size_t write_dump(std::size_t len) noexcept {
#if defined(__unix__) || defined(__APPLE__)
  const int fd = ::open(g_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return 0;
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n = ::write(fd, g_dump + done, len - done);
    if (n <= 0) break;
    done += static_cast<std::size_t>(n);
  }
  ::fsync(fd);
  ::close(fd);
  return done;
#else
  static_cast<void>(len);
  return 0;
#endif
}

extern "C" void g5_crash_signal_handler(int sig) {
  // One dump per process: a fault inside the dump path (or a second
  // signal) falls straight through to the default disposition.
  if (!g_dumping.exchange(true, std::memory_order_acq_rel)) {
    write_dump(serialize("signal", sig, signal_name(sig)));
  }
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

[[noreturn]] void g5_terminate_hook() {
  if (!g_dumping.exchange(true, std::memory_order_acq_rel)) {
    write_dump(serialize("terminate", 0, "std::terminate"));
  }
  std::signal(SIGABRT, SIG_DFL);
  std::abort();
}

}  // namespace

void install(const std::string& path) {
  std::size_t n = path.size() < kPathCap - 1 ? path.size() : kPathCap - 1;
  std::memcpy(g_path, path.data(), n);
  g_path[n] = '\0';
#if defined(__unix__) || defined(__APPLE__)
  const long page = ::sysconf(_SC_PAGESIZE);
  if (page > 0) g_page_size.store(page, std::memory_order_relaxed);
#endif
  // Force the statics the handler reads to initialize off-signal.
  now_us();
  FlightRecorder::instance();
  refresh();
  if (g_installed.exchange(true, std::memory_order_acq_rel)) return;
#if defined(__unix__) || defined(__APPLE__)
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = g5_crash_signal_handler;
  sigemptyset(&sa.sa_mask);
  const int signals[] = {SIGSEGV, SIGABRT, SIGTERM, SIGFPE, SIGILL,
#if defined(SIGBUS)
                         SIGBUS,
#endif
  };
  for (const int sig : signals) ::sigaction(sig, &sa, nullptr);
#else
  std::signal(SIGSEGV, g5_crash_signal_handler);
  std::signal(SIGABRT, g5_crash_signal_handler);
  std::signal(SIGTERM, g5_crash_signal_handler);
#endif
  std::set_terminate(g5_terminate_hook);
}

bool installed() noexcept {
  return g_installed.load(std::memory_order_relaxed);
}

void refresh() {
  Registry& reg = Registry::instance();
  g_queue_depth.store(reg.find_gauge("g5.grape.queue_depth"),
                      std::memory_order_relaxed);
  g_in_flight.store(reg.find_gauge("g5.grape.in_flight"),
                    std::memory_order_relaxed);
  g_board_count.store(reg.find_gauge("g5.board.count"),
                      std::memory_order_relaxed);
  for (std::size_t b = 0; b < kMaxBoards; ++b) {
    g_jmem[b].store(
        reg.find_gauge("g5.board." + std::to_string(b) + ".jmem_fill"),
        std::memory_order_relaxed);
  }

  const std::string json = registry_json();
  const auto len = static_cast<std::uint32_t>(
      json.size() < kRegistryCap ? json.size() : kRegistryCap);
  const util::MutexLock lock(g_refresh_mutex);
  std::memset(g_registry_stage, 0, ((len + 7) / 8) * 8);
  std::memcpy(g_registry_stage, json.data(), len);
  g_registry.seq.fetch_add(1, std::memory_order_acq_rel);
  const std::size_t nwords = (len + 7) / 8;
  for (std::size_t i = 0; i < nwords; ++i) {
    std::uint64_t word = 0;
    std::memcpy(&word, g_registry_stage + i * 8, 8);
    g_registry.words[i].store(word, std::memory_order_relaxed);
  }
  g_registry.len.store(len, std::memory_order_relaxed);
  g_registry.seq.fetch_add(1, std::memory_order_release);
}

std::size_t write_postmortem_now(std::string_view cause) {
  if (g_path[0] == '\0') return 0;
  bool expected = false;
  if (!g_dumping.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
    return 0;
  }
  refresh();
  const std::size_t written = write_dump(serialize("manual", 0, cause));
  g_dumping.store(false, std::memory_order_release);
  return written;
}

}  // namespace g5::obs::crash
