// Flight recorder: fixed-size lock-free black box for post-mortems.
//
// Three seqlock ring structures, all preallocated and all readable
// without locks (including from a crash signal handler, obs/crash.hpp):
//
//   * the last kStepCapacity StepMetrics records (one per step);
//   * the last kSpanCapacity span-completion events (path, thread,
//     start, duration);
//   * one active-span-path slot per thread — the live "stack trace in
//     span space" a post-mortem prints for every named thread.
//
// Every payload word is a relaxed 64-bit atomic guarded by a per-slot
// sequence counter (odd = write in progress), so readers detect torn
// slots instead of locking writers out: TSan-clean, wait-free for
// writers, and safe to walk from an async-signal context.
//
// Recording is gated on an `armed` flag separate from obs::enabled():
// span hooks cost one relaxed load when disarmed, keeping
// bench_p2_obs_overhead's budget intact. obs::Telemetry arms the
// recorder; tests may arm it directly.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace g5::obs {

namespace detail {

inline std::atomic<bool> g_flight_armed{false};

/// Seqlock cell over a fixed payload stored as relaxed atomic words.
template <std::size_t Bytes>
struct SeqCell {
  static_assert(Bytes % 8 == 0);
  static constexpr std::size_t kWords = Bytes / 8;

  std::atomic<std::uint32_t> seq{0};
  std::array<std::atomic<std::uint64_t>, kWords> words{};

  void store(const void* src) noexcept {
    std::uint64_t tmp[kWords];
    std::memcpy(tmp, src, Bytes);
    seq.fetch_add(1, std::memory_order_acq_rel);  // odd: write in progress
    for (std::size_t w = 0; w < kWords; ++w) {
      words[w].store(tmp[w], std::memory_order_relaxed);
    }
    seq.fetch_add(1, std::memory_order_release);  // even: stable
  }

  /// Copies the payload into `dst`; false when unwritten or torn.
  bool load(void* dst) const noexcept {
    const std::uint32_t s0 = seq.load(std::memory_order_acquire);
    if (s0 == 0 || (s0 & 1U) != 0) return false;
    std::uint64_t tmp[kWords];
    for (std::size_t w = 0; w < kWords; ++w) {
      tmp[w] = words[w].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (seq.load(std::memory_order_relaxed) != s0) return false;
    std::memcpy(dst, tmp, Bytes);
    return true;
  }
};

}  // namespace detail

/// One completed span, as recorded in the flight ring.
struct SpanEvent {
  char path[160];
  char thread[16];
  double start_us;
  double dur_us;
};
static_assert(sizeof(SpanEvent) % 8 == 0);

/// One thread's live span path (its "where am I" at read time).
struct ThreadPath {
  char thread[16];
  char path[160];
};
static_assert(sizeof(ThreadPath) % 8 == 0);

class FlightRecorder {
 public:
  static constexpr std::size_t kStepCapacity = 64;
  static constexpr std::size_t kSpanCapacity = 128;
  static constexpr std::size_t kThreadCapacity = 64;

  static FlightRecorder& instance() noexcept;

  /// Recording gate; sticky until disarm(). Safe to arm repeatedly.
  void arm() noexcept {
    detail::g_flight_armed.store(true, std::memory_order_relaxed);
  }
  void disarm() noexcept {
    detail::g_flight_armed.store(false, std::memory_order_relaxed);
  }
  [[nodiscard]] static bool armed() noexcept {
    return detail::g_flight_armed.load(std::memory_order_relaxed);
  }

  /// Reset the ring indices (slots stay allocated; tests).
  void clear() noexcept;

  // -- writers (wait-free) --------------------------------------------

  /// Single-writer by contract: the simulation loop.
  void record_step(const StepMetrics& m) noexcept;
  /// Any thread; called from the Span destructor when armed.
  void record_span(std::string_view path, double start_us,
                   double dur_us) noexcept;
  /// Publish the calling thread's live span path (Span ctor/dtor).
  void publish_thread_path(std::string_view path) noexcept;

  // -- counters -------------------------------------------------------

  [[nodiscard]] std::uint64_t step_count() const noexcept {
    return step_count_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t span_count() const noexcept {
    return span_count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t thread_slots() const noexcept;

  // -- signal-safe element readers (no allocation) --------------------
  // Absolute indices; a read races a wrap or an in-flight write by
  // returning false, never by blocking.

  bool read_step(std::uint64_t index, StepMetrics* out) const noexcept;
  bool read_span(std::uint64_t index, SpanEvent* out) const noexcept;
  bool read_thread(std::size_t slot, ThreadPath* out) const noexcept;

  // -- snapshot readers (allocate; samplers and tests) ----------------

  [[nodiscard]] std::vector<StepMetrics> last_steps() const;
  [[nodiscard]] std::vector<SpanEvent> last_spans() const;
  [[nodiscard]] std::vector<ThreadPath> thread_paths() const;

 private:
  FlightRecorder() = default;

  static constexpr std::size_t kPathBytes = sizeof(ThreadPath::path);

  std::array<detail::SeqCell<sizeof(StepMetrics)>, kStepCapacity> steps_;
  std::array<detail::SeqCell<sizeof(SpanEvent)>, kSpanCapacity> spans_;
  std::array<detail::SeqCell<sizeof(ThreadPath)>, kThreadCapacity> threads_;
  std::atomic<std::uint64_t> step_count_{0};
  std::atomic<std::uint64_t> span_count_{0};
  std::atomic<std::uint32_t> thread_count_{0};

  [[nodiscard]] std::uint32_t thread_slot_for_caller() noexcept;
};

}  // namespace g5::obs
