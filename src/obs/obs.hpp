// Umbrella header for the observability layer (g5::obs).
//
// The layer's pieces, usable independently:
//   * obs/span.hpp      — hierarchical RAII phase timers + phase table;
//   * obs/registry.hpp  — global counters, gauges and histograms;
//   * obs/trace.hpp     — Chrome trace-event (Perfetto) collection/export;
//   * obs/metrics.hpp   — per-step StepMetrics record + JSON-lines sink;
//   * obs/flight.hpp    — lock-free flight-recorder rings (last K steps /
//                         span events / per-thread live span paths);
//   * obs/telemetry.hpp — background sampler thread: status-file +
//                         Prometheus exporters on a period;
//   * obs/export.hpp    — the exporters themselves (pull-side views);
//   * obs/crash.hpp     — async-signal-safe crash post-mortem dumps;
//   * obs/probe.hpp     — sampling force-error / conservation probe
//                         (separate library g5_obs_probe — it sits above
//                         tree/grape, so it is NOT included here to keep
//                         this umbrella usable from the bottom layer).
//
// Everything is off until obs::set_enabled(true); the instrumented hot
// paths cost one relaxed atomic load while disabled. docs/observability.md
// is the user guide (API, metric catalog, the measured-phase ↔ paper
// Section 5 mapping, Perfetto walkthrough).
#pragma once

#include "obs/crash.hpp"      // IWYU pragma: export
#include "obs/export.hpp"     // IWYU pragma: export
#include "obs/flight.hpp"     // IWYU pragma: export
#include "obs/metrics.hpp"    // IWYU pragma: export
#include "obs/registry.hpp"   // IWYU pragma: export
#include "obs/span.hpp"       // IWYU pragma: export
#include "obs/telemetry.hpp"  // IWYU pragma: export
#include "obs/trace.hpp"      // IWYU pragma: export
