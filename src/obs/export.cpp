#include "obs/export.hpp"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <vector>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace g5::obs {

namespace {

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    const auto u = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (u < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", u);
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
}

/// Gauge value without registering the name; 0 when absent.
double gauge_or_zero(std::string_view name) {
  const Gauge* g = Registry::instance().find_gauge(name);
  return g != nullptr ? g->value() : 0.0;
}

void append_hist_summary(std::string& out, const Histogram::Snapshot& h) {
  out += "{\"count\":";
  out += std::to_string(h.count);
  out += ",\"mean\":";
  out += json_number(h.count != 0 ? h.mean() : 0.0);
  out += ",\"min\":";
  out += json_number(h.min);
  out += ",\"max\":";
  out += json_number(h.max);
  out += ",\"p50\":";
  out += json_number(h.quantile(0.50));
  out += ",\"p90\":";
  out += json_number(h.quantile(0.90));
  out += ",\"p99\":";
  out += json_number(h.quantile(0.99));
  out += '}';
}

void append_registry_maps(std::string& out,
                          const std::vector<MetricSample>& samples) {
  out += "\"counters\":{";
  bool first = true;
  for (const MetricSample& s : samples) {
    if (s.kind != MetricKind::kCounter) continue;
    if (!first) out += ',';
    first = false;
    append_json_string(out, s.name);
    out += ':';
    out += std::to_string(s.count);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const MetricSample& s : samples) {
    if (s.kind != MetricKind::kGauge) continue;
    if (!first) out += ',';
    first = false;
    append_json_string(out, s.name);
    out += ':';
    out += json_number(s.value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const MetricSample& s : samples) {
    if (s.kind != MetricKind::kHistogram) continue;
    if (!first) out += ',';
    first = false;
    append_json_string(out, s.name);
    out += ':';
    append_hist_summary(out, s.hist);
  }
  out += '}';
}

/// Prometheus metric name: [a-zA-Z0-9_:], everything else becomes '_'.
std::string prom_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(0, "_");
  return out;
}

std::string prom_number(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

}  // namespace

std::string registry_json() {
  std::string out;
  out.reserve(4096);
  out += '{';
  append_registry_maps(out, Registry::instance().snapshot());
  out += '}';
  return out;
}

std::string build_status_json() {
  static std::atomic<std::uint64_t> g_sequence{0};
  const std::uint64_t seq =
      g_sequence.fetch_add(1, std::memory_order_relaxed) + 1;

  const FlightRecorder& fr = FlightRecorder::instance();
  std::string out;
  out.reserve(8192);
  out += "{\"schema\":\"g5.status.v1\",\"pid\":";
#if defined(__unix__) || defined(__APPLE__)
  out += std::to_string(static_cast<long>(::getpid()));
#else
  out += '0';
#endif
  out += ",\"sequence\":";
  out += std::to_string(seq);
  out += ",\"uptime_s\":";
  out += json_number(now_us() * 1e-6);

  out += ",\"heartbeat\":{\"step\":";
  out += json_number(gauge_or_zero("g5.sim.step"));
  out += ",\"steps_total\":";
  out += json_number(gauge_or_zero("g5.sim.steps_total"));
  out += ",\"steps_per_s\":";
  out += json_number(gauge_or_zero("g5.sim.steps_per_s"));
  out += ",\"eta_s\":";
  out += json_number(gauge_or_zero("g5.sim.eta_s"));
  out += ",\"interactions_per_s\":";
  out += json_number(gauge_or_zero("g5.sim.interactions_per_s"));
  out += ",\"mean_list\":";
  out += json_number(gauge_or_zero("g5.sim.mean_list"));
  out += '}';

  out += ",\"device\":{\"queue_depth\":";
  out += json_number(gauge_or_zero("g5.grape.queue_depth"));
  out += ",\"in_flight\":";
  out += json_number(gauge_or_zero("g5.grape.in_flight"));
  out += ",\"boards\":";
  out += json_number(gauge_or_zero("g5.board.count"));
  out += '}';

  out += ",\"flight\":{\"steps\":";
  out += std::to_string(fr.step_count());
  out += ",\"spans\":";
  out += std::to_string(fr.span_count());
  out += ",\"threads\":[";
  bool first = true;
  for (const ThreadPath& tp : fr.thread_paths()) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    append_json_string(out, tp.thread);
    out += ",\"path\":";
    append_json_string(out, tp.path);
    out += '}';
  }
  out += "]}";

  out += ",\"last_step\":";
  const std::vector<StepMetrics> steps = fr.last_steps();
  if (steps.empty()) {
    out += "null";
  } else {
    out += step_metrics_json(steps.back());
  }

  out += ',';
  append_registry_maps(out, Registry::instance().snapshot());
  out += '}';
  return out;
}

std::string prometheus_text() {
  std::string out;
  out.reserve(8192);
  char buf[64];
  for (const MetricSample& s : Registry::instance().snapshot()) {
    const std::string name = prom_name(s.name);
    out += "# TYPE ";
    out += name;
    switch (s.kind) {
      case MetricKind::kCounter:
        out += " counter\n";
        out += name;
        out += ' ';
        out += std::to_string(s.count);
        out += '\n';
        break;
      case MetricKind::kGauge:
        out += " gauge\n";
        out += name;
        out += ' ';
        out += prom_number(s.value);
        out += '\n';
        break;
      case MetricKind::kHistogram: {
        out += " histogram\n";
        const Histogram::Snapshot& h = s.hist;
        // Cumulative bucket series over the power-of-two bounds;
        // buckets past the last populated one collapse into +Inf.
        int last = -1;
        for (int b = 0; b < Histogram::kBuckets; ++b) {
          if (h.buckets[static_cast<std::size_t>(b)] != 0) last = b;
        }
        std::uint64_t cum = 0;
        for (int b = 0; b <= last; ++b) {
          cum += h.buckets[static_cast<std::size_t>(b)];
          const double le = std::ldexp(1.0, b - Histogram::kExpBias + 1);
          std::snprintf(buf, sizeof(buf), "%.9g", le);
          out += name;
          out += "_bucket{le=\"";
          out += buf;
          out += "\"} ";
          out += std::to_string(cum);
          out += '\n';
        }
        out += name;
        out += "_bucket{le=\"+Inf\"} ";
        out += std::to_string(h.count);
        out += '\n';
        out += name;
        out += "_sum ";
        out += prom_number(h.sum);
        out += '\n';
        out += name;
        out += "_count ";
        out += std::to_string(h.count);
        out += '\n';
        break;
      }
    }
  }
  return out;
}

bool atomic_write_file(const std::string& path, std::string_view content) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t written =
      content.empty() ? 0 : std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = written == content.size() && std::fflush(f) == 0;
  std::fclose(f);
  if (!ok) {
    std::remove(tmp.c_str());
    return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

}  // namespace g5::obs
