#include "obs/metrics.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace g5::obs {

namespace {

/// JSON has no NaN/Inf: non-finite values (a diverged energy, an
/// unmeasured probe field) are emitted as null so every line stays
/// parseable. Returned by value; fits in SSO.
std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

void field_u64(std::string& out, const char* name, std::uint64_t v,
               bool first = false) {
  if (!first) out += ',';
  out += '"';
  out += name;
  out += "\":";
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(v));
  out += buf;
}

void field_num(std::string& out, const char* name, double v) {
  out += ",\"";
  out += name;
  out += "\":";
  out += json_number(v);
}

}  // namespace

std::string step_metrics_json(const StepMetrics& m) {
  std::string out;
  out.reserve(512);
  out += '{';
  field_u64(out, "step", m.step, /*first=*/true);
  field_num(out, "t_sim", m.t_sim);
  field_num(out, "wall_s", m.wall_s);
  field_num(out, "build_s", m.build_s);
  field_num(out, "walk_s", m.walk_s);
  field_num(out, "kernel_s", m.kernel_s);
  field_num(out, "engine_s", m.engine_s);
  field_u64(out, "interactions", m.interactions);
  field_u64(out, "list_entries", m.list_entries);
  field_u64(out, "groups", m.groups);
  field_u64(out, "grape_force_calls", m.grape_force_calls);
  field_u64(out, "grape_j_uploaded", m.grape_j_uploaded);
  field_u64(out, "grape_bytes", m.grape_bytes);
  field_num(out, "grape_emulation_s", m.grape_emulation_s);
  field_num(out, "grape_modeled_dma_s", m.grape_modeled_dma_s);
  field_num(out, "grape_modeled_compute_s", m.grape_modeled_compute_s);
  field_num(out, "grape_occupancy", m.grape_occupancy);
  field_num(out, "energy_drift", m.energy_drift);
  field_num(out, "momentum_drift", m.momentum_drift);
  field_num(out, "err_total_p50", m.err_total_p50);
  field_num(out, "err_total_p99", m.err_total_p99);
  field_num(out, "err_tree_p50", m.err_tree_p50);
  field_num(out, "err_tree_p99", m.err_tree_p99);
  field_num(out, "err_codec_p50", m.err_codec_p50);
  field_num(out, "err_codec_p99", m.err_codec_p99);
  out += '}';
  return out;
}

MetricsWriter::MetricsWriter(const std::string& path) {
  file_ = std::fopen(path.c_str(), "w");
  if (file_ == nullptr) {
    throw std::runtime_error("cannot open " + path + " for metrics output");
  }
  // Line buffering as the baseline (every '\n' reaches the kernel even
  // if a future write path forgets to flush); write() flushes explicitly
  // on top, so a kill -9 between steps never costs a completed record.
  std::setvbuf(file_, nullptr, _IOLBF, BUFSIZ);
}

MetricsWriter::~MetricsWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void MetricsWriter::write(const StepMetrics& m) {
  const std::string line = step_metrics_json(m);
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
  std::fflush(file_);
  ++records_;
}

}  // namespace g5::obs
