#include "obs/metrics.hpp"

#include <cmath>
#include <stdexcept>

namespace g5::obs {

namespace {

double finite_or_zero(double v) { return std::isfinite(v) ? v : 0.0; }

unsigned long long ull(std::uint64_t v) {
  return static_cast<unsigned long long>(v);
}

}  // namespace

MetricsWriter::MetricsWriter(const std::string& path) {
  file_ = std::fopen(path.c_str(), "w");
  if (file_ == nullptr) {
    throw std::runtime_error("cannot open " + path + " for metrics output");
  }
}

MetricsWriter::~MetricsWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void MetricsWriter::write(const StepMetrics& m) {
  std::fprintf(
      file_,
      "{\"step\":%llu,\"t_sim\":%.10g,\"wall_s\":%.6g,"
      "\"build_s\":%.6g,\"walk_s\":%.6g,\"kernel_s\":%.6g,"
      "\"engine_s\":%.6g,"
      "\"interactions\":%llu,\"list_entries\":%llu,\"groups\":%llu,"
      "\"grape_force_calls\":%llu,\"grape_j_uploaded\":%llu,"
      "\"grape_bytes\":%llu,\"grape_emulation_s\":%.6g,"
      "\"grape_modeled_dma_s\":%.6g,\"grape_modeled_compute_s\":%.6g,"
      "\"grape_occupancy\":%.6g}\n",
      ull(m.step), finite_or_zero(m.t_sim), finite_or_zero(m.wall_s),
      finite_or_zero(m.build_s), finite_or_zero(m.walk_s),
      finite_or_zero(m.kernel_s), finite_or_zero(m.engine_s),
      ull(m.interactions), ull(m.list_entries), ull(m.groups),
      ull(m.grape_force_calls), ull(m.grape_j_uploaded), ull(m.grape_bytes),
      finite_or_zero(m.grape_emulation_s),
      finite_or_zero(m.grape_modeled_dma_s),
      finite_or_zero(m.grape_modeled_compute_s),
      finite_or_zero(m.grape_occupancy));
  std::fflush(file_);
  ++records_;
}

}  // namespace g5::obs
