#include "obs/metrics.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace g5::obs {

namespace {

/// JSON has no NaN/Inf: non-finite values (a diverged energy, an
/// unmeasured probe field) are emitted as null so every line stays
/// parseable. Returned by value; fits in SSO.
std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

unsigned long long ull(std::uint64_t v) {
  return static_cast<unsigned long long>(v);
}

}  // namespace

MetricsWriter::MetricsWriter(const std::string& path) {
  file_ = std::fopen(path.c_str(), "w");
  if (file_ == nullptr) {
    throw std::runtime_error("cannot open " + path + " for metrics output");
  }
}

MetricsWriter::~MetricsWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void MetricsWriter::write(const StepMetrics& m) {
  std::fprintf(
      file_,
      "{\"step\":%llu,\"t_sim\":%s,\"wall_s\":%s,"
      "\"build_s\":%s,\"walk_s\":%s,\"kernel_s\":%s,"
      "\"engine_s\":%s,"
      "\"interactions\":%llu,\"list_entries\":%llu,\"groups\":%llu,"
      "\"grape_force_calls\":%llu,\"grape_j_uploaded\":%llu,"
      "\"grape_bytes\":%llu,\"grape_emulation_s\":%s,"
      "\"grape_modeled_dma_s\":%s,\"grape_modeled_compute_s\":%s,"
      "\"grape_occupancy\":%s,"
      "\"energy_drift\":%s,\"momentum_drift\":%s,"
      "\"err_total_p50\":%s,\"err_total_p99\":%s,"
      "\"err_tree_p50\":%s,\"err_tree_p99\":%s,"
      "\"err_codec_p50\":%s,\"err_codec_p99\":%s}\n",
      ull(m.step), json_number(m.t_sim).c_str(),
      json_number(m.wall_s).c_str(), json_number(m.build_s).c_str(),
      json_number(m.walk_s).c_str(), json_number(m.kernel_s).c_str(),
      json_number(m.engine_s).c_str(), ull(m.interactions),
      ull(m.list_entries), ull(m.groups), ull(m.grape_force_calls),
      ull(m.grape_j_uploaded), ull(m.grape_bytes),
      json_number(m.grape_emulation_s).c_str(),
      json_number(m.grape_modeled_dma_s).c_str(),
      json_number(m.grape_modeled_compute_s).c_str(),
      json_number(m.grape_occupancy).c_str(),
      json_number(m.energy_drift).c_str(),
      json_number(m.momentum_drift).c_str(),
      json_number(m.err_total_p50).c_str(),
      json_number(m.err_total_p99).c_str(),
      json_number(m.err_tree_p50).c_str(),
      json_number(m.err_tree_p99).c_str(),
      json_number(m.err_codec_p50).c_str(),
      json_number(m.err_codec_p99).c_str());
  std::fflush(file_);
  ++records_;
}

}  // namespace g5::obs
