// Global metric registry: monotonic counters and point-in-time gauges.
//
// Counters are lock-free relaxed atomics — safe to bump from any lane
// of a parallel walk (tests/obs_test.cpp exercises exactness under
// TSan). Registration (name -> slot) takes a mutex, so hot paths look a
// counter up once and keep the reference; slots are never invalidated
// (reset zeroes values, it does not remove entries).
//
// The metric name catalog lives in docs/observability.md; names are
// dotted lowercase ("g5.grape.interactions").
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace g5::obs {

/// Monotonic counter (resettable only through Registry::reset_values).
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  std::atomic<std::uint64_t> value_{0};
};

/// Last-writer-wins instantaneous value (occupancy, queue depth, ...).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  std::atomic<double> value_{0.0};
};

/// One registry entry at snapshot time.
struct MetricSample {
  std::string name;
  bool is_counter = true;
  std::uint64_t count = 0;  ///< counters
  double value = 0.0;       ///< gauges (and count as double for counters)
};

class Registry {
 public:
  /// The process-wide registry.
  static Registry& instance();

  /// Find-or-create; the returned reference is valid forever.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);

  /// All metrics, sorted by name.
  [[nodiscard]] std::vector<MetricSample> snapshot();

  /// Zero every value (entries stay registered; references stay valid).
  void reset_values();

 private:
  Registry() = default;
  struct Impl;
  Impl& impl();
};

/// Shorthands for the common call sites.
inline Counter& counter(std::string_view name) {
  return Registry::instance().counter(name);
}
inline Gauge& gauge(std::string_view name) {
  return Registry::instance().gauge(name);
}

}  // namespace g5::obs
