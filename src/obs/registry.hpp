// Global metric registry: monotonic counters, point-in-time gauges and
// log-bucketed distribution histograms.
//
// Counters are lock-free relaxed atomics — safe to bump from any lane
// of a parallel walk (tests/obs_test.cpp exercises exactness under
// TSan). Histograms shard their buckets per cache line so concurrent
// walk lanes never contend on a hot bucket; snapshot() merges the
// shards on read. Registration (name -> slot) takes a mutex, so hot
// paths look a metric up once and keep the reference; slots are never
// invalidated (reset zeroes values, it does not remove entries).
//
// The metric name catalog lives in docs/observability.md; names are
// dotted lowercase ("g5.grape.interactions").
#pragma once

#include <array>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

namespace g5::obs {

/// Monotonic counter (resettable only through Registry::reset_values).
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  std::atomic<std::uint64_t> value_{0};
};

/// Last-writer-wins instantaneous value (occupancy, queue depth, ...).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  std::atomic<double> value_{0.0};
};

/// Distribution metric over positive reals (list lengths, batch
/// microseconds, relative errors): 64 power-of-two buckets spanning
/// [2^-40, 2^24) plus running count/sum/min/max. observe() is wait-free
/// apart from bounded CAS retries on sum/min/max: each thread lands on
/// one cache-line-aligned shard, so parallel walk lanes do not contend.
/// Non-finite observations are dropped; v <= 0 lands in bucket 0.
class Histogram {
 public:
  static constexpr int kBuckets = 64;
  /// Bucket i covers [2^(i - kExpBias), 2^(i - kExpBias + 1)); the ends
  /// absorb underflow/overflow.
  static constexpr int kExpBias = 40;

  void observe(double v) noexcept {
    if (!std::isfinite(v)) return;
    Shard& s = shards_[shard_index()];
    s.buckets[static_cast<std::size_t>(bucket_of(v))].fetch_add(
        1, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
    atomic_add(s.sum, v);
    atomic_min(s.min, v);
    atomic_max(s.max, v);
  }

  /// Merge-on-read view of the shards; a plain value, safe to keep.
  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  ///< 0 when count == 0
    double max = 0.0;
    std::array<std::uint64_t, kBuckets> buckets{};

    [[nodiscard]] double mean() const noexcept {
      return count != 0 ? sum / static_cast<double>(count) : 0.0;
    }
    /// Quantile estimate at the geometric bucket midpoint, clamped to
    /// the observed [min, max]. q in [0, 1].
    [[nodiscard]] double quantile(double q) const noexcept;
  };
  [[nodiscard]] Snapshot snapshot() const noexcept;

 private:
  friend class Registry;
  void reset() noexcept;

  static int bucket_of(double v) noexcept {
    if (v <= 0.0) return 0;
    const int idx = std::ilogb(v) + kExpBias;
    return idx < 0 ? 0 : (idx >= kBuckets ? kBuckets - 1 : idx);
  }
  static std::size_t shard_index() noexcept;
  static void atomic_add(std::atomic<double>& a, double v) noexcept {
    double cur = a.load(std::memory_order_relaxed);
    while (!a.compare_exchange_weak(cur, cur + v,
                                    std::memory_order_relaxed)) {
    }
  }
  static void atomic_min(std::atomic<double>& a, double v) noexcept {
    double cur = a.load(std::memory_order_relaxed);
    while (v < cur && !a.compare_exchange_weak(cur, v,
                                               std::memory_order_relaxed)) {
    }
  }
  static void atomic_max(std::atomic<double>& a, double v) noexcept {
    double cur = a.load(std::memory_order_relaxed);
    while (v > cur && !a.compare_exchange_weak(cur, v,
                                               std::memory_order_relaxed)) {
    }
  }

  static constexpr std::size_t kShards = 8;
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> min{std::numeric_limits<double>::infinity()};
    std::atomic<double> max{-std::numeric_limits<double>::infinity()};
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
  };
  std::array<Shard, kShards> shards_{};
};

/// What a MetricSample describes.
enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// One registry entry at snapshot time.
struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  bool is_counter = true;   ///< kind == kCounter (kept for call sites)
  std::uint64_t count = 0;  ///< counters and histogram observation count
  double value = 0.0;       ///< gauges (count as double for counters,
                            ///< mean for histograms)
  Histogram::Snapshot hist;  ///< histograms only (count == hist.count)
};

class Registry {
 public:
  /// The process-wide registry.
  static Registry& instance();

  /// Find-or-create; the returned reference is valid forever.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Lookup without creating — nullptr when the name was never
  /// registered. The crash post-mortem path caches these pointers so
  /// reading device gauges from a signal handler neither allocates nor
  /// invents registry entries.
  [[nodiscard]] Gauge* find_gauge(std::string_view name);

  /// All metrics, sorted by name.
  [[nodiscard]] std::vector<MetricSample> snapshot();

  /// Zero every value (entries stay registered; references stay valid).
  void reset_values();

 private:
  Registry() = default;
  struct Impl;
  Impl& impl();
};

/// Shorthands for the common call sites.
inline Counter& counter(std::string_view name) {
  return Registry::instance().counter(name);
}
inline Gauge& gauge(std::string_view name) {
  return Registry::instance().gauge(name);
}
inline Histogram& histogram(std::string_view name) {
  return Registry::instance().histogram(name);
}

}  // namespace g5::obs
