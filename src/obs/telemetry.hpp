// Background telemetry sampler: the live half of the obs layer.
//
// Telemetry is an RAII sampler thread ("g5-telemetry") that, every
// `period_ms`:
//   * builds the status document (obs/export.hpp) and writes it to
//     `status_path` atomically (temp + rename);
//   * writes the Prometheus text exposition to `prom_path`;
//   * refreshes the crash post-mortem caches (obs/crash.hpp) so a dump
//     taken mid-run carries a registry section at most one period old.
//
// Construction arms the flight recorder (unless arm_flight = false) and
// takes an immediate first sample, so a status file exists within
// milliseconds of startup. stop() is idempotent (clean double-stop) and
// takes a final sample after the join, so the last document reflects
// the run's end state. The sampler only ever *reads* metrics —
// simulation physics is bitwise-identical with the sampler on or off
// (tests/obs_telemetry_test.cpp holds that).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "util/mutex.hpp"
#include "util/thread.hpp"

namespace g5::obs {

struct TelemetryConfig {
  unsigned period_ms = 1000;  ///< sampling period (default 1 s)
  std::string status_path;    ///< status JSON ("" = don't write)
  std::string prom_path;      ///< Prometheus text ("" = don't write)
  bool arm_flight = true;     ///< arm the flight recorder on start
};

class Telemetry {
 public:
  explicit Telemetry(TelemetryConfig config);
  ~Telemetry();
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  /// Stop the sampler and take a final sample. Idempotent.
  void stop();

  /// One synchronous sample on the calling thread (tests, final flush).
  void sample_now();

  [[nodiscard]] std::uint64_t samples() const noexcept {
    return samples_.load(std::memory_order_relaxed);
  }

 private:
  void loop();
  void sample();

  TelemetryConfig cfg_;
  util::Mutex mutex_;
  util::CondVar cv_;
  bool stop_requested_ G5_GUARDED_BY(mutex_) = false;
  std::atomic<std::uint64_t> samples_{0};
  util::Thread thread_;  ///< last member: started in the ctor body, after
                         ///< the eager first sample
};

}  // namespace g5::obs
