// Chrome trace-event collection and export.
//
// When tracing is armed (start_trace) and the master switch is on
// (obs/span.hpp), every closed Span appends one complete ("ph":"X")
// event and trace_counter() appends counter ("ph":"C") series. The
// buffer is bounded: past `max_events` new events are dropped and
// counted, never reallocated without bound. write_trace() emits the
// standard JSON object format that chrome://tracing and Perfetto load
// directly (docs/observability.md walks through opening one).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace g5::obs {

/// Arm trace collection: clears the buffer and sets the event cap.
void start_trace(std::size_t max_events = 1u << 20);

/// Disarm collection; the buffer is kept until the next start_trace().
void stop_trace();

/// True between start_trace() and stop_trace().
[[nodiscard]] bool tracing() noexcept;

/// Append a counter sample ("ph":"C"): one series per name, rendered as
/// a stacked area track by the viewers. No-op unless enabled + tracing.
void trace_counter(std::string_view name, double value);

/// Internal: append a complete event (Span's destructor calls this).
void trace_complete_event(std::string_view name, std::string_view category,
                          double start_us, double duration_us);

/// Events currently buffered / dropped at the cap since start_trace().
[[nodiscard]] std::size_t trace_event_count();
[[nodiscard]] std::uint64_t trace_dropped_count();

/// Write the buffered events as Chrome trace JSON ({"traceEvents":[...]})
/// with a counter/gauge registry snapshot under "otherData". Returns
/// false (and leaves no partial file behind contractually — best effort)
/// when the file cannot be opened.
bool write_trace(const std::string& path);

}  // namespace g5::obs
