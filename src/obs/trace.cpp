#include "obs/trace.hpp"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <map>
#include <thread>
#include <vector>

#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "util/mutex.hpp"
#include "util/thread.hpp"

namespace g5::obs {

namespace {

struct TraceEvent {
  std::string name;
  std::string cat;
  std::uint32_t tid = 0;
  double ts_us = 0.0;
  double dur_us = 0.0;  ///< duration for 'X', sample value for 'C'
  char ph = 'X';
};

std::atomic<bool> g_tracing{false};

struct TraceState {
  util::Mutex mutex;
  std::vector<TraceEvent> events G5_GUARDED_BY(mutex);
  std::size_t cap G5_GUARDED_BY(mutex) = 0;
  std::uint64_t dropped G5_GUARDED_BY(mutex) = 0;
  std::map<std::thread::id, std::uint32_t> tids G5_GUARDED_BY(mutex);
  /// Thread name captured when the tid slot was assigned (set via
  /// util::set_current_thread_name; empty for unnamed threads).
  std::map<std::uint32_t, std::string> names G5_GUARDED_BY(mutex);
  std::uint32_t next_tid G5_GUARDED_BY(mutex) = 1;
};

TraceState& state() {
  static TraceState s;
  return s;
}

std::uint32_t tid_locked(TraceState& s)
    G5_REQUIRES(s.mutex) {
  const auto id = std::this_thread::get_id();
  auto& slot = s.tids[id];
  if (slot == 0) {
    slot = s.next_tid++;
    s.names[slot] = util::current_thread_name();
  }
  return slot;
}

void append(std::string_view name, std::string_view cat, double ts_us,
            double dur_us, char ph) {
  TraceState& s = state();
  const util::MutexLock lock(s.mutex);
  if (s.events.size() >= s.cap) {
    ++s.dropped;
    return;
  }
  TraceEvent ev;
  ev.name.assign(name);
  ev.cat.assign(cat);
  ev.tid = tid_locked(s);
  ev.ts_us = ts_us;
  ev.dur_us = dur_us;
  ev.ph = ph;
  s.events.push_back(std::move(ev));
}

/// Escape a string for a JSON literal (our names are tame, but quotes
/// and control characters must never corrupt the file).
void write_json_string(std::FILE* f, const std::string& str) {
  std::fputc('"', f);
  for (const char c : str) {
    const auto u = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') {
      std::fputc('\\', f);
      std::fputc(c, f);
    } else if (u < 0x20) {
      std::fprintf(f, "\\u%04x", u);
    } else {
      std::fputc(c, f);
    }
  }
  std::fputc('"', f);
}

double finite_or_zero(double v) { return std::isfinite(v) ? v : 0.0; }

}  // namespace

void start_trace(std::size_t max_events) {
  TraceState& s = state();
  {
    const util::MutexLock lock(s.mutex);
    s.events.clear();
    s.cap = max_events;
    s.dropped = 0;
  }
  g_tracing.store(true, std::memory_order_relaxed);
}

void stop_trace() { g_tracing.store(false, std::memory_order_relaxed); }

bool tracing() noexcept {
  return g_tracing.load(std::memory_order_relaxed);
}

void trace_counter(std::string_view name, double value) {
  if (!enabled() || !tracing()) return;
  append(name, "metric", now_us(), value, 'C');
}

void trace_complete_event(std::string_view name, std::string_view category,
                          double start_us, double duration_us) {
  if (!tracing()) return;
  append(name, category, start_us, duration_us, 'X');
}

std::size_t trace_event_count() {
  TraceState& s = state();
  const util::MutexLock lock(s.mutex);
  return s.events.size();
}

std::uint64_t trace_dropped_count() {
  TraceState& s = state();
  const util::MutexLock lock(s.mutex);
  return s.dropped;
}

bool write_trace(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;

  TraceState& s = state();
  const util::MutexLock lock(s.mutex);
  std::fprintf(f, "{\"traceEvents\":[");
  bool first = true;
  for (const TraceEvent& ev : s.events) {
    if (!first) std::fputc(',', f);
    first = false;
    std::fprintf(f, "\n{\"name\":");
    write_json_string(f, ev.name);
    if (ev.ph == 'X') {
      std::fprintf(f, ",\"cat\":");
      write_json_string(f, ev.cat.empty() ? std::string("phase") : ev.cat);
      std::fprintf(f, ",\"ph\":\"X\",\"pid\":1,\"tid\":%u,"
                      "\"ts\":%.3f,\"dur\":%.3f}",
                   ev.tid, finite_or_zero(ev.ts_us),
                   finite_or_zero(ev.dur_us));
    } else {
      std::fprintf(f, ",\"ph\":\"C\",\"pid\":1,\"tid\":%u,\"ts\":%.3f,"
                      "\"args\":{\"value\":%.10g}}",
                   ev.tid, finite_or_zero(ev.ts_us),
                   finite_or_zero(ev.dur_us));
    }
  }
  // Thread-name metadata so the viewer labels the lanes: real names
  // (g5-main, g5-pool-N, g5-submit, ...) when the thread was named via
  // util::set_current_thread_name, "thread-N" otherwise.
  for (const auto& [id, tid] : s.tids) {
    static_cast<void>(id);
    if (!first) std::fputc(',', f);
    first = false;
    std::fprintf(f, "\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                    "\"tid\":%u,\"args\":{\"name\":",
                 tid);
    const auto it = s.names.find(tid);
    if (it != s.names.end() && !it->second.empty()) {
      write_json_string(f, it->second);
    } else {
      std::fprintf(f, "\"thread-%u\"", tid);
    }
    std::fprintf(f, "}}");
  }
  // Registry snapshot rides along for offline inspection.
  std::fprintf(f, "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{"
                  "\"dropped_events\":%llu,\"metrics\":{",
               static_cast<unsigned long long>(s.dropped));
  bool first_metric = true;
  for (const MetricSample& m : Registry::instance().snapshot()) {
    if (!first_metric) std::fputc(',', f);
    first_metric = false;
    write_json_string(f, m.name);
    if (m.kind == MetricKind::kHistogram) {
      // Distributions ride along as a summary object (full buckets stay
      // in --timing-json; the trace keeps the headline statistics).
      const Histogram::Snapshot& h = m.hist;
      std::fprintf(f,
                   ":{\"count\":%llu,\"mean\":%.10g,\"min\":%.10g,"
                   "\"max\":%.10g,\"p50\":%.10g,\"p90\":%.10g,"
                   "\"p99\":%.10g}",
                   static_cast<unsigned long long>(h.count),
                   finite_or_zero(h.mean()), finite_or_zero(h.min),
                   finite_or_zero(h.max), finite_or_zero(h.quantile(0.50)),
                   finite_or_zero(h.quantile(0.90)),
                   finite_or_zero(h.quantile(0.99)));
    } else if (m.is_counter) {
      std::fprintf(f, ":%llu", static_cast<unsigned long long>(m.count));
    } else {
      std::fprintf(f, ":%.10g", finite_or_zero(m.value));
    }
  }
  std::fprintf(f, "}}}\n");
  std::fclose(f);
  return true;
}

}  // namespace g5::obs
