// Per-step metrics record and JSON-lines sink.
//
// One StepMetrics per simulation step: wall clock, the engine's
// per-phase second deltas, walk/list work, and the GRAPE account deltas
// (zeros for host engines). core::Simulation fills and emits these when
// SimulationConfig::metrics_jsonl is set; tools/check_trace.py holds
// the machine-checked schema (tools/schema/metrics.schema.json) and
// docs/observability.md documents every field.
#pragma once

#include <cstdint>
#include <cstdio>
#include <limits>
#include <string>

namespace g5::obs {

struct StepMetrics {
  std::uint64_t step = 0;       ///< 1-based step index
  double t_sim = 0.0;           ///< simulation time after the step
  double wall_s = 0.0;          ///< measured wall clock of the step

  // Engine phase seconds for this step (deltas of EngineStats; the
  // walk/kernel entries are per-lane CPU seconds, as in EngineStats).
  double build_s = 0.0;
  double walk_s = 0.0;
  double kernel_s = 0.0;
  double engine_s = 0.0;        ///< whole compute() wall

  // Work performed this step.
  std::uint64_t interactions = 0;
  std::uint64_t list_entries = 0;
  std::uint64_t groups = 0;

  // GRAPE hardware account deltas (all zero for host engines).
  std::uint64_t grape_force_calls = 0;
  std::uint64_t grape_j_uploaded = 0;
  std::uint64_t grape_bytes = 0;         ///< host-interface bytes moved
  double grape_emulation_s = 0.0;        ///< measured emulator wall
  double grape_modeled_dma_s = 0.0;      ///< modeled silicon DMA
  double grape_modeled_compute_s = 0.0;  ///< modeled silicon compute
  double grape_occupancy = 0.0;          ///< i-slot fill fraction [0,1]

  // Accuracy telemetry, filled only on steps where the conservation
  // diagnostics / force-error probe ran (SimulationConfig::probe_every).
  // NaN means "not measured this step" and is emitted as JSON null (the
  // sink turns every non-finite double into null — JSON has no NaN/Inf).
  double energy_drift = kUnmeasured;    ///< |(E - E0) / E0|
  double momentum_drift = kUnmeasured;  ///< |p - p0|
  double err_total_p50 = kUnmeasured;   ///< sampled |dF|/|F| medians...
  double err_total_p99 = kUnmeasured;
  double err_tree_p50 = kUnmeasured;    ///< ...tree component
  double err_tree_p99 = kUnmeasured;
  double err_codec_p50 = kUnmeasured;   ///< ...GRAPE codec component
  double err_codec_p99 = kUnmeasured;

  static constexpr double kUnmeasured =
      std::numeric_limits<double>::quiet_NaN();
};

/// One StepMetrics as a JSON object — exactly the JSONL line format
/// (no trailing newline). Shared by MetricsWriter and the status-file
/// exporter (obs/export.hpp) so both artifacts agree byte-for-byte.
[[nodiscard]] std::string step_metrics_json(const StepMetrics& m);

/// Appends StepMetrics as one JSON object per line (JSON Lines). The
/// stream is line-buffered and flushed per record so an abnormal exit
/// (crash, SIGKILL) keeps every completed-step record.
class MetricsWriter {
 public:
  /// Opens `path` for writing; throws std::runtime_error on failure.
  explicit MetricsWriter(const std::string& path);
  ~MetricsWriter();
  MetricsWriter(const MetricsWriter&) = delete;
  MetricsWriter& operator=(const MetricsWriter&) = delete;

  void write(const StepMetrics& m);

  [[nodiscard]] std::uint64_t records_written() const noexcept {
    return records_;
  }

 private:
  std::FILE* file_ = nullptr;
  std::uint64_t records_ = 0;
};

}  // namespace g5::obs
