// Crash post-mortem: async-signal-safe flight-recorder dumps.
//
// install() hooks SIGSEGV/SIGBUS/SIGFPE/SIGILL/SIGABRT/SIGTERM and
// std::terminate. When any of them fires, the handler serializes a
// post-mortem JSON document ("schema": "g5.postmortem.v1") into a
// static buffer with util::SigsafeWriter and write(2)s it to the
// configured path, then restores the default disposition and re-raises
// so the process still dies with the original signal (exit status,
// core dumps and CI signal reporting stay truthful).
//
// What the dump contains — all read lock-free from structures designed
// for it:
//   * the flight recorder's last step records and span events;
//   * every named thread's live span path (where each thread was);
//   * device state (queue depth, in-flight jobs, board count, per-board
//     JMEM fill) via gauge pointers cached OFF the signal path;
//   * RSS from /proc/self/statm;
//   * a registry metrics section pre-serialized by the telemetry
//     sampler (refresh()); null if no sampler ever ran.
//
// Signal-handler constraints honored: no malloc, no stdio, no locks.
// Everything the handler touches is a static buffer, a relaxed atomic
// or a syscall from the async-signal-safe list.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace g5::obs::crash {

/// Install the handlers and the std::terminate hook, dumping to `path`
/// on abnormal exit. Idempotent; a later call just updates the path.
void install(const std::string& path);

[[nodiscard]] bool installed() noexcept;

/// Refresh the cached state the handler reads: device gauge pointers
/// (resolved via Registry::find_gauge — never creating entries) and the
/// pre-serialized registry JSON section. Called by obs::Telemetry every
/// sampling tick; call manually when running without a sampler.
void refresh();

/// Serialize and write a post-mortem right now, with cause
/// {"kind":"manual","name":`cause`}. Returns bytes written (0 on
/// failure). Unlike the signal path this may be called repeatedly.
std::size_t write_postmortem_now(std::string_view cause);

}  // namespace g5::obs::crash
