// Hierarchical phase timers: the measured side of the Section 5 story.
//
// A Span is an RAII wall-clock timer with a *path*: spans opened on the
// same thread nest, and a span's path is its ancestors' names joined
// with '/' ("/step/force/walk"). Worker threads inherit the path of the
// thread that launched them when the launcher propagates it (see
// ScopedParentPath and util::ThreadPool::parallel_for), so the lane
// spans of a parallel tree walk file under the walk phase that spawned
// them. Every closed span adds its duration to a global per-path
// accumulator (phase_report()) and, when tracing is on, appends a
// Chrome trace event (obs/trace.hpp).
//
// Cost contract: with the master switch off (the default) a Span is one
// relaxed atomic load and nothing else — bench_p2_obs_overhead holds the
// instrumented hot paths to that. Compiling with G5_OBS_ENABLED=0
// removes the G5_OBS_SPAN statements entirely.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#ifndef G5_OBS_ENABLED
#define G5_OBS_ENABLED 1
#endif

namespace g5::obs {

/// Master switch for all observability instrumentation (spans, phase
/// accumulation, trace collection). Off by default; relaxed-atomic read.
[[nodiscard]] bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// Microseconds since an arbitrary process-wide epoch (steady clock);
/// the time base of spans and trace events.
[[nodiscard]] double now_us() noexcept;

class Span {
 public:
  /// Opens a phase. `name` must not contain '/'; `category` groups
  /// events in the trace viewer ("tree", "grape", "sim", "pool", ...).
  /// Both must outlive the span (string literals in practice).
  explicit Span(std::string_view name, std::string_view category = "");
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Nesting depth of the calling thread (0 outside any span).
  [[nodiscard]] static int current_depth() noexcept;

  /// Path of the calling thread's innermost open span, else the
  /// propagated parent path (ScopedParentPath), else "".
  [[nodiscard]] static std::string current_path();

 private:
  bool active_ = false;
  double start_us_ = 0.0;
  std::size_t prev_len_ = 0;  ///< thread path length before this span
  std::string_view category_;
};

/// Propagates a parent span path into a thread that has no open spans:
/// while alive, spans opened on this thread nest under `parent_path`.
/// Inactive (a no-op) when instrumentation is off, when `parent_path`
/// is empty, or when the thread already has open spans (the fork-join
/// caller lane re-entering its own job).
class ScopedParentPath {
 public:
  explicit ScopedParentPath(const std::string& parent_path);
  ~ScopedParentPath();
  ScopedParentPath(const ScopedParentPath&) = delete;
  ScopedParentPath& operator=(const ScopedParentPath&) = delete;

 private:
  bool active_ = false;
};

/// Add `seconds` to the phase accumulator at the calling thread's
/// current path extended with `/name` — for phases measured by lap
/// accumulation rather than a live scope (e.g. per-lane CPU seconds
/// reduced after a parallel region). No-op when instrumentation is off.
void record_phase(std::string_view name, double seconds,
                  std::uint64_t count = 1);

/// One row of the measured per-phase table.
struct PhaseStat {
  std::string path;
  std::uint64_t count = 0;
  double total_s = 0.0;
  [[nodiscard]] double mean_s() const {
    return count ? total_s / static_cast<double>(count) : 0.0;
  }
};

/// Snapshot of every phase accumulated so far, sorted by path.
[[nodiscard]] std::vector<PhaseStat> phase_report();

/// Clear the phase accumulators (counters/gauges are separate:
/// obs/registry.hpp).
void reset_phases();

#if G5_OBS_ENABLED
#define G5_OBS_CONCAT_INNER(a, b) a##b
#define G5_OBS_CONCAT(a, b) G5_OBS_CONCAT_INNER(a, b)
/// Statement form: a span covering the rest of the enclosing scope.
#define G5_OBS_SPAN(name, category) \
  ::g5::obs::Span G5_OBS_CONCAT(g5_obs_span_, __LINE__) { (name), (category) }
#else
#define G5_OBS_SPAN(name, category) static_cast<void>(0)
#endif

}  // namespace g5::obs
