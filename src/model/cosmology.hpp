// Friedmann background cosmology: expansion history, ages, linear growth.
//
// The paper's run uses a standard cold dark matter (SCDM) model — Omega_m
// = 1, h = 0.5 — for which everything has closed forms (Einstein-de
// Sitter); the class implements the general flat/open matter + Lambda case
// by quadrature and the tests cross-check the EdS closed forms.
#pragma once

#include <cstddef>
#include <vector>

namespace g5::model {

struct CosmologyParams {
  double omega_m = 1.0;   ///< matter density parameter today
  double omega_l = 0.0;   ///< cosmological constant density parameter today
  double h = 0.5;         ///< H0 / (100 km/s/Mpc)

  /// The paper's background: SCDM, h = 0.5 (consistent with its quoted
  /// particle mass of 1.7e10 Msun for N = 2,159,038 in a 50 Mpc sphere).
  static CosmologyParams scdm() { return CosmologyParams{1.0, 0.0, 0.5}; }
};

class Cosmology {
 public:
  explicit Cosmology(const CosmologyParams& params);

  [[nodiscard]] const CosmologyParams& params() const noexcept { return p_; }

  /// H0 in Gyr^-1.
  [[nodiscard]] double hubble0() const noexcept { return h0_; }

  /// H(a) in Gyr^-1. Curvature term included so omega_m+omega_l need not
  /// be 1 (the paper's SCDM is flat anyway).
  [[nodiscard]] double hubble(double a) const;

  /// Cosmic time since the Big Bang at scale factor a, in Gyr (quadrature).
  [[nodiscard]] double age(double a) const;

  /// Scale factor at cosmic time t (inverts age() by bisection).
  [[nodiscard]] double scale_factor(double t) const;

  /// Linear growth factor D(a), normalized so D(1) = 1.
  [[nodiscard]] double growth_factor(double a) const;

  /// Growth rate f = dlnD/dlna at a.
  [[nodiscard]] double growth_rate(double a) const;

  /// Mean matter density at a = 1 in internal units ((1e10 Msun)/Mpc^3).
  [[nodiscard]] double mean_matter_density() const;

  static constexpr double a_of_z(double z) { return 1.0 / (1.0 + z); }
  static constexpr double z_of_a(double a) { return 1.0 / a - 1.0; }

  /// Leapfrog kick factor for comoving integration: int dt / a over the
  /// scale-factor interval [a1, a2] (= int da / (a^2 H)).
  [[nodiscard]] double kick_factor(double a1, double a2) const;

  /// Leapfrog drift factor: int dt / a^2 over [a1, a2] (= int da/(a^3 H)).
  [[nodiscard]] double drift_factor(double a1, double a2) const;

  /// The comoving background-force coefficient: the peculiar force in
  /// comoving coordinates for an isolated region is g_com + C(a) * x with
  /// C(a) = -(a_dotdot/a) a^3 = H0^2 (omega_m / 2 - omega_l a^3)
  /// (in Gyr^-2; the matter term cancels the mean-field pull of the
  /// region's own mass).
  [[nodiscard]] double comoving_background_coefficient(double a) const;

  /// Cosmic-time step sizes for `steps` intervals uniform in ln(a) from
  /// a_start to a_end. Early steps are small (the early universe is dense
  /// and dynamically fast), late steps large — the standard pacing for a
  /// physical-coordinate integration across a large expansion factor.
  [[nodiscard]] std::vector<double> log_a_timesteps(double a_start,
                                                    double a_end,
                                                    std::size_t steps) const;

 private:
  CosmologyParams p_;
  double h0_;        // Gyr^-1
  double growth_norm_;

  [[nodiscard]] double growth_unnormalized(double a) const;
};

}  // namespace g5::model
