// Structure-of-arrays particle storage plus bulk diagnostics.
//
// All force engines read positions/masses from here and write
// accelerations/potentials back; the layout keeps each attribute
// contiguous, which is what both the tree builder (Morton reorder) and the
// GRAPE driver (DMA packing) want.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "math/vec3.hpp"

namespace g5::model {

using math::Vec3d;

/// Axis-aligned bounding box.
struct Aabb {
  Vec3d lo{0.0, 0.0, 0.0};
  Vec3d hi{0.0, 0.0, 0.0};

  [[nodiscard]] Vec3d center() const { return 0.5 * (lo + hi); }
  [[nodiscard]] Vec3d extent() const { return hi - lo; }
  /// Side of the smallest cube containing the box.
  [[nodiscard]] double cube_size() const { return extent().max_component(); }
  [[nodiscard]] bool contains(const Vec3d& p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y &&
           p.z >= lo.z && p.z <= hi.z;
  }
};

class ParticleSet {
 public:
  ParticleSet() = default;
  explicit ParticleSet(std::size_t n) { resize(n); }

  [[nodiscard]] std::size_t size() const noexcept { return pos_.size(); }
  [[nodiscard]] bool empty() const noexcept { return pos_.empty(); }

  void resize(std::size_t n);
  void reserve(std::size_t n);
  void clear();

  /// Append one particle (acc/pot zero-initialized).
  void add(const Vec3d& position, const Vec3d& velocity, double mass);

  /// Append all particles of another set.
  void append(const ParticleSet& other);

  // Attribute access (SoA).
  [[nodiscard]] std::vector<Vec3d>& pos() noexcept { return pos_; }
  [[nodiscard]] const std::vector<Vec3d>& pos() const noexcept { return pos_; }
  [[nodiscard]] std::vector<Vec3d>& vel() noexcept { return vel_; }
  [[nodiscard]] const std::vector<Vec3d>& vel() const noexcept { return vel_; }
  [[nodiscard]] std::vector<double>& mass() noexcept { return mass_; }
  [[nodiscard]] const std::vector<double>& mass() const noexcept {
    return mass_;
  }
  [[nodiscard]] std::vector<Vec3d>& acc() noexcept { return acc_; }
  [[nodiscard]] const std::vector<Vec3d>& acc() const noexcept { return acc_; }
  [[nodiscard]] std::vector<double>& pot() noexcept { return pot_; }
  [[nodiscard]] const std::vector<double>& pot() const noexcept { return pot_; }
  [[nodiscard]] std::vector<std::uint64_t>& id() noexcept { return id_; }
  [[nodiscard]] const std::vector<std::uint64_t>& id() const noexcept {
    return id_;
  }

  // Bulk diagnostics.
  [[nodiscard]] double total_mass() const;
  [[nodiscard]] Vec3d center_of_mass() const;
  [[nodiscard]] Vec3d total_momentum() const;
  [[nodiscard]] Vec3d total_angular_momentum() const;
  [[nodiscard]] double kinetic_energy() const;
  /// 0.5 * sum m_i pot_i — valid after an engine filled pot().
  [[nodiscard]] double potential_energy_from_pot() const;
  [[nodiscard]] Aabb bounding_box() const;

  /// Reorder every attribute by `perm` (new index i takes old perm[i]).
  void apply_permutation(const std::vector<std::uint32_t>& perm);

  /// Zero accelerations and potentials (engines accumulate into them).
  void zero_force();

 private:
  std::vector<Vec3d> pos_;
  std::vector<Vec3d> vel_;
  std::vector<double> mass_;
  std::vector<Vec3d> acc_;
  std::vector<double> pot_;
  std::vector<std::uint64_t> id_;
};

}  // namespace g5::model
