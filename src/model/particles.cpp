#include "model/particles.hpp"

#include <limits>
#include <stdexcept>

namespace g5::model {

void ParticleSet::resize(std::size_t n) {
  const std::size_t old = size();
  pos_.resize(n);
  vel_.resize(n);
  mass_.resize(n, 0.0);
  acc_.resize(n);
  pot_.resize(n, 0.0);
  id_.resize(n);
  for (std::size_t i = old; i < n; ++i) id_[i] = i;
}

void ParticleSet::reserve(std::size_t n) {
  pos_.reserve(n);
  vel_.reserve(n);
  mass_.reserve(n);
  acc_.reserve(n);
  pot_.reserve(n);
  id_.reserve(n);
}

void ParticleSet::clear() {
  pos_.clear();
  vel_.clear();
  mass_.clear();
  acc_.clear();
  pot_.clear();
  id_.clear();
}

void ParticleSet::add(const Vec3d& position, const Vec3d& velocity,
                      double mass) {
  pos_.push_back(position);
  vel_.push_back(velocity);
  mass_.push_back(mass);
  acc_.push_back(Vec3d{});
  pot_.push_back(0.0);
  id_.push_back(id_.empty() ? 0 : id_.back() + 1);
}

void ParticleSet::append(const ParticleSet& other) {
  const std::uint64_t base = id_.empty() ? 0 : id_.back() + 1;
  reserve(size() + other.size());
  for (std::size_t i = 0; i < other.size(); ++i) {
    pos_.push_back(other.pos_[i]);
    vel_.push_back(other.vel_[i]);
    mass_.push_back(other.mass_[i]);
    acc_.push_back(other.acc_[i]);
    pot_.push_back(other.pot_[i]);
    id_.push_back(base + other.id_[i]);
  }
}

double ParticleSet::total_mass() const {
  double m = 0.0;
  for (double mi : mass_) m += mi;
  return m;
}

Vec3d ParticleSet::center_of_mass() const {
  Vec3d com{};
  double m = 0.0;
  for (std::size_t i = 0; i < size(); ++i) {
    com += mass_[i] * pos_[i];
    m += mass_[i];
  }
  return m > 0.0 ? com / m : Vec3d{};
}

Vec3d ParticleSet::total_momentum() const {
  Vec3d p{};
  for (std::size_t i = 0; i < size(); ++i) p += mass_[i] * vel_[i];
  return p;
}

Vec3d ParticleSet::total_angular_momentum() const {
  Vec3d l{};
  for (std::size_t i = 0; i < size(); ++i) {
    l += mass_[i] * pos_[i].cross(vel_[i]);
  }
  return l;
}

double ParticleSet::kinetic_energy() const {
  double e = 0.0;
  for (std::size_t i = 0; i < size(); ++i) e += 0.5 * mass_[i] * vel_[i].norm2();
  return e;
}

double ParticleSet::potential_energy_from_pot() const {
  double e = 0.0;
  for (std::size_t i = 0; i < size(); ++i) e += 0.5 * mass_[i] * pot_[i];
  return e;
}

Aabb ParticleSet::bounding_box() const {
  if (empty()) return Aabb{};
  Aabb box;
  constexpr double inf = std::numeric_limits<double>::infinity();
  box.lo = Vec3d{inf, inf, inf};
  box.hi = Vec3d{-inf, -inf, -inf};
  for (const auto& p : pos_) {
    box.lo = math::cwise_min(box.lo, p);
    box.hi = math::cwise_max(box.hi, p);
  }
  return box;
}

void ParticleSet::apply_permutation(const std::vector<std::uint32_t>& perm) {
  if (perm.size() != size()) {
    throw std::invalid_argument("permutation size mismatch");
  }
  const std::size_t n = size();
  std::vector<Vec3d> vtmp(n);
  std::vector<double> dtmp(n);
  std::vector<std::uint64_t> itmp(n);

  auto permute_vec = [&](std::vector<Vec3d>& v) {
    for (std::size_t i = 0; i < n; ++i) vtmp[i] = v[perm[i]];
    v.swap(vtmp);
  };
  auto permute_dbl = [&](std::vector<double>& v) {
    for (std::size_t i = 0; i < n; ++i) dtmp[i] = v[perm[i]];
    v.swap(dtmp);
  };
  permute_vec(pos_);
  permute_vec(vel_);
  permute_vec(acc_);
  permute_dbl(mass_);
  permute_dbl(pot_);
  for (std::size_t i = 0; i < n; ++i) itmp[i] = id_[perm[i]];
  id_.swap(itmp);
}

void ParticleSet::zero_force() {
  for (auto& a : acc_) a = Vec3d{};
  for (auto& p : pot_) p = 0.0;
}

}  // namespace g5::model
