#include "model/cosmology.hpp"

#include <cmath>
#include <stdexcept>

#include "model/units.hpp"

namespace g5::model {

namespace {

/// Fixed-order Gauss-Legendre quadrature on [a, b] (20 nodes on [0,1],
/// symmetric; plenty for these smooth integrands).
template <typename F>
double integrate(F&& f, double a, double b, int panels = 8) {
  // 10-point Gauss-Legendre nodes/weights on [-1, 1].
  static const double x[5] = {0.1488743389816312, 0.4333953941292472,
                              0.6794095682990244, 0.8650633666889845,
                              0.9739065285171717};
  static const double w[5] = {0.2955242247147529, 0.2692667193099963,
                              0.2190863625159820, 0.1494513491505806,
                              0.0666713443086881};
  double total = 0.0;
  const double hstep = (b - a) / panels;
  for (int p = 0; p < panels; ++p) {
    const double lo = a + p * hstep;
    const double mid = lo + 0.5 * hstep;
    const double half = 0.5 * hstep;
    double s = 0.0;
    for (int i = 0; i < 5; ++i) {
      s += w[i] * (f(mid + half * x[i]) + f(mid - half * x[i]));
    }
    total += s * half;
  }
  return total;
}

}  // namespace

Cosmology::Cosmology(const CosmologyParams& params) : p_(params) {
  if (p_.omega_m <= 0.0) throw std::invalid_argument("omega_m must be > 0");
  if (p_.h <= 0.0) throw std::invalid_argument("h must be > 0");
  h0_ = p_.h * hubble100_per_gyr();
  growth_norm_ = growth_unnormalized(1.0);
}

double Cosmology::hubble(double a) const {
  if (a <= 0.0) throw std::invalid_argument("scale factor must be > 0");
  const double omega_k = 1.0 - p_.omega_m - p_.omega_l;
  const double e2 = p_.omega_m / (a * a * a) + omega_k / (a * a) + p_.omega_l;
  return h0_ * std::sqrt(e2);
}

double Cosmology::age(double a) const {
  if (a <= 0.0) throw std::invalid_argument("scale factor must be > 0");
  // t(a) = int_0^a da' / (a' H(a')). The integrand ~ a'^1/2 near 0 for
  // matter domination: integrable; substitute a' = u^2 to tame it.
  const double sa = std::sqrt(a);
  auto f = [&](double u) {
    const double ap = u * u;
    return 2.0 * u / (ap * hubble(ap));
  };
  return integrate(f, 1e-8, sa, 16);
}

double Cosmology::scale_factor(double t) const {
  if (t <= 0.0) throw std::invalid_argument("time must be > 0");
  double lo = 1e-6, hi = 64.0;
  if (t <= age(lo)) return lo;
  while (age(hi) < t) hi *= 2.0;
  for (int it = 0; it < 200; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (age(mid) < t) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-12 * hi) break;
  }
  return 0.5 * (lo + hi);
}

double Cosmology::growth_unnormalized(double a) const {
  // D(a) = (5 Om H0^3 / 2) H(a) int_0^a da' / (a' H(a'))^3  (Heath 1977).
  auto f = [&](double u) {
    const double ap = u * u;
    const double ah = ap * hubble(ap);
    return 2.0 * u / (ah * ah * ah);
  };
  const double integral = integrate(f, 1e-8, std::sqrt(a), 16);
  return 2.5 * p_.omega_m * h0_ * h0_ * h0_ * hubble(a) * integral;
}

double Cosmology::growth_factor(double a) const {
  return growth_unnormalized(a) / growth_norm_;
}

double Cosmology::growth_rate(double a) const {
  // Numerical log-derivative; growth is smooth so a central difference at
  // 1e-5 relative step is accurate to ~1e-9.
  const double eps = 1e-5;
  const double dp = std::log(growth_unnormalized(a * (1.0 + eps)));
  const double dm = std::log(growth_unnormalized(a * (1.0 - eps)));
  return (dp - dm) / (std::log1p(eps) - std::log1p(-eps));
}

double Cosmology::kick_factor(double a1, double a2) const {
  if (!(a2 >= a1) || a1 <= 0.0) {
    throw std::invalid_argument("need 0 < a1 <= a2");
  }
  // int dt / a = int da / (a^2 H(a)).
  auto f = [&](double a) { return 1.0 / (a * a * hubble(a)); };
  return integrate(f, a1, a2, 8);
}

double Cosmology::drift_factor(double a1, double a2) const {
  if (!(a2 >= a1) || a1 <= 0.0) {
    throw std::invalid_argument("need 0 < a1 <= a2");
  }
  auto f = [&](double a) { return 1.0 / (a * a * a * hubble(a)); };
  return integrate(f, a1, a2, 8);
}

double Cosmology::comoving_background_coefficient(double a) const {
  if (a <= 0.0) throw std::invalid_argument("scale factor must be > 0");
  return h0_ * h0_ * (0.5 * p_.omega_m - p_.omega_l * a * a * a);
}

std::vector<double> Cosmology::log_a_timesteps(double a_start, double a_end,
                                               std::size_t steps) const {
  if (!(a_end > a_start) || a_start <= 0.0) {
    throw std::invalid_argument("need 0 < a_start < a_end");
  }
  if (steps == 0) throw std::invalid_argument("steps must be > 0");
  std::vector<double> dts;
  dts.reserve(steps);
  const double ln_ratio = std::log(a_end / a_start);
  double t_prev = age(a_start);
  for (std::size_t k = 1; k <= steps; ++k) {
    const double a = a_start * std::exp(ln_ratio * static_cast<double>(k) /
                                        static_cast<double>(steps));
    const double t = age(a);
    dts.push_back(t - t_prev);
    t_prev = t;
  }
  return dts;
}

double Cosmology::mean_matter_density() const {
  return p_.omega_m * critical_density(p_.h);
}

double critical_density(double h) {
  const double h0 = h * hubble100_per_gyr();  // Gyr^-1
  return 3.0 * h0 * h0 / (8.0 * M_PI * gravitational_constant());
}

}  // namespace g5::model
