// Unit system for cosmological runs.
//
// The paper's simulation is quoted in (Mpc, solar masses, redshift); we
// adopt the internal system (length, mass, time) = (Mpc, 1e10 Msun, Gyr),
// in which the particle mass of the paper's run is 1.7 units and the 50 Mpc
// sphere is 50 units. Collisionless examples (Plummer etc.) instead use
// N-body units (G = M = -4E = 1) and never touch this header.
#pragma once

namespace g5::model {

namespace constants {

/// SI building blocks.
inline constexpr double kMeterPerMpc = 3.0856775814913673e22;
inline constexpr double kKgPerMsun = 1.98892e30;
inline constexpr double kSecondPerGyr = 3.15576e16;
inline constexpr double kGravitySI = 6.67430e-11;  // m^3 kg^-1 s^-2

}  // namespace constants

/// Gravitational constant in internal units (Mpc^3 / (1e10 Msun) / Gyr^2).
inline constexpr double gravitational_constant() {
  using namespace constants;
  return kGravitySI * (1e10 * kKgPerMsun) * kSecondPerGyr * kSecondPerGyr /
         (kMeterPerMpc * kMeterPerMpc * kMeterPerMpc);
}

/// 100 km/s/Mpc expressed in Gyr^-1 (multiply by h for H0).
inline constexpr double hubble100_per_gyr() {
  using namespace constants;
  return 100.0 * 1.0e3 / kMeterPerMpc * kSecondPerGyr;
}

/// Critical density for Hubble parameter h, in (1e10 Msun) / Mpc^3:
/// rho_c = 3 H0^2 / (8 pi G).
double critical_density(double h);

/// km/s expressed in Mpc/Gyr (for velocity conversions).
inline constexpr double kms_in_mpc_per_gyr() {
  using namespace constants;
  return 1.0e3 / kMeterPerMpc * kSecondPerGyr;
}

}  // namespace g5::model
