// Strong numeric-domain types for the GRAPE wire formats.
//
// The paper's 0.3 % force-error budget holds only while every value that
// crosses the host<->board boundary passes through the fixed-point / LNS
// codecs. These wrappers make that invariant structural: a raw LNS log
// word (LnsCode), a fixed-point position word (Fixed20) and an exact
// fixed-point coordinate difference (FixedDelta) are distinct,
// explicit-construction types exposing only the operations the hardware
// datapath actually has. Mixing domains — adding a log code to a
// position word, assigning a host double into a JWord field, reading a
// fixed word back as a double without the codec — does not compile
// (tests/compile_fail/ pins each case).
//
// All wrappers are zero-cost: layout-identical to their carrier integer
// (static_asserts below), trivially copyable, and every operation is a
// constexpr integer op, so the batched pipeline kernels keep the whole
// datapath in registers exactly as before the types existed.
//
// The constexpr "log-domain ALU" helpers at the bottom are the integer
// arithmetic of the LNS datapath (saturation, the shared power-unit
// table grid, the /2 rounding of the power units). math::LnsFormat is
// their only runtime caller; src/math/lns.cpp static_asserts the
// table-grid invariants on them at compile time.
#pragma once

#include <cstdint>
#include <type_traits>

namespace g5::math {

/// Raw bits of one LNS log word: round(log2|v| * 2^F) as a saturating
/// integer. Carries no arithmetic of its own — multiplication, squares
/// and the power units live on math::LnsFormat, which is also the only
/// double<->code conversion point. `from_bits`/`bits` exist for the
/// codec layer and tests; they are deliberately loud in application
/// code, where they show up in review as a codec bypass.
class LnsCode {
 public:
  constexpr LnsCode() noexcept = default;

  [[nodiscard]] static constexpr LnsCode from_bits(std::int32_t bits) noexcept {
    return LnsCode(bits);
  }
  [[nodiscard]] constexpr std::int32_t bits() const noexcept { return bits_; }
  /// Widened read for the log-domain ALU (adds of two codes need 33 bits).
  [[nodiscard]] constexpr std::int64_t wide() const noexcept { return bits_; }

  friend constexpr bool operator==(LnsCode, LnsCode) noexcept = default;

 private:
  explicit constexpr LnsCode(std::int32_t bits) noexcept : bits_(bits) {}
  std::int32_t bits_ = 0;
};

/// Exact fixed-point coordinate difference x_j - x_i: the one value class
/// the hardware subtractor produces. Decoding to a double goes through
/// FixedPointCodec::delta_to_double (the delta scales by the quantum
/// only — no window center offset).
class FixedDelta {
 public:
  constexpr FixedDelta() noexcept = default;

  [[nodiscard]] static constexpr FixedDelta from_code(
      std::int64_t code) noexcept {
    return FixedDelta(code);
  }
  [[nodiscard]] constexpr std::int64_t code() const noexcept { return code_; }
  [[nodiscard]] constexpr bool is_zero() const noexcept { return code_ == 0; }

  friend constexpr bool operator==(FixedDelta, FixedDelta) noexcept = default;

 private:
  explicit constexpr FixedDelta(std::int64_t code) noexcept : code_(code) {}
  std::int64_t code_ = 0;
};

/// One fixed-point position word on the codec's coordinate window (the
/// hardware's 20-bit x/y/z words; the emulator carries them in 64 bits so
/// the width stays a runtime knob — FixedPointCodec::bits()). The only
/// producers are FixedPointCodec::encode and `from_code` (codec layer /
/// tests); the only arithmetic is the exact subtraction the chip's
/// address unit performs.
class Fixed20 {
 public:
  constexpr Fixed20() noexcept = default;

  [[nodiscard]] static constexpr Fixed20 from_code(std::int64_t code) noexcept {
    return Fixed20(code);
  }
  [[nodiscard]] constexpr std::int64_t code() const noexcept { return code_; }

  /// Exact fixed-point subtraction (the pipeline's x_j - x_i).
  friend constexpr FixedDelta operator-(Fixed20 a, Fixed20 b) noexcept {
    return FixedDelta::from_code(a.code_ - b.code_);
  }
  friend constexpr bool operator==(Fixed20, Fixed20) noexcept = default;

 private:
  explicit constexpr Fixed20(std::int64_t code) noexcept : code_(code) {}
  std::int64_t code_ = 0;
};

/// The pipeline's i == j cut: all three coordinate differences are zero
/// (one OR-reduction, as the hardware's coincidence detector does it).
[[nodiscard]] constexpr bool coincident(FixedDelta dx, FixedDelta dy,
                                        FixedDelta dz) noexcept {
  return (dx.code() | dy.code() | dz.code()) == 0;
}

// Zero-cost: layout-identical to the carrier integers, trivial to copy,
// so JWord/IState arrays of them are the same bytes as before the types.
static_assert(sizeof(LnsCode) == sizeof(std::int32_t));
static_assert(alignof(LnsCode) == alignof(std::int32_t));
static_assert(std::is_trivially_copyable_v<LnsCode>);
static_assert(sizeof(Fixed20) == sizeof(std::int64_t));
static_assert(alignof(Fixed20) == alignof(std::int64_t));
static_assert(std::is_trivially_copyable_v<Fixed20>);
static_assert(sizeof(FixedDelta) == sizeof(std::int64_t));
static_assert(std::is_trivially_copyable_v<FixedDelta>);

// --------------------------------------------------------------------
// The constexpr log-domain ALU: integer arithmetic of the LNS datapath.
// LnsFormat is the runtime caller; lns.cpp static_asserts the PR-6
// table-grid invariants on these at compile time.
// --------------------------------------------------------------------

/// Largest / smallest representable log word for a format (exp_bits wide
/// integer part, frac_bits fractional bits).
[[nodiscard]] constexpr std::int32_t lns_max_log(int frac_bits,
                                                 int exp_bits) noexcept {
  // Widened shift: the widest format (frac 24, exp 16) tops out one code
  // below 2^39, clamped into the int32 carrier below.
  const std::int64_t exp_half = std::int64_t{1} << (exp_bits - 1);
  return static_cast<std::int32_t>((exp_half << frac_bits) - 1);
}
[[nodiscard]] constexpr std::int32_t lns_min_log(int frac_bits,
                                                 int exp_bits) noexcept {
  const std::int64_t exp_half = std::int64_t{1} << (exp_bits - 1);
  return static_cast<std::int32_t>(-(exp_half << frac_bits));
}

/// Saturate a widened log sum back into the format's word range.
[[nodiscard]] constexpr std::int32_t lns_saturate(
    std::int64_t v, std::int32_t min_log, std::int32_t max_log) noexcept {
  return v > max_log   ? max_log
         : v < min_log ? min_log
                       : static_cast<std::int32_t>(v);
}

/// The power units' shared lookup-table grid: drop mantissa resolution
/// below `table_bits` (round-to-nearest onto the coarser grid). Both
/// r^(-3/2) and r^(-1/2) read the same physical table, so both must see
/// exactly this grid (the PR-6 fix; static_asserts in lns.cpp).
[[nodiscard]] constexpr std::int64_t lns_table_grid(std::int64_t l,
                                                    int frac_bits,
                                                    int table_bits) noexcept {
  if (table_bits > 0 && table_bits < frac_bits) {
    const int drop = frac_bits - table_bits;
    const std::int64_t half = std::int64_t{1} << (drop - 1);
    l = ((l + half) >> drop) << drop;
  }
  return l;
}

/// num / 2, rounded half away from zero (the power units' /2 shift).
[[nodiscard]] constexpr std::int64_t lns_half_away(std::int64_t num) noexcept {
  return num >= 0 ? (num + 1) / 2 : -((-num + 1) / 2);
}

/// Integer part q of the exp2-table decode split logval = q * 2^F + r
/// (floor division) ...
[[nodiscard]] constexpr int lns_exp2_split_q(std::int32_t logval,
                                             int frac_bits) noexcept {
  return logval >> frac_bits;  // arithmetic shift: floor division
}
/// ... and the fraction-table index r, always in [0, 2^F) (asserted at
/// compile time in lns.cpp for the format range edges).
[[nodiscard]] constexpr std::int64_t lns_exp2_split_r(std::int32_t logval,
                                                      int frac_bits) noexcept {
  return static_cast<std::int64_t>(logval) -
         (static_cast<std::int64_t>(lns_exp2_split_q(logval, frac_bits))
          << frac_bits);
}

}  // namespace g5::math
