// 3-D Morton (Z-order) keys, 21 bits per dimension in a 64-bit word.
//
// The tree builder sorts particles by Morton key of their normalized
// position; consecutive key ranges then correspond to octree cells, which
// gives contiguous particle storage per cell — the property the modified
// tree algorithm exploits to ship whole groups to GRAPE with one DMA.
#pragma once

#include <cstdint>

#include "math/vec3.hpp"

namespace g5::math {

inline constexpr int kMortonBitsPerDim = 21;
inline constexpr std::uint32_t kMortonCoordMax =
    (std::uint32_t{1} << kMortonBitsPerDim) - 1;

/// Spread the low 21 bits of x so that bit i lands at position 3*i.
constexpr std::uint64_t morton_spread(std::uint32_t x) noexcept {
  std::uint64_t v = x & kMortonCoordMax;
  v = (v | (v << 32)) & 0x1f00000000ffffULL;
  v = (v | (v << 16)) & 0x1f0000ff0000ffULL;
  v = (v | (v << 8)) & 0x100f00f00f00f00fULL;
  v = (v | (v << 4)) & 0x10c30c30c30c30c3ULL;
  v = (v | (v << 2)) & 0x1249249249249249ULL;
  return v;
}

/// Inverse of morton_spread.
constexpr std::uint32_t morton_compact(std::uint64_t v) noexcept {
  v &= 0x1249249249249249ULL;
  v = (v ^ (v >> 2)) & 0x10c30c30c30c30c3ULL;
  v = (v ^ (v >> 4)) & 0x100f00f00f00f00fULL;
  v = (v ^ (v >> 8)) & 0x1f0000ff0000ffULL;
  v = (v ^ (v >> 16)) & 0x1f00000000ffffULL;
  v = (v ^ (v >> 32)) & kMortonCoordMax;
  return static_cast<std::uint32_t>(v);
}

/// Interleave three 21-bit coordinates: x gets bit positions 3i,
/// y gets 3i+1, z gets 3i+2.
constexpr std::uint64_t morton_encode(std::uint32_t x, std::uint32_t y,
                                      std::uint32_t z) noexcept {
  return morton_spread(x) | (morton_spread(y) << 1) | (morton_spread(z) << 2);
}

constexpr void morton_decode(std::uint64_t key, std::uint32_t& x,
                             std::uint32_t& y, std::uint32_t& z) noexcept {
  x = morton_compact(key);
  y = morton_compact(key >> 1);
  z = morton_compact(key >> 2);
}

/// Quantize a position inside the cube [lo, lo+size)^3 onto the Morton grid
/// and encode. Positions outside the cube clamp to the boundary cells.
inline std::uint64_t morton_key(const Vec3d& p, const Vec3d& lo,
                                double size) noexcept {
  const double scale = static_cast<double>(kMortonCoordMax) + 1.0;
  auto quant = [&](double v, double l) -> std::uint32_t {
    double t = (v - l) / size * scale;
    if (t < 0.0) t = 0.0;
    if (t > static_cast<double>(kMortonCoordMax))
      t = static_cast<double>(kMortonCoordMax);
    return static_cast<std::uint32_t>(t);
  };
  return morton_encode(quant(p.x, lo.x), quant(p.y, lo.y), quant(p.z, lo.z));
}

/// Octant (0..7) of a key at a given tree level; level 0 is the root split,
/// so the octant is taken from the top 3 used bits downward. Levels at or
/// beyond the key resolution return 0: the key carries no more digits, so
/// such a cell cannot be subdivided (a negative shift here used to be
/// undefined behavior).
constexpr unsigned morton_octant(std::uint64_t key, int level) noexcept {
  if (level >= kMortonBitsPerDim) return 0;
  const int shift = 3 * (kMortonBitsPerDim - 1 - level);
  return static_cast<unsigned>((key >> shift) & 0x7u);
}

}  // namespace g5::math
