// Deterministic pseudo-random number generation.
//
// All stochastic components (initial conditions, synthetic workloads, error
// sampling) draw from this generator so that every test, example and bench
// run is reproducible from a seed. xoshiro256++ (Blackman & Vigna) with a
// splitmix64 seeding sequence.
#pragma once

#include <cstdint>

#include "math/vec3.hpp"

namespace g5::math {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Uniform 64 random bits.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n) (n > 0; unbiased via rejection).
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal via Box-Muller (cached second deviate).
  double gaussian();

  /// Normal with given mean and standard deviation.
  double gaussian(double mean, double sigma) {
    return mean + sigma * gaussian();
  }

  /// Uniform point inside the unit ball.
  Vec3d in_unit_ball();

  /// Uniform point on the unit sphere surface.
  Vec3d on_unit_sphere();

  /// Uniform point in the axis-aligned box [lo, hi)^3.
  Vec3d in_box(const Vec3d& lo, const Vec3d& hi);

  /// Split off an independent stream (for per-thread / per-chunk use).
  Rng split();

 private:
  std::uint64_t s_[4] = {};
  double cached_gauss_ = 0.0;
  bool has_cached_gauss_ = false;
};

}  // namespace g5::math
