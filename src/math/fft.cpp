#include "math/fft.hpp"

#include <cmath>
#include <stdexcept>

namespace g5::math {

namespace {

void bit_reverse_permute(Complex* data, std::size_t n, std::size_t stride) {
  std::size_t j = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (i < j) std::swap(data[i * stride], data[j * stride]);
    // Add 1 to j in reversed bit order.
    std::size_t mask = n >> 1;
    while (mask != 0 && (j & mask)) {
      j ^= mask;
      mask >>= 1;
    }
    j |= mask;
  }
}

void fft_core(Complex* data, std::size_t n, std::size_t stride, int sign) {
  bit_reverse_permute(data, n, stride);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = static_cast<double>(sign) * 2.0 * M_PI /
                       static_cast<double>(len);
    const Complex wlen(std::cos(ang), std::sin(ang));
    for (std::size_t base = 0; base < n; base += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        Complex& a = data[(base + k) * stride];
        Complex& b = data[(base + k + len / 2) * stride];
        const Complex t = b * w;
        b = a - t;
        a += t;
        w *= wlen;
      }
    }
  }
}

}  // namespace

void fft_inplace(Complex* data, std::size_t n, int sign) {
  if (!is_pow2(n)) throw std::invalid_argument("fft length must be 2^k");
  if (sign != 1 && sign != -1) throw std::invalid_argument("sign must be +-1");
  fft_core(data, n, 1, sign);
}

void fft_inplace_strided(Complex* data, std::size_t n, std::size_t stride,
                         int sign) {
  if (!is_pow2(n)) throw std::invalid_argument("fft length must be 2^k");
  if (stride == 0) throw std::invalid_argument("stride must be >= 1");
  if (sign != 1 && sign != -1) throw std::invalid_argument("sign must be +-1");
  fft_core(data, n, stride, sign);
}

Grid3C::Grid3C(std::size_t n) : n_(n) {
  if (!is_pow2(n)) throw std::invalid_argument("grid size must be 2^k");
  data_.assign(n * n * n, Complex(0.0, 0.0));
}

void Grid3C::fill(Complex v) {
  for (auto& c : data_) c = v;
}

void Grid3C::transform_axis(int axis, int sign) {
  // Axis strides for layout (i * n + j) * n + k.
  const std::size_t n = n_;
  if (axis == 2) {
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j)
        fft_core(&data_[(i * n + j) * n], n, 1, sign);
  } else if (axis == 1) {
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t k = 0; k < n; ++k)
        fft_core(&data_[(i * n) * n + k], n, n, sign);
  } else {
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t k = 0; k < n; ++k)
        fft_core(&data_[j * n + k], n, n * n, sign);
  }
}

void Grid3C::forward() {
  for (int axis = 0; axis < 3; ++axis) transform_axis(axis, -1);
}

void Grid3C::inverse() {
  for (int axis = 0; axis < 3; ++axis) transform_axis(axis, +1);
  const double norm = 1.0 / static_cast<double>(n_ * n_ * n_);
  for (auto& c : data_) c *= norm;
}

}  // namespace g5::math
