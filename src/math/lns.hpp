// Logarithmic number system (LNS) arithmetic for the G5 pipeline emulation.
//
// GRAPE chips since GRAPE-3 perform the multiplicative core of the force
// pipeline (squares, the r^(-3/2) evaluation, the m * r^(-3/2) * dx
// products) in a short logarithmic format: a value is (sign, log2|v|) with
// the logarithm held as a fixed-point word with F fractional bits.
// Multiplication and powers are then integer adds/shifts of the log word;
// the only rounding happens when converting in and out of the format. The
// fraction width F is the single knob that sets the pairwise force accuracy
// (GRAPE-5's ~0.3 % rms corresponds to F = 7..8; see grape/pipeline.cpp).
//
// LnsFormat carries F plus the exponent clamp; LnsValue is a POD word.
#pragma once

#include <cstdint>
#include <stdexcept>

namespace g5::math {

/// One LNS word: sign in {-1,+1}, `logval` = round(log2|v| * 2^F) as a
/// saturating integer, and an explicit zero flag (hardware uses a zero tag
/// bit; log of zero is not representable).
struct LnsValue {
  std::int32_t logval = 0;
  std::int8_t sign = 1;
  bool zero = true;

  [[nodiscard]] static LnsValue make_zero() noexcept { return LnsValue{}; }
};

class LnsFormat {
 public:
  /// `frac_bits` F: fractional bits of the log word (accuracy knob).
  /// `exp_bits`: width of the integer part of the log word; log2|v| is
  /// clamped to [-2^(exp_bits-1), 2^(exp_bits-1)) before scaling. The
  /// defaults cover the dynamic range the pipeline needs with margin.
  explicit LnsFormat(int frac_bits, int exp_bits = 12);

  [[nodiscard]] int frac_bits() const noexcept { return frac_bits_; }
  [[nodiscard]] int exp_bits() const noexcept { return exp_bits_; }

  /// Relative spacing of representable magnitudes: 2^(2^-F) - 1 ~ ln2 * 2^-F.
  [[nodiscard]] double relative_step() const noexcept { return rel_step_; }

  /// Encode a double (round-to-nearest in log space, exponent saturating).
  [[nodiscard]] LnsValue from_double(double v) const noexcept;

  /// Decode back to double.
  [[nodiscard]] double to_double(const LnsValue& v) const noexcept;

  /// Round-trip through the format (the value the datapath sees).
  [[nodiscard]] double quantize(double v) const noexcept {
    return to_double(from_double(v));
  }

  /// Exact in-format product: log words add (saturating), signs multiply.
  [[nodiscard]] LnsValue mul(const LnsValue& a, const LnsValue& b) const noexcept;

  /// Exact in-format square: doubles the log word; result sign is +.
  [[nodiscard]] LnsValue square(const LnsValue& a) const noexcept;

  /// x^(-3/2) for x > 0: logval -> -(3 * logval) / 2 with round-to-nearest.
  /// This models the unit the hardware implements with a lookup table; an
  /// optional coarse table index (see `set_table_index_bits`) reproduces
  /// table-resolution effects when the table is narrower than F.
  [[nodiscard]] LnsValue pow_neg_3_2(const LnsValue& a) const noexcept;

  /// x^(-1/2) for x > 0 (the potential unit): logval -> -logval / 2.
  [[nodiscard]] LnsValue pow_neg_1_2(const LnsValue& a) const noexcept;

  /// Restrict the r^(-3/2) unit's mantissa resolution to `bits` fractional
  /// bits (bits <= F). 0 restores full-F behaviour. Models a narrower
  /// hardware lookup table (ablation knob for bench_e3_accuracy).
  void set_table_index_bits(int bits);
  [[nodiscard]] int table_index_bits() const noexcept { return table_bits_; }

 private:
  int frac_bits_;
  int exp_bits_;
  int table_bits_ = 0;  // 0 = full resolution
  std::int32_t max_log_ = 0;
  std::int32_t min_log_ = 0;
  double rel_step_ = 0.0;

  [[nodiscard]] std::int32_t clamp_log(double l) const noexcept;
};

}  // namespace g5::math
