// Logarithmic number system (LNS) arithmetic for the G5 pipeline emulation.
//
// GRAPE chips since GRAPE-3 perform the multiplicative core of the force
// pipeline (squares, the r^(-3/2) evaluation, the m * r^(-3/2) * dx
// products) in a short logarithmic format: a value is (sign, log2|v|) with
// the logarithm held as a fixed-point word with F fractional bits.
// Multiplication and powers are then integer adds/shifts of the log word;
// the only rounding happens when converting in and out of the format. The
// fraction width F is the single knob that sets the pairwise force accuracy
// (GRAPE-5's ~0.3 % rms corresponds to F = 7..8; see grape/pipeline.cpp).
//
// Range-edge semantics mirror the hardware: the exponent saturates at the
// top of the representable range, and magnitudes below the bottom code
// underflow to the tagged zero (flush-to-zero), as an LNS datapath's
// underflow detection does.
//
// LnsFormat carries F plus the exponent clamp; LnsValue is a POD word
// whose log field is the strong math::LnsCode (domain.hpp) — raw code
// bits cannot mix with fixed-point words or host doubles without going
// through this class, which is the only double<->code conversion point.
// The arithmetic is defined inline here (and decode goes through a
// per-format exp2 fraction table) so the batched pipeline kernel can keep
// the whole datapath in registers; the table split is bitwise-identical
// to std::exp2 on the full logval domain (tests/math_lns_test.cpp pins
// it), and the integer ops themselves are the constexpr log-domain ALU of
// domain.hpp (lns.cpp static_asserts their invariants).
#pragma once

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "math/domain.hpp"

namespace g5::math {

/// One LNS word: sign in {-1,+1}, `logval` = round(log2|v| * 2^F) as a
/// saturating strong code word, and an explicit zero flag (hardware uses
/// a zero tag bit; log of zero is not representable).
struct LnsValue {
  LnsCode logval{};
  std::int8_t sign = 1;
  bool zero = true;

  [[nodiscard]] static LnsValue make_zero() noexcept { return LnsValue{}; }
};

class LnsFormat {
 public:
  /// `frac_bits` F: fractional bits of the log word (accuracy knob).
  /// `exp_bits`: width of the integer part of the log word; log2|v| is
  /// clamped to [-2^(exp_bits-1), 2^(exp_bits-1)) before scaling. The
  /// defaults cover the dynamic range the pipeline needs with margin.
  explicit LnsFormat(int frac_bits, int exp_bits = 12);

  [[nodiscard]] int frac_bits() const noexcept { return frac_bits_; }
  [[nodiscard]] int exp_bits() const noexcept { return exp_bits_; }

  /// Relative spacing of representable magnitudes: 2^(2^-F) - 1 ~ ln2 * 2^-F.
  [[nodiscard]] double relative_step() const noexcept { return rel_step_; }

  /// Encode a double: round-to-nearest in log space; the exponent
  /// saturates at the top of the range and *flushes to zero* below the
  /// bottom code (LNS hardware underflow). With to_double, the only
  /// double<->code conversion in the codebase.
  [[nodiscard]] LnsValue from_double(double v) const noexcept {
    if (v == 0.0 || !std::isfinite(v)) return LnsValue::make_zero();
    const double scaled =
        std::nearbyint(std::ldexp(std::log2(std::fabs(v)), frac_bits_));
    // Strictly below the bottom code the underflow unit tags the word
    // zero; at the bottom code the value is representable and kept.
    if (scaled < static_cast<double>(min_log_)) return LnsValue::make_zero();
    LnsValue out;
    out.zero = false;
    out.sign = v < 0.0 ? std::int8_t{-1} : std::int8_t{1};
    out.logval = LnsCode::from_bits(
        scaled >= static_cast<double>(max_log_)
            ? max_log_
            : static_cast<std::int32_t>(scaled));
    return out;
  }

  /// Decode back to double.
  [[nodiscard]] double to_double(const LnsValue& v) const noexcept {
    if (v.zero) return 0.0;
    const double s = static_cast<double>(v.sign);
    if (!exp2_table_.empty()) {
      // Split logval = q * 2^F + r, r in [0, 2^F): scaling by 2^q is
      // exact, so ldexp(exp2(r / 2^F), q) == exp2(logval / 2^F) bitwise
      // whenever the result is a normal double. Subnormal results round
      // differently under the split (and huge q overflows), so fall back
      // outside the q range that can produce a normal.
      const int q = lns_exp2_split_q(v.logval.bits(), frac_bits_);
      if (q >= -1021 && q <= 1022) {
        const auto r = static_cast<std::size_t>(
            lns_exp2_split_r(v.logval.bits(), frac_bits_));
        return s * std::ldexp(exp2_table_[r], q);
      }
    }
    const double l =
        std::ldexp(static_cast<double>(v.logval.bits()), -frac_bits_);
    return s * std::exp2(l);
  }

  /// Round-trip through the format (the value the datapath sees).
  [[nodiscard]] double quantize(double v) const noexcept {
    return to_double(from_double(v));
  }

  /// Exact in-format product: log words add (saturating), signs multiply.
  [[nodiscard]] LnsValue mul(const LnsValue& a,
                             const LnsValue& b) const noexcept {
    if (a.zero || b.zero) return LnsValue::make_zero();
    LnsValue out;
    out.zero = false;
    out.sign = static_cast<std::int8_t>(a.sign * b.sign);
    out.logval = LnsCode::from_bits(
        lns_saturate(a.logval.wide() + b.logval.wide(), min_log_, max_log_));
    return out;
  }

  /// Exact in-format square: doubles the log word; result sign is +.
  [[nodiscard]] LnsValue square(const LnsValue& a) const noexcept {
    if (a.zero) return LnsValue::make_zero();
    LnsValue out;
    out.zero = false;
    out.sign = 1;
    out.logval = LnsCode::from_bits(
        lns_saturate(2 * a.logval.wide(), min_log_, max_log_));
    return out;
  }

  /// x^(-3/2) for x > 0: logval -> -(3 * logval) / 2 with round-to-nearest.
  /// This models the unit the hardware implements with a lookup table; an
  /// optional coarse table index (see `set_table_index_bits`) reproduces
  /// table-resolution effects when the table is narrower than F.
  [[nodiscard]] LnsValue pow_neg_3_2(const LnsValue& a) const noexcept {
    if (a.zero) {
      // r^-3/2 of zero would be infinite; saturate at the top of the range.
      return saturated_top();
    }
    // logval(out) = -(3/2) * logval(in), round half away from zero.
    const std::int64_t num =
        -3 * lns_table_grid(a.logval.wide(), frac_bits_, table_bits_);
    return half_of(num);
  }

  /// x^(-1/2) for x > 0 (the potential unit): logval -> -logval / 2. The
  /// same physical lookup table feeds both power units, so the potential
  /// path sees the identical table-index granularity as the force path.
  [[nodiscard]] LnsValue pow_neg_1_2(const LnsValue& a) const noexcept {
    if (a.zero) {
      return saturated_top();
    }
    const std::int64_t num =
        -lns_table_grid(a.logval.wide(), frac_bits_, table_bits_);
    return half_of(num);
  }

  /// Restrict the power units' mantissa resolution to `bits` fractional
  /// bits (bits <= F). 0 restores full-F behaviour. Models a narrower
  /// hardware lookup table (ablation knob for bench_e3_accuracy).
  void set_table_index_bits(int bits);
  [[nodiscard]] int table_index_bits() const noexcept { return table_bits_; }

 private:
  int frac_bits_;
  int exp_bits_;
  int table_bits_ = 0;  // 0 = full resolution
  std::int32_t max_log_ = 0;
  std::int32_t min_log_ = 0;
  double rel_step_ = 0.0;
  /// exp2_table_[r] = exp2(r / 2^F) for r in [0, 2^F); empty when F is too
  /// wide to table (decode then falls back to std::exp2 throughout).
  std::vector<double> exp2_table_;

  /// The positive word saturated at the top of the range (power units'
  /// response to a zero input).
  [[nodiscard]] LnsValue saturated_top() const noexcept {
    LnsValue out;
    out.zero = false;
    out.sign = 1;
    out.logval = LnsCode::from_bits(max_log_);
    return out;
  }

  /// num / 2 rounded half away from zero, saturated into a log word.
  [[nodiscard]] LnsValue half_of(std::int64_t num) const noexcept {
    LnsValue out;
    out.zero = false;
    out.sign = 1;
    out.logval = LnsCode::from_bits(
        lns_saturate(lns_half_away(num), min_log_, max_log_));
    return out;
  }
};

}  // namespace g5::math
