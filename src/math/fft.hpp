// In-place complex FFT (iterative radix-2) and a 3-D wrapper.
//
// Used by the initial-conditions substrate (src/ic) to synthesize Gaussian
// random density and displacement fields on a grid — the role the COSMICS
// package played for the paper's run. Sizes are powers of two; typical IC
// grids here are 32^3..128^3, well within a single in-memory transform.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace g5::math {

using Complex = std::complex<double>;

/// True if n is a power of two (n >= 1).
constexpr bool is_pow2(std::size_t n) noexcept {
  return n != 0 && (n & (n - 1)) == 0;
}

/// In-place FFT of length-n (power of two) data. sign = -1 gives the
/// forward transform  X_k = sum_j x_j e^{-2 pi i jk/n};  sign = +1 the
/// unnormalized inverse. Caller divides by n after the inverse.
void fft_inplace(Complex* data, std::size_t n, int sign);

/// Strided variant used by the 3-D transform (stride in elements).
void fft_inplace_strided(Complex* data, std::size_t n, std::size_t stride,
                         int sign);

/// Dense n^3 complex grid with FFTs along each axis.
class Grid3C {
 public:
  explicit Grid3C(std::size_t n);

  [[nodiscard]] std::size_t n() const noexcept { return n_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }

  [[nodiscard]] Complex& at(std::size_t i, std::size_t j, std::size_t k) {
    return data_[(i * n_ + j) * n_ + k];
  }
  [[nodiscard]] const Complex& at(std::size_t i, std::size_t j,
                                  std::size_t k) const {
    return data_[(i * n_ + j) * n_ + k];
  }

  [[nodiscard]] Complex* data() noexcept { return data_.data(); }
  [[nodiscard]] const Complex* data() const noexcept { return data_.data(); }

  /// Forward 3-D FFT (sign = -1 on every axis), unnormalized.
  void forward();

  /// Inverse 3-D FFT including the 1/n^3 normalization.
  void inverse();

  void fill(Complex v);

 private:
  std::size_t n_;
  std::vector<Complex> data_;

  void transform_axis(int axis, int sign);
};

/// Map a grid index to the signed frequency index (0..n-1 -> -n/2..n/2-1
/// convention with 0 first): i <= n/2 ? i : i - n.
constexpr long freq_index(std::size_t i, std::size_t n) noexcept {
  return i <= n / 2 ? static_cast<long>(i)
                    : static_cast<long>(i) - static_cast<long>(n);
}

}  // namespace g5::math
