// Fixed-point codecs used by the GRAPE-5 pipeline emulation.
//
// The real G5 chip receives particle positions as fixed-point words scaled
// to a coordinate range set by the host (`g5_set_range`), computes the
// coordinate differences exactly in fixed point, and accumulates forces in
// wide fixed-point registers. These helpers reproduce that arithmetic with
// explicit, testable quantization semantics.
//
// The codec speaks the strong domain types of math/domain.hpp: encode
// produces a math::Fixed20 position word, subtraction of two words yields
// a math::FixedDelta, and decode/delta_to_double are the only paths back
// to host doubles. Raw integer codes exist only inside this class.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "math/domain.hpp"

namespace g5::math {

/// Maps doubles in [lo, hi) onto a signed integer grid of `bits` bits
/// (two's complement, so the representable codes are [-2^(bits-1),
/// 2^(bits-1)-1]). Values outside the range saturate, as the hardware does.
class FixedPointCodec {
 public:
  FixedPointCodec(double lo, double hi, int bits) : bits_(bits) {
    if (!(hi > lo)) throw std::invalid_argument("fixed-point range empty");
    if (bits < 2 || bits > 62) throw std::invalid_argument("bits out of range");
    center_ = 0.5 * (lo + hi);
    // One code step. The full span maps to 2^bits codes.
    quantum_ = (hi - lo) / std::ldexp(1.0, bits);
    max_code_ = (std::int64_t{1} << (bits - 1)) - 1;
    min_code_ = -(std::int64_t{1} << (bits - 1));
  }

  /// Quantize: round-to-nearest onto the grid, saturating at the rails.
  [[nodiscard]] Fixed20 encode(double x) const noexcept {
    const double scaled = (x - center_) / quantum_;
    const double rounded = std::nearbyint(scaled);
    if (rounded >= static_cast<double>(max_code_)) {
      return Fixed20::from_code(max_code_);
    }
    if (rounded <= static_cast<double>(min_code_)) {
      return Fixed20::from_code(min_code_);
    }
    return Fixed20::from_code(static_cast<std::int64_t>(rounded));
  }

  [[nodiscard]] double decode(Fixed20 word) const noexcept {
    return center_ + static_cast<double>(word.code()) * quantum_;
  }

  /// Decode an exact fixed-point coordinate difference: the delta scales
  /// by the quantum only (the window centers cancel in the subtraction).
  [[nodiscard]] double delta_to_double(FixedDelta d) const noexcept {
    return static_cast<double>(d.code()) * quantum_;
  }

  /// Round-trip a double through the grid (the value the pipeline sees).
  [[nodiscard]] double quantize(double x) const noexcept {
    return decode(encode(x));
  }

  [[nodiscard]] double quantum() const noexcept { return quantum_; }
  [[nodiscard]] int bits() const noexcept { return bits_; }
  [[nodiscard]] double lo() const noexcept {
    return decode(Fixed20::from_code(min_code_));
  }
  [[nodiscard]] double hi() const noexcept {
    return decode(Fixed20::from_code(max_code_));
  }

 private:
  int bits_;
  double center_ = 0.0;
  double quantum_ = 1.0;
  std::int64_t max_code_ = 0;
  std::int64_t min_code_ = 0;
};

/// Wide fixed-point accumulator: the force sum is accumulated as an integer
/// multiple of a fixed quantum, exactly as in the hardware's accumulator
/// registers. Overflow saturates (and is observable for diagnostics).
class FixedAccumulator {
 public:
  explicit FixedAccumulator(double quantum) : quantum_(quantum) {
    if (!(quantum > 0.0)) throw std::invalid_argument("quantum must be > 0");
  }

  void add(double x) noexcept {
    const double scaled = x / quantum_;
    // Saturate rather than wrap on overflow.
    constexpr double kMax = 9.0e18;  // < 2^63
    double next = static_cast<double>(acc_) + std::nearbyint(scaled);
    if (next > kMax) {
      next = kMax;
      saturated_ = true;
    } else if (next < -kMax) {
      next = -kMax;
      saturated_ = true;
    }
    acc_ = static_cast<std::int64_t>(next);
  }

  [[nodiscard]] double value() const noexcept {
    return static_cast<double>(acc_) * quantum_;
  }
  /// The raw accumulator register: an integer count of the quantum.
  /// Partial sums from different pipelines are exact in this domain
  /// (integer addition is associative), which is what lets a multi-board
  /// reduction stay bitwise-identical to a single accumulator stream —
  /// see grape/board_set.hpp.
  [[nodiscard]] std::int64_t raw() const noexcept { return acc_; }
  [[nodiscard]] bool saturated() const noexcept { return saturated_; }
  [[nodiscard]] double quantum() const noexcept { return quantum_; }

  void reset() noexcept {
    acc_ = 0;
    saturated_ = false;
  }

 private:
  double quantum_;
  std::int64_t acc_ = 0;
  bool saturated_ = false;
};

}  // namespace g5::math
