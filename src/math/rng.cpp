#include "math/rng.hpp"

#include <cmath>

namespace g5::math {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // Avoid the all-zero state (cannot happen with splitmix64, but be safe).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
  has_cached_gauss_ = false;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  // Lemire-style rejection for unbiased bounded integers.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

double Rng::gaussian() {
  if (has_cached_gauss_) {
    has_cached_gauss_ = false;
    return cached_gauss_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gauss_ = r * std::sin(theta);
  has_cached_gauss_ = true;
  return r * std::cos(theta);
}

Vec3d Rng::in_unit_ball() {
  for (;;) {
    const Vec3d p{uniform(-1.0, 1.0), uniform(-1.0, 1.0), uniform(-1.0, 1.0)};
    if (p.norm2() < 1.0) return p;
  }
}

Vec3d Rng::on_unit_sphere() {
  // Marsaglia's method.
  for (;;) {
    const double a = uniform(-1.0, 1.0);
    const double b = uniform(-1.0, 1.0);
    const double s = a * a + b * b;
    if (s >= 1.0) continue;
    const double t = 2.0 * std::sqrt(1.0 - s);
    return {a * t, b * t, 1.0 - 2.0 * s};
  }
}

Vec3d Rng::in_box(const Vec3d& lo, const Vec3d& hi) {
  return {uniform(lo.x, hi.x), uniform(lo.y, hi.y), uniform(lo.z, hi.z)};
}

Rng Rng::split() {
  Rng child(0);
  // Derive the child state from fresh draws so streams do not overlap in
  // practice (xoshiro jump() would be exact; this is sufficient here).
  for (auto& s : child.s_) s = next_u64();
  if ((child.s_[0] | child.s_[1] | child.s_[2] | child.s_[3]) == 0)
    child.s_[0] = 1;
  return child;
}

}  // namespace g5::math
