// Small fixed-size 3-vector used throughout the library.
#pragma once

#include <cmath>
#include <cstddef>
#include <ostream>

namespace g5::math {

template <typename T>
struct Vec3 {
  T x{}, y{}, z{};

  constexpr Vec3() = default;
  constexpr Vec3(T x_, T y_, T z_) : x(x_), y(y_), z(z_) {}
  constexpr explicit Vec3(T s) : x(s), y(s), z(s) {}

  constexpr T& operator[](std::size_t i) { return i == 0 ? x : (i == 1 ? y : z); }
  constexpr const T& operator[](std::size_t i) const {
    return i == 0 ? x : (i == 1 ? y : z);
  }

  constexpr Vec3& operator+=(const Vec3& o) {
    x += o.x; y += o.y; z += o.z;
    return *this;
  }
  constexpr Vec3& operator-=(const Vec3& o) {
    x -= o.x; y -= o.y; z -= o.z;
    return *this;
  }
  constexpr Vec3& operator*=(T s) {
    x *= s; y *= s; z *= s;
    return *this;
  }
  constexpr Vec3& operator/=(T s) {
    x /= s; y /= s; z /= s;
    return *this;
  }

  friend constexpr Vec3 operator+(Vec3 a, const Vec3& b) { return a += b; }
  friend constexpr Vec3 operator-(Vec3 a, const Vec3& b) { return a -= b; }
  friend constexpr Vec3 operator*(Vec3 a, T s) { return a *= s; }
  friend constexpr Vec3 operator*(T s, Vec3 a) { return a *= s; }
  friend constexpr Vec3 operator/(Vec3 a, T s) { return a /= s; }
  friend constexpr Vec3 operator-(const Vec3& a) { return {-a.x, -a.y, -a.z}; }

  friend constexpr bool operator==(const Vec3&, const Vec3&) = default;

  [[nodiscard]] constexpr T dot(const Vec3& o) const {
    return x * o.x + y * o.y + z * o.z;
  }
  [[nodiscard]] constexpr Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  [[nodiscard]] constexpr T norm2() const { return dot(*this); }
  [[nodiscard]] T norm() const { return std::sqrt(norm2()); }

  [[nodiscard]] constexpr T min_component() const {
    return x < y ? (x < z ? x : z) : (y < z ? y : z);
  }
  [[nodiscard]] constexpr T max_component() const {
    return x > y ? (x > z ? x : z) : (y > z ? y : z);
  }

  friend std::ostream& operator<<(std::ostream& os, const Vec3& v) {
    return os << '(' << v.x << ", " << v.y << ", " << v.z << ')';
  }
};

using Vec3d = Vec3<double>;
using Vec3f = Vec3<float>;
using Vec3i = Vec3<int>;

/// Component-wise min / max (used for bounding boxes).
template <typename T>
constexpr Vec3<T> cwise_min(const Vec3<T>& a, const Vec3<T>& b) {
  return {a.x < b.x ? a.x : b.x, a.y < b.y ? a.y : b.y, a.z < b.z ? a.z : b.z};
}
template <typename T>
constexpr Vec3<T> cwise_max(const Vec3<T>& a, const Vec3<T>& b) {
  return {a.x > b.x ? a.x : b.x, a.y > b.y ? a.y : b.y, a.z > b.z ? a.z : b.z};
}

}  // namespace g5::math
