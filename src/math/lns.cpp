#include "math/lns.hpp"

#include <cmath>

namespace g5::math {

namespace {
/// Widest F we build the exp2 fraction table for: 2^16 doubles = 512 KiB
/// per format. Beyond that (sweep-only territory) decode falls back to
/// std::exp2, which is what the table path is bit-identical to anyway.
constexpr int kMaxTableFracBits = 16;

// ------------------------------------------------------------------
// Compile-time pins of the PR-6 table-grid invariants, on the constexpr
// log-domain ALU the runtime format calls (math/domain.hpp). These used
// to live only in tests/math_lns_test.cpp; a regression now fails the
// build of this TU instead of a test run.
// ------------------------------------------------------------------

/// Log word of pow_neg_3_2 / pow_neg_1_2 before saturation — exactly the
/// expressions LnsFormat::pow_neg_* evaluate.
constexpr std::int64_t pow32_log(std::int64_t l, int f, int t) {
  return lns_half_away(-3 * lns_table_grid(l, f, t));
}
constexpr std::int64_t pow12_log(std::int64_t l, int f, int t) {
  return lns_half_away(-lns_table_grid(l, f, t));
}

// One physical lookup table feeds both power units: inputs that collapse
// onto the same table grid point must produce identical outputs from
// *each* unit (F=10, 4 table bits: grid step 64; 1000 and 1020 both
// round to 1024 — the exact fixture the runtime test uses).
static_assert(lns_table_grid(1000, 10, 4) == 1024);
static_assert(lns_table_grid(1020, 10, 4) == 1024);
static_assert(pow32_log(1000, 10, 4) == pow32_log(1020, 10, 4));
static_assert(pow12_log(1000, 10, 4) == pow12_log(1020, 10, 4));
// table_bits = 0 (full resolution) and table_bits = F are both identity
// grids — the ablation knob's rails.
static_assert(lns_table_grid(12345, 8, 0) == 12345);
static_assert(lns_table_grid(12345, 8, 8) == 12345);
// Grid rounding is to-nearest (ties toward +inf, the adder's bias) on
// both log half-planes: -1000 is 24 counts from -1024, 40 from -960.
static_assert(lns_table_grid(-1000, 10, 4) == -1024);
static_assert(lns_table_grid(-992, 10, 4) == -960);  // the tie rounds up
static_assert(lns_half_away(-3) == -2 && lns_half_away(3) == 2);

// exp2-table decode split: the fraction index r = logval - (q << F) must
// stay inside the table for every representable word, including both
// range edges (production format F=8/exp 12, and the widest tabled
// format F=16/exp 16).
constexpr bool exp2_split_in_range(int f, int e) {
  const std::int32_t lo = lns_min_log(f, e);
  const std::int32_t hi = lns_max_log(f, e);
  const std::int64_t entries = std::int64_t{1} << f;
  for (const std::int32_t lv : {lo, lo + 1, std::int32_t{-1}, std::int32_t{0},
                                std::int32_t{1}, hi - 1, hi}) {
    const std::int64_t r = lns_exp2_split_r(lv, f);
    if (r < 0 || r >= entries) return false;
    // The split must reassemble exactly: logval == q * 2^F + r.
    if ((static_cast<std::int64_t>(lns_exp2_split_q(lv, f)) << f) + r != lv) {
      return false;
    }
  }
  return true;
}
static_assert(exp2_split_in_range(8, 12));
static_assert(exp2_split_in_range(16, 16));
static_assert(exp2_split_in_range(5, 8));  // the GRAPE-3 ablation format

// Format word range: the production format's rails, as the hardware
// tables assume them.
static_assert(lns_max_log(8, 12) == (1 << 19) - 1);
static_assert(lns_min_log(8, 12) == -(1 << 19));
static_assert(lns_saturate(std::int64_t{1} << 40, lns_min_log(8, 12),
                           lns_max_log(8, 12)) == lns_max_log(8, 12));
static_assert(lns_saturate(-(std::int64_t{1} << 40), lns_min_log(8, 12),
                           lns_max_log(8, 12)) == lns_min_log(8, 12));
}  // namespace

LnsFormat::LnsFormat(int frac_bits, int exp_bits)
    : frac_bits_(frac_bits), exp_bits_(exp_bits) {
  if (frac_bits < 1 || frac_bits > 24) {
    throw std::invalid_argument("LNS frac_bits out of range [1,24]");
  }
  if (exp_bits < 4 || exp_bits > 16) {
    throw std::invalid_argument("LNS exp_bits out of range [4,16]");
  }
  max_log_ = lns_max_log(frac_bits, exp_bits);
  min_log_ = lns_min_log(frac_bits, exp_bits);
  rel_step_ = std::exp2(std::ldexp(1.0, -frac_bits)) - 1.0;
  if (frac_bits <= kMaxTableFracBits) {
    const std::size_t entries = std::size_t{1} << frac_bits;
    exp2_table_.resize(entries);
    for (std::size_t r = 0; r < entries; ++r) {
      exp2_table_[r] =
          std::exp2(std::ldexp(static_cast<double>(r), -frac_bits));
    }
  }
}

void LnsFormat::set_table_index_bits(int bits) {
  if (bits < 0 || bits > frac_bits_) {
    throw std::invalid_argument("table_index_bits must be in [0, frac_bits]");
  }
  table_bits_ = bits;
}

}  // namespace g5::math
