#include "math/lns.hpp"

#include <cmath>

namespace g5::math {

LnsFormat::LnsFormat(int frac_bits, int exp_bits)
    : frac_bits_(frac_bits), exp_bits_(exp_bits) {
  if (frac_bits < 1 || frac_bits > 24) {
    throw std::invalid_argument("LNS frac_bits out of range [1,24]");
  }
  if (exp_bits < 4 || exp_bits > 16) {
    throw std::invalid_argument("LNS exp_bits out of range [4,16]");
  }
  const std::int32_t exp_half = std::int32_t{1} << (exp_bits - 1);
  max_log_ = (exp_half << frac_bits) - 1;
  min_log_ = -(exp_half << frac_bits);
  rel_step_ = std::exp2(std::ldexp(1.0, -frac_bits)) - 1.0;
}

std::int32_t LnsFormat::clamp_log(double l) const noexcept {
  const double scaled = std::nearbyint(std::ldexp(l, frac_bits_));
  if (scaled >= static_cast<double>(max_log_)) return max_log_;
  if (scaled <= static_cast<double>(min_log_)) return min_log_;
  return static_cast<std::int32_t>(scaled);
}

LnsValue LnsFormat::from_double(double v) const noexcept {
  LnsValue out;
  if (v == 0.0 || !std::isfinite(v)) return LnsValue::make_zero();
  out.zero = false;
  out.sign = v < 0.0 ? -1 : 1;
  out.logval = clamp_log(std::log2(std::fabs(v)));
  return out;
}

double LnsFormat::to_double(const LnsValue& v) const noexcept {
  if (v.zero) return 0.0;
  const double l = std::ldexp(static_cast<double>(v.logval), -frac_bits_);
  return static_cast<double>(v.sign) * std::exp2(l);
}

LnsValue LnsFormat::mul(const LnsValue& a, const LnsValue& b) const noexcept {
  if (a.zero || b.zero) return LnsValue::make_zero();
  LnsValue out;
  out.zero = false;
  out.sign = static_cast<std::int8_t>(a.sign * b.sign);
  const std::int64_t sum =
      static_cast<std::int64_t>(a.logval) + static_cast<std::int64_t>(b.logval);
  out.logval = sum > max_log_   ? max_log_
               : sum < min_log_ ? min_log_
                                : static_cast<std::int32_t>(sum);
  return out;
}

LnsValue LnsFormat::square(const LnsValue& a) const noexcept {
  if (a.zero) return LnsValue::make_zero();
  LnsValue out;
  out.zero = false;
  out.sign = 1;
  const std::int64_t twice = 2 * static_cast<std::int64_t>(a.logval);
  out.logval = twice > max_log_   ? max_log_
               : twice < min_log_ ? min_log_
                                  : static_cast<std::int32_t>(twice);
  return out;
}

LnsValue LnsFormat::pow_neg_3_2(const LnsValue& a) const noexcept {
  if (a.zero) {
    // r^-3/2 of zero would be infinite; saturate at the top of the range.
    LnsValue out;
    out.zero = false;
    out.sign = 1;
    out.logval = max_log_;
    return out;
  }
  std::int64_t l = a.logval;
  if (table_bits_ > 0 && table_bits_ < frac_bits_) {
    // Coarse lookup table: drop mantissa resolution below table_bits_
    // (round-to-nearest on the coarser grid), then compute on that grid.
    const int drop = frac_bits_ - table_bits_;
    const std::int64_t half = std::int64_t{1} << (drop - 1);
    l = ((l + half) >> drop) << drop;
  }
  // logval(out) = -(3/2) * logval(in), round half away from zero.
  const std::int64_t num = -3 * l;
  const std::int64_t rounded = num >= 0 ? (num + 1) / 2 : -((-num + 1) / 2);
  LnsValue out;
  out.zero = false;
  out.sign = 1;
  out.logval = rounded > max_log_   ? max_log_
               : rounded < min_log_ ? min_log_
                                    : static_cast<std::int32_t>(rounded);
  return out;
}

LnsValue LnsFormat::pow_neg_1_2(const LnsValue& a) const noexcept {
  if (a.zero) {
    LnsValue out;
    out.zero = false;
    out.sign = 1;
    out.logval = max_log_;
    return out;
  }
  const std::int64_t num = -static_cast<std::int64_t>(a.logval);
  const std::int64_t rounded = num >= 0 ? (num + 1) / 2 : -((-num + 1) / 2);
  LnsValue out;
  out.zero = false;
  out.sign = 1;
  out.logval = rounded > max_log_   ? max_log_
               : rounded < min_log_ ? min_log_
                                    : static_cast<std::int32_t>(rounded);
  return out;
}

void LnsFormat::set_table_index_bits(int bits) {
  if (bits < 0 || bits > frac_bits_) {
    throw std::invalid_argument("table_index_bits must be in [0, frac_bits]");
  }
  table_bits_ = bits;
}

}  // namespace g5::math
