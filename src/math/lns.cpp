#include "math/lns.hpp"

#include <cmath>

namespace g5::math {

namespace {
/// Widest F we build the exp2 fraction table for: 2^16 doubles = 512 KiB
/// per format. Beyond that (sweep-only territory) decode falls back to
/// std::exp2, which is what the table path is bit-identical to anyway.
constexpr int kMaxTableFracBits = 16;
}  // namespace

LnsFormat::LnsFormat(int frac_bits, int exp_bits)
    : frac_bits_(frac_bits), exp_bits_(exp_bits) {
  if (frac_bits < 1 || frac_bits > 24) {
    throw std::invalid_argument("LNS frac_bits out of range [1,24]");
  }
  if (exp_bits < 4 || exp_bits > 16) {
    throw std::invalid_argument("LNS exp_bits out of range [4,16]");
  }
  const std::int32_t exp_half = std::int32_t{1} << (exp_bits - 1);
  max_log_ = (exp_half << frac_bits) - 1;
  min_log_ = -(exp_half << frac_bits);
  rel_step_ = std::exp2(std::ldexp(1.0, -frac_bits)) - 1.0;
  if (frac_bits <= kMaxTableFracBits) {
    const std::size_t entries = std::size_t{1} << frac_bits;
    exp2_table_.resize(entries);
    for (std::size_t r = 0; r < entries; ++r) {
      exp2_table_[r] =
          std::exp2(std::ldexp(static_cast<double>(r), -frac_bits));
    }
  }
}

void LnsFormat::set_table_index_bits(int bits) {
  if (bits < 0 || bits > frac_bits_) {
    throw std::invalid_argument("table_index_bits must be in [0, frac_bits]");
  }
  table_bits_ = bits;
}

}  // namespace g5::math
