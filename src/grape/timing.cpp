#include "grape/timing.hpp"

namespace g5::grape {

std::size_t TimingModel::j_per_board(std::size_t nj) const {
  return shard_share(nj, cfg_.boards);
}

double TimingModel::board_compute_time(std::size_t ni,
                                       std::size_t nj_board) const {
  if (ni == 0 || nj_board == 0) return 0.0;
  // The board broadcasts one j-word per memory-clock cycle to all chips;
  // each chip's two pipelines hold vmp_factor i-particles apiece, so one
  // pass covers i_slots() i-particles. ceil(ni / i_slots) passes are
  // needed, each streaming the full resident j-set.
  const std::size_t slots = cfg_.board.i_slots();
  const std::size_t passes = (ni + slots - 1) / slots;
  return static_cast<double>(passes) * static_cast<double>(nj_board) /
         cfg_.board.memory_clock_hz;
}

double TimingModel::transfer_time(std::size_t bytes) const {
  if (bytes == 0) return 0.0;
  return cfg_.hib.latency_s +
         static_cast<double>(bytes) / cfg_.hib.bandwidth_bytes_per_s;
}

double TimingModel::j_upload_time(std::size_t nj) const {
  if (nj == 0) return 0.0;
  // Block distribution; each board's share moves over its own host
  // interface board, in parallel, so the cost is the largest share.
  return transfer_time(j_per_board(nj) * cfg_.hib.bytes_per_j);
}

ForceCallTiming TimingModel::force_call(std::size_t ni, std::size_t nj,
                                        bool includes_j_upload) const {
  ForceCallTiming t;
  if (includes_j_upload) t.dma_j = j_upload_time(nj);
  // Every board sees every i-particle (j is what is partitioned), but the
  // two uploads ride separate interfaces in parallel.
  t.dma_i = transfer_time(ni * cfg_.hib.bytes_per_i);
  t.compute = board_compute_time(ni, j_per_board(nj));
  t.dma_result = transfer_time(ni * cfg_.hib.bytes_per_result);
  return t;
}

double TimingModel::peak_interaction_rate() const {
  return cfg_.peak_interaction_rate();
}

double TimingModel::effective_rate(std::size_t ni, std::size_t nj) const {
  if (ni == 0 || nj == 0) return 0.0;
  const double interactions =
      static_cast<double>(ni) * static_cast<double>(nj);
  const double t = board_compute_time(ni, j_per_board(nj));
  return t > 0.0 ? interactions / t : 0.0;
}

}  // namespace g5::grape
