#include "grape/selftest.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "grape/host_reference.hpp"
#include "math/rng.hpp"

namespace g5::grape {

SelfTestReport run_selftest(Grape5System& system,
                            const SelfTestConfig& config) {
  SelfTestReport report;
  report.passed = true;

  // Deterministic test vectors: sources spread over the window, targets
  // covering every virtual pipeline slot (so a single bad chip cannot
  // hide behind slot assignment).
  math::Rng rng(config.seed);
  std::vector<Vec3d> j_pos(config.n_sources);
  std::vector<double> j_mass(config.n_sources);
  for (std::size_t j = 0; j < config.n_sources; ++j) {
    j_pos[j] = rng.in_box(Vec3d{-1.0, -1.0, -1.0}, Vec3d{1.0, 1.0, 1.0});
    j_mass[j] = rng.uniform(0.5, 1.5);
  }
  std::vector<Vec3d> i_pos(config.n_targets);
  for (auto& p : i_pos) {
    p = rng.in_box(Vec3d{-1.0, -1.0, -1.0}, Vec3d{1.0, 1.0, 1.0});
  }
  const double eps = 0.05;

  std::vector<Vec3d> ref_acc(config.n_targets);
  std::vector<double> ref_pot(config.n_targets);

  std::vector<Vec3d> acc(config.n_targets);
  std::vector<double> pot(config.n_targets);

  for (std::size_t b = 0; b < system.board_count(); ++b) {
    ProcessorBoard& board = system.board(b);
    PipelineScaling scaling;
    scaling.range_lo = -2.0;
    scaling.range_hi = 2.0;
    scaling.eps = eps;
    scaling.force_quantum = 1e-12;
    scaling.potential_quantum = 1e-12;
    board.configure(scaling);
    board.set_j(0, j_pos.data(), j_mass.data(), config.n_sources);

    std::fill(acc.begin(), acc.end(), Vec3d{});
    std::fill(pot.begin(), pot.end(), 0.0);
    board.run(i_pos.data(), config.n_targets, acc.data(), pot.data());

    host_forces_on_targets(i_pos, j_pos, j_mass, eps, ref_acc, ref_pot);

    BoardTestResult result;
    result.board = b;
    double sum2 = 0.0;
    for (std::size_t i = 0; i < config.n_targets; ++i) {
      const double rn = ref_acc[i].norm();
      if (rn <= 0.0) continue;
      const double e = (acc[i] - ref_acc[i]).norm() / rn;
      result.max_relative_error = std::max(result.max_relative_error, e);
      sum2 += e * e;
    }
    result.rms_relative_error =
        std::sqrt(sum2 / static_cast<double>(config.n_targets));
    result.passed = result.max_relative_error <= config.tolerance;
    report.passed = report.passed && result.passed;
    report.boards.push_back(result);

    // Leave the board without stale vectors.
    board.set_j_count(0);
  }
  return report;
}

std::string SelfTestReport::str() const {
  std::ostringstream out;
  out << "GRAPE-5 self-test: " << (passed ? "PASSED" : "FAILED") << '\n';
  for (const auto& b : boards) {
    out << "  board " << b.board << ": max err "
        << b.max_relative_error * 100.0 << "% rms "
        << b.rms_relative_error * 100.0 << "% -> "
        << (b.passed ? "ok" : "FAULTY") << '\n';
  }
  return out.str();
}

}  // namespace g5::grape
