// Host interface board (HIB) accounting.
//
// The paper's system has one HIB per processor board; all particle data
// and results move through them. The emulator does not move real DMA
// traffic, but every transfer is metered here so benches can report the
// communication volume and the timing model can charge for it.
#pragma once

#include <cstddef>
#include <cstdint>

#include "grape/config.hpp"

namespace g5::grape {

class HostInterface {
 public:
  explicit HostInterface(const HostInterfaceConfig& config) : cfg_(config) {}

  void record_j_upload(std::size_t count) {
    j_words_ += count;
    bytes_to_board_ += count * cfg_.bytes_per_j;
    ++transfers_;
  }
  void record_i_upload(std::size_t count) {
    i_words_ += count;
    bytes_to_board_ += count * cfg_.bytes_per_i;
    ++transfers_;
  }
  void record_result_read(std::size_t count) {
    result_words_ += count;
    bytes_from_board_ += count * cfg_.bytes_per_result;
    ++transfers_;
  }

  [[nodiscard]] std::uint64_t bytes_to_board() const noexcept {
    return bytes_to_board_;
  }
  [[nodiscard]] std::uint64_t bytes_from_board() const noexcept {
    return bytes_from_board_;
  }
  [[nodiscard]] std::uint64_t total_bytes() const noexcept {
    return bytes_to_board_ + bytes_from_board_;
  }
  [[nodiscard]] std::uint64_t transfers() const noexcept { return transfers_; }
  [[nodiscard]] std::uint64_t j_words() const noexcept { return j_words_; }
  [[nodiscard]] std::uint64_t i_words() const noexcept { return i_words_; }
  [[nodiscard]] std::uint64_t result_words() const noexcept {
    return result_words_;
  }

  /// Modeled seconds for everything this interface has carried so far.
  [[nodiscard]] double modeled_time() const {
    return static_cast<double>(transfers_) * cfg_.latency_s +
           static_cast<double>(total_bytes()) / cfg_.bandwidth_bytes_per_s;
  }

  void reset() { *this = HostInterface(cfg_); }

 private:
  HostInterfaceConfig cfg_;
  std::uint64_t bytes_to_board_ = 0;
  std::uint64_t bytes_from_board_ = 0;
  std::uint64_t transfers_ = 0;
  std::uint64_t j_words_ = 0;
  std::uint64_t i_words_ = 0;
  std::uint64_t result_words_ = 0;
};

}  // namespace g5::grape
