// Discrete-event cycle simulation of one force call.
//
// The analytic TimingModel (timing.hpp) charges ceil(ni / i_slots) passes
// of nj memory cycles — a closed form. This module *simulates* the same
// call cycle by cycle: the j-broadcast bus, the VMP slot occupancy of
// every chip, pipeline fill/drain latency, and the serialization between
// passes. It exists to validate the closed form (they must agree to the
// drain-latency correction) and to answer shape questions the formula
// cannot (e.g. how much the pipeline latency costs for very short lists).
#pragma once

#include <cstdint>

#include "grape/config.hpp"

namespace g5::grape {

struct CycleSimResult {
  std::uint64_t memory_cycles = 0;    ///< 15 MHz cycles consumed
  std::uint64_t pipeline_cycles = 0;  ///< 90 MHz cycles (= 6x memory)
  std::uint64_t interactions = 0;     ///< force evaluations completed
  std::uint64_t passes = 0;           ///< i-reload passes
  std::uint64_t idle_slot_cycles = 0; ///< slot-cycles wasted on partial fill
  double seconds = 0.0;               ///< memory_cycles / memory_clock
  /// Fraction of peak interaction throughput achieved during the call.
  double utilization = 0.0;
};

/// Pipeline drain latency in pipeline (90 MHz) cycles: stages between a
/// j-word entering the datapath and its contribution landing in the
/// accumulator. Charged once per pass (the stream overlaps otherwise).
inline constexpr std::uint64_t kPipelineDepth = 24;

/// Simulate one board evaluating ni i-particles against nj resident
/// j-particles, cycle by cycle.
CycleSimResult simulate_board_call(const BoardConfig& board, std::size_t ni,
                                   std::size_t nj);

/// Simulate the full system (j block-partitioned over the boards, boards
/// in parallel): the slowest board defines the wall clock.
CycleSimResult simulate_system_call(const SystemConfig& system,
                                    std::size_t ni, std::size_t nj);

}  // namespace g5::grape
