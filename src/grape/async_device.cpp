#include "grape/async_device.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "util/timer.hpp"

namespace g5::grape {

namespace {

/// Validate before any member that starts a thread is constructed: a
/// throw from the constructor body would join a submitter blocked on a
/// never-closed queue.
std::shared_ptr<Grape5Device> require_device(
    std::shared_ptr<Grape5Device> device) {
  if (!device) throw std::invalid_argument("grape device is null");
  return device;
}

}  // namespace

AsyncDevice::AsyncDevice(std::shared_ptr<Grape5Device> device,
                         const Config& config)
    : device_(require_device(std::move(device))),
      queue_(config.queue_capacity),
      submitter_("g5-submit", [this] { submitter_loop(); }) {
  const std::size_t boards = device_->system().board_count();
  const unsigned eval_lanes =
      config.eval_threads != 0
          ? config.eval_threads
          : static_cast<unsigned>(std::min<std::size_t>(boards, 64));
  if (eval_lanes > 1 && boards > 1) {
    eval_pool_ = std::make_unique<util::ThreadPool>(eval_lanes);
    device_->system().set_eval_pool(eval_pool_.get());
  }
}

AsyncDevice::~AsyncDevice() {
  queue_.close();
  submitter_.join();
  if (eval_pool_) device_->system().set_eval_pool(nullptr);
}

void AsyncDevice::publish_queue_depth() {
  if (!obs::enabled()) return;
  obs::gauge("g5.grape.queue_depth")
      .set(static_cast<double>(queue_.size()));
  // Submitted-but-not-completed jobs; the crash post-mortem and the
  // status file read this to show what the device pipeline was doing.
  obs::gauge("g5.grape.in_flight").set(static_cast<double>(in_flight()));
}

AsyncDevice::Ticket AsyncDevice::submit(ForceJob& job) {
  Item item;
  item.job = &job;
  if (obs::enabled()) item.obs_path = obs::Span::current_path();
  // submit_mutex_ makes {ticket allocation, enqueue} atomic against
  // other producers, so queue order == ticket order always holds.
  util::MutexLock order(submit_mutex_);
  Ticket ticket = 0;
  {
    util::MutexLock lock(mutex_);
    ticket = ++submitted_;
  }
  item.ticket = ticket;
  if (!queue_.push(std::move(item))) {
    // Queue closed (destructor raced a submit) — count the job as
    // completed-without-running so waits terminate.
    util::MutexLock lock(mutex_);
    completed_ = ticket;
    completed_cv_.notify_all();
    return ticket;
  }
  publish_queue_depth();
  return ticket;
}

void AsyncDevice::submitter_loop() {
  Item item;
  while (queue_.pop(item)) {
    process(item);
    item = Item{};
  }
}

void AsyncDevice::process(Item& item) {
  util::Stopwatch busy;
  ForceJob& job = *item.job;
  Completed delta;
  if (!failed()) {
    try {
      // File the device spans under the producer's phase (the engine's
      // pipeline span), as pool workers do for walk lanes.
      obs::ScopedParentPath parent(item.obs_path);
      G5_OBS_SPAN("eval", "grape");
      Grape5System& sys = device_->system();
      const HardwareAccount before = sys.account();
      const std::uint64_t bytes_before = sys.bytes_moved();
      if (job.require_resident) {
        device_->set_j(job.j_pos, job.j_mass);
        device_->compute_forces(job.i_pos, job.acc, job.pot);
      } else {
        device_->compute_forces_chunked(job.i_pos, job.j_pos, job.j_mass,
                                        job.acc, job.pot);
      }
      const HardwareAccount& after = sys.account();
      job.interactions = after.interactions - before.interactions;
      job.emulation_seconds = after.emulation_wall - before.emulation_wall;
      job.hib_bytes = sys.bytes_moved() - bytes_before;
      delta.jobs = 1;
      delta.interactions = job.interactions;
      delta.hib_bytes = job.hib_bytes;
      delta.emulation_seconds = job.emulation_seconds;
    } catch (...) {
      failed_.store(true, std::memory_order_release);
      util::MutexLock lock(mutex_);
      if (!error_) error_ = std::current_exception();
    }
  }
  delta.busy_seconds = busy.elapsed();
  if (obs::enabled()) {
    // Per-batch device occupancy distribution: how long each submitted
    // job held the submitter thread, in microseconds.
    obs::histogram("g5.grape.job_us").observe(delta.busy_seconds * 1e6);
  }
  {
    util::MutexLock lock(mutex_);
    totals_.jobs += delta.jobs;
    totals_.interactions += delta.interactions;
    totals_.hib_bytes += delta.hib_bytes;
    totals_.emulation_seconds += delta.emulation_seconds;
    totals_.busy_seconds += delta.busy_seconds;
    completed_ = item.ticket;
    completed_cv_.notify_all();
  }
  publish_queue_depth();
}

void AsyncDevice::wait_for(Ticket ticket) {
  util::MutexLock lock(mutex_);
  while (completed_ < ticket) completed_cv_.wait(mutex_);
  if (error_) std::rethrow_exception(error_);
}

void AsyncDevice::drain() {
  util::MutexLock lock(mutex_);
  while (completed_ < submitted_) completed_cv_.wait(mutex_);
  if (error_) std::rethrow_exception(error_);
}

AsyncDevice::Completed AsyncDevice::take_completed() {
  util::MutexLock lock(mutex_);
  Completed out = totals_;
  totals_ = Completed{};
  return out;
}

}  // namespace g5::grape
