// Hardware self-test: the role the original GRAPE utility library's board
// test played. Deterministic particle vectors are pushed through every
// board independently and the returned forces are compared against the
// host's double-precision sums; a board whose deviation exceeds what the
// number formats can explain is flagged as faulty (e.g. a marginal chip —
// see ProcessorBoard::inject_chip_fault for the test hook).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "grape/system.hpp"

namespace g5::grape {

struct SelfTestConfig {
  std::size_t n_sources = 512;     ///< j-particles per vector set
  std::size_t n_targets = 192;     ///< i-particles (cover every i-slot)
  std::uint64_t seed = 1999;
  /// Acceptance threshold on the per-force relative deviation. The format
  /// error is ~0.3 % pairwise and averages down over the sources; 2 % per
  /// whole force catches any systematic defect while never tripping on
  /// healthy quantization noise.
  double tolerance = 0.02;
};

struct BoardTestResult {
  std::size_t board = 0;
  double max_relative_error = 0.0;
  double rms_relative_error = 0.0;
  bool passed = false;
};

struct SelfTestReport {
  bool passed = false;
  std::vector<BoardTestResult> boards;
  [[nodiscard]] std::string str() const;
};

/// Run the self-test. Non-destructive apart from replacing the resident
/// j-set and range window (call before attaching the device to a run).
SelfTestReport run_selftest(Grape5System& system,
                            const SelfTestConfig& config = SelfTestConfig{});

}  // namespace g5::grape
