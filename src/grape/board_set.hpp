// BoardSet: the emulated PC-GRAPE cluster — B independent processor
// boards sharing one scaling window, with the j-particles block-sharded
// across their particle memories.
//
// This is the abstraction the GRAPE lineage actually scaled by: GRAPE-6
// sharded j-particles over processor boards (Makino et al. 2003) and the
// GRAPE-6A PC-cluster sharded them over host+board nodes (Fukushige &
// Makino 2005). The paper's machine is the B = 2 instance
// (SystemConfig::paper_system()); SystemConfig::boards scales the
// emulator beyond it (docs/scaling.md is the architecture note).
//
// Determinism contract: run() merges the boards' partial sums in the
// *integer accumulator domain* (counts of the call's force/potential
// quantum — grape::RawForce), in board order, and the caller converts to
// doubles once after the merge. Integer addition is exact and
// associative, so the result is bitwise-identical to streaming the whole
// j-set through one board, for any B and for both backends — a host-side
// double reduction (n1*q + n2*q) would not be, because the quanta are
// not powers of two. tests/grape_board_set_test.cpp pins this.
//
// Capacity contract: upload() block-shards nj particles as contiguous
// runs of shard_share(nj, B) = ceil(nj/B); a set that exceeds the
// aggregate memory — or a direct board segment that exceeds one board's —
// raises grape::JmemCapacityError (typed, derives from std::out_of_range).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "grape/board.hpp"
#include "grape/config.hpp"
#include "math/vec3.hpp"

namespace g5::util {
class ThreadPool;
}

namespace g5::obs {
class Counter;
class Gauge;
}  // namespace g5::obs

namespace g5::grape {

class BoardSet {
 public:
  explicit BoardSet(const SystemConfig& config);

  [[nodiscard]] std::size_t size() const noexcept { return boards_.size(); }
  [[nodiscard]] ProcessorBoard& board(std::size_t idx) {
    return *boards_.at(idx);
  }
  [[nodiscard]] const ProcessorBoard& board(std::size_t idx) const {
    return *boards_.at(idx);
  }

  /// Push a new scaling window to every board; drops resident shards
  /// (the stored words were quantized on the old window).
  void configure(const PipelineScaling& scaling);

  /// Block-shard a full j-set: board b takes the contiguous run
  /// [b*share, min((b+1)*share, nj)) with share = shard_share(nj, B) —
  /// the same rule the timing model charges for. Throws
  /// JmemCapacityError when nj exceeds the aggregate capacity.
  void upload(std::span<const Vec3d> pos, std::span<const double> mass);

  /// j-particles resident across the set / on one board.
  [[nodiscard]] std::size_t resident_j() const noexcept {
    return resident_j_;
  }
  [[nodiscard]] std::size_t board_j(std::size_t idx) const {
    return board_j_.at(idx);
  }

  /// Particle-memory capacity: aggregate / per board.
  [[nodiscard]] std::size_t capacity() const noexcept {
    return boards_.size() * board_capacity();
  }
  [[nodiscard]] std::size_t board_capacity() const noexcept {
    return cfg_.board.jmem_capacity;
  }

  /// Evaluate every board holding a shard against `i_pos` and merge the
  /// integer partial sums into `raw` (saturating adds, deterministic
  /// board order). Does NOT clear `raw` — callers accumulate across
  /// chunked j-sets in the same exact domain. When `pool` has more than
  /// one lane and more than one board holds particles, boards run
  /// concurrently (one lane per board, private scratch); the merge
  /// order — and therefore the result — is identical either way.
  /// Returns interactions computed.
  std::size_t run(std::span<const Vec3d> i_pos, std::span<RawForce> raw,
                  util::ThreadPool* pool);

  /// Aggregate HIB byte meters / meter reset.
  [[nodiscard]] std::uint64_t bytes_moved() const;
  void reset_hib();

 private:
  SystemConfig cfg_;
  std::vector<std::unique_ptr<ProcessorBoard>> boards_;
  std::vector<std::size_t> board_j_;
  std::size_t resident_j_ = 0;

  /// Per-board raw partial sums for the board-parallel path: board b
  /// writes only scratch_[b] (lane ownership, no lock), merged in board
  /// order afterwards.
  struct BoardScratch {
    std::vector<RawForce> raw;
    std::size_t interactions = 0;
  };
  std::vector<BoardScratch> scratch_;

  /// Cached g5.board.<b>.* metric references (registration is mutexed;
  /// hot paths keep the forever-valid pointers). Built on the first
  /// publish with instrumentation enabled.
  struct BoardObs {
    obs::Gauge* j_resident = nullptr;
    obs::Gauge* jmem_fill = nullptr;
    obs::Counter* interactions = nullptr;
  };
  std::vector<BoardObs> board_obs_;

  void ensure_board_obs();
  void publish_upload_metrics();
};

}  // namespace g5::grape
