#include "grape/board_set.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <string>

#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "util/parallel.hpp"

namespace g5::grape {

namespace {

/// Span names are literals (they must outlive the span and may not
/// contain '/'); boards beyond the table share one overflow label —
/// the per-board metrics still separate them.
constexpr std::array<const char*, 8> kBoardSpanNames = {
    "board0", "board1", "board2", "board3",
    "board4", "board5", "board6", "board7"};

const char* board_span_name(std::size_t b) {
  return b < kBoardSpanNames.size() ? kBoardSpanNames[b] : "board8plus";
}

/// Exact integer merge with the registers' saturation semantics: two
/// healthy counts are each below FixedAccumulator's ±9.0e18 rail, but
/// their sum can pass int64 max (~9.22e18), so the add pre-checks and
/// clamps to the rail instead of overflowing (UB).
std::int64_t saturating_add(std::int64_t a, std::int64_t b, bool& saturated) {
  constexpr auto kMax = static_cast<std::int64_t>(9.0e18);
  if (b > 0 && a > kMax - b) {
    saturated = true;
    return kMax;
  }
  if (b < 0 && a < -kMax - b) {
    saturated = true;
    return -kMax;
  }
  return a + b;
}

}  // namespace

BoardSet::BoardSet(const SystemConfig& config) : cfg_(config) {
  if (cfg_.boards == 0) throw std::invalid_argument("need >= 1 board");
  boards_.reserve(cfg_.boards);
  for (std::size_t b = 0; b < cfg_.boards; ++b) {
    boards_.push_back(std::make_unique<ProcessorBoard>(cfg_.board, cfg_.hib,
                                                       cfg_.numerics, b));
  }
  board_j_.assign(cfg_.boards, 0);
  scratch_.resize(cfg_.boards);
}

void BoardSet::configure(const PipelineScaling& scaling) {
  for (auto& board : boards_) board->configure(scaling);
  std::fill(board_j_.begin(), board_j_.end(), 0);
  resident_j_ = 0;
}

void BoardSet::upload(std::span<const Vec3d> pos,
                      std::span<const double> mass) {
  if (pos.size() != mass.size()) {
    throw std::invalid_argument("position/mass arity mismatch");
  }
  const std::size_t nj = pos.size();
  if (nj > capacity()) {
    throw JmemCapacityError(JmemCapacityError::kAggregate, nj, capacity());
  }

  const std::size_t share = shard_share(nj, boards_.size());
  std::size_t offset = 0;
  for (std::size_t b = 0; b < boards_.size(); ++b) {
    const std::size_t count = std::min(share, nj - offset);
    boards_[b]->set_j_count(0);
    if (count > 0) {
      boards_[b]->set_j(0, pos.data() + offset, mass.data() + offset, count);
    }
    board_j_[b] = count;
    offset += count;
  }
  resident_j_ = nj;
  publish_upload_metrics();
}

std::size_t BoardSet::run(std::span<const Vec3d> i_pos,
                          std::span<RawForce> raw, util::ThreadPool* pool) {
  const std::size_t ni = i_pos.size();
  if (raw.size() != ni) {
    throw std::invalid_argument("raw output span arity mismatch");
  }
  if (ni == 0 || resident_j_ == 0) return 0;

  std::size_t active_boards = 0;
  for (const auto& board : boards_) {
    if (board->j_count() > 0) ++active_boards;
  }

  const auto run_board = [&](std::size_t b) {
    BoardScratch& sc = scratch_[b];
    if (sc.raw.size() < ni) sc.raw.resize(ni);
    G5_OBS_SPAN(board_span_name(b), "grape");
    sc.interactions = boards_[b]->run_raw(i_pos.data(), ni, sc.raw.data());
  };

  if (pool != nullptr && pool->size() > 1 && active_boards > 1) {
    // One lane per board; board b touches only scratch_[b] (lane
    // ownership, no lock). The pool propagates the caller's span path,
    // so the per-board spans nest under the compute phase that forked
    // them.
    pool->parallel_for(boards_.size(), 1,
                       [&](std::size_t begin, std::size_t end,
                           unsigned /*lane*/) {
                         for (std::size_t b = begin; b < end; ++b) {
                           if (boards_[b]->j_count() == 0) continue;
                           run_board(b);
                         }
                       });
  } else {
    for (std::size_t b = 0; b < boards_.size(); ++b) {
      if (boards_[b]->j_count() == 0) continue;
      run_board(b);
    }
  }

  // Reduce in board order, in the integer count domain. Integer addition
  // is exact and associative, so any board partition of the j-set — and
  // the serial vs parallel evaluation above — produces identical counts;
  // the caller's single conversion to doubles is then bitwise-identical
  // to a one-board run.
  std::size_t interactions = 0;
  for (std::size_t b = 0; b < boards_.size(); ++b) {
    if (boards_[b]->j_count() == 0) continue;
    const BoardScratch& sc = scratch_[b];
    interactions += sc.interactions;
    for (std::size_t i = 0; i < ni; ++i) {
      RawForce& dst = raw[i];
      const RawForce& src = sc.raw[i];
      bool overflowed = false;
      for (std::size_t c = 0; c < 3; ++c) {
        dst.acc[c] = saturating_add(dst.acc[c], src.acc[c], overflowed);
      }
      dst.pot = saturating_add(dst.pot, src.pot, overflowed);
      dst.saturated = dst.saturated || src.saturated || overflowed;
    }
  }

  if (obs::enabled()) {
    ensure_board_obs();
    for (std::size_t b = 0; b < boards_.size(); ++b) {
      if (scratch_[b].interactions > 0 && board_obs_[b].interactions) {
        board_obs_[b].interactions->add(scratch_[b].interactions);
      }
      scratch_[b].interactions = 0;
    }
  } else {
    for (auto& sc : scratch_) sc.interactions = 0;
  }
  return interactions;
}

std::uint64_t BoardSet::bytes_moved() const {
  std::uint64_t total = 0;
  for (const auto& board : boards_) total += board->hib().total_bytes();
  return total;
}

void BoardSet::reset_hib() {
  for (auto& board : boards_) board->hib().reset();
}

void BoardSet::ensure_board_obs() {
  if (board_obs_.size() == boards_.size()) return;
  // Registration takes a mutex and returns forever-valid references;
  // build the per-board handles once and keep the pointers.
  board_obs_.resize(boards_.size());
  obs::gauge("g5.board.count").set(static_cast<double>(boards_.size()));
  for (std::size_t b = 0; b < boards_.size(); ++b) {
    const std::string prefix = "g5.board." + std::to_string(b) + ".";
    board_obs_[b].j_resident = &obs::gauge(prefix + "j_resident");
    board_obs_[b].jmem_fill = &obs::gauge(prefix + "jmem_fill");
    board_obs_[b].interactions = &obs::counter(prefix + "interactions");
  }
}

void BoardSet::publish_upload_metrics() {
  if (!obs::enabled()) return;
  ensure_board_obs();
  const double cap = static_cast<double>(board_capacity());
  for (std::size_t b = 0; b < boards_.size(); ++b) {
    const auto resident = static_cast<double>(board_j_[b]);
    board_obs_[b].j_resident->set(resident);
    board_obs_[b].jmem_fill->set(cap > 0.0 ? resident / cap : 0.0);
  }
}

}  // namespace g5::grape
