#include "grape/system.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "util/log.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace g5::grape {

Grape5System::Grape5System(const SystemConfig& config)
    : cfg_(config), timing_(config) {
  if (cfg_.boards == 0) throw std::invalid_argument("need >= 1 board");
  boards_.reserve(cfg_.boards);
  for (std::size_t b = 0; b < cfg_.boards; ++b) {
    boards_.push_back(std::make_unique<ProcessorBoard>(cfg_.board, cfg_.hib,
                                                       cfg_.numerics));
  }
  board_j_count_.assign(cfg_.boards, 0);
}

void Grape5System::set_range(double lo, double hi, double eps,
                             double mass_scale) {
  if (!(hi > lo)) throw std::invalid_argument("range window empty");
  if (eps < 0.0) throw std::invalid_argument("softening must be >= 0");
  scaling_.range_lo = lo;
  scaling_.range_hi = hi;
  scaling_.eps = eps;
  // Accumulator quanta from the problem scales: small enough that
  // quantization is far below the pipeline's log-format error, large
  // enough that softened close encounters cannot overflow 63 bits. See
  // tests/grape_system_test.cpp for the headroom checks.
  derive_scaling_quanta(scaling_, mass_scale);
  for (auto& board : boards_) board->configure(scaling_);
  std::fill(board_j_count_.begin(), board_j_count_.end(), 0);
  resident_j_ = 0;
  range_set_ = true;
}

void Grape5System::publish_obs_metrics() {
  if (!obs::enabled()) return;
  const std::uint64_t bytes = bytes_moved();
  if (bytes > counted_bytes_) {
    obs::counter("g5.grape.bytes").add(bytes - counted_bytes_);
  }
  counted_bytes_ = bytes;
  obs::gauge("g5.grape.occupancy").set(account_.occupancy());
}

void Grape5System::set_j_particles(std::span<const Vec3d> pos,
                                   std::span<const double> mass) {
  G5_OBS_SPAN("j_upload", "grape");
  if (!range_set_) {
    throw std::logic_error("set_range must be called before set_j_particles");
  }
  if (pos.size() != mass.size()) {
    throw std::invalid_argument("position/mass arity mismatch");
  }
  if (pos.size() > jmem_capacity()) {
    throw std::out_of_range(
        "j-set exceeds aggregate particle memory; chunk the interaction "
        "list (the driver layer does this automatically)");
  }

  const std::size_t nj = pos.size();
  const std::size_t share = timing_.j_per_board(nj);
  std::size_t offset = 0;
  for (std::size_t b = 0; b < cfg_.boards; ++b) {
    const std::size_t count = std::min(share, nj - offset);
    boards_[b]->set_j_count(0);
    if (count > 0) {
      boards_[b]->set_j(0, pos.data() + offset, mass.data() + offset, count);
    }
    board_j_count_[b] = count;
    offset += count;
    if (offset >= nj) {
      for (std::size_t rest = b + 1; rest < cfg_.boards; ++rest) {
        boards_[rest]->set_j_count(0);
        board_j_count_[rest] = 0;
      }
      break;
    }
  }
  resident_j_ = nj;
  account_.j_uploaded += nj;
  account_.modeled_dma_j += timing_.j_upload_time(nj);
  if (obs::enabled()) {
    obs::counter("g5.grape.j_uploaded").add(nj);
    publish_obs_metrics();
  }
}

std::size_t Grape5System::compute(std::span<const Vec3d> i_pos,
                                  std::span<Vec3d> out_acc,
                                  std::span<double> out_pot) {
  if (!range_set_) {
    throw std::logic_error("set_range must be called before compute");
  }
  const std::size_t ni = i_pos.size();
  if (out_acc.size() != ni || out_pot.size() != ni) {
    throw std::invalid_argument("output span arity mismatch");
  }
  std::fill(out_acc.begin(), out_acc.end(), Vec3d{});
  std::fill(out_pot.begin(), out_pot.end(), 0.0);
  if (ni == 0 || resident_j_ == 0) return 0;
  G5_OBS_SPAN("compute", "grape");

  if (sat_flags_.size() < ni) sat_flags_.resize(ni);
  std::fill_n(sat_flags_.begin(), ni, std::uint8_t{0});

  util::Stopwatch watch;
  std::size_t active_boards = 0;
  for (const auto& board : boards_) {
    if (board->j_count() > 0) ++active_boards;
  }
  std::size_t interactions = 0;
  if (eval_pool_ != nullptr && eval_pool_->size() > 1 && active_boards > 1) {
    interactions = run_boards_parallel(i_pos, out_acc, out_pot);
  } else {
    for (auto& board : boards_) {
      if (board->j_count() == 0) continue;
      interactions += board->run(i_pos.data(), ni, out_acc.data(),
                                 out_pot.data(), sat_flags_.data());
    }
  }
  bool call_saturated = false;
  for (std::size_t i = 0; i < ni; ++i) call_saturated |= (sat_flags_[i] != 0);
  account_.emulation_wall += watch.elapsed();

  const ForceCallTiming t = timing_.force_call(ni, resident_j_, false);
  account_.modeled_dma_i += t.dma_i;
  account_.modeled_compute += t.compute;
  account_.modeled_dma_result += t.dma_result;
  ++account_.force_calls;
  account_.interactions += interactions;
  account_.i_processed += ni;
  // Occupancy denominator: the VMP streams full i-chunks, so a call of
  // ni i-particles occupies ceil(ni / i_slots) * i_slots slots.
  const std::size_t slots = cfg_.board.i_slots();
  account_.vmp_slots +=
      static_cast<std::uint64_t>((ni + slots - 1) / slots) * slots;
  if (obs::enabled()) {
    obs::counter("g5.grape.force_calls").add(1);
    obs::counter("g5.grape.interactions").add(interactions);
    obs::counter("g5.grape.i_processed").add(ni);
    publish_obs_metrics();
  }

  if (call_saturated) {
    if (!saturated_) {
      util::log_warn() << "GRAPE-5 accumulator saturation detected; "
                          "range window or mass scale is mis-set";
    }
    saturated_ = true;  // latched until reset_account()
  }
  return interactions;
}

std::size_t Grape5System::run_boards_parallel(std::span<const Vec3d> i_pos,
                                              std::span<Vec3d> out_acc,
                                              std::span<double> out_pot) {
  const std::size_t ni = i_pos.size();
  eval_scratch_.resize(boards_.size());
  for (std::size_t b = 0; b < boards_.size(); ++b) {
    if (boards_[b]->j_count() == 0) continue;
    BoardScratch& sc = eval_scratch_[b];
    sc.acc.assign(ni, Vec3d{});
    sc.pot.assign(ni, 0.0);
    sc.sat.assign(ni, 0);
    sc.interactions = 0;
  }
  // One lane per board; board b touches only eval_scratch_[b] (lane
  // ownership, checked by TSan — the scratch doc in system.hpp).
  eval_pool_->parallel_for(
      boards_.size(), 1,
      [&](std::size_t begin, std::size_t end, unsigned /*lane*/) {
        for (std::size_t b = begin; b < end; ++b) {
          if (boards_[b]->j_count() == 0) continue;
          BoardScratch& sc = eval_scratch_[b];
          sc.interactions = boards_[b]->run(i_pos.data(), ni, sc.acc.data(),
                                            sc.pot.data(), sc.sat.data());
        }
      });
  // Reduce in board order: out[i] accumulates (0 + f_b0) + f_b1 + ...,
  // the exact double-addition sequence of the serial board loop, so the
  // result is bitwise-identical.
  std::size_t interactions = 0;
  for (std::size_t b = 0; b < boards_.size(); ++b) {
    if (boards_[b]->j_count() == 0) continue;
    const BoardScratch& sc = eval_scratch_[b];
    interactions += sc.interactions;
    for (std::size_t i = 0; i < ni; ++i) {
      out_acc[i] += sc.acc[i];
      out_pot[i] += sc.pot[i];
      sat_flags_[i] = static_cast<std::uint8_t>(sat_flags_[i] | sc.sat[i]);
    }
  }
  return interactions;
}

void Grape5System::reset_account() {
  account_.reset();
  saturated_ = false;
  for (auto& board : boards_) board->hib().reset();
  counted_bytes_ = 0;  // HIB meters restart; keep the obs delta base in sync
}

std::uint64_t Grape5System::bytes_moved() const {
  std::uint64_t total = 0;
  for (const auto& board : boards_) total += board->hib().total_bytes();
  return total;
}

}  // namespace g5::grape
