#include "grape/system.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace g5::grape {

Grape5System::Grape5System(const SystemConfig& config)
    : cfg_(config), timing_(config), set_(config) {}

void Grape5System::set_range(double lo, double hi, double eps,
                             double mass_scale) {
  if (!(hi > lo)) throw std::invalid_argument("range window empty");
  if (eps < 0.0) throw std::invalid_argument("softening must be >= 0");
  scaling_.range_lo = lo;
  scaling_.range_hi = hi;
  scaling_.eps = eps;
  // Accumulator quanta from the problem scales: small enough that
  // quantization is far below the pipeline's log-format error, large
  // enough that softened close encounters cannot overflow 63 bits. See
  // tests/grape_system_test.cpp for the headroom checks.
  derive_scaling_quanta(scaling_, mass_scale);
  set_.configure(scaling_);
  range_set_ = true;
}

void Grape5System::publish_obs_metrics() {
  if (!obs::enabled()) return;
  const std::uint64_t bytes = bytes_moved();
  if (bytes > counted_bytes_) {
    obs::counter("g5.grape.bytes").add(bytes - counted_bytes_);
  }
  counted_bytes_ = bytes;
  obs::gauge("g5.grape.occupancy").set(account_.occupancy());
}

void Grape5System::set_j_particles(std::span<const Vec3d> pos,
                                   std::span<const double> mass) {
  G5_OBS_SPAN("j_upload", "grape");
  if (!range_set_) {
    throw std::logic_error("set_range must be called before set_j_particles");
  }
  set_.upload(pos, mass);
  const std::size_t nj = pos.size();
  account_.j_uploaded += nj;
  account_.modeled_dma_j += timing_.j_upload_time(nj);
  if (obs::enabled()) {
    obs::counter("g5.grape.j_uploaded").add(nj);
    publish_obs_metrics();
  }
}

std::size_t Grape5System::compute_raw(std::span<const Vec3d> i_pos,
                                      std::span<RawForce> raw) {
  if (!range_set_) {
    throw std::logic_error("set_range must be called before compute");
  }
  const std::size_t ni = i_pos.size();
  if (raw.size() != ni) {
    throw std::invalid_argument("output span arity mismatch");
  }
  if (ni == 0 || resident_j() == 0) return 0;
  G5_OBS_SPAN("compute", "grape");

  util::Stopwatch watch;
  const std::size_t interactions = set_.run(i_pos, raw, eval_pool_);
  account_.emulation_wall += watch.elapsed();

  bool call_saturated = false;
  for (std::size_t i = 0; i < ni; ++i) call_saturated |= raw[i].saturated;

  const ForceCallTiming t = timing_.force_call(ni, resident_j(), false);
  account_.modeled_dma_i += t.dma_i;
  account_.modeled_compute += t.compute;
  account_.modeled_dma_result += t.dma_result;
  ++account_.force_calls;
  account_.interactions += interactions;
  account_.i_processed += ni;
  // Occupancy denominator: the VMP streams full i-chunks, so a call of
  // ni i-particles occupies ceil(ni / i_slots) * i_slots slots.
  const std::size_t slots = cfg_.board.i_slots();
  account_.vmp_slots +=
      static_cast<std::uint64_t>((ni + slots - 1) / slots) * slots;
  if (obs::enabled()) {
    obs::counter("g5.grape.force_calls").add(1);
    obs::counter("g5.grape.interactions").add(interactions);
    obs::counter("g5.grape.i_processed").add(ni);
    publish_obs_metrics();
  }

  if (call_saturated) {
    if (!saturated_) {
      util::log_warn() << "GRAPE-5 accumulator saturation detected; "
                          "range window or mass scale is mis-set";
    }
    saturated_ = true;  // latched until reset_account()
  }
  return interactions;
}

std::size_t Grape5System::compute(std::span<const Vec3d> i_pos,
                                  std::span<Vec3d> out_acc,
                                  std::span<double> out_pot) {
  if (!range_set_) {
    throw std::logic_error("set_range must be called before compute");
  }
  const std::size_t ni = i_pos.size();
  if (out_acc.size() != ni || out_pot.size() != ni) {
    throw std::invalid_argument("output span arity mismatch");
  }
  std::fill(out_acc.begin(), out_acc.end(), Vec3d{});
  std::fill(out_pot.begin(), out_pot.end(), 0.0);
  if (ni == 0 || resident_j() == 0) return 0;

  if (raw_merge_.size() < ni) raw_merge_.resize(ni);
  std::fill_n(raw_merge_.begin(), ni, RawForce{});
  const std::size_t interactions =
      compute_raw(i_pos, std::span<RawForce>(raw_merge_.data(), ni));

  // One conversion after the exact integer merge — the same readout a
  // single board holding the whole j-set would perform.
  const Pipeline& pipe = pipeline();
  const double fq = pipe.force_accumulator_quantum();
  const double pq = pipe.potential_accumulator_quantum();
  for (std::size_t i = 0; i < ni; ++i) {
    const RawForce& r = raw_merge_[i];
    out_acc[i] = Vec3d{static_cast<double>(r.acc[0]) * fq,
                       static_cast<double>(r.acc[1]) * fq,
                       static_cast<double>(r.acc[2]) * fq};
    out_pot[i] = static_cast<double>(r.pot) * pq;
  }
  return interactions;
}

void Grape5System::reset_account() {
  account_.reset();
  saturated_ = false;
  set_.reset_hib();
  counted_bytes_ = 0;  // HIB meters restart; keep the obs delta base in sync
}

std::uint64_t Grape5System::bytes_moved() const { return set_.bytes_moved(); }

}  // namespace g5::grape
