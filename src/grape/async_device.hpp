// AsyncDevice: asynchronous command queue over a Grape5Device.
//
// The GRAPE-5 host interface is asynchronous by design (Kawai et al.
// 1999): the host can keep building interaction lists while the boards
// grind the previous ones. The synchronous engines serialized those two
// phases; AsyncDevice restores the hardware's concurrency for the
// emulator. It owns one dedicated submitter thread (the only thread
// that touches the device — and thus HardwareAccount — between the
// first submit and the matching drain), consumes ForceJobs in exact
// submission order through a util::BoundedQueue, and records per-job
// completion accounting so callers never read the account mid-flight.
//
// It also attaches a board-evaluation worker pool to the underlying
// Grape5System (set_eval_pool) so the emulated boards run concurrently
// inside each job, the way the silicon boards did. Both layers preserve
// bitwise-identical results (submission-order evaluation; per-board
// partial sums reduced in board order).
//
// Synchronization contract:
//   * submit(job) — job's spans must stay valid, inputs unmodified and
//     outputs untouched by the caller, until the job completes (its
//     ticket passes wait_for / drain returns).
//   * Completion fields of the job (interactions, hib_bytes,
//     emulation_seconds) are readable only after that point.
//   * The caller must not touch device()/its account while jobs are in
//     flight; drain() first.
//   * Multiple producers may submit (the queue is MPMC); ticket order
//     then matches the order submit() calls committed.
//
// Errors thrown by the device on the submitter thread (e.g. a mis-set
// range window) are captured; the failing and all later jobs complete
// without running ("failed fast") so waits always terminate, and the
// first error rethrows on the next wait_for()/drain(). After a failure
// the AsyncDevice is poisoned (failed() == true) — destroy and rebuild.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <memory>
#include <span>
#include <string>

#include "grape/driver.hpp"
#include "util/annotations.hpp"
#include "util/bounded_queue.hpp"
#include "util/mutex.hpp"
#include "util/parallel.hpp"
#include "util/thread.hpp"

namespace g5::grape {

/// One force evaluation: targets against an interaction list, routed to
/// Grape5Device::compute_forces_chunked on the submitter thread.
struct ForceJob {
  std::span<const Vec3d> i_pos;     ///< targets
  std::span<const Vec3d> j_pos;     ///< interaction-list positions
  std::span<const double> j_mass;   ///< interaction-list masses
  std::span<Vec3d> acc;             ///< overwritten on completion
  std::span<double> pot;            ///< overwritten on completion

  /// When true the j-list must fit the boards' particle memory in one
  /// upload: the submitter calls set_j + compute_forces instead of the
  /// chunked path, and a list over capacity raises JmemCapacityError —
  /// which poisons the AsyncDevice (failed() == true) and rethrows on
  /// the next wait_for()/drain(), like any device error. For producers
  /// that sized their lists to the hardware and want overflow to be a
  /// hard fault rather than silently chunked.
  bool require_resident = false;

  // Completion accounting, written by the submitter thread before the
  // ticket is published (synchronized through wait_for/drain).
  std::uint64_t interactions = 0;
  std::uint64_t hib_bytes = 0;
  double emulation_seconds = 0.0;
};

class AsyncDevice {
 public:
  struct Config {
    /// Jobs the queue holds before submit() blocks (backpressure).
    std::size_t queue_capacity = 64;
    /// Board-evaluation worker lanes attached to the device's system
    /// while this AsyncDevice exists. 0 = one lane per board; 1
    /// disables board parallelism.
    unsigned eval_threads = 0;
  };

  /// Monotone per-submission id; wait_for(t) returns once the job that
  /// got ticket t has completed.
  using Ticket = std::uint64_t;

  explicit AsyncDevice(std::shared_ptr<Grape5Device> device)
      : AsyncDevice(std::move(device), Config{}) {}
  AsyncDevice(std::shared_ptr<Grape5Device> device, const Config& config);
  /// Closes the queue, lets the submitter finish every queued job (the
  /// caller's output buffers outlive this object by the submit
  /// contract), joins it, and detaches the eval pool from the device.
  ~AsyncDevice();
  AsyncDevice(const AsyncDevice&) = delete;
  AsyncDevice& operator=(const AsyncDevice&) = delete;

  /// Enqueue a job (blocks while the queue is full). The returned
  /// ticket orders completion; see the synchronization contract above.
  Ticket submit(ForceJob& job);

  /// Block until the job with this ticket has completed; rethrows the
  /// first device error if one occurred at or before it.
  void wait_for(Ticket ticket);

  /// Block until every submitted job has completed; rethrows the first
  /// device error. The device is safe to touch directly afterwards
  /// (until the next submit).
  void drain();

  /// True once a job failed on the submitter thread. Poisoned for good:
  /// later jobs complete without running; rebuild to recover.
  [[nodiscard]] bool failed() const noexcept {
    return failed_.load(std::memory_order_acquire);
  }

  /// Aggregate accounting of jobs completed since the last take.
  struct Completed {
    std::uint64_t jobs = 0;
    std::uint64_t interactions = 0;
    std::uint64_t hib_bytes = 0;
    double emulation_seconds = 0.0;  ///< emulated-datapath wall (account delta)
    double busy_seconds = 0.0;       ///< submitter wall spent processing jobs
  };
  /// Return and reset the aggregate. Call after drain() (or accept a
  /// snapshot that trails in-flight jobs).
  Completed take_completed();

  /// The wrapped device. Only safe while no jobs are in flight.
  [[nodiscard]] Grape5Device& device() noexcept { return *device_; }

  [[nodiscard]] std::size_t queue_capacity() const noexcept {
    return queue_.capacity();
  }

  [[nodiscard]] Ticket submitted() const {
    util::MutexLock lock(mutex_);
    return submitted_;
  }

  /// Jobs submitted but not yet completed. Producers use it to tell
  /// whether work they do right now overlaps device evaluation (the
  /// g5.pipeline.overlap gauge); a snapshot, racy by nature.
  [[nodiscard]] std::uint64_t in_flight() const {
    util::MutexLock lock(mutex_);
    return submitted_ - completed_;
  }

 private:
  struct Item {
    ForceJob* job = nullptr;
    Ticket ticket = 0;
    /// Caller's span path at submit time, so the job's eval span files
    /// under the phase that produced it (obs/span.hpp). Empty when
    /// instrumentation is off.
    std::string obs_path;
  };

  void submitter_loop();
  void process(Item& item);
  void publish_queue_depth();

  std::shared_ptr<Grape5Device> device_;
  /// Board-parallel eval lanes; attached to the device's system for
  /// this object's lifetime. Declared before submitter_ so the thread
  /// (which uses it) joins first on destruction.
  std::unique_ptr<util::ThreadPool> eval_pool_;
  util::BoundedQueue<Item> queue_;

  mutable util::Mutex mutex_;
  util::CondVar completed_cv_;
  /// Producer-side lock serializing {ticket allocation, enqueue} so
  /// queue order always equals ticket order, even with racing
  /// producers. Held across a potentially blocking push — safe, the
  /// consumer never takes it.
  util::Mutex submit_mutex_;
  Ticket submitted_ G5_GUARDED_BY(mutex_) = 0;
  Ticket completed_ G5_GUARDED_BY(mutex_) = 0;
  Completed totals_ G5_GUARDED_BY(mutex_);
  std::exception_ptr error_ G5_GUARDED_BY(mutex_);
  std::atomic<bool> failed_{false};

  /// Must be last: starts in the constructor and reads every member.
  util::Thread submitter_;
};

}  // namespace g5::grape
