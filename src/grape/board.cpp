#include "grape/board.hpp"

#include <stdexcept>
#include <string>

namespace g5::grape {

ProcessorBoard::ProcessorBoard(const BoardConfig& board_cfg,
                               const HostInterfaceConfig& hib_cfg,
                               const PipelineNumerics& numerics)
    : cfg_(board_cfg), pipe_(numerics), hib_(hib_cfg) {
  jmem_.resize(cfg_.jmem_capacity);
}

void ProcessorBoard::configure(const PipelineScaling& scaling) {
  pipe_.configure(scaling);
  // Stored words are invalid on the new window; require a fresh upload.
  j_count_ = 0;
}

void ProcessorBoard::set_j(std::size_t address, const Vec3d* pos,
                           const double* mass, std::size_t count) {
  if (address + count > cfg_.jmem_capacity) {
    throw std::out_of_range("j segment exceeds particle memory capacity (" +
                            std::to_string(address + count) + " > " +
                            std::to_string(cfg_.jmem_capacity) + ")");
  }
  for (std::size_t k = 0; k < count; ++k) {
    jmem_[address + k] = pipe_.encode_j(pos[k], mass[k]);
  }
  if (address + count > j_count_) j_count_ = address + count;
  hib_.record_j_upload(count);
}

void ProcessorBoard::set_j_count(std::size_t count) {
  if (count > cfg_.jmem_capacity) {
    throw std::out_of_range("j count exceeds particle memory capacity");
  }
  j_count_ = count;
}

std::size_t ProcessorBoard::run(const Vec3d* i_pos, std::size_t ni,
                                Vec3d* out_acc, double* out_pot,
                                std::uint8_t* out_saturated) {
  if (ni == 0 || j_count_ == 0) return 0;
  hib_.record_i_upload(ni);

  const std::size_t slots = cfg_.i_slots();
  for (std::size_t i = 0; i < ni; ++i) {
    IState state = pipe_.encode_i(i_pos[i]);
    // Batched j-stream: bitwise-identical to per-j interact() calls for
    // the bit-exact backend (see Pipeline::interact_batch).
    pipe_.interact_batch(state, jmem_.data(), j_count_);
    Vec3d force = pipe_.read_force(state);
    double pot = pipe_.read_potential(state);
    if (faulty_chip_ >= 0 &&
        chip_of_slot(i % slots) == static_cast<std::size_t>(faulty_chip_)) {
      force *= 1.0 + fault_gain_;
      pot *= 1.0 + fault_gain_;
    }
    out_acc[i] += force;
    out_pot[i] += pot;
    if (out_saturated != nullptr && pipe_.saturated(state)) {
      out_saturated[i] = 1;
    }
  }

  hib_.record_result_read(ni);
  return ni * j_count_;
}

void ProcessorBoard::inject_chip_fault(int chip_index, double gain_error) {
  if (chip_index >= static_cast<int>(cfg_.chips)) {
    throw std::out_of_range("chip index exceeds board");
  }
  faulty_chip_ = chip_index < 0 ? -1 : chip_index;
  fault_gain_ = gain_error;
}

}  // namespace g5::grape
