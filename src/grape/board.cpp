#include "grape/board.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace g5::grape {

namespace {

std::string capacity_message(std::size_t board, std::size_t requested,
                             std::size_t capacity) {
  std::string where = board == JmemCapacityError::kAggregate
                          ? std::string("aggregate particle memory")
                          : "board " + std::to_string(board) +
                                " particle memory";
  return "j segment exceeds " + where + " capacity (" +
         std::to_string(requested) + " > " + std::to_string(capacity) + ")";
}

/// Scale an accumulator count by the fault gain, saturating like the
/// registers do. Double round-trip precision (2^53) is far above any
/// healthy count; this is a diagnostic path (self-test) either way.
std::int64_t scale_count(std::int64_t count, double gain) {
  constexpr double kMax = 9.0e18;  // FixedAccumulator's saturation rail
  double scaled = std::nearbyint(static_cast<double>(count) * gain);
  if (scaled > kMax) scaled = kMax;
  if (scaled < -kMax) scaled = -kMax;
  return static_cast<std::int64_t>(scaled);
}

}  // namespace

JmemCapacityError::JmemCapacityError(std::size_t board, std::size_t requested,
                                     std::size_t capacity)
    : std::out_of_range(capacity_message(board, requested, capacity)),
      board_(board),
      requested_(requested),
      capacity_(capacity) {}

ProcessorBoard::ProcessorBoard(const BoardConfig& board_cfg,
                               const HostInterfaceConfig& hib_cfg,
                               const PipelineNumerics& numerics,
                               std::size_t index)
    : cfg_(board_cfg), pipe_(numerics), hib_(hib_cfg), index_(index) {
  jmem_.resize(cfg_.jmem_capacity);
}

void ProcessorBoard::configure(const PipelineScaling& scaling) {
  pipe_.configure(scaling);
  // Stored words are invalid on the new window; require a fresh upload.
  j_count_ = 0;
}

void ProcessorBoard::set_j(std::size_t address, const Vec3d* pos,
                           const double* mass, std::size_t count) {
  if (address + count > cfg_.jmem_capacity) {
    throw JmemCapacityError(index_, address + count, cfg_.jmem_capacity);
  }
  for (std::size_t k = 0; k < count; ++k) {
    jmem_[address + k] = pipe_.encode_j(pos[k], mass[k]);
  }
  if (address + count > j_count_) j_count_ = address + count;
  hib_.record_j_upload(count);
}

void ProcessorBoard::set_j_count(std::size_t count) {
  if (count > cfg_.jmem_capacity) {
    throw JmemCapacityError(index_, count, cfg_.jmem_capacity);
  }
  j_count_ = count;
}

std::size_t ProcessorBoard::run_raw(const Vec3d* i_pos, std::size_t ni,
                                    RawForce* out) {
  if (ni == 0 || j_count_ == 0) return 0;
  hib_.record_i_upload(ni);

  const std::size_t slots = cfg_.i_slots();
  for (std::size_t i = 0; i < ni; ++i) {
    IState state = pipe_.encode_i(i_pos[i]);
    // Batched j-stream: bitwise-identical to per-j interact() calls for
    // the bit-exact backend (see Pipeline::interact_batch).
    pipe_.interact_batch(state, jmem_.data(), j_count_);
    out[i] = pipe_.read_raw(state);
    if (faulty_chip_ >= 0 &&
        chip_of_slot(i % slots) == static_cast<std::size_t>(faulty_chip_)) {
      const double gain = 1.0 + fault_gain_;
      for (std::size_t c = 0; c < 3; ++c) {
        out[i].acc[c] = scale_count(out[i].acc[c], gain);
      }
      out[i].pot = scale_count(out[i].pot, gain);
    }
  }

  hib_.record_result_read(ni);
  return ni * j_count_;
}

std::size_t ProcessorBoard::run(const Vec3d* i_pos, std::size_t ni,
                                Vec3d* out_acc, double* out_pot,
                                std::uint8_t* out_saturated) {
  if (ni == 0 || j_count_ == 0) return 0;
  if (raw_scratch_.size() < ni) raw_scratch_.resize(ni);
  const std::size_t interactions = run_raw(i_pos, ni, raw_scratch_.data());
  const double fq = pipe_.force_accumulator_quantum();
  const double pq = pipe_.potential_accumulator_quantum();
  for (std::size_t i = 0; i < ni; ++i) {
    const RawForce& r = raw_scratch_[i];
    out_acc[i] += Vec3d{static_cast<double>(r.acc[0]) * fq,
                        static_cast<double>(r.acc[1]) * fq,
                        static_cast<double>(r.acc[2]) * fq};
    out_pot[i] += static_cast<double>(r.pot) * pq;
    if (out_saturated != nullptr && r.saturated) out_saturated[i] = 1;
  }
  return interactions;
}

void ProcessorBoard::inject_chip_fault(int chip_index, double gain_error) {
  if (chip_index >= static_cast<int>(cfg_.chips)) {
    throw std::out_of_range("chip index exceeds board");
  }
  faulty_chip_ = chip_index < 0 ? -1 : chip_index;
  fault_gain_ = gain_error;
}

}  // namespace g5::grape
