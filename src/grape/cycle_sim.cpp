#include "grape/cycle_sim.hpp"

#include <algorithm>

namespace g5::grape {

CycleSimResult simulate_board_call(const BoardConfig& board, std::size_t ni,
                                   std::size_t nj) {
  CycleSimResult r;
  if (ni == 0 || nj == 0) return r;

  const std::size_t slots = board.i_slots();
  const auto clock_ratio = static_cast<std::uint64_t>(
      board.pipeline_clock_hz / board.memory_clock_hz + 0.5);  // VMP factor

  std::size_t i_remaining = ni;
  while (i_remaining > 0) {
    const std::size_t loaded = std::min(slots, i_remaining);
    i_remaining -= loaded;
    ++r.passes;

    // One pass: the particle memory broadcasts one j-word per memory
    // cycle; each broadcast feeds `clock_ratio` pipeline cycles, during
    // which every physical pipeline serves its VMP-resident i-particles.
    // Slots beyond `loaded` burn the same cycles doing nothing.
    for (std::size_t j = 0; j < nj; ++j) {
      ++r.memory_cycles;
      r.pipeline_cycles += clock_ratio;
      // Interactions completed this broadcast: one per loaded slot per
      // full sweep of the VMP ring — i.e. `loaded` interactions per
      // memory cycle when full, fewer when the last pass is partial.
      r.interactions += loaded;
      r.idle_slot_cycles += slots - loaded;
    }
    // Drain: the last j-words of the pass are still in the pipeline
    // stages; the next pass cannot reuse the accumulators until they
    // land. Convert pipeline cycles to memory cycles (ceil).
    const std::uint64_t drain_mem =
        (kPipelineDepth + clock_ratio - 1) / clock_ratio;
    r.memory_cycles += drain_mem;
    r.pipeline_cycles += drain_mem * clock_ratio;
  }

  r.seconds = static_cast<double>(r.memory_cycles) / board.memory_clock_hz;
  const double peak_rate =
      static_cast<double>(board.pipelines()) * board.pipeline_clock_hz;
  r.utilization = r.seconds > 0.0
                      ? static_cast<double>(r.interactions) /
                            (r.seconds * peak_rate)
                      : 0.0;
  return r;
}

CycleSimResult simulate_system_call(const SystemConfig& system,
                                    std::size_t ni, std::size_t nj) {
  CycleSimResult worst;
  std::size_t remaining = nj;
  const std::size_t share = (nj + system.boards - 1) / system.boards;
  for (std::size_t b = 0; b < system.boards && remaining > 0; ++b) {
    const std::size_t nj_board = std::min(share, remaining);
    remaining -= nj_board;
    const CycleSimResult r = simulate_board_call(system.board, ni, nj_board);
    // Boards run in parallel: the slowest sets the wall clock, the work
    // adds up.
    if (r.seconds > worst.seconds) {
      worst.memory_cycles = r.memory_cycles;
      worst.pipeline_cycles = r.pipeline_cycles;
      worst.passes = r.passes;
      worst.seconds = r.seconds;
    }
    worst.interactions += r.interactions;
    worst.idle_slot_cycles += r.idle_slot_cycles;
  }
  const double peak_rate = system.peak_interaction_rate();
  worst.utilization = worst.seconds > 0.0
                          ? static_cast<double>(worst.interactions) /
                                (worst.seconds * peak_rate)
                          : 0.0;
  return worst;
}

}  // namespace g5::grape
