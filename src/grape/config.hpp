// Hardware configuration of the emulated GRAPE-5 system.
//
// The numbers below describe the machine the paper used (Section 2):
// 2 processor boards, 8 G5 chips per board, 2 force pipelines per chip,
// pipelines clocked at 90 MHz with the rest of the board at 15 MHz. Each
// physical pipeline is 6-way virtually multiplexed (90/15), so one
// j-particle word broadcast per 15 MHz cycle feeds 6 interactions per
// pipeline and the peak rate is 32 pipelines * 90 MHz = 2.88e9
// interactions/s = 109.44 Gflops at 38 flops per interaction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace g5::grape {

/// Counting convention for flops per pairwise interaction (Warren & Salmon;
/// used by the paper's Gflops numbers).
inline constexpr double kFlopsPerInteraction = 38.0;

/// The block-sharding rule for distributing nj j-particles over `boards`
/// boards: each board takes a contiguous block of up to ceil(nj/boards)
/// particles. The one definition shared by the timing model
/// (TimingModel::j_per_board) and the evaluation layer (BoardSet), so
/// the modeled compute time and the emulated shard sizes cannot drift
/// apart.
[[nodiscard]] constexpr std::size_t shard_share(std::size_t nj,
                                                std::size_t boards) noexcept {
  return boards == 0 ? nj : (nj + boards - 1) / boards;
}

/// Arithmetic backend of the force pipelines.
enum class BackendKind : std::uint8_t {
  /// Bit-level emulation of the GRAPE-5 datapath: fixed-point coordinates,
  /// LNS multiplicative core, fixed-point accumulators. The default, and
  /// the backend every golden / determinism / probe-calibration number in
  /// this repo refers to.
  BitExact,
  /// Plain double arithmetic on the same quantized coordinates (emulator
  /// fast path): same interactions, same i == j cut, native accumulation.
  /// Codec error vanishes (probe reports g5.err.codec ~ 0); tree error is
  /// untouched. Roughly an order of magnitude faster than BitExact.
  Native,
};

[[nodiscard]] constexpr std::string_view backend_name(BackendKind k) noexcept {
  return k == BackendKind::Native ? "native" : "bit-exact";
}

/// Parse a --backend style name; returns false on an unknown name.
[[nodiscard]] constexpr bool parse_backend(std::string_view name,
                                           BackendKind& out) noexcept {
  if (name == "bit-exact" || name == "bitexact") {
    out = BackendKind::BitExact;
    return true;
  }
  if (name == "native") {
    out = BackendKind::Native;
    return true;
  }
  return false;
}

struct PipelineNumerics {
  /// Fixed-point bits for particle coordinates (per component).
  int position_bits = 32;
  /// Fraction bits of the logarithmic format used by the multiplicative
  /// datapath.
  int lns_frac_bits = 8;
  /// Fraction bits of the r^(-3/2) table index; 0 = full lns resolution.
  /// 8 lns bits + a 7-bit table index reproduces GRAPE-5's "about 0.3 %"
  /// rms pairwise force error (0.35 % measured over log-uniform pair
  /// geometries; tests/grape_pipeline_test.cpp pins the calibration and
  /// bench_e3_accuracy sweeps it).
  int table_index_bits = 7;
  /// Fixed-point bits for the force/potential accumulators.
  int accumulator_bits = 64;
  /// If true, bypass all quantization and compute in double precision
  /// (used for ablations: "the relative accuracy was practically the same
  /// when we performed the same force calculation using standard 64-bit
  /// floating point arithmetic"). Takes precedence over `backend`.
  bool exact_arithmetic = false;
  /// Arithmetic backend of the pipeline datapath (see BackendKind).
  BackendKind backend = BackendKind::BitExact;

  /// A GRAPE-3-class datapath: the previous machine in the lineage, with
  /// an ~2 % pairwise force error (8-bit-era log format, narrower
  /// positions). Used by the generation-ablation bench.
  static PipelineNumerics grape3() {
    PipelineNumerics n;
    n.position_bits = 20;
    n.lns_frac_bits = 5;
    n.table_index_bits = 0;
    return n;
  }
};

struct BoardConfig {
  std::size_t chips = 8;
  std::size_t pipelines_per_chip = 2;
  /// Virtual multiple pipeline factor: i-particles resident per pipeline.
  std::size_t vmp_factor = 6;
  /// Capacity of the on-board particle (j) memory, in particles.
  std::size_t jmem_capacity = 131072;
  double pipeline_clock_hz = 90.0e6;
  double memory_clock_hz = 15.0e6;

  [[nodiscard]] std::size_t pipelines() const {
    return chips * pipelines_per_chip;
  }
  /// i-particles processed concurrently by one board.
  [[nodiscard]] std::size_t i_slots() const {
    return pipelines() * vmp_factor;
  }
};

struct HostInterfaceConfig {
  /// Sustained host <-> board DMA bandwidth (bytes/s). GRAPE-5's host
  /// interface board sits on 32-bit/33 MHz PCI; sustained DMA is well below
  /// the 132 MB/s burst figure.
  double bandwidth_bytes_per_s = 70.0e6;
  /// Fixed per-transfer latency (driver call + DMA setup), seconds.
  double latency_s = 15.0e-6;
  /// Bytes per j-particle word (3 coords + mass as packed words).
  std::size_t bytes_per_j = 16;
  /// Bytes per i-particle position.
  std::size_t bytes_per_i = 12;
  /// Bytes returned per force result (acc x/y/z + potential).
  std::size_t bytes_per_result = 16;
};

struct SystemConfig {
  std::size_t boards = 2;
  BoardConfig board{};
  HostInterfaceConfig hib{};
  PipelineNumerics numerics{};

  [[nodiscard]] std::size_t total_pipelines() const {
    return boards * board.pipelines();
  }
  /// Peak interaction rate (interactions/s).
  [[nodiscard]] double peak_interaction_rate() const {
    return static_cast<double>(total_pipelines()) * board.pipeline_clock_hz;
  }
  /// Theoretical peak in flops/s (the paper: 109.44e9).
  [[nodiscard]] double peak_flops() const {
    return peak_interaction_rate() * kFlopsPerInteraction;
  }
  /// Total j-memory across boards.
  [[nodiscard]] std::size_t total_jmem() const {
    return boards * board.jmem_capacity;
  }

  /// The configuration used for the paper's run.
  static SystemConfig paper_system() { return SystemConfig{}; }

  /// A GRAPE-3-class system for lineage ablations: one board of 8
  /// single-pipeline chips at 20 MHz with the low-precision datapath
  /// (~4.8 Gflops-equivalent peak at the 38-op convention; the real
  /// GRAPE-3 predates that counting, so treat it as a class stand-in).
  static SystemConfig grape3_system() {
    SystemConfig cfg;
    cfg.boards = 1;
    cfg.board.chips = 8;
    cfg.board.pipelines_per_chip = 1;
    cfg.board.vmp_factor = 1;
    cfg.board.pipeline_clock_hz = 20.0e6;
    cfg.board.memory_clock_hz = 20.0e6;
    cfg.board.jmem_capacity = 65536;
    cfg.numerics = PipelineNumerics::grape3();
    return cfg;
  }
};

/// Cost model from Section 4 of the paper.
struct CostModel {
  double board_price_jpy = 1.65e6;   ///< per GRAPE-5 board
  std::size_t boards = 2;
  double host_price_jpy = 1.4e6;     ///< AlphaServer DS10 + memory + compiler
  double jpy_per_usd = 115.0;

  [[nodiscard]] double total_jpy() const {
    return board_price_jpy * static_cast<double>(boards) + host_price_jpy;
  }
  [[nodiscard]] double total_usd() const { return total_jpy() / jpy_per_usd; }

  /// Price/performance in $/Mflops for a sustained rate in flops/s.
  [[nodiscard]] double usd_per_mflops(double sustained_flops) const {
    return total_usd() / (sustained_flops / 1.0e6);
  }
};

}  // namespace g5::grape
