#include "grape/pipeline.hpp"

#include <cmath>
#include <stdexcept>

namespace g5::grape {

using math::FixedAccumulator;
using math::LnsValue;

Pipeline::Pipeline(const PipelineNumerics& numerics)
    : numerics_(numerics),
      lns_(numerics.lns_frac_bits),
      codec_(-1.0, 1.0, numerics.position_bits) {
  lns_.set_table_index_bits(numerics.table_index_bits);
  configure(PipelineScaling{});
}

void Pipeline::configure(const PipelineScaling& scaling) {
  if (!(scaling.range_hi > scaling.range_lo)) {
    throw std::invalid_argument("pipeline range window empty");
  }
  if (scaling.force_quantum <= 0.0 || scaling.potential_quantum <= 0.0) {
    throw std::invalid_argument("accumulator quanta must be > 0");
  }
  scaling_ = scaling;
  codec_ = math::FixedPointCodec(scaling.range_lo, scaling.range_hi,
                                 numerics_.position_bits);
  eps2_ = scaling.eps * scaling.eps;
}

JWord Pipeline::encode_j(const Vec3d& pos, double mass) const {
  JWord j;
  for (std::size_t c = 0; c < 3; ++c) j.x[c] = codec_.encode(pos[c]);
  j.mass = lns_.from_double(mass);
  j.mass_exact = mass;
  return j;
}

IState Pipeline::encode_i(const Vec3d& pos) const {
  IState s;
  for (std::size_t c = 0; c < 3; ++c) s.x[c] = codec_.encode(pos[c]);
  s.x_exact = pos;
  for (auto& a : s.acc) a = FixedAccumulator(scaling_.force_quantum);
  s.pot = FixedAccumulator(scaling_.potential_quantum);
  return s;
}

void Pipeline::interact(IState& i_state, const JWord& j) const {
  if (numerics_.exact_arithmetic) {
    interact_exact(i_state, j);
    return;
  }

  // 1. Coordinate differences: exact fixed-point subtraction, then the
  //    difference enters the log-format datapath (one conversion rounding
  //    per component).
  const double q = codec_.quantum();
  LnsValue dx[3];
  bool all_zero = true;
  for (int c = 0; c < 3; ++c) {
    const std::int64_t d = j.x[c] - i_state.x[c];
    if (d != 0) all_zero = false;
    dx[c] = lns_.from_double(static_cast<double>(d) * q);
  }
  // Self-interaction cut: the pipeline drops pairs whose fixed-point
  // coordinates coincide (the hardware's i == j detection). The force of
  // such a pair is exactly zero anyway; cutting it also keeps the
  // softened self-potential -m/eps out of the accumulators, so the host
  // needs no (format-error-prone) correction.
  if (all_zero) return;

  // 2. Squares in log format (exact shifts), summed with eps^2 by the
  //    block-normalized adder, modeled as an exact add re-quantized to the
  //    log format.
  double r2 = eps2_;
  for (const auto& d : dx) r2 += lns_.to_double(lns_.square(d));
  const LnsValue r2_lns = lns_.from_double(r2);

  // 3. g = (r^2)^(-3/2) (table unit) and h = (r^2)^(-1/2) (potential unit).
  const LnsValue g = lns_.pow_neg_3_2(r2_lns);
  const LnsValue h = lns_.pow_neg_1_2(r2_lns);

  // 4. Products m*g and m*g*dx in log format (integer adds), then the
  //    fixed-point accumulators pick up the converted results.
  const LnsValue mg = lns_.mul(j.mass, g);
  for (int c = 0; c < 3; ++c) {
    i_state.acc[c].add(lns_.to_double(lns_.mul(mg, dx[c])));
  }
  i_state.pot.add(-lns_.to_double(lns_.mul(j.mass, h)));
}

void Pipeline::interact_exact(IState& i_state, const JWord& j) const {
  const double q = codec_.quantum();
  Vec3d dx;
  for (std::size_t c = 0; c < 3; ++c) {
    dx[c] = static_cast<double>(j.x[c] - i_state.x[c]) * q;
  }
  if (dx.norm2() == 0.0) return;  // the same i == j cut as the lns path
  const double r2 = dx.norm2() + eps2_;
  if (r2 == 0.0) return;
  const double rinv = 1.0 / std::sqrt(r2);
  const double mg = j.mass_exact * rinv * rinv * rinv;
  for (std::size_t c = 0; c < 3; ++c) i_state.acc[c].add(mg * dx[c]);
  i_state.pot.add(-j.mass_exact * rinv);
}

Vec3d Pipeline::read_force(const IState& i_state) const {
  return {i_state.acc[0].value(), i_state.acc[1].value(),
          i_state.acc[2].value()};
}

double Pipeline::read_potential(const IState& i_state) const {
  return i_state.pot.value();
}

bool Pipeline::saturated(const IState& i_state) const {
  return i_state.acc[0].saturated() || i_state.acc[1].saturated() ||
         i_state.acc[2].saturated() || i_state.pot.saturated();
}

}  // namespace g5::grape
