#include "grape/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace g5::grape {

using math::Fixed20;
using math::FixedAccumulator;
using math::FixedDelta;
using math::LnsValue;

void derive_scaling_quanta(PipelineScaling& s, double mass_scale) noexcept {
  const double width = s.range_hi - s.range_lo;
  const double m = mass_scale > 0.0 ? mass_scale : 1.0;
  s.force_quantum =
      m / (width * width) * std::ldexp(1.0, -kAccumulatorGuardBits);
  s.potential_quantum = m / width * std::ldexp(1.0, -kAccumulatorGuardBits);
}

Pipeline::Pipeline(const PipelineNumerics& numerics)
    : numerics_(numerics),
      lns_(numerics.lns_frac_bits),
      codec_(-1.0, 1.0, numerics.position_bits) {
  lns_.set_table_index_bits(numerics.table_index_bits);
  configure(PipelineScaling{});
}

void Pipeline::configure(const PipelineScaling& scaling) {
  if (!(scaling.range_hi > scaling.range_lo)) {
    throw std::invalid_argument("pipeline range window empty");
  }
  if (scaling.force_quantum <= 0.0 || scaling.potential_quantum <= 0.0) {
    throw std::invalid_argument("accumulator quanta must be > 0");
  }
  scaling_ = scaling;
  codec_ = math::FixedPointCodec(scaling.range_lo, scaling.range_hi,
                                 numerics_.position_bits);
  eps2_ = scaling.eps * scaling.eps;
}

JWord Pipeline::encode_j(const Vec3d& pos, double mass) const {
  JWord j;
  for (std::size_t c = 0; c < 3; ++c) j.x[c] = codec_.encode(pos[c]);
  j.mass = lns_.from_double(mass);
  j.mass_exact = mass;
  return j;
}

double Pipeline::force_accumulator_quantum() const noexcept {
  return numerics_.backend == BackendKind::Native && !numerics_.exact_arithmetic
             ? std::ldexp(scaling_.force_quantum, -kNativeAccumulatorExtraBits)
             : scaling_.force_quantum;
}

double Pipeline::potential_accumulator_quantum() const noexcept {
  return numerics_.backend == BackendKind::Native && !numerics_.exact_arithmetic
             ? std::ldexp(scaling_.potential_quantum,
                          -kNativeAccumulatorExtraBits)
             : scaling_.potential_quantum;
}

IState Pipeline::encode_i(const Vec3d& pos) const {
  IState s;
  for (std::size_t c = 0; c < 3; ++c) s.x[c] = codec_.encode(pos[c]);
  s.x_exact = pos;
  for (auto& a : s.acc) a = FixedAccumulator(force_accumulator_quantum());
  s.pot = FixedAccumulator(potential_accumulator_quantum());
  return s;
}

void Pipeline::interact(IState& i_state, const JWord& j) const {
  if (numerics_.exact_arithmetic) {
    interact_exact(i_state, j);
    return;
  }
  if (numerics_.backend == BackendKind::Native) {
    interact_batch_native(i_state, &j, 1);
    return;
  }

  // The scalar reference datapath. interact_batch_lns applies exactly
  // these operations per lane in the same accumulation order, and the
  // backend-equivalence tests pin the two bitwise against each other.
  //
  // 1. Coordinate differences: exact fixed-point subtraction (the strong
  //    FixedDelta word), then the difference enters the log-format
  //    datapath via the codec (one conversion rounding per component).
  LnsValue dx[3];
  FixedDelta d[3];
  for (int c = 0; c < 3; ++c) {
    d[c] = j.x[c] - i_state.x[c];
    dx[c] = lns_.from_double(codec_.delta_to_double(d[c]));
  }
  // Self-interaction cut: the pipeline drops pairs whose fixed-point
  // coordinates coincide (the hardware's i == j detection). The force of
  // such a pair is exactly zero anyway; cutting it also keeps the
  // softened self-potential -m/eps out of the accumulators, so the host
  // needs no (format-error-prone) correction.
  if (math::coincident(d[0], d[1], d[2])) return;

  // 2. Squares in log format (exact shifts), summed with eps^2 by the
  //    block-normalized adder, modeled as an exact add re-quantized to the
  //    log format.
  double r2 = eps2_;
  for (const auto& dc : dx) r2 += lns_.to_double(lns_.square(dc));
  const LnsValue r2_lns = lns_.from_double(r2);

  // 3. g = (r^2)^(-3/2) (table unit) and h = (r^2)^(-1/2) (potential unit).
  const LnsValue g = lns_.pow_neg_3_2(r2_lns);
  const LnsValue h = lns_.pow_neg_1_2(r2_lns);

  // 4. Products m*g and m*g*dx in log format (integer adds), then the
  //    fixed-point accumulators pick up the converted results.
  const LnsValue mg = lns_.mul(j.mass, g);
  for (int c = 0; c < 3; ++c) {
    i_state.acc[c].add(lns_.to_double(lns_.mul(mg, dx[c])));
  }
  i_state.pot.add(-lns_.to_double(lns_.mul(j.mass, h)));
}

void Pipeline::interact_batch(IState& i_state, const JWord* j,
                              std::size_t count) const {
  if (count == 0) return;
  if (numerics_.exact_arithmetic) {
    for (std::size_t k = 0; k < count; ++k) interact_exact(i_state, j[k]);
    return;
  }
  if (numerics_.backend == BackendKind::Native) {
    interact_batch_native(i_state, j, count);
    return;
  }
  interact_batch_lns(i_state, j, count);
}

// g5lint: hot-begin(pipeline-batch) — the per-interaction kernels; no
// allocation, no unreserved growth (every lane buffer is a stack array).
void Pipeline::interact_batch_lns(IState& i_state, const JWord* j,
                                  std::size_t count) const {
  constexpr std::size_t W = kBatchWidth;
  const Fixed20 xi0 = i_state.x[0];
  const Fixed20 xi1 = i_state.x[1];
  const Fixed20 xi2 = i_state.x[2];
  for (std::size_t base = 0; base < count; base += W) {
    const std::size_t n = std::min(W, count - base);

    // Stage 1: exact fixed-point differences plus the i == j cut, on
    // integer lanes.
    FixedDelta d[3][W];
    bool live[W];
    for (std::size_t l = 0; l < n; ++l) {
      const JWord& jw = j[base + l];
      d[0][l] = jw.x[0] - xi0;
      d[1][l] = jw.x[1] - xi1;
      d[2][l] = jw.x[2] - xi2;
      live[l] = !math::coincident(d[0][l], d[1][l], d[2][l]);
    }

    // Stage 2: the differences enter the log format (one conversion
    // rounding per component, as in the scalar path).
    LnsValue dx[3][W];
    for (std::size_t c = 0; c < 3; ++c) {
      for (std::size_t l = 0; l < n; ++l) {
        dx[c][l] = lns_.from_double(codec_.delta_to_double(d[c][l]));
      }
    }

    // Stage 3: squares (exact log shifts) + the block-normalized r^2 add,
    // re-encoded. The component order matches the scalar loop.
    LnsValue r2w[W];
    for (std::size_t l = 0; l < n; ++l) {
      double r2 = eps2_;
      r2 += lns_.to_double(lns_.square(dx[0][l]));
      r2 += lns_.to_double(lns_.square(dx[1][l]));
      r2 += lns_.to_double(lns_.square(dx[2][l]));
      r2w[l] = lns_.from_double(r2);
    }

    // Stage 4: power units + the m*g / m*g*dx / m*h products — integer
    // adds on the log words across lanes.
    LnsValue fout[3][W];
    LnsValue pout[W];
    for (std::size_t l = 0; l < n; ++l) {
      const LnsValue g = lns_.pow_neg_3_2(r2w[l]);
      const LnsValue h = lns_.pow_neg_1_2(r2w[l]);
      const LnsValue mg = lns_.mul(j[base + l].mass, g);
      fout[0][l] = lns_.mul(mg, dx[0][l]);
      fout[1][l] = lns_.mul(mg, dx[1][l]);
      fout[2][l] = lns_.mul(mg, dx[2][l]);
      pout[l] = lns_.mul(j[base + l].mass, h);
    }

    // Stage 5: decode lanes (table lookups) and drain them into the
    // fixed-point accumulators in stream order — the identical add
    // sequence as the scalar path, so the sums are bitwise-identical.
    double fx[3][W];
    double fp[W];
    for (std::size_t c = 0; c < 3; ++c) {
      for (std::size_t l = 0; l < n; ++l) {
        fx[c][l] = lns_.to_double(fout[c][l]);
      }
    }
    for (std::size_t l = 0; l < n; ++l) fp[l] = lns_.to_double(pout[l]);
    for (std::size_t l = 0; l < n; ++l) {
      if (!live[l]) continue;
      i_state.acc[0].add(fx[0][l]);
      i_state.acc[1].add(fx[1][l]);
      i_state.acc[2].add(fx[2][l]);
      i_state.pot.add(-fp[l]);
    }
  }
}

void Pipeline::interact_batch_native(IState& i_state, const JWord* j,
                                     std::size_t count) const {
  constexpr std::size_t W = kBatchWidth;
  const Fixed20 xi0 = i_state.x[0];
  const Fixed20 xi1 = i_state.x[1];
  const Fixed20 xi2 = i_state.x[2];
  for (std::size_t base = 0; base < count; base += W) {
    const std::size_t n = std::min(W, count - base);
    double gx[W];
    double gy[W];
    double gz[W];
    double gp[W];
    bool divergent = false;
    for (std::size_t l = 0; l < n; ++l) {
      const JWord& jw = j[base + l];
      const FixedDelta d0 = jw.x[0] - xi0;
      const FixedDelta d1 = jw.x[1] - xi1;
      const FixedDelta d2 = jw.x[2] - xi2;
      const double dx = codec_.delta_to_double(d0);
      const double dy = codec_.delta_to_double(d1);
      const double dz = codec_.delta_to_double(d2);
      const double r2 = dx * dx + dy * dy + dz * dz + eps2_;
      // Masked lanes — the i == j cut and the divergent r2 == 0 corner —
      // take a benign r2 so the rsqrt lane stays finite; their weight is
      // zero. The rare divergent corner is patched below.
      const bool cut = math::coincident(d0, d1, d2);
      const bool dead = cut || r2 == 0.0;
      divergent = divergent || (!cut && r2 == 0.0);
      const double r2_eff = dead ? 1.0 : r2;
      const double rinv = 1.0 / std::sqrt(r2_eff);
      const double mg =
          (dead ? 0.0 : 1.0) * jw.mass_exact * (rinv * rinv * rinv);
      gx[l] = mg * dx;
      gy[l] = mg * dy;
      gz[l] = mg * dz;
      gp[l] = (dead ? 0.0 : 1.0) * jw.mass_exact * rinv;
    }
    if (divergent) [[unlikely]] {
      // A non-coincident pair's r^2 underflowed to zero (only reachable
      // with eps == 0): the bit-exact datapath saturates — infinite
      // potential, force along the components that survived in double.
      const double inf = std::numeric_limits<double>::infinity();
      for (std::size_t l = 0; l < n; ++l) {
        const JWord& jw = j[base + l];
        const FixedDelta d0 = jw.x[0] - xi0;
        const FixedDelta d1 = jw.x[1] - xi1;
        const FixedDelta d2 = jw.x[2] - xi2;
        if (math::coincident(d0, d1, d2)) continue;
        const double dx = codec_.delta_to_double(d0);
        const double dy = codec_.delta_to_double(d1);
        const double dz = codec_.delta_to_double(d2);
        if (dx * dx + dy * dy + dz * dz + eps2_ != 0.0) continue;
        const double ms = jw.mass_exact < 0.0 ? -1.0 : 1.0;
        gx[l] = dx != 0.0 ? ms * std::copysign(inf, dx) : 0.0;
        gy[l] = dy != 0.0 ? ms * std::copysign(inf, dy) : 0.0;
        gz[l] = dz != 0.0 ? ms * std::copysign(inf, dz) : 0.0;
        gp[l] = ms * inf;
      }
    }
    // Drain into the fixed-point accumulators per interaction, in
    // stream order. Each lane quantizes independently onto the finer
    // Native grid (kNativeAccumulatorExtraBits), so the sum does not
    // depend on where batch — or board-shard — boundaries fall.
    for (std::size_t l = 0; l < n; ++l) {
      i_state.acc[0].add(gx[l]);
      i_state.acc[1].add(gy[l]);
      i_state.acc[2].add(gz[l]);
      i_state.pot.add(-gp[l]);
    }
  }
}
// g5lint: hot-end

void Pipeline::interact_exact(IState& i_state, const JWord& j) const {
  FixedDelta d[3];
  Vec3d dx;
  for (std::size_t c = 0; c < 3; ++c) {
    d[c] = j.x[c] - i_state.x[c];
    dx[c] = codec_.delta_to_double(d[c]);
  }
  // The same i == j cut as the lns path: fixed-point coincidence.
  if (math::coincident(d[0], d[1], d[2])) return;
  const double r2 = dx.norm2() + eps2_;
  if (r2 == 0.0) {
    // Non-coincident pair whose r^2 underflowed with eps == 0: the lns
    // datapath saturates its accumulators here; mirror that rather than
    // silently dropping a divergent pair.
    const double inf = std::numeric_limits<double>::infinity();
    const double ms = j.mass_exact < 0.0 ? -1.0 : 1.0;
    for (std::size_t c = 0; c < 3; ++c) {
      if (dx[c] != 0.0) i_state.acc[c].add(ms * std::copysign(inf, dx[c]));
    }
    i_state.pot.add(-ms * inf);
    return;
  }
  const double rinv = 1.0 / std::sqrt(r2);
  const double mg = j.mass_exact * rinv * rinv * rinv;
  for (std::size_t c = 0; c < 3; ++c) i_state.acc[c].add(mg * dx[c]);
  i_state.pot.add(-j.mass_exact * rinv);
}

Vec3d Pipeline::read_force(const IState& i_state) const {
  return {i_state.acc[0].value(), i_state.acc[1].value(),
          i_state.acc[2].value()};
}

double Pipeline::read_potential(const IState& i_state) const {
  return i_state.pot.value();
}

bool Pipeline::saturated(const IState& i_state) const {
  return i_state.acc[0].saturated() || i_state.acc[1].saturated() ||
         i_state.acc[2].saturated() || i_state.pot.saturated();
}

RawForce Pipeline::read_raw(const IState& i_state) const {
  RawForce r;
  for (std::size_t c = 0; c < 3; ++c) r.acc[c] = i_state.acc[c].raw();
  r.pot = i_state.pot.raw();
  r.saturated = saturated(i_state);
  return r;
}

}  // namespace g5::grape
