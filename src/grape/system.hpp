// The whole GRAPE-5 system: a BoardSet of processor boards behind their
// host interfaces, a shared scaling state, the timing model and the work
// account. This is the C++ face of the hardware; the C-style g5_* driver
// (grape/driver.hpp) is a thin veneer over it.
//
// Work distribution follows the real system: the *j*-particles (field
// sources) are block-partitioned over the boards (grape/board_set.hpp),
// every board evaluates every i-particle against its share, and the host
// merges the partial sums — in the integer accumulator domain, so the
// result is bitwise-identical for any board count (docs/scaling.md).
// set_j_particles handles the partitioning; the driver layer handles
// chunking when a j-set exceeds the aggregate particle memory.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "grape/board.hpp"
#include "grape/board_set.hpp"
#include "grape/config.hpp"
#include "grape/timing.hpp"
#include "math/vec3.hpp"

namespace g5::util {
class ThreadPool;
}

namespace g5::grape {

class Grape5System {
 public:
  explicit Grape5System(const SystemConfig& config = SystemConfig{});

  [[nodiscard]] const SystemConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const TimingModel& timing() const noexcept { return timing_; }

  /// Set the coordinate window and softening; invalidates resident j-sets.
  /// `mass_scale` feeds the accumulator quanta (pass the total mass of the
  /// j-population, or 0 to defer to set_j_particles' automatic choice).
  void set_range(double lo, double hi, double eps, double mass_scale = 0.0);

  /// Upload a full j-set, block-partitioned across the boards. Throws
  /// JmemCapacityError if the set exceeds the aggregate particle memory.
  void set_j_particles(std::span<const Vec3d> pos, std::span<const double> mass);

  /// Evaluate the forces of the resident j-set on the given i-particles.
  /// Accumulates modeled time and interaction counts. `out_acc`/`out_pot`
  /// are overwritten (not accumulated). Returns interactions computed.
  std::size_t compute(std::span<const Vec3d> i_pos, std::span<Vec3d> out_acc,
                      std::span<double> out_pot);

  /// compute() in the raw accumulator domain: merge this call's integer
  /// partial sums into `raw` WITHOUT clearing it. Callers that stream a
  /// large j-set in chunks accumulate every chunk's counts here and
  /// convert to doubles once at the end, which keeps the result
  /// bitwise-independent of both the chunking and the board count
  /// (grape/driver.cpp does exactly this). Carries the same accounting
  /// and observability as compute(). Returns interactions computed.
  std::size_t compute_raw(std::span<const Vec3d> i_pos,
                          std::span<RawForce> raw);

  /// Number of j-particles currently resident (across boards).
  [[nodiscard]] std::size_t resident_j() const noexcept {
    return set_.resident_j();
  }

  /// Aggregate j-memory capacity.
  [[nodiscard]] std::size_t jmem_capacity() const noexcept {
    return cfg_.total_jmem();
  }

  /// True if any i-particle of any call since the last reset saturated an
  /// accumulator (would indicate a mis-set range window).
  [[nodiscard]] bool any_saturation() const noexcept { return saturated_; }

  [[nodiscard]] const HardwareAccount& account() const noexcept {
    return account_;
  }
  void reset_account();

  /// Communication meters (aggregated over boards).
  [[nodiscard]] std::uint64_t bytes_moved() const;

  /// Attach a worker pool that compute() hands to the BoardSet to run the
  /// emulated boards concurrently (the silicon boards always ran
  /// concurrently; the emulation is serial only for want of host cores).
  /// Each board writes a private raw-count scratch and the host merges
  /// them in board order in the integer domain, so results are
  /// bitwise-identical to the serial path. The caller owns the pool and
  /// must keep it alive until it detaches with nullptr; compute() itself
  /// remains single-caller (one compute at a time), as before.
  void set_eval_pool(util::ThreadPool* pool) noexcept { eval_pool_ = pool; }
  [[nodiscard]] util::ThreadPool* eval_pool() const noexcept {
    return eval_pool_;
  }

  [[nodiscard]] const PipelineScaling& scaling() const noexcept {
    return scaling_;
  }

  /// Direct pipeline access for tests (board 0's pipeline).
  [[nodiscard]] const Pipeline& pipeline() const {
    return set_.board(0).pipeline();
  }

  /// The board cluster (self-test, fault injection, diagnostics).
  [[nodiscard]] BoardSet& board_set() noexcept { return set_; }
  [[nodiscard]] const BoardSet& board_set() const noexcept { return set_; }
  [[nodiscard]] std::size_t board_count() const noexcept {
    return set_.size();
  }
  [[nodiscard]] ProcessorBoard& board(std::size_t idx) {
    return set_.board(idx);
  }
  [[nodiscard]] const ProcessorBoard& board(std::size_t idx) const {
    return set_.board(idx);
  }

 private:
  SystemConfig cfg_;
  TimingModel timing_;
  BoardSet set_;
  PipelineScaling scaling_;
  bool range_set_ = false;
  bool saturated_ = false;
  HardwareAccount account_;
  /// bytes_moved() value already published to the obs byte counter;
  /// lets set_j_particles/compute emit per-call deltas cheaply.
  std::uint64_t counted_bytes_ = 0;

  util::ThreadPool* eval_pool_ = nullptr;  ///< not owned; see set_eval_pool
  /// compute()'s merged integer partial sums before the one conversion.
  std::vector<RawForce> raw_merge_;

  /// Publish the HIB byte-meter delta and occupancy to g5::obs (no-op
  /// when instrumentation is off).
  void publish_obs_metrics();
};

}  // namespace g5::grape
