// One GRAPE-5 processor board: 8 G5 chips (16 pipelines) plus the particle
// data memory holding the j-particles it is responsible for.
//
// The emulator collapses the 16 physical pipelines into a loop — they are
// numerically identical — but preserves the architectural quantities the
// timing model charges for: the j-memory capacity, the VMP i-slot count,
// and the number of streaming passes.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "grape/config.hpp"
#include "grape/hib.hpp"
#include "grape/pipeline.hpp"

namespace g5::grape {

/// Typed error for a j-upload that exceeds a board's particle memory (or
/// the BoardSet's aggregate capacity). Derives from std::out_of_range so
/// call sites written against the historical driver contract keep
/// working; new code catches the typed form and reads which board
/// rejected how much against what capacity. Counts are in particles.
class JmemCapacityError : public std::out_of_range {
 public:
  /// board() value when the aggregate (whole-set) check failed rather
  /// than a single board's.
  static constexpr std::size_t kAggregate = static_cast<std::size_t>(-1);

  JmemCapacityError(std::size_t board, std::size_t requested,
                    std::size_t capacity);

  [[nodiscard]] std::size_t board() const noexcept { return board_; }
  [[nodiscard]] std::size_t requested() const noexcept { return requested_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  std::size_t board_;
  std::size_t requested_;
  std::size_t capacity_;
};

class ProcessorBoard {
 public:
  /// `index` is the board's position in its BoardSet, used only to label
  /// capacity errors and diagnostics (standalone boards default to 0).
  ProcessorBoard(const BoardConfig& board_cfg,
                 const HostInterfaceConfig& hib_cfg,
                 const PipelineNumerics& numerics, std::size_t index = 0);

  /// Reconfigure scaling (range window / eps / accumulator quanta); the
  /// resident j-set must be re-uploaded afterwards (the stored words were
  /// quantized on the old window).
  void configure(const PipelineScaling& scaling);

  /// Load j-particles into the particle memory starting at `address`.
  /// Throws if the segment exceeds the memory capacity.
  void set_j(std::size_t address, const Vec3d* pos, const double* mass,
             std::size_t count);

  /// Number of valid j-particles (highest loaded address + 1).
  [[nodiscard]] std::size_t j_count() const noexcept { return j_count_; }

  /// Truncate the valid j range (e.g. when a new, shorter set is loaded).
  void set_j_count(std::size_t count);

  /// Evaluate forces from this board's resident j-set on `ni` i-particles.
  /// Adds into out_acc/out_pot (partial sums across boards). Sets
  /// out_saturated[i] nonzero where an accumulator saturated. Returns the
  /// number of interactions computed.
  std::size_t run(const Vec3d* i_pos, std::size_t ni, Vec3d* out_acc,
                  double* out_pot, std::uint8_t* out_saturated = nullptr);

  /// Raw-readout run: overwrite out[i] with this board's integer partial
  /// sums (counts of the accumulator quanta — see grape::RawForce). This
  /// is the multi-board evaluation path: BoardSet merges the per-board
  /// counts exactly, so the reduction is bitwise-identical to streaming
  /// the whole j-set through one board. Returns interactions computed.
  std::size_t run_raw(const Vec3d* i_pos, std::size_t ni, RawForce* out);

  [[nodiscard]] const BoardConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const Pipeline& pipeline() const noexcept { return pipe_; }
  [[nodiscard]] HostInterface& hib() noexcept { return hib_; }
  [[nodiscard]] const HostInterface& hib() const noexcept { return hib_; }

  /// Fault injection for self-test validation: chip `chip_index` produces
  /// forces scaled by (1 + gain_error) — the signature of a marginal
  /// multiplier. -1 clears the fault. i-particles map to chips through
  /// the virtual-pipeline slot assignment, as in the hardware.
  void inject_chip_fault(int chip_index, double gain_error = 1.0 / 16.0);
  [[nodiscard]] int faulty_chip() const noexcept { return faulty_chip_; }

  /// Position of this board in its BoardSet (0 for standalone boards).
  [[nodiscard]] std::size_t index() const noexcept { return index_; }

 private:
  BoardConfig cfg_;
  Pipeline pipe_;
  HostInterface hib_;
  std::vector<JWord> jmem_;
  std::size_t j_count_ = 0;
  std::size_t index_ = 0;
  int faulty_chip_ = -1;
  double fault_gain_ = 0.0;
  std::vector<RawForce> raw_scratch_;  ///< run()'s readout staging

  /// Chip handling i-slot `slot` (slots cycle over pipelines, VMP-deep).
  [[nodiscard]] std::size_t chip_of_slot(std::size_t slot) const {
    const std::size_t pipeline = (slot / cfg_.vmp_factor) %
                                 cfg_.pipelines();
    return pipeline / cfg_.pipelines_per_chip;
  }
};

}  // namespace g5::grape
