#include "grape/host_reference.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace g5::grape {

void pairwise(const Vec3d& xi, const Vec3d& xj, double mj, double eps,
              Vec3d& acc_out, double& pot_out) {
  const Vec3d dx = xj - xi;
  const double r2 = dx.norm2() + eps * eps;
  if (r2 == 0.0) {
    acc_out = Vec3d{};
    pot_out = 0.0;
    return;
  }
  const double rinv = 1.0 / std::sqrt(r2);
  const double rinv3 = rinv * rinv * rinv;
  acc_out = (mj * rinv3) * dx;
  pot_out = -mj * rinv;
}

void host_direct_self(std::span<const Vec3d> pos, std::span<const double> mass,
                      double eps, std::span<Vec3d> acc,
                      std::span<double> pot) {
  const std::size_t n = pos.size();
  if (mass.size() != n || acc.size() != n || pot.size() != n) {
    throw std::invalid_argument("host_direct_self: arity mismatch");
  }
  std::fill(acc.begin(), acc.end(), Vec3d{});
  std::fill(pot.begin(), pot.end(), 0.0);
  const double eps2 = eps * eps;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const Vec3d dx = pos[j] - pos[i];
      const double r2 = dx.norm2() + eps2;
      if (r2 == 0.0) continue;
      const double rinv = 1.0 / std::sqrt(r2);
      const double rinv3 = rinv * rinv * rinv;
      acc[i] += (mass[j] * rinv3) * dx;
      acc[j] -= (mass[i] * rinv3) * dx;
      pot[i] -= mass[j] * rinv;
      pot[j] -= mass[i] * rinv;
    }
  }
}

void host_forces_on_targets(std::span<const Vec3d> i_pos,
                            std::span<const Vec3d> j_pos,
                            std::span<const double> j_mass, double eps,
                            std::span<Vec3d> acc, std::span<double> pot,
                            std::span<const double> i_mass) {
  const std::size_t ni = i_pos.size();
  const std::size_t nj = j_pos.size();
  if (j_mass.size() != nj || acc.size() != ni || pot.size() != ni) {
    throw std::invalid_argument("host_forces_on_targets: arity mismatch");
  }
  const double eps2 = eps * eps;
  const bool self_aware = !i_mass.empty() && eps2 > 0.0;
  for (std::size_t i = 0; i < ni; ++i) {
    Vec3d a{};
    double p = 0.0;
    double coincident_mass = 0.0;
    const Vec3d xi = i_pos[i];
    for (std::size_t j = 0; j < nj; ++j) {
      const Vec3d dx = j_pos[j] - xi;
      if (dx.norm2() == 0.0) {
        coincident_mass += j_mass[j];  // see evaluate_list_host
        continue;
      }
      const double r2 = dx.norm2() + eps2;
      const double rinv = 1.0 / std::sqrt(r2);
      const double rinv3 = rinv * rinv * rinv;
      a += (j_mass[j] * rinv3) * dx;
      p -= j_mass[j] * rinv;
    }
    if (self_aware) {
      const double excess = coincident_mass - i_mass[i];
      if (excess != 0.0) p -= excess / std::sqrt(eps2);
    }
    acc[i] = a;
    pot[i] = p;
  }
}

}  // namespace g5::grape
