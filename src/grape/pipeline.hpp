// Bit-level emulation of one G5 force pipeline.
//
// The G5 chip evaluates, for each resident i-particle and a stream of
// j-particles,
//
//   a_i  = sum_j m_j (x_j - x_i) / (|x_j - x_i|^2 + eps^2)^(3/2)
//   p_i  = sum_j m_j / (|x_j - x_i|^2 + eps^2)^(1/2)
//
// with the hardware number formats:
//   * coordinates: fixed point (position_bits per component) on the window
//     set by g5_set_range; the subtraction x_j - x_i is exact in fixed
//     point;
//   * the multiplicative core (squares, the (.)^(-3/2) and (.)^(-1/2)
//     units, the m_j * g * dx products): short logarithmic format with
//     lns_frac_bits fractional bits — multiplication is an integer add of
//     log words, powers are shifts, and rounding happens only at format
//     conversions;
//   * the sum dx^2+dy^2+dz^2+eps^2: block-normalized add, modeled as an
//     exact sum re-quantized into the log format (one conversion rounding);
//   * accumulation: wide fixed point (64-bit) on a per-call force quantum.
//
// lns_frac_bits = 8 lands the pairwise rms relative force error at ~0.3 %,
// the figure the paper quotes for GRAPE-5; the calibration is pinned by
// tests/grape_pipeline_test.cpp and swept by bench_e3_accuracy.
#pragma once

#include <cstdint>
#include <type_traits>
#include <vector>

#include "grape/config.hpp"
#include "math/fixed.hpp"
#include "math/lns.hpp"
#include "math/vec3.hpp"

namespace g5::grape {

using math::Vec3d;

/// A j-particle as stored in the on-board particle memory: quantized
/// coordinates (strong fixed-point words — assigning a host double here
/// does not compile) plus the mass in log format.
struct JWord {
  math::Fixed20 x[3] = {};
  math::LnsValue mass{};
  double mass_exact = 0.0;  ///< used only when exact_arithmetic is on
};

/// An i-particle resident in a pipeline: quantized coordinates and the
/// fixed-point force/potential accumulators. Every backend accumulates
/// in the fixed-point registers (the Native backend on a finer quantum —
/// see kNativeAccumulatorExtraBits), so per-interaction contributions
/// commute exactly and multi-board partial sums merge bitwise.
struct IState {
  math::Fixed20 x[3] = {};
  Vec3d x_exact{};  ///< used only when exact_arithmetic is on
  math::FixedAccumulator acc[3] = {math::FixedAccumulator(1.0),
                                   math::FixedAccumulator(1.0),
                                   math::FixedAccumulator(1.0)};
  math::FixedAccumulator pot = math::FixedAccumulator(1.0);
};

/// Raw readout of one i-slot: the integer accumulator registers (counts
/// of the call's force/potential quantum) plus the saturation flag.
/// Integer addition is exact and associative, so partial sums produced
/// by different boards merge in this domain without the double-rounding
/// a host-side `n1*q + n2*q` reduction would introduce; the BoardSet
/// reduction (grape/board_set.hpp) converts to doubles exactly once,
/// after the merge.
struct RawForce {
  std::int64_t acc[3] = {0, 0, 0};
  std::int64_t pot = 0;
  bool saturated = false;
};

// The strong coordinate words are layout-identical to the raw int64
// codes they replaced, so the on-board particle-memory image (and the
// SoA staging the batched kernel does) is the same bytes as before.
static_assert(sizeof(JWord::x) == 3 * sizeof(std::int64_t));
static_assert(std::is_trivially_copyable_v<JWord>);

/// The per-call scaling state shared by all pipelines of the system
/// (coordinate window, softening, accumulator quanta).
struct PipelineScaling {
  double range_lo = -1.0;
  double range_hi = 1.0;
  double eps = 0.0;
  /// Accumulator quanta (set by the driver from the mass scale; see
  /// Grape5System::prepare_scaling).
  double force_quantum = 1e-18;
  double potential_quantum = 1e-18;
};

/// Headroom of the 64-bit fixed-point accumulators: the quantum sits
/// 2^-34 below the largest expected per-call sum, leaving ~2^34 codes of
/// guard range above it before saturation.
inline constexpr int kAccumulatorGuardBits = 34;

/// The Native backend quantizes each double interaction onto a finer
/// accumulator grid (2^-6 of the bit-exact quantum, i.e. 40 effective
/// guard bits). Quantizing *per interaction* makes the sum independent
/// of batch and shard boundaries — the property GRAPE-6 bought with
/// fixed-point accumulators behind its floating pipelines (Makino et
/// al. 2003) and the reason --boards is bitwise-invariant for Native
/// too. The rounding noise (~2^-40 of the force scale per interaction)
/// sits ~4 decades below the coordinate-quantization floor the probe
/// measures, and the remaining headroom (~2^23 above the expected
/// per-call maximum) keeps saturation unreachable for sane windows.
inline constexpr int kNativeAccumulatorExtraBits = 6;

/// Derive the accumulator quanta from the coordinate window and the mass
/// scale (largest |m_j| of the call). The one shared definition of the
/// hardware's accumulator scaling — the driver (system.cpp) and the
/// force-error probe (obs/probe.cpp) must agree bit-for-bit on it.
void derive_scaling_quanta(PipelineScaling& s, double mass_scale) noexcept;

class Pipeline {
 public:
  explicit Pipeline(const PipelineNumerics& numerics);

  /// (Re)build the coordinate codec for a new range window.
  void configure(const PipelineScaling& scaling);

  [[nodiscard]] const PipelineScaling& scaling() const noexcept {
    return scaling_;
  }
  [[nodiscard]] const PipelineNumerics& numerics() const noexcept {
    return numerics_;
  }

  /// Quantize a j-particle for the particle memory.
  [[nodiscard]] JWord encode_j(const Vec3d& pos, double mass) const;

  /// Load an i-particle into a pipeline slot (resets accumulators).
  [[nodiscard]] IState encode_i(const Vec3d& pos) const;

  /// One pipeline cycle: accumulate the interaction of one j onto one i.
  void interact(IState& i_state, const JWord& j) const;

  /// Stream a whole j-segment through one pipeline slot: structure-of-
  /// arrays evaluation in blocks of `batch_width()` lanes, so the fixed-
  /// point and log-word stages run over arrays the compiler can
  /// vectorize. For the BitExact backend this applies the identical
  /// per-interaction operations in the identical accumulation order as
  /// repeated interact() calls, so the result is bitwise-identical
  /// (tests/grape_backend_test.cpp pins this across batch shapes).
  void interact_batch(IState& i_state, const JWord* j,
                      std::size_t count) const;

  /// Lane count of the batched kernel's inner loops (a SIMD-register
  /// width worth of independent interactions, not a hardware parameter).
  [[nodiscard]] static constexpr std::size_t batch_width() noexcept {
    return kBatchWidth;
  }

  /// Read back the accumulated force and potential (hardware readout).
  [[nodiscard]] Vec3d read_force(const IState& i_state) const;
  [[nodiscard]] double read_potential(const IState& i_state) const;
  [[nodiscard]] bool saturated(const IState& i_state) const;

  /// Read back the raw integer accumulator registers (the multi-board
  /// reduction domain; see RawForce).
  [[nodiscard]] RawForce read_raw(const IState& i_state) const;

  /// The accumulator quanta encode_i actually installs — the scaling's
  /// quanta for BitExact, 2^-kNativeAccumulatorExtraBits of them for
  /// Native. RawForce counts convert to doubles by these.
  [[nodiscard]] double force_accumulator_quantum() const noexcept;
  [[nodiscard]] double potential_accumulator_quantum() const noexcept;

  /// Position quantum of the current window (for diagnostics/tests).
  [[nodiscard]] double position_quantum() const {
    return codec_.quantum();
  }

 private:
  static constexpr std::size_t kBatchWidth = 8;

  PipelineNumerics numerics_;
  math::LnsFormat lns_;
  PipelineScaling scaling_;
  math::FixedPointCodec codec_;
  double eps2_ = 0.0;

  void interact_exact(IState& i_state, const JWord& j) const;
  void interact_batch_lns(IState& i_state, const JWord* j,
                          std::size_t count) const;
  void interact_batch_native(IState& i_state, const JWord* j,
                             std::size_t count) const;
};

}  // namespace g5::grape
