// Cycle-accounting timing model for the GRAPE-5 system.
//
// The emulator runs ~10^4x slower than the silicon, so wall-clock numbers
// for the hardware are *modeled* from the architecture: pipeline/memory
// clocks, VMP chunking, j-memory partitioning across boards and DMA over
// the two host-interface boards. Every bench that quotes a GRAPE-5 time
// labels it "modeled". The model is validated against the paper's
// theoretical peak (109.44 Gflops) and its sustained fraction in
// tests/grape_timing_test.cpp and bench_e5_peak.
#pragma once

#include <cstddef>
#include <cstdint>

#include "grape/config.hpp"

namespace g5::grape {

/// Time breakdown of one force call (seconds, modeled).
struct ForceCallTiming {
  double dma_j = 0.0;       ///< upload of j-particles to the boards
  double dma_i = 0.0;       ///< upload of i-particles
  double compute = 0.0;     ///< pipeline streaming time
  double dma_result = 0.0;  ///< force/potential readback
  [[nodiscard]] double total() const {
    return dma_j + dma_i + compute + dma_result;
  }
};

class TimingModel {
 public:
  explicit TimingModel(const SystemConfig& config) : cfg_(config) {}

  /// Largest number of j-particles resident on one board when nj are
  /// block-distributed over the boards.
  [[nodiscard]] std::size_t j_per_board(std::size_t nj) const;

  /// Modeled time for streaming nj_board j-particles against ni
  /// i-particles on one board (VMP chunking over the i side).
  [[nodiscard]] double board_compute_time(std::size_t ni,
                                          std::size_t nj_board) const;

  /// Modeled DMA time for a transfer of `bytes` over one host interface.
  [[nodiscard]] double transfer_time(std::size_t bytes) const;

  /// Full force call: j already resident (j upload accounted separately by
  /// the driver when the j-set actually changes).
  [[nodiscard]] ForceCallTiming force_call(std::size_t ni, std::size_t nj,
                                           bool includes_j_upload) const;

  /// Time to upload nj j-particles (split across boards, parallel HIBs).
  [[nodiscard]] double j_upload_time(std::size_t nj) const;

  /// Peak interaction rate implied by the model (interactions/s); equals
  /// SystemConfig::peak_interaction_rate() when VMP chunks are full.
  [[nodiscard]] double peak_interaction_rate() const;

  /// Effective interaction rate for a (ni, nj) call shape (interactions/s,
  /// compute only) — shows the VMP partial-fill penalty.
  [[nodiscard]] double effective_rate(std::size_t ni, std::size_t nj) const;

  [[nodiscard]] const SystemConfig& config() const noexcept { return cfg_; }

 private:
  SystemConfig cfg_;
};

/// Running account of modeled hardware time and work, kept by the system
/// front-end; benches read it to print paper-style rows.
struct HardwareAccount {
  std::uint64_t force_calls = 0;
  std::uint64_t interactions = 0;       ///< ni * nj summed over calls
  std::uint64_t i_processed = 0;
  std::uint64_t j_uploaded = 0;
  /// i-slots streamed: ceil(ni / board i_slots) * i_slots summed over
  /// calls. i_processed / vmp_slots is the pipeline occupancy — the
  /// VMP partial-fill fraction the n_g tradeoff (Section 3) fights.
  std::uint64_t vmp_slots = 0;
  double modeled_dma_j = 0.0;
  double modeled_dma_i = 0.0;
  double modeled_compute = 0.0;
  double modeled_dma_result = 0.0;
  double emulation_wall = 0.0;          ///< actual seconds spent emulating

  [[nodiscard]] double modeled_total() const {
    return modeled_dma_j + modeled_dma_i + modeled_compute +
           modeled_dma_result;
  }
  [[nodiscard]] double flops() const {
    return static_cast<double>(interactions) * kFlopsPerInteraction;
  }
  /// Mean i-slot fill fraction over all calls (1.0 = every VMP slot
  /// streamed a real i-particle; 0 before any call).
  [[nodiscard]] double occupancy() const {
    return vmp_slots > 0 ? static_cast<double>(i_processed) /
                               static_cast<double>(vmp_slots)
                         : 0.0;
  }
  void reset() { *this = HardwareAccount{}; }
};

}  // namespace g5::grape
