#include "grape/driver.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "util/log.hpp"

namespace g5::grape {

Grape5Device::Grape5Device(const SystemConfig& config)
    : system_(std::make_unique<Grape5System>(config)) {}

void Grape5Device::push_scaling() {
  system_->set_range(range_lo_, range_hi_, eps_, min_mass_);
}

void Grape5Device::set_range(double xmin, double xmax, double min_mass) {
  if (!(xmax > xmin)) throw std::invalid_argument("range window empty");
  if (min_mass < 0.0) throw std::invalid_argument("min_mass must be >= 0");
  range_lo_ = xmin;
  range_hi_ = xmax;
  min_mass_ = min_mass;
  range_set_ = true;
  push_scaling();
}

void Grape5Device::set_eps(double eps) {
  if (eps < 0.0) throw std::invalid_argument("softening must be >= 0");
  eps_ = eps;
  if (range_set_) push_scaling();
}

void Grape5Device::set_j(std::span<const Vec3d> pos,
                         std::span<const double> mass) {
  if (!range_set_) throw std::logic_error("set_range before set_j");
  system_->set_j_particles(pos, mass);
}

void Grape5Device::compute_forces(std::span<const Vec3d> i_pos,
                                  std::span<Vec3d> acc,
                                  std::span<double> pot) {
  system_->compute(i_pos, acc, pot);
}

void Grape5Device::compute_forces_chunked(std::span<const Vec3d> i_pos,
                                          std::span<const Vec3d> j_pos,
                                          std::span<const double> j_mass,
                                          std::span<Vec3d> acc,
                                          std::span<double> pot) {
  if (j_pos.size() != j_mass.size()) {
    throw std::invalid_argument("j position/mass arity mismatch");
  }
  const std::size_t ni = i_pos.size();
  if (acc.size() != ni || pot.size() != ni) {
    throw std::invalid_argument("output span arity mismatch");
  }
  std::fill(acc.begin(), acc.end(), Vec3d{});
  std::fill(pot.begin(), pot.end(), 0.0);
  if (ni == 0 || j_pos.empty()) return;

  if (raw_scratch_.size() < ni) raw_scratch_.resize(ni);
  std::fill_n(raw_scratch_.begin(), ni, RawForce{});

  // Accumulate every chunk's integer partial sums and convert once at
  // the end: the counts merge exactly, so the forces are bitwise-
  // independent of where the chunk boundaries fall (and of the board
  // count within each chunk — grape/board_set.hpp).
  const std::size_t cap = jmem_capacity();
  for (std::size_t off = 0; off < j_pos.size(); off += cap) {
    const std::size_t len = std::min(cap, j_pos.size() - off);
    set_j(j_pos.subspan(off, len), j_mass.subspan(off, len));
    system_->compute_raw(i_pos, std::span<RawForce>(raw_scratch_.data(), ni));
  }

  const Pipeline& pipe = system_->pipeline();
  const double fq = pipe.force_accumulator_quantum();
  const double pq = pipe.potential_accumulator_quantum();
  for (std::size_t i = 0; i < ni; ++i) {
    const RawForce& r = raw_scratch_[i];
    acc[i] = Vec3d{static_cast<double>(r.acc[0]) * fq,
                   static_cast<double>(r.acc[1]) * fq,
                   static_cast<double>(r.acc[2]) * fq};
    pot[i] = static_cast<double>(r.pot) * pq;
  }
}

// --------------------------------------------------------------------
// C-style veneer.
// --------------------------------------------------------------------

namespace {

struct DriverState {
  std::unique_ptr<Grape5Device> device;
  // Host-side staging, flushed to the boards at g5_run.
  std::vector<Vec3d> j_pos;
  std::vector<double> j_mass;
  bool j_dirty = false;
  std::vector<Vec3d> i_pos;
  std::vector<Vec3d> result_acc;
  std::vector<double> result_pot;
  bool have_result = false;
};

DriverState& state() {
  static DriverState s;
  return s;
}

void require_open() {
  if (!state().device) {
    throw std::logic_error("g5_open() has not been called");
  }
}

}  // namespace

void g5_open() {
  if (state().device) {
    util::log_warn() << "g5_open: device already open";
    return;
  }
  state().device = std::make_unique<Grape5Device>();
}

void g5_close() {
  state() = DriverState{};
}

bool g5_is_open() { return static_cast<bool>(state().device); }

Grape5Device& g5_device() {
  require_open();
  return *state().device;
}

int g5_get_number_of_pipelines() {
  require_open();
  const auto& cfg = state().device->system().config();
  return static_cast<int>(cfg.boards * cfg.board.i_slots());
}

int g5_get_jmemsize() {
  require_open();
  return static_cast<int>(state().device->jmem_capacity());
}

void g5_set_range(double xmin, double xmax, double min_mass) {
  require_open();
  state().device->set_range(xmin, xmax, min_mass);
  state().j_dirty = true;
}

void g5_set_eps_to_all(double eps) {
  require_open();
  state().device->set_eps(eps);
  state().j_dirty = true;
}

void g5_set_n(int nj) {
  require_open();
  if (nj < 0 || nj > g5_get_jmemsize()) {
    throw std::out_of_range("g5_set_n: nj out of range [0, jmemsize]");
  }
  state().j_pos.resize(static_cast<std::size_t>(nj));
  state().j_mass.resize(static_cast<std::size_t>(nj));
  state().j_dirty = true;
}

void g5_set_xmj(int adr, int nj, const double (*x)[3], const double* m) {
  require_open();
  auto& s = state();
  if (adr < 0 || nj < 0 ||
      static_cast<std::size_t>(adr) + static_cast<std::size_t>(nj) >
          s.j_pos.size()) {
    throw std::out_of_range("g5_set_xmj: segment outside [0, nj) from g5_set_n");
  }
  for (int k = 0; k < nj; ++k) {
    s.j_pos[static_cast<std::size_t>(adr + k)] =
        Vec3d{x[k][0], x[k][1], x[k][2]};
    s.j_mass[static_cast<std::size_t>(adr + k)] = m[k];
  }
  s.j_dirty = true;
}

void g5_set_xi(int ni, const double (*x)[3]) {
  require_open();
  if (ni < 0 || ni > g5_get_number_of_pipelines()) {
    throw std::out_of_range(
        "g5_set_xi: ni exceeds the pipeline count; chunk the i-set (got " +
        std::to_string(ni) + ")");
  }
  auto& s = state();
  s.i_pos.resize(static_cast<std::size_t>(ni));
  for (int i = 0; i < ni; ++i) {
    s.i_pos[static_cast<std::size_t>(i)] = Vec3d{x[i][0], x[i][1], x[i][2]};
  }
  s.have_result = false;
}

void g5_run() {
  require_open();
  auto& s = state();
  if (s.i_pos.empty()) {
    throw std::logic_error("g5_run: no i-particles loaded (g5_set_xi)");
  }
  if (s.j_dirty) {
    s.device->set_j(s.j_pos, s.j_mass);
    s.j_dirty = false;
  }
  s.result_acc.resize(s.i_pos.size());
  s.result_pot.resize(s.i_pos.size());
  s.device->compute_forces(s.i_pos, s.result_acc, s.result_pot);
  s.have_result = true;
}

void g5_get_force(int ni, double (*a)[3], double* p) {
  require_open();
  auto& s = state();
  if (!s.have_result) {
    throw std::logic_error("g5_get_force: g5_run has not completed");
  }
  if (ni < 0 || static_cast<std::size_t>(ni) > s.result_acc.size()) {
    throw std::out_of_range("g5_get_force: ni exceeds the last batch");
  }
  for (int i = 0; i < ni; ++i) {
    a[i][0] = s.result_acc[static_cast<std::size_t>(i)].x;
    a[i][1] = s.result_acc[static_cast<std::size_t>(i)].y;
    a[i][2] = s.result_acc[static_cast<std::size_t>(i)].z;
    p[i] = s.result_pot[static_cast<std::size_t>(i)];
  }
}

}  // namespace g5::grape
