// Double-precision direct-summation kernels on the host CPU.
//
// These are (a) the ground truth every accuracy test compares against,
// (b) the "64-bit floating point arithmetic" comparator of Section 2 of
// the paper, and (c) the compute backend of the host-only force engines.
#pragma once

#include <cstddef>
#include <span>

#include "math/vec3.hpp"

namespace g5::grape {

using math::Vec3d;

/// All-pairs softened gravity among one set (Newton's-third-law symmetric
/// accumulation, G = 1). acc/pot are overwritten.
void host_direct_self(std::span<const Vec3d> pos, std::span<const double> mass,
                      double eps, std::span<Vec3d> acc, std::span<double> pot);

/// Forces of a source set on a target set. acc/pot are overwritten.
/// When `i_mass` is supplied (one mass per target; each target assumed to
/// appear exactly once among the sources), zero-separation sources
/// contribute their softened potential -m/eps and only the target's own
/// self term is excluded. With `i_mass` empty, every zero-separation pair
/// is dropped — the hardware-style i == j cut the GRAPE comparison tests
/// expect. eps == 0 zero-separation pairs are always skipped (singular).
void host_forces_on_targets(std::span<const Vec3d> i_pos,
                            std::span<const Vec3d> j_pos,
                            std::span<const double> j_mass, double eps,
                            std::span<Vec3d> acc, std::span<double> pot,
                            std::span<const double> i_mass = {});

/// Single softened pairwise interaction (for spot tests).
void pairwise(const Vec3d& xi, const Vec3d& xj, double mj, double eps,
              Vec3d& acc_out, double& pot_out);

}  // namespace g5::grape
