// GRAPE-5 driver API.
//
// Two faces over the same emulated hardware:
//
//  * Grape5Device — the C++ RAII interface the rest of this library uses
//    (force engines, examples). Accepts arbitrarily large i-sets (chunked
//    over the virtual pipelines internally) and arbitrarily long j-lists
//    (chunked over the particle memory with host-side partial sums).
//
//  * the g5_* free functions — a faithful veneer of the original user
//    library shipped with the hardware (g5_open, g5_set_range,
//    g5_set_xmj, g5_set_xi, g5_run, g5_get_force, g5_close), operating on
//    a process-global device, with the same call-order contract the real
//    library had. examples/grape_driver_demo.cpp uses this face.
#pragma once

#include <memory>
#include <span>

#include "grape/system.hpp"

namespace g5::grape {

class Grape5Device {
 public:
  explicit Grape5Device(const SystemConfig& config = SystemConfig{});

  /// Coordinate window all particles must fit in, plus the minimum mass
  /// (sets the accumulator scaling, as on the real hardware).
  void set_range(double xmin, double xmax, double min_mass);

  /// Plummer softening applied inside the pipelines.
  void set_eps(double eps);

  /// Load field sources. Throws if they exceed the aggregate j-memory; use
  /// compute_forces_chunked for longer lists.
  void set_j(std::span<const Vec3d> pos, std::span<const double> mass);

  /// Forces of the resident j-set on the given targets (any ni).
  void compute_forces(std::span<const Vec3d> i_pos, std::span<Vec3d> acc,
                      std::span<double> pot);

  /// Forces of an arbitrarily long j-list on the targets: the driver
  /// splits the list into j-memory-sized chunks and accumulates the
  /// partial sums on the host (what the real library's user code did) —
  /// in the integer accumulator domain, so the result is bitwise-
  /// independent of the chunk boundaries and the board count
  /// (docs/scaling.md).
  void compute_forces_chunked(std::span<const Vec3d> i_pos,
                              std::span<const Vec3d> j_pos,
                              std::span<const double> j_mass,
                              std::span<Vec3d> acc, std::span<double> pot);

  [[nodiscard]] Grape5System& system() noexcept { return *system_; }
  [[nodiscard]] const Grape5System& system() const noexcept {
    return *system_;
  }

  [[nodiscard]] std::size_t jmem_capacity() const {
    return system_->jmem_capacity();
  }
  [[nodiscard]] std::size_t pipelines() const {
    return system_->config().total_pipelines();
  }
  [[nodiscard]] double eps() const noexcept { return eps_; }

 private:
  std::unique_ptr<Grape5System> system_;
  double range_lo_ = -1.0, range_hi_ = 1.0;
  double min_mass_ = 0.0;
  double eps_ = 0.0;
  bool range_set_ = false;

  void push_scaling();

  // Scratch for chunked accumulation: cross-chunk integer partial sums.
  std::vector<RawForce> raw_scratch_;
};

// --------------------------------------------------------------------
// Original-style C API (process-global device). Call order contract:
//   g5_open -> g5_set_range / g5_set_eps_to_all ->
//   { g5_set_n; g5_set_xmj ... ; g5_set_xi; g5_run; g5_get_force } ... ->
//   g5_close.
// Positions are double[3] arrays as in the historical library.
// --------------------------------------------------------------------

void g5_open();
void g5_close();
bool g5_is_open();

/// i-particles accepted per g5_set_xi call (virtual pipeline count).
int g5_get_number_of_pipelines();
/// Capacity of the aggregate j-particle memory.
int g5_get_jmemsize();

void g5_set_range(double xmin, double xmax, double min_mass);
void g5_set_eps_to_all(double eps);

/// Declare the length of the resident j-set (must be <= jmemsize).
void g5_set_n(int nj);
/// Load nj j-particles starting at address adr.
void g5_set_xmj(int adr, int nj, const double (*x)[3], const double* m);
/// Load the i-particles for the next run (ni <= number_of_pipelines).
void g5_set_xi(int ni, const double (*x)[3]);
/// Stream the resident j-set through the pipelines.
void g5_run();
/// Read back accelerations and potentials for the last g5_set_xi batch.
void g5_get_force(int ni, double (*a)[3], double* p);

/// Access the global device (tests / diagnostics).
Grape5Device& g5_device();

}  // namespace g5::grape
