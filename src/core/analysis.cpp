#include "core/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "math/morton.hpp"
#include "math/rng.hpp"

namespace g5::core {

namespace {

/// Uniform-sphere pair-distance density: the probability density of the
/// separation of two independent uniform points in a sphere of radius R,
/// p(r) = (3 r^2 / R^3) (1 - 3r/(4R) + r^3/(16 R^3)),  0 <= r <= 2R.
double uniform_sphere_pair_pdf(double r, double big_r) {
  if (r < 0.0 || r > 2.0 * big_r) return 0.0;
  const double x = r / big_r;
  return 3.0 * x * x / big_r *
         (1.0 - 0.75 * x + 0.0625 * x * x * x);
}

/// Integrate the pdf over [lo, hi] (Simpson on a fine grid).
double uniform_sphere_pair_mass(double lo, double hi, double big_r) {
  const int steps = 64;
  const double h = (hi - lo) / steps;
  double sum = 0.0;
  for (int i = 0; i <= steps; ++i) {
    const double w = (i == 0 || i == steps) ? 1.0 : (i % 2 == 1 ? 4.0 : 2.0);
    sum += w * uniform_sphere_pair_pdf(lo + i * h, big_r);
  }
  return sum * h / 3.0;
}

/// Spatial hash on cells of size `cell`: key by integer cell coordinates.
struct CellHash {
  double cell;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> map;

  static std::uint64_t key(long ix, long iy, long iz) {
    // Offset into positive range and pack kMortonBitsPerDim bits each
    // (the Morton coordinate mask — the same 21-bit-per-dim packing as
    // math/morton.hpp).
    const long bias = 1L << (math::kMortonBitsPerDim - 1);
    const std::uint64_t mask = math::kMortonCoordMax;
    return ((static_cast<std::uint64_t>(ix + bias) & mask)
            << (2 * math::kMortonBitsPerDim)) |
           ((static_cast<std::uint64_t>(iy + bias) & mask)
            << math::kMortonBitsPerDim) |
           (static_cast<std::uint64_t>(iz + bias) & mask);
  }
  void insert(const Vec3d& p, std::uint32_t idx) {
    map[key(static_cast<long>(std::floor(p.x / cell)),
            static_cast<long>(std::floor(p.y / cell)),
            static_cast<long>(std::floor(p.z / cell)))]
        .push_back(idx);
  }
  template <typename Fn>
  void for_neighbours(const Vec3d& p, Fn&& fn) const {
    const long ix = static_cast<long>(std::floor(p.x / cell));
    const long iy = static_cast<long>(std::floor(p.y / cell));
    const long iz = static_cast<long>(std::floor(p.z / cell));
    for (long dx = -1; dx <= 1; ++dx)
      for (long dy = -1; dy <= 1; ++dy)
        for (long dz = -1; dz <= 1; ++dz) {
          const auto it = map.find(key(ix + dx, iy + dy, iz + dz));
          if (it == map.end()) continue;
          for (const auto idx : it->second) fn(idx);
        }
  }
};

}  // namespace

CorrelationFunction correlation_function(const model::ParticleSet& pset,
                                         const CorrelationConfig& config) {
  if (!(config.r_max > config.r_min) || config.r_min <= 0.0) {
    throw std::invalid_argument("need 0 < r_min < r_max");
  }
  if (config.bins == 0) throw std::invalid_argument("bins must be > 0");

  CorrelationFunction out;
  const Vec3d com = pset.center_of_mass();

  // Sample sphere.
  std::vector<double> radii;
  radii.reserve(pset.size());
  for (const auto& p : pset.pos()) radii.push_back((p - com).norm());
  double sample_r = config.sample_radius;
  if (sample_r <= 0.0) {
    std::vector<double> sorted = radii;
    const auto p90 =
        static_cast<std::ptrdiff_t>(9 * sorted.size() / 10);
    std::nth_element(sorted.begin(), sorted.begin() + p90, sorted.end());
    sample_r = sorted[9 * sorted.size() / 10];
  }
  out.sample_radius = sample_r;

  std::vector<Vec3d> sample;
  for (std::size_t i = 0; i < pset.size(); ++i) {
    if (radii[i] <= sample_r) sample.push_back(pset.pos()[i] - com);
  }
  out.n_used = sample.size();
  if (sample.size() < 2) return out;

  // Log bins.
  const double lmin = std::log(config.r_min);
  const double lmax = std::log(config.r_max);
  out.r_lo.resize(config.bins);
  out.r_hi.resize(config.bins);
  out.pairs.assign(config.bins, 0);
  for (std::size_t b = 0; b < config.bins; ++b) {
    out.r_lo[b] = std::exp(lmin + (lmax - lmin) * static_cast<double>(b) /
                           static_cast<double>(config.bins));
    out.r_hi[b] = std::exp(lmin + (lmax - lmin) *
                           static_cast<double>(b + 1) /
                           static_cast<double>(config.bins));
  }

  // DD counts via a spatial hash of cell size r_max.
  CellHash hash{config.r_max, {}};
  for (std::uint32_t i = 0; i < sample.size(); ++i) {
    hash.insert(sample[i], i);
  }
  const double r2max = config.r_max * config.r_max;
  const double inv_dl = static_cast<double>(config.bins) / (lmax - lmin);
  for (std::uint32_t i = 0; i < sample.size(); ++i) {
    hash.for_neighbours(sample[i], [&](std::uint32_t j) {
      if (j <= i) return;  // each pair once
      const double r2 = (sample[i] - sample[j]).norm2();
      if (r2 >= r2max || r2 <= 0.0) return;
      const double r = std::sqrt(r2);
      if (r < config.r_min) return;
      auto b = static_cast<std::size_t>((std::log(r) - lmin) * inv_dl);
      if (b >= config.bins) b = config.bins - 1;
      ++out.pairs[b];
    });
  }

  // Analytic Poisson expectation and xi.
  const double npairs = 0.5 * static_cast<double>(sample.size()) *
                        static_cast<double>(sample.size() - 1);
  out.xi.resize(config.bins);
  for (std::size_t b = 0; b < config.bins; ++b) {
    const double rr =
        npairs * uniform_sphere_pair_mass(out.r_lo[b], out.r_hi[b], sample_r);
    out.xi[b] = rr > 0.0
                    ? static_cast<double>(out.pairs[b]) / rr - 1.0
                    : 0.0;
  }
  return out;
}

RadialProfile radial_profile(const model::ParticleSet& pset,
                             const RadialProfileConfig& config) {
  if (config.bins == 0) throw std::invalid_argument("bins must be > 0");
  RadialProfile out;
  const std::size_t n = pset.size();
  out.r_lo.resize(config.bins);
  out.r_hi.resize(config.bins);
  out.count.assign(config.bins, 0);
  out.density.assign(config.bins, 0.0);
  out.mean_radial_vel.assign(config.bins, 0.0);
  out.vel_dispersion.assign(config.bins, 0.0);
  if (n == 0) return out;

  const Vec3d com = pset.center_of_mass();
  // Bulk velocity subtracted so dispersions are about the mean flow.
  const Vec3d vbulk = pset.total_momentum() / pset.total_mass();

  double r_max = config.r_max;
  if (r_max <= 0.0) {
    for (const auto& p : pset.pos()) {
      r_max = std::max(r_max, (p - com).norm());
    }
    r_max *= 1.0 + 1e-12;
  }
  const double r_min_log = r_max * 1e-3;

  auto bin_of = [&](double r) -> long {
    if (config.log_bins) {
      if (r < r_min_log) return 0;
      const double t = std::log(r / r_min_log) / std::log(r_max / r_min_log);
      return static_cast<long>(t * static_cast<double>(config.bins));
    }
    return static_cast<long>(r / r_max * static_cast<double>(config.bins));
  };
  for (std::size_t b = 0; b < config.bins; ++b) {
    if (config.log_bins) {
      const double step = std::log(r_max / r_min_log) /
                          static_cast<double>(config.bins);
      out.r_lo[b] = r_min_log * std::exp(step * static_cast<double>(b));
      out.r_hi[b] = r_min_log * std::exp(step * static_cast<double>(b + 1));
    } else {
      out.r_lo[b] = r_max * static_cast<double>(b) /
                    static_cast<double>(config.bins);
      out.r_hi[b] = r_max * static_cast<double>(b + 1) /
                    static_cast<double>(config.bins);
    }
  }

  std::vector<double> shell_mass(config.bins, 0.0);
  std::vector<Vec3d> shell_mom(config.bins);
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3d d = pset.pos()[i] - com;
    const double r = d.norm();
    const long b = bin_of(r);
    if (b < 0 || b >= static_cast<long>(config.bins)) continue;
    const auto bi = static_cast<std::size_t>(b);
    const double m = pset.mass()[i];
    ++out.count[bi];
    shell_mass[bi] += m;
    const Vec3d v = pset.vel()[i] - vbulk;
    shell_mom[bi] += m * v;
    if (r > 0.0) out.mean_radial_vel[bi] += m * v.dot(d) / r;
  }
  // Dispersion pass (about each shell's mean velocity).
  std::vector<Vec3d> shell_vmean(config.bins);
  for (std::size_t b = 0; b < config.bins; ++b) {
    if (shell_mass[b] > 0.0) {
      shell_vmean[b] = shell_mom[b] / shell_mass[b];
      out.mean_radial_vel[b] /= shell_mass[b];
    }
  }
  std::vector<double> disp(config.bins, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3d d = pset.pos()[i] - com;
    const long b = bin_of(d.norm());
    if (b < 0 || b >= static_cast<long>(config.bins)) continue;
    const auto bi = static_cast<std::size_t>(b);
    const Vec3d dv = pset.vel()[i] - vbulk - shell_vmean[bi];
    disp[bi] += pset.mass()[i] * dv.norm2();
  }
  for (std::size_t b = 0; b < config.bins; ++b) {
    const double vol = 4.0 / 3.0 * M_PI *
                       (out.r_hi[b] * out.r_hi[b] * out.r_hi[b] -
                        out.r_lo[b] * out.r_lo[b] * out.r_lo[b]);
    out.density[b] = vol > 0.0 ? shell_mass[b] / vol : 0.0;
    out.vel_dispersion[b] =
        shell_mass[b] > 0.0 ? std::sqrt(disp[b] / shell_mass[b]) : 0.0;
    out.total_mass += shell_mass[b];
  }
  return out;
}

std::vector<double> lagrangian_radii(const model::ParticleSet& pset,
                                     const std::vector<double>& fractions) {
  std::vector<double> out;
  if (pset.empty()) {
    out.assign(fractions.size(), 0.0);
    return out;
  }
  const Vec3d com = pset.center_of_mass();
  // Sort (radius, mass) pairs.
  std::vector<std::pair<double, double>> rm;
  rm.reserve(pset.size());
  for (std::size_t i = 0; i < pset.size(); ++i) {
    rm.emplace_back((pset.pos()[i] - com).norm(), pset.mass()[i]);
  }
  std::sort(rm.begin(), rm.end());
  const double total = pset.total_mass();
  out.reserve(fractions.size());
  for (double f : fractions) {
    if (!(f > 0.0) || f > 1.0) {
      throw std::invalid_argument("fractions must be in (0, 1]");
    }
    double cum = 0.0;
    double radius = rm.back().first;
    for (const auto& [r, m] : rm) {
      cum += m;
      if (cum >= f * total) {
        radius = r;
        break;
      }
    }
    out.push_back(radius);
  }
  return out;
}

double mean_nearest_neighbour(const model::ParticleSet& pset,
                              std::size_t probes, std::uint64_t seed) {
  const std::size_t n = pset.size();
  if (n < 2 || probes == 0) return 0.0;
  math::Rng rng(seed);
  double sum = 0.0;
  std::size_t used = 0;
  for (std::size_t k = 0; k < probes; ++k) {
    const std::size_t i = rng.uniform_index(n);
    double best2 = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      best2 = std::min(best2, (pset.pos()[i] - pset.pos()[j]).norm2());
    }
    if (std::isfinite(best2)) {
      sum += std::sqrt(best2);
      ++used;
    }
  }
  return used > 0 ? sum / static_cast<double>(used) : 0.0;
}

}  // namespace g5::core
