#include "core/render.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <stdexcept>

namespace g5::core {

SlabImage::SlabImage(const SlabConfig& config, const model::ParticleSet& pset)
    : cfg_(config) {
  if (cfg_.axis < 0 || cfg_.axis > 2) {
    throw std::invalid_argument("axis must be 0, 1 or 2");
  }
  if (cfg_.width == 0 || cfg_.height == 0) {
    throw std::invalid_argument("image dimensions must be > 0");
  }
  if (!(cfg_.hi0 > cfg_.lo0) || !(cfg_.hi1 > cfg_.lo1) ||
      !(cfg_.slab_hi > cfg_.slab_lo)) {
    throw std::invalid_argument("slab ranges empty");
  }
  counts_.assign(cfg_.width * cfg_.height, 0);

  const int a0 = cfg_.axis == 0 ? 1 : 0;
  const int a1 = cfg_.axis == 2 ? 1 : 2;
  for (const auto& p : pset.pos()) {
    const double depth = p[static_cast<std::size_t>(cfg_.axis)];
    if (depth < cfg_.slab_lo || depth >= cfg_.slab_hi) continue;
    const double u = (p[static_cast<std::size_t>(a0)] - cfg_.lo0) /
                     (cfg_.hi0 - cfg_.lo0);
    const double v = (p[static_cast<std::size_t>(a1)] - cfg_.lo1) /
                     (cfg_.hi1 - cfg_.lo1);
    if (u < 0.0 || u >= 1.0 || v < 0.0 || v >= 1.0) continue;
    const auto px = static_cast<std::size_t>(u * static_cast<double>(cfg_.width));
    const auto py =
        static_cast<std::size_t>(v * static_cast<double>(cfg_.height));
    auto& cell = counts_[py * cfg_.width + px];
    ++cell;
    peak_ = std::max(peak_, cell);
    ++total_;
  }
}

std::string SlabImage::ascii() const {
  static const char ramp[] = " .:-=+*#%@";
  constexpr int levels = static_cast<int>(sizeof(ramp)) - 2;
  const double log_peak =
      std::log1p(static_cast<double>(std::max<std::uint64_t>(peak_, 1)));
  std::string out;
  out.reserve((cfg_.width + 1) * cfg_.height);
  for (std::size_t py = 0; py < cfg_.height; ++py) {
    for (std::size_t px = 0; px < cfg_.width; ++px) {
      const auto c = counts_[py * cfg_.width + px];
      int level = 0;
      if (c > 0 && log_peak > 0.0) {
        level = 1 + static_cast<int>(std::log1p(static_cast<double>(c)) /
                                     log_peak * (levels - 1));
        level = std::min(level, levels);
      }
      out.push_back(ramp[level]);
    }
    out.push_back('\n');
  }
  return out;
}

void SlabImage::write_pgm(const std::string& path) const {
  struct FileCloser {
    void operator()(std::FILE* f) const {
      if (f != nullptr) std::fclose(f);
    }
  };
  std::unique_ptr<std::FILE, FileCloser> f(std::fopen(path.c_str(), "wb"));
  if (!f) throw std::runtime_error("cannot open " + path + " for writing");
  std::fprintf(f.get(), "P5\n%zu %zu\n255\n", cfg_.width, cfg_.height);
  const double log_peak =
      std::log1p(static_cast<double>(std::max<std::uint64_t>(peak_, 1)));
  std::vector<unsigned char> row(cfg_.width);
  for (std::size_t py = 0; py < cfg_.height; ++py) {
    for (std::size_t px = 0; px < cfg_.width; ++px) {
      const auto c = counts_[py * cfg_.width + px];
      double t = 0.0;
      if (c > 0 && log_peak > 0.0) {
        t = std::log1p(static_cast<double>(c)) / log_peak;
      }
      row[px] = static_cast<unsigned char>(std::lround(t * 255.0));
    }
    if (std::fwrite(row.data(), 1, row.size(), f.get()) != row.size()) {
      throw std::runtime_error("short write to " + path);
    }
  }
}

}  // namespace g5::core
