// Time integration: leapfrog (kick-drift-kick), the integrator the paper's
// class of simulations uses (shared constant timestep).
#pragma once

#include "core/engine.hpp"
#include "model/particles.hpp"

namespace g5::core {

class LeapfrogIntegrator {
 public:
  /// Prime the integrator: compute forces for the current positions.
  /// Must be called once before the first step (and again if positions
  /// are modified externally).
  void prime(model::ParticleSet& pset, ForceEngine& engine);

  /// Advance one step of size dt (KDK). Forces are valid on return.
  void step(model::ParticleSet& pset, ForceEngine& engine, double dt);

  [[nodiscard]] bool primed() const noexcept { return primed_; }
  [[nodiscard]] std::uint64_t steps_taken() const noexcept { return steps_; }

 private:
  bool primed_ = false;
  std::uint64_t steps_ = 0;
};

}  // namespace g5::core
