// Simulation driver: the run loop of the paper's experiment.
//
// Owns the integrator and engine, advances a ParticleSet for a number of
// steps, collects per-step work statistics (interaction counts, list
// lengths, wall clocks, GRAPE account) and optionally writes snapshots —
// everything the Section 5 report needs from a run.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/diagnostics.hpp"
#include "core/engine.hpp"
#include "core/integrator.hpp"
#include "grape/timing.hpp"
#include "model/particles.hpp"
#include "obs/probe.hpp"

namespace g5::core {

struct SimulationConfig {
  double dt = 0.01;
  std::uint64_t steps = 100;
  /// Optional per-step sizes. When non-empty it overrides dt/steps: the
  /// run takes dt_schedule.size() steps of the given sizes (cosmological
  /// runs use Cosmology::log_a_timesteps here).
  std::vector<double> dt_schedule;
  /// Snapshot every k steps (0 = never); files "<prefix>_NNNN.g5snap".
  std::uint64_t snapshot_every = 0;
  std::string snapshot_prefix = "snapshot";
  /// Energy/momentum diagnostics every k steps (0 = start/end only).
  std::uint64_t diag_every = 0;
  /// Log a progress line every k steps (0 = off).
  std::uint64_t log_every = 10;
  /// If non-empty, write a per-step CSV time series to this path:
  /// step,time,interactions,lists,mean_list,kinetic,potential,total_energy.
  std::string stats_csv;
  /// If non-empty, write one obs::StepMetrics JSON object per step to
  /// this path (JSON Lines; schema in tools/schema/metrics.schema.json).
  std::string metrics_jsonl;
  /// Run the force-error probe (obs/probe.hpp) and the conservation
  /// drift gauges every k steps (0 = off). The probe re-evaluates
  /// probe_samples particles with the exact host kernel — O(samples * N)
  /// per call — and is bitwise-invariant across threads/pipeline depth.
  std::uint64_t probe_every = 0;
  std::uint32_t probe_samples = 64;
  std::uint64_t probe_seed = 0x5eedULL;
};

struct SimulationSummary {
  std::uint64_t steps = 0;
  double wall_seconds = 0.0;       ///< measured, whole run
  EngineStats engine;              ///< cumulative engine statistics
  grape::HardwareAccount grape;    ///< zeroed for host engines
  EnergyReport energy_initial;
  EnergyReport energy_final;
  double energy_drift = 0.0;       ///< relative
  math::Vec3d momentum_drift{};    ///< |p_final - p_initial| per component
  double angular_momentum_drift = 0.0;  ///< |L_final - L_initial|
  std::uint64_t snapshots_written = 0;
  /// Force-error probe results (probe_every > 0): the last measurement
  /// of the run and how many times the probe fired.
  obs::ProbeResult probe_last;
  std::uint64_t probe_calls = 0;
};

class Simulation {
 public:
  /// The engine is borrowed for the lifetime of the simulation.
  Simulation(ForceEngine& engine, const SimulationConfig& config);

  /// Optional per-step hook (step index, particle set) — benches use it to
  /// sample statistics mid-run.
  void set_step_hook(
      std::function<void(std::uint64_t, const model::ParticleSet&)> hook) {
    hook_ = std::move(hook);
  }

  /// Run the configured number of steps; returns the summary.
  SimulationSummary run(model::ParticleSet& pset);

  [[nodiscard]] const SimulationConfig& config() const noexcept {
    return cfg_;
  }

 private:
  ForceEngine& engine_;
  SimulationConfig cfg_;
  std::function<void(std::uint64_t, const model::ParticleSet&)> hook_;
};

}  // namespace g5::core
