// Concrete force engines. See engine.hpp for the contract.
#pragma once

#include <memory>
#include <string>

#include "core/engine.hpp"
#include "grape/driver.hpp"
#include "tree/groupwalk.hpp"
#include "tree/tree.hpp"
#include "util/parallel.hpp"

namespace g5::core {

/// Per-lane scratch for parallel tree walks: each pool lane owns an
/// interaction list, acc/pot buffers and private stat/timer accumulators,
/// reduced into EngineStats in lane order after the parallel region.
///
/// Thread-safety contract (lane ownership, not a lock): inside a
/// parallel_for body, lane `k` may touch only `scratch[k]`; outside any
/// parallel region the calling thread owns the whole vector (resize in
/// ensure_walk_pool, reduction in reduce_scratch). This partition is not
/// expressible with G5_GUARDED_BY — it is what the TSan CI job checks
/// dynamically; see docs/static_analysis.md.
struct WalkScratch {
  tree::InteractionList list;
  std::vector<math::Vec3d> acc;
  std::vector<double> pot;
  tree::WalkStats walk;
  double seconds_walk = 0.0;
  double seconds_kernel = 0.0;
  std::uint64_t interactions = 0;
  std::uint64_t groups = 0;

  void reset_accumulators() noexcept {
    walk = tree::WalkStats{};
    seconds_walk = 0.0;
    seconds_kernel = 0.0;
    interactions = 0;
    groups = 0;
  }
};

/// Lazily (re)build a walk pool honoring `requested` threads (0 = auto)
/// and size the per-lane scratch to match. Shared by the tree engines.
util::ThreadPool& ensure_walk_pool(std::unique_ptr<util::ThreadPool>& pool,
                                   std::uint32_t requested,
                                   std::vector<WalkScratch>& scratch);

/// O(N^2) direct summation in double precision on the host.
class HostDirectEngine final : public ForceEngine {
 public:
  explicit HostDirectEngine(const ForceParams& params) : ForceEngine(params) {}
  [[nodiscard]] std::string_view name() const override {
    return "host-direct";
  }
  void compute(model::ParticleSet& pset) override;
  void compute_targets(model::ParticleSet& pset,
                       std::span<const std::uint32_t> targets) override;
};

/// Barnes-Hut on the host.
class HostTreeEngine final : public ForceEngine {
 public:
  enum class Mode {
    Original,  ///< per-particle interaction lists (Barnes & Hut 1986)
    Modified   ///< grouped lists (Barnes 1990)
  };

  HostTreeEngine(const ForceParams& params, Mode mode)
      : ForceEngine(params), mode_(mode) {}

  [[nodiscard]] std::string_view name() const override {
    return mode_ == Mode::Original ? "host-tree-original"
                                   : "host-tree-modified";
  }
  void compute(model::ParticleSet& pset) override;
  void compute_targets(model::ParticleSet& pset,
                       std::span<const std::uint32_t> targets) override;

  [[nodiscard]] Mode mode() const noexcept { return mode_; }
  [[nodiscard]] const tree::BhTree& tree() const noexcept { return tree_; }

 private:
  Mode mode_;
  tree::BhTree tree_;
  std::unique_ptr<util::ThreadPool> pool_;
  std::vector<WalkScratch> scratch_;

  /// Reduce per-lane accumulators into stats_ (lane order).
  void reduce_scratch();
};

/// O(N^2) with the force loop on the emulated GRAPE-5 (whole particle set
/// as both i and j, chunked through the particle memory by the driver).
class GrapeDirectEngine final : public ForceEngine {
 public:
  GrapeDirectEngine(const ForceParams& params,
                    std::shared_ptr<grape::Grape5Device> device);
  [[nodiscard]] std::string_view name() const override {
    return "grape-direct";
  }
  void compute(model::ParticleSet& pset) override;
  void compute_targets(model::ParticleSet& pset,
                       std::span<const std::uint32_t> targets) override;

  [[nodiscard]] grape::Grape5Device& device() noexcept { return *device_; }
  [[nodiscard]] const grape::Grape5Device& device() const noexcept {
    return *device_;
  }

 private:
  std::shared_ptr<grape::Grape5Device> device_;
};

/// The paper's system: Barnes' modified treecode with interaction lists
/// evaluated on the emulated GRAPE-5.
class GrapeTreeEngine final : public ForceEngine {
 public:
  GrapeTreeEngine(const ForceParams& params,
                  std::shared_ptr<grape::Grape5Device> device);
  [[nodiscard]] std::string_view name() const override { return "grape-tree"; }
  void compute(model::ParticleSet& pset) override;
  void compute_targets(model::ParticleSet& pset,
                       std::span<const std::uint32_t> targets) override;

  [[nodiscard]] grape::Grape5Device& device() noexcept { return *device_; }
  [[nodiscard]] const grape::Grape5Device& device() const noexcept {
    return *device_;
  }
  [[nodiscard]] const tree::BhTree& tree() const noexcept { return tree_; }

 private:
  std::shared_ptr<grape::Grape5Device> device_;
  tree::BhTree tree_;
  std::unique_ptr<util::ThreadPool> pool_;
  std::vector<WalkScratch> scratch_;
  /// Lists of the group batch in flight: walked in parallel, then
  /// streamed through the device serially in group order.
  std::vector<tree::InteractionList> batch_lists_;
  std::vector<math::Vec3d> acc_sorted_;
  std::vector<double> pot_sorted_;
};

/// Factory by name ("host-direct", "host-tree", "host-tree-modified",
/// "grape-direct", "grape-tree"); grape engines get a fresh device with
/// the paper's SystemConfig unless one is supplied.
std::unique_ptr<ForceEngine> make_engine(
    const std::string& name, const ForceParams& params,
    std::shared_ptr<grape::Grape5Device> device = nullptr);

/// Shared helper: set the device range window (snapshot hull + margin) and
/// softening before a force phase. Returns the window used.
std::pair<double, double> configure_device_window(
    grape::Grape5Device& device, const model::ParticleSet& pset, double eps);

}  // namespace g5::core
