// Concrete force engines. See engine.hpp for the contract.
#pragma once

#include <memory>
#include <string>

#include "core/engine.hpp"
#include "grape/async_device.hpp"
#include "grape/driver.hpp"
#include "tree/groupwalk.hpp"
#include "tree/tree.hpp"
#include "util/parallel.hpp"

namespace g5::core {

/// Recycled interaction-list buffers for the device pipeline. Slots keep
/// their heap capacity across batches and steps so steady-state walks
/// allocate nothing; record_use() tracks the high-water entry count per
/// slot and end_phase() (a) publishes the reserved-bytes peak to the
/// monotone g5.walk.list_bytes_peak counter and (b) releases the excess
/// capacity of slots that hold more than kShrinkFactor x their observed
/// use, so one pathological batch cannot pin memory for a whole run.
///
/// Threading follows the WalkScratch lane-ownership contract: inside a
/// parallel walk each lane touches only the slots of the groups it was
/// assigned; ensure()/end_phase() run on the calling thread outside any
/// parallel region (and after the device drained, for pipelined slots).
class ListBufferPool {
 public:
  /// Grow to at least `slots` buffers (never shrinks the slot count).
  void ensure(std::size_t slots);
  [[nodiscard]] std::size_t size() const noexcept { return slots_.size(); }
  [[nodiscard]] tree::InteractionList& slot(std::size_t i) {
    return slots_[i];
  }
  /// Record slot i's current entry count toward its high-water mark.
  /// Call after each walk into the slot, from the owning lane.
  void record_use(std::size_t i);
  /// End of a force phase: publish the peak and apply the shrink policy.
  void end_phase();
  /// High-water total of bytes reserved across slots (whole lifetime).
  [[nodiscard]] std::size_t peak_bytes() const noexcept { return peak_bytes_; }

 private:
  /// Shrink a slot once its capacity exceeds this multiple of its
  /// observed use; 4x leaves comfortable headroom for step-to-step
  /// list-length jitter while still bounding the waste.
  static constexpr std::size_t kShrinkFactor = 4;
  /// Never shrink below this many entries; tiny lists are not worth the
  /// reallocation churn.
  static constexpr std::size_t kMinEntries = 256;

  std::vector<tree::InteractionList> slots_;
  std::vector<std::size_t> used_;  ///< per-slot high-water entries, per phase
  std::size_t peak_bytes_ = 0;
  std::size_t counted_peak_bytes_ = 0;  ///< already published to obs
};

/// Per-lane scratch for parallel tree walks: each pool lane owns an
/// interaction list, acc/pot buffers and private stat/timer accumulators,
/// reduced into EngineStats in lane order after the parallel region.
///
/// Thread-safety contract (lane ownership, not a lock): inside a
/// parallel_for body, lane `k` may touch only `scratch[k]`; outside any
/// parallel region the calling thread owns the whole vector (resize in
/// ensure_walk_pool, reduction in reduce_scratch). This partition is not
/// expressible with G5_GUARDED_BY — it is what the TSan CI job checks
/// dynamically; see docs/static_analysis.md.
struct WalkScratch {
  tree::InteractionList list;
  std::vector<math::Vec3d> acc;
  std::vector<double> pot;
  tree::WalkStats walk;
  double seconds_walk = 0.0;
  double seconds_kernel = 0.0;
  std::uint64_t interactions = 0;
  std::uint64_t groups = 0;

  void reset_accumulators() noexcept {
    walk = tree::WalkStats{};
    seconds_walk = 0.0;
    seconds_kernel = 0.0;
    interactions = 0;
    groups = 0;
  }
};

/// Lazily (re)build a walk pool honoring `requested` threads (0 = auto)
/// and size the per-lane scratch to match. Shared by the tree engines.
util::ThreadPool& ensure_walk_pool(std::unique_ptr<util::ThreadPool>& pool,
                                   std::uint32_t requested,
                                   std::vector<WalkScratch>& scratch);

/// O(N^2) direct summation in double precision on the host.
class HostDirectEngine final : public ForceEngine {
 public:
  explicit HostDirectEngine(const ForceParams& params) : ForceEngine(params) {}
  [[nodiscard]] std::string_view name() const override {
    return "host-direct";
  }
  void compute(model::ParticleSet& pset) override;
  void compute_targets(model::ParticleSet& pset,
                       std::span<const std::uint32_t> targets) override;
};

/// Barnes-Hut on the host.
class HostTreeEngine final : public ForceEngine {
 public:
  enum class Mode {
    Original,  ///< per-particle interaction lists (Barnes & Hut 1986)
    Modified   ///< grouped lists (Barnes 1990)
  };

  HostTreeEngine(const ForceParams& params, Mode mode)
      : ForceEngine(params), mode_(mode) {}

  [[nodiscard]] std::string_view name() const override {
    return mode_ == Mode::Original ? "host-tree-original"
                                   : "host-tree-modified";
  }
  void compute(model::ParticleSet& pset) override;
  void compute_targets(model::ParticleSet& pset,
                       std::span<const std::uint32_t> targets) override;

  [[nodiscard]] Mode mode() const noexcept { return mode_; }
  [[nodiscard]] const tree::BhTree& tree() const noexcept { return tree_; }

 private:
  Mode mode_;
  tree::BhTree tree_;
  std::unique_ptr<util::ThreadPool> pool_;
  std::vector<WalkScratch> scratch_;
  std::vector<tree::Group> groups_;  ///< reused across steps (Modified mode)

  /// Reduce per-lane accumulators into stats_ (lane order).
  void reduce_scratch();
};

/// O(N^2) with the force loop on the emulated GRAPE-5 (whole particle set
/// as both i and j, chunked through the particle memory by the driver).
class GrapeDirectEngine final : public ForceEngine {
 public:
  GrapeDirectEngine(const ForceParams& params,
                    std::shared_ptr<grape::Grape5Device> device);
  [[nodiscard]] std::string_view name() const override {
    return "grape-direct";
  }
  void compute(model::ParticleSet& pset) override;
  void compute_targets(model::ParticleSet& pset,
                       std::span<const std::uint32_t> targets) override;

  [[nodiscard]] grape::Grape5Device& device() noexcept { return *device_; }
  [[nodiscard]] const grape::Grape5Device& device() const noexcept {
    return *device_;
  }

 private:
  std::shared_ptr<grape::Grape5Device> device_;
  /// Async submission layer (pipeline_depth >= 2). Direct summation has
  /// no walk to overlap, but routing through AsyncDevice still buys the
  /// board-parallel evaluation it attaches to the device. Declared after
  /// device_ so it is destroyed (joining its thread) first.
  std::unique_ptr<grape::AsyncDevice> async_;
  /// Job + gathered-target buffers; must outlive the in-flight job, so
  /// they are members rather than locals.
  grape::ForceJob job_;
  std::vector<math::Vec3d> i_pos_;
  std::vector<math::Vec3d> acc_;
  std::vector<double> pot_;
};

/// The paper's system: Barnes' modified treecode with interaction lists
/// evaluated on the emulated GRAPE-5.
class GrapeTreeEngine final : public ForceEngine {
 public:
  GrapeTreeEngine(const ForceParams& params,
                  std::shared_ptr<grape::Grape5Device> device);
  [[nodiscard]] std::string_view name() const override { return "grape-tree"; }
  void compute(model::ParticleSet& pset) override;
  void compute_targets(model::ParticleSet& pset,
                       std::span<const std::uint32_t> targets) override;

  [[nodiscard]] grape::Grape5Device& device() noexcept { return *device_; }
  [[nodiscard]] const grape::Grape5Device& device() const noexcept {
    return *device_;
  }
  [[nodiscard]] const tree::BhTree& tree() const noexcept { return tree_; }

 private:
  std::shared_ptr<grape::Grape5Device> device_;
  /// Async submission layer (pipeline_depth >= 2): walk batch k+1
  /// overlaps device evaluation of batch k. Declared after device_ so it
  /// is destroyed (joining its thread) before the device and the list /
  /// output buffers it reads. nullptr on the synchronous path.
  std::unique_ptr<grape::AsyncDevice> async_;
  tree::BhTree tree_;
  std::unique_ptr<util::ThreadPool> pool_;
  std::vector<WalkScratch> scratch_;
  std::vector<tree::Group> groups_;  ///< reused across steps
  /// Interaction lists of the batches in flight: pipeline_depth sets of
  /// `batch` slots each (slot = set * batch + i); a set is recycled only
  /// after its last job's ticket completes.
  ListBufferPool lists_;
  /// Per-set job descriptors and (compute_targets only) target
  /// positions; like the lists, they must stay valid until the set's
  /// tickets complete, so they are members indexed by set.
  std::vector<std::vector<grape::ForceJob>> jobs_;
  std::vector<std::vector<math::Vec3d>> target_pos_;
  std::vector<math::Vec3d> acc_sorted_;
  std::vector<double> pot_sorted_;
};

/// Factory by name ("host-direct", "host-tree", "host-tree-modified",
/// "grape-direct", "grape-tree"); grape engines get a fresh device with
/// the paper's SystemConfig unless one is supplied.
std::unique_ptr<ForceEngine> make_engine(
    const std::string& name, const ForceParams& params,
    std::shared_ptr<grape::Grape5Device> device = nullptr);

/// Shared helper: set the device range window (snapshot hull + margin) and
/// softening before a force phase. Returns the window used.
std::pair<double, double> configure_device_window(
    grape::Grape5Device& device, const model::ParticleSet& pset, double eps);

/// Shared helper: lazily (re)build the async submission layer of a grape
/// engine. Returns nullptr when pipeline_depth < 2 (synchronous path);
/// otherwise ensures `async` wraps `device` with at least
/// `queue_capacity` queue slots, rebuilding it if a previous device
/// error poisoned it. Called between phases only (no jobs in flight).
grape::AsyncDevice* ensure_async_device(
    std::unique_ptr<grape::AsyncDevice>& async,
    const std::shared_ptr<grape::Grape5Device>& device,
    std::uint32_t pipeline_depth, std::size_t queue_capacity);

}  // namespace g5::core
