// Slab-projection rendering for Figure 4: particles inside a box are
// projected along one axis onto a 2-D density map, written as ASCII art
// and/or a binary PGM image.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/particles.hpp"

namespace g5::core {

struct SlabConfig {
  int axis = 2;          ///< projection axis (0=x,1=y,2=z); paper: z
  double lo0 = -22.5, hi0 = 22.5;  ///< first in-plane axis range
  double lo1 = -22.5, hi1 = 22.5;  ///< second in-plane axis range
  double slab_lo = -1.25, slab_hi = 1.25;  ///< depth range along `axis`
  std::size_t width = 96;   ///< pixels across the first axis
  std::size_t height = 48;  ///< pixels across the second axis
};

class SlabImage {
 public:
  SlabImage(const SlabConfig& config, const model::ParticleSet& pset);

  [[nodiscard]] const SlabConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] std::uint64_t count(std::size_t px, std::size_t py) const {
    return counts_.at(py * cfg_.width + px);
  }
  [[nodiscard]] std::uint64_t particles_in_slab() const noexcept {
    return total_;
  }
  [[nodiscard]] std::uint64_t peak_count() const noexcept { return peak_; }

  /// ASCII art, one character per pixel, log-scaled density ramp.
  [[nodiscard]] std::string ascii() const;

  /// 8-bit binary PGM (P5), log-scaled.
  void write_pgm(const std::string& path) const;

 private:
  SlabConfig cfg_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t peak_ = 0;
};

}  // namespace g5::core
