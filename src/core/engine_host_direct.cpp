#include "core/engines.hpp"

#include "grape/host_reference.hpp"
#include "obs/span.hpp"
#include "util/timer.hpp"

namespace g5::core {

void HostDirectEngine::compute(model::ParticleSet& pset) {
  G5_OBS_SPAN("force", "engine");
  G5_OBS_SPAN("kernel", "engine");
  util::Stopwatch watch;
  grape::host_direct_self(pset.pos(), pset.mass(), params_.eps, pset.acc(),
                          pset.pot());
  const std::size_t n = pset.size();
  stats_.seconds_kernel += watch.elapsed();
  stats_.seconds_total += watch.elapsed();
  ++stats_.evaluations;
  stats_.interactions += n > 0 ? static_cast<std::uint64_t>(n) * (n - 1) : 0;
}

void HostDirectEngine::compute_targets(model::ParticleSet& pset,
                                       std::span<const std::uint32_t> targets) {
  G5_OBS_SPAN("force", "engine");
  G5_OBS_SPAN("kernel", "engine");
  util::Stopwatch watch;
  for (const std::uint32_t t : targets) {
    const math::Vec3d xi = pset.pos()[t];
    // The source set includes the target; passing its mass lets the
    // kernel drop exactly the self term while distinct coincident
    // particles keep their softened potential (as in compute()).
    grape::host_forces_on_targets({&xi, 1}, pset.pos(), pset.mass(),
                                  params_.eps, {&pset.acc()[t], 1},
                                  {&pset.pot()[t], 1}, {&pset.mass()[t], 1});
  }
  stats_.seconds_kernel += watch.elapsed();
  stats_.seconds_total += watch.elapsed();
  ++stats_.evaluations;
  stats_.interactions += targets.size() * pset.size();
}

}  // namespace g5::core
