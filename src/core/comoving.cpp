#include "core/comoving.hpp"

#include <cmath>
#include <stdexcept>

#include "util/log.hpp"
#include "util/timer.hpp"

namespace g5::core {

ComovingSimulation::ComovingSimulation(ForceEngine& engine,
                                       const ComovingConfig& config)
    : engine_(engine), cfg_(config), cosmo_(config.cosmo) {
  if (!(cfg_.a_end > cfg_.a_start) || cfg_.a_start <= 0.0) {
    throw std::invalid_argument("need 0 < a_start < a_end");
  }
  if (cfg_.steps == 0) throw std::invalid_argument("steps must be > 0");
}

void ComovingSimulation::peculiar_force(model::ParticleSet& pset, double a) {
  engine_.compute(pset);  // g_com into acc()
  const double c = cosmo_.comoving_background_coefficient(a);
  auto& acc = pset.acc();
  const auto& pos = pset.pos();
  for (std::size_t i = 0; i < pset.size(); ++i) {
    acc[i] += c * pos[i];
  }
}

ComovingSummary ComovingSimulation::run(model::ParticleSet& pset) {
  ComovingSummary summary;
  util::Stopwatch wall;
  engine_.reset_stats();

  const std::vector<math::Vec3d> x0 = pset.pos();

  const double ln_ratio = std::log(cfg_.a_end / cfg_.a_start);
  auto a_at = [&](double frac) {
    return cfg_.a_start * std::exp(ln_ratio * frac);
  };

  double a = cfg_.a_start;
  peculiar_force(pset, a);

  const auto n_steps = cfg_.steps;
  for (std::uint64_t s = 1; s <= n_steps; ++s) {
    const double a_next =
        a_at(static_cast<double>(s) / static_cast<double>(n_steps));
    const double a_mid = std::sqrt(a * a_next);  // midpoint in ln a

    // Kick over [a, a_mid]: dp = g_pec * int dt/a. The force was evaluated
    // at the current positions; dividing the kick at a_mid keeps the
    // scheme second order (standard KDK with exact factors).
    const double k1 = cosmo_.kick_factor(a, a_mid);
    auto& vel = pset.vel();
    auto& acc = pset.acc();
    for (std::size_t i = 0; i < pset.size(); ++i) vel[i] += k1 * acc[i];

    // Drift over the full interval: dx = p * int dt/a^2.
    const double d = cosmo_.drift_factor(a, a_next);
    auto& pos = pset.pos();
    for (std::size_t i = 0; i < pset.size(); ++i) pos[i] += d * vel[i];

    // Closing kick over [a_mid, a_next] with the new force.
    peculiar_force(pset, a_next);
    const double k2 = cosmo_.kick_factor(a_mid, a_next);
    for (std::size_t i = 0; i < pset.size(); ++i) vel[i] += k2 * acc[i];

    a = a_next;
    if (cfg_.log_every > 0 && (s % cfg_.log_every == 0 || s == n_steps)) {
      util::log_info() << "comoving step " << s << "/" << n_steps
                       << " a=" << a << " z=" << (1.0 / a - 1.0)
                       << " wall=" << wall.elapsed() << "s";
    }
  }

  double disp2 = 0.0;
  for (std::size_t i = 0; i < pset.size(); ++i) {
    disp2 += (pset.pos()[i] - x0[i]).norm2();
  }
  summary.steps = n_steps;
  summary.wall_seconds = wall.elapsed();
  summary.engine = engine_.stats();
  summary.a_final = a;
  summary.rms_comoving_displacement = pset.empty()
      ? 0.0
      : std::sqrt(disp2 / static_cast<double>(pset.size()));
  return summary;
}

void ComovingSimulation::physical_to_comoving(model::ParticleSet& pset,
                                              const model::Cosmology& cosmo,
                                              double a) {
  if (a <= 0.0) throw std::invalid_argument("scale factor must be > 0");
  const double hubble = cosmo.hubble(a);
  for (std::size_t i = 0; i < pset.size(); ++i) {
    const math::Vec3d r = pset.pos()[i];
    const math::Vec3d v = pset.vel()[i];
    pset.pos()[i] = r / a;
    // p = a^2 dx/dt = a (v - H r).
    pset.vel()[i] = a * (v - hubble * r);
  }
}

void ComovingSimulation::comoving_to_physical(model::ParticleSet& pset,
                                              const model::Cosmology& cosmo,
                                              double a) {
  if (a <= 0.0) throw std::invalid_argument("scale factor must be > 0");
  const double hubble = cosmo.hubble(a);
  for (std::size_t i = 0; i < pset.size(); ++i) {
    const math::Vec3d x = pset.pos()[i];
    const math::Vec3d p = pset.vel()[i];
    pset.pos()[i] = a * x;
    pset.vel()[i] = hubble * a * x + p / a;
  }
}

}  // namespace g5::core
