#include "core/integrator.hpp"

#include <stdexcept>

#include "obs/span.hpp"

namespace g5::core {

void LeapfrogIntegrator::prime(model::ParticleSet& pset, ForceEngine& engine) {
  engine.compute(pset);
  primed_ = true;
}

void LeapfrogIntegrator::step(model::ParticleSet& pset, ForceEngine& engine,
                              double dt) {
  if (!primed_) {
    throw std::logic_error("LeapfrogIntegrator::prime before step");
  }
  if (!(dt > 0.0)) throw std::invalid_argument("dt must be > 0");
  const std::size_t n = pset.size();
  auto& pos = pset.pos();
  auto& vel = pset.vel();
  auto& acc = pset.acc();

  const double half = 0.5 * dt;
  {
    G5_OBS_SPAN("integrate", "core");
    for (std::size_t i = 0; i < n; ++i) vel[i] += half * acc[i];  // kick
    for (std::size_t i = 0; i < n; ++i) pos[i] += dt * vel[i];    // drift
  }
  engine.compute(pset);                                           // force
  {
    G5_OBS_SPAN("integrate", "core");
    for (std::size_t i = 0; i < n; ++i) vel[i] += half * acc[i];  // kick
  }
  ++steps_;
}

}  // namespace g5::core
