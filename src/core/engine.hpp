// ForceEngine: the backend abstraction of the simulation core.
//
// Four implementations reproduce the paper's design space:
//   * HostDirectEngine — O(N^2) direct summation in double on the host;
//   * HostTreeEngine   — Barnes-Hut on the host (original per-particle
//                        walk, or Barnes' modified grouped walk);
//   * GrapeDirectEngine— O(N^2) with the force loop on emulated GRAPE-5;
//   * GrapeTreeEngine  — the paper's system: modified treecode with the
//                        interaction lists evaluated on emulated GRAPE-5.
//
// Every engine fills acc() and pot() of the ParticleSet (G = 1 units;
// potential excludes the self term) and keeps per-phase wall-clock and
// work statistics for the benches.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "grape/config.hpp"
#include "model/particles.hpp"
#include "tree/walk.hpp"

namespace g5::core {

/// Knobs shared by the engines (subset used depends on the backend).
struct ForceParams {
  double eps = 0.01;          ///< Plummer softening
  double theta = 0.75;        ///< tree opening angle
  std::uint32_t n_crit = 256; ///< group size bound (modified algorithm)
  std::uint32_t leaf_max = 8; ///< tree leaf capacity
  tree::Mac mac = tree::Mac::Edge;  ///< acceptance criterion variant
  /// Quadrupole moments for accepted cells. Host tree engines only — the
  /// GRAPE pipelines evaluate point masses, which is exactly the ablation:
  /// host accuracy per list entry vs hardware throughput.
  bool quadrupole = false;
  /// Host worker threads for the tree-walk and tree-build phases (tree
  /// engines). 0 = auto: the G5_THREADS environment variable, else
  /// hardware concurrency. Results are bitwise-identical for any thread
  /// count.
  std::uint32_t threads = 0;
  /// Tree engines: minimum particle count for the parallel tree build
  /// (tree::TreeBuildParams::parallel_cutoff). Below it the build runs
  /// serially — the fork-join overhead would dominate; above it all
  /// build phases (bbox, keys, radix sort, subtree construction,
  /// moments) spread across the walk pool, bitwise-identical to the
  /// serial build.
  std::uint32_t build_parallel_cutoff = 1u << 15;
  /// GRAPE engines: interaction-list batch buffers in flight. >= 2 runs
  /// the asynchronous pipeline — the host walks batch k+1 while the
  /// device thread evaluates batch k (grape::AsyncDevice), with the
  /// emulated boards running board-parallel inside each job. 0 or 1
  /// evaluates synchronously on the calling thread, as the pre-pipeline
  /// code did. Groups are submitted in the same order with the same
  /// chunking either way, so results are bitwise-identical across all
  /// values (determinism_test checks this).
  std::uint32_t pipeline_depth = 2;
  /// GRAPE engines: arithmetic backend of the emulated pipelines.
  /// BitExact (default) is the bit-level GRAPE-5 datapath every golden
  /// number refers to; Native evaluates the same interaction lists in
  /// plain double (codec error ~ 0, roughly 10x faster emulation).
  /// Ignored when the caller hands make_engine a pre-built device.
  grape::BackendKind backend = grape::BackendKind::BitExact;
  /// GRAPE engines: processor boards in the emulated machine. 0 keeps
  /// the paper's configuration (2 boards); any B >= 1 scales the
  /// emulated cluster (j-particles block-shard across boards —
  /// docs/scaling.md). Results are bitwise-identical for every B.
  /// Ignored when the caller hands make_engine a pre-built device.
  std::uint32_t boards = 0;
};

/// Per-engine cumulative statistics (reset with reset_stats()).
struct EngineStats {
  std::uint64_t evaluations = 0;     ///< compute() calls
  std::uint64_t interactions = 0;    ///< pairwise interactions evaluated
  tree::WalkStats walk;              ///< tree engines only
  double seconds_total = 0.0;        ///< host wall clock, whole compute()
  double seconds_tree_build = 0.0;
  /// Traversal + list packing. Summed over worker lanes (per-lane busy
  /// time), so with threads > 1 this is CPU seconds and may exceed
  /// seconds_total; divide by the thread count for a wall-clock estimate.
  double seconds_walk = 0.0;
  /// Force kernel (host, same per-lane summing as seconds_walk) or
  /// emulator wall (grape engines; with pipeline_depth >= 2 this runs
  /// concurrently with the walk, so it can overlap seconds_walk and
  /// exceed its share of seconds_total).
  double seconds_kernel = 0.0;
  std::uint64_t groups = 0;          ///< interaction lists shipped
};

class ForceEngine {
 public:
  explicit ForceEngine(const ForceParams& params) : params_(params) {}
  virtual ~ForceEngine() = default;
  ForceEngine(const ForceEngine&) = delete;
  ForceEngine& operator=(const ForceEngine&) = delete;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Fill pset.acc() and pset.pot() from pset.pos()/mass().
  virtual void compute(model::ParticleSet& pset) = 0;

  /// Fill acc()/pot() for the given target indices ONLY (other entries
  /// must be left untouched — the block-timestep integrator relies on
  /// this). Sources are always the full set.
  virtual void compute_targets(model::ParticleSet& pset,
                               std::span<const std::uint32_t> targets) = 0;

  [[nodiscard]] const EngineStats& stats() const noexcept { return stats_; }
  virtual void reset_stats() { stats_ = EngineStats{}; }

  [[nodiscard]] const ForceParams& params() const noexcept { return params_; }
  void set_params(const ForceParams& params) { params_ = params; }

 protected:
  ForceParams params_;
  EngineStats stats_;
};

}  // namespace g5::core
