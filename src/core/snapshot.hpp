// Snapshot I/O: a small self-describing binary format plus an ASCII dump.
//
// Binary layout (little-endian):
//   char[8]  magic "G5SNAP\0\1"
//   u64      particle count
//   f64      simulation time
//   f64      softening used (informational)
//   then per attribute, contiguous arrays: pos (3*f64 each), vel (3*f64),
//   mass (f64), id (u64).
#pragma once

#include <string>

#include "model/particles.hpp"

namespace g5::core {

struct SnapshotHeader {
  std::uint64_t count = 0;
  double time = 0.0;
  double eps = 0.0;
};

/// Write a snapshot; throws std::runtime_error on I/O failure.
void write_snapshot(const std::string& path, const model::ParticleSet& pset,
                    double time, double eps);

/// Read a snapshot written by write_snapshot.
SnapshotHeader read_snapshot(const std::string& path,
                             model::ParticleSet& pset_out);

/// Human-readable dump: "id x y z vx vy vz m" per line.
void write_snapshot_ascii(const std::string& path,
                          const model::ParticleSet& pset, double time);

/// TIPSY binary (native-endian) dark-matter-only snapshot: the de-facto
/// interchange format of 1990s N-body work (tipsy, SKID, etc.). Layout:
/// header {double time; i32 nbodies, ndim, nsph, ndark, nstar, pad} then
/// per dark particle {f32 mass, pos[3], vel[3], eps, phi}. Positions and
/// velocities are truncated to float, as the format prescribes.
void write_snapshot_tipsy(const std::string& path,
                          const model::ParticleSet& pset, double time,
                          double eps);

/// Read back a TIPSY dark-only snapshot written by write_snapshot_tipsy.
SnapshotHeader read_snapshot_tipsy(const std::string& path,
                                   model::ParticleSet& pset_out);

}  // namespace g5::core
