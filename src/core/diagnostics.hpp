// Conserved-quantity diagnostics used by tests, examples and the
// simulation driver's per-step log.
#pragma once

#include "model/particles.hpp"

namespace g5::core {

struct EnergyReport {
  double kinetic = 0.0;
  double potential = 0.0;  ///< 0.5 sum m_i pot_i (pot filled by an engine)
  [[nodiscard]] double total() const { return kinetic + potential; }
  /// |2K/W| — 1 for a virialized system.
  [[nodiscard]] double virial_ratio() const {
    return potential != 0.0 ? -2.0 * kinetic / potential : 0.0;
  }
};

struct ConservationReport {
  EnergyReport energy;
  math::Vec3d momentum{};
  math::Vec3d angular_momentum{};
  math::Vec3d center_of_mass{};
};

/// Snapshot diagnostics; requires pot() to be current (engine.compute ran
/// on the current positions).
ConservationReport diagnose(const model::ParticleSet& pset);

/// Relative energy drift |(E - E0) / E0| guarded against E0 == 0.
double relative_energy_drift(const EnergyReport& now,
                             const EnergyReport& initial);

}  // namespace g5::core
