#include "core/blockstep.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace g5::core {

BlockTimestepIntegrator::BlockTimestepIntegrator(const BlockStepConfig& config)
    : cfg_(config) {
  if (!(cfg_.dt_max > 0.0)) throw std::invalid_argument("dt_max must be > 0");
  if (cfg_.max_rungs < 1 || cfg_.max_rungs > 24) {
    throw std::invalid_argument("max_rungs must be in [1, 24]");
  }
  if (!(cfg_.eta > 0.0)) throw std::invalid_argument("eta must be > 0");
  stats_.rung_population.assign(static_cast<std::size_t>(cfg_.max_rungs), 0);
}

int BlockTimestepIntegrator::rung_for(const math::Vec3d& acc,
                                      double eps) const {
  const double a = acc.norm();
  if (a <= 0.0) return 0;
  // dt = eta sqrt(eps / |a|); fall back to a velocity-free scale when the
  // softening is zero (use dt_max itself as the reference length scale).
  const double scale = eps > 0.0 ? eps : cfg_.dt_max;
  const double dt_want = cfg_.eta * std::sqrt(scale / a);
  int rung = 0;
  double dt = cfg_.dt_max;
  while (dt > dt_want && rung < cfg_.max_rungs - 1) {
    dt *= 0.5;
    ++rung;
  }
  return rung;
}

void BlockTimestepIntegrator::prime(model::ParticleSet& pset,
                                    ForceEngine& engine) {
  engine.compute(pset);
  rungs_.resize(pset.size());
  for (std::size_t i = 0; i < pset.size(); ++i) {
    rungs_[i] = rung_for(pset.acc()[i], engine.params().eps);
  }
  primed_ = true;
}

void BlockTimestepIntegrator::step_block(model::ParticleSet& pset,
                                         ForceEngine& engine) {
  if (!primed_) {
    throw std::logic_error("BlockTimestepIntegrator::prime before step_block");
  }
  if (pset.size() != rungs_.size()) {
    throw std::logic_error("particle count changed since prime()");
  }
  const std::size_t n = pset.size();
  const int deepest = cfg_.max_rungs - 1;
  const std::uint64_t substeps = std::uint64_t{1} << deepest;
  const double dt_min = cfg_.dt_max / static_cast<double>(substeps);

  auto& pos = pset.pos();
  auto& vel = pset.vel();
  auto& acc = pset.acc();
  const double eps = engine.params().eps;

  auto dt_of = [&](int rung) {
    return cfg_.dt_max / static_cast<double>(std::uint64_t{1} << rung);
  };
  auto due_at = [&](std::size_t i, std::uint64_t k) {
    // Particle i is due at substep k when k is a multiple of its stride.
    const std::uint64_t stride = std::uint64_t{1}
                                 << (deepest - rungs_[i]);
    return k % stride == 0;
  };

  std::vector<std::uint32_t> due;
  due.reserve(n);

  // Opening half-kick for everyone (all particles are due at k = 0).
  for (std::size_t i = 0; i < n; ++i) {
    vel[i] += 0.5 * dt_of(rungs_[i]) * acc[i];
  }

  for (std::uint64_t k = 1; k <= substeps; ++k) {
    // Drift everyone by dt_min: positions stay synchronized.
    for (std::size_t i = 0; i < n; ++i) pos[i] += dt_min * vel[i];
    ++stats_.substeps;

    // Particles due at time k*dt_min close their step: new force, closing
    // half-kick, rung update, and (unless the block ends) opening
    // half-kick of the next step.
    due.clear();
    for (std::size_t i = 0; i < n; ++i) {
      if (due_at(i, k)) due.push_back(static_cast<std::uint32_t>(i));
    }
    if (due.empty()) continue;
    if (due.size() == n) {
      engine.compute(pset);  // full set: let the engine use grouped lists
    } else {
      engine.compute_targets(pset, due);
    }
    stats_.force_updates += due.size();

    const bool block_end = (k == substeps);
    for (const std::uint32_t i : due) {
      vel[i] += 0.5 * dt_of(rungs_[i]) * acc[i];
      // Rung changes: deepen any time; shallower only at aligned times
      // (a particle may move to rung r only when k*dt_min is a multiple
      // of dt_max / 2^r).
      const int want = rung_for(acc[i], eps);
      int next = rungs_[i];
      if (want > next) {
        next = want;
      } else if (want < next) {
        while (next > want) {
          const std::uint64_t stride = std::uint64_t{1}
                                       << (deepest - (next - 1));
          if (k % stride != 0) break;
          --next;
        }
      }
      rungs_[i] = next;
      if (!block_end) {
        vel[i] += 0.5 * dt_of(rungs_[i]) * acc[i];
      }
    }
  }

  ++stats_.blocks;
  stats_.shared_equivalent += n * substeps;
  for (std::size_t i = 0; i < n; ++i) {
    ++stats_.rung_population[static_cast<std::size_t>(rungs_[i])];
  }
}

}  // namespace g5::core
