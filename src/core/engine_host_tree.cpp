#include "core/engines.hpp"

#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "util/timer.hpp"

namespace g5::core {

util::ThreadPool& ensure_walk_pool(std::unique_ptr<util::ThreadPool>& pool,
                                   std::uint32_t requested,
                                   std::vector<WalkScratch>& scratch) {
  const unsigned want = util::resolve_thread_count(requested);
  if (!pool || pool->size() != want) {
    pool = std::make_unique<util::ThreadPool>(want);
  }
  scratch.resize(pool->size());
  for (auto& s : scratch) s.reset_accumulators();
  return *pool;
}

void HostTreeEngine::reduce_scratch() {
  double walk_cpu = 0.0;
  double kernel_cpu = 0.0;
  std::uint64_t interactions = 0;
  std::uint64_t groups = 0;
  tree::WalkStats walked;
  for (const auto& s : scratch_) {
    stats_.walk.merge(s.walk);
    stats_.seconds_walk += s.seconds_walk;
    stats_.seconds_kernel += s.seconds_kernel;
    stats_.interactions += s.interactions;
    stats_.groups += s.groups;
    walked.merge(s.walk);
    walk_cpu += s.seconds_walk;
    kernel_cpu += s.seconds_kernel;
    interactions += s.interactions;
    groups += s.groups;
  }
  if (obs::enabled()) {
    // Lane CPU seconds overlap in wall time, so they enter the phase
    // table by lap accumulation under the live walk span, not as scopes.
    obs::record_phase("walk.cpu", walk_cpu, walked.lists);
    obs::record_phase("kernel.cpu", kernel_cpu, walked.lists);
    obs::counter("g5.walk.lists").add(walked.lists);
    obs::counter("g5.walk.list_entries").add(walked.list_entries);
    obs::counter("g5.walk.interactions").add(interactions);
    obs::counter("g5.walk.groups").add(groups);
  }
}

void HostTreeEngine::compute(model::ParticleSet& pset) {
  G5_OBS_SPAN("force", "engine");
  util::Stopwatch total;
  const std::size_t n = pset.size();
  pset.zero_force();
  if (n == 0) return;

  auto& pool = ensure_walk_pool(pool_, params_.threads, scratch_);
  util::Stopwatch phase;
  {
    G5_OBS_SPAN("build", "tree");
    tree::TreeBuildConfig build_cfg;
    build_cfg.leaf_max = params_.leaf_max;
    build_cfg.quadrupole = params_.quadrupole;
    build_cfg.parallel = {params_.threads, params_.build_parallel_cutoff};
    tree_.build(pset, build_cfg, &pool);
  }
  stats_.seconds_tree_build += phase.lap();
  if (obs::enabled()) {
    obs::counter("g5.tree.builds").add(1);
    obs::counter("g5.tree.nodes").add(tree_.node_count());
  }

  const tree::WalkConfig walk_cfg{params_.theta, params_.mac,
                                  params_.quadrupole};
  const auto& orig = tree_.original_index();

  G5_OBS_SPAN("walk", "tree");

  // Distribution telemetry: hoisted once per phase (one enabled() check);
  // lanes publish through the pinned slots lock-free.
  obs::Histogram* h_list =
      obs::enabled() ? &obs::histogram("g5.walk.list_len") : nullptr;
  obs::Histogram* h_group =
      obs::enabled() ? &obs::histogram("g5.walk.group_size") : nullptr;

  // Every particle belongs to exactly one group (modified) or slot
  // (original), so each lane writes disjoint acc/pot entries: the
  // parallel result is bitwise-identical to the serial one regardless of
  // how chunks land on lanes.
  if (mode_ == Mode::Original) {
    pool.parallel_for(
        n, 32, [&](std::size_t begin, std::size_t end, unsigned lane) {
          WalkScratch& ws = scratch_[lane];
          util::Stopwatch lap;
          for (std::size_t slot = begin; slot < end; ++slot) {
            lap.restart();
            tree::walk_original(tree_, tree_.sorted_pos()[slot], walk_cfg,
                                ws.list, &ws.walk);
            ws.seconds_walk += lap.lap();
            if (h_list != nullptr) {
              h_list->observe(static_cast<double>(ws.list.size()));
            }

            math::Vec3d acc{};
            double pot = 0.0;
            tree::evaluate_list_host(ws.list, {&tree_.sorted_pos()[slot], 1},
                                     params_.eps, {&acc, 1}, {&pot, 1},
                                     {&tree_.sorted_mass()[slot], 1});
            ws.seconds_kernel += lap.lap();
            ws.interactions += ws.list.size();
            const std::uint32_t dst = orig[slot];
            pset.acc()[dst] = acc;
            pset.pot()[dst] = pot;
            ++ws.groups;
          }
        });
  } else {
    tree::collect_groups(tree_, tree::GroupConfig{params_.n_crit}, groups_);
    pool.parallel_for(
        groups_.size(), 1,
        [&](std::size_t begin, std::size_t end, unsigned lane) {
          WalkScratch& ws = scratch_[lane];
          util::Stopwatch lap;
          for (std::size_t gi = begin; gi < end; ++gi) {
            const tree::Group& group = groups_[gi];
            lap.restart();
            tree::walk_group(tree_, group, walk_cfg, ws.list, &ws.walk);
            ws.seconds_walk += lap.lap();
            if (h_list != nullptr) {
              h_list->observe(static_cast<double>(ws.list.size()));
              h_group->observe(static_cast<double>(group.count));
            }

            if (ws.acc.size() < group.count) {
              ws.acc.resize(group.count);
              ws.pot.resize(group.count);
            }
            const std::span<const math::Vec3d> targets(
                tree_.sorted_pos().data() + group.first, group.count);
            const std::span<const double> self_mass(
                tree_.sorted_mass().data() + group.first, group.count);
            tree::evaluate_list_host(
                ws.list, targets, params_.eps,
                std::span<math::Vec3d>(ws.acc.data(), group.count),
                std::span<double>(ws.pot.data(), group.count), self_mass);
            ws.seconds_kernel += lap.lap();
            ws.interactions +=
                static_cast<std::uint64_t>(ws.list.size()) * group.count;

            for (std::uint32_t k = 0; k < group.count; ++k) {
              const std::uint32_t dst = orig[group.first + k];
              pset.acc()[dst] = ws.acc[k];
              pset.pot()[dst] = ws.pot[k];
            }
            ++ws.groups;
          }
        });
  }
  reduce_scratch();

  // Both walks place the target itself in its own list (the original walk
  // via its leaf, the modified walk via the group's direct part); the
  // evaluation kernel excludes exactly that self term via the supplied
  // self masses, so distinct particles at coincident positions keep their
  // softened mutual potential.

  ++stats_.evaluations;
  stats_.seconds_total += total.elapsed();
}

void HostTreeEngine::compute_targets(model::ParticleSet& pset,
                                     std::span<const std::uint32_t> targets) {
  G5_OBS_SPAN("force", "engine");
  util::Stopwatch total;
  if (pset.empty() || targets.empty()) return;

  auto& pool = ensure_walk_pool(pool_, params_.threads, scratch_);
  util::Stopwatch phase;
  {
    G5_OBS_SPAN("build", "tree");
    tree::TreeBuildConfig build_cfg;
    build_cfg.leaf_max = params_.leaf_max;
    build_cfg.quadrupole = params_.quadrupole;
    build_cfg.parallel = {params_.threads, params_.build_parallel_cutoff};
    tree_.build(pset, build_cfg, &pool);
  }
  stats_.seconds_tree_build += phase.lap();
  if (obs::enabled()) {
    obs::counter("g5.tree.builds").add(1);
    obs::counter("g5.tree.nodes").add(tree_.node_count());
  }

  // Per-target original walks (groups do not pay off for scattered
  // subsets), evaluated on the host. Target indices are distinct by the
  // engine contract, so per-target writes stay race-free.
  const tree::WalkConfig walk_cfg{params_.theta, params_.mac,
                                  params_.quadrupole};
  G5_OBS_SPAN("walk", "tree");
  obs::Histogram* h_list =
      obs::enabled() ? &obs::histogram("g5.walk.list_len") : nullptr;
  pool.parallel_for(
      targets.size(), 16,
      [&](std::size_t begin, std::size_t end, unsigned lane) {
        WalkScratch& ws = scratch_[lane];
        util::Stopwatch lap;
        for (std::size_t i = begin; i < end; ++i) {
          const std::uint32_t t = targets[i];
          lap.restart();
          tree::walk_original(tree_, pset.pos()[t], walk_cfg, ws.list,
                              &ws.walk);
          ws.seconds_walk += lap.lap();
          if (h_list != nullptr) {
            h_list->observe(static_cast<double>(ws.list.size()));
          }
          const math::Vec3d xi = pset.pos()[t];
          tree::evaluate_list_host(ws.list, {&xi, 1}, params_.eps,
                                   {&pset.acc()[t], 1}, {&pset.pot()[t], 1},
                                   {&pset.mass()[t], 1});
          ws.seconds_kernel += lap.lap();
          ws.interactions += ws.list.size();
        }
      });
  reduce_scratch();
  ++stats_.evaluations;
  stats_.seconds_total += total.elapsed();
}

}  // namespace g5::core
