#include "core/engines.hpp"

#include "util/timer.hpp"

namespace g5::core {

void HostTreeEngine::compute(model::ParticleSet& pset) {
  util::Stopwatch total;
  const std::size_t n = pset.size();
  pset.zero_force();
  if (n == 0) return;

  util::Stopwatch phase;
  tree::TreeBuildConfig build_cfg;
  build_cfg.leaf_max = params_.leaf_max;
  build_cfg.quadrupole = params_.quadrupole;
  tree_.build(pset, build_cfg);
  stats_.seconds_tree_build += phase.lap();

  const tree::WalkConfig walk_cfg{params_.theta, params_.mac,
                                  params_.quadrupole};
  const auto& orig = tree_.original_index();

  if (mode_ == Mode::Original) {
    for (std::size_t slot = 0; slot < n; ++slot) {
      phase.restart();
      tree::walk_original(tree_, tree_.sorted_pos()[slot], walk_cfg, list_,
                          &stats_.walk);
      stats_.seconds_walk += phase.lap();

      math::Vec3d acc{};
      double pot = 0.0;
      tree::evaluate_list_host(list_, {&tree_.sorted_pos()[slot], 1},
                               params_.eps, {&acc, 1}, {&pot, 1});
      stats_.seconds_kernel += phase.lap();
      stats_.interactions += list_.size();
      const std::uint32_t dst = orig[slot];
      pset.acc()[dst] = acc;
      pset.pot()[dst] = pot;
      ++stats_.groups;
    }
  } else {
    const auto groups =
        tree::collect_groups(tree_, tree::GroupConfig{params_.n_crit});
    for (const auto& group : groups) {
      phase.restart();
      tree::walk_group(tree_, group, walk_cfg, list_, &stats_.walk);
      stats_.seconds_walk += phase.lap();

      if (acc_scratch_.size() < group.count) {
        acc_scratch_.resize(group.count);
        pot_scratch_.resize(group.count);
      }
      std::span<const math::Vec3d> targets(
          tree_.sorted_pos().data() + group.first, group.count);
      tree::evaluate_list_host(
          list_, targets, params_.eps,
          std::span<math::Vec3d>(acc_scratch_.data(), group.count),
          std::span<double>(pot_scratch_.data(), group.count));
      stats_.seconds_kernel += phase.lap();
      stats_.interactions +=
          static_cast<std::uint64_t>(list_.size()) * group.count;

      for (std::uint32_t k = 0; k < group.count; ++k) {
        const std::uint32_t dst = orig[group.first + k];
        pset.acc()[dst] = acc_scratch_[k];
        pset.pot()[dst] = pot_scratch_[k];
      }
      ++stats_.groups;
    }
  }

  // Both walks place the target itself in its own list (the original walk
  // via its leaf, the modified walk via the group's direct part); the
  // evaluation kernels drop coincident pairs, mirroring the pipeline's
  // i == j cut, so no self-term correction is needed.

  ++stats_.evaluations;
  stats_.seconds_total += total.elapsed();
}

void HostTreeEngine::compute_targets(model::ParticleSet& pset,
                                     std::span<const std::uint32_t> targets) {
  util::Stopwatch total;
  if (pset.empty() || targets.empty()) return;

  util::Stopwatch phase;
  tree::TreeBuildConfig build_cfg;
  build_cfg.leaf_max = params_.leaf_max;
  build_cfg.quadrupole = params_.quadrupole;
  tree_.build(pset, build_cfg);
  stats_.seconds_tree_build += phase.lap();

  // Per-target original walks (groups do not pay off for scattered
  // subsets), evaluated on the host.
  const tree::WalkConfig walk_cfg{params_.theta, params_.mac,
                                  params_.quadrupole};
  for (const std::uint32_t t : targets) {
    phase.restart();
    tree::walk_original(tree_, pset.pos()[t], walk_cfg, list_, &stats_.walk);
    stats_.seconds_walk += phase.lap();
    const math::Vec3d xi = pset.pos()[t];
    tree::evaluate_list_host(list_, {&xi, 1}, params_.eps,
                             {&pset.acc()[t], 1}, {&pset.pot()[t], 1});
    stats_.seconds_kernel += phase.lap();
    stats_.interactions += list_.size();
  }
  ++stats_.evaluations;
  stats_.seconds_total += total.elapsed();
}

}  // namespace g5::core
