#include "core/engines.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "util/timer.hpp"

namespace g5::core {

namespace {

/// Reduce the per-lane walk scratch of one force phase into stats and,
/// when instrumentation is on, the obs phase table and counters (same
/// accounting as HostTreeEngine::reduce_scratch; kernel CPU time is
/// absent here because evaluation runs on the device).
void reduce_walk_scratch(const std::vector<WalkScratch>& scratch,
                         EngineStats& stats) {
  double walk_cpu = 0.0;
  tree::WalkStats walked;
  for (const auto& ws : scratch) {
    stats.walk.merge(ws.walk);
    stats.seconds_walk += ws.seconds_walk;
    walked.merge(ws.walk);
    walk_cpu += ws.seconds_walk;
  }
  if (obs::enabled()) {
    obs::record_phase("walk.cpu", walk_cpu, walked.lists);
    obs::counter("g5.walk.lists").add(walked.lists);
    obs::counter("g5.walk.list_entries").add(walked.list_entries);
    obs::counter("g5.walk.interactions").add(walked.interactions);
  }
}

/// Publish the pipeline concurrency fraction, the additive-model excess
/// (host_busy + device_busy − wall) / wall. That difference equals the
/// time both sides were active at once, so we measure it directly from
/// the producer: walk/submit wall accumulated while the device had jobs
/// in flight. The old walk-wall formulation subtracted two large nearly
/// equal numbers and reported 0 for runs with a real 1.08× pipelined
/// speedup; the direct form stays positive whenever the device ground
/// jobs while the host kept walking — even on a single host core, where
/// the interleaving still hides walk latency behind device turnaround.
/// 0 = the phases ran serially (the additive Section 5 model).
void publish_overlap(double hidden_s, double pipeline_wall) {
  if (!obs::enabled()) return;
  obs::gauge("g5.pipeline.overlap")
      .set(pipeline_wall > 0.0
               ? std::min(std::max(hidden_s, 0.0) / pipeline_wall, 1.0)
               : 0.0);
}

std::size_t list_reserved_bytes(const tree::InteractionList& list) {
  return list.pos.capacity() * sizeof(math::Vec3d) +
         list.mass.capacity() * sizeof(double) +
         list.quad.capacity() * sizeof(tree::Quadrupole);
}

}  // namespace

void ListBufferPool::ensure(std::size_t slots) {
  if (slots_.size() < slots) {
    slots_.resize(slots);
    used_.resize(slots, 0);
  }
}

void ListBufferPool::record_use(std::size_t i) {
  used_[i] = std::max(used_[i], slots_[i].size());
}

void ListBufferPool::end_phase() {
  std::size_t total = 0;
  for (const auto& list : slots_) total += list_reserved_bytes(list);
  peak_bytes_ = std::max(peak_bytes_, total);
  if (obs::enabled() && peak_bytes_ > counted_peak_bytes_) {
    // Monotone counter tracking the high-water mark: publish the delta so
    // the counter's value always equals peak_bytes().
    obs::counter("g5.walk.list_bytes_peak")
        .add(peak_bytes_ - counted_peak_bytes_);
    counted_peak_bytes_ = peak_bytes_;
  }
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    tree::InteractionList& list = slots_[i];
    const std::size_t used = std::max(used_[i], kMinEntries);
    if (list.pos.capacity() > kShrinkFactor * used) {
      // Swap-shrink: shrink_to_fit is a non-binding request, a fresh
      // vector with an exact reserve is not.
      tree::InteractionList fresh;
      fresh.reserve(used);
      list = std::move(fresh);
    }
    used_[i] = 0;
  }
}

GrapeTreeEngine::GrapeTreeEngine(const ForceParams& params,
                                 std::shared_ptr<grape::Grape5Device> device)
    : ForceEngine(params), device_(std::move(device)) {
  if (!device_) throw std::invalid_argument("grape device is null");
}

void GrapeTreeEngine::compute(model::ParticleSet& pset) {
  G5_OBS_SPAN("force", "engine");
  util::Stopwatch total;
  const std::size_t n = pset.size();
  pset.zero_force();
  if (n == 0) return;

  // Host phase 1: tree construction, parallel over the walk pool.
  auto& pool = ensure_walk_pool(pool_, params_.threads, scratch_);
  util::Stopwatch phase;
  {
    G5_OBS_SPAN("build", "tree");
    tree::TreeBuildConfig build_cfg;
    build_cfg.leaf_max = params_.leaf_max;
    build_cfg.parallel = {params_.threads, params_.build_parallel_cutoff};
    tree_.build(pset, build_cfg, &pool);
  }
  stats_.seconds_tree_build += phase.lap();
  if (obs::enabled()) {
    obs::counter("g5.tree.builds").add(1);
    obs::counter("g5.tree.nodes").add(tree_.node_count());
  }

  // Hardware setup for this force phase: window from the current hull.
  configure_device_window(*device_, pset, params_.eps);

  tree::collect_groups(tree_, tree::GroupConfig{params_.n_crit}, groups_);
  const tree::WalkConfig walk_cfg{params_.theta, params_.mac};
  const auto& orig = tree_.original_index();

  if (acc_sorted_.size() < n) {
    acc_sorted_.resize(n);
    pot_sorted_.resize(n);
  }

  // Per batch of groups: host lanes build the shared interaction lists in
  // parallel (phase 2), then GRAPE evaluates them in group order (phase
  // 3). Batching bounds the lists held in memory while keeping every lane
  // busy during the walk phase.
  //
  // With pipeline_depth >= 2 the evaluation moves to the AsyncDevice
  // submitter thread and the batches double-buffer: while the device
  // grinds batch k's jobs, the lanes walk batch k+1 into the next buffer
  // set. Group order, chunking, and the per-board reduction order are
  // unchanged, so the result is bitwise-identical to the synchronous
  // path (determinism_test pins this).
  const std::size_t batch =
      std::max<std::size_t>(std::size_t{4} * pool.size(), 8);
  const std::size_t depth = std::min<std::size_t>(
      std::max<std::size_t>(params_.pipeline_depth, 2), 8);
  grape::AsyncDevice* async = ensure_async_device(
      async_, device_, params_.pipeline_depth, depth * batch);

  // Distribution telemetry: hoisted once per phase (one enabled() check);
  // the walk lanes then publish through the pinned slots lock-free.
  obs::Histogram* h_list =
      obs::enabled() ? &obs::histogram("g5.walk.list_len") : nullptr;
  obs::Histogram* h_group =
      obs::enabled() ? &obs::histogram("g5.walk.group_size") : nullptr;

  if (async != nullptr) {
    lists_.ensure(depth * batch);
    if (jobs_.size() < depth) jobs_.resize(depth);
    // Last ticket submitted per buffer set: the set is recycled only
    // once that ticket has completed.
    std::vector<grape::AsyncDevice::Ticket> last_ticket(depth, 0);
    double hidden_s = 0.0;  // producer work done while jobs were in flight
    double pipeline_wall = 0.0;
    util::Stopwatch pipe_watch;
    try {
      G5_OBS_SPAN("pipeline", "engine");
      std::size_t set_index = 0;
      for (std::size_t base = 0; base < groups_.size();
           base += batch, ++set_index) {
        const std::size_t m = std::min(batch, groups_.size() - base);
        const std::size_t set = set_index % depth;
        async->wait_for(last_ticket[set]);
        const bool overlapping = async->in_flight() > 0;
        util::Stopwatch batch_watch;
        {
          // Lane-ownership contract (WalkScratch doc): each lane touches
          // only scratch_[lane] and the list slots of the groups it was
          // assigned, checked by TSan.
          G5_OBS_SPAN("walk", "tree");
          pool.parallel_for(
              m, 1, [&](std::size_t begin, std::size_t end, unsigned lane) {
                WalkScratch& ws = scratch_[lane];
                util::Stopwatch lap;
                for (std::size_t i = begin; i < end; ++i) {
                  lap.restart();
                  const std::size_t slot = set * batch + i;
                  tree::walk_group(tree_, groups_[base + i], walk_cfg,
                                   lists_.slot(slot), &ws.walk);
                  lists_.record_use(slot);
                  ws.seconds_walk += lap.lap();
                  if (h_list != nullptr) {
                    h_list->observe(
                        static_cast<double>(lists_.slot(slot).pos.size()));
                    h_group->observe(
                        static_cast<double>(groups_[base + i].count));
                  }
                }
              });
        }
        auto& jobs = jobs_[set];
        if (jobs.size() < m) jobs.resize(m);
        for (std::size_t i = 0; i < m; ++i) {
          const tree::Group& group = groups_[base + i];
          const tree::InteractionList& list = lists_.slot(set * batch + i);
          grape::ForceJob& job = jobs[i];
          job = grape::ForceJob{};
          job.i_pos = std::span<const math::Vec3d>(
              tree_.sorted_pos().data() + group.first, group.count);
          job.j_pos = list.pos;
          job.j_mass = list.mass;
          job.acc = std::span<math::Vec3d>(acc_sorted_.data() + group.first,
                                           group.count);
          job.pot =
              std::span<double>(pot_sorted_.data() + group.first, group.count);
          last_ticket[set] = async->submit(job);
          ++stats_.groups;
        }
        if (overlapping) hidden_s += batch_watch.elapsed();
      }
      async->drain();
      {
        // Under a walk span so walk.cpu files at a ".../walk/walk.cpu"
        // path like the synchronous engines'.
        G5_OBS_SPAN("walk", "tree");
        reduce_walk_scratch(scratch_, stats_);
      }
      pipeline_wall = pipe_watch.elapsed();
    } catch (...) {
      // Let the submitter finish/skip whatever is queued (our buffers are
      // members, still alive), then rebuild it on the next compute.
      try {
        async_->drain();
      } catch (...) {
      }
      async_.reset();
      throw;
    }
    const grape::AsyncDevice::Completed done = async->take_completed();
    stats_.interactions += done.interactions;
    stats_.seconds_kernel += done.emulation_seconds;
    publish_overlap(hidden_s, pipeline_wall);
  } else {
    lists_.ensure(std::min(batch, groups_.size()));
    for (std::size_t base = 0; base < groups_.size(); base += batch) {
      const std::size_t m = std::min(batch, groups_.size() - base);
      // Lane-ownership contract (WalkScratch doc): each lane touches only
      // scratch_[lane] and its own list slots, checked by TSan.
      {
        G5_OBS_SPAN("walk", "tree");
        pool.parallel_for(
            m, 1, [&](std::size_t begin, std::size_t end, unsigned lane) {
              WalkScratch& ws = scratch_[lane];
              util::Stopwatch lap;
              for (std::size_t i = begin; i < end; ++i) {
                lap.restart();
                tree::walk_group(tree_, groups_[base + i], walk_cfg,
                                 lists_.slot(i), &ws.walk);
                lists_.record_use(i);
                ws.seconds_walk += lap.lap();
                if (h_list != nullptr) {
                  h_list->observe(
                      static_cast<double>(lists_.slot(i).pos.size()));
                  h_group->observe(
                      static_cast<double>(groups_[base + i].count));
                }
              }
            });
      }
      G5_OBS_SPAN("eval", "grape");
      for (std::size_t i = 0; i < m; ++i) {
        const tree::Group& group = groups_[base + i];
        const tree::InteractionList& list = lists_.slot(i);
        std::span<const math::Vec3d> targets(
            tree_.sorted_pos().data() + group.first, group.count);
        const auto before = device_->system().account();
        device_->compute_forces_chunked(
            targets, list.pos, list.mass,
            std::span<math::Vec3d>(acc_sorted_.data() + group.first,
                                   group.count),
            std::span<double>(pot_sorted_.data() + group.first, group.count));
        const auto& after = device_->system().account();
        stats_.interactions += after.interactions - before.interactions;
        stats_.seconds_kernel += after.emulation_wall - before.emulation_wall;
        ++stats_.groups;
      }
    }
    {
      // Under a walk span so walk.cpu files at the same path as in
      // HostTreeEngine ("/force/walk/walk.cpu"); the scope itself only
      // adds the (negligible) reduction time to the walk phase.
      G5_OBS_SPAN("walk", "tree");
      reduce_walk_scratch(scratch_, stats_);
    }
  }
  lists_.end_phase();

  // Scatter sorted-order results back to the caller's ordering.
  for (std::size_t slot = 0; slot < n; ++slot) {
    const std::uint32_t dst = orig[slot];
    pset.acc()[dst] = acc_sorted_[slot];
    pset.pot()[dst] = pot_sorted_[slot];
  }

  // The group's direct part includes each member itself; the pipeline's
  // coincident-pair cut drops those self terms in hardware.

  ++stats_.evaluations;
  stats_.seconds_total += total.elapsed();
}

void GrapeTreeEngine::compute_targets(model::ParticleSet& pset,
                                      std::span<const std::uint32_t> targets) {
  G5_OBS_SPAN("force", "engine");
  util::Stopwatch total;
  if (pset.empty() || targets.empty()) return;

  auto& pool = ensure_walk_pool(pool_, params_.threads, scratch_);
  util::Stopwatch phase;
  {
    G5_OBS_SPAN("build", "tree");
    tree::TreeBuildConfig build_cfg;
    build_cfg.leaf_max = params_.leaf_max;
    build_cfg.parallel = {params_.threads, params_.build_parallel_cutoff};
    tree_.build(pset, build_cfg, &pool);
  }
  stats_.seconds_tree_build += phase.lap();
  if (obs::enabled()) {
    obs::counter("g5.tree.builds").add(1);
    obs::counter("g5.tree.nodes").add(tree_.node_count());
  }

  configure_device_window(*device_, pset, params_.eps);

  // Per-target original walks; each list streams through the hardware
  // with the target as the single i-particle. (The grouped algorithm
  // pays off for full-set evaluations; scattered subsets use the
  // original per-particle lists, as individual-timestep GRAPE codes did.)
  // Walks run batched across the host lanes; with pipeline_depth >= 2
  // the evaluations run on the AsyncDevice thread, double-buffered
  // against the next batch's walks, exactly as in compute().
  const tree::WalkConfig walk_cfg{params_.theta, params_.mac};
  const std::size_t batch =
      std::max<std::size_t>(std::size_t{16} * pool.size(), 64);
  const std::size_t depth = std::min<std::size_t>(
      std::max<std::size_t>(params_.pipeline_depth, 2), 8);
  grape::AsyncDevice* async = ensure_async_device(
      async_, device_, params_.pipeline_depth, depth * batch);

  // Per-target original walks always have a single i-particle, so only
  // the list-length distribution is published (no group sizes).
  obs::Histogram* h_list =
      obs::enabled() ? &obs::histogram("g5.walk.list_len") : nullptr;

  if (async != nullptr) {
    lists_.ensure(depth * batch);
    if (jobs_.size() < depth) jobs_.resize(depth);
    if (target_pos_.size() < depth) target_pos_.resize(depth);
    std::vector<grape::AsyncDevice::Ticket> last_ticket(depth, 0);
    double hidden_s = 0.0;  // producer work done while jobs were in flight
    double pipeline_wall = 0.0;
    util::Stopwatch pipe_watch;
    try {
      G5_OBS_SPAN("pipeline", "engine");
      std::size_t set_index = 0;
      for (std::size_t base = 0; base < targets.size();
           base += batch, ++set_index) {
        const std::size_t m = std::min(batch, targets.size() - base);
        const std::size_t set = set_index % depth;
        async->wait_for(last_ticket[set]);
        const bool overlapping = async->in_flight() > 0;
        util::Stopwatch batch_watch;
        {
          G5_OBS_SPAN("walk", "tree");
          pool.parallel_for(
              m, 8, [&](std::size_t begin, std::size_t end, unsigned lane) {
                WalkScratch& ws = scratch_[lane];
                util::Stopwatch lap;
                for (std::size_t i = begin; i < end; ++i) {
                  lap.restart();
                  const std::size_t slot = set * batch + i;
                  tree::walk_original(tree_, pset.pos()[targets[base + i]],
                                      walk_cfg, lists_.slot(slot), &ws.walk);
                  lists_.record_use(slot);
                  ws.seconds_walk += lap.lap();
                  if (h_list != nullptr) {
                    h_list->observe(
                        static_cast<double>(lists_.slot(slot).pos.size()));
                  }
                }
              });
        }
        auto& jobs = jobs_[set];
        if (jobs.size() < m) jobs.resize(m);
        // Target positions must outlive the in-flight job — persist them
        // in the set's buffer (a stack local would dangle).
        auto& tpos = target_pos_[set];
        if (tpos.size() < m) tpos.resize(m);
        for (std::size_t i = 0; i < m; ++i) {
          const std::uint32_t t = targets[base + i];
          const tree::InteractionList& list = lists_.slot(set * batch + i);
          tpos[i] = pset.pos()[t];
          grape::ForceJob& job = jobs[i];
          job = grape::ForceJob{};
          job.i_pos = std::span<const math::Vec3d>(&tpos[i], 1);
          job.j_pos = list.pos;
          job.j_mass = list.mass;
          job.acc = std::span<math::Vec3d>(&pset.acc()[t], 1);
          job.pot = std::span<double>(&pset.pot()[t], 1);
          last_ticket[set] = async->submit(job);
          ++stats_.groups;
        }
        if (overlapping) hidden_s += batch_watch.elapsed();
      }
      async->drain();
      {
        G5_OBS_SPAN("walk", "tree");
        reduce_walk_scratch(scratch_, stats_);
      }
      pipeline_wall = pipe_watch.elapsed();
    } catch (...) {
      try {
        async_->drain();
      } catch (...) {
      }
      async_.reset();
      throw;
    }
    const grape::AsyncDevice::Completed done = async->take_completed();
    stats_.interactions += done.interactions;
    stats_.seconds_kernel += done.emulation_seconds;
    publish_overlap(hidden_s, pipeline_wall);
  } else {
    lists_.ensure(std::min(batch, targets.size()));
    for (std::size_t base = 0; base < targets.size(); base += batch) {
      const std::size_t m = std::min(batch, targets.size() - base);
      {
        G5_OBS_SPAN("walk", "tree");
        pool.parallel_for(
            m, 8, [&](std::size_t begin, std::size_t end, unsigned lane) {
              WalkScratch& ws = scratch_[lane];
              util::Stopwatch lap;
              for (std::size_t i = begin; i < end; ++i) {
                lap.restart();
                tree::walk_original(tree_, pset.pos()[targets[base + i]],
                                    walk_cfg, lists_.slot(i), &ws.walk);
                lists_.record_use(i);
                ws.seconds_walk += lap.lap();
                if (h_list != nullptr) {
                  h_list->observe(
                      static_cast<double>(lists_.slot(i).pos.size()));
                }
              }
            });
      }
      G5_OBS_SPAN("eval", "grape");
      for (std::size_t i = 0; i < m; ++i) {
        const std::uint32_t t = targets[base + i];
        const tree::InteractionList& list = lists_.slot(i);
        const math::Vec3d xi = pset.pos()[t];
        const auto before = device_->system().account();
        device_->compute_forces_chunked({&xi, 1}, list.pos, list.mass,
                                        {&pset.acc()[t], 1},
                                        {&pset.pot()[t], 1});
        const auto& after = device_->system().account();
        stats_.interactions += after.interactions - before.interactions;
        stats_.seconds_kernel += after.emulation_wall - before.emulation_wall;
        ++stats_.groups;
      }
    }
    {
      G5_OBS_SPAN("walk", "tree");  // same path as compute(), see above
      reduce_walk_scratch(scratch_, stats_);
    }
  }
  lists_.end_phase();
  ++stats_.evaluations;
  stats_.seconds_total += total.elapsed();
}

std::unique_ptr<ForceEngine> make_engine(
    const std::string& name, const ForceParams& params,
    std::shared_ptr<grape::Grape5Device> device) {
  auto need_device = [&]() -> std::shared_ptr<grape::Grape5Device> {
    if (device) return device;
    grape::SystemConfig cfg = grape::SystemConfig::paper_system();
    cfg.numerics.backend = params.backend;
    if (params.boards > 0) cfg.boards = params.boards;
    return std::make_shared<grape::Grape5Device>(cfg);
  };
  if (name == "host-direct") {
    return std::make_unique<HostDirectEngine>(params);
  }
  if (name == "host-tree" || name == "host-tree-original") {
    return std::make_unique<HostTreeEngine>(params,
                                            HostTreeEngine::Mode::Original);
  }
  if (name == "host-tree-modified") {
    return std::make_unique<HostTreeEngine>(params,
                                            HostTreeEngine::Mode::Modified);
  }
  if (name == "grape-direct") {
    return std::make_unique<GrapeDirectEngine>(params, need_device());
  }
  if (name == "grape-tree") {
    return std::make_unique<GrapeTreeEngine>(params, need_device());
  }
  throw std::invalid_argument("unknown engine '" + name +
                              "' (host-direct, host-tree[-original], "
                              "host-tree-modified, grape-direct, grape-tree)");
}

}  // namespace g5::core
