#include "core/engines.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "util/timer.hpp"

namespace g5::core {

namespace {

/// Reduce the per-lane walk scratch of one force phase into stats and,
/// when instrumentation is on, the obs phase table and counters (same
/// accounting as HostTreeEngine::reduce_scratch; kernel CPU time is
/// absent here because evaluation runs on the device).
void reduce_walk_scratch(const std::vector<WalkScratch>& scratch,
                         EngineStats& stats) {
  double walk_cpu = 0.0;
  tree::WalkStats walked;
  for (const auto& ws : scratch) {
    stats.walk.merge(ws.walk);
    stats.seconds_walk += ws.seconds_walk;
    walked.merge(ws.walk);
    walk_cpu += ws.seconds_walk;
  }
  if (obs::enabled()) {
    obs::record_phase("walk.cpu", walk_cpu, walked.lists);
    obs::counter("g5.walk.lists").add(walked.lists);
    obs::counter("g5.walk.list_entries").add(walked.list_entries);
    obs::counter("g5.walk.interactions").add(walked.interactions);
  }
}

}  // namespace

GrapeTreeEngine::GrapeTreeEngine(const ForceParams& params,
                                 std::shared_ptr<grape::Grape5Device> device)
    : ForceEngine(params), device_(std::move(device)) {
  if (!device_) throw std::invalid_argument("grape device is null");
}

void GrapeTreeEngine::compute(model::ParticleSet& pset) {
  G5_OBS_SPAN("force", "engine");
  util::Stopwatch total;
  const std::size_t n = pset.size();
  pset.zero_force();
  if (n == 0) return;

  // Host phase 1: tree construction.
  util::Stopwatch phase;
  {
    G5_OBS_SPAN("build", "tree");
    tree::TreeBuildConfig build_cfg;
    build_cfg.leaf_max = params_.leaf_max;
    tree_.build(pset, build_cfg);
  }
  stats_.seconds_tree_build += phase.lap();
  if (obs::enabled()) {
    obs::counter("g5.tree.builds").add(1);
    obs::counter("g5.tree.nodes").add(tree_.node_count());
  }

  // Hardware setup for this force phase: window from the current hull.
  configure_device_window(*device_, pset, params_.eps);

  const auto groups =
      tree::collect_groups(tree_, tree::GroupConfig{params_.n_crit});
  const tree::WalkConfig walk_cfg{params_.theta, params_.mac};
  const auto& orig = tree_.original_index();

  if (acc_sorted_.size() < n) {
    acc_sorted_.resize(n);
    pot_sorted_.resize(n);
  }

  // Per batch of groups: host lanes build the shared interaction lists in
  // parallel (phase 2), then GRAPE evaluates them serially in group order
  // (phase 3, the device is a single shared resource) and the host
  // scatters results. Batching bounds the lists held in memory while
  // keeping every lane busy during the walk phase.
  auto& pool = ensure_walk_pool(pool_, params_.threads, scratch_);
  const std::size_t batch =
      std::max<std::size_t>(std::size_t{4} * pool.size(), 8);
  if (batch_lists_.size() < std::min(batch, groups.size())) {
    batch_lists_.resize(std::min(batch, groups.size()));
  }
  for (std::size_t base = 0; base < groups.size(); base += batch) {
    const std::size_t m = std::min(batch, groups.size() - base);
    // Lane-ownership contract (WalkScratch doc): each lane touches only
    // scratch_[lane] and its own batch_lists_ slots, checked by TSan.
    {
      G5_OBS_SPAN("walk", "tree");
      pool.parallel_for(
          m, 1, [&](std::size_t begin, std::size_t end, unsigned lane) {
            WalkScratch& ws = scratch_[lane];
            util::Stopwatch lap;
            for (std::size_t i = begin; i < end; ++i) {
              lap.restart();
              tree::walk_group(tree_, groups[base + i], walk_cfg,
                               batch_lists_[i], &ws.walk);
              ws.seconds_walk += lap.lap();
            }
          });
    }
    G5_OBS_SPAN("eval", "grape");
    for (std::size_t i = 0; i < m; ++i) {
      const tree::Group& group = groups[base + i];
      const tree::InteractionList& list = batch_lists_[i];
      std::span<const math::Vec3d> targets(
          tree_.sorted_pos().data() + group.first, group.count);
      const auto before = device_->system().account();
      device_->compute_forces_chunked(
          targets, list.pos, list.mass,
          std::span<math::Vec3d>(acc_sorted_.data() + group.first,
                                 group.count),
          std::span<double>(pot_sorted_.data() + group.first, group.count));
      const auto& after = device_->system().account();
      stats_.interactions += after.interactions - before.interactions;
      stats_.seconds_kernel += after.emulation_wall - before.emulation_wall;
      ++stats_.groups;
    }
  }
  {
    // Under a walk span so walk.cpu files at the same path as in
    // HostTreeEngine ("/force/walk/walk.cpu"); the scope itself only
    // adds the (negligible) reduction time to the walk phase.
    G5_OBS_SPAN("walk", "tree");
    reduce_walk_scratch(scratch_, stats_);
  }

  // Scatter sorted-order results back to the caller's ordering.
  for (std::size_t slot = 0; slot < n; ++slot) {
    const std::uint32_t dst = orig[slot];
    pset.acc()[dst] = acc_sorted_[slot];
    pset.pot()[dst] = pot_sorted_[slot];
  }

  // The group's direct part includes each member itself; the pipeline's
  // coincident-pair cut drops those self terms in hardware.

  ++stats_.evaluations;
  stats_.seconds_total += total.elapsed();
}

void GrapeTreeEngine::compute_targets(model::ParticleSet& pset,
                                      std::span<const std::uint32_t> targets) {
  G5_OBS_SPAN("force", "engine");
  util::Stopwatch total;
  if (pset.empty() || targets.empty()) return;

  util::Stopwatch phase;
  {
    G5_OBS_SPAN("build", "tree");
    tree::TreeBuildConfig build_cfg;
    build_cfg.leaf_max = params_.leaf_max;
    tree_.build(pset, build_cfg);
  }
  stats_.seconds_tree_build += phase.lap();
  if (obs::enabled()) {
    obs::counter("g5.tree.builds").add(1);
    obs::counter("g5.tree.nodes").add(tree_.node_count());
  }

  configure_device_window(*device_, pset, params_.eps);

  // Per-target original walks; each list streams through the hardware
  // with the target as the single i-particle. (The grouped algorithm
  // pays off for full-set evaluations; scattered subsets use the
  // original per-particle lists, as individual-timestep GRAPE codes did.)
  // Walks run batched across the host lanes; the device stays serial.
  const tree::WalkConfig walk_cfg{params_.theta, params_.mac};
  auto& pool = ensure_walk_pool(pool_, params_.threads, scratch_);
  const std::size_t batch =
      std::max<std::size_t>(std::size_t{16} * pool.size(), 64);
  if (batch_lists_.size() < std::min(batch, targets.size())) {
    batch_lists_.resize(std::min(batch, targets.size()));
  }
  for (std::size_t base = 0; base < targets.size(); base += batch) {
    const std::size_t m = std::min(batch, targets.size() - base);
    {
      G5_OBS_SPAN("walk", "tree");
      pool.parallel_for(
          m, 8, [&](std::size_t begin, std::size_t end, unsigned lane) {
            WalkScratch& ws = scratch_[lane];
            util::Stopwatch lap;
            for (std::size_t i = begin; i < end; ++i) {
              lap.restart();
              tree::walk_original(tree_, pset.pos()[targets[base + i]],
                                  walk_cfg, batch_lists_[i], &ws.walk);
              ws.seconds_walk += lap.lap();
            }
          });
    }
    G5_OBS_SPAN("eval", "grape");
    for (std::size_t i = 0; i < m; ++i) {
      const std::uint32_t t = targets[base + i];
      const tree::InteractionList& list = batch_lists_[i];
      const math::Vec3d xi = pset.pos()[t];
      const auto before = device_->system().account();
      device_->compute_forces_chunked({&xi, 1}, list.pos, list.mass,
                                      {&pset.acc()[t], 1},
                                      {&pset.pot()[t], 1});
      const auto& after = device_->system().account();
      stats_.interactions += after.interactions - before.interactions;
      stats_.seconds_kernel += after.emulation_wall - before.emulation_wall;
      ++stats_.groups;
    }
  }
  {
    G5_OBS_SPAN("walk", "tree");  // same path as compute(), see above
    reduce_walk_scratch(scratch_, stats_);
  }
  ++stats_.evaluations;
  stats_.seconds_total += total.elapsed();
}

std::unique_ptr<ForceEngine> make_engine(
    const std::string& name, const ForceParams& params,
    std::shared_ptr<grape::Grape5Device> device) {
  auto need_device = [&]() -> std::shared_ptr<grape::Grape5Device> {
    if (device) return device;
    return std::make_shared<grape::Grape5Device>(
        grape::SystemConfig::paper_system());
  };
  if (name == "host-direct") {
    return std::make_unique<HostDirectEngine>(params);
  }
  if (name == "host-tree" || name == "host-tree-original") {
    return std::make_unique<HostTreeEngine>(params,
                                            HostTreeEngine::Mode::Original);
  }
  if (name == "host-tree-modified") {
    return std::make_unique<HostTreeEngine>(params,
                                            HostTreeEngine::Mode::Modified);
  }
  if (name == "grape-direct") {
    return std::make_unique<GrapeDirectEngine>(params, need_device());
  }
  if (name == "grape-tree") {
    return std::make_unique<GrapeTreeEngine>(params, need_device());
  }
  throw std::invalid_argument("unknown engine '" + name +
                              "' (host-direct, host-tree[-original], "
                              "host-tree-modified, grape-direct, grape-tree)");
}

}  // namespace g5::core
