#include "core/engines.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/span.hpp"
#include "util/timer.hpp"

namespace g5::core {

std::pair<double, double> configure_device_window(
    grape::Grape5Device& device, const model::ParticleSet& pset, double eps) {
  const model::Aabb box = pset.bounding_box();
  // Cubic window with margin: particles drift between range updates, and
  // the interaction lists also contain cell centers of mass, which stay
  // inside the hull — 12.5 % margin each side covers both.
  const double size = std::max(box.cube_size(), 1e-12) * 1.25;
  const math::Vec3d c = box.center();
  const double half = 0.5 * size;
  const double lo = c.min_component() - half;
  const double hi = c.max_component() + half;
  double min_mass = std::numeric_limits<double>::infinity();
  for (double m : pset.mass()) min_mass = std::min(min_mass, m);
  if (!std::isfinite(min_mass) || min_mass <= 0.0) min_mass = 1.0;
  device.set_range(lo, hi, min_mass);
  device.set_eps(eps);
  return {lo, hi};
}

GrapeDirectEngine::GrapeDirectEngine(
    const ForceParams& params, std::shared_ptr<grape::Grape5Device> device)
    : ForceEngine(params), device_(std::move(device)) {
  if (!device_) throw std::invalid_argument("grape device is null");
}

void GrapeDirectEngine::compute(model::ParticleSet& pset) {
  G5_OBS_SPAN("force", "engine");
  util::Stopwatch total;
  pset.zero_force();
  const std::size_t n = pset.size();
  if (n == 0) return;

  configure_device_window(*device_, pset, params_.eps);

  const auto before = device_->system().account();
  device_->compute_forces_chunked(pset.pos(), pset.pos(), pset.mass(),
                                  pset.acc(), pset.pot());
  const auto& after = device_->system().account();
  stats_.interactions += after.interactions - before.interactions;
  stats_.seconds_kernel += after.emulation_wall - before.emulation_wall;

  // j includes every i; the pipeline's coincident-pair cut drops the
  // self term, so no correction is needed.

  ++stats_.evaluations;
  stats_.seconds_total += total.elapsed();
}

void GrapeDirectEngine::compute_targets(
    model::ParticleSet& pset, std::span<const std::uint32_t> targets) {
  G5_OBS_SPAN("force", "engine");
  util::Stopwatch total;
  if (pset.empty() || targets.empty()) return;

  configure_device_window(*device_, pset, params_.eps);

  // Gather targets as i-particles against the whole set as j.
  std::vector<math::Vec3d> i_pos(targets.size());
  std::vector<math::Vec3d> acc(targets.size());
  std::vector<double> pot(targets.size());
  for (std::size_t k = 0; k < targets.size(); ++k) {
    i_pos[k] = pset.pos()[targets[k]];
  }
  const auto before = device_->system().account();
  device_->compute_forces_chunked(i_pos, pset.pos(), pset.mass(), acc, pot);
  const auto& after = device_->system().account();
  stats_.interactions += after.interactions - before.interactions;
  stats_.seconds_kernel += after.emulation_wall - before.emulation_wall;

  for (std::size_t k = 0; k < targets.size(); ++k) {
    const std::uint32_t t = targets[k];
    pset.acc()[t] = acc[k];
    pset.pot()[t] = pot[k];
  }
  ++stats_.evaluations;
  stats_.seconds_total += total.elapsed();
}

}  // namespace g5::core
