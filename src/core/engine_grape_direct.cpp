#include "core/engines.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/span.hpp"
#include "util/timer.hpp"

namespace g5::core {

std::pair<double, double> configure_device_window(
    grape::Grape5Device& device, const model::ParticleSet& pset, double eps) {
  const model::Aabb box = pset.bounding_box();
  // Cubic window with margin: particles drift between range updates, and
  // the interaction lists also contain cell centers of mass, which stay
  // inside the hull — 12.5 % margin each side covers both.
  const double size = std::max(box.cube_size(), 1e-12) * 1.25;
  const math::Vec3d c = box.center();
  const double half = 0.5 * size;
  const double lo = c.min_component() - half;
  const double hi = c.max_component() + half;
  double min_mass = std::numeric_limits<double>::infinity();
  for (double m : pset.mass()) min_mass = std::min(min_mass, m);
  if (!std::isfinite(min_mass) || min_mass <= 0.0) min_mass = 1.0;
  device.set_range(lo, hi, min_mass);
  device.set_eps(eps);
  return {lo, hi};
}

grape::AsyncDevice* ensure_async_device(
    std::unique_ptr<grape::AsyncDevice>& async,
    const std::shared_ptr<grape::Grape5Device>& device,
    std::uint32_t pipeline_depth, std::size_t queue_capacity) {
  if (pipeline_depth < 2) {
    async.reset();  // switch back to the synchronous path
    return nullptr;
  }
  if (async &&
      (async->failed() || async->queue_capacity() < queue_capacity)) {
    async.reset();  // poisoned by a device error, or the batch grew
  }
  if (!async) {
    grape::AsyncDevice::Config cfg;
    cfg.queue_capacity = queue_capacity;
    async = std::make_unique<grape::AsyncDevice>(device, cfg);
  }
  return async.get();
}

GrapeDirectEngine::GrapeDirectEngine(
    const ForceParams& params, std::shared_ptr<grape::Grape5Device> device)
    : ForceEngine(params), device_(std::move(device)) {
  if (!device_) throw std::invalid_argument("grape device is null");
}

void GrapeDirectEngine::compute(model::ParticleSet& pset) {
  G5_OBS_SPAN("force", "engine");
  util::Stopwatch total;
  pset.zero_force();
  const std::size_t n = pset.size();
  if (n == 0) return;

  configure_device_window(*device_, pset, params_.eps);

  grape::AsyncDevice* async =
      ensure_async_device(async_, device_, params_.pipeline_depth, 1);
  if (async != nullptr) {
    // One job covering the whole set: direct summation has no walk to
    // overlap, but the async layer's board-parallel evaluation still
    // applies (bitwise-identical; see Grape5System::set_eval_pool).
    job_ = grape::ForceJob{};
    job_.i_pos = pset.pos();
    job_.j_pos = pset.pos();
    job_.j_mass = pset.mass();
    job_.acc = pset.acc();
    job_.pot = pset.pot();
    try {
      async->submit(job_);
      async->drain();
    } catch (...) {
      try {
        async_->drain();
      } catch (...) {
      }
      async_.reset();
      throw;
    }
    const grape::AsyncDevice::Completed done = async->take_completed();
    stats_.interactions += done.interactions;
    stats_.seconds_kernel += done.emulation_seconds;
  } else {
    const auto before = device_->system().account();
    device_->compute_forces_chunked(pset.pos(), pset.pos(), pset.mass(),
                                    pset.acc(), pset.pot());
    const auto& after = device_->system().account();
    stats_.interactions += after.interactions - before.interactions;
    stats_.seconds_kernel += after.emulation_wall - before.emulation_wall;
  }

  // j includes every i; the pipeline's coincident-pair cut drops the
  // self term, so no correction is needed.

  ++stats_.evaluations;
  stats_.seconds_total += total.elapsed();
}

void GrapeDirectEngine::compute_targets(
    model::ParticleSet& pset, std::span<const std::uint32_t> targets) {
  G5_OBS_SPAN("force", "engine");
  util::Stopwatch total;
  if (pset.empty() || targets.empty()) return;

  configure_device_window(*device_, pset, params_.eps);

  // Gather targets as i-particles against the whole set as j. The
  // buffers are members: an in-flight async job reads/writes them.
  i_pos_.resize(targets.size());
  acc_.resize(targets.size());
  pot_.resize(targets.size());
  for (std::size_t k = 0; k < targets.size(); ++k) {
    i_pos_[k] = pset.pos()[targets[k]];
  }

  grape::AsyncDevice* async =
      ensure_async_device(async_, device_, params_.pipeline_depth, 1);
  if (async != nullptr) {
    job_ = grape::ForceJob{};
    job_.i_pos = i_pos_;
    job_.j_pos = pset.pos();
    job_.j_mass = pset.mass();
    job_.acc = acc_;
    job_.pot = pot_;
    try {
      async->submit(job_);
      async->drain();
    } catch (...) {
      try {
        async_->drain();
      } catch (...) {
      }
      async_.reset();
      throw;
    }
    const grape::AsyncDevice::Completed done = async->take_completed();
    stats_.interactions += done.interactions;
    stats_.seconds_kernel += done.emulation_seconds;
  } else {
    const auto before = device_->system().account();
    device_->compute_forces_chunked(i_pos_, pset.pos(), pset.mass(), acc_,
                                    pot_);
    const auto& after = device_->system().account();
    stats_.interactions += after.interactions - before.interactions;
    stats_.seconds_kernel += after.emulation_wall - before.emulation_wall;
  }

  for (std::size_t k = 0; k < targets.size(); ++k) {
    const std::uint32_t t = targets[k];
    pset.acc()[t] = acc_[k];
    pset.pot()[t] = pot_[k];
  }
  ++stats_.evaluations;
  stats_.seconds_total += total.elapsed();
}

}  // namespace g5::core
