// Comoving-coordinate integration for cosmological runs.
//
// The paper integrates its sphere in physical coordinates; the standard
// alternative (and what most later treecodes adopted) factors the uniform
// Hubble expansion out. With comoving positions x = r / a and canonical
// momenta p = a^2 dx/dt the equations of motion are
//
//   dx/dt = p / a^2
//   dp/dt = [ g_com(x) + C(a) x ] / a ,
//
// where g_com is the G=1 gravitational acceleration computed from the
// comoving configuration (any ForceEngine) and C(a) x is the background
// term (Cosmology::comoving_background_coefficient) that cancels the
// region's own mean-field pull — for an unperturbed lattice the peculiar
// force vanishes identically. The KDK leapfrog uses the exact kick/drift
// time integrals over each scale-factor interval, with steps uniform in
// ln a.
//
// The ParticleSet convention inside a comoving run: pos() holds comoving
// positions x, vel() holds canonical momenta p. Use physical_to_comoving /
// comoving_to_physical to convert at the boundaries.
#pragma once

#include <cstdint>

#include "core/engine.hpp"
#include "model/cosmology.hpp"
#include "model/particles.hpp"

namespace g5::core {

struct ComovingConfig {
  model::CosmologyParams cosmo = model::CosmologyParams::scdm();
  double a_start = 0.04;  ///< the paper's z = 24
  double a_end = 1.0;
  std::uint64_t steps = 64;
  std::uint64_t log_every = 0;
};

struct ComovingSummary {
  std::uint64_t steps = 0;
  double wall_seconds = 0.0;
  EngineStats engine;
  double a_final = 0.0;
  /// rms comoving displacement over the run (growth diagnostic).
  double rms_comoving_displacement = 0.0;
};

class ComovingSimulation {
 public:
  ComovingSimulation(ForceEngine& engine, const ComovingConfig& config);

  /// Advance pset (comoving convention, see header comment) from a_start
  /// to a_end. The engine's eps is interpreted as a *comoving* softening.
  ComovingSummary run(model::ParticleSet& pset);

  /// Convert a physical-coordinate snapshot at scale factor a into the
  /// comoving convention (x = r/a, p = a (v - H r)).
  static void physical_to_comoving(model::ParticleSet& pset,
                                   const model::Cosmology& cosmo, double a);

  /// Inverse conversion (r = a x, v = H r + p / a).
  static void comoving_to_physical(model::ParticleSet& pset,
                                   const model::Cosmology& cosmo, double a);

  [[nodiscard]] const ComovingConfig& config() const noexcept { return cfg_; }

 private:
  ForceEngine& engine_;
  ComovingConfig cfg_;
  model::Cosmology cosmo_;

  /// Compute the peculiar force g_com + C(a) x into pset.acc().
  void peculiar_force(model::ParticleSet& pset, double a);
};

}  // namespace g5::core
