#include "core/diagnostics.hpp"

#include <cmath>

namespace g5::core {

ConservationReport diagnose(const model::ParticleSet& pset) {
  ConservationReport r;
  r.energy.kinetic = pset.kinetic_energy();
  r.energy.potential = pset.potential_energy_from_pot();
  r.momentum = pset.total_momentum();
  r.angular_momentum = pset.total_angular_momentum();
  r.center_of_mass = pset.center_of_mass();
  return r;
}

double relative_energy_drift(const EnergyReport& now,
                             const EnergyReport& initial) {
  const double e0 = initial.total();
  if (e0 == 0.0) return std::fabs(now.total());
  return std::fabs((now.total() - e0) / e0);
}

}  // namespace g5::core
