#include "core/simulation.hpp"

#include <cmath>
#include <cstdio>
#include <optional>
#include <stdexcept>

#include "core/engines.hpp"
#include "core/snapshot.hpp"
#include "obs/crash.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace g5::core {

namespace {

/// Pull the GRAPE system out of an engine if it drives one (its account
/// and byte meters feed the summary and the per-step metrics).
const grape::Grape5System* grape_system(const ForceEngine& engine) {
  if (const auto* e = dynamic_cast<const GrapeTreeEngine*>(&engine)) {
    return &e->device().system();
  }
  if (const auto* e = dynamic_cast<const GrapeDirectEngine*>(&engine)) {
    return &e->device().system();
  }
  return nullptr;
}

std::string snapshot_name(const std::string& prefix, std::uint64_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "_%06llu.g5snap",
                static_cast<unsigned long long>(index));
  return prefix + buf;
}

}  // namespace

Simulation::Simulation(ForceEngine& engine, const SimulationConfig& config)
    : engine_(engine), cfg_(config) {
  if (cfg_.dt_schedule.empty()) {
    if (!(cfg_.dt > 0.0)) throw std::invalid_argument("dt must be > 0");
  } else {
    cfg_.steps = cfg_.dt_schedule.size();
    for (double dt : cfg_.dt_schedule) {
      if (!(dt > 0.0)) {
        throw std::invalid_argument("dt_schedule entries must be > 0");
      }
    }
  }
}

SimulationSummary Simulation::run(model::ParticleSet& pset) {
  SimulationSummary summary;
  util::Stopwatch wall;

  engine_.reset_stats();
  if (auto* gt = dynamic_cast<GrapeTreeEngine*>(&engine_)) {
    gt->device().system().reset_account();
  } else if (auto* gd = dynamic_cast<GrapeDirectEngine*>(&engine_)) {
    gd->device().system().reset_account();
  }

  LeapfrogIntegrator integrator;
  integrator.prime(pset, engine_);

  summary.energy_initial = diagnose(pset).energy;
  const math::Vec3d p0 = pset.total_momentum();
  const math::Vec3d l0 = pset.total_angular_momentum();

  std::uint64_t snap_index = 0;
  if (cfg_.snapshot_every > 0) {
    write_snapshot(snapshot_name(cfg_.snapshot_prefix, snap_index), pset, 0.0,
                   engine_.params().eps);
    ++snap_index;
    ++summary.snapshots_written;
  }

  struct FileCloser {
    void operator()(std::FILE* f) const {
      if (f != nullptr) std::fclose(f);
    }
  };
  std::unique_ptr<std::FILE, FileCloser> csv;
  if (!cfg_.stats_csv.empty()) {
    csv.reset(std::fopen(cfg_.stats_csv.c_str(), "w"));
    if (!csv) {
      throw std::runtime_error("cannot open " + cfg_.stats_csv +
                               " for writing");
    }
    std::fprintf(csv.get(),
                 "step,time,interactions,lists,mean_list,kinetic,potential,"
                 "total_energy\n");
  }
  std::uint64_t prev_inter = engine_.stats().interactions;
  std::uint64_t prev_lists = engine_.stats().walk.lists;
  std::uint64_t prev_entries = engine_.stats().walk.list_entries;

  // Per-step observability: baselines for StepMetrics deltas (taken after
  // priming so step records carry step work only).
  std::optional<obs::MetricsWriter> metrics;
  if (!cfg_.metrics_jsonl.empty()) metrics.emplace(cfg_.metrics_jsonl);
  // Fresh probe per run: its sampling stream restarts at call 0, so a
  // rerun with the same seed reproduces the same subsets.
  std::optional<obs::ForceErrorProbe> probe;
  if (cfg_.probe_every > 0) {
    obs::ProbeConfig pc;
    pc.samples = cfg_.probe_samples;
    pc.seed = cfg_.probe_seed;
    pc.eps = engine_.params().eps;
    pc.theta = engine_.params().theta;
    pc.mac = engine_.params().mac;
    pc.leaf_max = engine_.params().leaf_max;
    pc.quadrupole = engine_.params().quadrupole;
    pc.backend = engine_.params().backend;
    probe.emplace(pc);
  }
  const grape::Grape5System* gsys = grape_system(engine_);
  EngineStats prev_stats = engine_.stats();
  grape::HardwareAccount prev_grape =
      gsys ? gsys->account() : grape::HardwareAccount{};
  std::uint64_t prev_bytes = gsys ? gsys->bytes_moved() : 0;

  double t_elapsed = 0.0;
  // Heartbeat state: steps/s smoothed with an EMA so the ETA is stable
  // against per-step jitter. Published as g5.sim.* gauges each step;
  // the telemetry sampler snapshots them into the status file.
  double rate_ema = 0.0;
  for (std::uint64_t s = 1; s <= cfg_.steps; ++s) {
    const double dt = cfg_.dt_schedule.empty()
                          ? cfg_.dt
                          : cfg_.dt_schedule[static_cast<std::size_t>(s - 1)];
    util::Stopwatch step_wall;
    G5_OBS_SPAN("step", "sim");
    integrator.step(pset, engine_, dt);
    t_elapsed += dt;

    if (hook_) hook_(s, pset);

    if (csv) {
      G5_OBS_SPAN("diagnostics", "sim");
      const auto& es = engine_.stats();
      const std::uint64_t d_inter = es.interactions - prev_inter;
      const std::uint64_t d_lists = es.walk.lists - prev_lists;
      const std::uint64_t d_entries = es.walk.list_entries - prev_entries;
      prev_inter = es.interactions;
      prev_lists = es.walk.lists;
      prev_entries = es.walk.list_entries;
      const auto diag = diagnose(pset);
      std::fprintf(csv.get(), "%llu,%.10g,%llu,%llu,%.6g,%.10g,%.10g,%.10g\n",
                   static_cast<unsigned long long>(s), t_elapsed,
                   static_cast<unsigned long long>(d_inter),
                   static_cast<unsigned long long>(d_lists),
                   d_lists > 0 ? static_cast<double>(d_entries) /
                                     static_cast<double>(d_lists)
                               : 0.0,
                   diag.energy.kinetic, diag.energy.potential,
                   diag.energy.total());
    }

    if (cfg_.log_every > 0 && (s % cfg_.log_every == 0 || s == cfg_.steps)) {
      const auto& es = engine_.stats();
      // rate_ema lags one step here (it updates after the step record
      // below); good enough for a human-facing progress line.
      const double eta_s =
          rate_ema > 0.0
              ? static_cast<double>(cfg_.steps - s) / rate_ema
              : 0.0;
      util::log_info() << "step " << s << "/" << cfg_.steps << " t="
                       << t_elapsed << " interactions=" << es.interactions
                       << " wall=" << wall.elapsed() << "s rate="
                       << rate_ema << "/s eta=" << eta_s << "s";
    }
    if (cfg_.diag_every > 0 && s % cfg_.diag_every == 0) {
      G5_OBS_SPAN("diagnostics", "sim");
      const auto diag = diagnose(pset);
      util::log_info() << "  E=" << diag.energy.total()
                       << " drift=" << relative_energy_drift(
                              diag.energy, summary.energy_initial)
                       << " |p|=" << diag.momentum.norm();
    }
    if (cfg_.snapshot_every > 0 && s % cfg_.snapshot_every == 0) {
      G5_OBS_SPAN("snapshot", "io");
      write_snapshot(snapshot_name(cfg_.snapshot_prefix, snap_index), pset,
                     t_elapsed, engine_.params().eps);
      ++snap_index;
      ++summary.snapshots_written;
    }

    // Step record: engine/hardware deltas over this step. Cheap enough
    // (a couple of struct copies) to keep unconditionally in sync.
    obs::StepMetrics m;
    if (probe && s % cfg_.probe_every == 0) {
      G5_OBS_SPAN("diagnostics", "sim");
      // Accuracy telemetry: conservation drifts against the primed state
      // and the sampled force-error split. acc/pot are current — the
      // integrator's closing kick just recomputed them.
      const auto diag = diagnose(pset);
      const double e_drift =
          relative_energy_drift(diag.energy, summary.energy_initial);
      const double p_drift = (diag.momentum - p0).norm();
      if (obs::enabled()) {
        obs::gauge("g5.sim.energy_drift").set(e_drift);
        obs::gauge("g5.sim.momentum_drift").set(p_drift);
      }
      const obs::ProbeResult pr = probe->measure(pset);
      summary.probe_last = pr;
      ++summary.probe_calls;
      m.energy_drift = e_drift;
      m.momentum_drift = p_drift;
      m.err_total_p50 = pr.total_p50;
      m.err_total_p99 = pr.total_p99;
      m.err_tree_p50 = pr.tree_p50;
      m.err_tree_p99 = pr.tree_p99;
      m.err_codec_p50 = pr.codec_p50;
      m.err_codec_p99 = pr.codec_p99;
    }
    m.step = s;
    m.t_sim = t_elapsed;
    m.wall_s = step_wall.elapsed();
    {
      const EngineStats& es = engine_.stats();
      m.build_s = es.seconds_tree_build - prev_stats.seconds_tree_build;
      m.walk_s = es.seconds_walk - prev_stats.seconds_walk;
      m.kernel_s = es.seconds_kernel - prev_stats.seconds_kernel;
      m.engine_s = es.seconds_total - prev_stats.seconds_total;
      m.interactions = es.interactions - prev_stats.interactions;
      m.list_entries = es.walk.list_entries - prev_stats.walk.list_entries;
      m.groups = es.groups - prev_stats.groups;
      prev_stats = es;
    }
    if (gsys) {
      const grape::HardwareAccount& ga = gsys->account();
      m.grape_force_calls = ga.force_calls - prev_grape.force_calls;
      m.grape_j_uploaded = ga.j_uploaded - prev_grape.j_uploaded;
      m.grape_emulation_s = ga.emulation_wall - prev_grape.emulation_wall;
      m.grape_modeled_dma_s =
          (ga.modeled_dma_j + ga.modeled_dma_i + ga.modeled_dma_result) -
          (prev_grape.modeled_dma_j + prev_grape.modeled_dma_i +
           prev_grape.modeled_dma_result);
      m.grape_modeled_compute_s =
          ga.modeled_compute - prev_grape.modeled_compute;
      m.grape_occupancy = ga.occupancy();
      const std::uint64_t bytes = gsys->bytes_moved();
      m.grape_bytes = bytes - prev_bytes;
      prev_bytes = bytes;
      prev_grape = ga;
    }
    if (metrics) metrics->write(m);
    // Heartbeat gauges + flight-recorder step ring. The recorder is
    // armed independently of obs::enabled() (it powers the crash
    // post-mortem even in otherwise-uninstrumented runs).
    {
      const double inst = m.wall_s > 0.0 ? 1.0 / m.wall_s : 0.0;
      rate_ema = s == 1 ? inst : 0.3 * inst + 0.7 * rate_ema;
    }
    if (obs::FlightRecorder::armed()) {
      obs::FlightRecorder::instance().record_step(m);
      // Keep the crash dump's pre-serialized registry section and cached
      // device-gauge pointers current (board gauges don't exist yet when
      // the handlers install, before the engine is built).
      if (obs::crash::installed()) obs::crash::refresh();
    }
    if (obs::enabled()) {
      obs::gauge("g5.sim.step").set(static_cast<double>(s));
      obs::gauge("g5.sim.steps_total")
          .set(static_cast<double>(cfg_.steps));
      obs::gauge("g5.sim.steps_per_s").set(rate_ema);
      obs::gauge("g5.sim.eta_s")
          .set(rate_ema > 0.0
                   ? static_cast<double>(cfg_.steps - s) / rate_ema
                   : 0.0);
      obs::gauge("g5.sim.interactions_per_s")
          .set(m.wall_s > 0.0
                   ? static_cast<double>(m.interactions) / m.wall_s
                   : 0.0);
      obs::gauge("g5.sim.mean_list")
          .set(m.groups > 0 ? static_cast<double>(m.list_entries) /
                                  static_cast<double>(m.groups)
                            : 0.0);
      obs::counter("g5.sim.steps").add(1);
      if (obs::tracing()) {
        obs::trace_counter("g5.step.interactions",
                           static_cast<double>(m.interactions));
        obs::trace_counter("g5.step.wall_s", m.wall_s);
      }
    }
  }

  summary.steps = cfg_.steps;
  summary.wall_seconds = wall.elapsed();
  summary.engine = engine_.stats();
  if (gsys) summary.grape = gsys->account();
  summary.energy_final = diagnose(pset).energy;
  summary.energy_drift =
      relative_energy_drift(summary.energy_final, summary.energy_initial);
  const math::Vec3d p1 = pset.total_momentum();
  summary.momentum_drift = {std::fabs(p1.x - p0.x), std::fabs(p1.y - p0.y),
                            std::fabs(p1.z - p0.z)};
  summary.angular_momentum_drift =
      (pset.total_angular_momentum() - l0).norm();
  return summary;
}

}  // namespace g5::core
