#include "core/simulation.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "core/engines.hpp"
#include "core/snapshot.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace g5::core {

namespace {

/// Pull the GRAPE hardware account out of an engine if it drives one.
const grape::HardwareAccount* grape_account(const ForceEngine& engine) {
  if (const auto* e = dynamic_cast<const GrapeTreeEngine*>(&engine)) {
    return &e->device().system().account();
  }
  if (const auto* e = dynamic_cast<const GrapeDirectEngine*>(&engine)) {
    return &e->device().system().account();
  }
  return nullptr;
}

std::string snapshot_name(const std::string& prefix, std::uint64_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "_%06llu.g5snap",
                static_cast<unsigned long long>(index));
  return prefix + buf;
}

}  // namespace

Simulation::Simulation(ForceEngine& engine, const SimulationConfig& config)
    : engine_(engine), cfg_(config) {
  if (cfg_.dt_schedule.empty()) {
    if (!(cfg_.dt > 0.0)) throw std::invalid_argument("dt must be > 0");
  } else {
    cfg_.steps = cfg_.dt_schedule.size();
    for (double dt : cfg_.dt_schedule) {
      if (!(dt > 0.0)) {
        throw std::invalid_argument("dt_schedule entries must be > 0");
      }
    }
  }
}

SimulationSummary Simulation::run(model::ParticleSet& pset) {
  SimulationSummary summary;
  util::Stopwatch wall;

  engine_.reset_stats();
  if (auto* gt = dynamic_cast<GrapeTreeEngine*>(&engine_)) {
    gt->device().system().reset_account();
  } else if (auto* gd = dynamic_cast<GrapeDirectEngine*>(&engine_)) {
    gd->device().system().reset_account();
  }

  LeapfrogIntegrator integrator;
  integrator.prime(pset, engine_);

  summary.energy_initial = diagnose(pset).energy;
  const math::Vec3d p0 = pset.total_momentum();
  const math::Vec3d l0 = pset.total_angular_momentum();

  std::uint64_t snap_index = 0;
  if (cfg_.snapshot_every > 0) {
    write_snapshot(snapshot_name(cfg_.snapshot_prefix, snap_index), pset, 0.0,
                   engine_.params().eps);
    ++snap_index;
    ++summary.snapshots_written;
  }

  struct FileCloser {
    void operator()(std::FILE* f) const {
      if (f != nullptr) std::fclose(f);
    }
  };
  std::unique_ptr<std::FILE, FileCloser> csv;
  if (!cfg_.stats_csv.empty()) {
    csv.reset(std::fopen(cfg_.stats_csv.c_str(), "w"));
    if (!csv) {
      throw std::runtime_error("cannot open " + cfg_.stats_csv +
                               " for writing");
    }
    std::fprintf(csv.get(),
                 "step,time,interactions,lists,mean_list,kinetic,potential,"
                 "total_energy\n");
  }
  std::uint64_t prev_inter = engine_.stats().interactions;
  std::uint64_t prev_lists = engine_.stats().walk.lists;
  std::uint64_t prev_entries = engine_.stats().walk.list_entries;

  double t_elapsed = 0.0;
  for (std::uint64_t s = 1; s <= cfg_.steps; ++s) {
    const double dt = cfg_.dt_schedule.empty()
                          ? cfg_.dt
                          : cfg_.dt_schedule[static_cast<std::size_t>(s - 1)];
    integrator.step(pset, engine_, dt);
    t_elapsed += dt;

    if (hook_) hook_(s, pset);

    if (csv) {
      const auto& es = engine_.stats();
      const std::uint64_t d_inter = es.interactions - prev_inter;
      const std::uint64_t d_lists = es.walk.lists - prev_lists;
      const std::uint64_t d_entries = es.walk.list_entries - prev_entries;
      prev_inter = es.interactions;
      prev_lists = es.walk.lists;
      prev_entries = es.walk.list_entries;
      const auto diag = diagnose(pset);
      std::fprintf(csv.get(), "%llu,%.10g,%llu,%llu,%.6g,%.10g,%.10g,%.10g\n",
                   static_cast<unsigned long long>(s), t_elapsed,
                   static_cast<unsigned long long>(d_inter),
                   static_cast<unsigned long long>(d_lists),
                   d_lists > 0 ? static_cast<double>(d_entries) /
                                     static_cast<double>(d_lists)
                               : 0.0,
                   diag.energy.kinetic, diag.energy.potential,
                   diag.energy.total());
    }

    if (cfg_.log_every > 0 && (s % cfg_.log_every == 0 || s == cfg_.steps)) {
      const auto& es = engine_.stats();
      util::log_info() << "step " << s << "/" << cfg_.steps << " t="
                       << t_elapsed << " interactions=" << es.interactions
                       << " wall=" << wall.elapsed() << "s";
    }
    if (cfg_.diag_every > 0 && s % cfg_.diag_every == 0) {
      const auto diag = diagnose(pset);
      util::log_info() << "  E=" << diag.energy.total()
                       << " drift=" << relative_energy_drift(
                              diag.energy, summary.energy_initial)
                       << " |p|=" << diag.momentum.norm();
    }
    if (cfg_.snapshot_every > 0 && s % cfg_.snapshot_every == 0) {
      write_snapshot(snapshot_name(cfg_.snapshot_prefix, snap_index), pset,
                     t_elapsed, engine_.params().eps);
      ++snap_index;
      ++summary.snapshots_written;
    }
  }

  summary.steps = cfg_.steps;
  summary.wall_seconds = wall.elapsed();
  summary.engine = engine_.stats();
  if (const auto* acct = grape_account(engine_)) summary.grape = *acct;
  summary.energy_final = diagnose(pset).energy;
  summary.energy_drift =
      relative_energy_drift(summary.energy_final, summary.energy_initial);
  const math::Vec3d p1 = pset.total_momentum();
  summary.momentum_drift = {std::fabs(p1.x - p0.x), std::fabs(p1.y - p0.y),
                            std::fabs(p1.z - p0.z)};
  summary.angular_momentum_drift =
      (pset.total_angular_momentum() - l0).norm();
  return summary;
}

}  // namespace g5::core
