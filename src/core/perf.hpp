// Performance and cost accounting: the machinery behind the paper's
// headline numbers (Section 5) and the n_g optimum (Section 3).
//
// Two models compose here:
//  * TimingModel (grape/timing.hpp) — modeled GRAPE-5 time from cycle
//    accounting;
//  * HostCostModel (below) — modeled host time on the paper's COMPAQ
//    AlphaServer DS10 (Alpha 21264 / 466 MHz), with per-operation
//    constants calibrated so the paper's aggregate wall clock (30,141 s
//    for 999 steps of N = 2,159,038) is reproduced; the constants
//    correspond to a few hundred CPU cycles per tree/list operation,
//    which is what contemporary treecode timings report.
//
// The "effective flops" correction: the modified algorithm does more
// interactions than the original one for the same accuracy, so sustained
// speed is quoted as (original-algorithm interaction count) * 38 /
// wall-time. PerformanceReport carries both raw and effective numbers.
#pragma once

#include <cstdint>

#include "grape/config.hpp"
#include "grape/timing.hpp"
#include "tree/walk.hpp"

namespace g5::core {

/// Modeled per-operation costs of the 1999 host (microseconds).
struct HostCostModel {
  double per_particle_build_us = 2.8;  ///< tree construction, per body
  double per_particle_step_us = 0.5;   ///< integration + bookkeeping, per body
  double per_list_entry_us = 0.75;     ///< traversal + list packing, per entry
  double per_group_us = 30.0;          ///< fixed cost per interaction list
  /// Host cores walking the tree. The paper's Alpha 21264 had one; the
  /// parallel group walk spreads traversal + list packing across cores
  /// while tree build and integration stay serial in the model.
  unsigned threads = 1;
  /// Marginal efficiency of each added walk core (scheduling + memory-
  /// bandwidth losses): speedup = 1 + (threads - 1) * parallel_efficiency.
  double parallel_efficiency = 0.85;

  /// Effective speedup of the traversal phase for the configured cores.
  [[nodiscard]] double walk_speedup() const {
    return threads <= 1
               ? 1.0
               : 1.0 + static_cast<double>(threads - 1) * parallel_efficiency;
  }

  /// Modeled host seconds for one force phase + step.
  [[nodiscard]] double step_seconds(std::uint64_t n_particles,
                                    std::uint64_t list_entries,
                                    std::uint64_t groups) const {
    return 1e-6 * (per_particle_build_us * static_cast<double>(n_particles) +
                   per_particle_step_us * static_cast<double>(n_particles) +
                   (per_list_entry_us * static_cast<double>(list_entries) +
                    per_group_us * static_cast<double>(groups)) /
                       walk_speedup());
  }
};

/// Aggregate description of a (real or projected) run for reporting.
struct RunWorkload {
  std::uint64_t n_particles = 0;
  std::uint64_t steps = 0;
  std::uint64_t interactions = 0;     ///< modified-algorithm total
  std::uint64_t list_entries = 0;     ///< sum of list lengths over groups
  std::uint64_t groups = 0;           ///< lists shipped (all steps)
  std::uint64_t original_interactions = 0;  ///< original-BH estimate
};

struct PerformanceReport {
  RunWorkload work;
  double grape_compute_s = 0.0;   ///< modeled
  double grape_dma_s = 0.0;       ///< modeled
  double host_s = 0.0;            ///< modeled
  double total_s = 0.0;           ///< modeled wall clock
  double raw_flops = 0.0;         ///< 38 * interactions / total
  double effective_flops = 0.0;   ///< 38 * original_interactions / total
  double avg_list_length = 0.0;   ///< interactions / (N * steps)
  double usd_total = 0.0;
  double usd_per_mflops = 0.0;    ///< against effective flops
};

/// Combine the cycle/timing model, host model and cost model into the
/// paper-style report for a given workload.
PerformanceReport project_performance(const grape::SystemConfig& system,
                                      const HostCostModel& host,
                                      const grape::CostModel& cost,
                                      const RunWorkload& work);

/// The paper's reported workload (Section 5), used by bench_e1_section5 to
/// check the model against the published row.
RunWorkload paper_workload();

/// Per-step GRAPE time (compute + list DMA) for a given per-step workload —
/// the quantity traded against host time in the n_g sweep (Section 3).
struct NgSweepPoint {
  double n_g = 0.0;                 ///< realized mean group size
  std::uint64_t list_entries = 0;   ///< per step
  std::uint64_t interactions = 0;   ///< per step
  std::uint64_t groups = 0;         ///< per step
  double host_s = 0.0;              ///< modeled host seconds / step
  double grape_s = 0.0;             ///< modeled GRAPE seconds / step
  [[nodiscard]] double total_s() const { return host_s + grape_s; }
};

NgSweepPoint sweep_point(const grape::SystemConfig& system,
                         const HostCostModel& host, std::uint64_t n_particles,
                         const tree::WalkStats& per_step_walk);

}  // namespace g5::core
