// Hierarchical block (individual) timesteps.
//
// The paper's run advances every particle with one shared timestep — the
// natural choice for the grouped treecode, where one interaction list
// serves many targets. Individual timesteps are the classic refinement
// the GRAPE family used for collisional dynamics (GRAPE-4): each particle
// gets a power-of-two subdivision dt_max / 2^rung chosen from a local
// criterion, and only the particles due at a substep have their forces
// recomputed — the rest coast on their last kick.
//
// Scheme: the synchronized block KDK. One block = dt_max. With R the
// deepest rung in use, the block runs 2^R substeps of dt_min; at substep
// boundaries the due particles (those with k * dt_min a multiple of their
// dt_i) close their previous kick, get fresh forces and open the next.
// All particles drift every substep, so force evaluations always see a
// synchronized position set. Rungs may change only when a particle is
// due (standard block-step rule; rung decreases are limited to
// block-aligned times to keep the hierarchy consistent).
//
// The timestep criterion is the standard collisionless choice
// dt_i = eta * sqrt(eps / |a_i|), quantized down to the nearest rung.
#pragma once

#include <cstdint>
#include <vector>

#include "core/engine.hpp"
#include "model/particles.hpp"

namespace g5::core {

struct BlockStepConfig {
  double dt_max = 0.01;   ///< top-of-hierarchy (block) step
  int max_rungs = 4;      ///< rungs 0..max_rungs-1; dt_min = dt_max/2^(R-1)
  double eta = 0.1;       ///< accuracy parameter of the dt criterion
};

struct BlockStepStats {
  std::uint64_t blocks = 0;
  std::uint64_t force_updates = 0;   ///< per-particle force recomputations
  std::uint64_t substeps = 0;
  /// Histogram of rung occupancy sampled at the end of each block.
  std::vector<std::uint64_t> rung_population;
  /// Equivalent shared-step force updates for the same span (N * 2^(R-1)
  /// per block) — the saving factor is force_updates / this.
  std::uint64_t shared_equivalent = 0;
};

class BlockTimestepIntegrator {
 public:
  explicit BlockTimestepIntegrator(const BlockStepConfig& config);

  /// Compute initial forces and rungs. Call before the first block.
  void prime(model::ParticleSet& pset, ForceEngine& engine);

  /// Advance one full block (dt_max). Forces valid on return.
  void step_block(model::ParticleSet& pset, ForceEngine& engine);

  [[nodiscard]] const BlockStepStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const std::vector<int>& rungs() const noexcept {
    return rungs_;
  }
  [[nodiscard]] const BlockStepConfig& config() const noexcept {
    return cfg_;
  }

 private:
  BlockStepConfig cfg_;
  BlockStepStats stats_;
  std::vector<int> rungs_;
  bool primed_ = false;

  [[nodiscard]] int rung_for(const math::Vec3d& acc, double eps) const;
};

}  // namespace g5::core
