// Snapshot analysis: the quantitative companions to Figure 4.
//
// The paper shows clustering qualitatively (a slab plot); these estimators
// quantify it: the two-point correlation function xi(r) (the standard
// clustering statistic of the era), spherical density/velocity profiles,
// and nearest-neighbour statistics. All estimators are exact
// (pair-counting via the octree for the correlation function, so large
// snapshots stay tractable).
#pragma once

#include <cstdint>
#include <vector>

#include "model/particles.hpp"

namespace g5::core {

using math::Vec3d;

/// Two-point correlation function estimate on logarithmic radial bins.
///
/// xi(r) = DD(r) / RR_analytic(r) - 1, with DD the data pair counts and
/// RR the expectation for an unclustered (Poisson) distribution of the
/// same density in the same spherical volume — the natural estimator for
/// an isolated sphere (no random catalog needed).
struct CorrelationFunction {
  std::vector<double> r_lo, r_hi;   ///< bin edges
  std::vector<double> xi;           ///< estimate per bin
  std::vector<std::uint64_t> pairs; ///< DD counts per bin
  double sample_radius = 0.0;       ///< sphere radius used for RR
  std::size_t n_used = 0;           ///< particles inside the sample sphere
};

struct CorrelationConfig {
  double r_min = 0.05;
  double r_max = 5.0;
  std::size_t bins = 16;
  /// Restrict the sample to particles within this radius of the centre of
  /// mass (0 = use the 90th-percentile radius, which keeps the estimator
  /// away from the ragged edge of the sphere).
  double sample_radius = 0.0;
};

CorrelationFunction correlation_function(const model::ParticleSet& pset,
                                         const CorrelationConfig& config);

/// Spherically averaged profiles about the centre of mass.
struct RadialProfile {
  std::vector<double> r_lo, r_hi;
  std::vector<std::uint64_t> count;
  std::vector<double> density;         ///< mass / shell volume
  std::vector<double> mean_radial_vel; ///< mass-weighted <v_r>
  std::vector<double> vel_dispersion;  ///< 3-D sigma about the shell mean
  double total_mass = 0.0;
};

struct RadialProfileConfig {
  double r_max = 0.0;     ///< 0 = max particle radius
  std::size_t bins = 24;
  bool log_bins = false;  ///< logarithmic bins from r_max/1e3
};

RadialProfile radial_profile(const model::ParticleSet& pset,
                             const RadialProfileConfig& config);

/// Lagrangian radii: radii enclosing the given mass fractions (about the
/// centre of mass). fractions must be in (0, 1].
std::vector<double> lagrangian_radii(const model::ParticleSet& pset,
                                     const std::vector<double>& fractions);

/// Mean nearest-neighbour distance of a random subset (clustering proxy;
/// ~ 0.554 * n^(-1/3) for a Poisson process of number density n).
double mean_nearest_neighbour(const model::ParticleSet& pset,
                              std::size_t probes, std::uint64_t seed);

}  // namespace g5::core
