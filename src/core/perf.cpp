#include "core/perf.hpp"

#include <cmath>

namespace g5::core {

namespace {

/// Aggregate modeled GRAPE seconds (compute + DMA) for a workload with the
/// given totals. Uses the mean group size for the VMP pass count — exact
/// when groups share a size, a tight approximation otherwise.
void grape_seconds(const grape::SystemConfig& system, const RunWorkload& work,
                   double& compute_s, double& dma_s) {
  compute_s = 0.0;
  dma_s = 0.0;
  if (work.interactions == 0 || work.list_entries == 0 || work.groups == 0) {
    return;
  }
  const grape::TimingModel timing(system);
  const double avg_ni = static_cast<double>(work.interactions) /
                        static_cast<double>(work.list_entries);
  const double slots = static_cast<double>(system.board.i_slots());
  const double passes = std::ceil(avg_ni / slots);
  const double boards = static_cast<double>(system.boards);
  compute_s = passes * static_cast<double>(work.list_entries) /
              (boards * system.board.memory_clock_hz);

  // DMA: j-lists split over the boards' interfaces (parallel), i uploads
  // and result readbacks per group, three DMA setups per group.
  const double bw = system.hib.bandwidth_bytes_per_s;
  const double j_bytes = static_cast<double>(work.list_entries) *
                         static_cast<double>(system.hib.bytes_per_j) / boards;
  const double i_total = static_cast<double>(work.n_particles) *
                         static_cast<double>(work.steps);
  const double i_bytes =
      i_total * static_cast<double>(system.hib.bytes_per_i);
  const double r_bytes =
      i_total * static_cast<double>(system.hib.bytes_per_result);
  dma_s = (j_bytes + i_bytes + r_bytes) / bw +
          3.0 * system.hib.latency_s * static_cast<double>(work.groups);
}

}  // namespace

PerformanceReport project_performance(const grape::SystemConfig& system,
                                      const HostCostModel& host,
                                      const grape::CostModel& cost,
                                      const RunWorkload& work) {
  PerformanceReport r;
  r.work = work;
  grape_seconds(system, work, r.grape_compute_s, r.grape_dma_s);
  // step_seconds takes per-step quantities; aggregate directly here.
  r.host_s = 1e-6 * (host.per_particle_build_us *
                         static_cast<double>(work.n_particles) *
                         static_cast<double>(work.steps) +
                     host.per_particle_step_us *
                         static_cast<double>(work.n_particles) *
                         static_cast<double>(work.steps) +
                     (host.per_list_entry_us *
                          static_cast<double>(work.list_entries) +
                      host.per_group_us * static_cast<double>(work.groups)) /
                         host.walk_speedup());
  r.total_s = r.grape_compute_s + r.grape_dma_s + r.host_s;
  if (r.total_s > 0.0) {
    r.raw_flops = grape::kFlopsPerInteraction *
                  static_cast<double>(work.interactions) / r.total_s;
    r.effective_flops = grape::kFlopsPerInteraction *
                        static_cast<double>(work.original_interactions) /
                        r.total_s;
  }
  const double denom = static_cast<double>(work.n_particles) *
                       static_cast<double>(work.steps);
  r.avg_list_length =
      denom > 0.0 ? static_cast<double>(work.interactions) / denom : 0.0;
  r.usd_total = cost.total_usd();
  r.usd_per_mflops = r.effective_flops > 0.0
                         ? cost.usd_per_mflops(r.effective_flops)
                         : 0.0;
  return r;
}

RunWorkload paper_workload() {
  RunWorkload w;
  w.n_particles = 2159038;
  w.steps = 999;
  w.interactions = static_cast<std::uint64_t>(2.90e13);
  w.original_interactions = static_cast<std::uint64_t>(4.69e12);
  // The paper reports the optimum n_g ~ 2000 for this configuration.
  const double n_g = 2000.0;
  w.groups = static_cast<std::uint64_t>(
      std::ceil(static_cast<double>(w.n_particles) / n_g) *
      static_cast<double>(w.steps));
  w.list_entries = static_cast<std::uint64_t>(
      static_cast<double>(w.interactions) / n_g);
  return w;
}

NgSweepPoint sweep_point(const grape::SystemConfig& system,
                         const HostCostModel& host, std::uint64_t n_particles,
                         const tree::WalkStats& per_step_walk) {
  NgSweepPoint p;
  p.list_entries = per_step_walk.list_entries;
  p.interactions = per_step_walk.interactions;
  p.groups = per_step_walk.lists;
  p.n_g = per_step_walk.list_entries > 0
              ? static_cast<double>(per_step_walk.interactions) /
                    static_cast<double>(per_step_walk.list_entries)
              : 0.0;
  p.host_s = host.step_seconds(n_particles, p.list_entries, p.groups);

  RunWorkload one_step;
  one_step.n_particles = n_particles;
  one_step.steps = 1;
  one_step.interactions = p.interactions;
  one_step.list_entries = p.list_entries;
  one_step.groups = p.groups;
  double compute_s = 0.0, dma_s = 0.0;
  grape_seconds(system, one_step, compute_s, dma_s);
  p.grape_s = compute_s + dma_s;
  return p;
}

}  // namespace g5::core
