#include "core/snapshot.hpp"

#include <cstdio>
#include <cstdint>
#include <cstring>
#include <memory>
#include <stdexcept>

namespace g5::core {

namespace {

constexpr char kMagic[8] = {'G', '5', 'S', 'N', 'A', 'P', '\0', '\1'};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

void write_exact(std::FILE* f, const void* data, std::size_t bytes,
                 const std::string& path) {
  if (std::fwrite(data, 1, bytes, f) != bytes) {
    throw std::runtime_error("short write to " + path);
  }
}

void read_exact(std::FILE* f, void* data, std::size_t bytes,
                const std::string& path) {
  if (std::fread(data, 1, bytes, f) != bytes) {
    throw std::runtime_error("short read from " + path);
  }
}

}  // namespace

void write_snapshot(const std::string& path, const model::ParticleSet& pset,
                    double time, double eps) {
  File f(std::fopen(path.c_str(), "wb"));
  if (!f) throw std::runtime_error("cannot open " + path + " for writing");
  write_exact(f.get(), kMagic, sizeof(kMagic), path);
  const std::uint64_t n = pset.size();
  write_exact(f.get(), &n, sizeof(n), path);
  write_exact(f.get(), &time, sizeof(time), path);
  write_exact(f.get(), &eps, sizeof(eps), path);
  write_exact(f.get(), pset.pos().data(), n * sizeof(math::Vec3d), path);
  write_exact(f.get(), pset.vel().data(), n * sizeof(math::Vec3d), path);
  write_exact(f.get(), pset.mass().data(), n * sizeof(double), path);
  write_exact(f.get(), pset.id().data(), n * sizeof(std::uint64_t), path);
}

SnapshotHeader read_snapshot(const std::string& path,
                             model::ParticleSet& pset_out) {
  File f(std::fopen(path.c_str(), "rb"));
  if (!f) throw std::runtime_error("cannot open " + path);
  char magic[8];
  read_exact(f.get(), magic, sizeof(magic), path);
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error(path + " is not a G5SNAP file");
  }
  SnapshotHeader h;
  read_exact(f.get(), &h.count, sizeof(h.count), path);
  read_exact(f.get(), &h.time, sizeof(h.time), path);
  read_exact(f.get(), &h.eps, sizeof(h.eps), path);
  pset_out.resize(h.count);
  read_exact(f.get(), pset_out.pos().data(), h.count * sizeof(math::Vec3d),
             path);
  read_exact(f.get(), pset_out.vel().data(), h.count * sizeof(math::Vec3d),
             path);
  read_exact(f.get(), pset_out.mass().data(), h.count * sizeof(double), path);
  read_exact(f.get(), pset_out.id().data(), h.count * sizeof(std::uint64_t),
             path);
  return h;
}

namespace {

struct TipsyHeader {
  double time = 0.0;
  std::int32_t nbodies = 0;
  std::int32_t ndim = 3;
  std::int32_t nsph = 0;
  std::int32_t ndark = 0;
  std::int32_t nstar = 0;
  std::int32_t pad = 0;
};

struct TipsyDark {
  float mass = 0.0f;
  float pos[3] = {0.0f, 0.0f, 0.0f};
  float vel[3] = {0.0f, 0.0f, 0.0f};
  float eps = 0.0f;
  float phi = 0.0f;
};

}  // namespace

void write_snapshot_tipsy(const std::string& path,
                          const model::ParticleSet& pset, double time,
                          double eps) {
  File f(std::fopen(path.c_str(), "wb"));
  if (!f) throw std::runtime_error("cannot open " + path + " for writing");
  TipsyHeader h;
  h.time = time;
  h.nbodies = static_cast<std::int32_t>(pset.size());
  h.ndark = h.nbodies;
  write_exact(f.get(), &h, sizeof(h), path);
  for (std::size_t i = 0; i < pset.size(); ++i) {
    TipsyDark d;
    d.mass = static_cast<float>(pset.mass()[i]);
    for (int c = 0; c < 3; ++c) {
      d.pos[c] = static_cast<float>(pset.pos()[i][static_cast<std::size_t>(c)]);
      d.vel[c] = static_cast<float>(pset.vel()[i][static_cast<std::size_t>(c)]);
    }
    d.eps = static_cast<float>(eps);
    d.phi = static_cast<float>(pset.pot()[i]);
    write_exact(f.get(), &d, sizeof(d), path);
  }
}

SnapshotHeader read_snapshot_tipsy(const std::string& path,
                                   model::ParticleSet& pset_out) {
  File f(std::fopen(path.c_str(), "rb"));
  if (!f) throw std::runtime_error("cannot open " + path);
  TipsyHeader h;
  read_exact(f.get(), &h, sizeof(h), path);
  if (h.ndim != 3 || h.nbodies < 0 || h.ndark != h.nbodies || h.nsph != 0 ||
      h.nstar != 0) {
    throw std::runtime_error(path + " is not a dark-only TIPSY snapshot");
  }
  pset_out.resize(static_cast<std::size_t>(h.nbodies));
  double eps = 0.0;
  for (std::size_t i = 0; i < pset_out.size(); ++i) {
    TipsyDark d;
    read_exact(f.get(), &d, sizeof(d), path);
    pset_out.mass()[i] = static_cast<double>(d.mass);
    pset_out.pos()[i] = {static_cast<double>(d.pos[0]),
                         static_cast<double>(d.pos[1]),
                         static_cast<double>(d.pos[2])};
    pset_out.vel()[i] = {static_cast<double>(d.vel[0]),
                         static_cast<double>(d.vel[1]),
                         static_cast<double>(d.vel[2])};
    pset_out.pot()[i] = static_cast<double>(d.phi);
    eps = static_cast<double>(d.eps);
  }
  SnapshotHeader out;
  out.count = static_cast<std::uint64_t>(h.nbodies);
  out.time = h.time;
  out.eps = eps;
  return out;
}

void write_snapshot_ascii(const std::string& path,
                          const model::ParticleSet& pset, double time) {
  File f(std::fopen(path.c_str(), "w"));
  if (!f) throw std::runtime_error("cannot open " + path + " for writing");
  std::fprintf(f.get(), "# G5SNAP ascii  n=%zu  time=%.17g\n", pset.size(),
               time);
  std::fprintf(f.get(), "# id x y z vx vy vz mass\n");
  for (std::size_t i = 0; i < pset.size(); ++i) {
    const auto& p = pset.pos()[i];
    const auto& v = pset.vel()[i];
    std::fprintf(f.get(), "%llu %.17g %.17g %.17g %.17g %.17g %.17g %.17g\n",
                 static_cast<unsigned long long>(pset.id()[i]), p.x, p.y, p.z,
                 v.x, v.y, v.z, pset.mass()[i]);
  }
}

}  // namespace g5::core
