// BoundedQueue: the blocking MPMC channel of the device pipeline.
//
// A fixed-capacity FIFO with close semantics, built on the annotated
// Mutex/CondVar primitives so -Wthread-safety checks the lock
// discipline statically (and the TSan CI job checks it dynamically):
//
//   * push() blocks while the queue is full; returns false (dropping
//     the value) once the queue is closed.
//   * pop() blocks while the queue is empty and open; drains remaining
//     items after close() and then returns false — so a consumer loop
//     `while (q.pop(item)) { ... }` processes every pushed item exactly
//     once and terminates.
//   * close() is idempotent and wakes every blocked producer/consumer.
//
// FIFO order is global: items pop in exactly the order push() calls
// committed them, which is what lets grape::AsyncDevice guarantee
// submission-order device evaluation with a single consumer.
#pragma once

#include <cstddef>
#include <deque>
#include <utility>

#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace g5::util {

template <typename T>
class BoundedQueue {
 public:
  /// `capacity` == 0 behaves as 1 (a zero-slot queue could never move
  /// an item).
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}
  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocking enqueue. Returns true once the value is committed, false
  /// if the queue was (or became) closed while waiting.
  bool push(T value) {
    MutexLock lock(mutex_);
    while (items_.size() >= capacity_ && !closed_) not_full_.wait(mutex_);
    if (closed_) return false;
    items_.push_back(std::move(value));
    not_empty_.notify_one();
    return true;
  }

  /// Blocking dequeue into `out`. Returns false only when the queue is
  /// closed AND fully drained.
  bool pop(T& out) {
    MutexLock lock(mutex_);
    while (items_.empty() && !closed_) not_empty_.wait(mutex_);
    if (items_.empty()) return false;  // closed and drained
    out = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return true;
  }

  /// Close the queue: subsequent pushes fail, pops drain the remainder.
  /// Wakes every waiter. Idempotent.
  void close() {
    MutexLock lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    MutexLock lock(mutex_);
    return closed_;
  }

  /// Items currently queued (a snapshot; racing producers/consumers can
  /// change it immediately).
  [[nodiscard]] std::size_t size() const {
    MutexLock lock(mutex_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable Mutex mutex_;
  CondVar not_empty_;
  CondVar not_full_;
  std::deque<T> items_ G5_GUARDED_BY(mutex_);
  bool closed_ G5_GUARDED_BY(mutex_) = false;
};

}  // namespace g5::util
