#include "util/parallel.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "obs/span.hpp"
#include "util/thread.hpp"

namespace g5::util {

unsigned resolve_thread_count(unsigned requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("G5_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<unsigned>(std::min(v, 1024L));
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(unsigned threads)
    : lanes_(resolve_thread_count(threads)) {
  workers_.reserve(lanes_ - 1);
  for (unsigned lane = 1; lane < lanes_; ++lane) {
    workers_.emplace_back([this, lane] { worker_loop(lane); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_chunks(unsigned lane) {
  // Worker lanes inherit the submitting thread's span path (published
  // with the job fields under the epoch protocol); lane 0 already runs
  // on the submitting thread, where ScopedParentPath is a no-op. Both
  // guards reduce to one relaxed load when instrumentation is off.
  const obs::ScopedParentPath obs_parent(obs_parent_);
  G5_OBS_SPAN("worker", "pool");
  for (;;) {
    const std::size_t begin =
        next_.fetch_add(grain_, std::memory_order_relaxed);
    if (begin >= n_) return;
    const std::size_t end = std::min(begin + grain_, n_);
    try {
      (*body_)(begin, end, lane);
    } catch (...) {
      const MutexLock lock(mutex_);
      if (!error_) error_ = std::current_exception();
      return;  // stop claiming; other lanes drain the rest
    }
  }
}

void ThreadPool::worker_loop(unsigned lane) {
  char name[kThreadNameCap];
  std::snprintf(name, sizeof(name), "g5-pool-%u", lane);
  set_current_thread_name(name);
  std::uint64_t seen = 0;
  for (;;) {
    {
      const MutexLock lock(mutex_);
      while (!stop_ && epoch_ == seen) start_cv_.wait(mutex_);
      if (stop_) return;
      seen = epoch_;
    }
    run_chunks(lane);
    {
      const MutexLock lock(mutex_);
      if (--active_ == 0) done_cv_.notify_one();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n, std::size_t grain,
                              const Body& body) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  if (lanes_ == 1 || n <= grain) {
    body(0, n, 0);
    return;
  }
  std::string obs_parent;
  if (obs::enabled()) obs_parent = obs::Span::current_path();
  std::exception_ptr error;
  {
    const MutexLock lock(mutex_);
    body_ = &body;
    n_ = n;
    grain_ = grain;
    obs_parent_ = std::move(obs_parent);
    next_.store(0, std::memory_order_relaxed);
    error_ = nullptr;
    active_ = lanes_ - 1;
    ++epoch_;
  }
  start_cv_.notify_all();
  run_chunks(0);
  {
    const MutexLock lock(mutex_);
    while (active_ != 0) done_cv_.wait(mutex_);
    error = error_;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace g5::util
