// Annotated mutex primitives for the thread-safety analysis.
//
// libstdc++'s std::mutex / std::lock_guard carry no capability
// attributes, so Clang's -Wthread-safety cannot see locks taken through
// them and every G5_GUARDED_BY field would false-positive. These thin
// wrappers (the pattern from the Clang thread-safety docs) restore the
// analysis: Mutex is the capability, MutexLock the scoped acquisition.
//
// Condition variables use std::condition_variable_any waiting on the
// Mutex itself (it is BasicLockable), so predicate loops evaluate with
// the capability visibly held:
//
//   MutexLock lock(mutex_);
//   while (!ready_) cv_.wait(mutex_);   // ready_ is G5_GUARDED_BY(mutex_)
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/annotations.hpp"

namespace g5::util {

class G5_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() G5_ACQUIRE() { m_.lock(); }
  void unlock() G5_RELEASE() { m_.unlock(); }

 private:
  std::mutex m_;
};

/// Scoped lock on a Mutex (annotated std::lock_guard equivalent).
class G5_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& m) G5_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~MutexLock() G5_RELEASE() { m_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& m_;
};

/// Condition variable usable with Mutex (see header comment).
using CondVar = std::condition_variable_any;

}  // namespace g5::util
