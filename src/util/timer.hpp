// Wall-clock stopwatch and scoped timing helpers.
//
// All performance statistics in the paper are wall-clock times from the
// UNIX system timer on the host; we use std::chrono::steady_clock in the
// same role.
#pragma once

#include <chrono>
#include <cstdint>

namespace g5::util {

/// A simple resettable stopwatch with lap accumulation.
class Stopwatch {
 public:
  using clock = std::chrono::steady_clock;

  Stopwatch() : start_(clock::now()) {}

  /// Restart timing from now; does not clear the accumulated total.
  void restart() noexcept { start_ = clock::now(); }

  /// Seconds since the last restart (or construction).
  [[nodiscard]] double elapsed() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Add the current lap to the accumulated total and restart.
  double lap() noexcept {
    const double dt = elapsed();
    total_ += dt;
    restart();
    return dt;
  }

  /// Accumulated total of all laps (seconds).
  [[nodiscard]] double total() const noexcept { return total_; }

  /// Reset accumulated total and restart.
  void reset() noexcept {
    total_ = 0.0;
    restart();
  }

 private:
  clock::time_point start_;
  double total_ = 0.0;
};

/// Accumulates wall time for a named phase; add laps with ScopedTimer.
class PhaseTimer {
 public:
  void add(double seconds) noexcept {
    total_ += seconds;
    ++count_;
  }
  [[nodiscard]] double total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : total_ / static_cast<double>(count_);
  }
  void reset() noexcept {
    total_ = 0.0;
    count_ = 0;
  }

 private:
  double total_ = 0.0;
  std::uint64_t count_ = 0;
};

/// RAII lap: adds elapsed wall time to a PhaseTimer on scope exit.
class ScopedTimer {
 public:
  explicit ScopedTimer(PhaseTimer& sink) : sink_(sink) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { sink_.add(watch_.elapsed()); }

 private:
  PhaseTimer& sink_;
  Stopwatch watch_;
};

}  // namespace g5::util
