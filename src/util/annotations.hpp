// Clang thread-safety annotation macros.
//
// Under Clang with -Wthread-safety (enabled by g5_warnings) these expand
// to the static-analysis attributes, so lock discipline on annotated
// classes — which mutex guards which field, which methods require or
// acquire which capability — is checked at compile time, complementing
// the dynamic TSan CI job. Under GCC (no such analysis) they expand to
// nothing and cost nothing.
//
// Conventions (see docs/static_analysis.md):
//  * Every mutex-protected field of a shared class carries G5_GUARDED_BY.
//  * Methods that assume a lock is held carry G5_REQUIRES.
//  * Lock-free publication protocols the analysis cannot express (e.g.
//    ThreadPool's epoch handshake) are opted out per-function with
//    G5_NO_THREAD_SAFETY_ANALYSIS and documented at the opt-out site.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define G5_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define G5_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Marks a class as a lockable capability (mutex wrappers).
#define G5_CAPABILITY(x) G5_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose lifetime holds a capability.
#define G5_SCOPED_CAPABILITY G5_THREAD_ANNOTATION(scoped_lockable)

/// Field is protected by the given mutex.
#define G5_GUARDED_BY(x) G5_THREAD_ANNOTATION(guarded_by(x))

/// Pointed-to data is protected by the given mutex.
#define G5_PT_GUARDED_BY(x) G5_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function may only be called with the capability held.
#define G5_REQUIRES(...) \
  G5_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the capability and holds it on return.
#define G5_ACQUIRE(...) G5_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability.
#define G5_RELEASE(...) G5_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function must NOT be called with the capability held (deadlock guard).
#define G5_EXCLUDES(...) G5_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Opt a function out of the analysis; justify at the use site.
#define G5_NO_THREAD_SAFETY_ANALYSIS \
  G5_THREAD_ANNOTATION(no_thread_safety_analysis)
