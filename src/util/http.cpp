#include "util/http.hpp"

#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>
#define G5_HTTP_SUPPORTED 1
#else
#define G5_HTTP_SUPPORTED 0
#endif

namespace g5::util {

namespace {

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    default: return "Status";
  }
}

}  // namespace

#if G5_HTTP_SUPPORTED

HttpListener::HttpListener(std::uint16_t port, Handler handler)
    : handler_(std::move(handler)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("http: cannot create socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 4) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("http: cannot bind 127.0.0.1:" +
                             std::to_string(port));
  }
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = port;
  }
  thread_ = Thread("g5-http", [this] { loop(); });
}

HttpListener::~HttpListener() { stop(); }

void HttpListener::stop() {
  stop_.store(true, std::memory_order_relaxed);
  thread_.join();  // idempotent: join() no-ops when already joined
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpListener::loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int r = ::poll(&pfd, 1, 200);  // short timeout: stop_ checks
    if (r <= 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    serve_one(client);
    ::close(client);
  }
}

void HttpListener::serve_one(int client_fd) {
  // Slow-client guard: a scraper that stalls mid-request can hold the
  // single connection for at most the socket timeout.
  timeval tv{};
  tv.tv_sec = 2;
  ::setsockopt(client_fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(client_fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  char buf[4096];
  std::size_t got = 0;
  while (got < sizeof(buf) - 1) {
    const ssize_t n = ::recv(client_fd, buf + got, sizeof(buf) - 1 - got, 0);
    if (n <= 0) break;
    got += static_cast<std::size_t>(n);
    buf[got] = '\0';
    if (std::strstr(buf, "\r\n\r\n") != nullptr ||
        std::strstr(buf, "\n\n") != nullptr) {
      break;
    }
  }
  buf[got] = '\0';

  HttpResponse resp;
  const std::string_view req(buf, got);
  if (req.substr(0, 4) == "GET ") {
    const std::size_t path_end = req.find(' ', 4);
    if (path_end != std::string_view::npos) {
      std::string_view path = req.substr(4, path_end - 4);
      const std::size_t q = path.find('?');
      if (q != std::string_view::npos) path = path.substr(0, q);
      resp = handler_(path);
    } else {
      resp = {400, "text/plain", "bad request\n"};
    }
  } else if (got == 0) {
    return;  // client connected and went away
  } else {
    resp = {405, "text/plain", "method not allowed\n"};
  }

  char head[256];
  const int head_len = std::snprintf(
      head, sizeof(head),
      "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
      "Connection: close\r\n\r\n",
      resp.status, status_text(resp.status), resp.content_type.c_str(),
      resp.body.size());
  if (head_len <= 0) return;
  std::string out(head, static_cast<std::size_t>(head_len));
  out += resp.body;
  std::size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n =
        ::send(client_fd, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
}

#else  // !G5_HTTP_SUPPORTED

HttpListener::HttpListener(std::uint16_t, Handler handler)
    : handler_(std::move(handler)) {
  throw std::runtime_error("http: not supported on this platform");
}
HttpListener::~HttpListener() = default;
void HttpListener::stop() {}
void HttpListener::loop() {}
void HttpListener::serve_one(int) {}

#endif  // G5_HTTP_SUPPORTED

}  // namespace g5::util
