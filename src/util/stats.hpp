// Streaming statistics accumulators (Welford mean/variance, min/max, rms)
// and a fixed-bin histogram. Used for interaction-list statistics, force
// error distributions and timing summaries.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace g5::util {

/// Single-pass mean / variance / min / max / rms accumulator (Welford).
class RunningStat {
 public:
  void add(double x) noexcept;

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const RunningStat& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  /// sqrt(E[x^2]) — the quantity the paper quotes for force errors.
  [[nodiscard]] double rms() const noexcept {
    return n_ ? std::sqrt(sumsq_ / static_cast<double>(n_)) : 0.0;
  }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

  void reset() noexcept { *this = RunningStat{}; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double sumsq_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-width linear or logarithmic histogram over [lo, hi].
class Histogram {
 public:
  enum class Scale { Linear, Log10 };

  Histogram(double lo, double hi, std::size_t bins,
            Scale scale = Scale::Linear);

  void add(double x) noexcept;

  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t bin) const {
    return counts_.at(bin);
  }
  [[nodiscard]] std::uint64_t underflow() const noexcept { return under_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return over_; }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// Lower/upper edge of a bin in the original (non-log) domain.
  [[nodiscard]] double bin_lo(std::size_t bin) const;
  [[nodiscard]] double bin_hi(std::size_t bin) const;

  /// Value below which `q` (0..1) of the samples fall (bin-resolution).
  [[nodiscard]] double quantile(double q) const;

  /// Multi-line ASCII rendering (one row per bin, '#' bars).
  [[nodiscard]] std::string ascii(std::size_t width = 50) const;

 private:
  double lo_, hi_;
  Scale scale_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t under_ = 0, over_ = 0, total_ = 0;

  [[nodiscard]] double transform(double x) const noexcept;
  [[nodiscard]] double untransform(double t) const noexcept;
};

}  // namespace g5::util
