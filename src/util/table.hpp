// Plain-text table renderer for bench harnesses: the paper-reproduction
// binaries print rows in the same layout the paper reports, and this class
// keeps the columns aligned without any formatting library.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace g5::util {

/// Format a count in engineering style, e.g. 2.90e13 -> "2.90e+13".
std::string sci(double x, int digits = 3);

/// Format seconds as "12345 s (3.43 h)".
std::string human_seconds(double seconds);

/// Format a flop rate, e.g. 5.92e9 -> "5.92 Gflops".
std::string human_flops(double flops_per_second);

/// Format a byte count, e.g. 1.5e7 -> "14.3 MiB".
std::string human_bytes(double bytes);

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append one row; must match the header arity.
  void add_row(std::vector<std::string> cells);

  /// Render with aligned columns; numeric-looking cells right-align.
  [[nodiscard]] std::string str() const;

  /// Render and write to stdout.
  void print() const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace g5::util
