#include "util/table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace g5::util {

std::string sci(double x, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", digits - 1, x);
  return buf;
}

std::string human_seconds(double seconds) {
  char buf[96];
  if (seconds >= 3600.0) {
    std::snprintf(buf, sizeof(buf), "%.0f s (%.2f h)", seconds,
                  seconds / 3600.0);
  } else if (seconds >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f us", seconds * 1e6);
  }
  return buf;
}

std::string human_flops(double flops_per_second) {
  char buf[64];
  if (flops_per_second >= 1e12) {
    std::snprintf(buf, sizeof(buf), "%.2f Tflops", flops_per_second / 1e12);
  } else if (flops_per_second >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2f Gflops", flops_per_second / 1e9);
  } else if (flops_per_second >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f Mflops", flops_per_second / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f flops", flops_per_second);
  }
  return buf;
}

std::string human_bytes(double bytes) {
  char buf[64];
  if (bytes >= 1024.0 * 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.2f GiB", bytes / (1024.0 * 1024.0 * 1024.0));
  } else if (bytes >= 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.2f MiB", bytes / (1024.0 * 1024.0));
  } else if (bytes >= 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.2f KiB", bytes / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f B", bytes);
  }
  return buf;
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("table needs >=1 column");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("row arity mismatch: expected " +
                                std::to_string(header_.size()) + " got " +
                                std::to_string(cells.size()));
  }
  rows_.push_back(std::move(cells));
}

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  std::size_t digits = 0;
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c))) ++digits;
  }
  return digits * 2 >= s.size();
}
}  // namespace

std::string Table::str() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row, bool align_num) {
    out << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      const std::size_t pad = width[c] - row[c].size();
      out << ' ';
      const bool right = align_num && looks_numeric(row[c]);
      if (right) out << std::string(pad, ' ');
      out << row[c];
      if (!right) out << std::string(pad, ' ');
      out << " |";
    }
    out << '\n';
  };
  emit_row(header_, false);
  out << "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out << std::string(width[c] + 2, '-') << "|";
  }
  out << '\n';
  for (const auto& row : rows_) emit_row(row, true);
  return out.str();
}

void Table::print() const {
  const std::string s = str();
  std::fwrite(s.data(), 1, s.size(), stdout);
  std::fflush(stdout);
}

}  // namespace g5::util
