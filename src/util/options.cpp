#include "util/options.hpp"

#include <cstdlib>
#include <stdexcept>

namespace g5::util {

void Options::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // `--key value` when the next token is not another option; else a flag.
    if (i + 1 < argc) {
      const std::string next = argv[i + 1];
      if (next.rfind("--", 0) != 0) {
        values_[arg] = next;
        ++i;
        continue;
      }
    }
    values_[arg] = "true";
  }
}

std::optional<std::string> Options::raw(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

bool Options::has(const std::string& key) const {
  return values_.count(key) != 0;
}

std::string Options::get_string(const std::string& key,
                                const std::string& fallback) const {
  return raw(key).value_or(fallback);
}

std::int64_t Options::get_int(const std::string& key,
                              std::int64_t fallback) const {
  const auto v = raw(key);
  if (!v) return fallback;
  try {
    return std::stoll(*v);
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + key + " expects an integer, got '" +
                                *v + "'");
  }
}

double Options::get_double(const std::string& key, double fallback) const {
  const auto v = raw(key);
  if (!v) return fallback;
  try {
    return std::stod(*v);
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + key + " expects a number, got '" +
                                *v + "'");
  }
}

bool Options::get_bool(const std::string& key, bool fallback) const {
  const auto v = raw(key);
  if (!v) return fallback;
  const std::string& s = *v;
  if (s == "true" || s == "1" || s == "yes" || s == "on") return true;
  if (s == "false" || s == "0" || s == "no" || s == "off") return false;
  throw std::invalid_argument("option --" + key + " expects a boolean, got '" +
                              s + "'");
}

std::vector<std::string> Options::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, _] : values_) out.push_back(k);
  return out;
}

}  // namespace g5::util
