// Async-signal-safe text formatting into a caller-owned buffer.
//
// The crash post-mortem path (obs/crash.hpp) runs inside SIGSEGV/SIGABRT
// handlers where malloc, snprintf and iostreams are all off-limits: the
// only allowed operations are plain memory writes and a short list of
// syscalls. SigsafeWriter is the formatting half of that contract — an
// appender over a fixed char buffer that renders integers, doubles and
// JSON-escaped strings with no allocation, no locale and no libc
// formatting calls, so a handler can serialize a JSON document and hand
// it straight to write(2).
//
// Doubles render with ~9 significant digits (decimal or scientific,
// whichever is shorter to place); non-finite values render as the JSON
// literal `null`. Overflowing the buffer sets truncated() and drops the
// excess — the output stays a prefix of the intended text, never
// garbage.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace g5::util {

class SigsafeWriter {
 public:
  SigsafeWriter(char* buf, std::size_t cap) noexcept : buf_(buf), cap_(cap) {}
  SigsafeWriter(const SigsafeWriter&) = delete;
  SigsafeWriter& operator=(const SigsafeWriter&) = delete;

  [[nodiscard]] const char* data() const noexcept { return buf_; }
  [[nodiscard]] std::size_t size() const noexcept { return len_; }
  [[nodiscard]] bool truncated() const noexcept { return truncated_; }
  void clear() noexcept {
    len_ = 0;
    truncated_ = false;
  }

  void append_char(char c) noexcept {
    if (len_ >= cap_) {
      truncated_ = true;
      return;
    }
    buf_[len_++] = c;
  }

  void append(std::string_view s) noexcept {
    for (const char c : s) append_char(c);
  }

  void append_u64(std::uint64_t v) noexcept {
    char tmp[20];
    std::size_t n = 0;
    do {
      tmp[n++] = static_cast<char>('0' + (v % 10));
      v /= 10;
    } while (v != 0);
    while (n > 0) append_char(tmp[--n]);
  }

  void append_i64(std::int64_t v) noexcept {
    std::uint64_t mag = 0;
    if (v < 0) {
      append_char('-');
      // Negate via unsigned arithmetic so INT64_MIN stays defined.
      mag = ~static_cast<std::uint64_t>(v) + 1;
    } else {
      mag = static_cast<std::uint64_t>(v);
    }
    append_u64(mag);
  }

  /// JSON-safe double: `null` for NaN/Inf, otherwise ~9 significant
  /// digits in plain or scientific notation.
  void append_double(double v) noexcept {
    if (!(v == v) || v > kMaxDouble || v < -kMaxDouble) {
      append("null");
      return;
    }
    if (v == 0.0) {
      append_char('0');
      return;
    }
    if (v < 0.0) {
      append_char('-');
      v = -v;
    }
    // Decimal normalization: v = m * 10^exp10 with m in [1, 10). The
    // repeated scaling loses ~1 ulp per decade — invisible at the 9
    // significant digits rendered below.
    int exp10 = 0;
    double m = v;
    while (m >= 10.0) {
      m /= 10.0;
      ++exp10;
    }
    while (m < 1.0) {
      m *= 10.0;
      --exp10;
    }
    auto digits = static_cast<std::uint64_t>(m * 1e8 + 0.5);
    if (digits >= 1000000000ULL) {  // 9.999999996 rounded up a decade
      digits /= 10;
      ++exp10;
    }
    char dig[9];
    for (int i = 8; i >= 0; --i) {
      dig[i] = static_cast<char>('0' + (digits % 10));
      digits /= 10;
    }
    int ndig = 9;
    while (ndig > 1 && dig[ndig - 1] == '0') --ndig;

    if (exp10 >= 0 && exp10 <= 15) {
      // Plain notation, decimal point after exp10 + 1 digits.
      const int int_digits = exp10 + 1;
      for (int i = 0; i < int_digits; ++i) {
        append_char(i < ndig ? dig[i] : '0');
      }
      if (ndig > int_digits) {
        append_char('.');
        for (int i = int_digits; i < ndig; ++i) append_char(dig[i]);
      }
    } else if (exp10 < 0 && exp10 >= -5) {
      append("0.");
      for (int i = 0; i < -exp10 - 1; ++i) append_char('0');
      for (int i = 0; i < ndig; ++i) append_char(dig[i]);
    } else {
      append_char(dig[0]);
      if (ndig > 1) {
        append_char('.');
        for (int i = 1; i < ndig; ++i) append_char(dig[i]);
      }
      append_char('e');
      append_i64(exp10);
    }
  }

  /// `"..."` with JSON escaping for quotes, backslashes and controls.
  void append_json_string(std::string_view s) noexcept {
    append_char('"');
    for (const char c : s) {
      const auto u = static_cast<unsigned char>(c);
      if (c == '"' || c == '\\') {
        append_char('\\');
        append_char(c);
      } else if (u < 0x20) {
        append("\\u00");
        append_char(kHex[(u >> 4) & 0xF]);
        append_char(kHex[u & 0xF]);
      } else {
        append_char(c);
      }
    }
    append_char('"');
  }

 private:
  static constexpr double kMaxDouble = 1.7976931348623157e308;
  static constexpr char kHex[] = "0123456789abcdef";

  char* buf_;
  std::size_t cap_;
  std::size_t len_ = 0;
  bool truncated_ = false;
};

}  // namespace g5::util
