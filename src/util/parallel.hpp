// Host-side worker pool and parallel-for.
//
// The paper's host (a single-core Alpha 21264) did tree construction and
// traversal serially; on a multi-core host the group walks — the dominant
// host cost (Section 4.2) — are independent and can spread across cores.
// This pool is the small fork-join primitive the tree engines use for
// that: dynamically scheduled contiguous chunks over an index range, the
// calling thread participating as lane 0.
//
// Determinism: parallel_for only promises that every index is processed
// exactly once, by some lane. Callers obtain bitwise-reproducible results
// when each index writes its own outputs — exactly the per-group /
// per-particle structure of the tree walks. Per-lane accumulators (stats,
// timers) must be reduced by the caller in lane order after the call.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace g5::util {

/// Effective worker count: `requested` if > 0, else the G5_THREADS
/// environment variable if it holds a positive integer, else
/// std::thread::hardware_concurrency() (minimum 1).
[[nodiscard]] unsigned resolve_thread_count(unsigned requested = 0);

class ThreadPool {
 public:
  /// threads == 0 resolves via resolve_thread_count(). The pool spawns
  /// size() - 1 workers; the calling thread works too, as lane 0.
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total lanes (workers + the caller).
  [[nodiscard]] unsigned size() const noexcept { return lanes_; }

  /// Chunk body: fn(begin, end, lane) with 0 <= lane < size().
  using Body = std::function<void(std::size_t, std::size_t, unsigned)>;

  /// Run body over [0, n) in dynamically scheduled contiguous chunks of
  /// `grain` indices (grain == 0 behaves as 1). Blocks until every index
  /// is processed, then rethrows the first exception a chunk threw. Not
  /// reentrant: the body must not call back into the same pool.
  void parallel_for(std::size_t n, std::size_t grain, const Body& body);

 private:
  void worker_loop(unsigned lane);
  // Reads the job fields lock-free under the epoch-publication protocol
  // (see the comment on body_ below), which the static analysis cannot
  // express — hence the per-function opt-out.
  void run_chunks(unsigned lane) G5_NO_THREAD_SAFETY_ANALYSIS;

  const unsigned lanes_;
  std::vector<std::thread> workers_;

  Mutex mutex_;
  CondVar start_cv_;
  CondVar done_cv_;
  bool stop_ G5_GUARDED_BY(mutex_) = false;
  /// Bumped per parallel_for, wakes workers.
  std::uint64_t epoch_ G5_GUARDED_BY(mutex_) = 0;
  /// Workers still draining the current job.
  unsigned active_ G5_GUARDED_BY(mutex_) = 0;

  // Current job. Written under mutex_ before the epoch bump publishes
  // it; workers read it without the lock only after observing the new
  // epoch under mutex_ (so the writes happened-before), and the fields
  // stay frozen until every worker has re-checked in under the lock.
  const Body* body_ G5_GUARDED_BY(mutex_) = nullptr;
  std::size_t n_ G5_GUARDED_BY(mutex_) = 0;
  std::size_t grain_ G5_GUARDED_BY(mutex_) = 1;
  /// Observability: the caller's span path at submit time, so worker
  /// lanes' spans nest under the phase that forked them (obs/span.hpp).
  /// Empty whenever instrumentation is off.
  std::string obs_parent_ G5_GUARDED_BY(mutex_);
  std::atomic<std::size_t> next_{0};
  std::exception_ptr error_ G5_GUARDED_BY(mutex_);
};

}  // namespace g5::util
