// Minimal leveled logger used across the library.
//
// The logger writes to stderr so that bench/table output on stdout stays
// machine-parsable. Level is a process-global; the default (Info) can be
// overridden with the G5_LOG environment variable (trace|debug|info|warn|
// error|off) or programmatically via set_level().
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace g5::util {

enum class LogLevel : int { Trace = 0, Debug, Info, Warn, Error, Off };

/// Current global log level.
LogLevel log_level() noexcept;

/// Set the global log level.
void set_log_level(LogLevel level) noexcept;

/// Parse a level name ("debug", "INFO", ...). Unknown names yield Info.
LogLevel parse_log_level(std::string_view name) noexcept;

/// Emit one log record (already-formatted message body).
void log_emit(LogLevel level, std::string_view msg);

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_emit(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

/// Stream-style logging: g5::util::log(LogLevel::Info) << "n=" << n;
inline detail::LogLine log(LogLevel level) { return detail::LogLine(level); }

inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::Debug); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::Info); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::Warn); }
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::Error); }

}  // namespace g5::util
