// Tiny command-line option parser shared by examples and bench harnesses.
//
// Accepts `--key=value`, `--key value` and boolean `--flag` forms. Unknown
// keys are collected so callers can reject or ignore them. Deliberately
// dependency-free; bench/example binaries must run with no arguments, so
// every option has a default.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace g5::util {

class Options {
 public:
  Options() = default;
  Options(int argc, const char* const* argv) { parse(argc, argv); }

  void parse(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const;

  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  /// Positional (non --key) arguments in order of appearance.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// All keys seen, for validation / usage messages.
  [[nodiscard]] std::vector<std::string> keys() const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;

  [[nodiscard]] std::optional<std::string> raw(const std::string& key) const;
};

}  // namespace g5::util
