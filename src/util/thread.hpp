// RAII thread handle: the only place outside ThreadPool where a raw
// std::thread may live.
//
// The g5lint raw-thread rule bans std::thread outside src/util/ so that
// every long-lived thread in the library is (a) joined deterministically
// by a destructor — no detached threads outliving the objects they
// touch — and (b) reviewable in one directory together with the
// annotated Mutex/CondVar primitives it must synchronize through.
// Thread is deliberately minimal: construct with a callable, join on
// destruction (or explicitly earlier), move-only.
//
// Thread *names* live here too: set_current_thread_name() records a
// short name in a thread-local buffer (readable lock-free, including
// from signal handlers — the post-mortem span dump) and forwards it to
// pthread_setname_np so TSan reports, /proc and Chrome trace metadata
// all show "g5-pool-3" instead of an anonymous tid. Names follow the
// pthread limit: 15 characters plus NUL, longer names truncate.
#pragma once

#include <thread>
#include <utility>

#if defined(__linux__)
#include <pthread.h>
#endif

namespace g5::util {

/// pthread name limit: 15 characters + NUL.
inline constexpr std::size_t kThreadNameCap = 16;

namespace detail {
inline thread_local char t_thread_name[kThreadNameCap] = {};
}  // namespace detail

/// Names the calling thread (truncated to 15 chars). Also forwarded to
/// the OS where supported, so debuggers and sanitizers see it.
inline void set_current_thread_name(const char* name) noexcept {
  std::size_t i = 0;
  for (; i + 1 < kThreadNameCap && name[i] != '\0'; ++i) {
    detail::t_thread_name[i] = name[i];
  }
  detail::t_thread_name[i] = '\0';
#if defined(__linux__)
  pthread_setname_np(pthread_self(), detail::t_thread_name);
#endif
}

/// The calling thread's name ("" until set). The pointer stays valid
/// for the thread's lifetime; safe to read from a signal handler.
[[nodiscard]] inline const char* current_thread_name() noexcept {
  return detail::t_thread_name;
}

class Thread {
 public:
  Thread() = default;
  template <typename Fn>
  explicit Thread(Fn&& fn) : t_(std::forward<Fn>(fn)) {}
  /// Named thread: `name` must be a literal (or otherwise outlive the
  /// thread's startup); it is applied on the new thread before `fn`.
  template <typename Fn>
  Thread(const char* name, Fn&& fn)
      : t_([name, fn = std::forward<Fn>(fn)]() mutable {
          set_current_thread_name(name);
          fn();
        }) {}
  ~Thread() {
    if (t_.joinable()) t_.join();
  }

  Thread(Thread&&) = default;
  Thread& operator=(Thread&& other) {
    if (this != &other) {
      if (t_.joinable()) t_.join();
      t_ = std::move(other.t_);
    }
    return *this;
  }
  Thread(const Thread&) = delete;
  Thread& operator=(const Thread&) = delete;

  [[nodiscard]] bool joinable() const noexcept { return t_.joinable(); }
  void join() {
    if (t_.joinable()) t_.join();
  }

 private:
  std::thread t_;
};

}  // namespace g5::util
