// RAII thread handle: the only place outside ThreadPool where a raw
// std::thread may live.
//
// The g5lint raw-thread rule bans std::thread outside src/util/ so that
// every long-lived thread in the library is (a) joined deterministically
// by a destructor — no detached threads outliving the objects they
// touch — and (b) reviewable in one directory together with the
// annotated Mutex/CondVar primitives it must synchronize through.
// Thread is deliberately minimal: construct with a callable, join on
// destruction (or explicitly earlier), move-only.
#pragma once

#include <thread>
#include <utility>

namespace g5::util {

class Thread {
 public:
  Thread() = default;
  template <typename Fn>
  explicit Thread(Fn&& fn) : t_(std::forward<Fn>(fn)) {}
  ~Thread() {
    if (t_.joinable()) t_.join();
  }

  Thread(Thread&&) = default;
  Thread& operator=(Thread&& other) {
    if (this != &other) {
      if (t_.joinable()) t_.join();
      t_ = std::move(other.t_);
    }
    return *this;
  }
  Thread(const Thread&) = delete;
  Thread& operator=(const Thread&) = delete;

  [[nodiscard]] bool joinable() const noexcept { return t_.joinable(); }
  void join() {
    if (t_.joinable()) t_.join();
  }

 private:
  std::thread t_;
};

}  // namespace g5::util
