#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "util/mutex.hpp"

namespace g5::util {

namespace {

std::atomic<LogLevel> g_level{LogLevel::Info};
std::once_flag g_env_once;
// Serializes the fprintf below so concurrent log records never
// interleave. The guarded resource is the stderr stream itself, which
// the capability analysis cannot name; MutexLock still gives the lock
// acquisition static visibility.
Mutex g_emit_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?";
}

void init_from_env() {
  if (const char* env = std::getenv("G5_LOG")) {
    g_level.store(parse_log_level(env), std::memory_order_relaxed);
  }
}

}  // namespace

LogLevel log_level() noexcept {
  std::call_once(g_env_once, init_from_env);
  return g_level.load(std::memory_order_relaxed);
}

void set_log_level(LogLevel level) noexcept {
  std::call_once(g_env_once, init_from_env);
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel parse_log_level(std::string_view name) noexcept {
  auto eq = [&](std::string_view ref) {
    if (name.size() != ref.size()) return false;
    for (size_t i = 0; i < ref.size(); ++i) {
      char c = name[i];
      if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
      if (c != ref[i]) return false;
    }
    return true;
  };
  if (eq("trace")) return LogLevel::Trace;
  if (eq("debug")) return LogLevel::Debug;
  if (eq("info")) return LogLevel::Info;
  if (eq("warn") || eq("warning")) return LogLevel::Warn;
  if (eq("error")) return LogLevel::Error;
  if (eq("off") || eq("none")) return LogLevel::Off;
  return LogLevel::Info;
}

void log_emit(LogLevel level, std::string_view msg) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  const MutexLock lock(g_emit_mutex);
  std::fprintf(stderr, "[g5 %s] %.*s\n", level_name(level),
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace g5::util
