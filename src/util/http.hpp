// Minimal single-connection HTTP listener for live telemetry.
//
// HttpListener binds 127.0.0.1:<port> (port 0 = kernel-assigned, read
// it back with port()) and serves GET requests one connection at a
// time on a background util::Thread ("g5-http"): accept, parse the
// request line, call the handler, write the response, close. That is
// exactly enough for `curl`/Prometheus scrapes of g5run --live-port —
// it is not a general web server and never will be: no keep-alive, no
// TLS, no concurrency, loopback only.
//
// The accept loop polls with a short timeout and checks a stop flag,
// so stop()/destruction joins promptly without racing a close() against
// a blocked accept().
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "util/thread.hpp"

namespace g5::util {

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain";
  std::string body;
};

class HttpListener {
 public:
  /// Called on the listener thread with the request path ("/status").
  using Handler = std::function<HttpResponse(std::string_view path)>;

  /// Binds and starts serving. Throws std::runtime_error when the
  /// port cannot be bound (already in use, no socket support).
  HttpListener(std::uint16_t port, Handler handler);
  ~HttpListener();
  HttpListener(const HttpListener&) = delete;
  HttpListener& operator=(const HttpListener&) = delete;

  /// The bound port (the kernel's pick when constructed with 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Stop accepting and join the listener thread. Idempotent.
  void stop();

 private:
  void loop();
  void serve_one(int client_fd);

  Handler handler_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  Thread thread_;  ///< started in the ctor body, after the bind succeeds
};

}  // namespace g5::util
