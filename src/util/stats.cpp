#include "util/stats.hpp"

#include <algorithm>
#include <sstream>

namespace g5::util {

void RunningStat::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  sum_ += x;
  sumsq_ += x * x;
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStat::merge(const RunningStat& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double ntot = na + nb;
  mean_ += delta * nb / ntot;
  m2_ += other.m2_ + delta * delta * na * nb / ntot;
  n_ += other.n_;
  sum_ += other.sum_;
  sumsq_ += other.sumsq_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, std::size_t bins, Scale scale)
    : lo_(lo), hi_(hi), scale_(scale), counts_(bins, 0) {
  if (bins == 0) counts_.resize(1, 0);
  if (scale_ == Scale::Log10 && lo_ <= 0.0) {
    // Degenerate log range: fall back to a tiny positive floor.
    lo_ = 1e-300;
  }
  if (hi_ <= lo_) hi_ = lo_ + 1.0;
}

double Histogram::transform(double x) const noexcept {
  return scale_ == Scale::Log10 ? std::log10(x) : x;
}

double Histogram::untransform(double t) const noexcept {
  return scale_ == Scale::Log10 ? std::pow(10.0, t) : t;
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (scale_ == Scale::Log10 && x <= 0.0) {
    ++under_;
    return;
  }
  const double t = transform(x);
  const double tlo = transform(lo_);
  const double thi = transform(hi_);
  if (t < tlo) {
    ++under_;
    return;
  }
  if (t >= thi) {
    ++over_;
    return;
  }
  const double frac = (t - tlo) / (thi - tlo);
  auto bin = static_cast<std::size_t>(frac * static_cast<double>(counts_.size()));
  if (bin >= counts_.size()) bin = counts_.size() - 1;
  ++counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  const double tlo = transform(lo_);
  const double thi = transform(hi_);
  const double w = (thi - tlo) / static_cast<double>(counts_.size());
  return untransform(tlo + w * static_cast<double>(bin));
}

double Histogram::bin_hi(std::size_t bin) const { return bin_lo(bin + 1); }

double Histogram::quantile(double q) const {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(total_));
  std::uint64_t cum = under_;
  if (cum >= target && target > 0) return lo_;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    cum += counts_[b];
    if (cum >= target) return bin_hi(b);
  }
  return hi_;
}

std::string Histogram::ascii(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[b]) / static_cast<double>(peak) *
        static_cast<double>(width));
    out << "[";
    out.precision(4);
    out << bin_lo(b) << ", " << bin_hi(b) << ") " << counts_[b] << " ";
    for (std::size_t i = 0; i < bar; ++i) out << '#';
    out << '\n';
  }
  return out.str();
}

}  // namespace g5::util
