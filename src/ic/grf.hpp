// Gaussian random field sampler on a periodic grid.
//
// Draws a discrete realization of the linear density contrast delta(x) with
// a given power spectrum, plus the Zel'dovich displacement field
// psi = grad(laplacian^-1 delta), via hermitian-symmetric k-space sampling
// and inverse FFTs. This is the statistical core of the COSMICS substitute.
//
// Conventions: box of comoving side L (Mpc), n^3 grid, k-modes
// k = (2 pi / L) * integer vector; mode amplitudes are drawn so that the
// ensemble variance of delta matches  <delta^2> = (1/2pi^2) int k^2 P(k) dk
// truncated at the grid's Nyquist frequency.
#pragma once

#include <cstdint>
#include <memory>

#include "ic/power_spectrum.hpp"
#include "math/fft.hpp"
#include "math/rng.hpp"
#include "math/vec3.hpp"

namespace g5::ic {

struct GrfConfig {
  std::size_t grid_n = 32;   ///< grid cells per dimension (power of two)
  double box_size = 20.0;    ///< comoving box side, Mpc
  std::uint64_t seed = 1999; ///< RNG seed (the realization)
};

class GaussianRandomField {
 public:
  /// Samples the k-space modes immediately (deterministic in the seed).
  GaussianRandomField(const GrfConfig& config, const PowerSpectrum& ps);

  [[nodiscard]] const GrfConfig& config() const noexcept { return cfg_; }

  /// Real-space density contrast grid delta(x) at z = 0 (linear theory).
  [[nodiscard]] const math::Grid3C& density() const noexcept { return *delta_x_; }

  /// Real-space displacement component grids (axis 0..2), z = 0 amplitude.
  [[nodiscard]] const math::Grid3C& displacement(int axis) const {
    return *psi_x_[axis];
  }

  /// delta at a grid point.
  [[nodiscard]] double delta_at(std::size_t i, std::size_t j,
                                std::size_t k) const {
    return delta_x_->at(i, j, k).real();
  }

  /// Displacement vector at a grid point (Mpc, comoving, z = 0 amplitude).
  [[nodiscard]] math::Vec3d psi_at(std::size_t i, std::size_t j,
                                   std::size_t k) const;

  /// Sample variance of delta over the grid (for tests against theory).
  [[nodiscard]] double measured_variance() const;

  /// Measure the mean |delta_k|^2 in a k-shell [k_lo, k_hi) directly from
  /// the sampled modes, converted to P(k) units (Mpc^3). Tests use this to
  /// verify the sampler reproduces the input spectrum.
  [[nodiscard]] double measured_power_in_shell(double k_lo, double k_hi) const;

 private:
  GrfConfig cfg_;
  std::unique_ptr<math::Grid3C> delta_k_;  ///< retained for diagnostics
  std::unique_ptr<math::Grid3C> delta_x_;
  std::unique_ptr<math::Grid3C> psi_x_[3];

  void sample_modes(const PowerSpectrum& ps);
  void derive_real_fields();
};

}  // namespace g5::ic
