#include "ic/galaxy.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ic/plummer.hpp"

namespace g5::ic {

using math::Vec3d;

GalaxyCollisionResult make_galaxy_collision(
    const GalaxyCollisionConfig& config) {
  if (config.mass_ratio <= 0.0) {
    throw std::invalid_argument("mass_ratio must be > 0");
  }
  if (config.pericenter <= 0.0 || config.initial_separation <= 0.0) {
    throw std::invalid_argument("orbit distances must be > 0");
  }
  if (config.initial_separation < 2.0 * config.pericenter) {
    throw std::invalid_argument(
        "initial_separation must be >= 2 * pericenter for a parabolic orbit");
  }

  const double m1 = 1.0;
  const double m2 = config.mass_ratio;
  const double mtot = m1 + m2;

  PlummerConfig p1;
  p1.n = config.n_per_galaxy;
  p1.total_mass = m1;
  p1.seed = config.seed;
  PlummerConfig p2 = p1;
  p2.total_mass = m2;
  p2.seed = config.seed + 1;

  model::ParticleSet g1 = make_plummer(p1);
  model::ParticleSet g2 = make_plummer(p2);

  // Parabolic relative orbit in the x-y plane: energy 0, pericenter rp.
  // Parameterized by the true anomaly f at separation d:
  //   r(f) = 2 rp / (1 + cos f),   v^2 = 2 G mtot / r.
  const double rp = config.pericenter;
  const double d = config.initial_separation;
  const double cosf = 2.0 * rp / d - 1.0;
  const double f = std::acos(std::clamp(cosf, -1.0, 1.0));
  const Vec3d rel_pos{d * std::cos(f), d * std::sin(f), 0.0};

  // Parabolic velocity split into radial/tangential components:
  // h = sqrt(2 G mtot rp) (specific angular momentum), vt = h / r,
  // vr = sqrt(v^2 - vt^2); approaching pericenter means vr < 0.
  const double h = std::sqrt(2.0 * mtot * rp);
  const double v2 = 2.0 * mtot / d;
  const double vt = h / d;
  const double vr = -std::sqrt(std::max(0.0, v2 - vt * vt));
  const Vec3d radial = rel_pos / d;
  const Vec3d tangential{-radial.y, radial.x, 0.0};
  const Vec3d rel_vel = vr * radial + vt * tangential;

  // Place galaxies around the common center of mass.
  const Vec3d r1 = -(m2 / mtot) * rel_pos;
  const Vec3d r2 = (m1 / mtot) * rel_pos;
  const Vec3d v1 = -(m2 / mtot) * rel_vel;
  const Vec3d v2v = (m1 / mtot) * rel_vel;

  for (std::size_t i = 0; i < g1.size(); ++i) {
    g1.pos()[i] += r1;
    g1.vel()[i] += v1;
  }
  for (std::size_t i = 0; i < g2.size(); ++i) {
    g2.pos()[i] += r2;
    g2.vel()[i] += v2v;
  }

  GalaxyCollisionResult out;
  out.n_first = g1.size();
  out.particles = std::move(g1);
  out.particles.append(g2);
  // Free-fall time from the initial separation, a natural dt scale.
  out.orbital_period_estimate =
      M_PI * std::sqrt(d * d * d / (8.0 * mtot));
  return out;
}

}  // namespace g5::ic
