#include "ic/power_spectrum.hpp"

#include <cmath>
#include <stdexcept>

namespace g5::ic {

namespace {

/// Spherical top-hat window function in k-space.
double tophat_window(double x) {
  if (x < 1e-4) return 1.0 - x * x / 10.0;  // series, avoids 0/0
  return 3.0 * (std::sin(x) - x * std::cos(x)) / (x * x * x);
}

}  // namespace

PowerSpectrum::PowerSpectrum(const PowerSpectrumParams& params) : p_(params) {
  if (p_.h <= 0.0 || p_.omega_m <= 0.0 || p_.sigma8 <= 0.0) {
    throw std::invalid_argument("power spectrum params must be positive");
  }
  gamma_ = p_.omega_m * p_.h;
  amplitude_ = 1.0;
  const double s8 = sigma_tophat(8.0 / p_.h);
  amplitude_ = (p_.sigma8 * p_.sigma8) / (s8 * s8);
}

double PowerSpectrum::transfer(double k) const {
  if (k <= 0.0) return 1.0;
  // BBKS 1986 eq. G3; q in (h Mpc^-1)/Gamma units with k in Mpc^-1.
  const double q = k / gamma_;
  const double t = std::log1p(2.34 * q) / (2.34 * q);
  const double poly = 1.0 + 3.89 * q + std::pow(16.1 * q, 2) +
                      std::pow(5.46 * q, 3) + std::pow(6.71 * q, 4);
  return t * std::pow(poly, -0.25);
}

double PowerSpectrum::unnormalized(double k) const {
  const double t = transfer(k);
  return std::pow(k, p_.ns) * t * t;
}

double PowerSpectrum::operator()(double k) const {
  if (k <= 0.0) return 0.0;
  return amplitude_ * unnormalized(k);
}

double PowerSpectrum::sigma_tophat(double r) const {
  if (r <= 0.0) throw std::invalid_argument("radius must be > 0");
  // sigma^2 = 1/(2 pi^2) int k^2 P(k) W(kr)^2 dk, integrated in ln k.
  const double lnk_lo = std::log(1e-5 / r);
  const double lnk_hi = std::log(1e3 / r);
  const int steps = 512;
  const double dln = (lnk_hi - lnk_lo) / steps;
  double sum = 0.0;
  for (int i = 0; i < steps; ++i) {
    const double lnk = lnk_lo + (i + 0.5) * dln;
    const double k = std::exp(lnk);
    const double w = tophat_window(k * r);
    sum += k * k * k * amplitude_ * unnormalized(k) * w * w;
  }
  const double sigma2 = sum * dln / (2.0 * M_PI * M_PI);
  return std::sqrt(sigma2);
}

}  // namespace g5::ic
