// Hernquist (1990) sphere sampler: rho(r) = M b / (2 pi r (r+b)^3).
//
// The second classic collisionless model next to Plummer — cuspier, with
// a fully analytic inverse cumulative mass profile and distribution
// function. Its r^-1 central cusp stresses the treecode (deep cells) and
// the hardware's dynamic range harder than Plummer's core does.
#pragma once

#include <cstdint>

#include "model/particles.hpp"

namespace g5::ic {

struct HernquistConfig {
  std::size_t n = 4096;
  double total_mass = 1.0;
  double scale_length = 1.0;  ///< b
  std::uint64_t seed = 42;
  /// Truncation radius in units of b (encloses (r/(r+1))^2 of the mass).
  double rmax_over_b = 50.0;
};

/// Sample a Hernquist model; the set is centered (CoM and momentum zeroed).
/// Velocities are drawn from the isotropic distribution function by
/// rejection against the exact density-of-states envelope.
model::ParticleSet make_hernquist(const HernquistConfig& config);

/// Analytic potential energy of the untruncated model (G = 1):
/// W = -M^2 / (6 b).
double hernquist_potential_energy(double total_mass, double scale_length);

/// Analytic enclosed-mass fraction at radius r: (r/(r+b))^2.
double hernquist_mass_fraction(double r, double scale_length);

}  // namespace g5::ic
