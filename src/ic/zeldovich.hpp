// Zel'dovich-approximation initial conditions: the COSMICS substitute.
//
// Particles start on a cubic lattice, are displaced by the linear
// displacement field scaled to the starting redshift, and receive peculiar
// velocities from the linear growth rate; a spherical comoving region is
// then carved out — exactly the setup of the paper's run ("initial position
// and velocities ... in a spherical region selected from a discrete
// realization of density contrast field based on a standard cold dark
// matter scenario"). Output is in physical (proper) coordinates, ready for
// a plain Newtonian integration of the sphere with vacuum boundaries.
#pragma once

#include <cstdint>

#include "ic/grf.hpp"
#include "ic/power_spectrum.hpp"
#include "model/cosmology.hpp"
#include "model/particles.hpp"

namespace g5::ic {

struct CosmologicalSphereConfig {
  model::CosmologyParams cosmo = model::CosmologyParams::scdm();
  PowerSpectrumParams power{};      ///< defaults match SCDM
  std::size_t grid_n = 32;          ///< lattice cells per dimension (2^k)
  double particle_mass = 1.7;       ///< in 1e10 Msun; the paper's value
  double sphere_radius = 0.0;       ///< comoving Mpc; 0 = 0.45 * box
  double z_start = 24.0;            ///< starting redshift (paper: 24)
  std::uint64_t seed = 1999;
};

struct CosmologicalSphereResult {
  model::ParticleSet particles;   ///< physical positions/velocities at z_start
  double box_size = 0.0;          ///< comoving lattice box side, Mpc
  double sphere_radius = 0.0;     ///< comoving selection radius, Mpc
  double a_start = 0.0;           ///< scale factor at z_start
  double time_start = 0.0;        ///< cosmic time at z_start, Gyr
  double time_end = 0.0;          ///< cosmic time at z = 0, Gyr
  double growth_start = 0.0;      ///< D(a_start)
  double rms_displacement = 0.0;  ///< rms |D psi| over selected particles
  std::size_t lattice_points = 0; ///< points before the sphere cut
};

/// Build the paper-style cosmological sphere IC. The lattice spacing is
/// derived from the particle mass and the background density, so
/// `particle_mass = 1.7` reproduces the paper's 0.63 Mpc spacing and its
/// N(R) relation (R = 50 Mpc -> N ~ 2.1e6; scaled runs shrink R).
CosmologicalSphereResult make_cosmological_sphere(
    const CosmologicalSphereConfig& config);

}  // namespace g5::ic
