// Simple synthetic particle distributions for tests and microbenchmarks.
#pragma once

#include <cstdint>

#include "model/particles.hpp"

namespace g5::ic {

/// N equal-mass particles uniform in the cube [lo, hi)^3, zero velocity.
model::ParticleSet make_uniform_cube(std::size_t n, double lo, double hi,
                                     double total_mass, std::uint64_t seed);

/// N equal-mass particles uniform in a ball of given radius, zero velocity.
model::ParticleSet make_uniform_ball(std::size_t n, double radius,
                                     double total_mass, std::uint64_t seed);

/// Clustered distribution: `clumps` Gaussian blobs with uniform background.
/// Exercises deep/imbalanced trees (worst case for list lengths).
model::ParticleSet make_clustered(std::size_t n, std::size_t clumps,
                                  double box, double clump_sigma,
                                  double total_mass, std::uint64_t seed);

}  // namespace g5::ic
