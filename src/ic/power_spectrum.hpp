// Linear matter power spectrum for the initial-conditions generator.
//
// The paper drew its initial density contrast from a "standard cold dark
// matter scenario using the COSMICS package". COSMICS integrates the
// Boltzmann hierarchy; our substitute uses the BBKS (Bardeen, Bond, Kaiser
// & Szalay 1986) fitting formula for the CDM transfer function, which is
// the standard analytic stand-in for SCDM and matches Boltzmann results to
// a few percent — far below the level that changes anything this
// reproduction measures (interaction counts, timing, force errors).
#pragma once

namespace g5::ic {

struct PowerSpectrumParams {
  double omega_m = 1.0;  ///< matter density parameter
  double h = 0.5;        ///< Hubble parameter / 100
  double sigma8 = 0.67;  ///< normalization: rms contrast in 8/h Mpc spheres
  double ns = 1.0;       ///< primordial spectral index
};

/// Linear z=0 power spectrum P(k) with BBKS transfer function; k in Mpc^-1,
/// P in Mpc^3.
class PowerSpectrum {
 public:
  explicit PowerSpectrum(const PowerSpectrumParams& params);

  [[nodiscard]] const PowerSpectrumParams& params() const noexcept {
    return p_;
  }

  /// BBKS transfer function T(k); T(0) = 1.
  [[nodiscard]] double transfer(double k) const;

  /// P(k) = A k^ns T(k)^2, normalized to sigma8.
  [[nodiscard]] double operator()(double k) const;

  /// rms linear density contrast in a top-hat sphere of radius r (Mpc).
  [[nodiscard]] double sigma_tophat(double r) const;

  /// The normalization amplitude A (after sigma8 calibration).
  [[nodiscard]] double amplitude() const noexcept { return amplitude_; }

 private:
  PowerSpectrumParams p_;
  double gamma_;       // shape parameter Omega_m * h
  double amplitude_;

  [[nodiscard]] double unnormalized(double k) const;
};

}  // namespace g5::ic
