// Two-galaxy encounter setup (for the galaxy_collision example).
//
// Places two Plummer spheres on a parabolic (zero-energy) two-body orbit
// in the x-y plane, in N-body units with G = 1.
#pragma once

#include <cstdint>

#include "model/particles.hpp"

namespace g5::ic {

struct GalaxyCollisionConfig {
  std::size_t n_per_galaxy = 8192;
  double mass_ratio = 1.0;        ///< M2 / M1
  double pericenter = 1.0;        ///< closest approach of the two-body orbit
  double initial_separation = 10.0;
  std::uint64_t seed = 7;
};

struct GalaxyCollisionResult {
  model::ParticleSet particles;   ///< both galaxies merged into one set
  std::size_t n_first = 0;        ///< particles [0, n_first) belong to galaxy 1
  double orbital_period_estimate = 0.0;  ///< free-fall time scale, for dt
};

GalaxyCollisionResult make_galaxy_collision(const GalaxyCollisionConfig& config);

}  // namespace g5::ic
