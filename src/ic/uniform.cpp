#include "ic/uniform.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "math/rng.hpp"

namespace g5::ic {

using math::Vec3d;

model::ParticleSet make_uniform_cube(std::size_t n, double lo, double hi,
                                     double total_mass, std::uint64_t seed) {
  if (n == 0) throw std::invalid_argument("n must be > 0");
  if (!(hi > lo)) throw std::invalid_argument("cube range empty");
  math::Rng rng(seed);
  model::ParticleSet pset;
  pset.reserve(n);
  const double m = total_mass / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    pset.add(rng.in_box(Vec3d{lo, lo, lo}, Vec3d{hi, hi, hi}), Vec3d{}, m);
  }
  return pset;
}

model::ParticleSet make_uniform_ball(std::size_t n, double radius,
                                     double total_mass, std::uint64_t seed) {
  if (n == 0) throw std::invalid_argument("n must be > 0");
  if (radius <= 0.0) throw std::invalid_argument("radius must be > 0");
  math::Rng rng(seed);
  model::ParticleSet pset;
  pset.reserve(n);
  const double m = total_mass / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    pset.add(radius * rng.in_unit_ball(), Vec3d{}, m);
  }
  return pset;
}

model::ParticleSet make_clustered(std::size_t n, std::size_t clumps,
                                  double box, double clump_sigma,
                                  double total_mass, std::uint64_t seed) {
  if (n == 0) throw std::invalid_argument("n must be > 0");
  if (clumps == 0) throw std::invalid_argument("clumps must be > 0");
  math::Rng rng(seed);
  model::ParticleSet pset;
  pset.reserve(n);
  const double m = total_mass / static_cast<double>(n);

  std::vector<Vec3d> centers(clumps);
  for (auto& c : centers) {
    c = rng.in_box(Vec3d{0.1 * box, 0.1 * box, 0.1 * box},
                   Vec3d{0.9 * box, 0.9 * box, 0.9 * box});
  }
  for (std::size_t i = 0; i < n; ++i) {
    // 80 % of particles in clumps, 20 % uniform background.
    if (rng.uniform() < 0.8) {
      const Vec3d& c = centers[rng.uniform_index(clumps)];
      Vec3d p{rng.gaussian(c.x, clump_sigma), rng.gaussian(c.y, clump_sigma),
              rng.gaussian(c.z, clump_sigma)};
      // Clamp into the box so the tree root stays bounded.
      p.x = std::clamp(p.x, 0.0, box);
      p.y = std::clamp(p.y, 0.0, box);
      p.z = std::clamp(p.z, 0.0, box);
      pset.add(p, Vec3d{}, m);
    } else {
      pset.add(rng.in_box(Vec3d{}, Vec3d{box, box, box}), Vec3d{}, m);
    }
  }
  return pset;
}

}  // namespace g5::ic
