// Plummer-sphere sampler in standard N-body units.
//
// The classic collisionless test model (Aarseth, Henon & Wielen 1974
// sampling): density rho(r) ~ (1 + r^2/b^2)^(-5/2), isotropic velocity
// distribution drawn by rejection. Used by the quickstart and galaxy
// examples and by accuracy/consistency tests.
#pragma once

#include <cstdint>

#include "model/particles.hpp"

namespace g5::ic {

struct PlummerConfig {
  std::size_t n = 4096;
  double total_mass = 1.0;
  /// Plummer scale length b. The default together with G = 1 and
  /// total_mass = 1 gives the standard virial units (E = -1/4).
  double scale_length = 3.0 * M_PI / 16.0;
  std::uint64_t seed = 42;
  /// Truncate the (formally infinite) model at this many scale lengths.
  double rmax_over_b = 22.8;  // encloses ~99.9 % of the mass
};

/// Sample a Plummer model; the set is centered (CoM and momentum zeroed).
model::ParticleSet make_plummer(const PlummerConfig& config);

/// Analytic potential energy of the full Plummer model (G = 1):
/// W = -3 pi M^2 / (32 b).
double plummer_potential_energy(double total_mass, double scale_length);

}  // namespace g5::ic
