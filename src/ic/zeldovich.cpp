#include "ic/zeldovich.hpp"

#include <cmath>
#include <stdexcept>

#include "util/log.hpp"

namespace g5::ic {

using math::Vec3d;

CosmologicalSphereResult make_cosmological_sphere(
    const CosmologicalSphereConfig& config) {
  if (config.particle_mass <= 0.0) {
    throw std::invalid_argument("particle_mass must be > 0");
  }
  if (config.z_start <= 0.0) {
    throw std::invalid_argument("z_start must be > 0");
  }

  const model::Cosmology cosmo(config.cosmo);

  // Lattice spacing from mass resolution: m = rho_mean * spacing^3.
  const double rho = cosmo.mean_matter_density();
  const double spacing = std::cbrt(config.particle_mass / rho);
  const double box = spacing * static_cast<double>(config.grid_n);
  const double radius =
      config.sphere_radius > 0.0 ? config.sphere_radius : 0.45 * box;
  if (2.0 * radius > box) {
    throw std::invalid_argument("sphere_radius exceeds half the lattice box");
  }

  PowerSpectrumParams ps_params = config.power;
  ps_params.omega_m = config.cosmo.omega_m;
  ps_params.h = config.cosmo.h;
  const PowerSpectrum ps(ps_params);

  GrfConfig grf_cfg;
  grf_cfg.grid_n = config.grid_n;
  grf_cfg.box_size = box;
  grf_cfg.seed = config.seed;
  const GaussianRandomField grf(grf_cfg, ps);

  const double a_i = model::Cosmology::a_of_z(config.z_start);
  const double growth = cosmo.growth_factor(a_i);
  const double f_growth = cosmo.growth_rate(a_i);
  const double hubble_i = cosmo.hubble(a_i);

  CosmologicalSphereResult out;
  out.box_size = box;
  out.sphere_radius = radius;
  out.a_start = a_i;
  out.time_start = cosmo.age(a_i);
  out.time_end = cosmo.age(1.0);
  out.growth_start = growth;
  out.lattice_points = config.grid_n * config.grid_n * config.grid_n;

  const Vec3d center{0.5 * box, 0.5 * box, 0.5 * box};
  const double r2max = radius * radius;
  double disp2_sum = 0.0;

  model::ParticleSet& pset = out.particles;
  const std::size_t n = config.grid_n;
  pset.reserve(static_cast<std::size_t>(
      4.19 * radius * radius * radius / (spacing * spacing * spacing)) + 64);

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t k = 0; k < n; ++k) {
        // Lagrangian lattice coordinate (cell centers).
        const Vec3d q{(static_cast<double>(i) + 0.5) * spacing,
                      (static_cast<double>(j) + 0.5) * spacing,
                      (static_cast<double>(k) + 0.5) * spacing};
        if ((q - center).norm2() > r2max) continue;

        const Vec3d psi = grf.psi_at(i, j, k);
        const Vec3d disp = growth * psi;  // comoving displacement at a_i
        disp2_sum += disp.norm2();

        // Comoving -> physical: r = a * x. Velocity = Hubble flow + peculiar
        // velocity a * dx/dt = a * H * f * D * psi.
        const Vec3d x_com = q + disp - center;  // sphere centered at origin
        const Vec3d r_phys = a_i * x_com;
        const Vec3d v_pec = (a_i * hubble_i * f_growth * growth) * psi;
        const Vec3d v_phys = hubble_i * r_phys + v_pec;

        pset.add(r_phys, v_phys, config.particle_mass);
      }
    }
  }

  if (pset.empty()) {
    throw std::runtime_error("cosmological sphere selected zero particles");
  }
  out.rms_displacement =
      std::sqrt(disp2_sum / static_cast<double>(pset.size()));

  util::log_info() << "cosmological sphere IC: N=" << pset.size()
                   << " box=" << box << " Mpc radius=" << radius
                   << " Mpc spacing=" << spacing << " Mpc a_i=" << a_i
                   << " D(a_i)=" << growth
                   << " rms displacement=" << out.rms_displacement << " Mpc";
  return out;
}

}  // namespace g5::ic
