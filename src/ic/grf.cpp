#include "ic/grf.hpp"

#include <cmath>
#include <stdexcept>
#include <tuple>

namespace g5::ic {

using math::Complex;
using math::Grid3C;
using math::Vec3d;

GaussianRandomField::GaussianRandomField(const GrfConfig& config,
                                         const PowerSpectrum& ps)
    : cfg_(config) {
  if (!math::is_pow2(cfg_.grid_n)) {
    throw std::invalid_argument("grid_n must be a power of two");
  }
  if (cfg_.box_size <= 0.0) {
    throw std::invalid_argument("box_size must be > 0");
  }
  delta_k_ = std::make_unique<Grid3C>(cfg_.grid_n);
  sample_modes(ps);
  derive_real_fields();
}

void GaussianRandomField::sample_modes(const PowerSpectrum& ps) {
  const std::size_t n = cfg_.grid_n;
  const double volume = cfg_.box_size * cfg_.box_size * cfg_.box_size;
  const double kf = 2.0 * M_PI / cfg_.box_size;  // fundamental mode
  math::Rng rng(cfg_.seed);

  // Each independent mode gets <|delta_k|^2> = P(k) / V. Pairs (k, -k) are
  // conjugate; self-conjugate modes (all components 0 or n/2) are real.
  // We iterate in a fixed order and draw exactly one pair of Gaussians per
  // independent mode, so the realization is deterministic in the seed.
  auto conj_index = [n](std::size_t i) { return (n - i) % n; };

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t k = 0; k < n; ++k) {
        const std::size_t ci = conj_index(i), cj = conj_index(j),
                          ck = conj_index(k);
        // Canonical representative of the (k, -k) pair: lexicographically
        // not-greater index triple.
        const bool self = (ci == i && cj == j && ck == k);
        const bool canonical =
            self || std::tie(i, j, k) < std::tie(ci, cj, ck);
        if (!canonical) continue;

        if (i == 0 && j == 0 && k == 0) {
          delta_k_->at(i, j, k) = Complex(0.0, 0.0);  // no mean-density mode
          continue;
        }
        const double kx = kf * static_cast<double>(math::freq_index(i, n));
        const double ky = kf * static_cast<double>(math::freq_index(j, n));
        const double kz = kf * static_cast<double>(math::freq_index(k, n));
        const double kk = std::sqrt(kx * kx + ky * ky + kz * kz);
        const double sigma = std::sqrt(ps(kk) / volume);
        if (self) {
          delta_k_->at(i, j, k) = Complex(rng.gaussian(0.0, sigma), 0.0);
        } else {
          const Complex v(rng.gaussian(0.0, sigma * M_SQRT1_2),
                          rng.gaussian(0.0, sigma * M_SQRT1_2));
          delta_k_->at(i, j, k) = v;
          delta_k_->at(ci, cj, ck) = std::conj(v);
        }
      }
    }
  }
}

void GaussianRandomField::derive_real_fields() {
  const std::size_t n = cfg_.grid_n;
  const double kf = 2.0 * M_PI / cfg_.box_size;
  const double nn = static_cast<double>(n) * static_cast<double>(n) *
                    static_cast<double>(n);

  // delta(x_j) = sum_k delta_k e^{+i k x_j}; Grid3C::inverse() divides by
  // n^3, so pre-scale by n^3.
  delta_x_ = std::make_unique<Grid3C>(n);
  for (std::size_t idx = 0; idx < delta_k_->size(); ++idx) {
    delta_x_->data()[idx] = delta_k_->data()[idx] * nn;
  }
  delta_x_->inverse();

  // psi_hat(k) = i k / k^2 * delta_k  (so that delta = -div psi).
  for (int axis = 0; axis < 3; ++axis) {
    psi_x_[axis] = std::make_unique<Grid3C>(n);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const double kx = kf * static_cast<double>(math::freq_index(i, n));
    for (std::size_t j = 0; j < n; ++j) {
      const double ky = kf * static_cast<double>(math::freq_index(j, n));
      for (std::size_t k = 0; k < n; ++k) {
        const double kz = kf * static_cast<double>(math::freq_index(k, n));
        const double k2 = kx * kx + ky * ky + kz * kz;
        if (k2 == 0.0) continue;
        const Complex d = delta_k_->at(i, j, k) * nn;
        const Complex ik(0.0, 1.0);
        psi_x_[0]->at(i, j, k) = ik * (kx / k2) * d;
        psi_x_[1]->at(i, j, k) = ik * (ky / k2) * d;
        psi_x_[2]->at(i, j, k) = ik * (kz / k2) * d;
      }
    }
  }
  for (int axis = 0; axis < 3; ++axis) psi_x_[axis]->inverse();
}

Vec3d GaussianRandomField::psi_at(std::size_t i, std::size_t j,
                                  std::size_t k) const {
  return {psi_x_[0]->at(i, j, k).real(), psi_x_[1]->at(i, j, k).real(),
          psi_x_[2]->at(i, j, k).real()};
}

double GaussianRandomField::measured_variance() const {
  double sum = 0.0;
  for (std::size_t idx = 0; idx < delta_x_->size(); ++idx) {
    const double v = delta_x_->data()[idx].real();
    sum += v * v;
  }
  return sum / static_cast<double>(delta_x_->size());
}

double GaussianRandomField::measured_power_in_shell(double k_lo,
                                                    double k_hi) const {
  const std::size_t n = cfg_.grid_n;
  const double volume = cfg_.box_size * cfg_.box_size * cfg_.box_size;
  const double kf = 2.0 * M_PI / cfg_.box_size;
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t k = 0; k < n; ++k) {
        const double kx = kf * static_cast<double>(math::freq_index(i, n));
        const double ky = kf * static_cast<double>(math::freq_index(j, n));
        const double kz = kf * static_cast<double>(math::freq_index(k, n));
        const double kk = std::sqrt(kx * kx + ky * ky + kz * kz);
        if (kk < k_lo || kk >= k_hi) continue;
        sum += std::norm(delta_k_->at(i, j, k));
        ++count;
      }
    }
  }
  if (count == 0) return 0.0;
  return sum / static_cast<double>(count) * volume;
}

}  // namespace g5::ic
