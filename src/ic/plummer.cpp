#include "ic/plummer.hpp"

#include <cmath>
#include <stdexcept>

#include "math/rng.hpp"

namespace g5::ic {

using math::Vec3d;

model::ParticleSet make_plummer(const PlummerConfig& config) {
  if (config.n == 0) throw std::invalid_argument("n must be > 0");
  if (config.total_mass <= 0.0 || config.scale_length <= 0.0) {
    throw std::invalid_argument("mass and scale length must be > 0");
  }
  math::Rng rng(config.seed);
  model::ParticleSet pset;
  pset.reserve(config.n);

  const double b = config.scale_length;
  const double m_each = config.total_mass / static_cast<double>(config.n);
  const double rmax = config.rmax_over_b * b;

  for (std::size_t i = 0; i < config.n; ++i) {
    // Radius from the inverse cumulative mass profile:
    // M(r)/M = r^3 / (r^2 + b^2)^{3/2}  =>  r = b / sqrt(u^{-2/3} - 1).
    double r;
    do {
      double u = rng.uniform();
      while (u <= 0.0) u = rng.uniform();
      r = b / std::sqrt(std::pow(u, -2.0 / 3.0) - 1.0);
    } while (r > rmax);
    const Vec3d position = r * rng.on_unit_sphere();

    // Speed by von Neumann rejection on g(q) = q^2 (1 - q^2)^{7/2},
    // q = v / v_esc (Aarseth et al. 1974).
    double q;
    for (;;) {
      q = rng.uniform();
      const double g = q * q * std::pow(1.0 - q * q, 3.5);
      if (0.1 * rng.uniform() < g) break;
    }
    const double v_esc = std::sqrt(2.0 * config.total_mass) *
                         std::pow(r * r + b * b, -0.25);
    const Vec3d velocity = (q * v_esc) * rng.on_unit_sphere();

    pset.add(position, velocity, m_each);
  }

  // Exact centering: subtract CoM position and mean velocity.
  const Vec3d com = pset.center_of_mass();
  const Vec3d vmean = pset.total_momentum() / pset.total_mass();
  for (std::size_t i = 0; i < pset.size(); ++i) {
    pset.pos()[i] -= com;
    pset.vel()[i] -= vmean;
  }
  return pset;
}

double plummer_potential_energy(double total_mass, double scale_length) {
  return -3.0 * M_PI * total_mass * total_mass / (32.0 * scale_length);
}

}  // namespace g5::ic
