#include "ic/hernquist.hpp"

#include <cmath>
#include <stdexcept>

#include "math/rng.hpp"

namespace g5::ic {

using math::Vec3d;

namespace {

/// Isotropic Hernquist distribution function in G = M = b = 1 units, as a
/// function of q = sqrt(-E), q in [0, 1) (Hernquist 1990, eq. 17; overall
/// positive normalization constant dropped — rejection sampling only needs
/// the shape).
double df_shape(double q) {
  const double q2 = q * q;
  const double one_m = 1.0 - q2;
  if (one_m <= 0.0) return 0.0;
  const double term = 3.0 * std::asin(q) +
                      q * std::sqrt(one_m) * (1.0 - 2.0 * q2) *
                          (8.0 * q2 * q2 - 8.0 * q2 - 3.0);
  return term / std::pow(one_m, 2.5);
}

}  // namespace

model::ParticleSet make_hernquist(const HernquistConfig& config) {
  if (config.n == 0) throw std::invalid_argument("n must be > 0");
  if (config.total_mass <= 0.0 || config.scale_length <= 0.0) {
    throw std::invalid_argument("mass and scale length must be > 0");
  }
  math::Rng rng(config.seed);
  model::ParticleSet pset;
  pset.reserve(config.n);
  const double m_each = config.total_mass / static_cast<double>(config.n);

  // Work in G = M = b = 1; rescale at the end:
  // r -> b r', v -> sqrt(M/b) v'.
  const double rmax = config.rmax_over_b;
  const double umax = rmax / (1.0 + rmax);  // sqrt of the mass fraction

  for (std::size_t i = 0; i < config.n; ++i) {
    // Radius from the inverse cumulative mass profile M(r) = (r/(1+r))^2:
    // sqrt(u) = r/(1+r) -> r = s/(1-s) with s = sqrt(u), truncated.
    const double s = std::sqrt(rng.uniform()) * umax;
    const double r = s / (1.0 - s);

    // Speed from the isotropic DF by rejection: density of speeds at
    // radius r is p(v) ~ v^2 f(E), E = phi(r) + v^2/2, phi = -1/(1+r).
    const double phi = -1.0 / (1.0 + r);
    const double v_esc = std::sqrt(-2.0 * phi);
    // Envelope: scan for the maximum of v^2 f(E) at this radius.
    double peak = 0.0;
    constexpr int kScan = 64;
    for (int k = 1; k < kScan; ++k) {
      const double v = v_esc * static_cast<double>(k) / kScan;
      const double q = std::sqrt(-(phi + 0.5 * v * v));
      peak = std::max(peak, v * v * df_shape(q));
    }
    peak *= 1.1;  // scan resolution margin
    double v = 0.0;
    for (;;) {
      v = v_esc * rng.uniform();
      const double e = phi + 0.5 * v * v;
      if (e >= 0.0) continue;
      const double q = std::sqrt(-e);
      if (peak * rng.uniform() < v * v * df_shape(q)) break;
    }

    const Vec3d pos = (config.scale_length * r) * rng.on_unit_sphere();
    const double v_scale =
        std::sqrt(config.total_mass / config.scale_length);
    const Vec3d vel = (v_scale * v) * rng.on_unit_sphere();
    pset.add(pos, vel, m_each);
  }

  // Exact centering.
  const Vec3d com = pset.center_of_mass();
  const Vec3d vmean = pset.total_momentum() / pset.total_mass();
  for (std::size_t i = 0; i < pset.size(); ++i) {
    pset.pos()[i] -= com;
    pset.vel()[i] -= vmean;
  }
  return pset;
}

double hernquist_potential_energy(double total_mass, double scale_length) {
  return -total_mass * total_mass / (6.0 * scale_length);
}

double hernquist_mass_fraction(double r, double scale_length) {
  if (r <= 0.0) return 0.0;
  const double t = r / (r + scale_length);
  return t * t;
}

}  // namespace g5::ic
