// Using the raw g5_* driver API exactly the way user code drove the real
// GRAPE-5 library: open the device, set the coordinate window and
// softening, upload a j-set into the particle memory, then loop i-batches
// through g5_set_xi / g5_run / g5_get_force and compare against a host
// double-precision sum.
//
//   ./grape_driver_demo [--n 2048] [--eps 0.02]

#include <algorithm>
#include <cstdio>
#include <vector>

#include "grape/driver.hpp"
#include "grape/host_reference.hpp"
#include "ic/plummer.hpp"
#include "util/options.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace g5;
  using grape::Vec3d;
  util::Options opt(argc, argv);

  const auto n = static_cast<std::size_t>(opt.get_int("n", 2048));
  const double eps = opt.get_double("eps", 0.02);

  ic::PlummerConfig pc;
  pc.n = n;
  pc.seed = 123;
  const model::ParticleSet pset = ic::make_plummer(pc);

  // ---- the historical call sequence -----------------------------------
  grape::g5_open();
  std::printf("g5_open: %d pipelines, jmem %d particles\n",
              grape::g5_get_number_of_pipelines(), grape::g5_get_jmemsize());

  grape::g5_set_range(-20.0, 20.0, pset.mass()[0]);
  grape::g5_set_eps_to_all(eps);

  // Pack positions into the double[3] layout of the original API.
  std::vector<double> xj(3 * n), mj(n);
  for (std::size_t j = 0; j < n; ++j) {
    xj[3 * j + 0] = pset.pos()[j].x;
    xj[3 * j + 1] = pset.pos()[j].y;
    xj[3 * j + 2] = pset.pos()[j].z;
    mj[j] = pset.mass()[j];
  }
  grape::g5_set_n(static_cast<int>(n));
  grape::g5_set_xmj(0, static_cast<int>(n),
                    reinterpret_cast<const double(*)[3]>(xj.data()),
                    mj.data());

  std::vector<Vec3d> acc(n);
  std::vector<double> pot(n);
  const int npipe = grape::g5_get_number_of_pipelines();
  std::vector<double> ab(3 * static_cast<std::size_t>(npipe));
  std::vector<double> pb(static_cast<std::size_t>(npipe));
  for (std::size_t off = 0; off < n; off += static_cast<std::size_t>(npipe)) {
    const int ni = static_cast<int>(
        std::min<std::size_t>(static_cast<std::size_t>(npipe), n - off));
    grape::g5_set_xi(ni, reinterpret_cast<const double(*)[3]>(&xj[3 * off]));
    grape::g5_run();
    grape::g5_get_force(ni, reinterpret_cast<double(*)[3]>(ab.data()),
                        pb.data());
    for (int i = 0; i < ni; ++i) {
      acc[off + static_cast<std::size_t>(i)] =
          Vec3d{ab[3 * i], ab[3 * i + 1], ab[3 * i + 2]};
      pot[off + static_cast<std::size_t>(i)] = pb[static_cast<std::size_t>(i)];
    }
  }

  const auto& account = grape::g5_device().system().account();
  std::printf("ran %llu interactions in %llu force calls; "
              "modeled hardware time %.3f ms, emulation %.3f s\n",
              static_cast<unsigned long long>(account.interactions),
              static_cast<unsigned long long>(account.force_calls),
              account.modeled_total() * 1e3, account.emulation_wall);
  grape::g5_close();

  // ---- host comparison -------------------------------------------------
  std::vector<Vec3d> acc_ref(n);
  std::vector<double> pot_ref(n);
  grape::host_forces_on_targets(pset.pos(), pset.pos(), pset.mass(), eps,
                                acc_ref, pot_ref);

  util::RunningStat err;
  for (std::size_t i = 0; i < n; ++i) {
    const double ref = acc_ref[i].norm();
    if (ref > 0.0) err.add((acc[i] - acc_ref[i]).norm() / ref);
  }
  std::printf("acceleration error vs 64-bit host: rms %.3e, max %.3e\n",
              err.rms(), err.max());
  std::printf("(the G5 pipeline's pairwise error is ~0.3%%; whole-force "
              "errors partially average out over the %zu sources)\n", n);
  return 0;
}
