// Cold spherical collapse: the classic violent-relaxation test problem.
// A uniform, zero-temperature sphere collapses, bounces and settles into a
// virialized core-halo structure — a stress test for the treecode (the
// tree deepens dramatically at maximum collapse) and for the emulated
// hardware's dynamic range (the range window shrinks by ~10x and the
// driver must rescale it every step).
//
//   ./cold_collapse [--n 4096] [--steps 300] [--dt 0.005]
//                   [--virial 0.05] [--engine grape-tree]
//                   [--blockstep] [--rungs 5] [--eta 0.05]
//
// With --blockstep the run uses the hierarchical individual-timestep
// integrator (core/blockstep.hpp): the collapsing core drops to deep
// rungs while the outer shells coast, saving force evaluations at equal
// accuracy.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/blockstep.hpp"
#include "core/diagnostics.hpp"
#include "math/rng.hpp"
#include "util/timer.hpp"
#include "core/engines.hpp"
#include "core/simulation.hpp"
#include "ic/uniform.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace g5;
  util::Options opt(argc, argv);

  const auto n = static_cast<std::size_t>(opt.get_int("n", 4096));
  const double virial = opt.get_double("virial", 0.05);

  // Uniform sphere of radius 1, mass 1, with a small isotropic velocity
  // dispersion setting the initial virial ratio. Collapse time for the
  // cold sphere: t_ff = pi/2 * sqrt(R^3 / (2 G M)) ~ 1.11.
  model::ParticleSet pset = ic::make_uniform_ball(n, 1.0, 1.0, 99);
  {
    math::Rng rng(100);
    const double w = 3.0 / 5.0;  // |W| of the uniform sphere (G=M=R=1)
    const double sigma = std::sqrt(2.0 * virial * w / 3.0);
    for (auto& v : pset.vel()) {
      v = math::Vec3d{rng.gaussian(0.0, sigma), rng.gaussian(0.0, sigma),
                      rng.gaussian(0.0, sigma)};
    }
  }

  core::ForceParams fp;
  fp.eps = opt.get_double("eps", 0.02);
  fp.theta = opt.get_double("theta", 0.75);
  fp.n_crit = static_cast<std::uint32_t>(opt.get_int("ncrit", 256));
  auto engine = core::make_engine(opt.get_string("engine", "grape-tree"), fp);

  core::SimulationConfig sc;
  sc.dt = opt.get_double("dt", 0.005);
  sc.steps = static_cast<std::uint64_t>(opt.get_int("steps", 300));
  sc.log_every = static_cast<std::uint64_t>(opt.get_int("log-every", 100));

  std::printf("cold collapse: N=%zu, initial virial ratio %.3f, engine=%s\n",
              n, virial, engine->name().data());

  struct Sample {
    double t, r10, r50, r90, virial_ratio;
  };
  std::vector<Sample> track;
  const auto sample_every =
      static_cast<std::uint64_t>(opt.get_int("sample-every", 25));
  auto take_sample = [&](double t_now, const model::ParticleSet& ps) {
    std::vector<double> r(ps.size());
    const auto com = ps.center_of_mass();
    for (std::size_t i = 0; i < ps.size(); ++i) {
      r[i] = (ps.pos()[i] - com).norm();
    }
    std::sort(r.begin(), r.end());
    const auto diag = core::diagnose(ps);
    track.push_back({t_now, r[ps.size() / 10], r[ps.size() / 2],
                     r[9 * ps.size() / 10], diag.energy.virial_ratio()});
  };

  core::SimulationSummary s;
  if (opt.get_bool("blockstep", false)) {
    // Individual timesteps: one block = sample_every shared steps' span.
    core::BlockStepConfig bc;
    bc.dt_max = sc.dt * static_cast<double>(sample_every);
    bc.max_rungs = static_cast<int>(opt.get_int("rungs", 7));
    bc.eta = opt.get_double("eta", 0.05);
    core::BlockTimestepIntegrator block(bc);
    block.prime(pset, *engine);
    const auto e0 = core::diagnose(pset).energy;
    util::Stopwatch wall;
    const auto blocks = std::max<std::uint64_t>(1, sc.steps / sample_every);
    for (std::uint64_t blk = 1; blk <= blocks; ++blk) {
      block.step_block(pset, *engine);
      take_sample(static_cast<double>(blk) * bc.dt_max, pset);
    }
    engine->compute(pset);
    s.steps = blocks;
    s.wall_seconds = wall.elapsed();
    s.engine = engine->stats();
    s.energy_drift =
        core::relative_energy_drift(core::diagnose(pset).energy, e0);
    const auto& bs = block.stats();
    std::printf("blockstep: %llu force updates vs %llu shared-dt_min "
                "equivalent (saving %.1fx); rung population:",
                static_cast<unsigned long long>(bs.force_updates),
                static_cast<unsigned long long>(bs.shared_equivalent),
                static_cast<double>(bs.shared_equivalent) /
                    static_cast<double>(bs.force_updates));
    for (const auto c : bs.rung_population) {
      std::printf(" %llu", static_cast<unsigned long long>(c));
    }
    std::printf("\n");
  } else {
    core::Simulation sim(*engine, sc);
    sim.set_step_hook([&](std::uint64_t step, const model::ParticleSet& ps) {
      if (step % sample_every != 0) return;
      take_sample(static_cast<double>(step) * sc.dt, ps);
    });
    s = sim.run(pset);
  }

  util::Table t({"t", "r10%", "r50%", "r90%", "2K/|W|"});
  for (const auto& row : track) {
    char c0[12], c1[12], c2[12], c3[12], c4[12];
    std::snprintf(c0, sizeof(c0), "%.2f", row.t);
    std::snprintf(c1, sizeof(c1), "%.3f", row.r10);
    std::snprintf(c2, sizeof(c2), "%.3f", row.r50);
    std::snprintf(c3, sizeof(c3), "%.3f", row.r90);
    std::snprintf(c4, sizeof(c4), "%.3f", row.virial_ratio);
    t.add_row({c0, c1, c2, c3, c4});
  }
  t.print();

  std::printf("\ncollapse bounces near t ~ 1.1 (free-fall time of the cold "
              "sphere), then the\nvirial ratio settles toward 1.\n");
  std::printf("energy drift: %s | interactions: %s | wall: %s\n",
              util::sci(s.energy_drift).c_str(),
              util::sci(static_cast<double>(s.engine.interactions)).c_str(),
              util::human_seconds(s.wall_seconds).c_str());
  return 0;
}
