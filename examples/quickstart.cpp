// Quickstart: integrate a Plummer sphere with the paper's system — Barnes'
// modified treecode with forces on the emulated GRAPE-5.
//
//   ./quickstart [--n 4096] [--model plummer|hernquist] [--steps 100]
//                [--dt 0.01] [--eps 0.02] [--theta 0.75] [--ncrit 256]
//                [--engine grape-tree]
//
// Prints per-run statistics: energy drift, interaction counts, measured
// host wall clock and the modeled GRAPE-5 wall clock.

#include <cstdio>

#include "core/diagnostics.hpp"
#include "core/engines.hpp"
#include "core/simulation.hpp"
#include "ic/hernquist.hpp"
#include "ic/plummer.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace g5;
  util::Options opt(argc, argv);

  const std::string model = opt.get_string("model", "plummer");
  const auto n = static_cast<std::size_t>(opt.get_int("n", 4096));
  const auto seed = static_cast<std::uint64_t>(opt.get_int("seed", 42));

  core::ForceParams fp;
  fp.eps = opt.get_double("eps", 0.02);
  fp.theta = opt.get_double("theta", 0.75);
  fp.n_crit = static_cast<std::uint32_t>(opt.get_int("ncrit", 256));

  const std::string engine_name = opt.get_string("engine", "grape-tree");
  auto engine = core::make_engine(engine_name, fp);

  std::printf("quickstart: N=%zu model=%s engine=%s eps=%g theta=%g "
              "n_crit=%u\n", n, model.c_str(), engine->name().data(), fp.eps,
              fp.theta, fp.n_crit);

  model::ParticleSet pset;
  if (model == "hernquist") {
    ic::HernquistConfig hc;
    hc.n = n;
    hc.seed = seed;
    pset = ic::make_hernquist(hc);
  } else {
    ic::PlummerConfig pc;
    pc.n = n;
    pc.seed = seed;
    pset = ic::make_plummer(pc);
  }

  core::SimulationConfig sc;
  sc.dt = opt.get_double("dt", 0.01);
  sc.steps = static_cast<std::uint64_t>(opt.get_int("steps", 100));
  sc.log_every = static_cast<std::uint64_t>(opt.get_int("log-every", 25));

  core::Simulation sim(*engine, sc);
  const core::SimulationSummary s = sim.run(pset);

  util::Table t({"quantity", "value"});
  t.add_row({"steps", std::to_string(s.steps)});
  t.add_row({"energy initial", util::sci(s.energy_initial.total())});
  t.add_row({"energy final", util::sci(s.energy_final.total())});
  t.add_row({"relative energy drift", util::sci(s.energy_drift)});
  t.add_row({"virial ratio (final)",
             util::sci(s.energy_final.virial_ratio())});
  t.add_row({"pairwise interactions", util::sci(
                 static_cast<double>(s.engine.interactions))});
  t.add_row({"interaction lists", std::to_string(s.engine.groups)});
  t.add_row({"mean list length", util::sci(s.engine.walk.mean_list())});
  t.add_row({"host wall clock (measured)",
             util::human_seconds(s.wall_seconds)});
  if (s.grape.force_calls > 0) {
    t.add_row({"GRAPE-5 time (modeled)",
               util::human_seconds(s.grape.modeled_total())});
    t.add_row({"GRAPE-5 sustained (modeled)",
               util::human_flops(s.grape.flops() / s.grape.modeled_total())});
  }
  t.print();
  return 0;
}
