// A miniature of the paper's experiment: a spherical region drawn from an
// SCDM density realization (COSMICS-substitute initial conditions),
// integrated from z = 24 to z = 0 with the modified treecode on the
// emulated GRAPE-5.
//
//   ./cosmological_sphere [--grid 16] [--steps 64] [--ncrit 256]
//                         [--theta 0.75] [--engine grape-tree]
//                         [--snapshot-prefix cosmo] [--snapshots 0]
//
// The defaults produce a few thousand particles so the emulated hardware
// finishes in seconds; raise --grid for paper-like scales. The particle
// mass is the paper's 1.7e10 Msun regardless of the grid, so the lattice
// spacing (0.63 Mpc) and clustering scales match the original run.

#include <cmath>
#include <cstdio>

#include "core/comoving.hpp"
#include "core/diagnostics.hpp"
#include "core/engines.hpp"
#include "core/render.hpp"
#include "core/simulation.hpp"
#include "ic/zeldovich.hpp"
#include "model/units.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace g5;
  util::Options opt(argc, argv);

  ic::CosmologicalSphereConfig cc;
  cc.grid_n = static_cast<std::size_t>(opt.get_int("grid", 16));
  cc.seed = static_cast<std::uint64_t>(opt.get_int("seed", 1999));
  cc.z_start = opt.get_double("z-start", 24.0);
  // Power of two only for the FFT grid; round up if needed.
  while ((cc.grid_n & (cc.grid_n - 1)) != 0) ++cc.grid_n;

  const ic::CosmologicalSphereResult icr = ic::make_cosmological_sphere(cc);
  model::ParticleSet pset = icr.particles;

  // Internal units are (Mpc, 1e10 Msun, Gyr); fold G into the masses so
  // the engines' G = 1 convention applies.
  const double G = model::gravitational_constant();
  for (auto& m : pset.mass()) m *= G;

  core::ForceParams fp;
  // Softening: a fraction of the interparticle spacing, the usual choice
  // for collisionless cosmological runs.
  const double spacing = icr.box_size / static_cast<double>(cc.grid_n);
  fp.eps = opt.get_double("eps", 0.05 * spacing);
  fp.theta = opt.get_double("theta", 0.75);
  fp.n_crit = static_cast<std::uint32_t>(opt.get_int("ncrit", 256));

  const std::string engine_name = opt.get_string("engine", "grape-tree");
  auto engine = core::make_engine(engine_name, fp);

  const auto steps = static_cast<std::uint64_t>(opt.get_int("steps", 64));
  const bool comoving = opt.get_bool("comoving", false);
  const model::Cosmology cosmo(cc.cosmo);

  std::printf(
      "cosmological sphere: N=%zu R=%.1f Mpc box=%.1f Mpc z=%.0f->0 "
      "steps=%llu engine=%s frame=%s\n",
      pset.size(), icr.sphere_radius, icr.box_size, cc.z_start,
      static_cast<unsigned long long>(steps), engine->name().data(),
      comoving ? "comoving" : "physical");

  core::SimulationSummary s;
  if (comoving) {
    // Comoving-coordinate integration (core/comoving.hpp): the expansion
    // is factored out analytically; the engine's eps becomes comoving.
    core::ComovingSimulation::physical_to_comoving(pset, cosmo, icr.a_start);
    core::ForceParams cfp = fp;
    cfp.eps = fp.eps / icr.a_start;  // same physical softening at start
    engine->set_params(cfp);
    core::ComovingConfig cc2;
    cc2.cosmo = cc.cosmo;
    cc2.a_start = icr.a_start;
    cc2.steps = steps;
    cc2.log_every = static_cast<std::uint64_t>(opt.get_int("log-every", 16));
    core::ComovingSimulation sim(*engine, cc2);
    const auto cs = sim.run(pset);
    core::ComovingSimulation::comoving_to_physical(pset, cosmo, 1.0);
    s.steps = cs.steps;
    s.wall_seconds = cs.wall_seconds;
    s.engine = cs.engine;
    std::printf("rms comoving displacement over the run: %.3f Mpc\n",
                cs.rms_comoving_displacement);
  } else {
    core::SimulationConfig sc;
    // Steps uniform in ln(a): resolves the fast early epochs that a
    // constant dt over z = 24 -> 0 would skip entirely.
    sc.dt_schedule = cosmo.log_a_timesteps(icr.a_start, 1.0, steps);
    sc.log_every = static_cast<std::uint64_t>(opt.get_int("log-every", 16));
    sc.snapshot_every =
        static_cast<std::uint64_t>(opt.get_int("snapshots", 0));
    sc.snapshot_prefix = opt.get_string("snapshot-prefix", "cosmo");
    core::Simulation sim(*engine, sc);
    s = sim.run(pset);
  }

  util::Table t({"quantity", "value"});
  t.add_row({"particles", std::to_string(pset.size())});
  t.add_row({"steps", std::to_string(s.steps)});
  t.add_row({"span", std::to_string(icr.time_end - icr.time_start) + " Gyr"});
  t.add_row({"pairwise interactions",
             util::sci(static_cast<double>(s.engine.interactions))});
  t.add_row({"mean list length", util::sci(s.engine.walk.mean_list())});
  if (!comoving) {
    // A cosmological sphere's total energy is near zero (Hubble-flow
    // kinetic vs potential), so normalize by |W| instead of |E|.
    const double w = std::fabs(s.energy_final.potential);
    t.add_row({"energy drift / |W|",
               util::sci(std::fabs(s.energy_final.total() -
                                   s.energy_initial.total()) /
                         std::max(w, 1e-300))});
  }
  t.add_row({"host wall clock (measured)",
             util::human_seconds(s.wall_seconds)});
  if (s.grape.force_calls > 0) {
    t.add_row({"GRAPE-5 time (modeled)",
               util::human_seconds(s.grape.modeled_total())});
  }
  t.print();

  // Final-state slab projection in the spirit of Figure 4, scaled to this
  // run's sphere radius.
  const double r = icr.sphere_radius;
  core::SlabConfig slab;
  slab.lo0 = -0.9 * r;
  slab.hi0 = 0.9 * r;
  slab.lo1 = -0.9 * r;
  slab.hi1 = 0.9 * r;
  slab.slab_lo = -0.05 * r;
  slab.slab_hi = 0.05 * r;
  slab.width = 72;
  slab.height = 36;
  const core::SlabImage img(slab, pset);
  std::printf("\nfinal slab projection (%llu particles in slab):\n%s",
              static_cast<unsigned long long>(img.particles_in_slab()),
              img.ascii().c_str());
  return 0;
}
