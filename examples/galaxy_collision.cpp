// Two Plummer-sphere "galaxies" on a parabolic encounter, integrated with
// the modified treecode on the emulated GRAPE-5. Tracks the separation of
// the two density centers over time and renders the final state.
//
//   ./galaxy_collision [--n 4096] [--steps 150] [--dt 0.05]
//                      [--pericenter 1.0] [--mass-ratio 1.0]

#include <cstdio>
#include <vector>

#include "core/engines.hpp"
#include "core/render.hpp"
#include "core/simulation.hpp"
#include "ic/galaxy.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

namespace {

g5::math::Vec3d mass_center(const g5::model::ParticleSet& pset,
                            std::size_t first, std::size_t count) {
  g5::math::Vec3d c{};
  double m = 0.0;
  for (std::size_t i = first; i < first + count; ++i) {
    c += pset.mass()[i] * pset.pos()[i];
    m += pset.mass()[i];
  }
  return m > 0.0 ? c / m : g5::math::Vec3d{};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace g5;
  util::Options opt(argc, argv);

  ic::GalaxyCollisionConfig gc;
  gc.n_per_galaxy = static_cast<std::size_t>(opt.get_int("n", 4096)) / 2;
  gc.pericenter = opt.get_double("pericenter", 1.0);
  gc.mass_ratio = opt.get_double("mass-ratio", 1.0);
  gc.initial_separation = opt.get_double("separation", 10.0);

  ic::GalaxyCollisionResult icr = ic::make_galaxy_collision(gc);
  model::ParticleSet& pset = icr.particles;

  core::ForceParams fp;
  fp.eps = opt.get_double("eps", 0.05);
  fp.theta = opt.get_double("theta", 0.75);
  fp.n_crit = static_cast<std::uint32_t>(opt.get_int("ncrit", 256));
  auto engine = core::make_engine(opt.get_string("engine", "grape-tree"), fp);

  core::SimulationConfig sc;
  sc.dt = opt.get_double("dt", 0.05);
  sc.steps = static_cast<std::uint64_t>(opt.get_int("steps", 150));
  sc.log_every = static_cast<std::uint64_t>(opt.get_int("log-every", 50));

  std::printf(
      "galaxy collision: N=%zu (%zu + %zu), pericenter=%g, mass ratio=%g, "
      "engine=%s\n",
      pset.size(), icr.n_first, pset.size() - icr.n_first, gc.pericenter,
      gc.mass_ratio, engine->name().data());

  const std::size_t n1 = icr.n_first;
  const std::size_t n2 = pset.size() - n1;
  struct Sample {
    double t;
    double separation;
  };
  std::vector<Sample> track;
  core::Simulation sim(*engine, sc);
  const std::uint64_t sample_every =
      static_cast<std::uint64_t>(opt.get_int("sample-every", 10));
  sim.set_step_hook([&](std::uint64_t step, const model::ParticleSet& ps) {
    if (step % sample_every != 0) return;
    const auto c1 = mass_center(ps, 0, n1);
    const auto c2 = mass_center(ps, n1, n2);
    track.push_back({static_cast<double>(step) * sc.dt, (c2 - c1).norm()});
  });

  const core::SimulationSummary s = sim.run(pset);

  util::Table t({"t", "center separation"});
  for (const auto& sample : track) {
    char tb[32], sb[32];
    std::snprintf(tb, sizeof(tb), "%.2f", sample.t);
    std::snprintf(sb, sizeof(sb), "%.3f", sample.separation);
    t.add_row({tb, sb});
  }
  t.print();

  std::printf("\nenergy drift: %s, interactions: %s, wall: %s\n",
              util::sci(s.energy_drift).c_str(),
              util::sci(static_cast<double>(s.engine.interactions)).c_str(),
              util::human_seconds(s.wall_seconds).c_str());

  core::SlabConfig slab;
  slab.axis = 2;
  slab.lo0 = -8.0;
  slab.hi0 = 8.0;
  slab.lo1 = -8.0;
  slab.hi1 = 8.0;
  slab.slab_lo = -2.0;
  slab.slab_hi = 2.0;
  slab.width = 72;
  slab.height = 36;
  const core::SlabImage img(slab, pset);
  std::printf("\nfinal state (x-y projection):\n%s", img.ascii().c_str());
  return 0;
}
