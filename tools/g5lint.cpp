// g5lint — repo-specific invariant linter.
//
// Generic tools (clang-tidy, -Wconversion, -Wthread-safety) cannot see
// the invariants this codebase actually relies on; g5lint closes that
// gap with four rules, each tied to a defect class that has bitten (or
// would silently bite) the paper's error budget:
//
//   raw-stack     No fixed-size traversal stack arrays outside
//                 tree::TraversalStack. PR 1 replaced the bare
//                 `std::int32_t stack[512]` walkers (which overflowed on
//                 deep trees) with the guarded TraversalStack; this rule
//                 keeps the pattern from creeping back.
//
//   codec-bypass  No narrowing static_cast on particle-data expressions
//                 in src/grape/. Host<->pipeline number-format
//                 conversions must go through FixedPointCodec / the LNS
//                 codecs: a silent narrowing cast corrupts the 0.3 %
//                 pairwise-error budget invisibly.
//
//   raw-stdio     No std::cout / std::cerr / bare printf in library
//                 code outside util/log and util/table. Bench/table
//                 output on stdout must stay machine-parsable and log
//                 records must stay serialized (log.cpp's emit mutex).
//
//   raw-thread    No std::thread / std::jthread objects outside
//                 src/util/. Every long-lived thread must sit behind
//                 util::Thread or util::ThreadPool so it is joined
//                 deterministically by a destructor and synchronizes
//                 through the annotated Mutex/CondVar primitives (see
//                 util/thread.hpp; the AsyncDevice submitter is the
//                 pattern to copy). Type/static-member uses such as
//                 std::thread::id stay legal.
//
// A violation line can be exempted with a trailing comment:
//     ... // g5lint: allow(rule-name) reason
// Exemptions are themselves grep-able, so the audit trail stays visible.
//
// Usage:
//   g5lint <src-root>...      lint every .hpp/.cpp under the roots
//   g5lint --self-test        run the built-in seeded-violation fixtures
//
// Exit status: 0 clean, 1 violations (or failed self-test), 2 usage.
//
// Implementation notes: comments and string/char literals are blanked
// (line structure preserved) before rules run, so prose mentioning
// `stack[512]` or a format string containing "printf" cannot trip a
// rule; the allow() scan runs on the raw line because the exemption
// lives in a comment on purpose. Plain std::regex over stripped lines —
// the whole tree is ~100 files, speed is irrelevant.

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Violation {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

std::string to_lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

/// Blank out //, /* */ comments and string/char literals, preserving
/// newlines so line numbers survive. Escapes inside literals handled;
/// raw strings are not (none in this codebase; g5lint would flag the
/// file, which is the safe direction).
std::string strip_comments_and_strings(const std::string& text) {
  std::string out = text;
  enum class State { Code, Line, Block, Str, Chr } st = State::Code;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char n = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (st) {
      case State::Code:
        if (c == '/' && n == '/') {
          st = State::Line;
          out[i] = ' ';
        } else if (c == '/' && n == '*') {
          st = State::Block;
          out[i] = ' ';
        } else if (c == '"') {
          st = State::Str;
        } else if (c == '\'') {
          st = State::Chr;
        }
        break;
      case State::Line:
        if (c == '\n') st = State::Code;
        else out[i] = ' ';
        break;
      case State::Block:
        if (c == '*' && n == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          st = State::Code;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::Str:
        if (c == '\\') {
          out[i] = ' ';
          if (n != '\n' && n != '\0') out[++i] = ' ';
        } else if (c == '"') {
          st = State::Code;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::Chr:
        if (c == '\\') {
          out[i] = ' ';
          if (n != '\n' && n != '\0') out[++i] = ' ';
        } else if (c == '\'') {
          st = State::Code;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) lines.push_back(cur);
  return lines;
}

bool line_allows(const std::string& raw_line, const std::string& rule) {
  const auto pos = raw_line.find("g5lint: allow(");
  if (pos == std::string::npos) return false;
  const auto close = raw_line.find(')', pos);
  if (close == std::string::npos) return false;
  const auto open = pos + std::string("g5lint: allow(").size();
  return raw_line.substr(open, close - open) == rule;
}

/// One lintable file: `path` uses forward slashes relative to the lint
/// root (fixtures fake it), `raw` is the original text.
struct Source {
  std::string path;
  std::string raw;
};

bool path_contains(const std::string& path, const std::string& needle) {
  return path.find(needle) != std::string::npos;
}

// --- rule: raw-stack ------------------------------------------------

// A declaration-looking `type name[N]` (or std::array<...> name) whose
// name contains "stack" and whose extent is a literal or named constant.
// Indexing expressions (`stack[i]` after = or () don't match: the match
// must start at line begin or after ; { ( , and begin with a type-ish
// token followed by whitespace and the identifier.
const std::regex kRawStackDecl(
    R"((^|[;{,(])\s*(?:static\s+|constexpr\s+|const\s+)*(?:std::)?)"
    R"(([A-Za-z_][A-Za-z0-9_:]*)(?:\s*[*&])?\s+([A-Za-z_][A-Za-z0-9_]*)\s*)"
    R"(\[\s*([0-9]+[uUlL]*|[A-Za-z_][A-Za-z0-9_:]*)\s*\])");
// Statement keywords that the type-token position of kRawStackDecl can
// also match (`return stack[sp]` is indexing, not a declaration).
bool is_statement_keyword(const std::string& tok) {
  return tok == "return" || tok == "throw" || tok == "delete" ||
         tok == "case" || tok == "goto" || tok == "else" || tok == "new" ||
         tok == "co_return" || tok == "co_yield";
}
const std::regex kRawStackArray(
    R"(std::array\s*<[^;=]*>\s+([A-Za-z_][A-Za-z0-9_]*))");

void rule_raw_stack(const Source& src, const std::vector<std::string>& code,
                    const std::vector<std::string>& raw,
                    std::vector<Violation>& out) {
  if (path_contains(src.path, "tree/traversal_stack.hpp")) return;
  for (std::size_t i = 0; i < code.size(); ++i) {
    std::smatch m;
    std::string name;
    if (std::regex_search(code[i], m, kRawStackDecl) &&
        !is_statement_keyword(m[2].str())) {
      name = m[3].str();
    } else if (std::regex_search(code[i], m, kRawStackArray)) {
      name = m[1].str();
    }
    if (name.empty() || to_lower(name).find("stack") == std::string::npos) {
      continue;
    }
    if (line_allows(raw[i], "raw-stack")) continue;
    out.push_back({src.path, i + 1, "raw-stack",
                   "fixed-size stack '" + name +
                       "' — use tree::TraversalStack (guarded, spills)"});
  }
}

// --- rule: codec-bypass ---------------------------------------------

// Narrowing cast targets: float or sub-64-bit integer types.
const std::regex kNarrowCast(
    R"((?:static_cast|reinterpret_cast)\s*<\s*(?:const\s+)?)"
    R"((float|short|int|unsigned|unsigned\s+int|unsigned\s+short|)"
    R"(std::u?int(?:8|16|32)_t|u?int(?:8|16|32)_t)\s*>\s*\()");
// Identifiers that mark an expression as particle data in the pipeline
// sense (positions, masses, forces, potentials, softening).
const std::regex kParticleData(
    R"(\b(pos|mass|acc|pot|vel|force|eps|dx|dy|dz|x_exact|mass_exact)\w*\b|)"
    R"(\b\w*(_pos|_mass|_acc|_pot|_vel|_force)\b)");

void rule_codec_bypass(const Source& src, const std::vector<std::string>& code,
                       const std::vector<std::string>& raw,
                       std::vector<Violation>& out) {
  if (!path_contains(src.path, "grape/")) return;
  for (std::size_t i = 0; i < code.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(code[i], m, kNarrowCast)) continue;
    // Examine the cast operand (rest of line past the cast's open paren).
    const std::string operand = m.suffix().str();
    if (!std::regex_search(operand, kParticleData)) continue;
    if (line_allows(raw[i], "codec-bypass")) continue;
    out.push_back({src.path, i + 1, "codec-bypass",
                   "narrowing cast on particle data — convert via "
                   "math::FixedPointCodec / LnsFormat instead"});
  }
}

// --- rule: raw-stdio ------------------------------------------------

const std::regex kRawStdio(
    R"(\bstd::cout\b|\bstd::cerr\b|\bstd::clog\b|)"
    R"((?:std::)?\bprintf\s*\(|(?:std::)?\bputs\s*\(|\bputchar\s*\(|)"
    R"(fprintf\s*\(\s*(?:std)?(?:out|err)\b|)"
    R"(fputs\s*\([^,]*,\s*(?:std)?(?:out|err)\s*\))");

void rule_raw_stdio(const Source& src, const std::vector<std::string>& code,
                    const std::vector<std::string>& raw,
                    std::vector<Violation>& out) {
  if (path_contains(src.path, "util/log.") ||
      path_contains(src.path, "util/table.")) {
    return;
  }
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (!std::regex_search(code[i], kRawStdio)) continue;
    if (line_allows(raw[i], "raw-stdio")) continue;
    out.push_back({src.path, i + 1, "raw-stdio",
                   "direct stdout/stderr write in library code — route "
                   "through util::log / util::table or take a sink"});
  }
}

// --- rule: raw-thread -----------------------------------------------

// A std::thread / std::jthread mention that is not a scope access
// (std::thread::id, std::thread::hardware_concurrency): those construct
// or hold thread objects. The lookahead keeps type/static-member uses
// legal anywhere.
const std::regex kRawThread(R"(\bstd::j?thread\b(?!\s*::))");

void rule_raw_thread(const Source& src, const std::vector<std::string>& code,
                     const std::vector<std::string>& raw,
                     std::vector<Violation>& out) {
  if (path_contains(src.path, "util/")) return;
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (!std::regex_search(code[i], kRawThread)) continue;
    if (line_allows(raw[i], "raw-thread")) continue;
    out.push_back({src.path, i + 1, "raw-thread",
                   "raw std::thread outside util/ — use util::Thread or "
                   "util::ThreadPool (destructor-joined, annotated sync)"});
  }
}

// --- driver ---------------------------------------------------------

std::vector<Violation> lint_source(const Source& src) {
  const std::vector<std::string> raw = split_lines(src.raw);
  const std::vector<std::string> code =
      split_lines(strip_comments_and_strings(src.raw));
  std::vector<Violation> out;
  rule_raw_stack(src, code, raw, out);
  rule_codec_bypass(src, code, raw, out);
  rule_raw_stdio(src, code, raw, out);
  rule_raw_thread(src, code, raw, out);
  return out;
}

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc";
}

int lint_tree(const std::vector<std::string>& roots) {
  std::vector<Violation> all;
  std::size_t files = 0;
  for (const auto& root : roots) {
    if (!fs::exists(root)) {
      std::cerr << "g5lint: no such path: " << root << "\n";
      return 2;
    }
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (!entry.is_regular_file() || !lintable(entry.path())) continue;
      std::ifstream in(entry.path(), std::ios::binary);
      std::ostringstream ss;
      ss << in.rdbuf();
      std::string rel = fs::path(entry.path()).generic_string();
      ++files;
      for (auto& v : lint_source({rel, ss.str()})) all.push_back(std::move(v));
    }
  }
  for (const auto& v : all) {
    std::cerr << v.file << ":" << v.line << ": [" << v.rule << "] "
              << v.message << "\n";
  }
  if (all.empty()) {
    std::cout << "g5lint: " << files << " files clean\n";
    return 0;
  }
  std::cerr << "g5lint: " << all.size() << " violation(s) in " << files
            << " files\n";
  return 1;
}

// --- self-test -------------------------------------------------------

struct Fixture {
  const char* name;
  const char* path;
  const char* content;
  const char* expect_rule;  // nullptr => must be clean
};

const Fixture kFixtures[] = {
    {"raw stack array is caught", "src/tree/bad_walk.cpp",
     "void walk() {\n  std::int32_t stack[512];\n  (void)stack;\n}\n",
     "raw-stack"},
    {"named-constant stack extent is caught", "src/tree/bad_walk2.cpp",
     "void walk() {\n  NodeId node_stack[kMaxDepth];\n}\n", "raw-stack"},
    {"std::array stack is caught", "src/core/bad_walk3.cpp",
     "void walk() {\n  std::array<std::uint32_t, 512> stack{};\n}\n",
     "raw-stack"},
    {"stack mention in comment is ignored", "src/tree/ok_comment.cpp",
     "// the old code used std::int32_t stack[512]; never again\n"
     "void walk();\n",
     nullptr},
    {"indexing an outside-provided stack is ignored", "src/tree/ok_index.cpp",
     "int top(int* stack, int sp) {\n  return stack[sp];\n}\n", nullptr},
    {"TraversalStack implementation is exempt",
     "src/tree/traversal_stack.hpp",
     "struct TraversalStack {\n  std::int32_t inline_stack[64];\n};\n",
     nullptr},
    {"allow() comment exempts a stack", "src/tree/ok_allow.cpp",
     "void walk() {\n"
     "  int stack[8];  // g5lint: allow(raw-stack) bounded by protocol\n"
     "}\n",
     nullptr},

    {"narrowing cast on particle data in grape is caught",
     "src/grape/bad_cast.cpp",
     "float f(double* pos) {\n  return static_cast<float>(pos[0]);\n}\n",
     "codec-bypass"},
    {"narrowing cast on mass is caught", "src/grape/bad_cast2.cpp",
     "int g(double mass) {\n  return static_cast<std::int32_t>(mass * s);\n}\n",
     "codec-bypass"},
    {"narrowing cast on counters is fine", "src/grape/ok_cast.cpp",
     "int boards(const Config& cfg) {\n"
     "  return static_cast<int>(cfg.boards * cfg.board.i_slots());\n}\n",
     nullptr},
    {"widening cast on particle data is fine", "src/grape/ok_cast2.cpp",
     "double h(std::int64_t dx_code) {\n"
     "  return static_cast<double>(dx_code) * q;\n}\n",
     nullptr},
    {"particle-data cast outside grape/ is out of scope",
     "src/ic/ok_cast.cpp",
     "float f(double mass) {\n  return static_cast<float>(mass);\n}\n",
     nullptr},
    {"allow() comment exempts a cast", "src/grape/ok_allow.cpp",
     "int f(double pot) {\n"
     "  return static_cast<int>(pot);  "
     "// g5lint: allow(codec-bypass) display only\n}\n",
     nullptr},

    {"std::cout in library code is caught", "src/core/bad_io.cpp",
     "void dump() {\n  std::cout << \"x\";\n}\n", "raw-stdio"},
    {"bare printf is caught", "src/core/bad_io2.cpp",
     "void dump() {\n  printf(\"%d\", 1);\n}\n", "raw-stdio"},
    {"fprintf to stderr is caught", "src/grape/bad_io3.cpp",
     "void dump() {\n  std::fprintf(stderr, \"x\");\n}\n", "raw-stdio"},
    {"fprintf to an explicit FILE* sink is fine", "src/core/ok_io.cpp",
     "void dump(std::FILE* f) {\n  std::fprintf(f, \"x\");\n}\n", nullptr},
    {"snprintf into a buffer is fine", "src/core/ok_io2.cpp",
     "void name(char* b, size_t n) {\n  std::snprintf(b, n, \"x\");\n}\n",
     nullptr},
    {"util/log.cpp is exempt", "src/util/log.cpp",
     "void emit() {\n  std::fprintf(stderr, \"x\");\n}\n", nullptr},
    {"printf inside a string literal is ignored", "src/core/ok_io3.cpp",
     "const char* kHelp = \"use printf(3) formatting\";\n", nullptr},

    {"raw std::thread outside util/ is caught", "src/core/bad_thread.cpp",
     "void f() {\n  std::thread t([] {});\n  t.join();\n}\n", "raw-thread"},
    {"std::jthread is caught too", "src/grape/bad_thread2.cpp",
     "struct S {\n  std::jthread worker;\n};\n", "raw-thread"},
    {"util/ may hold the raw thread", "src/util/thread.hpp",
     "class Thread {\n  std::thread t_;\n};\n", nullptr},
    {"std::thread::id is a type use, not a spawn", "src/obs/ok_tid.cpp",
     "std::map<std::thread::id, int> tids;\n", nullptr},
    {"thread mention in a comment is ignored", "src/core/ok_thread.cpp",
     "// never use std::thread here\nvoid f();\n", nullptr},
    {"allow() comment exempts a thread", "src/core/ok_thread2.cpp",
     "void f() {\n"
     "  std::thread t(fn);  // g5lint: allow(raw-thread) test harness\n"
     "  t.join();\n}\n",
     nullptr},
};

int self_test() {
  int failures = 0;
  for (const auto& fx : kFixtures) {
    const auto violations = lint_source({fx.path, fx.content});
    std::string got;
    for (const auto& v : violations) {
      got += (got.empty() ? "" : ",") + v.rule;
    }
    const bool ok = fx.expect_rule
                        ? (violations.size() == 1 &&
                           violations[0].rule == fx.expect_rule)
                        : violations.empty();
    if (!ok) {
      ++failures;
      std::cerr << "FAIL: " << fx.name << " — expected "
                << (fx.expect_rule ? fx.expect_rule : "clean") << ", got "
                << (got.empty() ? "clean" : got) << "\n";
    }
  }
  const auto total = sizeof(kFixtures) / sizeof(kFixtures[0]);
  if (failures == 0) {
    std::cout << "g5lint self-test: " << total << " fixtures ok\n";
    return 0;
  }
  std::cerr << "g5lint self-test: " << failures << "/" << total
            << " fixtures failed\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--self-test") return self_test();
    if (arg == "--help" || arg == "-h") {
      std::cout << "usage: g5lint <src-root>... | g5lint --self-test\n";
      return 0;
    }
    roots.push_back(arg);
  }
  if (roots.empty()) {
    std::cerr << "usage: g5lint <src-root>... | g5lint --self-test\n";
    return 2;
  }
  return lint_tree(roots);
}
