// g5lint — repo-specific invariant linter (v2).
//
// Generic tools (clang-tidy, -Wconversion, -Wthread-safety) cannot see
// the invariants this codebase actually relies on; g5lint closes that
// gap. v1 shipped four line-oriented rules over comment/string-stripped
// text; v2 adds a real token stream (preprocessor-, comment-, raw-string-
// and line-continuation-aware) and a compile_commands.json mode so the
// analyzer lints exactly the translation units the build compiles.
//
// Line rules (v1, scoped to src/):
//
//   raw-stack     No fixed-size traversal stack arrays outside
//                 tree::TraversalStack. PR 1 replaced the bare
//                 `std::int32_t stack[512]` walkers (which overflowed on
//                 deep trees) with the guarded TraversalStack; this rule
//                 keeps the pattern from creeping back.
//
//   codec-bypass  No narrowing static_cast on particle-data expressions
//                 in src/grape/. Host<->pipeline number-format
//                 conversions must go through FixedPointCodec / the LNS
//                 codecs: a silent narrowing cast corrupts the 0.3 %
//                 pairwise-error budget invisibly. (The math::LnsCode /
//                 math::Fixed20 domain types make most bypasses a
//                 compile error; this rule still catches double-domain
//                 expressions cast behind the codec's back.)
//
//   raw-stdio     No std::cout / std::cerr / bare printf in library
//                 code outside util/log and util/table. Bench/table
//                 output on stdout must stay machine-parsable and log
//                 records must stay serialized (log.cpp's emit mutex).
//
//   raw-thread    No std::thread / std::jthread objects outside
//                 src/util/. Every long-lived thread must sit behind
//                 util::Thread or util::ThreadPool so it is joined
//                 deterministically by a destructor and synchronizes
//                 through the annotated Mutex/CondVar primitives.
//
// Token rules (v2):
//
//   narrowing-in-tools
//                 tools/ and bench/ compile with the same extended
//                 warning set as the library, but a static_cast to a
//                 narrow type silences -Wconversion at exactly the spot
//                 it matters. A narrowing cast whose operand mentions
//                 particle data (pos/mass/acc/...) in tools/ or bench/
//                 is flagged: measurement code that narrows the physics
//                 skews the numbers it claims to report.
//
//   mutex-discipline
//                 No raw std:: synchronization primitives (mutex,
//                 lock_guard, unique_lock, condition_variable, ...)
//                 outside src/util/. util::Mutex carries the
//                 -Wthread-safety capability annotations; a bare
//                 std::mutex is invisible to that analysis, so lock-
//                 order and guarded-by bugs sail through CI.
//
//   hot-path-alloc
//                 Regions bracketed by `// g5lint: hot-begin(name)` and
//                 `// g5lint: hot-end` (the tree-walk and pipeline
//                 inner loops) must not allocate: new / make_unique /
//                 make_shared / malloc-family calls are flagged, and
//                 push_back / emplace_back are flagged unless the file
//                 reserves capacity first. An allocation inside the
//                 per-interaction loop shows up as a host-time cliff
//                 that the performance model cannot explain.
//
//   magic-format-constant
//                 Bare all-ones literals >= 0xFFFF (0xFFFFF, 1048575,
//                 ...) are wire-format field masks by construction in
//                 this codebase; they must be spelled as the named
//                 constant (math::kMortonCoordMax, a constexpr mask
//                 derived from the format's bit count) so a format
//                 change cannot leave a stale width behind. constexpr
//                 definitions and #define lines are the naming sites
//                 themselves and stay legal.
//
// A violation line can be exempted with a trailing comment:
//     ... // g5lint: allow(rule-name) reason
// Exemptions are themselves grep-able, so the audit trail stays visible.
//
// Usage:
//   g5lint <src-root>...              lint every .hpp/.cpp under the roots
//   g5lint --compile-commands <json>  lint every TU the build compiles
//   g5lint --self-test                run the built-in fixtures
//
// Exit status: 0 clean, 1 violations (or failed self-test), 2 usage.
//
// Implementation notes: comments and string/char literals are blanked
// (line structure preserved) before rules run, so prose mentioning
// `stack[512]` or a format string containing "printf" cannot trip a
// rule; the allow() and hot-begin/hot-end scans run on the raw lines
// because those markers live in comments on purpose. The stripper
// understands raw string literals (delimited included) and backslash
// line-continuation inside // comments; the lexer runs over the
// stripped text and tags each token with its line and whether it sits
// on a preprocessor line. The whole tree is ~100 files, speed is
// irrelevant.

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Violation {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

std::string to_lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// --- stripper --------------------------------------------------------

/// Blank out //, /* */ comments and string/char literals, preserving
/// newlines so line numbers survive. Handles escapes inside literals,
/// raw string literals R"delim(...)delim" (any encoding prefix), and
/// backslash line-continuation inside // comments (phase-2 splicing
/// makes the next physical line part of the comment).
std::string strip_comments_and_strings(const std::string& text) {
  std::string out = text;
  enum class State { Code, Line, Block, Str, Chr } st = State::Code;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char n = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (st) {
      case State::Code:
        if (c == '/' && n == '/') {
          st = State::Line;
          out[i] = ' ';
        } else if (c == '/' && n == '*') {
          st = State::Block;
          out[i] = ' ';
        } else if (c == '"') {
          // Raw string literal? The '"' must be directly preceded by R,
          // optionally with an encoding prefix (u8 / u / U / L), and the
          // prefix must not be the tail of a longer identifier.
          std::size_t prefix = i;  // first char of the R/encoding prefix
          if (i >= 1 && text[i - 1] == 'R') {
            std::size_t p = i - 1;
            if (p >= 2 && text[p - 2] == 'u' && text[p - 1] == '8') {
              p -= 2;
            } else if (p >= 1 && (text[p - 1] == 'u' || text[p - 1] == 'U' ||
                                  text[p - 1] == 'L')) {
              p -= 1;
            }
            if (p == 0 || !ident_char(text[p - 1])) prefix = p;
          }
          if (prefix != i) {
            // Parse the delimiter (up to 16 chars, no parens/space).
            std::size_t open = text.find('(', i + 1);
            if (open == std::string::npos || open - i - 1 > 16) {
              open = std::string::npos;
            }
            std::size_t term_end = std::string::npos;
            if (open != std::string::npos) {
              const std::string delim = text.substr(i + 1, open - i - 1);
              const std::string terminator = ")" + delim + "\"";
              const std::size_t term = text.find(terminator, open + 1);
              if (term != std::string::npos) {
                term_end = term + terminator.size() - 1;  // closing '"'
              }
            }
            if (term_end == std::string::npos) term_end = text.size() - 1;
            for (std::size_t j = i + 1; j < term_end; ++j) {
              if (text[j] != '\n') out[j] = ' ';
            }
            i = term_end;  // stay in Code after the closing quote
          } else {
            st = State::Str;
          }
        } else if (c == '\'') {
          st = State::Chr;
        }
        break;
      case State::Line:
        if (c == '\n') {
          // A backslash immediately before the newline splices the next
          // physical line into the comment.
          if (!(i >= 1 && text[i - 1] == '\\')) st = State::Code;
        } else {
          out[i] = ' ';
        }
        break;
      case State::Block:
        if (c == '*' && n == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          st = State::Code;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::Str:
        if (c == '\\') {
          out[i] = ' ';
          if (n != '\n' && n != '\0') out[++i] = ' ';
        } else if (c == '"') {
          st = State::Code;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::Chr:
        if (c == '\\') {
          out[i] = ' ';
          if (n != '\n' && n != '\0') out[++i] = ' ';
        } else if (c == '\'') {
          st = State::Code;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) lines.push_back(cur);
  return lines;
}

bool line_allows(const std::string& raw_line, const std::string& rule) {
  const auto pos = raw_line.find("g5lint: allow(");
  if (pos == std::string::npos) return false;
  const auto close = raw_line.find(')', pos);
  if (close == std::string::npos) return false;
  const auto open = pos + std::string("g5lint: allow(").size();
  return raw_line.substr(open, close - open) == rule;
}

// --- lexer -----------------------------------------------------------

enum class TokKind { Ident, Number, Punct };

struct Token {
  TokKind kind;
  std::string text;
  std::size_t line = 0;  // 1-based
  bool pp = false;       // token sits on a preprocessor (logical) line
};

/// Mark each stripped line that belongs to a preprocessor directive:
/// a line whose first non-blank char is '#', plus every line spliced to
/// it by a trailing backslash.
std::vector<bool> pp_lines(const std::vector<std::string>& code) {
  std::vector<bool> pp(code.size(), false);
  bool cont = false;
  for (std::size_t i = 0; i < code.size(); ++i) {
    bool is_pp = cont;
    if (!cont) {
      const auto j = code[i].find_first_not_of(" \t");
      is_pp = j != std::string::npos && code[i][j] == '#';
    }
    pp[i] = is_pp;
    cont = is_pp && !code[i].empty() && code[i].back() == '\\';
  }
  return pp;
}

/// Tokenize stripped text into identifiers, pp-numbers and punctuation.
/// "::" is combined into one token so qualified names concatenate
/// naturally; all other punctuation is single-char (rules only match
/// < > ( ) and qualified names, so maximal-munch elsewhere is moot).
std::vector<Token> lex(const std::string& code_text,
                       const std::vector<bool>& pp) {
  std::vector<Token> toks;
  std::size_t line = 0;  // 0-based while scanning
  const auto in_pp = [&] { return line < pp.size() && pp[line]; };
  for (std::size_t i = 0; i < code_text.size(); ++i) {
    const char c = code_text[i];
    if (c == '\n') {
      ++line;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) continue;
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      std::size_t j = i;
      while (j < code_text.size() && ident_char(code_text[j])) ++j;
      toks.push_back(
          {TokKind::Ident, code_text.substr(i, j - i), line + 1, in_pp()});
      i = j - 1;
    } else if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      // pp-number: digits, identifier chars, digit separators, '.', and
      // a sign directly after an exponent marker.
      std::size_t j = i + 1;
      while (j < code_text.size()) {
        const char d = code_text[j];
        const char prev = code_text[j - 1];
        if (ident_char(d) || d == '.' || d == '\'') {
          ++j;
        } else if ((d == '+' || d == '-') &&
                   (prev == 'e' || prev == 'E' || prev == 'p' ||
                    prev == 'P')) {
          ++j;
        } else {
          break;
        }
      }
      toks.push_back(
          {TokKind::Number, code_text.substr(i, j - i), line + 1, in_pp()});
      i = j - 1;
    } else if (c == ':' && i + 1 < code_text.size() &&
               code_text[i + 1] == ':') {
      toks.push_back({TokKind::Punct, "::", line + 1, in_pp()});
      ++i;
    } else {
      toks.push_back({TokKind::Punct, std::string(1, c), line + 1, in_pp()});
    }
  }
  return toks;
}

// --- hot regions -----------------------------------------------------

struct HotRegion {
  std::size_t begin = 0;  // 1-based, inclusive
  std::size_t end = 0;
  std::string name;
};

/// Regions bracketed by `g5lint: hot-begin(name)` / `g5lint: hot-end`
/// in the raw text (the markers are comments). An unclosed region runs
/// to end of file — the conservative direction.
std::vector<HotRegion> hot_regions(const std::vector<std::string>& raw) {
  std::vector<HotRegion> out;
  HotRegion cur;
  bool open = false;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (!open) {
      const auto pos = raw[i].find("g5lint: hot-begin(");
      if (pos == std::string::npos) continue;
      const auto name_at = pos + std::string("g5lint: hot-begin(").size();
      const auto close = raw[i].find(')', name_at);
      cur.name = close == std::string::npos
                     ? ""
                     : raw[i].substr(name_at, close - name_at);
      cur.begin = i + 1;
      open = true;
    } else if (raw[i].find("g5lint: hot-end") != std::string::npos) {
      cur.end = i + 1;
      out.push_back(cur);
      open = false;
    }
  }
  if (open) {
    cur.end = raw.size();
    out.push_back(cur);
  }
  return out;
}

/// One lintable file: `path` uses forward slashes relative to the lint
/// root (fixtures fake it), `raw` is the original text.
struct Source {
  std::string path;
  std::string raw;
};

bool path_contains(const std::string& path, const std::string& needle) {
  return path.find(needle) != std::string::npos;
}

// --- rule: raw-stack ------------------------------------------------

// A declaration-looking `type name[N]` (or std::array<...> name) whose
// name contains "stack" and whose extent is a literal or named constant.
// Indexing expressions (`stack[i]` after = or () don't match: the match
// must start at line begin or after ; { ( , and begin with a type-ish
// token followed by whitespace and the identifier.
const std::regex kRawStackDecl(
    R"((^|[;{,(])\s*(?:static\s+|constexpr\s+|const\s+)*(?:std::)?)"
    R"(([A-Za-z_][A-Za-z0-9_:]*)(?:\s*[*&])?\s+([A-Za-z_][A-Za-z0-9_]*)\s*)"
    R"(\[\s*([0-9]+[uUlL]*|[A-Za-z_][A-Za-z0-9_:]*)\s*\])");
// Statement keywords that the type-token position of kRawStackDecl can
// also match (`return stack[sp]` is indexing, not a declaration).
bool is_statement_keyword(const std::string& tok) {
  return tok == "return" || tok == "throw" || tok == "delete" ||
         tok == "case" || tok == "goto" || tok == "else" || tok == "new" ||
         tok == "co_return" || tok == "co_yield";
}
const std::regex kRawStackArray(
    R"(std::array\s*<[^;=]*>\s+([A-Za-z_][A-Za-z0-9_]*))");

void rule_raw_stack(const Source& src, const std::vector<std::string>& code,
                    const std::vector<std::string>& raw,
                    std::vector<Violation>& out) {
  if (path_contains(src.path, "tree/traversal_stack.hpp")) return;
  for (std::size_t i = 0; i < code.size(); ++i) {
    std::smatch m;
    std::string name;
    if (std::regex_search(code[i], m, kRawStackDecl) &&
        !is_statement_keyword(m[2].str())) {
      name = m[3].str();
    } else if (std::regex_search(code[i], m, kRawStackArray)) {
      name = m[1].str();
    }
    if (name.empty() || to_lower(name).find("stack") == std::string::npos) {
      continue;
    }
    if (line_allows(raw[i], "raw-stack")) continue;
    out.push_back({src.path, i + 1, "raw-stack",
                   "fixed-size stack '" + name +
                       "' — use tree::TraversalStack (guarded, spills)"});
  }
}

// --- rule: codec-bypass ---------------------------------------------

// Narrowing cast targets: float or sub-64-bit integer types.
const std::regex kNarrowCast(
    R"((?:static_cast|reinterpret_cast)\s*<\s*(?:const\s+)?)"
    R"((float|short|int|unsigned|unsigned\s+int|unsigned\s+short|)"
    R"(std::u?int(?:8|16|32)_t|u?int(?:8|16|32)_t)\s*>\s*\()");
// Identifiers that mark an expression as particle data in the pipeline
// sense (positions, masses, forces, potentials, softening).
const std::regex kParticleData(
    R"(\b(pos|mass|acc|pot|vel|force|eps|dx|dy|dz|x_exact|mass_exact)\w*\b|)"
    R"(\b\w*(_pos|_mass|_acc|_pot|_vel|_force)\b)");

void rule_codec_bypass(const Source& src, const std::vector<std::string>& code,
                       const std::vector<std::string>& raw,
                       std::vector<Violation>& out) {
  if (!path_contains(src.path, "grape/")) return;
  for (std::size_t i = 0; i < code.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(code[i], m, kNarrowCast)) continue;
    // Examine the cast operand (rest of line past the cast's open paren).
    const std::string operand = m.suffix().str();
    if (!std::regex_search(operand, kParticleData)) continue;
    if (line_allows(raw[i], "codec-bypass")) continue;
    out.push_back({src.path, i + 1, "codec-bypass",
                   "narrowing cast on particle data — convert via "
                   "math::FixedPointCodec / LnsFormat instead"});
  }
}

// --- rule: raw-stdio ------------------------------------------------

const std::regex kRawStdio(
    R"(\bstd::cout\b|\bstd::cerr\b|\bstd::clog\b|)"
    R"((?:std::)?\bprintf\s*\(|(?:std::)?\bputs\s*\(|\bputchar\s*\(|)"
    R"(fprintf\s*\(\s*(?:std)?(?:out|err)\b|)"
    R"(fputs\s*\([^,]*,\s*(?:std)?(?:out|err)\s*\))");

void rule_raw_stdio(const Source& src, const std::vector<std::string>& code,
                    const std::vector<std::string>& raw,
                    std::vector<Violation>& out) {
  if (path_contains(src.path, "util/log.") ||
      path_contains(src.path, "util/table.")) {
    return;
  }
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (!std::regex_search(code[i], kRawStdio)) continue;
    if (line_allows(raw[i], "raw-stdio")) continue;
    out.push_back({src.path, i + 1, "raw-stdio",
                   "direct stdout/stderr write in library code — route "
                   "through util::log / util::table or take a sink"});
  }
}

// --- rule: raw-thread -----------------------------------------------

// A std::thread / std::jthread mention that is not a scope access
// (std::thread::id, std::thread::hardware_concurrency): those construct
// or hold thread objects. The lookahead keeps type/static-member uses
// legal anywhere.
const std::regex kRawThread(R"(\bstd::j?thread\b(?!\s*::))");

void rule_raw_thread(const Source& src, const std::vector<std::string>& code,
                     const std::vector<std::string>& raw,
                     std::vector<Violation>& out) {
  if (path_contains(src.path, "util/")) return;
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (!std::regex_search(code[i], kRawThread)) continue;
    if (line_allows(raw[i], "raw-thread")) continue;
    out.push_back({src.path, i + 1, "raw-thread",
                   "raw std::thread outside util/ — use util::Thread or "
                   "util::ThreadPool (destructor-joined, annotated sync)"});
  }
}

// --- rule: narrowing-in-tools ---------------------------------------

/// Cast targets that lose range or precision relative to double/int64.
bool narrow_type(const std::string& normalized) {
  static const std::set<std::string> kNarrow = {
      "float",         "short",         "int",
      "unsigned",      "unsignedint",   "unsignedshort",
      "std::int8_t",   "std::int16_t",  "std::int32_t",
      "std::uint8_t",  "std::uint16_t", "std::uint32_t",
      "int8_t",        "int16_t",       "int32_t",
      "uint8_t",       "uint16_t",      "uint32_t"};
  return kNarrow.count(normalized) != 0;
}

void rule_narrowing_in_tools(const Source& src,
                             const std::vector<Token>& toks,
                             const std::vector<std::string>& raw,
                             std::vector<Violation>& out) {
  if (!path_contains(src.path, "tools/") &&
      !path_contains(src.path, "bench/")) {
    return;
  }
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::Ident ||
        (toks[i].text != "static_cast" && toks[i].text != "reinterpret_cast") ||
        toks[i + 1].text != "<") {
      continue;
    }
    // Collect the target type tokens to the matching '>'.
    std::string type;
    int depth = 1;
    std::size_t j = i + 2;
    for (; j < toks.size() && depth > 0; ++j) {
      if (toks[j].text == "<") ++depth;
      else if (toks[j].text == ">") --depth;
      if (depth > 0 && toks[j].text != "const") type += toks[j].text;
    }
    if (depth != 0 || !narrow_type(type)) continue;
    // j now sits one past the '>'; the operand runs to the matching ')'.
    if (j >= toks.size() || toks[j].text != "(") continue;
    bool particle = false;
    int pdepth = 1;
    for (std::size_t k = j + 1; k < toks.size() && pdepth > 0; ++k) {
      if (toks[k].text == "(") ++pdepth;
      else if (toks[k].text == ")") --pdepth;
      else if (toks[k].kind == TokKind::Ident &&
               std::regex_search(toks[k].text, kParticleData)) {
        particle = true;
      }
    }
    if (!particle) continue;
    const std::size_t line = toks[i].line;
    if (line <= raw.size() && line_allows(raw[line - 1], "narrowing-in-tools"))
      continue;
    out.push_back(
        {src.path, line, "narrowing-in-tools",
         "narrowing cast on particle data in measurement code — keep the "
         "physics in double (or cast through the codec it measures)"});
  }
}

// --- rule: mutex-discipline -----------------------------------------

void rule_mutex_discipline(const Source& src, const std::vector<Token>& toks,
                           const std::vector<std::string>& raw,
                           std::vector<Violation>& out) {
  if (path_contains(src.path, "util/") || path_contains(src.path, "tests/")) {
    return;
  }
  static const std::set<std::string> kSyncNames = {
      "mutex",          "timed_mutex",
      "recursive_mutex", "recursive_timed_mutex",
      "shared_mutex",   "shared_timed_mutex",
      "lock_guard",     "unique_lock",
      "scoped_lock",    "shared_lock",
      "condition_variable", "condition_variable_any"};
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::Ident || toks[i].text != "std" ||
        toks[i + 1].text != "::" || toks[i + 2].kind != TokKind::Ident ||
        kSyncNames.count(toks[i + 2].text) == 0) {
      continue;
    }
    const std::size_t line = toks[i].line;
    if (line <= raw.size() && line_allows(raw[line - 1], "mutex-discipline"))
      continue;
    out.push_back({src.path, line, "mutex-discipline",
                   "raw std::" + toks[i + 2].text +
                       " outside util/ — use util::Mutex / util::MutexLock / "
                       "util::CondVar (thread-safety annotated)"});
  }
}

// --- rule: hot-path-alloc -------------------------------------------

void rule_hot_path_alloc(const Source& src, const std::vector<Token>& toks,
                         const std::vector<std::string>& raw,
                         std::vector<Violation>& out) {
  const auto regions = hot_regions(raw);
  if (regions.empty()) return;
  static const std::set<std::string> kAllocNames = {
      "new",        "malloc",      "calloc",     "realloc",
      "make_unique", "make_shared", "aligned_alloc"};
  static const std::set<std::string> kGrowthNames = {"push_back",
                                                     "emplace_back"};
  const auto region_of = [&](std::size_t line) -> const HotRegion* {
    for (const auto& r : regions) {
      if (line >= r.begin && line <= r.end) return &r;
    }
    return nullptr;
  };
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::Ident) continue;
    const HotRegion* r = region_of(toks[i].line);
    if (r == nullptr) continue;
    const bool alloc = kAllocNames.count(toks[i].text) != 0;
    bool growth = kGrowthNames.count(toks[i].text) != 0;
    if (growth) {
      // A container grown after an explicit reserve amortizes to
      // no-allocation; accept a reserve anywhere earlier in the file
      // (the setup code outside the marked region).
      for (std::size_t k = 0; k < i; ++k) {
        if (toks[k].kind == TokKind::Ident && toks[k].text == "reserve") {
          growth = false;
          break;
        }
      }
    }
    if (!alloc && !growth) continue;
    const std::size_t line = toks[i].line;
    if (line <= raw.size() && line_allows(raw[line - 1], "hot-path-alloc"))
      continue;
    out.push_back({src.path, line, "hot-path-alloc",
                   "'" + toks[i].text + "' inside hot region '" + r->name +
                       "' — hoist the allocation out of the inner loop" +
                       (growth ? " (or reserve first)" : "")});
  }
}

// --- rule: magic-format-constant ------------------------------------

/// Parse an integer literal token (hex / binary / octal / decimal, with
/// digit separators and suffixes). Returns false for floating literals
/// or malformed tokens.
bool parse_int_literal(const std::string& tok, unsigned long long& value) {
  std::string s;
  for (char c : tok) {
    if (c != '\'') s.push_back(c);
  }
  while (!s.empty() &&
         (s.back() == 'u' || s.back() == 'U' || s.back() == 'l' ||
          s.back() == 'L' || s.back() == 'z' || s.back() == 'Z')) {
    s.pop_back();
  }
  if (s.empty() || s.find('.') != std::string::npos) return false;
  unsigned base = 10;
  std::size_t pos = 0;
  if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    base = 16;
    pos = 2;
  } else if (s.size() > 2 && s[0] == '0' && (s[1] == 'b' || s[1] == 'B')) {
    base = 2;
    pos = 2;
  } else if (s.size() > 1 && s[0] == '0') {
    base = 8;
    pos = 1;
  }
  if (base == 16) {
    if (s.find('p') != std::string::npos || s.find('P') != std::string::npos)
      return false;  // hex float
  } else {
    if (s.find('e') != std::string::npos || s.find('E') != std::string::npos)
      return false;  // decimal float exponent
  }
  value = 0;
  for (std::size_t i = pos; i < s.size(); ++i) {
    const char c = s[i];
    unsigned d = 0;
    if (c >= '0' && c <= '9') d = static_cast<unsigned>(c - '0');
    else if (c >= 'a' && c <= 'f') d = static_cast<unsigned>(c - 'a') + 10;
    else if (c >= 'A' && c <= 'F') d = static_cast<unsigned>(c - 'A') + 10;
    else return false;
    if (d >= base) return false;
    value = value * base + d;
  }
  return true;
}

void rule_magic_format_constant(const Source& src,
                                const std::vector<Token>& toks,
                                const std::vector<std::string>& code,
                                const std::vector<std::string>& raw,
                                std::vector<Violation>& out) {
  if (!path_contains(src.path, "src/") && !path_contains(src.path, "tools/") &&
      !path_contains(src.path, "bench/")) {
    return;
  }
  if (path_contains(src.path, "tests/")) return;
  for (const auto& tok : toks) {
    if (tok.kind != TokKind::Number) continue;
    if (tok.pp) continue;  // #define MASK ... is a naming site
    const std::size_t line = tok.line;
    // A constexpr definition is the named constant itself.
    if (line <= code.size() &&
        code[line - 1].find("constexpr") != std::string::npos) {
      continue;
    }
    unsigned long long v = 0;
    if (!parse_int_literal(tok.text, v)) continue;
    // All-ones masks at least 16 bits wide: 0xFFFF, 0xFFFFF, ... —
    // wire-format field masks by construction in this codebase.
    constexpr unsigned long long kMinMask = 0xFFFF;
    if (v < kMinMask || (v & (v + 1)) != 0) continue;
    if (line <= raw.size() &&
        line_allows(raw[line - 1], "magic-format-constant")) {
      continue;
    }
    out.push_back({src.path, line, "magic-format-constant",
                   "bare field mask " + tok.text +
                       " — name it as a constexpr constant derived from the "
                       "format's bit count (e.g. math::kMortonCoordMax)"});
  }
}

// --- driver ---------------------------------------------------------

std::vector<Violation> lint_source(const Source& src) {
  const std::vector<std::string> raw = split_lines(src.raw);
  const std::string stripped = strip_comments_and_strings(src.raw);
  const std::vector<std::string> code = split_lines(stripped);
  const std::vector<bool> pp = pp_lines(code);
  const std::vector<Token> toks = lex(stripped, pp);
  std::vector<Violation> out;
  // Line rules guard library code: scoped to src/ so tool/bench mains
  // may keep their by-design stdout reporting.
  if (path_contains(src.path, "src/")) {
    rule_raw_stack(src, code, raw, out);
    rule_codec_bypass(src, code, raw, out);
    rule_raw_stdio(src, code, raw, out);
    rule_raw_thread(src, code, raw, out);
  }
  rule_narrowing_in_tools(src, toks, raw, out);
  rule_mutex_discipline(src, toks, raw, out);
  rule_hot_path_alloc(src, toks, raw, out);
  rule_magic_format_constant(src, toks, code, raw, out);
  return out;
}

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc";
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

int report(std::vector<Violation>& all, std::size_t files) {
  for (const auto& v : all) {
    std::cerr << v.file << ":" << v.line << ": [" << v.rule << "] "
              << v.message << "\n";
  }
  if (all.empty()) {
    std::cout << "g5lint: " << files << " files clean\n";
    return 0;
  }
  std::cerr << "g5lint: " << all.size() << " violation(s) in " << files
            << " files\n";
  return 1;
}

int lint_tree(const std::vector<std::string>& roots) {
  std::vector<Violation> all;
  std::size_t files = 0;
  for (const auto& root : roots) {
    if (!fs::exists(root)) {
      std::cerr << "g5lint: no such path: " << root << "\n";
      return 2;
    }
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (!entry.is_regular_file() || !lintable(entry.path())) continue;
      std::string rel = fs::path(entry.path()).generic_string();
      ++files;
      for (auto& v : lint_source({rel, read_file(entry.path())}))
        all.push_back(std::move(v));
    }
  }
  return report(all, files);
}

// --- compile_commands mode ------------------------------------------

/// Minimal JSON string reader: `p` at the opening quote on entry, one
/// past the closing quote on exit. Handles the escapes CMake emits.
std::string json_string(const std::string& text, std::size_t& p) {
  std::string out;
  ++p;
  while (p < text.size() && text[p] != '"') {
    if (text[p] == '\\' && p + 1 < text.size()) {
      const char e = text[p + 1];
      switch (e) {
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case '\\': out += '\\'; break;
        case '"': out += '"'; break;
        case '/': out += '/'; break;
        default: out += e; break;
      }
      p += 2;
    } else {
      out += text[p++];
    }
  }
  if (p < text.size()) ++p;  // closing quote
  return out;
}

/// Extract the source files from a compile_commands.json: for each
/// top-level object, read the "directory" and "file" string members
/// (string-aware, so paths inside "command" cannot confuse the scan)
/// and resolve relative files against the directory.
std::vector<std::string> parse_compile_commands(const std::string& text) {
  std::vector<std::string> files;
  std::size_t i = 0;
  while (i < text.size()) {
    if (text[i] != '{') {
      ++i;
      continue;
    }
    ++i;
    int depth = 1;
    std::string dir, file;
    while (i < text.size() && depth > 0) {
      const char c = text[i];
      if (c == '"') {
        const std::string key = json_string(text, i);
        std::size_t j = i;
        while (j < text.size() &&
               std::isspace(static_cast<unsigned char>(text[j])) != 0) {
          ++j;
        }
        if (j < text.size() && text[j] == ':') {
          ++j;
          while (j < text.size() &&
                 std::isspace(static_cast<unsigned char>(text[j])) != 0) {
            ++j;
          }
          if (j < text.size() && text[j] == '"') {
            const std::string val = json_string(text, j);
            i = j;
            if (depth == 1) {
              if (key == "directory") dir = val;
              else if (key == "file") file = val;
            }
            continue;
          }
        }
      } else if (c == '{') {
        ++depth;
        ++i;
      } else if (c == '}') {
        --depth;
        ++i;
      } else {
        ++i;
      }
    }
    if (!file.empty()) {
      fs::path p(file);
      if (p.is_relative() && !dir.empty()) p = fs::path(dir) / p;
      files.push_back(p.lexically_normal().generic_string());
    }
  }
  return files;
}

int lint_compile_commands(const std::string& db_path) {
  if (!fs::exists(db_path)) {
    std::cerr << "g5lint: no such compile database: " << db_path << "\n";
    return 2;
  }
  const std::string text = read_file(db_path);
  std::set<std::string> seen;
  std::vector<Violation> all;
  std::size_t files = 0;
  for (const auto& f : parse_compile_commands(text)) {
    const std::string ext = fs::path(f).extension().string();
    if (ext != ".cpp" && ext != ".cc" && ext != ".cxx") continue;
    // Generated/vendored TUs and the deliberate compile-fail fixtures
    // are not ours to lint.
    if (path_contains(f, "/build/") || path_contains(f, "_deps") ||
        path_contains(f, "CMakeFiles") || path_contains(f, "compile_fail")) {
      continue;
    }
    if (!seen.insert(f).second) continue;
    if (!fs::exists(f)) continue;
    ++files;
    for (auto& v : lint_source({f, read_file(f)}))
      all.push_back(std::move(v));
  }
  if (files == 0) {
    std::cerr << "g5lint: compile database lists no lintable sources\n";
    return 2;
  }
  return report(all, files);
}

// --- self-test -------------------------------------------------------

struct Fixture {
  const char* name;
  const char* path;
  const char* content;
  const char* expect_rule;  // nullptr => must be clean
};

const Fixture kFixtures[] = {
    {"raw stack array is caught", "src/tree/bad_walk.cpp",
     "void walk() {\n  std::int32_t stack[512];\n  (void)stack;\n}\n",
     "raw-stack"},
    {"named-constant stack extent is caught", "src/tree/bad_walk2.cpp",
     "void walk() {\n  NodeId node_stack[kMaxDepth];\n}\n", "raw-stack"},
    {"std::array stack is caught", "src/core/bad_walk3.cpp",
     "void walk() {\n  std::array<std::uint32_t, 512> stack{};\n}\n",
     "raw-stack"},
    {"stack mention in comment is ignored", "src/tree/ok_comment.cpp",
     "// the old code used std::int32_t stack[512]; never again\n"
     "void walk();\n",
     nullptr},
    {"indexing an outside-provided stack is ignored", "src/tree/ok_index.cpp",
     "int top(int* stack, int sp) {\n  return stack[sp];\n}\n", nullptr},
    {"TraversalStack implementation is exempt",
     "src/tree/traversal_stack.hpp",
     "struct TraversalStack {\n  std::int32_t inline_stack[64];\n};\n",
     nullptr},
    {"allow() comment exempts a stack", "src/tree/ok_allow.cpp",
     "void walk() {\n"
     "  int stack[8];  // g5lint: allow(raw-stack) bounded by protocol\n"
     "}\n",
     nullptr},

    {"narrowing cast on particle data in grape is caught",
     "src/grape/bad_cast.cpp",
     "float f(double* pos) {\n  return static_cast<float>(pos[0]);\n}\n",
     "codec-bypass"},
    {"narrowing cast on mass is caught", "src/grape/bad_cast2.cpp",
     "int g(double mass) {\n  return static_cast<std::int32_t>(mass * s);\n}\n",
     "codec-bypass"},
    {"narrowing cast on counters is fine", "src/grape/ok_cast.cpp",
     "int boards(const Config& cfg) {\n"
     "  return static_cast<int>(cfg.boards * cfg.board.i_slots());\n}\n",
     nullptr},
    {"widening cast on particle data is fine", "src/grape/ok_cast2.cpp",
     "double h(std::int64_t dx_code) {\n"
     "  return static_cast<double>(dx_code) * q;\n}\n",
     nullptr},
    {"particle-data cast outside grape/ is out of scope",
     "src/ic/ok_cast.cpp",
     "float f(double mass) {\n  return static_cast<float>(mass);\n}\n",
     nullptr},
    {"allow() comment exempts a cast", "src/grape/ok_allow.cpp",
     "int f(double pot) {\n"
     "  return static_cast<int>(pot);  "
     "// g5lint: allow(codec-bypass) display only\n}\n",
     nullptr},

    {"std::cout in library code is caught", "src/core/bad_io.cpp",
     "void dump() {\n  std::cout << \"x\";\n}\n", "raw-stdio"},
    {"bare printf is caught", "src/core/bad_io2.cpp",
     "void dump() {\n  printf(\"%d\", 1);\n}\n", "raw-stdio"},
    {"fprintf to stderr is caught", "src/grape/bad_io3.cpp",
     "void dump() {\n  std::fprintf(stderr, \"x\");\n}\n", "raw-stdio"},
    {"fprintf to an explicit FILE* sink is fine", "src/core/ok_io.cpp",
     "void dump(std::FILE* f) {\n  std::fprintf(f, \"x\");\n}\n", nullptr},
    {"snprintf into a buffer is fine", "src/core/ok_io2.cpp",
     "void name(char* b, size_t n) {\n  std::snprintf(b, n, \"x\");\n}\n",
     nullptr},
    {"util/log.cpp is exempt", "src/util/log.cpp",
     "void emit() {\n  std::fprintf(stderr, \"x\");\n}\n", nullptr},
    {"printf inside a string literal is ignored", "src/core/ok_io3.cpp",
     "const char* kHelp = \"use printf(3) formatting\";\n", nullptr},

    {"raw std::thread outside util/ is caught", "src/core/bad_thread.cpp",
     "void f() {\n  std::thread t([] {});\n  t.join();\n}\n", "raw-thread"},
    {"std::jthread is caught too", "src/grape/bad_thread2.cpp",
     "struct S {\n  std::jthread worker;\n};\n", "raw-thread"},
    {"util/ may hold the raw thread", "src/util/thread.hpp",
     "class Thread {\n  std::thread t_;\n};\n", nullptr},
    {"std::thread::id is a type use, not a spawn", "src/obs/ok_tid.cpp",
     "std::map<std::thread::id, int> tids;\n", nullptr},
    {"thread mention in a comment is ignored", "src/core/ok_thread.cpp",
     "// never use std::thread here\nvoid f();\n", nullptr},
    {"allow() comment exempts a thread", "src/core/ok_thread2.cpp",
     "void f() {\n"
     "  std::thread t(fn);  // g5lint: allow(raw-thread) test harness\n"
     "  t.join();\n}\n",
     nullptr},

    // ---- stripper v2: raw strings and comment line-continuation ----
    {"stdio name inside a raw string with an embedded quote is ignored",
     "src/core/ok_raw1.cpp",
     "const char* s = R\"(a \" quote then std::cout << 1;)\";\n", nullptr},
    {"printf inside a delimited raw string is ignored",
     "src/core/ok_raw2.cpp",
     "const char* s = R\"x(printf(\")x\";\n", nullptr},
    {"code after a raw string is still linted", "src/core/bad_raw3.cpp",
     "void f() {\n"
     "  const char* s = R\"(text)\";\n"
     "  std::cout << s;\n"
     "}\n",
     "raw-stdio"},
    {"line-continued // comment swallows the next line",
     "src/core/ok_cont1.cpp",
     "void f() {\n"
     "  // the next line is spliced into this comment \\\n"
     "  std::cout << 1;\n"
     "}\n",
     nullptr},
    {"code after a continued #define is still linted",
     "src/core/bad_cont2.cpp",
     "#define LOG(x) \\\n"
     "  do_log(x)\n"
     "void f() { std::cout << 1; }\n",
     "raw-stdio"},

    // ---- narrowing-in-tools ----
    {"narrowing cast on mass in tools is caught", "tools/bad_cast.cpp",
     "float f(double mass) {\n  return static_cast<float>(mass);\n}\n",
     "narrowing-in-tools"},
    {"narrowing cast on pos in bench is caught", "bench/bad_cast.cpp",
     "int g(const double* pos) {\n  return static_cast<int>(pos[0]);\n}\n",
     "narrowing-in-tools"},
    {"narrowing a counter in tools is fine", "tools/ok_cast1.cpp",
     "int f(std::size_t n_items) {\n  return static_cast<int>(n_items);\n}\n",
     nullptr},
    {"widening cast on particle data in tools is fine", "tools/ok_cast2.cpp",
     "double f(float mass) {\n  return static_cast<double>(mass);\n}\n",
     nullptr},
    {"allow() comment exempts a tools narrowing", "tools/ok_cast3.cpp",
     "float f(double pos) {\n"
     "  return static_cast<float>(pos);  "
     "// g5lint: allow(narrowing-in-tools) plot coordinates only\n}\n",
     nullptr},

    // ---- mutex-discipline ----
    {"std::mutex member outside util/ is caught", "src/core/bad_mutex1.cpp",
     "class Q {\n  std::mutex m_;\n};\n", "mutex-discipline"},
    {"std::lock_guard (CTAD) outside util/ is caught",
     "src/grape/bad_mutex2.cpp",
     "void f() {\n  std::lock_guard g(m_);\n}\n", "mutex-discipline"},
    {"util/ may hold the raw mutex", "src/util/mutex2.hpp",
     "class Mutex {\n  std::mutex m_;\n};\n", nullptr},
    {"util::Mutex wrapper use is fine", "src/core/ok_mutex1.cpp",
     "class Q {\n  util::Mutex m_;\n  void f() { util::MutexLock g(m_); }\n"
     "};\n",
     nullptr},
    {"tests may use std sync directly", "tests/ok_mutex_test.cpp",
     "void f() {\n  std::mutex m;\n  std::scoped_lock lock(m);\n}\n",
     nullptr},
    {"allow() comment exempts a mutex", "src/core/ok_mutex2.cpp",
     "class Q {\n"
     "  std::mutex m_;  // g5lint: allow(mutex-discipline) ABI boundary\n"
     "};\n",
     nullptr},
    {"std::condition_variable outside util/ is caught",
     "src/grape/bad_cv.cpp",
     "class Q {\n  std::condition_variable cv_;\n};\n", "mutex-discipline"},

    // ---- hot-path-alloc ----
    {"operator new inside a hot region is caught", "src/tree/bad_hot1.cpp",
     "void f() {\n"
     "  // g5lint: hot-begin(walk)\n"
     "  int* p = new int[4];\n"
     "  // g5lint: hot-end\n"
     "  delete[] p;\n"
     "}\n",
     "hot-path-alloc"},
    {"make_unique inside a hot region is caught", "src/grape/bad_hot2.cpp",
     "void f() {\n"
     "  // g5lint: hot-begin(pipeline)\n"
     "  auto q = std::make_unique<int>(3);\n"
     "  // g5lint: hot-end\n"
     "}\n",
     "hot-path-alloc"},
    {"push_back without reserve inside a hot region is caught",
     "src/tree/bad_hot3.cpp",
     "void f(std::vector<int>& v) {\n"
     "  // g5lint: hot-begin(walk)\n"
     "  v.push_back(1);\n"
     "  // g5lint: hot-end\n"
     "}\n",
     "hot-path-alloc"},
    {"push_back after a reserve is fine", "src/tree/ok_hot1.cpp",
     "void f(std::vector<int>& v, std::size_t n) {\n"
     "  v.reserve(n);\n"
     "  // g5lint: hot-begin(walk)\n"
     "  v.push_back(1);\n"
     "  // g5lint: hot-end\n"
     "}\n",
     nullptr},
    {"allocation outside the region is fine", "src/tree/ok_hot2.cpp",
     "void f() {\n"
     "  auto q = std::make_unique<int>(3);\n"
     "  // g5lint: hot-begin(walk)\n"
     "  *q += 1;\n"
     "  // g5lint: hot-end\n"
     "}\n",
     nullptr},
    {"allow() comment exempts a hot allocation", "src/tree/ok_hot3.cpp",
     "void f() {\n"
     "  // g5lint: hot-begin(walk)\n"
     "  int* p = new int;  // g5lint: allow(hot-path-alloc) cold error path\n"
     "  // g5lint: hot-end\n"
     "  delete p;\n"
     "}\n",
     nullptr},

    // ---- magic-format-constant ----
    {"bare hex all-ones mask is caught", "src/core/bad_magic1.cpp",
     "std::uint32_t f(std::uint32_t x) {\n  return x & 0xFFFFF;\n}\n",
     "magic-format-constant"},
    {"bare decimal all-ones mask is caught", "src/core/bad_magic2.cpp",
     "bool f(long x) {\n  return x > 1048575;\n}\n",
     "magic-format-constant"},
    {"constexpr definition is the naming site", "src/math/ok_magic1.hpp",
     "inline constexpr std::uint32_t kCoordMask = 0xFFFFF;\n", nullptr},
    {"small literals are fine", "src/core/ok_magic2.cpp",
     "int f(int x) {\n  return (x & 0xFF) + 1024;\n}\n", nullptr},
    {"non-all-ones morton mask is fine", "src/math/ok_magic3.cpp",
     "std::uint64_t f(std::uint64_t v) {\n"
     "  return v & 0x1f00000000ffffULL;\n}\n",
     nullptr},
    {"allow() comment exempts a mask", "src/core/ok_magic4.cpp",
     "std::uint32_t f(std::uint32_t x) {\n"
     "  return x & 0xffff;  "
     "// g5lint: allow(magic-format-constant) checksum, not a format\n}\n",
     nullptr},
    {"#define mask is the naming site", "src/core/ok_magic5.hpp",
     "#define G5_COORD_MASK 0xFFFFF\n", nullptr},
};

int self_test() {
  int failures = 0;
  for (const auto& fx : kFixtures) {
    const auto violations = lint_source({fx.path, fx.content});
    std::string got;
    for (const auto& v : violations) {
      got += (got.empty() ? "" : ",") + v.rule;
    }
    const bool ok = fx.expect_rule
                        ? (violations.size() == 1 &&
                           violations[0].rule == fx.expect_rule)
                        : violations.empty();
    if (!ok) {
      ++failures;
      std::cerr << "FAIL: " << fx.name << " — expected "
                << (fx.expect_rule ? fx.expect_rule : "clean") << ", got "
                << (got.empty() ? "clean" : got) << "\n";
    }
  }
  const auto total = sizeof(kFixtures) / sizeof(kFixtures[0]);
  if (failures == 0) {
    std::cout << "g5lint self-test: " << total << " fixtures ok\n";
    return 0;
  }
  std::cerr << "g5lint self-test: " << failures << "/" << total
            << " fixtures failed\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  std::string db;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--self-test") return self_test();
    if (arg == "--compile-commands") {
      if (i + 1 >= argc) {
        std::cerr << "g5lint: --compile-commands needs a path\n";
        return 2;
      }
      db = argv[++i];
      continue;
    }
    if (arg == "--help" || arg == "-h") {
      std::cout << "usage: g5lint <src-root>... | "
                   "g5lint --compile-commands <json> | g5lint --self-test\n";
      return 0;
    }
    roots.push_back(arg);
  }
  if (!db.empty()) {
    if (!roots.empty()) {
      std::cerr << "g5lint: --compile-commands excludes explicit roots\n";
      return 2;
    }
    return lint_compile_commands(db);
  }
  if (roots.empty()) {
    std::cerr << "usage: g5lint <src-root>... | "
                 "g5lint --compile-commands <json> | g5lint --self-test\n";
    return 2;
  }
  return lint_tree(roots);
}
