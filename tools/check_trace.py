#!/usr/bin/env python3
"""Validate g5 observability artifacts against their checked-in schemas.

Usage:
  check_trace.py trace      FILE [--schema tools/schema/trace.schema.json]
  check_trace.py metrics    FILE [--schema tools/schema/metrics.schema.json]
  check_trace.py timing     FILE [--schema tools/schema/timing.schema.json]
  check_trace.py report     FILE [--schema tools/schema/report.schema.json]
  check_trace.py status     FILE [--schema tools/schema/status.schema.json]
  check_trace.py postmortem FILE [--schema tools/schema/postmortem.schema.json]

`trace` validates a Chrome trace written by g5run --trace (or
obs::write_trace); `metrics` validates a JSON-lines file written by
g5run --metrics (one obs::StepMetrics object per line); `timing`
validates the g5run --timing-json phase/metric breakdown; `report`
validates the g5run --report paper-claims artifact; `status` validates
the live telemetry document written by g5run --status-file (the
last_step object is additionally validated against the full StepMetrics
schema); `postmortem` validates a crash dump written by g5run
--postmortem (obs::crash).

The validator implements the small JSON-Schema subset the schemas use
(type — including nullable type lists, required, properties,
additionalProperties, items, enum, minimum) in pure stdlib Python, so
CI needs no extra packages, plus semantic checks the subset cannot
express (histogram entry shape and ordering). Exits non-zero with one
line per violation.
"""

import argparse
import json
import os
import sys

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "null": type(None),
}

# The summary statistics every serialized histogram must carry
# (obs::Histogram::Snapshot as written by write_trace / g5run).
_HIST_KEYS = ("count", "mean", "min", "max", "p50", "p90", "p99")


def _type_ok(value, expected):
    """expected is a type name or a list of alternatives (nullable)."""
    if isinstance(expected, list):
        return any(_type_ok(value, t) for t in expected)
    if expected == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if expected == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    return isinstance(value, _TYPES[expected])


def validate(value, schema, path, errors):
    """Append 'path: problem' strings to errors; subset of JSON Schema."""
    expected = schema.get("type")
    if expected is not None and not _type_ok(value, expected):
        errors.append(f"{path}: expected {expected}, "
                      f"got {type(value).__name__}")
        return
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in {schema['enum']}")
    if "minimum" in schema and isinstance(value, (int, float)) \
            and not isinstance(value, bool) and value < schema["minimum"]:
        errors.append(f"{path}: {value} < minimum {schema['minimum']}")
    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required key '{key}'")
        props = schema.get("properties", {})
        extra_ok = schema.get("additionalProperties", True)
        for key, sub in value.items():
            if key in props:
                validate(sub, props[key], f"{path}.{key}", errors)
            elif extra_ok is False:
                errors.append(f"{path}: unexpected key '{key}'")
            elif isinstance(extra_ok, dict):
                validate(sub, extra_ok, f"{path}.{key}", errors)
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            validate(item, schema["items"], f"{path}[{i}]", errors)


def check_histogram_summary(value, path, errors):
    """A serialized histogram: all summary keys, sane ordering."""
    for key in _HIST_KEYS:
        if key not in value:
            errors.append(f"{path}: histogram missing '{key}'")
            return
        if not _type_ok(value[key], "number"):
            errors.append(f"{path}.{key}: expected number, "
                          f"got {type(value[key]).__name__}")
            return
    if not _type_ok(value["count"], "integer") or value["count"] < 0:
        errors.append(f"{path}.count: expected non-negative integer")
    if value["count"] > 0:
        if value["min"] > value["max"]:
            errors.append(f"{path}: min {value['min']} > max {value['max']}")
        if not (value["min"] <= value["p50"] <= value["p99"]
                <= value["max"]):
            errors.append(f"{path}: percentiles not ordered "
                          f"min <= p50 <= p99 <= max")


def check_trace(doc, schema, errors):
    validate(doc, schema, "$", errors)
    # Semantic checks beyond the schema: spans must have non-negative
    # extent, and every embedded registry metric is a number (counter or
    # gauge) or a histogram summary object.
    for i, ev in enumerate(doc.get("traceEvents", [])):
        if not isinstance(ev, dict):
            continue
        if ev.get("ph") == "X" and ev.get("dur", 0) < 0:
            errors.append(f"$.traceEvents[{i}]: negative dur")
    metrics = doc.get("otherData", {}).get("metrics", {})
    if isinstance(metrics, dict):
        for name, value in metrics.items():
            path = f"$.otherData.metrics.{name}"
            if isinstance(value, dict):
                check_histogram_summary(value, path, errors)
            elif not _type_ok(value, "number"):
                errors.append(f"{path}: expected number or histogram "
                              f"object, got {type(value).__name__}")


def check_timing(doc, schema, errors):
    validate(doc, schema, "$", errors)
    # Per-kind required fields the schema subset cannot express.
    for i, entry in enumerate(doc.get("metrics", [])):
        if not isinstance(entry, dict):
            continue
        path = f"$.metrics[{i}]"
        kind = entry.get("type")
        if kind in ("counter", "gauge"):
            if "value" not in entry:
                errors.append(f"{path}: {kind} missing 'value'")
        elif kind == "histogram":
            check_histogram_summary(entry, path, errors)


def check_status(doc, schema, schema_dir, errors):
    validate(doc, schema, "$", errors)
    # The embedded last_step object is the same serialization the JSONL
    # sink writes; hold it to the full StepMetrics schema.
    last = doc.get("last_step")
    if isinstance(last, dict):
        metrics_path = os.path.join(schema_dir, "metrics.schema.json")
        with open(metrics_path, encoding="utf-8") as f:
            validate(last, json.load(f), "$.last_step", errors)
    hists = doc.get("histograms")
    if isinstance(hists, dict):
        for name, value in hists.items():
            if isinstance(value, dict):
                check_histogram_summary(value, f"$.histograms.{name}",
                                        errors)


def check_postmortem(doc, schema, errors):
    validate(doc, schema, "$", errors)
    cause = doc.get("cause", {})
    if isinstance(cause, dict) and cause.get("kind") == "signal" \
            and "signal" not in cause:
        errors.append("$.cause: kind 'signal' missing 'signal' number")
    # Step records must be consecutive: the ring keeps the *last* K
    # steps, so any gap means a torn read slipped through.
    steps = doc.get("steps", [])
    if isinstance(steps, list):
        numbers = [s.get("step") for s in steps if isinstance(s, dict)]
        for prev, cur in zip(numbers, numbers[1:]):
            if isinstance(prev, int) and isinstance(cur, int) \
                    and cur != prev + 1:
                errors.append(f"$.steps: non-consecutive records "
                              f"{prev} -> {cur}")
                break
    metrics = doc.get("metrics")
    if isinstance(metrics, dict):
        for name, value in metrics.get("histograms", {}).items():
            if isinstance(value, dict):
                check_histogram_summary(
                    value, f"$.metrics.histograms.{name}", errors)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("mode",
                        choices=["trace", "metrics", "timing", "report",
                                 "status", "postmortem"])
    parser.add_argument("file")
    parser.add_argument("--schema", default=None)
    args = parser.parse_args()

    schema_dir = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                              "schema")
    schema_path = args.schema or os.path.join(
        schema_dir, f"{args.mode}.schema.json")
    with open(schema_path, encoding="utf-8") as f:
        schema = json.load(f)

    errors = []
    if args.mode == "metrics":
        count = 0
        with open(args.file, encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                count += 1
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as e:
                    errors.append(f"line {lineno}: not valid JSON: {e}")
                    continue
                validate(record, schema, f"line {lineno}", errors)
        if count == 0:
            errors.append("no records found")
    else:
        with open(args.file, encoding="utf-8") as f:
            try:
                doc = json.load(f)
            except json.JSONDecodeError as e:
                print(f"{args.file}: not valid JSON: {e}", file=sys.stderr)
                return 1
        if args.mode == "trace":
            check_trace(doc, schema, errors)
            count = len(doc.get("traceEvents", []))
        elif args.mode == "timing":
            check_timing(doc, schema, errors)
            count = len(doc.get("metrics", []))
        elif args.mode == "status":
            check_status(doc, schema, schema_dir, errors)
            count = 1
        elif args.mode == "postmortem":
            check_postmortem(doc, schema, errors)
            count = len(doc.get("steps", []))
        else:
            validate(doc, schema, "$", errors)
            count = 1

    if errors:
        for err in errors:
            print(f"{args.file}: {err}", file=sys.stderr)
        return 1
    unit = {"trace": "events", "metrics": "records",
            "timing": "metric entries", "report": "document",
            "status": "document", "postmortem": "step records"}[args.mode]
    print(f"{args.file}: OK ({count} {unit})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
