#!/usr/bin/env python3
"""Check the repo's markdown docs for broken cross-references.

Usage:
  check_docs.py [ROOT] [--files FILE ...]

Validates, across README.md and docs/*.md (or an explicit --files list):

  * markdown links `[text](target)` whose target is a repo-relative or
    doc-relative path: the file (or directory) must exist;
  * `#anchor` fragments, against the target file's headings using
    GitHub's anchor algorithm (lowercase, punctuation stripped, spaces
    to hyphens, -N suffixes for duplicates);
  * inline-code path references like `src/grape/board_set.cpp` or
    `tools/check_trace.py` (a slash plus a known source extension):
    the file must exist relative to the repo root or the doc's
    directory. Spans with placeholder syntax (<...>, *, $, spaces) and
    generated paths (build/...) are skipped.

Pure stdlib, one line per violation, non-zero exit on any. Keeps
docs/scaling.md-style cross-linked documentation from drifting as
files move — the docs counterpart of g5lint.
"""

import argparse
import os
import re
import sys

# Inline-code spans are treated as path references only with these
# extensions — prose like `a/b` or expressions stay exempt.
_PATH_EXTS = (
    ".cpp", ".hpp", ".h", ".c", ".py", ".md", ".json", ".jsonl",
    ".txt", ".yml", ".yaml", ".cmake", ".csv", ".sh",
)

# Generated or illustrative path prefixes that need not exist in the tree.
_SKIP_PREFIXES = ("build/", "http://", "https://", "out/", "/tmp/")

_LINK_RE = re.compile(r"(?<!\!)\[([^\]]*)\]\(([^)\s]+)\)")
_CODE_SPAN_RE = re.compile(r"`([^`\n]+)`")
_HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
_FENCE_RE = re.compile(r"^\s*(```|~~~)")


def github_anchor(heading, seen):
    """GitHub's heading -> fragment algorithm (gollum/tocify variant)."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)          # unwrap code spans
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # unwrap links
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    anchor = text.replace(" ", "-")
    n = seen.get(anchor, 0)
    seen[anchor] = n + 1
    return anchor if n == 0 else f"{anchor}-{n}"


def heading_anchors(md_path):
    """All valid fragment targets of a markdown file."""
    anchors, seen = set(), {}
    in_fence = False
    with open(md_path, encoding="utf-8") as f:
        for line in f:
            if _FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            m = _HEADING_RE.match(line)
            if m:
                anchors.add(github_anchor(m.group(2), seen))
    return anchors


def strip_fences(text):
    """Markdown with fenced code blocks blanked (links inside code are
    examples, not references)."""
    out, in_fence = [], False
    for line in text.splitlines():
        if _FENCE_RE.match(line):
            in_fence = not in_fence
            out.append("")
            continue
        out.append("" if in_fence else line)
    return "\n".join(out)


def looks_like_path(span):
    """Would a human read this inline-code span as a repo file path?"""
    if "/" not in span:
        return False
    if any(c in span for c in "<>*$ {}()|\\\"'=,"):
        return False
    # file.cpp:123 references resolve to the file part.
    span = span.split(":", 1)[0]
    if span.startswith(_SKIP_PREFIXES) or span.startswith("-"):
        return False
    return span.endswith(_PATH_EXTS)


def check_file(md_path, root, anchors_cache):
    errors = []
    doc_dir = os.path.dirname(md_path)
    rel = os.path.relpath(md_path, root)
    text = strip_fences(open(md_path, encoding="utf-8").read())

    def resolve(target):
        """A reference may be relative to the doc, to the repo root, or
        an include-style path under src/ (`grape/config.hpp`)."""
        for base in (doc_dir, root, os.path.join(root, "src")):
            p = os.path.normpath(os.path.join(base, target))
            if os.path.exists(p):
                return p
        return None

    for m in _LINK_RE.finditer(text):
        target = m.group(2)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, fragment = target.partition("#")
        if path_part:
            resolved = resolve(path_part)
            if resolved is None:
                errors.append(f"{rel}: broken link target '{target}'")
                continue
        else:
            resolved = md_path  # same-file anchor
        if fragment:
            if not resolved.endswith(".md"):
                continue
            if resolved not in anchors_cache:
                anchors_cache[resolved] = heading_anchors(resolved)
            if fragment not in anchors_cache[resolved]:
                errors.append(
                    f"{rel}: broken anchor '#{fragment}' in link '{target}' "
                    f"(no such heading in {os.path.relpath(resolved, root)})")

    for m in _CODE_SPAN_RE.finditer(text):
        span = m.group(1)
        if not looks_like_path(span):
            continue
        path = span.split(":", 1)[0]
        if resolve(path) is None:
            errors.append(f"{rel}: referenced path '{path}' does not exist")
    return errors


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("root", nargs="?", default=".",
                    help="repository root (default: cwd)")
    ap.add_argument("--files", nargs="*", default=None,
                    help="explicit markdown files (default: README.md "
                         "and docs/*.md under ROOT)")
    args = ap.parse_args()
    root = os.path.abspath(args.root)

    if args.files:
        files = [os.path.abspath(f) for f in args.files]
    else:
        files = [os.path.join(root, "README.md")]
        docs = os.path.join(root, "docs")
        if os.path.isdir(docs):
            files += sorted(
                os.path.join(docs, f) for f in os.listdir(docs)
                if f.endswith(".md"))

    errors, checked = [], 0
    anchors_cache = {}
    for f in files:
        if not os.path.exists(f):
            errors.append(f"{os.path.relpath(f, root)}: file not found")
            continue
        errors.extend(check_file(f, root, anchors_cache))
        checked += 1

    for e in errors:
        print(f"check_docs: {e}", file=sys.stderr)
    if errors:
        print(f"check_docs: {len(errors)} problem(s) in {checked} file(s)",
              file=sys.stderr)
        return 1
    print(f"check_docs: OK ({checked} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
