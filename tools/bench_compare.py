#!/usr/bin/env python3
"""Compare a fresh bench JSON against a checked-in BENCH_* baseline.

Usage:
  bench_compare.py FRESH.json BASELINE.json [--threshold 10.0] [--strict]

Understands both row shapes the bench harnesses emit:

  * pipeline rows (bench_p3_pipeline; baselines BENCH_p3/p6/p8.json):
    objects with a "run" configuration dict plus "sync"/"pipelined"
    sections carrying wall_s — rows are matched on the full "run" dict;
  * tree-build rows (bench_p4_treebuild --json; baseline BENCH_p9.json):
    objects with n/threads/build_ms — rows are matched on (n, threads).

Note-only entries (objects without timing fields) are skipped. For each
matched row the tool prints baseline vs fresh timings and the delta in
percent; a slowdown beyond --threshold is flagged as a REGRESSION.
Rows present in only one file are listed but never count as
regressions, so a quick fresh run over a subset of the baseline grid is
fine.

Exit status: 0 normally (the comparison is advisory — container timing
vs a checked-in baseline from another machine is noise-dominated);
1 when --strict is given and any regression was flagged; 1 always when
a fresh row reports bitwise_identical = false (that is a correctness
bit, not a timing); 2 on malformed input.

Stdlib only — CI needs no extra packages.
"""

import argparse
import json
import sys


def row_key(row):
    """Stable identity for a bench row, or None for note-only entries."""
    if not isinstance(row, dict):
        return None
    if "run" in row and isinstance(row["run"], dict):
        return tuple(sorted(row["run"].items()))
    if "n" in row and "threads" in row and "build_ms" in row:
        return (("n", row["n"]), ("threads", row["threads"]))
    return None


def row_times(row):
    """{metric-name: seconds-or-ms} for every timing the row carries."""
    times = {}
    for section in ("sync", "pipelined"):
        sub = row.get(section)
        if isinstance(sub, dict) and "wall_s" in sub:
            times[f"{section}.wall_s"] = float(sub["wall_s"])
    if "build_ms" in row:
        times["build_ms"] = float(row["build_ms"])
    return times


def key_label(key):
    return " ".join(f"{k}={v}" for k, v in key)


def load_rows(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if isinstance(doc, dict):
        doc = [doc]
    if not isinstance(doc, list):
        raise ValueError(f"{path}: expected a JSON array of bench rows")
    rows = {}
    for row in doc:
        key = row_key(row)
        if key is not None:
            rows[key] = row
    if not rows:
        raise ValueError(f"{path}: no bench rows recognized")
    return rows


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh")
    parser.add_argument("baseline")
    parser.add_argument("--threshold", type=float, default=10.0,
                        help="slowdown percent that counts as a "
                             "regression (default 10)")
    parser.add_argument("--strict", action="store_true",
                        help="exit nonzero when a regression is flagged")
    args = parser.parse_args()

    try:
        fresh = load_rows(args.fresh)
        base = load_rows(args.baseline)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2

    regressions = 0
    bitwise_failures = 0
    compared = 0
    width = max((len(key_label(k)) for k in fresh), default=20)
    header = (f"{'row':<{width}}  {'metric':<16}  {'baseline':>10}  "
              f"{'fresh':>10}  {'delta':>8}")
    print(header)
    print("-" * len(header))

    for key in sorted(fresh):
        label = key_label(key)
        if key not in base:
            print(f"{label:<{width}}  (not in baseline — skipped)")
            continue
        ftimes = row_times(fresh[key])
        btimes = row_times(base[key])
        for metric in sorted(ftimes):
            if metric not in btimes or btimes[metric] <= 0:
                continue
            compared += 1
            b, f = btimes[metric], ftimes[metric]
            delta = (f / b - 1.0) * 100.0
            flag = ""
            if delta > args.threshold:
                flag = "  REGRESSION"
                regressions += 1
            print(f"{label:<{width}}  {metric:<16}  {b:>10.4f}  "
                  f"{f:>10.4f}  {delta:>+7.2f}%{flag}")
        if fresh[key].get("bitwise_identical") is False:
            print(f"{label:<{width}}  bitwise_identical=false  FAIL")
            bitwise_failures += 1

    missing = sorted(k for k in base if k not in fresh)
    for key in missing:
        print(f"{key_label(key):<{width}}  (baseline row not re-run)")

    print(f"\n{compared} timings compared, {regressions} over the "
          f"{args.threshold:g}% threshold, {bitwise_failures} bitwise "
          f"failures")
    if bitwise_failures:
        return 1
    if regressions and args.strict:
        return 1
    if regressions:
        print("advisory mode: regressions reported but not fatal "
              "(re-run with --strict to gate)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
