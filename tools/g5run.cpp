// g5run — command-line simulation runner over the library's public API.
//
// Pick an initial condition, a force engine and run parameters; get a
// summary table, optional snapshots and optional post-run analysis. The
// one binary a downstream user needs to try the system on their problem.
//
// Usage:
//   g5run --ic plummer|hernquist|cosmo|collision|cold|uniform [ic options]
//         --engine grape-tree|grape-direct|host-tree|host-tree-modified|
//                  host-direct
//         [--n 8192] [--steps 100] [--dt 0.01] [--eps 0.02] [--theta 0.75]
//         [--ncrit 256] [--mac edge|bmax] [--quadrupole]
//         [--snapshots K --snapshot-prefix out]
//         [--analyze] [--selftest] [--seed 42]
//         [--out final.g5snap] [--tipsy final.tipsy]
//         [--resume earlier.g5snap]   (continue from a saved snapshot)
//         [--stats-csv run.csv]       (per-step time series)
//
// Cosmological runs (--ic cosmo) integrate z=24 -> 0 with a log-a step
// schedule (or --comoving for the comoving-coordinate integrator) and set
// dt/eps from the lattice automatically.

#include <cstdio>
#include <string>

#include "core/analysis.hpp"
#include "core/comoving.hpp"
#include "core/engines.hpp"
#include "core/simulation.hpp"
#include "core/snapshot.hpp"
#include "grape/selftest.hpp"
#include "ic/galaxy.hpp"
#include "ic/hernquist.hpp"
#include "ic/plummer.hpp"
#include "ic/uniform.hpp"
#include "ic/zeldovich.hpp"
#include "math/rng.hpp"
#include "model/units.hpp"
#include "util/log.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

namespace {

using namespace g5;

struct Prepared {
  model::ParticleSet pset;
  double suggested_eps = 0.02;
  double suggested_dt = 0.01;
  bool cosmological = false;
  ic::CosmologicalSphereConfig cosmo_cfg;
  ic::CosmologicalSphereResult cosmo_meta;
};

Prepared prepare_ic(const util::Options& opt) {
  Prepared out;
  // Resuming from a snapshot bypasses IC generation entirely.
  if (opt.has("resume")) {
    const std::string path = opt.get_string("resume", "");
    const auto header = core::read_snapshot(path, out.pset);
    out.suggested_eps = header.eps > 0.0 ? header.eps : 0.02;
    std::printf("resumed %s: N=%llu t=%g eps=%g\n", path.c_str(),
                static_cast<unsigned long long>(header.count), header.time,
                header.eps);
    return out;
  }
  const std::string kind = opt.get_string("ic", "plummer");
  const auto n = static_cast<std::size_t>(opt.get_int("n", 8192));
  const auto seed = static_cast<std::uint64_t>(opt.get_int("seed", 42));

  if (kind == "plummer") {
    ic::PlummerConfig cfg;
    cfg.n = n;
    cfg.seed = seed;
    out.pset = ic::make_plummer(cfg);
    out.suggested_eps = 0.02;
    out.suggested_dt = 0.01;
  } else if (kind == "hernquist") {
    ic::HernquistConfig cfg;
    cfg.n = n;
    cfg.seed = seed;
    out.pset = ic::make_hernquist(cfg);
    out.suggested_eps = 0.02;
    out.suggested_dt = 0.005;  // the cusp is dynamically faster
  } else if (kind == "uniform") {
    out.pset = ic::make_uniform_ball(n, 1.0, 1.0, seed);
    out.suggested_eps = 0.02;
    out.suggested_dt = 0.005;
  } else if (kind == "cold") {
    out.pset = ic::make_uniform_ball(n, 1.0, 1.0, seed);
    math::Rng rng(seed + 1);
    const double sigma =
        std::sqrt(2.0 * opt.get_double("virial", 0.05) * 0.6 / 3.0);
    for (auto& v : out.pset.vel()) {
      v = math::Vec3d{rng.gaussian(0.0, sigma), rng.gaussian(0.0, sigma),
                      rng.gaussian(0.0, sigma)};
    }
    out.suggested_eps = 0.02;
    out.suggested_dt = 0.005;
  } else if (kind == "collision") {
    ic::GalaxyCollisionConfig cfg;
    cfg.n_per_galaxy = n / 2;
    cfg.seed = seed;
    cfg.pericenter = opt.get_double("pericenter", 1.0);
    cfg.mass_ratio = opt.get_double("mass-ratio", 1.0);
    out.pset = std::move(ic::make_galaxy_collision(cfg).particles);
    out.suggested_eps = 0.05;
    out.suggested_dt = 0.05;
  } else if (kind == "cosmo") {
    ic::CosmologicalSphereConfig cfg;
    cfg.grid_n = static_cast<std::size_t>(opt.get_int("grid", 16));
    while ((cfg.grid_n & (cfg.grid_n - 1)) != 0) ++cfg.grid_n;
    cfg.seed = seed;
    // Background cosmology: SCDM (the paper) by default, any matter+Lambda
    // model via flags.
    cfg.cosmo.omega_m = opt.get_double("omega-m", 1.0);
    cfg.cosmo.omega_l = opt.get_double("omega-l", 0.0);
    cfg.cosmo.h = opt.get_double("hubble", 0.5);
    cfg.power.sigma8 = opt.get_double("sigma8", 0.67);
    cfg.z_start = opt.get_double("z-start", 24.0);
    out.cosmo_cfg = cfg;
    out.cosmo_meta = ic::make_cosmological_sphere(cfg);
    out.pset = out.cosmo_meta.particles;
    const double G = model::gravitational_constant();
    for (auto& m : out.pset.mass()) m *= G;
    out.suggested_eps =
        0.05 * out.cosmo_meta.box_size / static_cast<double>(cfg.grid_n);
    out.cosmological = true;
  } else {
    throw std::invalid_argument(
        "unknown --ic '" + kind +
        "' (plummer, hernquist, uniform, cold, collision, cosmo)");
  }
  return out;
}

void print_analysis(const model::ParticleSet& pset) {
  const auto lag = core::lagrangian_radii(pset, {0.1, 0.5, 0.9});
  std::printf("\nanalysis:\n");
  util::Table t({"quantity", "value"});
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4g / %.4g / %.4g", lag[0], lag[1],
                lag[2]);
  t.add_row({"Lagrangian radii (10/50/90%)", buf});
  std::snprintf(buf, sizeof(buf), "%.4g",
                core::mean_nearest_neighbour(pset, 200, 7));
  t.add_row({"mean nearest-neighbour distance", buf});
  t.print();

  core::CorrelationConfig cc;
  cc.r_min = lag[1] * 0.05;
  cc.r_max = lag[2];
  cc.bins = 10;
  const auto xi = core::correlation_function(pset, cc);
  std::printf("\ntwo-point correlation xi(r) (sample R=%.3g, %zu "
              "particles):\n", xi.sample_radius, xi.n_used);
  util::Table xt({"r range", "pairs", "xi"});
  for (std::size_t b = 0; b < xi.xi.size(); ++b) {
    char c0[48], c1[20], c2[16];
    std::snprintf(c0, sizeof(c0), "%.3g - %.3g", xi.r_lo[b], xi.r_hi[b]);
    std::snprintf(c1, sizeof(c1), "%llu",
                  static_cast<unsigned long long>(xi.pairs[b]));
    std::snprintf(c2, sizeof(c2), "%+.3f", xi.xi[b]);
    xt.add_row({c0, c1, c2});
  }
  xt.print();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    util::Options opt(argc, argv);
    if (opt.has("help")) {
      std::printf("see the header of tools/g5run.cpp for usage\n");
      return 0;
    }

    Prepared ic = prepare_ic(opt);

    core::ForceParams fp;
    fp.eps = opt.get_double("eps", ic.suggested_eps);
    fp.theta = opt.get_double("theta", 0.75);
    fp.n_crit = static_cast<std::uint32_t>(opt.get_int("ncrit", 256));
    fp.quadrupole = opt.get_bool("quadrupole", false);
    const std::string mac = opt.get_string("mac", "edge");
    fp.mac = mac == "bmax" ? tree::Mac::Bmax : tree::Mac::Edge;

    const std::string engine_name = opt.get_string("engine", "grape-tree");
    auto engine = core::make_engine(engine_name, fp);

    // Optional hardware self-test before committing to a run.
    if (opt.get_bool("selftest", false)) {
      if (auto* gt = dynamic_cast<core::GrapeTreeEngine*>(engine.get())) {
        std::printf("%s", grape::run_selftest(gt->device().system()).str().c_str());
      } else if (auto* gd =
                     dynamic_cast<core::GrapeDirectEngine*>(engine.get())) {
        std::printf("%s", grape::run_selftest(gd->device().system()).str().c_str());
      } else {
        std::printf("--selftest: engine '%s' has no hardware attached\n",
                    engine_name.c_str());
      }
    }

    const auto steps = static_cast<std::uint64_t>(opt.get_int(
        "steps", ic.cosmological ? 48 : 100));

    std::printf("g5run: N=%zu engine=%s eps=%g theta=%g n_crit=%u steps=%llu\n",
                ic.pset.size(), engine->name().data(), fp.eps, fp.theta,
                fp.n_crit, static_cast<unsigned long long>(steps));

    core::SimulationSummary summary;
    if (ic.cosmological && opt.get_bool("comoving", false)) {
      const model::Cosmology cosmo(ic.cosmo_cfg.cosmo);
      core::ComovingSimulation::physical_to_comoving(ic.pset, cosmo,
                                                     ic.cosmo_meta.a_start);
      core::ForceParams cfp = fp;
      cfp.eps = fp.eps / ic.cosmo_meta.a_start;
      engine->set_params(cfp);
      core::ComovingConfig cc;
      cc.cosmo = ic.cosmo_cfg.cosmo;
      cc.a_start = ic.cosmo_meta.a_start;
      cc.steps = steps;
      cc.log_every = static_cast<std::uint64_t>(opt.get_int("log-every", 0));
      core::ComovingSimulation sim(*engine, cc);
      const auto cs = sim.run(ic.pset);
      core::ComovingSimulation::comoving_to_physical(ic.pset, cosmo, 1.0);
      summary.steps = cs.steps;
      summary.wall_seconds = cs.wall_seconds;
      summary.engine = cs.engine;
    } else {
      core::SimulationConfig sc;
      if (ic.cosmological) {
        const model::Cosmology cosmo(ic.cosmo_cfg.cosmo);
        sc.dt_schedule =
            cosmo.log_a_timesteps(ic.cosmo_meta.a_start, 1.0, steps);
      } else {
        sc.dt = opt.get_double("dt", ic.suggested_dt);
        sc.steps = steps;
      }
      sc.log_every = static_cast<std::uint64_t>(opt.get_int("log-every", 0));
      sc.snapshot_every =
          static_cast<std::uint64_t>(opt.get_int("snapshots", 0));
      sc.snapshot_prefix = opt.get_string("snapshot-prefix", "g5run");
      sc.stats_csv = opt.get_string("stats-csv", "");
      core::Simulation sim(*engine, sc);
      summary = sim.run(ic.pset);
    }

    util::Table t({"quantity", "value"});
    t.add_row({"steps", std::to_string(summary.steps)});
    t.add_row({"interactions",
               util::sci(static_cast<double>(summary.engine.interactions))});
    t.add_row({"interaction lists", std::to_string(summary.engine.groups)});
    t.add_row({"mean list length",
               util::sci(summary.engine.walk.mean_list())});
    t.add_row({"wall clock (measured)",
               util::human_seconds(summary.wall_seconds)});
    if (!ic.cosmological) {
      t.add_row({"relative energy drift", util::sci(summary.energy_drift)});
    }
    if (summary.grape.force_calls > 0) {
      t.add_row({"GRAPE-5 time (modeled)",
                 util::human_seconds(summary.grape.modeled_total())});
      t.add_row({"GRAPE-5 sustained (modeled)",
                 util::human_flops(summary.grape.flops() /
                                   summary.grape.modeled_total())});
    }
    t.print();

    if (opt.get_bool("analyze", false)) print_analysis(ic.pset);

    // Optional snapshot exports of the final state.
    if (opt.has("out")) {
      const std::string out_path = opt.get_string("out", "final.g5snap");
      core::write_snapshot(out_path, ic.pset, 0.0, fp.eps);
      std::printf("wrote %s\n", out_path.c_str());
    }
    if (opt.has("tipsy")) {
      const std::string out_path = opt.get_string("tipsy", "final.tipsy");
      core::write_snapshot_tipsy(out_path, ic.pset, 0.0, fp.eps);
      std::printf("wrote %s (TIPSY dark-only)\n", out_path.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "g5run: %s\n", e.what());
    return 1;
  }
}
