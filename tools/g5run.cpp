// g5run — command-line simulation runner over the library's public API.
//
// Pick an initial condition, a force engine and run parameters; get a
// summary table, optional snapshots and optional post-run analysis. The
// one binary a downstream user needs to try the system on their problem.
//
// Usage:
//   g5run --ic plummer|hernquist|cosmo|collision|cold|uniform [ic options]
//         --engine grape-tree|grape-direct|host-tree|host-tree-modified|
//                  host-direct
//         [--n 8192] [--steps 100] [--dt 0.01] [--eps 0.02] [--theta 0.75]
//         [--ncrit 256] [--mac edge|bmax] [--quadrupole] [--threads 0]
//         [--build-cutoff 32768]
//                          (tree engines: minimum N for the parallel tree
//                           build; the build threads across the --threads
//                           walk pool above it, bitwise-identical to the
//                           serial build either way)
//         [--pipeline 2]   (grape engines: batch buffers in flight;
//                           0/1 = synchronous, >= 2 overlaps tree walks
//                           with device evaluation — same forces bitwise)
//         [--backend bit-exact|native]
//                          (grape engines: pipeline arithmetic. bit-exact =
//                           the bit-level GRAPE-5 datapath, the default and
//                           what every golden number refers to; native =
//                           plain double on the same quantized coordinates,
//                           ~10x faster emulation, codec error ~ 0)
//         [--boards B]     (grape engines: processor boards in the emulated
//                           machine; default 2 = the paper's configuration.
//                           j-particles block-shard across boards and the
//                           partial sums merge exactly, so forces are
//                           bitwise-identical for every B — docs/scaling.md)
//         [--snapshots K --snapshot-prefix out]
//         [--analyze] [--selftest] [--seed 42]
//         [--out final.g5snap] [--tipsy final.tipsy]
//         [--resume earlier.g5snap]   (continue from a saved snapshot)
//         [--stats-csv run.csv]       (per-step time series)
//
// Observability (docs/observability.md):
//   --timing             print the measured per-phase table and the
//                        measured-vs-modeled Section 5 breakdown
//   --timing-json FILE   write the same breakdown as JSON (implies --timing
//                        accounting; BENCH_obs.json uses this format)
//   --trace FILE         write a Chrome trace (chrome://tracing, Perfetto)
//   --metrics FILE       write per-step metrics as JSON lines
//   --report FILE        write the paper-claims artifact (measured mean
//                        list length / force-error percentiles / energy
//                        drift vs the SC'99 numbers; schema
//                        tools/schema/report.schema.json) and print the
//                        comparison table; runs the force-error probe
//   --probe-every K      run the sampling force-error probe every K steps
//                        (default: with --report, once on the last step)
//   --probe-samples M    particles the probe re-evaluates exactly (64)
//   --probe-seed S       probe sampling seed (deterministic subsets)
//
// Live telemetry & post-mortem (docs/observability.md):
//   --status-file FILE   background sampler rewrites FILE atomically every
//                        --status-period ms with the g5.status.v1 JSON
//                        (heartbeat, ETA, device queue, flight recorder,
//                        full metric registry)
//   --status-period MS   sampler period in milliseconds (default 1000)
//   --prom-file FILE     sampler also rewrites FILE in Prometheus text
//                        exposition format (the full g5.* catalog)
//   --live-port P        serve /status (JSON) and /metrics (Prometheus)
//                        on 127.0.0.1:P (P=0 picks a free port)
//   --postmortem FILE    install async-signal-safe crash handlers that
//                        dump the flight recorder to FILE (g5.postmortem.v1)
//                        on SIGSEGV/SIGABRT/SIGTERM/std::terminate
//   --debug-crash S      abort() from the step hook at step S (exercises
//                        the post-mortem path; used by tests/CI)
//
// Cosmological runs (--ic cosmo) integrate z=24 -> 0 with a log-a step
// schedule (or --comoving for the comoving-coordinate integrator) and set
// dt/eps from the lattice automatically.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/analysis.hpp"
#include "core/comoving.hpp"
#include "core/engines.hpp"
#include "core/perf.hpp"
#include "core/simulation.hpp"
#include "core/snapshot.hpp"
#include "grape/selftest.hpp"
#include "obs/obs.hpp"
#include "ic/galaxy.hpp"
#include "ic/hernquist.hpp"
#include "ic/plummer.hpp"
#include "ic/uniform.hpp"
#include "ic/zeldovich.hpp"
#include "math/rng.hpp"
#include "model/units.hpp"
#include "util/http.hpp"
#include "util/log.hpp"
#include "util/options.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"
#include "util/thread.hpp"

namespace {

using namespace g5;

struct Prepared {
  model::ParticleSet pset;
  double suggested_eps = 0.02;
  double suggested_dt = 0.01;
  bool cosmological = false;
  ic::CosmologicalSphereConfig cosmo_cfg;
  ic::CosmologicalSphereResult cosmo_meta;
};

Prepared prepare_ic(const util::Options& opt) {
  Prepared out;
  // Resuming from a snapshot bypasses IC generation entirely.
  if (opt.has("resume")) {
    const std::string path = opt.get_string("resume", "");
    const auto header = core::read_snapshot(path, out.pset);
    out.suggested_eps = header.eps > 0.0 ? header.eps : 0.02;
    std::printf("resumed %s: N=%llu t=%g eps=%g\n", path.c_str(),
                static_cast<unsigned long long>(header.count), header.time,
                header.eps);
    return out;
  }
  const std::string kind = opt.get_string("ic", "plummer");
  const auto n = static_cast<std::size_t>(opt.get_int("n", 8192));
  const auto seed = static_cast<std::uint64_t>(opt.get_int("seed", 42));

  if (kind == "plummer") {
    ic::PlummerConfig cfg;
    cfg.n = n;
    cfg.seed = seed;
    out.pset = ic::make_plummer(cfg);
    out.suggested_eps = 0.02;
    out.suggested_dt = 0.01;
  } else if (kind == "hernquist") {
    ic::HernquistConfig cfg;
    cfg.n = n;
    cfg.seed = seed;
    out.pset = ic::make_hernquist(cfg);
    out.suggested_eps = 0.02;
    out.suggested_dt = 0.005;  // the cusp is dynamically faster
  } else if (kind == "uniform") {
    out.pset = ic::make_uniform_ball(n, 1.0, 1.0, seed);
    out.suggested_eps = 0.02;
    out.suggested_dt = 0.005;
  } else if (kind == "cold") {
    out.pset = ic::make_uniform_ball(n, 1.0, 1.0, seed);
    math::Rng rng(seed + 1);
    const double sigma =
        std::sqrt(2.0 * opt.get_double("virial", 0.05) * 0.6 / 3.0);
    for (auto& v : out.pset.vel()) {
      v = math::Vec3d{rng.gaussian(0.0, sigma), rng.gaussian(0.0, sigma),
                      rng.gaussian(0.0, sigma)};
    }
    out.suggested_eps = 0.02;
    out.suggested_dt = 0.005;
  } else if (kind == "collision") {
    ic::GalaxyCollisionConfig cfg;
    cfg.n_per_galaxy = n / 2;
    cfg.seed = seed;
    cfg.pericenter = opt.get_double("pericenter", 1.0);
    cfg.mass_ratio = opt.get_double("mass-ratio", 1.0);
    out.pset = std::move(ic::make_galaxy_collision(cfg).particles);
    out.suggested_eps = 0.05;
    out.suggested_dt = 0.05;
  } else if (kind == "cosmo") {
    ic::CosmologicalSphereConfig cfg;
    cfg.grid_n = static_cast<std::size_t>(opt.get_int("grid", 16));
    while ((cfg.grid_n & (cfg.grid_n - 1)) != 0) ++cfg.grid_n;
    cfg.seed = seed;
    // Background cosmology: SCDM (the paper) by default, any matter+Lambda
    // model via flags.
    cfg.cosmo.omega_m = opt.get_double("omega-m", 1.0);
    cfg.cosmo.omega_l = opt.get_double("omega-l", 0.0);
    cfg.cosmo.h = opt.get_double("hubble", 0.5);
    cfg.power.sigma8 = opt.get_double("sigma8", 0.67);
    cfg.z_start = opt.get_double("z-start", 24.0);
    out.cosmo_cfg = cfg;
    out.cosmo_meta = ic::make_cosmological_sphere(cfg);
    out.pset = out.cosmo_meta.particles;
    const double G = model::gravitational_constant();
    for (auto& m : out.pset.mass()) m *= G;
    out.suggested_eps =
        0.05 * out.cosmo_meta.box_size / static_cast<double>(cfg.grid_n);
    out.cosmological = true;
  } else {
    throw std::invalid_argument(
        "unknown --ic '" + kind +
        "' (plummer, hernquist, uniform, cold, collision, cosmo)");
  }
  return out;
}

void print_analysis(const model::ParticleSet& pset) {
  const auto lag = core::lagrangian_radii(pset, {0.1, 0.5, 0.9});
  std::printf("\nanalysis:\n");
  util::Table t({"quantity", "value"});
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4g / %.4g / %.4g", lag[0], lag[1],
                lag[2]);
  t.add_row({"Lagrangian radii (10/50/90%)", buf});
  std::snprintf(buf, sizeof(buf), "%.4g",
                core::mean_nearest_neighbour(pset, 200, 7));
  t.add_row({"mean nearest-neighbour distance", buf});
  t.print();

  core::CorrelationConfig cc;
  cc.r_min = lag[1] * 0.05;
  cc.r_max = lag[2];
  cc.bins = 10;
  const auto xi = core::correlation_function(pset, cc);
  std::printf("\ntwo-point correlation xi(r) (sample R=%.3g, %zu "
              "particles):\n", xi.sample_radius, xi.n_used);
  util::Table xt({"r range", "pairs", "xi"});
  for (std::size_t b = 0; b < xi.xi.size(); ++b) {
    char c0[48], c1[20], c2[16];
    std::snprintf(c0, sizeof(c0), "%.3g - %.3g", xi.r_lo[b], xi.r_hi[b]);
    std::snprintf(c1, sizeof(c1), "%llu",
                  static_cast<unsigned long long>(xi.pairs[b]));
    std::snprintf(c2, sizeof(c2), "%+.3f", xi.xi[b]);
    xt.add_row({c0, c1, c2});
  }
  xt.print();
}

/// Sum of every measured phase whose path ends in "/<leaf>".
double phase_total(const std::vector<obs::PhaseStat>& report,
                   std::string_view leaf) {
  double total = 0.0;
  for (const auto& p : report) {
    if (p.path.size() > leaf.size() + 1 &&
        p.path.compare(p.path.size() - leaf.size(), leaf.size(), leaf) == 0 &&
        p.path[p.path.size() - leaf.size() - 1] == '/') {
      total += p.total_s;
    }
  }
  return total;
}

/// The measured side of the Section 5 story: the per-phase wall/CPU table
/// from the span accumulators, then measured vs modeled rows (modeled =
/// HostCostModel + TimingModel, the same models bench_e1_section5 checks
/// against the paper's published row). See docs/observability.md.
void print_measured_timing(const core::SimulationSummary& summary,
                           const core::ForceParams& fp, std::size_t n) {
  const auto report = obs::phase_report();
  std::printf("\nmeasured phases (wall seconds; .cpu rows are per-lane CPU "
              "seconds summed over lanes):\n");
  util::Table pt({"phase", "count", "total s", "mean s"});
  for (const auto& p : report) {
    char c1[24], c2[24], c3[24];
    std::snprintf(c1, sizeof(c1), "%llu",
                  static_cast<unsigned long long>(p.count));
    std::snprintf(c2, sizeof(c2), "%.4g", p.total_s);
    std::snprintf(c3, sizeof(c3), "%.4g", p.mean_s());
    pt.add_row({p.path, c1, c2, c3});
  }
  pt.print();

  core::HostCostModel host;
  host.threads = util::resolve_thread_count(fp.threads);
  const auto& es = summary.engine;
  const double steps = static_cast<double>(summary.steps);
  const double dn = static_cast<double>(n);
  const double modeled_build = 1e-6 * host.per_particle_build_us * dn * steps;
  const double modeled_walk =
      1e-6 * (host.per_list_entry_us *
                  static_cast<double>(es.walk.list_entries) +
              host.per_group_us * static_cast<double>(es.groups));
  const double modeled_step = 1e-6 * host.per_particle_step_us * dn * steps;

  std::printf("\nmeasured vs modeled (paper Section 5 breakdown; host model "
              "is the 1999 Alpha, so ratios, not equality, are the point):\n");
  util::Table mt({"phase", "measured s", "modeled s"});
  char m1[24], m2[24];
  auto row = [&](const char* name, double measured, double modeled) {
    std::snprintf(m1, sizeof(m1), "%.4g", measured);
    std::snprintf(m2, sizeof(m2), "%.4g", modeled);
    mt.add_row({name, m1, m2});
  };
  row("tree build", es.seconds_tree_build, modeled_build);
  row("tree walk (CPU s, 1-core model)", es.seconds_walk, modeled_walk);
  row("integrate + bookkeeping", phase_total(report, "integrate"),
      modeled_step);
  if (summary.grape.force_calls > 0) {
    row("GRAPE compute (emulated vs silicon)", summary.grape.emulation_wall,
        summary.grape.modeled_compute);
    row("GRAPE DMA (modeled only)", 0.0,
        summary.grape.modeled_total() - summary.grape.modeled_compute);
    std::snprintf(m1, sizeof(m1), "%.3f", summary.grape.occupancy());
    mt.add_row({"pipeline occupancy (measured)", m1, "-"});
  }
  const double pipe_wall = phase_total(report, "pipeline");
  if (pipe_wall > 0.0) {
    // The engine measures the fraction of the pipeline wall during
    // which the producer kept walking while device jobs were in flight
    // (g5.pipeline.overlap). The Section 5 model is strictly additive
    // (host walk + GRAPE evaluation), hence modeled overlap 0.
    const double frac = obs::gauge("g5.pipeline.overlap").value();
    row("pipeline overlap (walk hidden, s)", frac * pipe_wall, 0.0);
  }
  mt.print();

  core::RunWorkload work;
  work.n_particles = n;
  work.steps = summary.steps;
  work.interactions = es.interactions;
  work.list_entries = es.walk.list_entries;
  work.groups = es.groups;
  const auto pr = core::project_performance(grape::SystemConfig::paper_system(),
                                            host, grape::CostModel{}, work);
  std::printf("\nmodeled on the paper's hardware: host %.4g s + GRAPE %.4g s "
              "= %.4g s total, %.4g Gflops sustained\n",
              pr.host_s, pr.grape_compute_s + pr.grape_dma_s, pr.total_s,
              pr.raw_flops * 1e-9);
}

/// Timing/metrics JSON for regression baselines (BENCH_obs.json): the
/// phase table plus a registry snapshot, one self-contained object.
void write_timing_json(const std::string& path,
                       const core::SimulationSummary& summary,
                       const std::string& engine_name, std::size_t n) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    throw std::runtime_error("cannot open " + path + " for writing");
  }
  std::fprintf(f,
               "{\n  \"run\": {\"engine\": \"%s\", \"n\": %llu, \"steps\": "
               "%llu, \"wall_s\": %.6g},\n  \"phases\": [",
               engine_name.c_str(), static_cast<unsigned long long>(n),
               static_cast<unsigned long long>(summary.steps),
               summary.wall_seconds);
  bool first = true;
  for (const auto& p : obs::phase_report()) {
    std::fprintf(f,
                 "%s\n    {\"path\": \"%s\", \"count\": %llu, \"total_s\": "
                 "%.6g, \"mean_s\": %.6g}",
                 first ? "" : ",", p.path.c_str(),
                 static_cast<unsigned long long>(p.count), p.total_s,
                 p.mean_s());
    first = false;
  }
  std::fprintf(f, "\n  ],\n  \"metrics\": [");
  first = true;
  for (const auto& s : obs::Registry::instance().snapshot()) {
    if (s.kind == obs::MetricKind::kHistogram) {
      const obs::Histogram::Snapshot& h = s.hist;
      std::fprintf(f,
                   "%s\n    {\"name\": \"%s\", \"type\": \"histogram\", "
                   "\"count\": %llu, \"mean\": %.6g, \"min\": %.6g, "
                   "\"max\": %.6g, \"p50\": %.6g, \"p90\": %.6g, "
                   "\"p99\": %.6g}",
                   first ? "" : ",", s.name.c_str(),
                   static_cast<unsigned long long>(h.count), h.mean(),
                   h.min, h.max, h.quantile(0.50), h.quantile(0.90),
                   h.quantile(0.99));
    } else if (s.is_counter) {
      std::fprintf(f, "%s\n    {\"name\": \"%s\", \"type\": \"counter\", "
                   "\"value\": %llu}",
                   first ? "" : ",", s.name.c_str(),
                   static_cast<unsigned long long>(s.count));
    } else {
      std::fprintf(f, "%s\n    {\"name\": \"%s\", \"type\": \"gauge\", "
                   "\"value\": %.6g}",
                   first ? "" : ",", s.name.c_str(), s.value);
    }
    first = false;
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

// ---------------------------------------------------------------------------
// Paper-claims report (--report): the measurable claims of the SC'99
// paper against this run, as one machine-checkable JSON document
// (tools/schema/report.schema.json) plus a printed comparison table.

/// The paper's published figures (Sections 3 and 5).
constexpr double kPaperMeanList = 13431.0;  ///< avg interaction-list length
constexpr double kPaperN = 2159038.0;       ///< particles in the timed run
constexpr double kPaperNcrit = 2000.0;      ///< its group-size bound
constexpr double kTreeBudget = 1e-3;        ///< ~0.1 % tree error (Sec. 3)
constexpr double kCodecBudget = 3e-3;       ///< ~0.3 % pairwise format error

/// The paper's mean list length scaled to this run's (N, n_crit,
/// theta). Model (after Barnes 1990): a shared list is the group's own
/// n_crit members (direct part) plus ~theta^-3 * ln(N / n_crit) cell
/// terms; the cell coefficient is calibrated so the paper's own row
/// (13,431 at N=2,159,038, n_crit=2000, theta=0.75) is reproduced
/// exactly. Clamped to N — a list cannot be longer than the system.
/// The acceptance band on the ratio is 2x (small-N runs sit well below
/// the asymptotic law because their lists saturate at N).
double scaled_paper_list(double n, double n_crit, double theta) {
  if (!(n > n_crit) || !(theta > 0.0)) return n;
  const double paper_theta = 0.75;
  const double cell_coeff =
      (kPaperMeanList - kPaperNcrit) /
      (std::pow(paper_theta, -3.0) * std::log(kPaperN / kPaperNcrit));
  const double scaled =
      n_crit + cell_coeff * std::pow(theta, -3.0) * std::log(n / n_crit);
  return std::min(n, scaled);
}

std::string json_or_null(double v, const char* fmt = "%.6g") {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

void write_report(const std::string& path,
                  const core::SimulationSummary& summary,
                  const std::string& engine_name,
                  const core::ForceParams& fp, std::size_t n) {
  const double dn = static_cast<double>(n);
  const double steps = static_cast<double>(summary.steps);
  // Section 5's definition: interactions per particle per step.
  const double mean_list =
      dn > 0.0 && steps > 0.0
          ? static_cast<double>(summary.engine.interactions) / (dn * steps)
          : 0.0;
  const double expected = scaled_paper_list(dn, fp.n_crit, fp.theta);
  const double ratio = expected > 0.0 ? mean_list / expected : 0.0;
  const bool within_2x = ratio >= 0.5 && ratio <= 2.0;
  const double inter_per_step =
      steps > 0.0 ? static_cast<double>(summary.engine.interactions) / steps
                  : 0.0;
  const bool probed = summary.probe_calls > 0;
  const obs::ProbeResult& pr = summary.probe_last;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double tree_p50 = probed ? pr.tree_p50 : nan;
  const double tree_p99 = probed ? pr.tree_p99 : nan;
  const double codec_p50 = probed ? pr.codec_p50 : nan;
  const double codec_p99 = probed ? pr.codec_p99 : nan;
  const double total_p50 = probed ? pr.total_p50 : nan;
  const double total_p99 = probed ? pr.total_p99 : nan;
  const char* tree_ok =
      probed ? (tree_p50 <= kTreeBudget ? "true" : "false") : "null";
  const char* codec_ok =
      probed ? (codec_p50 <= kCodecBudget ? "true" : "false") : "null";

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    throw std::runtime_error("cannot open " + path + " for writing");
  }
  std::fprintf(
      f,
      "{\n"
      "  \"run\": {\"engine\": \"%s\", \"backend\": \"%s\", \"boards\": %u, "
      "\"n\": %llu, "
      "\"steps\": %llu, \"eps\": %.6g, \"theta\": %.6g, \"n_crit\": %u, "
      "\"wall_s\": %.6g},\n"
      "  \"claims\": {\n"
      "    \"mean_list_length\": {\"measured\": %.6g, \"paper\": %.6g, "
      "\"paper_scaled\": %.6g, \"ratio_to_scaled\": %.6g, \"within_2x\": "
      "%s},\n"
      "    \"interactions_per_step\": {\"measured\": %.6g},\n"
      "    \"force_error\": {\"samples\": %u, \"probe_calls\": %llu, "
      "\"tree_p50\": %s, \"tree_p99\": %s, \"codec_p50\": %s, "
      "\"codec_p99\": %s, \"total_p50\": %s, \"total_p99\": %s, "
      "\"tree_budget\": %.6g, \"codec_budget\": %.6g, "
      "\"tree_within_budget\": %s, \"codec_within_budget\": %s},\n"
      "    \"conservation\": {\"energy_drift\": %.6g, "
      "\"momentum_drift\": %.6g}\n"
      "  }\n"
      "}\n",
      engine_name.c_str(),
      std::string(grape::backend_name(fp.backend)).c_str(),
      fp.boards > 0 ? fp.boards
                    : static_cast<unsigned>(
                          grape::SystemConfig::paper_system().boards),
      static_cast<unsigned long long>(n),
      static_cast<unsigned long long>(summary.steps), fp.eps, fp.theta,
      fp.n_crit, summary.wall_seconds, mean_list, kPaperMeanList, expected,
      ratio, within_2x ? "true" : "false", inter_per_step,
      probed ? pr.samples : 0,
      static_cast<unsigned long long>(summary.probe_calls),
      json_or_null(tree_p50).c_str(), json_or_null(tree_p99).c_str(),
      json_or_null(codec_p50).c_str(), json_or_null(codec_p99).c_str(),
      json_or_null(total_p50).c_str(), json_or_null(total_p99).c_str(),
      kTreeBudget, kCodecBudget, tree_ok, codec_ok, summary.energy_drift,
      summary.momentum_drift.norm());
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());

  std::printf("\npaper claims vs this run (SC'99 Sections 3/5):\n");
  util::Table ct({"claim", "paper", "this run", "verdict"});
  char c1[40], c2[40];
  std::snprintf(c1, sizeof(c1), "%.0f (N=2.16M)", kPaperMeanList);
  std::snprintf(c2, sizeof(c2), "%.1f (scaled %.1f)", mean_list, expected);
  ct.add_row({"mean list length", c1, c2,
              within_2x ? "within 2x" : "OUTSIDE 2x"});
  std::snprintf(c2, sizeof(c2), "%.4g", inter_per_step);
  ct.add_row({"interactions / step", "-", c2, "-"});
  if (probed) {
    std::snprintf(c1, sizeof(c1), "~%.1f%%", kTreeBudget * 100.0);
    std::snprintf(c2, sizeof(c2), "%.3g%% (p99 %.3g%%)", tree_p50 * 100.0,
                  tree_p99 * 100.0);
    ct.add_row({"tree force error (p50)", c1, c2,
                tree_p50 <= kTreeBudget ? "within budget" : "OVER budget"});
    std::snprintf(c1, sizeof(c1), "~%.1f%%", kCodecBudget * 100.0);
    std::snprintf(c2, sizeof(c2), "%.3g%% (p99 %.3g%%)", codec_p50 * 100.0,
                  codec_p99 * 100.0);
    ct.add_row({"codec force error (p50)", c1, c2,
                codec_p50 <= kCodecBudget ? "within budget" : "OVER budget"});
  } else {
    ct.add_row({"force error", "-", "not probed", "-"});
  }
  std::snprintf(c2, sizeof(c2), "%.3g", summary.energy_drift);
  ct.add_row({"relative energy drift", "conserved over 999 steps", c2, "-"});
  ct.print();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    util::set_current_thread_name("g5-main");
    util::Options opt(argc, argv);
    if (opt.has("help")) {
      std::printf("see the header of tools/g5run.cpp for usage\n");
      return 0;
    }

    // Observability surface: any of these flags flips the master switch
    // for the run; without them every span is a single relaxed load.
    const std::string trace_path = opt.get_string("trace", "");
    const std::string metrics_path = opt.get_string("metrics", "");
    const std::string timing_json = opt.get_string("timing-json", "");
    const std::string report_path = opt.get_string("report", "");
    const std::string status_path = opt.get_string("status-file", "");
    const std::string prom_path = opt.get_string("prom-file", "");
    const std::string postmortem_path = opt.get_string("postmortem", "");
    const auto live_port = opt.get_int("live-port", -1);
    const bool live =
        !status_path.empty() || !prom_path.empty() || live_port >= 0;
    const bool timing = opt.get_bool("timing", false) || !timing_json.empty();
    if (timing || !trace_path.empty() || !metrics_path.empty() ||
        !report_path.empty() || live || !postmortem_path.empty()) {
      obs::set_enabled(true);
      obs::reset_phases();
      obs::Registry::instance().reset_values();
    }
    if (!trace_path.empty()) obs::start_trace();

    // Crash post-mortem first, so even IC generation faults get a dump;
    // then the live sampler (its ctor arms the flight recorder) and the
    // loopback HTTP endpoint for `curl`/Prometheus scrapes.
    if (!postmortem_path.empty()) {
      obs::crash::install(postmortem_path);
      obs::FlightRecorder::instance().arm();
    }
    std::optional<obs::Telemetry> telemetry;
    if (live) {
      obs::TelemetryConfig tc;
      tc.period_ms =
          static_cast<std::uint32_t>(opt.get_int("status-period", 1000));
      tc.status_path = status_path;
      tc.prom_path = prom_path;
      telemetry.emplace(tc);
    }
    std::optional<util::HttpListener> http;
    if (live_port >= 0) {
      http.emplace(static_cast<std::uint16_t>(live_port),
                   [](std::string_view path) {
                     util::HttpResponse r;
                     if (path == "/" || path == "/status") {
                       r.content_type = "application/json";
                       r.body = obs::build_status_json();
                     } else if (path == "/metrics") {
                       r.content_type = "text/plain; version=0.0.4";
                       r.body = obs::prometheus_text();
                     } else {
                       r.status = 404;
                       r.body = "not found\n";
                     }
                     return r;
                   });
      std::printf("g5run: live telemetry on http://127.0.0.1:%u/status\n",
                  http->port());
    }

    Prepared ic = prepare_ic(opt);

    core::ForceParams fp;
    fp.eps = opt.get_double("eps", ic.suggested_eps);
    fp.theta = opt.get_double("theta", 0.75);
    fp.n_crit = static_cast<std::uint32_t>(opt.get_int("ncrit", 256));
    fp.quadrupole = opt.get_bool("quadrupole", false);
    fp.threads = static_cast<std::uint32_t>(opt.get_int("threads", 0));
    fp.build_parallel_cutoff = static_cast<std::uint32_t>(
        opt.get_int("build-cutoff", 1 << 15));
    fp.pipeline_depth =
        static_cast<std::uint32_t>(opt.get_int("pipeline", 2));
    const std::string mac = opt.get_string("mac", "edge");
    fp.mac = mac == "bmax" ? tree::Mac::Bmax : tree::Mac::Edge;
    const std::string backend = opt.get_string("backend", "bit-exact");
    if (!grape::parse_backend(backend, fp.backend)) {
      throw std::invalid_argument("unknown --backend '" + backend +
                                  "' (bit-exact, native)");
    }
    const auto boards = opt.get_int("boards", 0);
    if (boards < 0) throw std::invalid_argument("--boards must be >= 1");
    fp.boards = static_cast<std::uint32_t>(boards);

    const std::string engine_name = opt.get_string("engine", "grape-tree");
    auto engine = core::make_engine(engine_name, fp);

    // Optional hardware self-test before committing to a run.
    if (opt.get_bool("selftest", false)) {
      if (auto* gt = dynamic_cast<core::GrapeTreeEngine*>(engine.get())) {
        std::printf("%s", grape::run_selftest(gt->device().system()).str().c_str());
      } else if (auto* gd =
                     dynamic_cast<core::GrapeDirectEngine*>(engine.get())) {
        std::printf("%s", grape::run_selftest(gd->device().system()).str().c_str());
      } else {
        std::printf("--selftest: engine '%s' has no hardware attached\n",
                    engine_name.c_str());
      }
    }

    const auto steps = static_cast<std::uint64_t>(opt.get_int(
        "steps", ic.cosmological ? 48 : 100));

    std::printf(
        "g5run: N=%zu engine=%s backend=%s eps=%g theta=%g n_crit=%u "
        "steps=%llu\n",
        ic.pset.size(), engine->name().data(),
        std::string(grape::backend_name(fp.backend)).c_str(), fp.eps,
        fp.theta, fp.n_crit, static_cast<unsigned long long>(steps));

    core::SimulationSummary summary;
    if (ic.cosmological && opt.get_bool("comoving", false)) {
      if (!metrics_path.empty()) {
        std::fprintf(stderr, "g5run: --metrics is not available for "
                     "--comoving runs (no per-step record); ignoring\n");
      }
      const model::Cosmology cosmo(ic.cosmo_cfg.cosmo);
      core::ComovingSimulation::physical_to_comoving(ic.pset, cosmo,
                                                     ic.cosmo_meta.a_start);
      core::ForceParams cfp = fp;
      cfp.eps = fp.eps / ic.cosmo_meta.a_start;
      engine->set_params(cfp);
      core::ComovingConfig cc;
      cc.cosmo = ic.cosmo_cfg.cosmo;
      cc.a_start = ic.cosmo_meta.a_start;
      cc.steps = steps;
      cc.log_every = static_cast<std::uint64_t>(opt.get_int("log-every", 0));
      core::ComovingSimulation sim(*engine, cc);
      const auto cs = sim.run(ic.pset);
      core::ComovingSimulation::comoving_to_physical(ic.pset, cosmo, 1.0);
      summary.steps = cs.steps;
      summary.wall_seconds = cs.wall_seconds;
      summary.engine = cs.engine;
    } else {
      core::SimulationConfig sc;
      if (ic.cosmological) {
        const model::Cosmology cosmo(ic.cosmo_cfg.cosmo);
        sc.dt_schedule =
            cosmo.log_a_timesteps(ic.cosmo_meta.a_start, 1.0, steps);
      } else {
        sc.dt = opt.get_double("dt", ic.suggested_dt);
        sc.steps = steps;
      }
      sc.log_every = static_cast<std::uint64_t>(opt.get_int("log-every", 0));
      sc.snapshot_every =
          static_cast<std::uint64_t>(opt.get_int("snapshots", 0));
      sc.snapshot_prefix = opt.get_string("snapshot-prefix", "g5run");
      sc.stats_csv = opt.get_string("stats-csv", "");
      sc.metrics_jsonl = metrics_path;
      // The probe defaults to firing once, on the last step, when a
      // report is requested; --probe-every overrides for a time series.
      std::uint64_t probe_default = 0;
      if (!report_path.empty() && steps > 0) probe_default = steps;
      sc.probe_every = static_cast<std::uint64_t>(
          opt.get_int("probe-every", static_cast<int>(probe_default)));
      sc.probe_samples =
          static_cast<std::uint32_t>(opt.get_int("probe-samples", 64));
      sc.probe_seed = static_cast<std::uint64_t>(
          opt.get_int("probe-seed", 0x5eed));
      core::Simulation sim(*engine, sc);
      // Deliberate mid-step abort for exercising the post-mortem path
      // (the hook runs inside the step span, so the dump names it).
      const auto debug_crash = opt.get_int("debug-crash", 0);
      if (debug_crash > 0) {
        sim.set_step_hook(
            [debug_crash](std::uint64_t s, const model::ParticleSet&) {
              if (s == static_cast<std::uint64_t>(debug_crash)) {
                std::fprintf(stderr,
                             "g5run: --debug-crash aborting at step %llu\n",
                             static_cast<unsigned long long>(s));
                std::abort();
              }
            });
      }
      summary = sim.run(ic.pset);
      if (!metrics_path.empty()) std::printf("wrote %s\n", metrics_path.c_str());
    }

    util::Table t({"quantity", "value"});
    t.add_row({"steps", std::to_string(summary.steps)});
    t.add_row({"interactions",
               util::sci(static_cast<double>(summary.engine.interactions))});
    t.add_row({"interaction lists", std::to_string(summary.engine.groups)});
    t.add_row({"mean list length",
               util::sci(summary.engine.walk.mean_list())});
    t.add_row({"wall clock (measured)",
               util::human_seconds(summary.wall_seconds)});
    if (!ic.cosmological) {
      t.add_row({"relative energy drift", util::sci(summary.energy_drift)});
    }
    if (summary.grape.force_calls > 0) {
      t.add_row({"GRAPE-5 time (modeled)",
                 util::human_seconds(summary.grape.modeled_total())});
      t.add_row({"GRAPE-5 sustained (modeled)",
                 util::human_flops(summary.grape.flops() /
                                   summary.grape.modeled_total())});
    }
    t.print();

    if (timing) print_measured_timing(summary, fp, ic.pset.size());
    if (!timing_json.empty()) {
      write_timing_json(timing_json, summary, engine_name, ic.pset.size());
    }
    if (!report_path.empty()) {
      write_report(report_path, summary, engine_name, fp, ic.pset.size());
    }
    if (!trace_path.empty()) {
      obs::stop_trace();
      if (obs::write_trace(trace_path)) {
        std::printf("wrote %s (%zu events, %llu dropped) — open in "
                    "chrome://tracing or https://ui.perfetto.dev\n",
                    trace_path.c_str(), obs::trace_event_count(),
                    static_cast<unsigned long long>(obs::trace_dropped_count()));
      } else {
        std::fprintf(stderr, "g5run: cannot write trace to %s\n",
                     trace_path.c_str());
      }
    }

    if (opt.get_bool("analyze", false)) print_analysis(ic.pset);

    // Optional snapshot exports of the final state.
    if (opt.has("out")) {
      const std::string out_path = opt.get_string("out", "final.g5snap");
      core::write_snapshot(out_path, ic.pset, 0.0, fp.eps);
      std::printf("wrote %s\n", out_path.c_str());
    }
    if (opt.has("tipsy")) {
      const std::string out_path = opt.get_string("tipsy", "final.tipsy");
      core::write_snapshot_tipsy(out_path, ic.pset, 0.0, fp.eps);
      std::printf("wrote %s (TIPSY dark-only)\n", out_path.c_str());
    }
    // Orderly telemetry shutdown: one final sample after the run so the
    // exported files show the finished state, then close the endpoint.
    if (telemetry) {
      telemetry->stop();
      if (!status_path.empty()) std::printf("wrote %s\n", status_path.c_str());
      if (!prom_path.empty()) std::printf("wrote %s\n", prom_path.c_str());
    }
    if (http) http->stop();
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "g5run: %s\n", e.what());
    return 1;
  }
}
