#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "ic/plummer.hpp"

namespace {

using g5::ic::PlummerConfig;
using g5::ic::make_plummer;
using g5::math::Vec3d;

TEST(Plummer, TotalMassAndCount) {
  PlummerConfig cfg;
  cfg.n = 2000;
  const auto p = make_plummer(cfg);
  EXPECT_EQ(p.size(), 2000u);
  EXPECT_NEAR(p.total_mass(), 1.0, 1e-12);
}

TEST(Plummer, ExactlyCentered) {
  PlummerConfig cfg;
  cfg.n = 1000;
  const auto p = make_plummer(cfg);
  EXPECT_NEAR(p.center_of_mass().norm(), 0.0, 1e-12);
  EXPECT_NEAR(p.total_momentum().norm(), 0.0, 1e-12);
}

TEST(Plummer, DeterministicInSeed) {
  PlummerConfig a, b;
  a.n = b.n = 100;
  a.seed = b.seed = 5;
  const auto pa = make_plummer(a), pb = make_plummer(b);
  EXPECT_EQ(pa.pos()[50], pb.pos()[50]);
  b.seed = 6;
  const auto pc = make_plummer(b);
  EXPECT_NE(pa.pos()[50], pc.pos()[50]);
}

TEST(Plummer, HalfMassRadius) {
  // For the Plummer model r_half = b / sqrt(2^{2/3} - 1) ~ 1.3048 b.
  PlummerConfig cfg;
  cfg.n = 20000;
  const auto p = make_plummer(cfg);
  std::vector<double> radii(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) radii[i] = p.pos()[i].norm();
  std::nth_element(radii.begin(), radii.begin() + radii.size() / 2,
                   radii.end());
  const double r_half = radii[radii.size() / 2];
  const double expected = cfg.scale_length / std::sqrt(std::cbrt(4.0) - 1.0);
  EXPECT_NEAR(r_half, expected, 0.05 * expected);
}

TEST(Plummer, TruncationRadiusRespected) {
  PlummerConfig cfg;
  cfg.n = 5000;
  cfg.rmax_over_b = 5.0;
  const auto p = make_plummer(cfg);
  // Centering shifts things by O(1/sqrt(N)); allow a whisker.
  const double rmax = cfg.rmax_over_b * cfg.scale_length;
  for (const auto& pos : p.pos()) {
    EXPECT_LT(pos.norm(), rmax * 1.05);
  }
}

TEST(Plummer, SpeedsBelowEscape) {
  PlummerConfig cfg;
  cfg.n = 5000;
  const auto p = make_plummer(cfg);
  const double b = cfg.scale_length;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double r = p.pos()[i].norm();
    const double v_esc = std::sqrt(2.0) * std::pow(r * r + b * b, -0.25);
    // Mean-velocity subtraction can nudge a particle past v_esc slightly.
    EXPECT_LT(p.vel()[i].norm(), v_esc * 1.1) << i;
  }
}

TEST(Plummer, NearVirialEquilibrium) {
  // 2K/|W| ~ 1 for the sampled model. Kinetic energy of the full model is
  // K = -E_kin... for virial units with W = -3 pi/32 b: K = -W/2.
  PlummerConfig cfg;
  cfg.n = 20000;
  const auto p = make_plummer(cfg);
  const double w = g5::ic::plummer_potential_energy(1.0, cfg.scale_length);
  const double k = p.kinetic_energy();
  EXPECT_NEAR(2.0 * k / std::fabs(w), 1.0, 0.05);
}

TEST(Plummer, AnalyticPotentialEnergy) {
  // Standard virial units: b = 3 pi / 16 gives W = -1/2 and E = -1/4.
  EXPECT_NEAR(g5::ic::plummer_potential_energy(1.0, 3.0 * M_PI / 16.0), -0.5,
              1e-12);
}

TEST(Plummer, IsotropicVelocities) {
  PlummerConfig cfg;
  cfg.n = 20000;
  const auto p = make_plummer(cfg);
  Vec3d vsum2{};
  for (const auto& v : p.vel()) {
    vsum2 += Vec3d{v.x * v.x, v.y * v.y, v.z * v.z};
  }
  const double total = vsum2.x + vsum2.y + vsum2.z;
  EXPECT_NEAR(vsum2.x / total, 1.0 / 3.0, 0.02);
  EXPECT_NEAR(vsum2.y / total, 1.0 / 3.0, 0.02);
  EXPECT_NEAR(vsum2.z / total, 1.0 / 3.0, 0.02);
}

TEST(Plummer, Validation) {
  PlummerConfig cfg;
  cfg.n = 0;
  EXPECT_THROW(make_plummer(cfg), std::invalid_argument);
  cfg = PlummerConfig{};
  cfg.total_mass = -1.0;
  EXPECT_THROW(make_plummer(cfg), std::invalid_argument);
  cfg = PlummerConfig{};
  cfg.scale_length = 0.0;
  EXPECT_THROW(make_plummer(cfg), std::invalid_argument);
}

}  // namespace
