#include <gtest/gtest.h>

#include <cmath>

#include "ic/grf.hpp"

namespace {

using g5::ic::GaussianRandomField;
using g5::ic::GrfConfig;
using g5::ic::PowerSpectrum;
using g5::ic::PowerSpectrumParams;

GrfConfig small_cfg(std::uint64_t seed = 1) {
  GrfConfig cfg;
  cfg.grid_n = 16;
  cfg.box_size = 20.0;
  cfg.seed = seed;
  return cfg;
}

TEST(Grf, DeterministicInSeed) {
  const PowerSpectrum ps(PowerSpectrumParams{});
  const GaussianRandomField a(small_cfg(42), ps);
  const GaussianRandomField b(small_cfg(42), ps);
  const GaussianRandomField c(small_cfg(43), ps);
  EXPECT_DOUBLE_EQ(a.delta_at(3, 5, 7), b.delta_at(3, 5, 7));
  EXPECT_NE(a.delta_at(3, 5, 7), c.delta_at(3, 5, 7));
}

TEST(Grf, FieldIsReal) {
  const PowerSpectrum ps(PowerSpectrumParams{});
  const GaussianRandomField grf(small_cfg(), ps);
  const auto& grid = grf.density();
  double max_imag = 0.0, max_real = 0.0;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    max_imag = std::max(max_imag, std::fabs(grid.data()[i].imag()));
    max_real = std::max(max_real, std::fabs(grid.data()[i].real()));
  }
  EXPECT_GT(max_real, 0.0);
  EXPECT_LT(max_imag, 1e-10 * max_real);
}

TEST(Grf, ZeroMeanDensity) {
  const PowerSpectrum ps(PowerSpectrumParams{});
  const GaussianRandomField grf(small_cfg(), ps);
  const auto& grid = grf.density();
  double mean = 0.0;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    mean += grid.data()[i].real();
  }
  mean /= static_cast<double>(grid.size());
  EXPECT_NEAR(mean, 0.0, 1e-12);  // k=0 mode is zeroed exactly
}

TEST(Grf, ShellPowerMatchesInputSpectrum) {
  const PowerSpectrum ps(PowerSpectrumParams{});
  GrfConfig cfg;
  cfg.grid_n = 32;
  cfg.box_size = 64.0;
  // Average several realizations: each shell holds O(100) modes, so a
  // 3-seed average has ~6% statistical error on P(k).
  const double kf = 2.0 * M_PI / cfg.box_size;
  for (double k_center : {4.0 * kf, 8.0 * kf}) {
    double measured = 0.0;
    const int reals = 3;
    for (int s = 0; s < reals; ++s) {
      cfg.seed = 100 + static_cast<std::uint64_t>(s);
      const GaussianRandomField grf(cfg, ps);
      measured += grf.measured_power_in_shell(0.9 * k_center, 1.1 * k_center);
    }
    measured /= reals;
    const double expected = ps(k_center);
    EXPECT_NEAR(measured, expected, 0.35 * expected) << "k=" << k_center;
  }
}

TEST(Grf, VarianceMatchesModeSum) {
  // Parseval: the grid variance equals the sum of mode powers; in
  // expectation that is sum_k P(k)/V over the represented modes. A single
  // realization fluctuates (chi^2 statistics dominated by the few
  // large-scale modes), so allow a generous band around the expectation.
  const PowerSpectrum ps(PowerSpectrumParams{});
  GrfConfig cfg;
  cfg.grid_n = 32;
  cfg.box_size = 32.0;
  cfg.seed = 5;
  const GaussianRandomField grf(cfg, ps);
  const double var = grf.measured_variance();

  const double volume = std::pow(cfg.box_size, 3);
  const double kf = 2.0 * M_PI / cfg.box_size;
  double expected = 0.0;
  const std::size_t n = cfg.grid_n;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t k = 0; k < n; ++k) {
        if (i == 0 && j == 0 && k == 0) continue;
        const double kx = kf * static_cast<double>(g5::math::freq_index(i, n));
        const double ky = kf * static_cast<double>(g5::math::freq_index(j, n));
        const double kz = kf * static_cast<double>(g5::math::freq_index(k, n));
        expected += ps(std::sqrt(kx * kx + ky * ky + kz * kz)) / volume;
      }
    }
  }
  EXPECT_GT(var, 0.4 * expected);
  EXPECT_LT(var, 2.5 * expected);
}

TEST(Grf, DisplacementDivergenceIsMinusDelta) {
  // psi is built as ik/k^2 delta_k, so -div psi = delta exactly in the
  // discrete spectral sense; verify with a spectral derivative check on a
  // couple of grid points via central differences (loose tolerance: the
  // finite difference differs from the spectral derivative at high k).
  const PowerSpectrum ps(PowerSpectrumParams{});
  GrfConfig cfg;
  cfg.grid_n = 32;
  cfg.box_size = 32.0;
  cfg.seed = 9;
  const GaussianRandomField grf(cfg, ps);
  const std::size_t n = cfg.grid_n;
  const double h = cfg.box_size / static_cast<double>(n);

  double num = 0.0, den = 0.0;
  for (std::size_t i = 1; i < n - 1; i += 3) {
    for (std::size_t j = 1; j < n - 1; j += 3) {
      for (std::size_t k = 1; k < n - 1; k += 3) {
        const double div =
            (grf.psi_at(i + 1, j, k).x - grf.psi_at(i - 1, j, k).x +
             grf.psi_at(i, j + 1, k).y - grf.psi_at(i, j - 1, k).y +
             grf.psi_at(i, j, k + 1).z - grf.psi_at(i, j, k - 1).z) /
            (2.0 * h);
        const double delta = grf.delta_at(i, j, k);
        num += (div + delta) * (div + delta);
        den += delta * delta;
      }
    }
  }
  // Central differences resolve most of the spectral content on this grid.
  EXPECT_LT(std::sqrt(num / den), 0.5);
}

TEST(Grf, Validation) {
  const PowerSpectrum ps(PowerSpectrumParams{});
  GrfConfig bad;
  bad.grid_n = 12;
  EXPECT_THROW(GaussianRandomField(bad, ps), std::invalid_argument);
  bad = GrfConfig{};
  bad.box_size = -1.0;
  EXPECT_THROW(GaussianRandomField(bad, ps), std::invalid_argument);
}

}  // namespace
