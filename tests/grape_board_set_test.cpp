// BoardSet: j-sharding across B emulated boards (docs/scaling.md).
//
// The contracts pinned here:
//   * shard_share is the single block-sharding rule, and upload()
//     distributes ragged sets exactly as it predicts;
//   * capacity overruns raise JmemCapacityError with the offending
//     board / requested / capacity fields (aggregate checks use
//     kAggregate);
//   * the integer-domain reduction makes results bitwise-identical
//     across board counts AND chunk boundaries, for both backends;
//   * a capacity error on the AsyncDevice submitter poisons the device
//     like any other hardware fault.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "grape/async_device.hpp"
#include "grape/board_set.hpp"
#include "grape/driver.hpp"
#include "grape/system.hpp"
#include "ic/uniform.hpp"

namespace {

using namespace g5;
using grape::AsyncDevice;
using grape::BackendKind;
using grape::BoardSet;
using grape::ForceJob;
using grape::Grape5Device;
using grape::Grape5System;
using grape::JmemCapacityError;
using grape::SystemConfig;
using grape::Vec3d;

SystemConfig small_config(std::size_t boards, std::size_t jmem,
                          BackendKind backend = BackendKind::BitExact) {
  SystemConfig cfg;
  cfg.boards = boards;
  cfg.board.jmem_capacity = jmem;
  cfg.numerics.backend = backend;
  return cfg;
}

// The sharding rule itself is a compile-time function.
static_assert(grape::shard_share(10, 4) == 3);
static_assert(grape::shard_share(12, 4) == 3);
static_assert(grape::shard_share(1, 4) == 1);
static_assert(grape::shard_share(0, 4) == 0);
static_assert(grape::shard_share(7, 1) == 7);

TEST(BoardSet, RaggedUploadFollowsShardShare) {
  // nj = 10 over B = 4: shares of ceil(10/4) = 3 -> {3, 3, 3, 1}.
  const auto src = ic::make_uniform_cube(10, -1.0, 1.0, 1.0, 5);
  Grape5System sys(small_config(4, 16));
  sys.set_range(-2.0, 2.0, 0.01, 0.1);
  sys.set_j_particles(src.pos(), src.mass());

  BoardSet& set = sys.board_set();
  EXPECT_EQ(set.size(), 4u);
  EXPECT_EQ(set.resident_j(), 10u);
  EXPECT_EQ(set.board_j(0), 3u);
  EXPECT_EQ(set.board_j(1), 3u);
  EXPECT_EQ(set.board_j(2), 3u);
  EXPECT_EQ(set.board_j(3), 1u);
  EXPECT_EQ(set.board(3).j_count(), 1u);
}

TEST(BoardSet, UploadAtExactCapacitySucceeds) {
  const auto src = ic::make_uniform_cube(64, -1.0, 1.0, 1.0, 11);
  Grape5System sys(small_config(2, 32));
  sys.set_range(-2.0, 2.0, 0.01, 1.0 / 64.0);
  EXPECT_NO_THROW(sys.set_j_particles(src.pos(), src.mass()));
  EXPECT_EQ(sys.board_set().board_j(0), 32u);
  EXPECT_EQ(sys.board_set().board_j(1), 32u);
}

TEST(BoardSet, AggregateOverCapacityThrowsTypedError) {
  const auto src = ic::make_uniform_cube(65, -1.0, 1.0, 1.0, 11);
  Grape5System sys(small_config(2, 32));
  sys.set_range(-2.0, 2.0, 0.01, 1.0 / 65.0);
  try {
    sys.set_j_particles(src.pos(), src.mass());
    FAIL() << "expected JmemCapacityError";
  } catch (const JmemCapacityError& e) {
    EXPECT_EQ(e.board(), JmemCapacityError::kAggregate);
    EXPECT_EQ(e.requested(), 65u);
    EXPECT_EQ(e.capacity(), 64u);
  }
  // The historical contract still holds for callers catching the base.
  EXPECT_THROW(sys.set_j_particles(src.pos(), src.mass()), std::out_of_range);
}

TEST(BoardSet, SingleBoardOverCapacityReportsBoardIndex) {
  const auto src = ic::make_uniform_cube(40, -1.0, 1.0, 1.0, 13);
  Grape5System sys(small_config(2, 32));
  sys.set_range(-2.0, 2.0, 0.01, 1.0 / 40.0);
  try {
    sys.board(1).set_j(0, src.pos().data(), src.mass().data(), 40);
    FAIL() << "expected JmemCapacityError";
  } catch (const JmemCapacityError& e) {
    EXPECT_EQ(e.board(), 1u);
    EXPECT_EQ(e.requested(), 40u);
    EXPECT_EQ(e.capacity(), 32u);
  }
}

/// Forces with a given board count, on a fresh system; `nj_cap` sets the
/// per-board memory so the whole set stays resident.
void forces_with_boards(const model::ParticleSet& src, std::size_t boards,
                        BackendKind backend, std::size_t ni,
                        std::vector<Vec3d>& acc, std::vector<double>& pot) {
  Grape5System sys(small_config(boards, 4096, backend));
  sys.set_range(-2.0, 2.0, 0.02, src.mass()[0]);
  sys.set_j_particles(src.pos(), src.mass());
  acc.assign(ni, Vec3d{});
  pot.assign(ni, 0.0);
  sys.compute(std::span<const Vec3d>(src.pos().data(), ni), acc, pot);
}

class BoardSetBackend : public ::testing::TestWithParam<BackendKind> {};

TEST_P(BoardSetBackend, BoardCountIsBitwiseInvariant) {
  // The tentpole determinism claim: the integer-domain reduction makes
  // B = 1, 3 and 4 produce byte-identical forces (not merely close).
  // 333 over 4 boards also exercises a ragged final shard.
  const auto src = ic::make_uniform_cube(333, -1.0, 1.0, 1.0, 7);
  constexpr std::size_t kNi = 48;
  std::vector<Vec3d> acc1, accb;
  std::vector<double> pot1, potb;
  forces_with_boards(src, 1, GetParam(), kNi, acc1, pot1);
  for (const std::size_t boards : {3u, 4u}) {
    forces_with_boards(src, boards, GetParam(), kNi, accb, potb);
    for (std::size_t i = 0; i < kNi; ++i) {
      EXPECT_EQ(acc1[i].x, accb[i].x) << "B=" << boards << " i=" << i;
      EXPECT_EQ(acc1[i].y, accb[i].y) << "B=" << boards << " i=" << i;
      EXPECT_EQ(acc1[i].z, accb[i].z) << "B=" << boards << " i=" << i;
      EXPECT_EQ(pot1[i], potb[i]) << "B=" << boards << " i=" << i;
    }
  }
}

TEST_P(BoardSetBackend, ChunkedEvaluationIsBitwiseInvariant) {
  // Same j-list through one resident upload vs forced host-side
  // chunking (tiny particle memory): the driver accumulates raw counts
  // across chunks, so the chunk seams must not show either.
  const auto src = ic::make_uniform_cube(300, -1.0, 1.0, 1.0, 17);
  constexpr std::size_t kNi = 32;
  const std::span<const Vec3d> targets(src.pos().data(), kNi);

  Grape5Device resident(small_config(2, 4096, GetParam()));
  resident.set_range(-2.0, 2.0, src.mass()[0]);
  resident.set_eps(0.02);
  std::vector<Vec3d> acc_res(kNi);
  std::vector<double> pot_res(kNi);
  resident.compute_forces_chunked(targets, src.pos(), src.mass(), acc_res,
                                  pot_res);

  Grape5Device chunked(small_config(2, 32, GetParam()));  // cap 64 -> 5 chunks
  chunked.set_range(-2.0, 2.0, src.mass()[0]);
  chunked.set_eps(0.02);
  std::vector<Vec3d> acc_chk(kNi);
  std::vector<double> pot_chk(kNi);
  chunked.compute_forces_chunked(targets, src.pos(), src.mass(), acc_chk,
                                 pot_chk);

  for (std::size_t i = 0; i < kNi; ++i) {
    EXPECT_EQ(acc_res[i].x, acc_chk[i].x) << i;
    EXPECT_EQ(acc_res[i].y, acc_chk[i].y) << i;
    EXPECT_EQ(acc_res[i].z, acc_chk[i].z) << i;
    EXPECT_EQ(pot_res[i], pot_chk[i]) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, BoardSetBackend,
                         ::testing::Values(BackendKind::BitExact,
                                           BackendKind::Native),
                         [](const auto& info) {
                           return info.param == BackendKind::Native
                                      ? "Native"
                                      : "BitExact";
                         });

TEST(BoardSet, EvalPoolMatchesSerialBitwise) {
  // Board-parallel evaluation merges the same integer counts in the
  // same order as the serial loop — byte-identical outputs.
  const auto src = ic::make_uniform_cube(256, -1.0, 1.0, 1.0, 23);
  constexpr std::size_t kNi = 40;
  const std::span<const Vec3d> targets(src.pos().data(), kNi);

  Grape5System serial(small_config(4, 1024));
  serial.set_range(-2.0, 2.0, 0.02, src.mass()[0]);
  serial.set_j_particles(src.pos(), src.mass());
  std::vector<Vec3d> acc_s(kNi);
  std::vector<double> pot_s(kNi);
  serial.compute(targets, acc_s, pot_s);

  Grape5System parallel(small_config(4, 1024));
  util::ThreadPool pool(4);
  parallel.set_eval_pool(&pool);
  parallel.set_range(-2.0, 2.0, 0.02, src.mass()[0]);
  parallel.set_j_particles(src.pos(), src.mass());
  std::vector<Vec3d> acc_p(kNi);
  std::vector<double> pot_p(kNi);
  parallel.compute(targets, acc_p, pot_p);
  parallel.set_eval_pool(nullptr);

  for (std::size_t i = 0; i < kNi; ++i) {
    EXPECT_EQ(acc_s[i].x, acc_p[i].x) << i;
    EXPECT_EQ(acc_s[i].y, acc_p[i].y) << i;
    EXPECT_EQ(acc_s[i].z, acc_p[i].z) << i;
    EXPECT_EQ(pot_s[i], pot_p[i]) << i;
  }
}

TEST(BoardSet, CapacityErrorPoisonsAsyncDevice) {
  // A require_resident job whose list exceeds the particle memory must
  // fail the job on the submitter thread and poison the AsyncDevice:
  // failed() flips, and the error rethrows (typed) on drain().
  const auto src = ic::make_uniform_cube(100, -1.0, 1.0, 1.0, 29);
  auto device = std::make_shared<Grape5Device>(small_config(2, 32));
  device->set_range(-2.0, 2.0, src.mass()[0]);
  device->set_eps(0.02);

  AsyncDevice async(device);
  constexpr std::size_t kNi = 8;
  std::vector<Vec3d> acc(kNi);
  std::vector<double> pot(kNi);
  ForceJob job;
  job.i_pos = std::span<const Vec3d>(src.pos().data(), kNi);
  job.j_pos = src.pos();    // 100 > 64 aggregate capacity
  job.j_mass = src.mass();
  job.acc = acc;
  job.pot = pot;
  job.require_resident = true;
  async.submit(job);
  EXPECT_THROW(async.drain(), JmemCapacityError);
  EXPECT_TRUE(async.failed());

  // Poisoned for good: later jobs complete without running and the
  // first error keeps rethrowing.
  ForceJob ok = job;
  ok.j_pos = std::span<const Vec3d>(src.pos().data(), 16);
  ok.j_mass = std::span<const double>(src.mass().data(), 16);
  async.submit(ok);
  EXPECT_THROW(async.drain(), JmemCapacityError);
}

TEST(BoardSet, ResidentJobWithinCapacityRuns) {
  // The same require_resident path succeeds when the list fits, and
  // matches the synchronous device bitwise.
  const auto src = ic::make_uniform_cube(60, -1.0, 1.0, 1.0, 31);
  auto device = std::make_shared<Grape5Device>(small_config(2, 32));
  device->set_range(-2.0, 2.0, src.mass()[0]);
  device->set_eps(0.02);

  constexpr std::size_t kNi = 8;
  std::vector<Vec3d> acc(kNi);
  std::vector<double> pot(kNi);
  {
    AsyncDevice async(device);
    ForceJob job;
    job.i_pos = std::span<const Vec3d>(src.pos().data(), kNi);
    job.j_pos = src.pos();
    job.j_mass = src.mass();
    job.acc = acc;
    job.pot = pot;
    job.require_resident = true;
    async.submit(job);
    async.drain();
    EXPECT_FALSE(async.failed());
    EXPECT_EQ(job.interactions, 60u * kNi);
  }

  Grape5Device reference(small_config(2, 32));
  reference.set_range(-2.0, 2.0, src.mass()[0]);
  reference.set_eps(0.02);
  reference.set_j(src.pos(), src.mass());
  std::vector<Vec3d> ref_acc(kNi);
  std::vector<double> ref_pot(kNi);
  reference.compute_forces(std::span<const Vec3d>(src.pos().data(), kNi),
                           ref_acc, ref_pot);
  for (std::size_t i = 0; i < kNi; ++i) {
    EXPECT_EQ(acc[i].x, ref_acc[i].x) << i;
    EXPECT_EQ(pot[i], ref_pot[i]) << i;
  }
}

TEST(BoardSet, ConfigureDropsResidentShards) {
  const auto src = ic::make_uniform_cube(20, -1.0, 1.0, 1.0, 37);
  Grape5System sys(small_config(2, 32));
  sys.set_range(-2.0, 2.0, 0.01, 1.0 / 20.0);
  sys.set_j_particles(src.pos(), src.mass());
  EXPECT_EQ(sys.resident_j(), 20u);
  // A new window invalidates the stored words; the set must be empty.
  sys.set_range(-4.0, 4.0, 0.01, 1.0 / 20.0);
  EXPECT_EQ(sys.resident_j(), 0u);
  EXPECT_EQ(sys.board_set().board_j(0), 0u);
}

}  // namespace
