// Golden regression pins: exact workload numbers for fixed seeds and
// configurations. Everything here is deterministic, so any change is a
// *behavioral* change to the IC generator, the tree build or the walks —
// if one of these fails after an intentional algorithm change, re-derive
// the constants (tools: see the construction below) and note the change.
#include <gtest/gtest.h>

#include "ic/plummer.hpp"
#include "ic/zeldovich.hpp"
#include "tree/groupwalk.hpp"

namespace {

using namespace g5;

TEST(GoldenRegression, CosmologicalSphereWorkload) {
  ic::CosmologicalSphereConfig cc;
  cc.grid_n = 16;
  cc.seed = 1999;
  const auto icr = ic::make_cosmological_sphere(cc);
  EXPECT_EQ(icr.particles.size(), 1568u);

  tree::BhTree tree;
  tree.build(icr.particles);
  EXPECT_EQ(tree.node_count(), 596u);

  tree::WalkStats mod, orig;
  for (const auto& g : tree::collect_groups(tree, tree::GroupConfig{256})) {
    tree::count_group(tree, g, {0.75}, &mod);
  }
  for (std::size_t i = 0; i < icr.particles.size(); ++i) {
    tree::count_original(tree, tree.sorted_pos()[i], {0.75}, &orig);
  }
  EXPECT_EQ(mod.lists, 8u);
  EXPECT_EQ(mod.interactions, 1530516u);
  EXPECT_EQ(mod.list_entries, 7779u);
  EXPECT_EQ(orig.interactions, 221928u);
  // The ratio the paper's Section 5 correction is about: ~6.9 on this
  // unevolved snapshot.
  EXPECT_NEAR(static_cast<double>(mod.interactions) /
                  static_cast<double>(orig.interactions),
              6.90, 0.01);
}

TEST(GoldenRegression, PlummerWalkWorkload) {
  const auto p = ic::make_plummer(ic::PlummerConfig{.n = 2000, .seed = 12345});
  tree::BhTree tree;
  tree.build(p);
  EXPECT_EQ(tree.node_count(), 893u);

  tree::WalkStats mod;
  for (const auto& g : tree::collect_groups(tree, tree::GroupConfig{128})) {
    tree::count_group(tree, g, {0.75}, &mod);
  }
  EXPECT_EQ(mod.interactions, 1761938u);
  EXPECT_EQ(mod.list_entries, 53189u);
  EXPECT_EQ(mod.nodes_visited, 36214u);
  EXPECT_EQ(mod.max_list, 1996u);
}

TEST(GoldenRegression, IcPositionsStable) {
  // Spot values: the RNG stream, the FFT and the Zel'dovich mapping all
  // feed these coordinates; any change shows up here first.
  ic::CosmologicalSphereConfig cc;
  cc.grid_n = 8;
  cc.seed = 7;
  const auto icr = ic::make_cosmological_sphere(cc);
  ASSERT_GT(icr.particles.size(), 10u);
  const auto& p0 = icr.particles.pos()[0];
  const auto p0_again = ic::make_cosmological_sphere(cc).particles.pos()[0];
  EXPECT_EQ(p0, p0_again);

  const auto plummer = ic::make_plummer(ic::PlummerConfig{.n = 8, .seed = 1});
  const auto again = ic::make_plummer(ic::PlummerConfig{.n = 8, .seed = 1});
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(plummer.pos()[i], again.pos()[i]);
  }
}

}  // namespace
