// Edge cases and small API surfaces not covered elsewhere.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/engines.hpp"
#include "core/render.hpp"
#include "core/snapshot.hpp"
#include "grape/selftest.hpp"
#include "ic/plummer.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

namespace {

using namespace g5;
using math::Vec3d;

TEST(SnapshotAscii, ContentParsesBack) {
  model::ParticleSet p;
  p.add(Vec3d{1.5, -2.5, 3.5}, Vec3d{0.1, 0.2, 0.3}, 4.5);
  const auto path =
      (std::filesystem::temp_directory_path() / "g5_ascii_check.txt").string();
  core::write_snapshot_ascii(path, p, 7.0);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);  // header 1
  EXPECT_NE(line.find("n=1"), std::string::npos);
  std::getline(in, line);  // header 2
  std::getline(in, line);  // data row
  std::istringstream row(line);
  unsigned long long id;
  double x, y, z, vx, vy, vz, m;
  row >> id >> x >> y >> z >> vx >> vy >> vz >> m;
  EXPECT_EQ(id, 0u);
  EXPECT_DOUBLE_EQ(x, 1.5);
  EXPECT_DOUBLE_EQ(vy, 0.2);
  EXPECT_DOUBLE_EQ(m, 4.5);
  std::filesystem::remove(path);
}

TEST(SlabImage, EmptySetRenders) {
  model::ParticleSet empty;
  const core::SlabImage img(core::SlabConfig{}, empty);
  EXPECT_EQ(img.particles_in_slab(), 0u);
  EXPECT_EQ(img.peak_count(), 0u);
  const std::string art = img.ascii();
  EXPECT_FALSE(art.empty());
  // All blank.
  for (char c : art) EXPECT_TRUE(c == ' ' || c == '\n');
}

TEST(Options, KeysEnumerated) {
  const char* argv[] = {"prog", "--b=2", "--a=1"};
  util::Options opt(3, argv);
  const auto keys = opt.keys();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "a");  // map order: sorted
  EXPECT_EQ(keys[1], "b");
  EXPECT_TRUE(opt.has("a"));
  EXPECT_FALSE(opt.has("c"));
}

TEST(Table, RowCountAndEmptyHeaderRejected) {
  util::Table t({"x"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_THROW(util::Table{std::vector<std::string>{}},
               std::invalid_argument);
}

TEST(SelfTestReport, StringContainsPerBoardLines) {
  grape::SystemConfig cfg;
  cfg.board.jmem_capacity = 1024;
  grape::Grape5System sys(cfg);
  const auto report = grape::run_selftest(sys);
  const std::string s = report.str();
  EXPECT_NE(s.find("board 0"), std::string::npos);
  EXPECT_NE(s.find("board 1"), std::string::npos);
}

TEST(EngineParams, SetParamsTakesEffect) {
  // Large enough N that the list length is far from the all-N ceiling.
  auto pset = ic::make_plummer(ic::PlummerConfig{.n = 4096, .seed = 3});
  core::HostTreeEngine engine(
      core::ForceParams{.eps = 0.01, .theta = 1.2, .n_crit = 32},
      core::HostTreeEngine::Mode::Modified);
  engine.compute(pset);
  const auto loose = engine.stats().interactions;
  engine.reset_stats();
  auto p = engine.params();
  p.theta = 0.25;  // much tighter: far more interactions
  engine.set_params(p);
  engine.compute(pset);
  EXPECT_GT(engine.stats().interactions, 2 * loose);
}

TEST(EngineStats, PhaseTimingsOrdered) {
  auto pset = ic::make_plummer(ic::PlummerConfig{.n = 512, .seed = 5});
  core::HostTreeEngine engine(
      core::ForceParams{.eps = 0.01, .theta = 0.6, .n_crit = 64},
      core::HostTreeEngine::Mode::Modified);
  engine.compute(pset);
  const auto& s = engine.stats();
  EXPECT_GT(s.seconds_tree_build, 0.0);
  EXPECT_GT(s.seconds_walk, 0.0);
  EXPECT_GT(s.seconds_kernel, 0.0);
  EXPECT_GE(s.seconds_total,
            0.9 * (s.seconds_tree_build + s.seconds_walk + s.seconds_kernel));
}

TEST(Aabb, DegenerateBox) {
  model::ParticleSet p;
  p.add(Vec3d{2.0, 2.0, 2.0}, Vec3d{}, 1.0);
  const auto box = p.bounding_box();
  EXPECT_EQ(box.lo, box.hi);
  EXPECT_DOUBLE_EQ(box.cube_size(), 0.0);
  EXPECT_TRUE(box.contains(Vec3d{2.0, 2.0, 2.0}));
}

TEST(GrapeTree, TwoParticleSystem) {
  // Smallest nontrivial system through the full grape-tree path.
  model::ParticleSet p;
  p.add(Vec3d{0.5, 0.0, 0.0}, Vec3d{}, 1.0);
  p.add(Vec3d{-0.5, 0.0, 0.0}, Vec3d{}, 1.0);
  auto engine = core::make_engine(
      "grape-tree", core::ForceParams{.eps = 0.0, .theta = 0.75});
  engine->compute(p);
  // |a| = 1/d^2 = 1 toward each other.
  EXPECT_NEAR(p.acc()[0].x, -1.0, 0.02);
  EXPECT_NEAR(p.acc()[1].x, 1.0, 0.02);
  EXPECT_NEAR(p.pot()[0], -1.0, 0.02);
}

TEST(GrapeTree, SingleParticleNoForce) {
  model::ParticleSet p;
  p.add(Vec3d{1.0, 2.0, 3.0}, Vec3d{}, 5.0);
  auto engine = core::make_engine(
      "grape-tree", core::ForceParams{.eps = 0.01});
  engine->compute(p);
  EXPECT_EQ(p.acc()[0], (Vec3d{}));
  EXPECT_NEAR(p.pot()[0], 0.0, 1e-9);
}

}  // namespace
