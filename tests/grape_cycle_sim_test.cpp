// The discrete-event cycle simulation must agree with the analytic
// TimingModel up to the per-pass drain latency, and expose the effects
// the closed form abstracts away.
#include <gtest/gtest.h>

#include <cmath>

#include "grape/cycle_sim.hpp"
#include "grape/timing.hpp"

namespace {

using namespace g5::grape;

TEST(CycleSim, MatchesAnalyticModelForLongStreams) {
  const SystemConfig cfg = SystemConfig::paper_system();
  const TimingModel model(cfg);
  for (const auto& [ni, nj] :
       std::initializer_list<std::pair<std::size_t, std::size_t>>{
           {96, 100000}, {2000, 16384}, {192, 50000}, {500, 8192}}) {
    const auto sim = simulate_system_call(cfg, ni, nj);
    const double analytic =
        model.board_compute_time(ni, model.j_per_board(nj));
    // Drain latency adds ~4 memory cycles per pass; relative effect < 1 %
    // for these stream lengths.
    EXPECT_NEAR(sim.seconds, analytic, 0.01 * analytic)
        << "ni=" << ni << " nj=" << nj;
    EXPECT_GE(sim.seconds, analytic);  // the simulation is never faster
  }
}

TEST(CycleSim, InteractionCountExact) {
  const SystemConfig cfg = SystemConfig::paper_system();
  const auto sim = simulate_system_call(cfg, 777, 12345);
  EXPECT_EQ(sim.interactions, 777ull * 12345ull);
}

TEST(CycleSim, FullSlotsReachNearPeak) {
  const SystemConfig cfg = SystemConfig::paper_system();
  const auto sim = simulate_system_call(cfg, 96, 100000);
  EXPECT_GT(sim.utilization, 0.99);
  EXPECT_EQ(sim.passes, 1u);
  EXPECT_EQ(sim.idle_slot_cycles, 0u);
}

TEST(CycleSim, PartialFillWastesSlots) {
  const SystemConfig cfg = SystemConfig::paper_system();
  // 97 i on 96 slots: second pass nearly empty.
  const auto sim = simulate_board_call(cfg.board, 97, 10000);
  EXPECT_EQ(sim.passes, 2u);
  EXPECT_GT(sim.idle_slot_cycles, 90ull * 10000ull);
  EXPECT_LT(sim.utilization, 0.52);
}

TEST(CycleSim, ShortListsPayTheDrain) {
  // The closed form ignores pipeline fill/drain; for very short j-lists
  // the simulation shows the cost: utilization drops even at full slots.
  const SystemConfig cfg = SystemConfig::paper_system();
  const auto longcall = simulate_board_call(cfg.board, 96, 10000);
  const auto shortcall = simulate_board_call(cfg.board, 96, 16);
  EXPECT_GT(longcall.utilization, 0.99);
  EXPECT_LT(shortcall.utilization, 0.85);
}

TEST(CycleSim, EmptyCallsAreFree) {
  const SystemConfig cfg = SystemConfig::paper_system();
  EXPECT_EQ(simulate_system_call(cfg, 0, 100).seconds, 0.0);
  EXPECT_EQ(simulate_system_call(cfg, 100, 0).seconds, 0.0);
}

TEST(CycleSim, PipelineCyclesAreVmpMultiple) {
  const SystemConfig cfg = SystemConfig::paper_system();
  const auto sim = simulate_board_call(cfg.board, 96, 1000);
  EXPECT_EQ(sim.pipeline_cycles, sim.memory_cycles * cfg.board.vmp_factor);
}

TEST(CycleSim, PaperScaleGroupCall) {
  // The paper's typical treecode call: n_g = 2000 against a 13431-entry
  // list. The cycle simulation should match the E2/E5 modeled sustained
  // fraction (~70 % of compute-only peak).
  const SystemConfig cfg = SystemConfig::paper_system();
  const auto sim = simulate_system_call(cfg, 2000, 13431);
  EXPECT_GT(sim.utilization, 0.6);
  EXPECT_LT(sim.utilization, 1.0);
}

}  // namespace
