#include <gtest/gtest.h>

#include <cmath>

#include "core/comoving.hpp"
#include "core/engines.hpp"
#include "ic/zeldovich.hpp"
#include "model/units.hpp"

namespace {

using namespace g5;
using core::ComovingConfig;
using core::ComovingSimulation;
using core::ForceParams;
using math::Vec3d;
using model::Cosmology;
using model::CosmologyParams;

TEST(Cosmology, KickDriftFactorsEdsClosedForm) {
  // EdS: H = H0 a^{-3/2}.
  //   kick  = int da/(a^2 H) = [2 sqrt(a)/ (2... ] -> (2/H0)(a2^0.5-a1^0.5)/1
  //   Actually int a^{-1/2} da / H0 = (2/H0)(sqrt(a2)-sqrt(a1)).
  //   drift = int a^{-3/2} da / H0 = (2/H0)(1/sqrt(a1)-1/sqrt(a2)).
  const Cosmology cosmo(CosmologyParams::scdm());
  const double h0 = cosmo.hubble0();
  const double a1 = 0.04, a2 = 0.16;
  EXPECT_NEAR(cosmo.kick_factor(a1, a2),
              2.0 / h0 * (std::sqrt(a2) - std::sqrt(a1)), 1e-9 / h0);
  EXPECT_NEAR(cosmo.drift_factor(a1, a2),
              2.0 / h0 * (1.0 / std::sqrt(a1) - 1.0 / std::sqrt(a2)),
              1e-9 / h0);
  EXPECT_DOUBLE_EQ(cosmo.kick_factor(a1, a1), 0.0);
  EXPECT_THROW((void)cosmo.kick_factor(0.2, 0.1), std::invalid_argument);
}

TEST(Cosmology, BackgroundCoefficientSigns) {
  const Cosmology eds(CosmologyParams::scdm());
  // Matter-only: C = 0.5 Om H0^2 > 0 at all a.
  EXPECT_NEAR(eds.comoving_background_coefficient(0.5),
              0.5 * eds.hubble0() * eds.hubble0(), 1e-12);
  // Lambda flips the sign once a^3 > Om / (2 Ol).
  const Cosmology lcdm(CosmologyParams{0.3, 0.7, 0.7});
  EXPECT_GT(lcdm.comoving_background_coefficient(0.1), 0.0);
  EXPECT_LT(lcdm.comoving_background_coefficient(1.0), 0.0);
}

TEST(Comoving, ConversionRoundTrip) {
  const Cosmology cosmo(CosmologyParams::scdm());
  model::ParticleSet pset;
  pset.add(Vec3d{1.0, -2.0, 0.5}, Vec3d{0.3, 0.1, -0.2}, 1.0);
  pset.add(Vec3d{-0.4, 0.9, 2.0}, Vec3d{-0.1, 0.0, 0.4}, 2.0);
  const auto pos0 = pset.pos();
  const auto vel0 = pset.vel();
  const double a = 0.25;
  ComovingSimulation::physical_to_comoving(pset, cosmo, a);
  ComovingSimulation::comoving_to_physical(pset, cosmo, a);
  for (std::size_t i = 0; i < pset.size(); ++i) {
    EXPECT_LT((pset.pos()[i] - pos0[i]).norm(), 1e-12);
    EXPECT_LT((pset.vel()[i] - vel0[i]).norm(), 1e-12);
  }
}

TEST(Comoving, PureHubbleFlowIsStationary) {
  // An unperturbed region in pure Hubble flow has zero peculiar motion:
  // comoving positions stay put (up to discreteness noise near the edge).
  // Use a Zel'dovich sphere with near-zero fluctuation amplitude.
  ic::CosmologicalSphereConfig cc;
  cc.grid_n = 8;
  cc.power.sigma8 = 1e-6;  // essentially unperturbed
  cc.seed = 3;
  const auto icr = ic::make_cosmological_sphere(cc);
  model::ParticleSet pset = icr.particles;
  const double G = model::gravitational_constant();
  for (auto& m : pset.mass()) m *= G;

  const Cosmology cosmo(CosmologyParams::scdm());
  ComovingSimulation::physical_to_comoving(pset, cosmo, icr.a_start);

  ForceParams fp;
  fp.eps = 0.1;  // comoving
  fp.theta = 0.4;
  fp.n_crit = 64;
  core::HostTreeEngine engine(fp, core::HostTreeEngine::Mode::Modified);

  ComovingConfig cfg;
  cfg.a_start = icr.a_start;
  cfg.a_end = 0.2;  // 5x expansion
  cfg.steps = 24;
  ComovingSimulation sim(engine, cfg);
  const auto s = sim.run(pset);

  // Comoving displacement stays a small fraction of the lattice spacing
  // (the background term cancels the sphere's own mean-field pull; only
  // edge effects and discreteness remain).
  const double spacing = icr.box_size / 8.0;
  EXPECT_LT(s.rms_comoving_displacement, 0.2 * spacing);
}

TEST(Comoving, LinearGrowthFollowsGrowthFactor) {
  // With real fluctuations, comoving displacements from the lattice grow
  // as D(a) in the linear regime: evolving a_i -> 4 a_i should scale the
  // rms displacement by ~4 (EdS), within discreteness/nonlinearity slack.
  ic::CosmologicalSphereConfig cc;
  cc.grid_n = 12;  // rounded up to 16 by the caller normally; use 16
  cc.grid_n = 16;
  cc.seed = 17;
  const auto icr = ic::make_cosmological_sphere(cc);
  model::ParticleSet pset = icr.particles;
  const double G = model::gravitational_constant();
  for (auto& m : pset.mass()) m *= G;

  const Cosmology cosmo(CosmologyParams::scdm());
  ComovingSimulation::physical_to_comoving(pset, cosmo, icr.a_start);
  const double rms0 = icr.rms_displacement * icr.growth_start / 0.04;

  ForceParams fp;
  fp.eps = 0.05 * icr.box_size / 16.0;
  fp.theta = 0.5;
  fp.n_crit = 64;
  core::HostTreeEngine engine(fp, core::HostTreeEngine::Mode::Modified);

  ComovingConfig cfg;
  cfg.a_start = icr.a_start;
  cfg.a_end = 4.0 * icr.a_start;
  cfg.steps = 32;
  ComovingSimulation sim(engine, cfg);
  const auto s = sim.run(pset);

  // Displacement *change* over the run ~ (D(a_end) - D(a_start)) * psi_rms
  // = 3 * rms0 for EdS. Allow a broad band: the realization has shot noise
  // and mild nonlinearity.
  const double expected_growth = 3.0 * rms0;
  EXPECT_GT(s.rms_comoving_displacement, 0.5 * expected_growth);
  EXPECT_LT(s.rms_comoving_displacement, 2.0 * expected_growth);
}

TEST(Comoving, LcdmGrowthFollowsGrowthFactor) {
  // Generality check: in flat LCDM the linear displacement growth follows
  // D(a) (which is NOT proportional to a); run a_i -> 8 a_i and compare.
  CosmologyParams lcdm{0.3, 0.7, 0.7};
  ic::CosmologicalSphereConfig cc;
  cc.grid_n = 16;
  cc.seed = 23;
  cc.cosmo = lcdm;
  const auto icr = ic::make_cosmological_sphere(cc);
  model::ParticleSet pset = icr.particles;
  const double G = model::gravitational_constant();
  for (auto& m : pset.mass()) m *= G;

  const Cosmology cosmo(lcdm);
  ComovingSimulation::physical_to_comoving(pset, cosmo, icr.a_start);
  // z = 24 displacement amplitude the IC generator applied.
  const double rms0 =
      icr.rms_displacement / icr.growth_start * cosmo.growth_factor(0.04);
  (void)rms0;

  ForceParams fp;
  fp.eps = 0.05 * icr.box_size / 16.0;
  fp.theta = 0.5;
  fp.n_crit = 64;
  core::HostTreeEngine engine(fp, core::HostTreeEngine::Mode::Modified);

  ComovingConfig cfg;
  cfg.cosmo = lcdm;
  cfg.a_start = icr.a_start;
  cfg.a_end = 8.0 * icr.a_start;  // still linear at these amplitudes
  cfg.steps = 48;
  ComovingSimulation sim(engine, cfg);
  const auto s = sim.run(pset);

  const double d_start = cosmo.growth_factor(cfg.a_start);
  const double d_end = cosmo.growth_factor(cfg.a_end);
  const double psi_rms = icr.rms_displacement / icr.growth_start;
  const double expected = (d_end - d_start) * psi_rms;
  EXPECT_GT(s.rms_comoving_displacement, 0.5 * expected);
  EXPECT_LT(s.rms_comoving_displacement, 2.0 * expected);
}

TEST(Comoving, Validation) {
  core::HostDirectEngine engine((ForceParams{}));
  ComovingConfig cfg;
  cfg.a_start = 0.5;
  cfg.a_end = 0.4;
  EXPECT_THROW(ComovingSimulation(engine, cfg), std::invalid_argument);
  cfg = ComovingConfig{};
  cfg.steps = 0;
  EXPECT_THROW(ComovingSimulation(engine, cfg), std::invalid_argument);
}

}  // namespace
