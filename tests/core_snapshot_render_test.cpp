#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/diagnostics.hpp"
#include "core/render.hpp"
#include "core/snapshot.hpp"
#include "ic/plummer.hpp"

namespace {

using namespace g5;
using math::Vec3d;

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Snapshot, BinaryRoundTrip) {
  const auto pset = ic::make_plummer(ic::PlummerConfig{.n = 200, .seed = 3});
  const std::string path = temp_path("g5_test_snapshot.g5snap");
  core::write_snapshot(path, pset, 1.25, 0.02);

  model::ParticleSet loaded;
  const auto header = core::read_snapshot(path, loaded);
  EXPECT_EQ(header.count, 200u);
  EXPECT_DOUBLE_EQ(header.time, 1.25);
  EXPECT_DOUBLE_EQ(header.eps, 0.02);
  ASSERT_EQ(loaded.size(), pset.size());
  for (std::size_t i = 0; i < pset.size(); ++i) {
    EXPECT_EQ(loaded.pos()[i], pset.pos()[i]);
    EXPECT_EQ(loaded.vel()[i], pset.vel()[i]);
    EXPECT_DOUBLE_EQ(loaded.mass()[i], pset.mass()[i]);
    EXPECT_EQ(loaded.id()[i], pset.id()[i]);
  }
  std::filesystem::remove(path);
}

TEST(Snapshot, RejectsWrongMagic) {
  const std::string path = temp_path("g5_test_bad.g5snap");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("NOTASNAPSHOT________", f);
  std::fclose(f);
  model::ParticleSet out;
  EXPECT_THROW(core::read_snapshot(path, out), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Snapshot, MissingFileThrows) {
  model::ParticleSet out;
  EXPECT_THROW(core::read_snapshot("/nonexistent/dir/x.g5snap", out),
               std::runtime_error);
  EXPECT_THROW(core::write_snapshot("/nonexistent/dir/x.g5snap", out, 0, 0),
               std::runtime_error);
}

TEST(Snapshot, AsciiDumpWritten) {
  const auto pset = ic::make_plummer(ic::PlummerConfig{.n = 10, .seed = 5});
  const std::string path = temp_path("g5_test_ascii.txt");
  core::write_snapshot_ascii(path, pset, 2.0);
  EXPECT_GT(std::filesystem::file_size(path), 100u);
  std::filesystem::remove(path);
}

TEST(Snapshot, TipsyRoundTrip) {
  auto pset = ic::make_plummer(ic::PlummerConfig{.n = 100, .seed = 9});
  for (std::size_t i = 0; i < pset.size(); ++i) {
    pset.pot()[i] = -0.5 * static_cast<double>(i);
  }
  const std::string path = temp_path("g5_test_tipsy.bin");
  core::write_snapshot_tipsy(path, pset, 3.5, 0.02);

  model::ParticleSet loaded;
  const auto header = core::read_snapshot_tipsy(path, loaded);
  EXPECT_EQ(header.count, 100u);
  EXPECT_DOUBLE_EQ(header.time, 3.5);
  EXPECT_NEAR(header.eps, 0.02, 1e-7);
  ASSERT_EQ(loaded.size(), pset.size());
  for (std::size_t i = 0; i < pset.size(); ++i) {
    // Float truncation is the format's precision.
    EXPECT_LT((loaded.pos()[i] - pset.pos()[i]).norm(),
              1e-6 * (1.0 + pset.pos()[i].norm()));
    EXPECT_LT((loaded.vel()[i] - pset.vel()[i]).norm(),
              1e-6 * (1.0 + pset.vel()[i].norm()));
    EXPECT_NEAR(loaded.mass()[i], pset.mass()[i], 1e-8);
    EXPECT_NEAR(loaded.pot()[i], pset.pot()[i],
                1e-5 * (1.0 + std::fabs(pset.pot()[i])));
  }
  std::filesystem::remove(path);
}

TEST(Snapshot, TipsyRejectsWrongShape) {
  // A G5SNAP file is not a TIPSY file.
  const auto pset = ic::make_plummer(ic::PlummerConfig{.n = 20, .seed = 5});
  const std::string path = temp_path("g5_test_not_tipsy.bin");
  core::write_snapshot(path, pset, 0.0, 0.0);
  model::ParticleSet out;
  EXPECT_THROW(core::read_snapshot_tipsy(path, out), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Diagnostics, EnergyReportMath) {
  core::EnergyReport e;
  e.kinetic = 0.25;
  e.potential = -0.5;
  EXPECT_DOUBLE_EQ(e.total(), -0.25);
  EXPECT_DOUBLE_EQ(e.virial_ratio(), 1.0);
  core::EnergyReport later = e;
  later.kinetic = 0.275;
  EXPECT_NEAR(core::relative_energy_drift(later, e), 0.1, 1e-12);
  // Zero-total-energy guard.
  core::EnergyReport zero;
  EXPECT_DOUBLE_EQ(core::relative_energy_drift(later, zero),
                   std::fabs(later.total()));
}

TEST(Diagnostics, DiagnoseAggregates) {
  model::ParticleSet p;
  p.add(Vec3d{1, 0, 0}, Vec3d{0, 2, 0}, 1.0);
  p.pot()[0] = -3.0;
  const auto rep = core::diagnose(p);
  EXPECT_DOUBLE_EQ(rep.energy.kinetic, 2.0);
  EXPECT_DOUBLE_EQ(rep.energy.potential, -1.5);
  EXPECT_EQ(rep.momentum, (Vec3d{0, 2, 0}));
  EXPECT_EQ(rep.angular_momentum, (Vec3d{0, 0, 2}));
  EXPECT_EQ(rep.center_of_mass, (Vec3d{1, 0, 0}));
}

TEST(SlabImage, CountsAndFiltering) {
  model::ParticleSet p;
  p.add(Vec3d{0.0, 0.0, 0.0}, Vec3d{}, 1.0);   // in slab, center
  p.add(Vec3d{0.0, 0.0, 5.0}, Vec3d{}, 1.0);   // outside depth
  p.add(Vec3d{9.0, 0.0, 0.0}, Vec3d{}, 1.0);   // outside plane
  p.add(Vec3d{0.01, 0.01, 0.1}, Vec3d{}, 1.0); // in slab, same pixel-ish
  core::SlabConfig cfg;
  cfg.lo0 = -1.0;
  cfg.hi0 = 1.0;
  cfg.lo1 = -1.0;
  cfg.hi1 = 1.0;
  cfg.slab_lo = -1.0;
  cfg.slab_hi = 1.0;
  cfg.width = 4;
  cfg.height = 4;
  const core::SlabImage img(cfg, p);
  EXPECT_EQ(img.particles_in_slab(), 2u);
  EXPECT_EQ(img.peak_count(), 2u);  // both land in pixel (2,2)
  EXPECT_EQ(img.count(2, 2), 2u);
}

TEST(SlabImage, AsciiDimensions) {
  model::ParticleSet p;
  p.add(Vec3d{0, 0, 0}, Vec3d{}, 1.0);
  core::SlabConfig cfg;
  cfg.width = 10;
  cfg.height = 5;
  const core::SlabImage img(cfg, p);
  const std::string art = img.ascii();
  EXPECT_EQ(art.size(), (10u + 1u) * 5u);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 5);
}

TEST(SlabImage, PgmWritten) {
  const auto pset = ic::make_plummer(ic::PlummerConfig{.n = 500, .seed = 7});
  core::SlabConfig cfg;
  cfg.lo0 = -2.0;
  cfg.hi0 = 2.0;
  cfg.lo1 = -2.0;
  cfg.hi1 = 2.0;
  cfg.slab_lo = -2.0;
  cfg.slab_hi = 2.0;
  cfg.width = 32;
  cfg.height = 16;
  const core::SlabImage img(cfg, pset);
  const std::string path = temp_path("g5_test_fig.pgm");
  img.write_pgm(path);
  // P5 header + 32*16 bytes.
  EXPECT_GE(std::filesystem::file_size(path), 32u * 16u);
  std::filesystem::remove(path);
}

TEST(SlabImage, AxisSelection) {
  model::ParticleSet p;
  p.add(Vec3d{5.0, 0.0, 0.0}, Vec3d{}, 1.0);  // depth 5 along x
  core::SlabConfig cfg;
  cfg.axis = 0;
  cfg.slab_lo = 4.0;
  cfg.slab_hi = 6.0;
  cfg.lo0 = -1.0;  // y range
  cfg.hi0 = 1.0;
  cfg.lo1 = -1.0;  // z range
  cfg.hi1 = 1.0;
  const core::SlabImage img(cfg, p);
  EXPECT_EQ(img.particles_in_slab(), 1u);
}

TEST(SlabImage, Validation) {
  model::ParticleSet p;
  core::SlabConfig cfg;
  cfg.axis = 3;
  EXPECT_THROW(core::SlabImage(cfg, p), std::invalid_argument);
  cfg = core::SlabConfig{};
  cfg.width = 0;
  EXPECT_THROW(core::SlabImage(cfg, p), std::invalid_argument);
  cfg = core::SlabConfig{};
  cfg.lo0 = cfg.hi0;
  EXPECT_THROW(core::SlabImage(cfg, p), std::invalid_argument);
}

}  // namespace
