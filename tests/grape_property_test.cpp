// Property-style parameterized sweeps of the emulated hardware: the
// pipeline contract must hold across range windows, softenings, mass
// scales and format widths — not just at the defaults the other tests use.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "grape/driver.hpp"
#include "grape/host_reference.hpp"
#include "ic/uniform.hpp"
#include "math/rng.hpp"
#include "util/stats.hpp"

namespace {

using namespace g5;
using grape::Vec3d;

// ---------------------------------------------------------------------
// Sweep 1: the device must agree with the host reference for any sane
// (window, eps) combination — window scale spans 6 decades.
// ---------------------------------------------------------------------

class DeviceWindowSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(DeviceWindowSweep, AgreesWithHostReference) {
  const double scale = std::get<0>(GetParam());
  const double eps_frac = std::get<1>(GetParam());
  const double eps = eps_frac * scale;

  // Particles spread over a window of the given scale.
  auto src = ic::make_uniform_cube(256, -scale, scale, 1.0, 11);
  grape::SystemConfig cfg;
  cfg.board.jmem_capacity = 1024;
  grape::Grape5Device device(cfg);
  device.set_range(-2.0 * scale, 2.0 * scale, src.mass()[0]);
  device.set_eps(eps);
  device.set_j(src.pos(), src.mass());

  std::vector<Vec3d> acc(64), ref(64);
  std::vector<double> pot(64), pref(64);
  const std::span<const Vec3d> targets(src.pos().data(), 64);
  device.compute_forces(targets, acc, pot);
  grape::host_forces_on_targets(targets, src.pos(), src.mass(), eps, ref,
                                pref);

  util::RunningStat err;
  for (std::size_t i = 0; i < 64; ++i) {
    const double rn = ref[i].norm();
    if (rn > 0.0) err.add((acc[i] - ref[i]).norm() / rn);
  }
  // Whole-force error averages below the ~0.35 % pairwise figure; the
  // bound must hold at every window scale (scale invariance of the
  // fixed-point + log-format datapath).
  EXPECT_LT(err.rms(), 0.01) << "scale=" << scale << " eps=" << eps;
  EXPECT_FALSE(device.system().any_saturation());
}

INSTANTIATE_TEST_SUITE_P(
    Windows, DeviceWindowSweep,
    ::testing::Combine(::testing::Values(1e-3, 1.0, 1e3),
                       ::testing::Values(1e-3, 1e-2, 1e-1)));

// ---------------------------------------------------------------------
// Sweep 2: mass dynamic range — mixed light/heavy sources must not break
// the accumulator scaling (quanta derive from the minimum mass).
// ---------------------------------------------------------------------

class MassRangeSweep : public ::testing::TestWithParam<double> {};

TEST_P(MassRangeSweep, MixedMassesAccurate) {
  const double ratio = GetParam();  // heaviest / lightest
  math::Rng rng(13);
  const std::size_t n = 256;
  std::vector<Vec3d> pos(n);
  std::vector<double> mass(n);
  double min_mass = 1e300;
  for (std::size_t j = 0; j < n; ++j) {
    pos[j] = rng.in_box(Vec3d{-1, -1, -1}, Vec3d{1, 1, 1});
    mass[j] = std::pow(ratio, rng.uniform());
    min_mass = std::min(min_mass, mass[j]);
  }
  grape::SystemConfig cfg;
  cfg.board.jmem_capacity = 1024;
  grape::Grape5Device device(cfg);
  device.set_range(-2.0, 2.0, min_mass);
  device.set_eps(0.02);
  device.set_j(pos, mass);

  std::vector<Vec3d> acc(32), ref(32);
  std::vector<double> pot(32), pref(32);
  const std::span<const Vec3d> targets(pos.data(), 32);
  device.compute_forces(targets, acc, pot);
  grape::host_forces_on_targets(targets, pos, mass, 0.02, ref, pref);
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_LT((acc[i] - ref[i]).norm() / ref[i].norm(), 0.02)
        << "ratio=" << ratio << " i=" << i;
  }
  EXPECT_FALSE(device.system().any_saturation());
}

INSTANTIATE_TEST_SUITE_P(Ratios, MassRangeSweep,
                         ::testing::Values(1.0, 1e2, 1e4));

TEST(MassRangeSweep, ExtremeRatioSaturatesAndIsDetected) {
  // The 64-bit accumulator's dynamic range bounds the usable mass ratio:
  // (range/eps)^2 * m_max/m_min must stay below ~2^63 headroom. A 1e6
  // ratio at eps = 1% of the window exceeds it; the hardware cannot
  // silently return garbage — the saturation flag must latch.
  math::Rng rng(13);
  const std::size_t n = 256;
  std::vector<Vec3d> pos(n);
  std::vector<double> mass(n);
  for (std::size_t j = 0; j < n; ++j) {
    pos[j] = rng.in_box(Vec3d{-1, -1, -1}, Vec3d{1, 1, 1});
    mass[j] = std::pow(1e6, rng.uniform());
  }
  grape::SystemConfig cfg;
  cfg.board.jmem_capacity = 1024;
  grape::Grape5Device device(cfg);
  device.set_range(-2.0, 2.0, 1.0);  // min mass
  device.set_eps(0.02);
  device.set_j(pos, mass);
  std::vector<Vec3d> acc(32);
  std::vector<double> pot(32);
  device.compute_forces(std::span<const Vec3d>(pos.data(), 32), acc, pot);
  EXPECT_TRUE(device.system().any_saturation());
}

// ---------------------------------------------------------------------
// Sweep 3: chunked evaluation must be invariant to the j-memory capacity
// (the driver's chunk boundaries are an implementation detail).
// ---------------------------------------------------------------------

class ChunkSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChunkSweep, ResultIndependentOfJmemCapacity) {
  const std::size_t jmem = GetParam();
  const auto src = ic::make_uniform_cube(700, -1.0, 1.0, 1.0, 17);
  std::vector<Vec3d> acc(16);
  std::vector<double> pot(16);
  const std::span<const Vec3d> targets(src.pos().data(), 16);

  grape::SystemConfig cfg;
  cfg.board.jmem_capacity = jmem;
  grape::Grape5Device device(cfg);
  device.set_range(-2.0, 2.0, src.mass()[0]);
  device.set_eps(0.01);
  device.compute_forces_chunked(targets, src.pos(), src.mass(), acc, pot);

  // Reference: one huge memory.
  grape::SystemConfig big;
  big.board.jmem_capacity = 4096;
  grape::Grape5Device ref_device(big);
  ref_device.set_range(-2.0, 2.0, src.mass()[0]);
  ref_device.set_eps(0.01);
  std::vector<Vec3d> ref(16);
  std::vector<double> pref(16);
  ref_device.compute_forces_chunked(targets, src.pos(), src.mass(), ref,
                                    pref);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_LT((acc[i] - ref[i]).norm(), 1e-9 + 1e-7 * ref[i].norm())
        << "jmem=" << jmem;
    EXPECT_NEAR(pot[i], pref[i], 1e-9 + 1e-7 * std::fabs(pref[i]));
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, ChunkSweep,
                         ::testing::Values(32, 100, 256, 350, 1024));

// ---------------------------------------------------------------------
// Sweep 4: format width — whole-force error must fall monotonically (and
// roughly geometrically) with the log-format width.
// ---------------------------------------------------------------------

class FormatSweep : public ::testing::TestWithParam<int> {};

TEST_P(FormatSweep, WholeForceErrorBounded) {
  const int bits = GetParam();
  grape::SystemConfig cfg;
  cfg.board.jmem_capacity = 1024;
  cfg.numerics.lns_frac_bits = bits;
  cfg.numerics.table_index_bits = 0;
  grape::Grape5Device device(cfg);

  const auto src = ic::make_uniform_cube(256, -1.0, 1.0, 1.0, 19);
  device.set_range(-2.0, 2.0, src.mass()[0]);
  device.set_eps(0.02);
  device.set_j(src.pos(), src.mass());
  std::vector<Vec3d> acc(64), ref(64);
  std::vector<double> pot(64), pref(64);
  const std::span<const Vec3d> targets(src.pos().data(), 64);
  device.compute_forces(targets, acc, pot);
  grape::host_forces_on_targets(targets, src.pos(), src.mass(), 0.02, ref,
                                pref);
  util::RunningStat err;
  for (std::size_t i = 0; i < 64; ++i) {
    err.add((acc[i] - ref[i]).norm() / ref[i].norm());
  }
  // Loose per-width cap: ~ a few x 2^-bits.
  EXPECT_LT(err.rms(), 6.0 * std::ldexp(1.0, -bits)) << bits;
}

INSTANTIATE_TEST_SUITE_P(Widths, FormatSweep,
                         ::testing::Values(6, 8, 10, 12));

}  // namespace
