#include <gtest/gtest.h>

#include <cmath>

#include "core/diagnostics.hpp"
#include "core/engines.hpp"
#include "core/integrator.hpp"
#include "ic/plummer.hpp"

namespace {

using namespace g5;
using core::ForceParams;
using core::LeapfrogIntegrator;
using math::Vec3d;

/// Equal-mass circular binary in G = 1 units: separation 1, masses 0.5.
model::ParticleSet circular_binary() {
  model::ParticleSet p;
  // v_circ for each body around the CoM: v^2 = G m_other^2 / (M d) -> with
  // m1 = m2 = 0.5, d = 1: each orbits at r = 0.5 with v = sqrt(0.25) = 0.5^.
  const double v = std::sqrt(0.5 * 0.5 / 1.0);  // = 0.5
  p.add(Vec3d{0.5, 0.0, 0.0}, Vec3d{0.0, v, 0.0}, 0.5);
  p.add(Vec3d{-0.5, 0.0, 0.0}, Vec3d{0.0, -v, 0.0}, 0.5);
  return p;
}

TEST(Leapfrog, RequiresPrime) {
  auto pset = circular_binary();
  core::HostDirectEngine engine((ForceParams{.eps = 0.0}));
  LeapfrogIntegrator integrator;
  EXPECT_THROW(integrator.step(pset, engine, 0.01), std::logic_error);
  integrator.prime(pset, engine);
  EXPECT_NO_THROW(integrator.step(pset, engine, 0.01));
  EXPECT_THROW(integrator.step(pset, engine, 0.0), std::invalid_argument);
  EXPECT_EQ(integrator.steps_taken(), 1u);
}

TEST(Leapfrog, CircularOrbitStaysCircular) {
  auto pset = circular_binary();
  core::HostDirectEngine engine((ForceParams{.eps = 0.0}));
  LeapfrogIntegrator integrator;
  integrator.prime(pset, engine);
  // Period T = 2 pi d^{3/2} / sqrt(G M) = 2 pi.
  const double period = 2.0 * M_PI;
  const int steps = 2000;
  const double dt = period / steps;
  for (int s = 0; s < steps; ++s) integrator.step(pset, engine, dt);
  // Bodies return to their starting points after one period.
  EXPECT_LT((pset.pos()[0] - Vec3d{0.5, 0.0, 0.0}).norm(), 5e-3);
  // Separation stayed ~ 1 throughout (sample at the end).
  EXPECT_NEAR((pset.pos()[0] - pset.pos()[1]).norm(), 1.0, 1e-3);
}

TEST(Leapfrog, EnergyConservationSecondOrder) {
  // Leapfrog energy error scales ~ dt^2: halving dt quarters the error.
  auto run = [](int steps) {
    auto pset = circular_binary();
    core::HostDirectEngine engine((ForceParams{.eps = 0.0}));
    LeapfrogIntegrator integrator;
    integrator.prime(pset, engine);
    const auto e0 = core::diagnose(pset).energy;
    const double total_time = 3.0;
    // Track the max drift over the run (instantaneous drift oscillates).
    double max_drift = 0.0;
    for (int s = 0; s < steps; ++s) {
      integrator.step(pset, engine, total_time / steps);
      max_drift = std::max(
          max_drift,
          core::relative_energy_drift(core::diagnose(pset).energy, e0));
    }
    return max_drift;
  };
  const double coarse = run(200);
  const double fine = run(400);
  EXPECT_LT(coarse, 1e-3);
  // At least 2nd order (circular orbits enjoy extra cancellation, so the
  // observed ratio can exceed the generic factor of 4).
  EXPECT_GT(coarse / fine, 2.5);
}

TEST(Leapfrog, PlummerEnergyAndMomentumConserved) {
  auto pset = ic::make_plummer(ic::PlummerConfig{.n = 256, .seed = 3});
  core::HostDirectEngine engine((ForceParams{.eps = 0.05}));
  LeapfrogIntegrator integrator;
  integrator.prime(pset, engine);
  const auto e0 = core::diagnose(pset).energy;
  const Vec3d p0 = pset.total_momentum();
  for (int s = 0; s < 200; ++s) integrator.step(pset, engine, 0.01);
  const auto e1 = core::diagnose(pset).energy;
  EXPECT_LT(core::relative_energy_drift(e1, e0), 2e-3);
  // Momentum conserved to round-off by the symmetric kernel.
  EXPECT_LT((pset.total_momentum() - p0).norm(), 1e-11);
}

TEST(Leapfrog, TimeReversibility) {
  // Integrate forward n steps, negate velocities, integrate n more: the
  // system returns to its initial positions (leapfrog is symplectic and
  // time-reversible up to round-off).
  auto pset = ic::make_plummer(ic::PlummerConfig{.n = 64, .seed = 7});
  const auto initial = pset.pos();
  core::HostDirectEngine engine((ForceParams{.eps = 0.05}));
  LeapfrogIntegrator integrator;
  integrator.prime(pset, engine);
  for (int s = 0; s < 50; ++s) integrator.step(pset, engine, 0.01);
  for (auto& v : pset.vel()) v = -v;
  integrator.prime(pset, engine);
  for (int s = 0; s < 50; ++s) integrator.step(pset, engine, 0.01);
  double worst = 0.0;
  for (std::size_t i = 0; i < pset.size(); ++i) {
    worst = std::max(worst, (pset.pos()[i] - initial[i]).norm());
  }
  EXPECT_LT(worst, 1e-9);
}

TEST(Leapfrog, GrapeTreeDriftSmall) {
  // The paper's engine on a small Plummer model: hardware quantization
  // costs some energy accuracy but stays well-behaved.
  auto pset = ic::make_plummer(ic::PlummerConfig{.n = 256, .seed = 11});
  auto engine = core::make_engine(
      "grape-tree", ForceParams{.eps = 0.05, .theta = 0.75, .n_crit = 64});
  LeapfrogIntegrator integrator;
  integrator.prime(pset, *engine);
  const auto e0 = core::diagnose(pset).energy;
  for (int s = 0; s < 100; ++s) integrator.step(pset, *engine, 0.01);
  EXPECT_LT(core::relative_energy_drift(core::diagnose(pset).energy, e0),
            5e-3);
}

}  // namespace
