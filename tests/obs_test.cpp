// Observability layer: spans, registry, trace export, step metrics.
//
// The concurrency tests (ObsCounter.ParallelIncrementsAreExact,
// ObsSpan.WorkerSpansInheritParentPath) are in the TSan CI job's filter
// (.github/workflows/ci.yml) — the registry and the thread-local span
// stack are the only obs state shared across walk lanes.

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <cmath>
#include <limits>

#include "core/engines.hpp"
#include "core/simulation.hpp"
#include "ic/plummer.hpp"
#include "obs/obs.hpp"
#include "obs/probe.hpp"
#include "util/parallel.hpp"

namespace {

using namespace g5;

/// Every obs test owns the global switch/accumulators for its scope.
class ObsEnv : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::reset_phases();
    obs::Registry::instance().reset_values();
  }
  void TearDown() override {
    obs::stop_trace();
    obs::set_enabled(false);
    obs::reset_phases();
    obs::Registry::instance().reset_values();
  }
};

double phase_seconds(const std::string& path) {
  for (const auto& p : obs::phase_report()) {
    if (p.path == path) return p.total_s;
  }
  return -1.0;
}

using ObsRegistry = ObsEnv;
using ObsSpan = ObsEnv;
using ObsCounter = ObsEnv;
using ObsTrace = ObsEnv;
using ObsMetrics = ObsEnv;
using ObsHistogram = ObsEnv;
using ObsProbe = ObsEnv;

TEST_F(ObsRegistry, CounterAndGaugeRoundTrip) {
  obs::counter("test.reg.counter").add(3);
  obs::counter("test.reg.counter").add(2);
  obs::gauge("test.reg.gauge").set(0.625);
  EXPECT_EQ(obs::counter("test.reg.counter").value(), 5u);
  EXPECT_DOUBLE_EQ(obs::gauge("test.reg.gauge").value(), 0.625);

  bool saw_counter = false;
  bool saw_gauge = false;
  for (const auto& s : obs::Registry::instance().snapshot()) {
    if (s.name == "test.reg.counter") {
      saw_counter = true;
      EXPECT_TRUE(s.is_counter);
      EXPECT_EQ(s.count, 5u);
    }
    if (s.name == "test.reg.gauge") {
      saw_gauge = true;
      EXPECT_FALSE(s.is_counter);
      EXPECT_DOUBLE_EQ(s.value, 0.625);
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_gauge);

  obs::Registry::instance().reset_values();
  EXPECT_EQ(obs::counter("test.reg.counter").value(), 0u);
  EXPECT_DOUBLE_EQ(obs::gauge("test.reg.gauge").value(), 0.0);
}

TEST_F(ObsRegistry, SnapshotIsSortedByName) {
  obs::counter("test.sort.b");
  obs::counter("test.sort.a");
  obs::gauge("test.sort.c");
  const auto snap = obs::Registry::instance().snapshot();
  for (std::size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LT(snap[i - 1].name, snap[i].name);
  }
}

TEST_F(ObsCounter, ParallelIncrementsAreExact) {
  // A counter reference obtained once must take lock-free exact updates
  // from every lane — the pattern the engines use per force phase.
  obs::Counter& c = obs::counter("test.parallel.hits");
  util::ThreadPool pool(4);
  constexpr std::size_t kN = 100000;
  pool.parallel_for(kN, 64, [&c](std::size_t begin, std::size_t end,
                                 unsigned /*lane*/) {
    for (std::size_t i = begin; i < end; ++i) c.add(1);
  });
  EXPECT_EQ(c.value(), kN);
}

TEST_F(ObsSpan, NestedPathsWithinThread) {
  {
    obs::Span outer("alpha", "test");
    EXPECT_EQ(obs::Span::current_path(), "/alpha");
    {
      obs::Span inner("beta", "test");
      EXPECT_EQ(obs::Span::current_path(), "/alpha/beta");
      EXPECT_EQ(obs::Span::current_depth(), 2);
    }
    EXPECT_EQ(obs::Span::current_path(), "/alpha");
  }
  EXPECT_EQ(obs::Span::current_depth(), 0);
  EXPECT_GE(phase_seconds("/alpha"), 0.0);
  EXPECT_GE(phase_seconds("/alpha/beta"), 0.0);
}

TEST_F(ObsSpan, DisabledSpansRecordNothing) {
  obs::set_enabled(false);
  {
    obs::Span s("ghost", "test");
    EXPECT_EQ(obs::Span::current_depth(), 0);
  }
  EXPECT_EQ(phase_seconds("/ghost"), -1.0);
}

TEST_F(ObsSpan, WorkerSpansInheritParentPath) {
  // Spans opened inside pool lanes must file under the submitting
  // thread's phase — including lane 0, which runs on that thread.
  util::ThreadPool pool(4);
  std::atomic<int> bad_paths{0};
  {
    obs::Span parent("fork", "test");
    pool.parallel_for(256, 1, [&bad_paths](std::size_t, std::size_t,
                                           unsigned /*lane*/) {
      obs::Span leaf("lane_work", "test");
      if (obs::Span::current_path() != "/fork/worker/lane_work" &&
          obs::Span::current_path() != "/fork/lane_work") {
        bad_paths.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  EXPECT_EQ(bad_paths.load(), 0);
  // Lane 0 nests directly under /fork; worker threads add the pool span.
  const double direct = phase_seconds("/fork/lane_work");
  const double pooled = phase_seconds("/fork/worker/lane_work");
  EXPECT_TRUE(direct >= 0.0 || pooled >= 0.0);
}

TEST_F(ObsSpan, RecordPhaseExtendsCurrentPath) {
  {
    obs::Span s("reduce", "test");
    obs::record_phase("cpu", 1.25, 3);
  }
  bool found = false;
  for (const auto& p : obs::phase_report()) {
    if (p.path == "/reduce/cpu") {
      found = true;
      EXPECT_EQ(p.count, 3u);
      EXPECT_DOUBLE_EQ(p.total_s, 1.25);
    }
  }
  EXPECT_TRUE(found);
}

// --- minimal recursive-descent JSON validator (well-formedness only) ---

struct JsonCursor {
  const std::string& s;
  std::size_t i = 0;
  bool fail = false;

  void skip_ws() {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
  }
  bool consume(char c) {
    skip_ws();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }
  void value() {  // NOLINT(misc-no-recursion)
    skip_ws();
    if (fail || i >= s.size()) {
      fail = true;
      return;
    }
    const char c = s[i];
    if (c == '{') {
      ++i;
      if (consume('}')) return;
      do {
        skip_ws();
        string();
        if (!consume(':')) fail = true;
        value();
      } while (!fail && consume(','));
      if (!consume('}')) fail = true;
    } else if (c == '[') {
      ++i;
      if (consume(']')) return;
      do {
        value();
      } while (!fail && consume(','));
      if (!consume(']')) fail = true;
    } else if (c == '"') {
      string();
    } else if (c == 't') {
      literal("true");
    } else if (c == 'f') {
      literal("false");
    } else if (c == 'n') {
      literal("null");
    } else {
      number();
    }
  }
  void string() {
    if (i >= s.size() || s[i] != '"') {
      fail = true;
      return;
    }
    ++i;
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\') ++i;
      ++i;
    }
    if (i >= s.size()) {
      fail = true;
      return;
    }
    ++i;
  }
  void literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p, ++i) {
      if (i >= s.size() || s[i] != *p) {
        fail = true;
        return;
      }
    }
  }
  void number() {
    const std::size_t start = i;
    while (i < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[i])) || s[i] == '-' ||
            s[i] == '+' || s[i] == '.' || s[i] == 'e' || s[i] == 'E')) {
      ++i;
    }
    if (i == start) fail = true;
  }
  bool whole_document() {
    value();
    skip_ws();
    return !fail && i == s.size();
  }
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST_F(ObsTrace, ChromeTraceWellFormed) {
  obs::start_trace();
  {
    obs::Span a("phase_a", "test");
    obs::Span b("phase \"b\"\\slash", "test");  // exercises escaping
    obs::trace_counter("test.counter", 42.0);
  }
  obs::stop_trace();
  EXPECT_GE(obs::trace_event_count(), 3u);
  EXPECT_EQ(obs::trace_dropped_count(), 0u);

  const std::string path = ::testing::TempDir() + "obs_trace_test.json";
  ASSERT_TRUE(obs::write_trace(path));
  const std::string doc = slurp(path);
  ASSERT_FALSE(doc.empty());
  JsonCursor cur{doc};
  EXPECT_TRUE(cur.whole_document()) << "invalid JSON near offset " << cur.i;
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"C\""), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(ObsTrace, BufferCapDropsAndCounts) {
  obs::start_trace(4);
  for (int k = 0; k < 10; ++k) {
    obs::Span s("tiny", "test");
  }
  obs::stop_trace();
  EXPECT_LE(obs::trace_event_count(), 4u);
  EXPECT_GE(obs::trace_dropped_count(), 6u);
}

TEST_F(ObsMetrics, TwoStepSimulationEmitsRecords) {
  ic::PlummerConfig pc;
  pc.n = 256;
  pc.seed = 7;
  auto pset = ic::make_plummer(pc);

  core::ForceParams fp;
  fp.threads = 2;
  core::HostTreeEngine engine(fp, core::HostTreeEngine::Mode::Modified);

  const std::string path = ::testing::TempDir() + "obs_metrics_test.jsonl";
  core::SimulationConfig sc;
  sc.dt = 0.01;
  sc.steps = 2;
  sc.log_every = 0;
  sc.metrics_jsonl = path;
  core::Simulation sim(engine, sc);
  sim.run(pset);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::string last;
  std::uint64_t records = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++records;
    last = line;
    JsonCursor cur{line};
    EXPECT_TRUE(cur.whole_document()) << "bad JSONL record: " << line;
    EXPECT_NE(line.find("\"step\":"), std::string::npos);
    EXPECT_NE(line.find("\"interactions\":"), std::string::npos);
    EXPECT_NE(line.find("\"grape_occupancy\":"), std::string::npos);
  }
  EXPECT_EQ(records, 2u);
  // Host engine: grape account deltas stay zero.
  EXPECT_NE(last.find("\"grape_force_calls\":0"), std::string::npos);
  std::remove(path.c_str());

  // The instrumented phases showed up under the step span.
  EXPECT_GE(phase_seconds("/step"), 0.0);
  EXPECT_GE(phase_seconds("/step/force/build"), 0.0);
  EXPECT_GE(phase_seconds("/step/force/walk"), 0.0);
  EXPECT_GE(phase_seconds("/step/integrate"), 0.0);
  EXPECT_GE(obs::counter("g5.sim.steps").value(), 2u);
  EXPECT_GT(obs::counter("g5.walk.interactions").value(), 0u);
}

TEST_F(ObsMetrics, WriterThrowsOnUnwritablePath) {
  EXPECT_THROW(obs::MetricsWriter("/nonexistent-dir-g5/metrics.jsonl"),
               std::runtime_error);
}

TEST_F(ObsMetrics, NonFiniteFieldsSerializeAsNull) {
  // JSON has no NaN/Inf; the sink must emit null for unmeasured or
  // corrupted values and plain numbers for everything else.
  const std::string path = ::testing::TempDir() + "obs_metrics_nan.jsonl";
  {
    obs::MetricsWriter writer(path);
    obs::StepMetrics m;
    m.step = 1;
    m.wall_s = 0.25;
    // Default accuracy fields are kUnmeasured (NaN) -> null.
    m.energy_drift = obs::StepMetrics::kUnmeasured;
    m.err_tree_p50 = 1.5e-3;  // measured -> number
    m.kernel_s = std::numeric_limits<double>::infinity();  // corrupt -> null
    writer.write(m);
    EXPECT_EQ(writer.records_written(), 1u);
  }
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  JsonCursor cur{line};
  EXPECT_TRUE(cur.whole_document()) << line;
  EXPECT_NE(line.find("\"energy_drift\":null"), std::string::npos) << line;
  EXPECT_NE(line.find("\"momentum_drift\":null"), std::string::npos) << line;
  EXPECT_NE(line.find("\"err_total_p50\":null"), std::string::npos) << line;
  EXPECT_NE(line.find("\"err_tree_p50\":0.0015"), std::string::npos) << line;
  EXPECT_NE(line.find("\"kernel_s\":null"), std::string::npos) << line;
  EXPECT_NE(line.find("\"wall_s\":0.25"), std::string::npos) << line;
  EXPECT_EQ(line.find("nan"), std::string::npos) << line;
  EXPECT_EQ(line.find("inf"), std::string::npos) << line;
  std::remove(path.c_str());
}

TEST_F(ObsHistogram, StatisticsAreExactQuantilesBucketed) {
  auto& h = obs::histogram("test.hist.basic");
  for (double v : {1.0, 2.0, 4.0, 8.0, 1024.0}) h.observe(v);
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.sum, 1039.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 1024.0);
  EXPECT_DOUBLE_EQ(s.mean(), 1039.0 / 5.0);
  // Rank-3 of 5 observations is the value 4; its power-of-two bucket is
  // [4, 8) and the estimate is the geometric midpoint 4*sqrt(2).
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 4.0 * std::sqrt(2.0));
  // Edge quantiles clamp to the observed range.
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 1024.0);
  EXPECT_GE(s.quantile(0.0), s.min);
  EXPECT_LT(s.quantile(0.0), 2.0);
}

TEST_F(ObsHistogram, DropsNonFiniteAndBucketsNonPositive) {
  auto& h = obs::histogram("test.hist.edge");
  h.observe(std::numeric_limits<double>::quiet_NaN());
  h.observe(std::numeric_limits<double>::infinity());
  h.observe(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.snapshot().count, 0u);
  h.observe(0.0);    // underflow bucket
  h.observe(-3.0);   // underflow bucket, still counted in min/sum
  h.observe(1e-30);  // far below 2^-40: clamps to bucket 0
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.min, -3.0);
  EXPECT_DOUBLE_EQ(s.max, 1e-30);
  EXPECT_EQ(s.buckets[0], 3u);
}

TEST_F(ObsHistogram, ParallelObservationsAreExact) {
  // The shard design must lose nothing under contention: count and sum
  // are exact, min/max see every thread's extremes. (In the TSan CI
  // job's filter.)
  auto& h = obs::histogram("test.hist.parallel");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int k = 0; k < kPerThread; ++k) {
        h.observe(static_cast<double>(t + 1));
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  // Sum of t+1 over threads, kPerThread each: 36 * 5000.
  EXPECT_DOUBLE_EQ(s.sum, 36.0 * kPerThread);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 8.0);
  std::uint64_t bucketed = 0;
  for (std::uint64_t b : s.buckets) bucketed += b;
  EXPECT_EQ(bucketed, s.count);
}

TEST_F(ObsHistogram, RegistrySnapshotCarriesHistogram) {
  obs::histogram("test.hist.snap").observe(2.0);
  obs::histogram("test.hist.snap").observe(4.0);
  bool found = false;
  for (const auto& sample : obs::Registry::instance().snapshot()) {
    if (sample.name != "test.hist.snap") continue;
    found = true;
    EXPECT_EQ(sample.kind, obs::MetricKind::kHistogram);
    EXPECT_FALSE(sample.is_counter);
    EXPECT_EQ(sample.count, 2u);
    EXPECT_DOUBLE_EQ(sample.value, 3.0);  // mean
    EXPECT_EQ(sample.hist.count, 2u);
  }
  EXPECT_TRUE(found);
}

/// Engine-evaluated Plummer state for probe tests.
model::ParticleSet probed_state(std::uint32_t threads, std::uint32_t depth) {
  auto pset = ic::make_plummer(ic::PlummerConfig{.n = 512, .seed = 11});
  core::ForceParams fp{.eps = 0.05, .theta = 0.6, .n_crit = 64};
  fp.threads = threads;
  fp.pipeline_depth = depth;
  auto engine = core::make_engine("grape-tree", fp);
  engine->compute(pset);
  return pset;
}

obs::ProbeConfig probe_config() {
  obs::ProbeConfig pc;
  pc.samples = 24;
  pc.seed = 1234;
  pc.eps = 0.05;
  pc.theta = 0.6;
  return pc;
}

bool same_result(const obs::ProbeResult& a, const obs::ProbeResult& b) {
  return a.samples == b.samples && a.total_p50 == b.total_p50 &&
         a.total_p99 == b.total_p99 && a.total_max == b.total_max &&
         a.tree_p50 == b.tree_p50 && a.tree_p99 == b.tree_p99 &&
         a.tree_max == b.tree_max && a.codec_p50 == b.codec_p50 &&
         a.codec_p99 == b.codec_p99 && a.codec_max == b.codec_max;
}

TEST_F(ObsProbe, DeterministicForFixedSeed) {
  const auto pset = probed_state(1, 0);
  obs::ForceErrorProbe probe_a(probe_config());
  obs::ForceErrorProbe probe_b(probe_config());
  const auto first = probe_a.measure(pset);
  const auto second = probe_b.measure(pset);
  EXPECT_GT(first.samples, 0u);
  EXPECT_TRUE(same_result(first, second));
  // The same probe's sampling stream advances per call: a second call
  // draws a fresh subset but must be reproducible run-to-run.
  const auto third = probe_a.measure(pset);
  const auto fourth = probe_b.measure(pset);
  EXPECT_TRUE(same_result(third, fourth));
}

TEST_F(ObsProbe, BitwiseInvariantAcrossThreadsAndPipelineDepth) {
  // The engine's forces are bitwise-invariant across host-thread count
  // and pipeline depth, and the probe itself is serial host-double
  // arithmetic — so its error measurement must be too.
  const auto ref = probed_state(1, 0);
  obs::ForceErrorProbe probe_ref(probe_config());
  const auto expected = probe_ref.measure(ref);
  const std::pair<std::uint32_t, std::uint32_t> combos[] = {
      {4, 0}, {1, 2}, {4, 3}};
  for (const auto& [threads, depth] : combos) {
    const auto pset = probed_state(threads, depth);
    obs::ForceErrorProbe probe(probe_config());
    const auto got = probe.measure(pset);
    EXPECT_TRUE(same_result(expected, got))
        << "threads=" << threads << " depth=" << depth;
  }
}

TEST_F(ObsProbe, ErrorSplitWithinSaneBudgets) {
  // Loose sanity bounds (the tight paper-budget check is the 16k golden
  // run in CI): the codec error must sit near the hardware's ~0.3%
  // pairwise format error, and both components must be present.
  const auto pset = probed_state(1, 0);
  obs::ForceErrorProbe probe(probe_config());
  const auto r = probe.measure(pset);
  ASSERT_GT(r.samples, 0u);
  EXPECT_GT(r.total_p50, 0.0);
  EXPECT_GT(r.tree_p50, 0.0);
  EXPECT_GT(r.codec_p50, 0.0);
  EXPECT_LE(r.tree_p50, r.tree_p99);
  EXPECT_LE(r.codec_p50, r.codec_p99);
  EXPECT_LT(r.codec_p50, 0.01);  // ~0.3% format error, much slack
  EXPECT_LT(r.tree_p50, 0.10);   // theta=0.6 monopole, much slack
  // Probe telemetry reached the registry.
  EXPECT_EQ(obs::counter("g5.probe.calls").value(), 1u);
  EXPECT_EQ(obs::counter("g5.probe.samples").value(), r.samples);
  EXPECT_GT(obs::gauge("g5.err.force_rel.p50").value(), 0.0);
}

}  // namespace
