// Observability layer: spans, registry, trace export, step metrics.
//
// The concurrency tests (ObsCounter.ParallelIncrementsAreExact,
// ObsSpan.WorkerSpansInheritParentPath) are in the TSan CI job's filter
// (.github/workflows/ci.yml) — the registry and the thread-local span
// stack are the only obs state shared across walk lanes.

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/engines.hpp"
#include "core/simulation.hpp"
#include "ic/plummer.hpp"
#include "obs/obs.hpp"
#include "util/parallel.hpp"

namespace {

using namespace g5;

/// Every obs test owns the global switch/accumulators for its scope.
class ObsEnv : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::reset_phases();
    obs::Registry::instance().reset_values();
  }
  void TearDown() override {
    obs::stop_trace();
    obs::set_enabled(false);
    obs::reset_phases();
    obs::Registry::instance().reset_values();
  }
};

double phase_seconds(const std::string& path) {
  for (const auto& p : obs::phase_report()) {
    if (p.path == path) return p.total_s;
  }
  return -1.0;
}

using ObsRegistry = ObsEnv;
using ObsSpan = ObsEnv;
using ObsCounter = ObsEnv;
using ObsTrace = ObsEnv;
using ObsMetrics = ObsEnv;

TEST_F(ObsRegistry, CounterAndGaugeRoundTrip) {
  obs::counter("test.reg.counter").add(3);
  obs::counter("test.reg.counter").add(2);
  obs::gauge("test.reg.gauge").set(0.625);
  EXPECT_EQ(obs::counter("test.reg.counter").value(), 5u);
  EXPECT_DOUBLE_EQ(obs::gauge("test.reg.gauge").value(), 0.625);

  bool saw_counter = false;
  bool saw_gauge = false;
  for (const auto& s : obs::Registry::instance().snapshot()) {
    if (s.name == "test.reg.counter") {
      saw_counter = true;
      EXPECT_TRUE(s.is_counter);
      EXPECT_EQ(s.count, 5u);
    }
    if (s.name == "test.reg.gauge") {
      saw_gauge = true;
      EXPECT_FALSE(s.is_counter);
      EXPECT_DOUBLE_EQ(s.value, 0.625);
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_gauge);

  obs::Registry::instance().reset_values();
  EXPECT_EQ(obs::counter("test.reg.counter").value(), 0u);
  EXPECT_DOUBLE_EQ(obs::gauge("test.reg.gauge").value(), 0.0);
}

TEST_F(ObsRegistry, SnapshotIsSortedByName) {
  obs::counter("test.sort.b");
  obs::counter("test.sort.a");
  obs::gauge("test.sort.c");
  const auto snap = obs::Registry::instance().snapshot();
  for (std::size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LT(snap[i - 1].name, snap[i].name);
  }
}

TEST_F(ObsCounter, ParallelIncrementsAreExact) {
  // A counter reference obtained once must take lock-free exact updates
  // from every lane — the pattern the engines use per force phase.
  obs::Counter& c = obs::counter("test.parallel.hits");
  util::ThreadPool pool(4);
  constexpr std::size_t kN = 100000;
  pool.parallel_for(kN, 64, [&c](std::size_t begin, std::size_t end,
                                 unsigned /*lane*/) {
    for (std::size_t i = begin; i < end; ++i) c.add(1);
  });
  EXPECT_EQ(c.value(), kN);
}

TEST_F(ObsSpan, NestedPathsWithinThread) {
  {
    obs::Span outer("alpha", "test");
    EXPECT_EQ(obs::Span::current_path(), "/alpha");
    {
      obs::Span inner("beta", "test");
      EXPECT_EQ(obs::Span::current_path(), "/alpha/beta");
      EXPECT_EQ(obs::Span::current_depth(), 2);
    }
    EXPECT_EQ(obs::Span::current_path(), "/alpha");
  }
  EXPECT_EQ(obs::Span::current_depth(), 0);
  EXPECT_GE(phase_seconds("/alpha"), 0.0);
  EXPECT_GE(phase_seconds("/alpha/beta"), 0.0);
}

TEST_F(ObsSpan, DisabledSpansRecordNothing) {
  obs::set_enabled(false);
  {
    obs::Span s("ghost", "test");
    EXPECT_EQ(obs::Span::current_depth(), 0);
  }
  EXPECT_EQ(phase_seconds("/ghost"), -1.0);
}

TEST_F(ObsSpan, WorkerSpansInheritParentPath) {
  // Spans opened inside pool lanes must file under the submitting
  // thread's phase — including lane 0, which runs on that thread.
  util::ThreadPool pool(4);
  std::atomic<int> bad_paths{0};
  {
    obs::Span parent("fork", "test");
    pool.parallel_for(256, 1, [&bad_paths](std::size_t, std::size_t,
                                           unsigned /*lane*/) {
      obs::Span leaf("lane_work", "test");
      if (obs::Span::current_path() != "/fork/worker/lane_work" &&
          obs::Span::current_path() != "/fork/lane_work") {
        bad_paths.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  EXPECT_EQ(bad_paths.load(), 0);
  // Lane 0 nests directly under /fork; worker threads add the pool span.
  const double direct = phase_seconds("/fork/lane_work");
  const double pooled = phase_seconds("/fork/worker/lane_work");
  EXPECT_TRUE(direct >= 0.0 || pooled >= 0.0);
}

TEST_F(ObsSpan, RecordPhaseExtendsCurrentPath) {
  {
    obs::Span s("reduce", "test");
    obs::record_phase("cpu", 1.25, 3);
  }
  bool found = false;
  for (const auto& p : obs::phase_report()) {
    if (p.path == "/reduce/cpu") {
      found = true;
      EXPECT_EQ(p.count, 3u);
      EXPECT_DOUBLE_EQ(p.total_s, 1.25);
    }
  }
  EXPECT_TRUE(found);
}

// --- minimal recursive-descent JSON validator (well-formedness only) ---

struct JsonCursor {
  const std::string& s;
  std::size_t i = 0;
  bool fail = false;

  void skip_ws() {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
  }
  bool consume(char c) {
    skip_ws();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }
  void value() {  // NOLINT(misc-no-recursion)
    skip_ws();
    if (fail || i >= s.size()) {
      fail = true;
      return;
    }
    const char c = s[i];
    if (c == '{') {
      ++i;
      if (consume('}')) return;
      do {
        skip_ws();
        string();
        if (!consume(':')) fail = true;
        value();
      } while (!fail && consume(','));
      if (!consume('}')) fail = true;
    } else if (c == '[') {
      ++i;
      if (consume(']')) return;
      do {
        value();
      } while (!fail && consume(','));
      if (!consume(']')) fail = true;
    } else if (c == '"') {
      string();
    } else if (c == 't') {
      literal("true");
    } else if (c == 'f') {
      literal("false");
    } else if (c == 'n') {
      literal("null");
    } else {
      number();
    }
  }
  void string() {
    if (i >= s.size() || s[i] != '"') {
      fail = true;
      return;
    }
    ++i;
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\') ++i;
      ++i;
    }
    if (i >= s.size()) {
      fail = true;
      return;
    }
    ++i;
  }
  void literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p, ++i) {
      if (i >= s.size() || s[i] != *p) {
        fail = true;
        return;
      }
    }
  }
  void number() {
    const std::size_t start = i;
    while (i < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[i])) || s[i] == '-' ||
            s[i] == '+' || s[i] == '.' || s[i] == 'e' || s[i] == 'E')) {
      ++i;
    }
    if (i == start) fail = true;
  }
  bool whole_document() {
    value();
    skip_ws();
    return !fail && i == s.size();
  }
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST_F(ObsTrace, ChromeTraceWellFormed) {
  obs::start_trace();
  {
    obs::Span a("phase_a", "test");
    obs::Span b("phase \"b\"\\slash", "test");  // exercises escaping
    obs::trace_counter("test.counter", 42.0);
  }
  obs::stop_trace();
  EXPECT_GE(obs::trace_event_count(), 3u);
  EXPECT_EQ(obs::trace_dropped_count(), 0u);

  const std::string path = ::testing::TempDir() + "obs_trace_test.json";
  ASSERT_TRUE(obs::write_trace(path));
  const std::string doc = slurp(path);
  ASSERT_FALSE(doc.empty());
  JsonCursor cur{doc};
  EXPECT_TRUE(cur.whole_document()) << "invalid JSON near offset " << cur.i;
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"C\""), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(ObsTrace, BufferCapDropsAndCounts) {
  obs::start_trace(4);
  for (int k = 0; k < 10; ++k) {
    obs::Span s("tiny", "test");
  }
  obs::stop_trace();
  EXPECT_LE(obs::trace_event_count(), 4u);
  EXPECT_GE(obs::trace_dropped_count(), 6u);
}

TEST_F(ObsMetrics, TwoStepSimulationEmitsRecords) {
  ic::PlummerConfig pc;
  pc.n = 256;
  pc.seed = 7;
  auto pset = ic::make_plummer(pc);

  core::ForceParams fp;
  fp.threads = 2;
  core::HostTreeEngine engine(fp, core::HostTreeEngine::Mode::Modified);

  const std::string path = ::testing::TempDir() + "obs_metrics_test.jsonl";
  core::SimulationConfig sc;
  sc.dt = 0.01;
  sc.steps = 2;
  sc.log_every = 0;
  sc.metrics_jsonl = path;
  core::Simulation sim(engine, sc);
  sim.run(pset);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::string last;
  std::uint64_t records = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++records;
    last = line;
    JsonCursor cur{line};
    EXPECT_TRUE(cur.whole_document()) << "bad JSONL record: " << line;
    EXPECT_NE(line.find("\"step\":"), std::string::npos);
    EXPECT_NE(line.find("\"interactions\":"), std::string::npos);
    EXPECT_NE(line.find("\"grape_occupancy\":"), std::string::npos);
  }
  EXPECT_EQ(records, 2u);
  // Host engine: grape account deltas stay zero.
  EXPECT_NE(last.find("\"grape_force_calls\":0"), std::string::npos);
  std::remove(path.c_str());

  // The instrumented phases showed up under the step span.
  EXPECT_GE(phase_seconds("/step"), 0.0);
  EXPECT_GE(phase_seconds("/step/force/build"), 0.0);
  EXPECT_GE(phase_seconds("/step/force/walk"), 0.0);
  EXPECT_GE(phase_seconds("/step/integrate"), 0.0);
  EXPECT_GE(obs::counter("g5.sim.steps").value(), 2u);
  EXPECT_GT(obs::counter("g5.walk.interactions").value(), 0u);
}

TEST_F(ObsMetrics, WriterThrowsOnUnwritablePath) {
  EXPECT_THROW(obs::MetricsWriter("/nonexistent-dir-g5/metrics.jsonl"),
               std::runtime_error);
}

}  // namespace
