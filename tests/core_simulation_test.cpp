#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/engines.hpp"
#include "core/simulation.hpp"
#include "ic/plummer.hpp"

namespace {

using namespace g5;
using core::ForceParams;
using core::Simulation;
using core::SimulationConfig;

model::ParticleSet small_plummer() {
  return ic::make_plummer(ic::PlummerConfig{.n = 128, .seed = 3});
}

TEST(Simulation, SummaryFieldsFilled) {
  auto pset = small_plummer();
  core::HostDirectEngine engine((ForceParams{.eps = 0.05}));
  SimulationConfig cfg;
  cfg.dt = 0.01;
  cfg.steps = 20;
  cfg.log_every = 0;
  Simulation sim(engine, cfg);
  const auto s = sim.run(pset);
  EXPECT_EQ(s.steps, 20u);
  EXPECT_GT(s.wall_seconds, 0.0);
  EXPECT_EQ(s.engine.evaluations, 21u);  // prime + 20 steps
  EXPECT_LT(s.energy_drift, 1e-3);
  EXPECT_LT(s.momentum_drift.x, 1e-12);
  // Central pairwise forces exert no net torque: L conserved to roundoff.
  EXPECT_LT(s.angular_momentum_drift, 1e-11);
  EXPECT_EQ(s.grape.force_calls, 0u);  // host engine: no hardware account
}

TEST(Simulation, GrapeAccountSurfaced) {
  auto pset = small_plummer();
  auto engine = core::make_engine(
      "grape-tree", ForceParams{.eps = 0.05, .theta = 0.75, .n_crit = 64});
  SimulationConfig cfg;
  cfg.dt = 0.01;
  cfg.steps = 3;
  cfg.log_every = 0;
  Simulation sim(*engine, cfg);
  const auto s = sim.run(pset);
  EXPECT_GT(s.grape.force_calls, 0u);
  EXPECT_GT(s.grape.interactions, 0u);
  EXPECT_GT(s.grape.modeled_total(), 0.0);
}

TEST(Simulation, HookCalledEveryStep) {
  auto pset = small_plummer();
  core::HostDirectEngine engine((ForceParams{.eps = 0.05}));
  SimulationConfig cfg;
  cfg.dt = 0.01;
  cfg.steps = 7;
  cfg.log_every = 0;
  Simulation sim(engine, cfg);
  std::vector<std::uint64_t> seen;
  sim.set_step_hook([&](std::uint64_t step, const model::ParticleSet& ps) {
    EXPECT_EQ(ps.size(), 128u);
    seen.push_back(step);
  });
  sim.run(pset);
  ASSERT_EQ(seen.size(), 7u);
  EXPECT_EQ(seen.front(), 1u);
  EXPECT_EQ(seen.back(), 7u);
}

TEST(Simulation, SnapshotsWritten) {
  auto pset = small_plummer();
  core::HostDirectEngine engine((ForceParams{.eps = 0.05}));
  SimulationConfig cfg;
  cfg.dt = 0.01;
  cfg.steps = 4;
  cfg.snapshot_every = 2;
  cfg.log_every = 0;
  cfg.snapshot_prefix =
      (std::filesystem::temp_directory_path() / "g5_sim_test").string();
  Simulation sim(engine, cfg);
  const auto s = sim.run(pset);
  EXPECT_EQ(s.snapshots_written, 3u);  // t=0 plus steps 2 and 4
  for (int i = 0; i < 3; ++i) {
    char name[64];
    std::snprintf(name, sizeof(name), "_%06d.g5snap", i);
    const std::string path = cfg.snapshot_prefix + name;
    EXPECT_TRUE(std::filesystem::exists(path)) << path;
    std::filesystem::remove(path);
  }
}

TEST(Simulation, StatsCsvWritten) {
  auto pset = small_plummer();
  core::HostDirectEngine engine((ForceParams{.eps = 0.05}));
  SimulationConfig cfg;
  cfg.dt = 0.01;
  cfg.steps = 5;
  cfg.log_every = 0;
  cfg.stats_csv =
      (std::filesystem::temp_directory_path() / "g5_stats.csv").string();
  Simulation sim(engine, cfg);
  sim.run(pset);
  std::ifstream in(cfg.stats_csv);
  std::string line;
  std::getline(in, line);
  EXPECT_NE(line.find("step,time,interactions"), std::string::npos);
  int rows = 0;
  while (std::getline(in, line)) {
    if (!line.empty()) ++rows;
  }
  EXPECT_EQ(rows, 5);
  in.close();
  std::filesystem::remove(cfg.stats_csv);

  cfg.stats_csv = "/nonexistent/dir/stats.csv";
  Simulation bad(engine, cfg);
  auto pset2 = small_plummer();
  EXPECT_THROW(bad.run(pset2), std::runtime_error);
}

TEST(Simulation, DtScheduleOverridesSteps) {
  auto pset = small_plummer();
  core::HostDirectEngine engine((ForceParams{.eps = 0.05}));
  SimulationConfig cfg;
  cfg.steps = 99;  // overridden
  cfg.dt_schedule = {0.01, 0.02, 0.03};
  cfg.log_every = 0;
  Simulation sim(engine, cfg);
  std::vector<std::uint64_t> seen;
  sim.set_step_hook(
      [&](std::uint64_t step, const model::ParticleSet&) { seen.push_back(step); });
  const auto s = sim.run(pset);
  EXPECT_EQ(s.steps, 3u);
  EXPECT_EQ(seen.size(), 3u);
}

TEST(Simulation, Validation) {
  core::HostDirectEngine engine((ForceParams{}));
  SimulationConfig cfg;
  cfg.dt = 0.0;
  EXPECT_THROW(Simulation(engine, cfg), std::invalid_argument);
  cfg.dt = 0.01;
  cfg.dt_schedule = {0.01, -0.5};
  EXPECT_THROW(Simulation(engine, cfg), std::invalid_argument);
}

TEST(Simulation, StatsResetBetweenRuns) {
  auto pset = small_plummer();
  auto engine = core::make_engine(
      "grape-tree", ForceParams{.eps = 0.05, .theta = 0.75, .n_crit = 64});
  SimulationConfig cfg;
  cfg.dt = 0.01;
  cfg.steps = 2;
  cfg.log_every = 0;
  Simulation sim(*engine, cfg);
  const auto first = sim.run(pset);
  const auto second = sim.run(pset);
  // Engine stats and hardware account restart each run.
  EXPECT_EQ(first.engine.evaluations, second.engine.evaluations);
  EXPECT_NEAR(static_cast<double>(second.grape.force_calls),
              static_cast<double>(first.grape.force_calls),
              0.25 * static_cast<double>(first.grape.force_calls) + 1.0);
}

}  // namespace
