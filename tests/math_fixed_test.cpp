#include <gtest/gtest.h>

#include <cmath>

#include "math/fixed.hpp"
#include "math/rng.hpp"

namespace {

using g5::math::FixedAccumulator;
using g5::math::FixedPointCodec;

TEST(FixedPointCodec, QuantumMatchesSpan) {
  const FixedPointCodec codec(-1.0, 1.0, 16);
  EXPECT_DOUBLE_EQ(codec.quantum(), 2.0 / 65536.0);
  EXPECT_EQ(codec.bits(), 16);
}

TEST(FixedPointCodec, RoundTripWithinHalfQuantum) {
  const FixedPointCodec codec(-10.0, 10.0, 24);
  g5::math::Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform(-10.0, 10.0);
    const double q = codec.quantize(x);
    EXPECT_LE(std::fabs(q - x), 0.5 * codec.quantum() * (1.0 + 1e-12));
  }
}

TEST(FixedPointCodec, EncodeIsMonotone) {
  const FixedPointCodec codec(-4.0, 4.0, 12);
  double prev = codec.quantize(-4.0);
  for (double x = -4.0; x <= 4.0; x += 0.001) {
    const double q = codec.quantize(x);
    EXPECT_GE(q, prev);
    prev = q;
  }
}

TEST(FixedPointCodec, SaturatesOutsideRange) {
  const FixedPointCodec codec(-1.0, 1.0, 8);
  EXPECT_DOUBLE_EQ(codec.quantize(50.0), codec.hi());
  EXPECT_DOUBLE_EQ(codec.quantize(-50.0), codec.lo());
  EXPECT_LE(codec.hi(), 1.0);
  EXPECT_GE(codec.lo(), -1.0 - codec.quantum());
}

TEST(FixedPointCodec, ExactDifferencesOfCodes) {
  // The pipeline relies on x_j - x_i being exact in code space.
  const FixedPointCodec codec(-2.0, 2.0, 20);
  const auto a = codec.encode(0.125);
  const auto b = codec.encode(-0.375);
  const double diff = codec.delta_to_double(a - b);
  EXPECT_NEAR(diff, 0.5, codec.quantum());
}

TEST(FixedPointCodec, RejectsBadArguments) {
  EXPECT_THROW(FixedPointCodec(1.0, 1.0, 16), std::invalid_argument);
  EXPECT_THROW(FixedPointCodec(2.0, 1.0, 16), std::invalid_argument);
  EXPECT_THROW(FixedPointCodec(0.0, 1.0, 1), std::invalid_argument);
  EXPECT_THROW(FixedPointCodec(0.0, 1.0, 63), std::invalid_argument);
}

class FixedCodecBits : public ::testing::TestWithParam<int> {};

TEST_P(FixedCodecBits, ErrorScalesWithBits) {
  const int bits = GetParam();
  const FixedPointCodec codec(-1.0, 1.0, bits);
  const double expected_quantum = 2.0 / std::ldexp(1.0, bits);
  EXPECT_DOUBLE_EQ(codec.quantum(), expected_quantum);
  g5::math::Rng rng(71);
  double worst = 0.0;
  // Stay a quantum clear of the rails: the +max code is 2^(b-1)-1 (two's
  // complement), so values within half a quantum of +1 saturate.
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(codec.lo() + expected_quantum,
                                 codec.hi() - expected_quantum);
    worst = std::max(worst, std::fabs(codec.quantize(x) - x));
  }
  EXPECT_LE(worst, 0.5 * expected_quantum * (1.0 + 1e-12));
}

INSTANTIATE_TEST_SUITE_P(Widths, FixedCodecBits,
                         ::testing::Values(8, 12, 16, 20, 24, 32, 40));

TEST(FixedAccumulator, ExactMultiplesAccumulate) {
  FixedAccumulator acc(0.25);
  acc.add(1.0);
  acc.add(0.5);
  acc.add(-0.25);
  EXPECT_DOUBLE_EQ(acc.value(), 1.25);
  EXPECT_FALSE(acc.saturated());
}

TEST(FixedAccumulator, RoundsToQuantum) {
  FixedAccumulator acc(1.0);
  acc.add(0.4);  // rounds to 0
  EXPECT_DOUBLE_EQ(acc.value(), 0.0);
  acc.add(0.6);  // rounds to 1
  EXPECT_DOUBLE_EQ(acc.value(), 1.0);
}

TEST(FixedAccumulator, SaturatesAndFlags) {
  FixedAccumulator acc(1.0);
  acc.add(8.0e18);
  acc.add(8.0e18);
  EXPECT_TRUE(acc.saturated());
  EXPECT_GT(acc.value(), 8.0e18);
  acc.reset();
  EXPECT_FALSE(acc.saturated());
  EXPECT_DOUBLE_EQ(acc.value(), 0.0);
}

TEST(FixedAccumulator, NegativeSaturation) {
  FixedAccumulator acc(1.0);
  acc.add(-8.0e18);
  acc.add(-8.0e18);
  EXPECT_TRUE(acc.saturated());
  EXPECT_LT(acc.value(), -8.0e18);
}

TEST(FixedAccumulator, RejectsBadQuantum) {
  EXPECT_THROW(FixedAccumulator(0.0), std::invalid_argument);
  EXPECT_THROW(FixedAccumulator(-1.0), std::invalid_argument);
}

TEST(FixedAccumulator, ManySmallAddsStayExact) {
  // 10^6 adds of one quantum each: integer arithmetic, no drift.
  FixedAccumulator acc(1e-9);
  for (int i = 0; i < 1000000; ++i) acc.add(1e-9);
  EXPECT_DOUBLE_EQ(acc.value(), 1e-9 * 1000000);
}

}  // namespace
