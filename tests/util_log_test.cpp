#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/log.hpp"

namespace {

using g5::util::LogLevel;
using g5::util::parse_log_level;

TEST(Log, ParseLevels) {
  EXPECT_EQ(parse_log_level("trace"), LogLevel::Trace);
  EXPECT_EQ(parse_log_level("DEBUG"), LogLevel::Debug);
  EXPECT_EQ(parse_log_level("Info"), LogLevel::Info);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::Warn);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::Warn);
  EXPECT_EQ(parse_log_level("ERROR"), LogLevel::Error);
  EXPECT_EQ(parse_log_level("off"), LogLevel::Off);
  EXPECT_EQ(parse_log_level("none"), LogLevel::Off);
  // Unknown names default to Info rather than throwing.
  EXPECT_EQ(parse_log_level("verbose"), LogLevel::Info);
  EXPECT_EQ(parse_log_level(""), LogLevel::Info);
}

TEST(Log, SetAndGetLevel) {
  const LogLevel before = g5::util::log_level();
  g5::util::set_log_level(LogLevel::Error);
  EXPECT_EQ(g5::util::log_level(), LogLevel::Error);
  // Suppressed emission must not crash (goes nowhere).
  g5::util::log_info() << "suppressed " << 42;
  g5::util::set_log_level(before);
}

TEST(Log, StreamStyleComposition) {
  const LogLevel before = g5::util::log_level();
  g5::util::set_log_level(LogLevel::Off);
  // All severities accept stream operands of mixed types.
  g5::util::log_debug() << "x=" << 1.5 << " n=" << 7 << " s=" << "str";
  g5::util::log_warn() << "w";
  g5::util::log_error() << "e";
  g5::util::set_log_level(before);
}

// The emit path is guarded by a util::Mutex (statically annotated, see
// util/mutex.hpp); this exercises it from many threads so the TSan job
// checks the same discipline dynamically, and the capture check proves
// records never interleave: every stderr line must be one complete
// "[g5 LEVEL] msg" record.
TEST(Log, ConcurrentEmissionDoesNotInterleave) {
  const LogLevel before = g5::util::log_level();
  g5::util::set_log_level(LogLevel::Info);

  constexpr int kThreads = 8;
  constexpr int kRecords = 50;
  testing::internal::CaptureStderr();
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([t] {
        for (int i = 0; i < kRecords; ++i) {
          g5::util::log_info() << "thread " << t << " record " << i
                               << " payload abcdefghijklmnopqrstuvwxyz";
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  const std::string captured = testing::internal::GetCapturedStderr();
  g5::util::set_log_level(before);

  std::istringstream lines(captured);
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    ASSERT_EQ(line.rfind("[g5 INFO ] thread ", 0), 0) << "torn record: "
                                                      << line;
    EXPECT_NE(line.find("payload abcdefghijklmnopqrstuvwxyz"),
              std::string::npos)
        << "truncated record: " << line;
    ++count;
  }
  EXPECT_EQ(count, kThreads * kRecords);
}

// Concurrent level reads/writes race only on the atomic, never tear.
TEST(Log, ConcurrentLevelChangesAreSafe) {
  const LogLevel before = g5::util::log_level();
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 200; ++i) {
        g5::util::set_log_level(t % 2 == 0 ? LogLevel::Warn
                                           : LogLevel::Error);
        const LogLevel seen = g5::util::log_level();
        ASSERT_TRUE(seen == LogLevel::Warn || seen == LogLevel::Error);
      }
    });
  }
  for (auto& th : threads) th.join();
  g5::util::set_log_level(before);
}

}  // namespace
