#include <gtest/gtest.h>

#include "util/log.hpp"

namespace {

using g5::util::LogLevel;
using g5::util::parse_log_level;

TEST(Log, ParseLevels) {
  EXPECT_EQ(parse_log_level("trace"), LogLevel::Trace);
  EXPECT_EQ(parse_log_level("DEBUG"), LogLevel::Debug);
  EXPECT_EQ(parse_log_level("Info"), LogLevel::Info);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::Warn);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::Warn);
  EXPECT_EQ(parse_log_level("ERROR"), LogLevel::Error);
  EXPECT_EQ(parse_log_level("off"), LogLevel::Off);
  EXPECT_EQ(parse_log_level("none"), LogLevel::Off);
  // Unknown names default to Info rather than throwing.
  EXPECT_EQ(parse_log_level("verbose"), LogLevel::Info);
  EXPECT_EQ(parse_log_level(""), LogLevel::Info);
}

TEST(Log, SetAndGetLevel) {
  const LogLevel before = g5::util::log_level();
  g5::util::set_log_level(LogLevel::Error);
  EXPECT_EQ(g5::util::log_level(), LogLevel::Error);
  // Suppressed emission must not crash (goes nowhere).
  g5::util::log_info() << "suppressed " << 42;
  g5::util::set_log_level(before);
}

TEST(Log, StreamStyleComposition) {
  const LogLevel before = g5::util::log_level();
  g5::util::set_log_level(LogLevel::Off);
  // All severities accept stream operands of mixed types.
  g5::util::log_debug() << "x=" << 1.5 << " n=" << 7 << " s=" << "str";
  g5::util::log_warn() << "w";
  g5::util::log_error() << "e";
  g5::util::set_log_level(before);
}

}  // namespace
