#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "math/morton.hpp"
#include "math/rng.hpp"

namespace {

using namespace g5::math;

TEST(Morton, SpreadCompactInverse) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const auto x = static_cast<std::uint32_t>(rng.uniform_index(
        kMortonCoordMax + 1));
    EXPECT_EQ(morton_compact(morton_spread(x)), x);
  }
  EXPECT_EQ(morton_compact(morton_spread(0)), 0u);
  EXPECT_EQ(morton_compact(morton_spread(kMortonCoordMax)), kMortonCoordMax);
}

TEST(Morton, EncodeDecodeRoundTrip) {
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) {
    const auto x = static_cast<std::uint32_t>(rng.uniform_index(1u << 21));
    const auto y = static_cast<std::uint32_t>(rng.uniform_index(1u << 21));
    const auto z = static_cast<std::uint32_t>(rng.uniform_index(1u << 21));
    std::uint32_t dx, dy, dz;
    morton_decode(morton_encode(x, y, z), dx, dy, dz);
    EXPECT_EQ(dx, x);
    EXPECT_EQ(dy, y);
    EXPECT_EQ(dz, z);
  }
}

TEST(Morton, BitInterleavingLayout) {
  // x bit 0 -> key bit 0, y bit 0 -> key bit 1, z bit 0 -> key bit 2.
  EXPECT_EQ(morton_encode(1, 0, 0), 1ULL);
  EXPECT_EQ(morton_encode(0, 1, 0), 2ULL);
  EXPECT_EQ(morton_encode(0, 0, 1), 4ULL);
  EXPECT_EQ(morton_encode(2, 0, 0), 8ULL);
  EXPECT_EQ(morton_encode(1, 1, 1), 7ULL);
}

TEST(Morton, KeyOrderingIsOctreeOrdering) {
  // Points in the low half of the cube along x precede the high half at
  // the root split; likewise per axis.
  const Vec3d lo{0.0, 0.0, 0.0};
  const double size = 1.0;
  const auto k_low = morton_key(Vec3d{0.25, 0.25, 0.25}, lo, size);
  const auto k_hx = morton_key(Vec3d{0.75, 0.25, 0.25}, lo, size);
  const auto k_hy = morton_key(Vec3d{0.25, 0.75, 0.25}, lo, size);
  const auto k_hz = morton_key(Vec3d{0.25, 0.25, 0.75}, lo, size);
  const auto k_high = morton_key(Vec3d{0.75, 0.75, 0.75}, lo, size);
  EXPECT_LT(k_low, k_hx);
  EXPECT_LT(k_hx, k_hy);
  EXPECT_LT(k_hy, k_hz);
  EXPECT_LT(k_hz, k_high);
}

TEST(Morton, OctantDigits) {
  const Vec3d lo{0.0, 0.0, 0.0};
  // A point in the (+x, +y, +z) octant has octant 7 at level 0.
  const auto key = morton_key(Vec3d{0.9, 0.9, 0.9}, lo, 1.0);
  EXPECT_EQ(morton_octant(key, 0), 7u);
  // A point in the low corner has octant 0 at every level.
  const auto key0 = morton_key(Vec3d{1e-9, 1e-9, 1e-9}, lo, 1.0);
  for (int level = 0; level < 10; ++level) {
    EXPECT_EQ(morton_octant(key0, level), 0u);
  }
  // Octant digit = 3 bits: x | y<<1 | z<<2 of the level's half-split.
  const auto kx = morton_key(Vec3d{0.9, 0.1, 0.1}, lo, 1.0);
  EXPECT_EQ(morton_octant(kx, 0), 1u);
  const auto ky = morton_key(Vec3d{0.1, 0.9, 0.1}, lo, 1.0);
  EXPECT_EQ(morton_octant(ky, 0), 2u);
  const auto kz = morton_key(Vec3d{0.1, 0.1, 0.9}, lo, 1.0);
  EXPECT_EQ(morton_octant(kz, 0), 4u);
}

TEST(Morton, OutOfBoxClamps) {
  const Vec3d lo{0.0, 0.0, 0.0};
  const auto k_under = morton_key(Vec3d{-5.0, -5.0, -5.0}, lo, 1.0);
  const auto k_over = morton_key(Vec3d{5.0, 5.0, 5.0}, lo, 1.0);
  EXPECT_EQ(k_under, morton_encode(0, 0, 0));
  EXPECT_EQ(k_over,
            morton_encode(kMortonCoordMax, kMortonCoordMax, kMortonCoordMax));
}

TEST(Morton, SpatialLocalityOfConsecutiveKeys) {
  // Sorting random points by Morton key: consecutive points are close on
  // average (the property the tree build exploits). Compare against the
  // unsorted ordering.
  Rng rng(3);
  std::vector<Vec3d> pts(2000);
  for (auto& p : pts) p = rng.in_box(Vec3d{0, 0, 0}, Vec3d{1, 1, 1});
  auto mean_step = [&](const std::vector<Vec3d>& v) {
    double s = 0.0;
    for (std::size_t i = 1; i < v.size(); ++i) s += (v[i] - v[i - 1]).norm();
    return s / static_cast<double>(v.size() - 1);
  };
  const double before = mean_step(pts);
  std::sort(pts.begin(), pts.end(), [&](const Vec3d& a, const Vec3d& b) {
    return morton_key(a, Vec3d{0, 0, 0}, 1.0) <
           morton_key(b, Vec3d{0, 0, 0}, 1.0);
  });
  const double after = mean_step(pts);
  EXPECT_LT(after, 0.5 * before);
}

}  // namespace
