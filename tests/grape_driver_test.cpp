#include <gtest/gtest.h>

#include <cmath>

#include "grape/driver.hpp"
#include "grape/host_reference.hpp"
#include "ic/uniform.hpp"

namespace {

using namespace g5;
using grape::Grape5Device;
using grape::SystemConfig;
using grape::Vec3d;

SystemConfig tiny_config(std::size_t jmem = 512) {
  SystemConfig cfg;
  cfg.board.jmem_capacity = jmem;
  return cfg;
}

TEST(Grape5Device, ChunkedEqualsResident) {
  // A j-list longer than the particle memory must give the same forces as
  // an unchunked evaluation on a big-memory device.
  const auto src = ic::make_uniform_cube(1500, -1.0, 1.0, 1.0, 13);
  std::vector<Vec3d> acc_small(32), acc_big(32);
  std::vector<double> pot_small(32), pot_big(32);
  const std::span<const Vec3d> targets(src.pos().data(), 32);

  Grape5Device small(tiny_config(512));  // 1024 aggregate < 1500
  small.set_range(-2.0, 2.0, src.mass()[0]);
  small.set_eps(0.02);
  small.compute_forces_chunked(targets, src.pos(), src.mass(), acc_small,
                               pot_small);

  Grape5Device big(tiny_config(4096));
  big.set_range(-2.0, 2.0, src.mass()[0]);
  big.set_eps(0.02);
  big.set_j(src.pos(), src.mass());
  big.compute_forces(targets, acc_big, pot_big);

  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_LT((acc_small[i] - acc_big[i]).norm(),
              1e-8 + 1e-6 * acc_big[i].norm())
        << i;
    EXPECT_NEAR(pot_small[i], pot_big[i], 1e-8 + 1e-6 * std::fabs(pot_big[i]))
        << i;
  }
}

TEST(Grape5Device, AgainstHostReference) {
  const auto src = ic::make_uniform_cube(400, -1.0, 1.0, 1.0, 17);
  Grape5Device device(tiny_config());
  device.set_range(-2.0, 2.0, src.mass()[0]);
  device.set_eps(0.01);
  std::vector<Vec3d> acc(400), ref_acc(400);
  std::vector<double> pot(400), ref_pot(400);
  device.compute_forces_chunked(src.pos(), src.pos(), src.mass(), acc, pot);
  grape::host_forces_on_targets(src.pos(), src.pos(), src.mass(), 0.01,
                                ref_acc, ref_pot);
  double worst = 0.0;
  for (std::size_t i = 0; i < 400; ++i) {
    worst = std::max(worst, (acc[i] - ref_acc[i]).norm() / ref_acc[i].norm());
  }
  EXPECT_LT(worst, 0.05);
}

TEST(Grape5Device, Validation) {
  Grape5Device device(tiny_config());
  EXPECT_THROW(device.set_range(1.0, 1.0, 0.1), std::invalid_argument);
  EXPECT_THROW(device.set_eps(-1.0), std::invalid_argument);
  const auto src = ic::make_uniform_cube(8, -1.0, 1.0, 1.0, 1);
  EXPECT_THROW(device.set_j(src.pos(), src.mass()), std::logic_error);
}

class CApi : public ::testing::Test {
 protected:
  void SetUp() override {
    grape::g5_close();  // clean slate even if a prior test leaked state
    grape::g5_open();
  }
  void TearDown() override { grape::g5_close(); }
};

TEST_F(CApi, FullSequenceMatchesHost) {
  const std::size_t n = 300;
  const auto src = ic::make_uniform_cube(n, -1.0, 1.0, 1.0, 19);
  std::vector<double> xj(3 * n), mj(n);
  for (std::size_t j = 0; j < n; ++j) {
    xj[3 * j] = src.pos()[j].x;
    xj[3 * j + 1] = src.pos()[j].y;
    xj[3 * j + 2] = src.pos()[j].z;
    mj[j] = src.mass()[j];
  }
  grape::g5_set_range(-2.0, 2.0, mj[0]);
  grape::g5_set_eps_to_all(0.02);
  grape::g5_set_n(static_cast<int>(n));
  grape::g5_set_xmj(0, static_cast<int>(n),
                    reinterpret_cast<const double(*)[3]>(xj.data()), mj.data());

  const int ni = 17;
  grape::g5_set_xi(ni, reinterpret_cast<const double(*)[3]>(xj.data()));
  grape::g5_run();
  std::vector<double> a(3 * static_cast<std::size_t>(ni)),
      p(static_cast<std::size_t>(ni));
  grape::g5_get_force(ni, reinterpret_cast<double(*)[3]>(a.data()), p.data());

  std::vector<Vec3d> ref_acc(static_cast<std::size_t>(ni));
  std::vector<double> ref_pot(static_cast<std::size_t>(ni));
  grape::host_forces_on_targets(
      std::span<const Vec3d>(src.pos().data(), static_cast<std::size_t>(ni)),
      src.pos(), src.mass(), 0.02, ref_acc, ref_pot);
  for (int i = 0; i < ni; ++i) {
    const Vec3d got{a[3 * i], a[3 * i + 1], a[3 * i + 2]};
    EXPECT_LT((got - ref_acc[static_cast<std::size_t>(i)]).norm() /
                  ref_acc[static_cast<std::size_t>(i)].norm(),
              0.05)
        << i;
  }
}

TEST_F(CApi, ContractViolationsThrow) {
  EXPECT_GT(grape::g5_get_number_of_pipelines(), 0);
  EXPECT_GT(grape::g5_get_jmemsize(), 0);
  // xi before any setup.
  std::vector<double> x(3 * 4, 0.5);
  EXPECT_THROW(grape::g5_run(), std::logic_error);
  grape::g5_set_range(-1.0, 1.0, 0.1);
  grape::g5_set_n(4);
  EXPECT_THROW(
      grape::g5_set_xmj(2, 4, reinterpret_cast<const double(*)[3]>(x.data()),
                        x.data()),
      std::out_of_range);
  EXPECT_THROW(grape::g5_set_n(grape::g5_get_jmemsize() + 1),
               std::out_of_range);
  EXPECT_THROW(
      grape::g5_set_xi(grape::g5_get_number_of_pipelines() + 1,
                       reinterpret_cast<const double(*)[3]>(x.data())),
      std::out_of_range);
  // get_force before run.
  grape::g5_set_xi(4, reinterpret_cast<const double(*)[3]>(x.data()));
  double a[4][3], p[4];
  EXPECT_THROW(grape::g5_get_force(4, a, p), std::logic_error);
}

TEST_F(CApi, ClosedDeviceRejectsCalls) {
  grape::g5_close();
  EXPECT_FALSE(grape::g5_is_open());
  EXPECT_THROW(grape::g5_set_range(-1.0, 1.0, 0.1), std::logic_error);
  EXPECT_THROW(grape::g5_get_number_of_pipelines(), std::logic_error);
}

TEST_F(CApi, PipelineCountMatchesPaperSystem) {
  // 2 boards x 16 pipelines x VMP 6 = 192 virtual i-slots.
  EXPECT_EQ(grape::g5_get_number_of_pipelines(), 192);
  EXPECT_EQ(grape::g5_get_jmemsize(), 262144);
}

}  // namespace
