#include <gtest/gtest.h>

#include <cmath>

#include "grape/host_reference.hpp"
#include "grape/system.hpp"
#include "ic/uniform.hpp"
#include "math/rng.hpp"

namespace {

using namespace g5;
using grape::Grape5System;
using grape::SystemConfig;
using grape::Vec3d;

SystemConfig tiny_config(std::size_t boards = 2, std::size_t jmem = 1024) {
  SystemConfig cfg;
  cfg.boards = boards;
  cfg.board.jmem_capacity = jmem;
  return cfg;
}

TEST(Grape5System, PaperConfiguration) {
  const SystemConfig cfg = SystemConfig::paper_system();
  EXPECT_EQ(cfg.boards, 2u);
  EXPECT_EQ(cfg.total_pipelines(), 32u);
  EXPECT_NEAR(cfg.peak_flops(), 109.44e9, 1e6);
  EXPECT_EQ(cfg.board.i_slots(), 96u);
}

TEST(Grape5System, MatchesHostReference) {
  const auto src = ic::make_uniform_cube(600, -1.0, 1.0, 1.0, 3);
  Grape5System sys(tiny_config());
  sys.set_range(-2.0, 2.0, 0.01, 1.0 / 600.0);
  sys.set_j_particles(src.pos(), src.mass());

  std::vector<Vec3d> acc(64), ref_acc(64);
  std::vector<double> pot(64), ref_pot(64);
  const std::span<const Vec3d> targets(src.pos().data(), 64);
  sys.compute(targets, acc, pot);
  grape::host_forces_on_targets(targets, src.pos(), src.mass(), 0.01,
                                ref_acc, ref_pot);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_LT((acc[i] - ref_acc[i]).norm() / ref_acc[i].norm(), 0.02) << i;
    EXPECT_NEAR(pot[i], ref_pot[i], 0.02 * std::fabs(ref_pot[i])) << i;
  }
  EXPECT_FALSE(sys.any_saturation());
}

TEST(Grape5System, BoardPartitioningInvariant) {
  // 1 board vs 3 boards must agree bit-for-bit apart from partial-sum
  // ordering (tolerance: accumulator quantum scale).
  const auto src = ic::make_uniform_cube(333, -1.0, 1.0, 1.0, 7);
  std::vector<Vec3d> acc1(32), acc3(32);
  std::vector<double> pot1(32), pot3(32);
  const std::span<const Vec3d> targets(src.pos().data(), 32);

  Grape5System one(tiny_config(1));
  one.set_range(-2.0, 2.0, 0.02, src.mass()[0]);
  one.set_j_particles(src.pos(), src.mass());
  one.compute(targets, acc1, pot1);

  Grape5System three(tiny_config(3));
  three.set_range(-2.0, 2.0, 0.02, src.mass()[0]);
  three.set_j_particles(src.pos(), src.mass());
  three.compute(targets, acc3, pot3);

  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_LT((acc1[i] - acc3[i]).norm(), 1e-9 + 1e-6 * acc1[i].norm()) << i;
    EXPECT_NEAR(pot1[i], pot3[i], 1e-9 + 1e-6 * std::fabs(pot1[i])) << i;
  }
}

TEST(Grape5System, JmemCapacityEnforced) {
  Grape5System sys(tiny_config(2, 100));
  EXPECT_EQ(sys.jmem_capacity(), 200u);
  const auto src = ic::make_uniform_cube(201, -1.0, 1.0, 1.0, 9);
  sys.set_range(-2.0, 2.0, 0.0, 1.0);
  EXPECT_THROW(sys.set_j_particles(src.pos(), src.mass()), std::out_of_range);
  const auto ok = ic::make_uniform_cube(200, -1.0, 1.0, 1.0, 9);
  EXPECT_NO_THROW(sys.set_j_particles(ok.pos(), ok.mass()));
  EXPECT_EQ(sys.resident_j(), 200u);
}

TEST(Grape5System, CallOrderContract) {
  Grape5System sys(tiny_config());
  const auto src = ic::make_uniform_cube(10, -1.0, 1.0, 1.0, 9);
  std::vector<Vec3d> acc(1);
  std::vector<double> pot(1);
  EXPECT_THROW(sys.set_j_particles(src.pos(), src.mass()), std::logic_error);
  EXPECT_THROW(
      sys.compute(std::span<const Vec3d>(src.pos().data(), 1), acc, pot),
      std::logic_error);
  sys.set_range(-2.0, 2.0, 0.0, 1.0);
  // Range set, but no j resident: computing yields zeros, no throw.
  EXPECT_NO_THROW(
      sys.compute(std::span<const Vec3d>(src.pos().data(), 1), acc, pot));
  EXPECT_EQ(acc[0], (Vec3d{}));
}

TEST(Grape5System, RangeChangeInvalidatesResidentJ) {
  Grape5System sys(tiny_config());
  const auto src = ic::make_uniform_cube(50, -1.0, 1.0, 1.0, 9);
  sys.set_range(-2.0, 2.0, 0.0, 1.0);
  sys.set_j_particles(src.pos(), src.mass());
  EXPECT_EQ(sys.resident_j(), 50u);
  sys.set_range(-4.0, 4.0, 0.0, 1.0);
  EXPECT_EQ(sys.resident_j(), 0u);
}

TEST(Grape5System, AccountTracksWork) {
  Grape5System sys(tiny_config());
  const auto src = ic::make_uniform_cube(128, -1.0, 1.0, 1.0, 9);
  sys.set_range(-2.0, 2.0, 0.01, src.mass()[0]);
  sys.set_j_particles(src.pos(), src.mass());
  std::vector<Vec3d> acc(16);
  std::vector<double> pot(16);
  sys.compute(std::span<const Vec3d>(src.pos().data(), 16), acc, pot);
  const auto& a = sys.account();
  EXPECT_EQ(a.force_calls, 1u);
  EXPECT_EQ(a.interactions, 16u * 128u);
  EXPECT_EQ(a.i_processed, 16u);
  EXPECT_EQ(a.j_uploaded, 128u);
  EXPECT_GT(a.modeled_compute, 0.0);
  EXPECT_GT(a.modeled_dma_j, 0.0);
  EXPECT_GT(a.emulation_wall, 0.0);
  EXPECT_NEAR(a.flops(), 38.0 * 16 * 128, 1e-9);
  EXPECT_GT(sys.bytes_moved(), 0u);

  sys.reset_account();
  EXPECT_EQ(sys.account().force_calls, 0u);
  EXPECT_EQ(sys.bytes_moved(), 0u);
}

TEST(Grape5System, SaturationLatched) {
  // A mass scale wildly below the real masses drives the force quantum so
  // small that accumulators overflow -> latched saturation flag.
  Grape5System sys(tiny_config());
  const auto src = ic::make_uniform_cube(64, -1.0, 1.0, 1e12, 9);
  sys.set_range(-2.0, 2.0, 1e-4, 1e-15);
  sys.set_j_particles(src.pos(), src.mass());
  std::vector<Vec3d> acc(8);
  std::vector<double> pot(8);
  sys.compute(std::span<const Vec3d>(src.pos().data(), 8), acc, pot);
  EXPECT_TRUE(sys.any_saturation());
  sys.reset_account();
  EXPECT_FALSE(sys.any_saturation());
}

TEST(Grape5System, InputValidation) {
  Grape5System sys(tiny_config());
  EXPECT_THROW(sys.set_range(1.0, 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(sys.set_range(-1.0, 1.0, -0.5), std::invalid_argument);
  sys.set_range(-1.0, 1.0, 0.0, 1.0);
  const auto src = ic::make_uniform_cube(8, -1.0, 1.0, 1.0, 9);
  std::vector<Vec3d> acc(4);
  std::vector<double> pot(8);
  sys.set_j_particles(src.pos(), src.mass());
  EXPECT_THROW(
      sys.compute(std::span<const Vec3d>(src.pos().data(), 8), acc, pot),
      std::invalid_argument);
  SystemConfig bad;
  bad.boards = 0;
  EXPECT_THROW(Grape5System{bad}, std::invalid_argument);
}

TEST(CostModel, PaperNumbers) {
  const grape::CostModel cost;
  EXPECT_NEAR(cost.total_jpy(), 4.7e6, 1e3);
  EXPECT_NEAR(cost.total_usd(), 40900.0, 100.0);
  // $7.0/Mflops at 5.92 Gflops sustained.
  EXPECT_NEAR(cost.usd_per_mflops(5.92e9), 6.90, 0.15);
}

}  // namespace
