#include <gtest/gtest.h>

#include <cmath>

#include "grape/host_reference.hpp"
#include "grape/pipeline.hpp"
#include "math/rng.hpp"
#include "util/stats.hpp"

namespace {

using namespace g5;
using grape::IState;
using grape::JWord;
using grape::Pipeline;
using grape::PipelineNumerics;
using grape::PipelineScaling;
using grape::Vec3d;

PipelineScaling test_scaling(double eps = 0.0) {
  PipelineScaling s;
  s.range_lo = -10.0;
  s.range_hi = 10.0;
  s.eps = eps;
  s.force_quantum = 1e-9;
  s.potential_quantum = 1e-10;
  return s;
}

double pairwise_rms(const PipelineNumerics& numerics, std::size_t pairs) {
  Pipeline pipe(numerics);
  PipelineScaling s = test_scaling();
  s.force_quantum = 1e-8;
  pipe.configure(s);
  math::Rng rng(7);
  util::RunningStat err;
  for (std::size_t k = 0; k < pairs; ++k) {
    const Vec3d xi = 4.0 * rng.in_unit_ball();
    const double r = std::pow(10.0, rng.uniform(-3.5, 0.5));
    const Vec3d xj = xi + r * rng.on_unit_sphere();
    const double mj = std::pow(10.0, rng.uniform(-2.0, 0.0));
    IState st = pipe.encode_i(xi);
    pipe.interact(st, pipe.encode_j(xj, mj));
    Vec3d ref;
    double pref;
    grape::pairwise(xi, xj, mj, 0.0, ref, pref);
    if (ref.norm() > 0.0) err.add((pipe.read_force(st) - ref).norm() / ref.norm());
  }
  return err.rms();
}

// THE calibration pin: the default format must land on the paper's
// "about 0.3%" pairwise error. If a format change moves this, the claim
// in Section 2 of the reproduction no longer holds.
TEST(Pipeline, DefaultFormatGivesPaperError) {
  const double rms = pairwise_rms(PipelineNumerics{}, 20000);
  EXPECT_GT(rms, 0.0020);
  EXPECT_LT(rms, 0.0045);
}

TEST(Pipeline, ErrorHalvesPerFormatBit) {
  PipelineNumerics coarse, fine;
  coarse.lns_frac_bits = 6;
  coarse.table_index_bits = 0;
  fine.lns_frac_bits = 10;
  fine.table_index_bits = 0;
  const double e_coarse = pairwise_rms(coarse, 8000);
  const double e_fine = pairwise_rms(fine, 8000);
  // 4 bits apart: expect ~16x; allow [8, 32].
  EXPECT_GT(e_coarse / e_fine, 8.0);
  EXPECT_LT(e_coarse / e_fine, 32.0);
}

TEST(Pipeline, ExactModeMatchesHostToPositionQuantum) {
  PipelineNumerics num;
  num.exact_arithmetic = true;
  Pipeline pipe(num);
  pipe.configure(test_scaling(0.01));
  math::Rng rng(5);
  for (int k = 0; k < 2000; ++k) {
    const Vec3d xi = 4.0 * rng.in_unit_ball();
    const Vec3d xj = 4.0 * rng.in_unit_ball();
    const double mj = rng.uniform(0.1, 1.0);
    IState st = pipe.encode_i(xi);
    pipe.interact(st, pipe.encode_j(xj, mj));
    // Reference uses the same quantized coordinates: then the only error
    // left is the accumulator quantum.
    const double q = pipe.position_quantum();
    auto snap = [&](const Vec3d& v) {
      return Vec3d{std::nearbyint(v.x / q) * q, std::nearbyint(v.y / q) * q,
                   std::nearbyint(v.z / q) * q};
    };
    Vec3d ref;
    double pref;
    grape::pairwise(snap(xi), snap(xj), mj, 0.01, ref, pref);
    EXPECT_NEAR((pipe.read_force(st) - ref).norm(), 0.0, 1e-8);
    EXPECT_NEAR(pipe.read_potential(st), pref, 1e-9);
  }
}

TEST(Pipeline, SelfInteractionCutEntirely) {
  // The i == j cut: a coincident pair contributes neither force nor the
  // softened self-potential, so the host needs no correction.
  Pipeline pipe((PipelineNumerics()));
  pipe.configure(test_scaling(0.05));
  const Vec3d x{1.0, 2.0, 3.0};
  IState st = pipe.encode_i(x);
  pipe.interact(st, pipe.encode_j(x, 2.0));
  EXPECT_EQ(pipe.read_force(st), (Vec3d{}));
  EXPECT_DOUBLE_EQ(pipe.read_potential(st), 0.0);
}

TEST(Pipeline, SelfInteractionSkippedWhenUnsoftened) {
  Pipeline pipe((PipelineNumerics()));
  pipe.configure(test_scaling(0.0));
  const Vec3d x{1.0, 2.0, 3.0};
  IState st = pipe.encode_i(x);
  pipe.interact(st, pipe.encode_j(x, 2.0));
  EXPECT_EQ(pipe.read_force(st), (Vec3d{}));
  EXPECT_DOUBLE_EQ(pipe.read_potential(st), 0.0);
}

TEST(Pipeline, SofteningLimitsCloseForces) {
  Pipeline pipe((PipelineNumerics()));
  pipe.configure(test_scaling(0.1));
  const Vec3d xi{0.0, 0.0, 0.0};
  const Vec3d xj{1e-6, 0.0, 0.0};  // far below eps
  IState st = pipe.encode_i(xi);
  pipe.interact(st, pipe.encode_j(xj, 1.0));
  // Softened force ~ m dx / eps^3 = 1e-6/1e-3 = 1e-3, not 1e12.
  EXPECT_LT(pipe.read_force(st).norm(), 2e-3);
}

TEST(Pipeline, ForceIsAttractiveAndCentral) {
  Pipeline pipe((PipelineNumerics()));
  pipe.configure(test_scaling());
  const Vec3d xi{1.0, 1.0, 1.0};
  const Vec3d xj{2.0, 1.0, 1.0};
  IState st = pipe.encode_i(xi);
  pipe.interact(st, pipe.encode_j(xj, 3.0));
  const Vec3d f = pipe.read_force(st);
  EXPECT_GT(f.x, 0.0);  // pulled toward xj
  EXPECT_NEAR(f.y, 0.0, 1e-6);
  EXPECT_NEAR(f.z, 0.0, 1e-6);
  EXPECT_NEAR(f.x, 3.0, 0.05 * 3.0);
  EXPECT_NEAR(pipe.read_potential(st), -3.0, 0.05 * 3.0);
}

TEST(Pipeline, AccumulationOverStream) {
  // Sum over a j-stream matches the host sum within the format error
  // (partial cancellation makes the tolerance looser than pairwise).
  Pipeline pipe((PipelineNumerics()));
  pipe.configure(test_scaling(0.01));
  math::Rng rng(11);
  std::vector<Vec3d> js(256);
  std::vector<double> ms(256);
  for (std::size_t j = 0; j < js.size(); ++j) {
    js[j] = 3.0 * rng.in_unit_ball();
    ms[j] = rng.uniform(0.5, 1.5);
  }
  const Vec3d xi{0.3, -0.2, 0.1};
  IState st = pipe.encode_i(xi);
  for (std::size_t j = 0; j < js.size(); ++j) {
    pipe.interact(st, pipe.encode_j(js[j], ms[j]));
  }
  Vec3d ref_acc[1];
  double ref_pot[1];
  grape::host_forces_on_targets({&xi, 1}, js, ms, 0.01, ref_acc, ref_pot);
  EXPECT_LT((pipe.read_force(st) - ref_acc[0]).norm() / ref_acc[0].norm(),
            0.01);
  EXPECT_NEAR(pipe.read_potential(st), ref_pot[0],
              0.01 * std::fabs(ref_pot[0]));
}

TEST(Pipeline, SaturationFlagged) {
  Pipeline pipe((PipelineNumerics()));
  PipelineScaling s = test_scaling();
  s.force_quantum = 1e-30;  // absurd quantum: everything overflows
  pipe.configure(s);
  IState st = pipe.encode_i(Vec3d{0, 0, 0});
  pipe.interact(st, pipe.encode_j(Vec3d{0.5, 0, 0}, 1.0));
  EXPECT_TRUE(pipe.saturated(st));
}

TEST(Pipeline, ConfigureValidation) {
  Pipeline pipe((PipelineNumerics()));
  PipelineScaling s = test_scaling();
  s.range_hi = s.range_lo;
  EXPECT_THROW(pipe.configure(s), std::invalid_argument);
  s = test_scaling();
  s.force_quantum = 0.0;
  EXPECT_THROW(pipe.configure(s), std::invalid_argument);
}

TEST(Pipeline, MassQuantizedInLogFormat) {
  Pipeline pipe((PipelineNumerics()));
  pipe.configure(test_scaling());
  const JWord j = pipe.encode_j(Vec3d{1, 1, 1}, 0.123456789);
  EXPECT_FALSE(j.mass.zero);
  // The decoded mass is within the log-format relative step.
  // (accessible indirectly: force from unit distance = m)
  IState st = pipe.encode_i(Vec3d{1, 1, 0});
  pipe.interact(st, j);
  EXPECT_NEAR(pipe.read_force(st).norm(), 0.123456789,
              0.123456789 * 0.01);
}

}  // namespace
