#include <gtest/gtest.h>

#include "math/rng.hpp"

namespace {

using g5::math::Rng;

TEST(Rng, DeterministicInSeed) {
  Rng a(123), b(123), c(124);
  bool any_diff = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
    any_diff |= (va != c.next_u64());
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformRangeAndMoments) {
  Rng rng(7);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
    sum2 += u * u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.005);
  EXPECT_NEAR(sum2 / n - 0.25, 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformIntervalRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIndexUnbiasedSmallN) {
  Rng rng(11);
  const std::uint64_t n = 7;
  std::vector<int> counts(n, 0);
  const int draws = 70000;
  for (int i = 0; i < draws; ++i) {
    const auto k = rng.uniform_index(n);
    ASSERT_LT(k, n);
    ++counts[k];
  }
  for (auto c : counts) {
    EXPECT_NEAR(static_cast<double>(c), draws / 7.0, 5.0 * std::sqrt(draws / 7.0));
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(13);
  double sum = 0.0, sum2 = 0.0, sum3 = 0.0, sum4 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum2 += g * g;
    sum3 += g * g * g;
    sum4 += g * g * g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
  EXPECT_NEAR(sum3 / n, 0.0, 0.05);
  EXPECT_NEAR(sum4 / n, 3.0, 0.1);  // kurtosis of the standard normal
  EXPECT_NEAR(rng.gaussian(10.0, 0.0), 10.0, 1e-12);
}

TEST(Rng, UnitBallInside) {
  Rng rng(17);
  double mean_r2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto p = rng.in_unit_ball();
    ASSERT_LT(p.norm2(), 1.0);
    mean_r2 += p.norm2();
  }
  // E[r^2] for a uniform ball = 3/5.
  EXPECT_NEAR(mean_r2 / n, 0.6, 0.01);
}

TEST(Rng, UnitSphereOnSurfaceAndIsotropic) {
  Rng rng(19);
  g5::math::Vec3d mean{};
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto p = rng.on_unit_sphere();
    ASSERT_NEAR(p.norm(), 1.0, 1e-12);
    mean += p;
  }
  mean /= static_cast<double>(n);
  EXPECT_NEAR(mean.norm(), 0.0, 0.02);
}

TEST(Rng, BoxSampling) {
  Rng rng(23);
  const g5::math::Vec3d lo{-1.0, 2.0, -5.0}, hi{0.0, 3.0, 5.0};
  for (int i = 0; i < 1000; ++i) {
    const auto p = rng.in_box(lo, hi);
    ASSERT_GE(p.x, lo.x);
    ASSERT_LT(p.x, hi.x);
    ASSERT_GE(p.y, lo.y);
    ASSERT_LT(p.y, hi.y);
    ASSERT_GE(p.z, lo.z);
    ASSERT_LT(p.z, hi.z);
  }
}

TEST(Rng, SplitStreamsDiffer) {
  Rng parent(31);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedResets) {
  Rng rng(41);
  const auto first = rng.next_u64();
  rng.next_u64();
  rng.reseed(41);
  EXPECT_EQ(rng.next_u64(), first);
}

}  // namespace
