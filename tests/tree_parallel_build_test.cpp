// Parallel tree build determinism: the threaded build (chunked bbox /
// keys, parallel radix sort, subtree-task node construction, parallel
// moments) must be bitwise-identical to the serial build for any lane
// count — same nodes_, keys_, orig_index_, sorted arrays and forces.
// Also pins the duplicate-Morton-key ordering: coincident particles sort
// by original index, so equal-key runs are a deterministic permutation
// regardless of how (or whether) the build is threaded.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "core/engines.hpp"
#include "ic/plummer.hpp"
#include "ic/uniform.hpp"
#include "tree/tree.hpp"
#include "util/parallel.hpp"

namespace {

using namespace g5;
using math::Vec3d;
using tree::BhTree;
using tree::Node;
using tree::TreeBuildConfig;

/// Field-by-field bitwise comparison of two built trees.
void expect_identical_trees(const BhTree& a, const BhTree& b) {
  ASSERT_EQ(a.node_count(), b.node_count());
  ASSERT_EQ(a.particle_count(), b.particle_count());
  EXPECT_EQ(a.root_lo(), b.root_lo());
  EXPECT_EQ(a.root_size(), b.root_size());
  EXPECT_EQ(a.max_depth_reached(), b.max_depth_reached());
  ASSERT_EQ(a.keys(), b.keys());
  ASSERT_EQ(a.original_index(), b.original_index());
  ASSERT_EQ(a.sorted_pos(), b.sorted_pos());
  ASSERT_EQ(a.sorted_mass(), b.sorted_mass());
  for (std::size_t i = 0; i < a.node_count(); ++i) {
    const Node& na = a.node(i);
    const Node& nb = b.node(i);
    ASSERT_EQ(na.first, nb.first) << "node " << i;
    ASSERT_EQ(na.count, nb.count) << "node " << i;
    for (unsigned oct = 0; oct < 8; ++oct) {
      ASSERT_EQ(na.child[oct], nb.child[oct]) << "node " << i;
    }
    ASSERT_EQ(na.parent, nb.parent) << "node " << i;
    ASSERT_EQ(na.center, nb.center) << "node " << i;
    ASSERT_EQ(na.half_size, nb.half_size) << "node " << i;
    ASSERT_EQ(na.com, nb.com) << "node " << i;
    ASSERT_EQ(na.mass, nb.mass) << "node " << i;
    ASSERT_EQ(na.bradius, nb.bradius) << "node " << i;
    ASSERT_EQ(na.depth, nb.depth) << "node " << i;
    ASSERT_EQ(na.leaf, nb.leaf) << "node " << i;
  }
  ASSERT_EQ(a.has_quadrupoles(), b.has_quadrupoles());
  if (a.has_quadrupoles()) {
    for (std::size_t i = 0; i < a.node_count(); ++i) {
      const auto& qa = a.quadrupole(i);
      const auto& qb = b.quadrupole(i);
      ASSERT_EQ(qa.xx, qb.xx) << "node " << i;
      ASSERT_EQ(qa.yy, qb.yy) << "node " << i;
      ASSERT_EQ(qa.zz, qb.zz) << "node " << i;
      ASSERT_EQ(qa.xy, qb.xy) << "node " << i;
      ASSERT_EQ(qa.xz, qb.xz) << "node " << i;
      ASSERT_EQ(qa.yz, qb.yz) << "node " << i;
    }
  }
}

TreeBuildConfig parallel_config(std::uint32_t cutoff = 64,
                                bool quadrupole = false) {
  TreeBuildConfig cfg;
  cfg.quadrupole = quadrupole;
  cfg.parallel.parallel_cutoff = cutoff;
  return cfg;
}

TEST(ParallelBuild, BitwiseIdenticalAcrossThreadCounts) {
  const auto pset = ic::make_plummer({.n = 20000, .seed = 7});
  BhTree serial;
  serial.build(pset, parallel_config());

  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    util::ThreadPool pool(threads);
    BhTree par;
    par.build(pset, parallel_config(), &pool);
    expect_identical_trees(serial, par);
  }
}

TEST(ParallelBuild, QuadrupoleMomentsIdentical) {
  const auto pset = ic::make_uniform_cube(8192, -1.0, 1.0, 1.0, 11);
  BhTree serial;
  serial.build(pset, parallel_config(64, true));
  util::ThreadPool pool(4);
  BhTree par;
  par.build(pset, parallel_config(64, true), &pool);
  expect_identical_trees(serial, par);
}

TEST(ParallelBuild, ClusteredDistributionIdentical) {
  // Gaussian clumps produce deep, imbalanced subtrees — the worst case
  // for the top-of-tree task decomposition.
  const auto pset = ic::make_clustered(16384, 8, 2.0, 0.05, 1.0, 3);
  BhTree serial;
  serial.build(pset, parallel_config());
  util::ThreadPool pool(4);
  BhTree par;
  par.build(pset, parallel_config(), &pool);
  expect_identical_trees(serial, par);
}

TEST(ParallelBuild, CutoffForcesSerialPath) {
  const auto pset = ic::make_plummer({.n = 4096, .seed = 3});
  BhTree serial;
  serial.build(pset);
  util::ThreadPool pool(4);
  BhTree par;
  // Default cutoff (32768) exceeds N: the pool must be ignored and the
  // result is trivially the serial one.
  par.build(pset, TreeBuildConfig{}, &pool);
  expect_identical_trees(serial, par);
}

TEST(ParallelBuild, ThreadsOneForcesSerialPath) {
  const auto pset = ic::make_plummer({.n = 8192, .seed = 5});
  BhTree serial;
  serial.build(pset);
  util::ThreadPool pool(4);
  BhTree par;
  TreeBuildConfig cfg = parallel_config();
  cfg.parallel.threads = 1;  // explicit serial override
  par.build(pset, cfg, &pool);
  expect_identical_trees(serial, par);
}

TEST(ParallelBuild, CoincidentClustersPinSortOrder) {
  // Clusters of exactly coincident particles: their Morton keys tie, and
  // the pinned order is ascending original index within each run. The
  // cluster members are deliberately interleaved in caller order.
  std::vector<Vec3d> pos;
  std::vector<double> mass;
  const int kClusters = 7;
  const int kPerCluster = 97;  // > leaf_max: clusters hit the depth cap
  for (int rep = 0; rep < kPerCluster; ++rep) {
    for (int c = 0; c < kClusters; ++c) {
      pos.push_back(Vec3d{0.1 * c, -0.2 * c, 0.05 * c});
      mass.push_back(1.0 / (1.0 + c));
    }
  }
  // Background so the parallel path has real subtree tasks.
  const auto bg = ic::make_uniform_cube(4096, -2.0, 2.0, 1.0, 17);
  for (std::size_t i = 0; i < bg.size(); ++i) {
    pos.push_back(bg.pos()[i]);
    mass.push_back(bg.mass()[i]);
  }

  BhTree serial;
  serial.build(pos, mass, parallel_config());
  const auto& keys = serial.keys();
  const auto& orig = serial.original_index();
  for (std::size_t i = 1; i < keys.size(); ++i) {
    ASSERT_LE(keys[i - 1], keys[i]) << "keys not sorted at " << i;
    if (keys[i - 1] == keys[i]) {
      ASSERT_LT(orig[i - 1], orig[i])
          << "duplicate-key tie not broken by original index at " << i;
    }
  }

  for (const unsigned threads : {2u, 4u, 8u}) {
    util::ThreadPool pool(threads);
    BhTree par;
    par.build(pos, mass, parallel_config(), &pool);
    expect_identical_trees(serial, par);
  }
}

/// Engine-level check: forces bitwise-identical across thread counts for
/// both emulated-GRAPE backends and the host tree engine, with the
/// parallel build forced on (cutoff below N).
class ParallelBuildForces : public ::testing::Test {
 protected:
  static core::ForceParams params(std::uint32_t threads,
                                  grape::BackendKind backend) {
    core::ForceParams fp;
    fp.eps = 0.02;
    fp.threads = threads;
    fp.build_parallel_cutoff = 256;
    fp.backend = backend;
    return fp;
  }

  static void run(const std::string& engine_name, grape::BackendKind backend) {
    const auto base = ic::make_plummer({.n = 6000, .seed = 21});

    std::vector<Vec3d> ref_acc;
    std::vector<double> ref_pot;
    for (const std::uint32_t threads : {1u, 2u, 4u, 8u}) {
      auto pset = base;
      auto engine = core::make_engine(engine_name, params(threads, backend));
      engine->compute(pset);
      if (ref_acc.empty()) {
        ref_acc.assign(pset.acc().begin(), pset.acc().end());
        ref_pot.assign(pset.pot().begin(), pset.pot().end());
        continue;
      }
      for (std::size_t i = 0; i < pset.size(); ++i) {
        ASSERT_EQ(pset.acc()[i], ref_acc[i])
            << engine_name << " acc diverges at " << i << " with " << threads
            << " threads";
        ASSERT_EQ(pset.pot()[i], ref_pot[i])
            << engine_name << " pot diverges at " << i << " with " << threads
            << " threads";
      }
    }
  }
};

TEST_F(ParallelBuildForces, HostTreeModified) {
  run("host-tree-modified", grape::BackendKind::BitExact);
}

TEST_F(ParallelBuildForces, GrapeTreeBitExact) {
  run("grape-tree", grape::BackendKind::BitExact);
}

TEST_F(ParallelBuildForces, GrapeTreeNative) {
  run("grape-tree", grape::BackendKind::Native);
}

}  // namespace
