#include <gtest/gtest.h>

#include <cmath>

#include "math/fft.hpp"
#include "math/rng.hpp"

namespace {

using namespace g5::math;

TEST(Fft, ImpulseTransformsToFlatSpectrum) {
  std::vector<Complex> data(16, Complex(0.0, 0.0));
  data[0] = Complex(1.0, 0.0);
  fft_inplace(data.data(), data.size(), -1);
  for (const auto& c : data) {
    EXPECT_NEAR(c.real(), 1.0, 1e-12);
    EXPECT_NEAR(c.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, SingleToneLandsInOneBin) {
  const std::size_t n = 64;
  std::vector<Complex> data(n);
  const std::size_t k0 = 5;
  for (std::size_t j = 0; j < n; ++j) {
    const double phase = 2.0 * M_PI * static_cast<double>(k0 * j) /
                         static_cast<double>(n);
    data[j] = Complex(std::cos(phase), std::sin(phase));
  }
  fft_inplace(data.data(), n, -1);
  for (std::size_t k = 0; k < n; ++k) {
    if (k == k0) {
      EXPECT_NEAR(std::abs(data[k]), static_cast<double>(n), 1e-9);
    } else {
      EXPECT_NEAR(std::abs(data[k]), 0.0, 1e-9) << k;
    }
  }
}

TEST(Fft, RoundTripRecoversInput) {
  Rng rng(5);
  const std::size_t n = 256;
  std::vector<Complex> data(n), orig(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = Complex(rng.gaussian(), rng.gaussian());
    orig[i] = data[i];
  }
  fft_inplace(data.data(), n, -1);
  fft_inplace(data.data(), n, +1);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(data[i].real() / static_cast<double>(n), orig[i].real(), 1e-10);
    EXPECT_NEAR(data[i].imag() / static_cast<double>(n), orig[i].imag(), 1e-10);
  }
}

TEST(Fft, ParsevalHolds) {
  Rng rng(7);
  const std::size_t n = 128;
  std::vector<Complex> data(n);
  double space_energy = 0.0;
  for (auto& c : data) {
    c = Complex(rng.gaussian(), rng.gaussian());
    space_energy += std::norm(c);
  }
  fft_inplace(data.data(), n, -1);
  double freq_energy = 0.0;
  for (const auto& c : data) freq_energy += std::norm(c);
  EXPECT_NEAR(freq_energy, space_energy * static_cast<double>(n),
              1e-8 * freq_energy);
}

TEST(Fft, RejectsBadArguments) {
  std::vector<Complex> data(12);
  EXPECT_THROW(fft_inplace(data.data(), 12, -1), std::invalid_argument);
  EXPECT_THROW(fft_inplace(data.data(), 8, 2), std::invalid_argument);
  EXPECT_THROW(fft_inplace_strided(data.data(), 8, 0, -1),
               std::invalid_argument);
}

TEST(Fft, StridedMatchesContiguous) {
  Rng rng(9);
  const std::size_t n = 32, stride = 3;
  std::vector<Complex> packed(n), strided(n * stride, Complex(9.0, 9.0));
  for (std::size_t i = 0; i < n; ++i) {
    packed[i] = Complex(rng.gaussian(), rng.gaussian());
    strided[i * stride] = packed[i];
  }
  fft_inplace(packed.data(), n, -1);
  fft_inplace_strided(strided.data(), n, stride, -1);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(strided[i * stride].real(), packed[i].real(), 1e-10);
    EXPECT_NEAR(strided[i * stride].imag(), packed[i].imag(), 1e-10);
  }
  // Elements between strides untouched.
  EXPECT_EQ(strided[1], Complex(9.0, 9.0));
}

TEST(Grid3C, RoundTrip) {
  Rng rng(11);
  Grid3C grid(8);
  std::vector<Complex> orig(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    grid.data()[i] = Complex(rng.gaussian(), rng.gaussian());
    orig[i] = grid.data()[i];
  }
  grid.forward();
  grid.inverse();
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_NEAR(grid.data()[i].real(), orig[i].real(), 1e-10);
    EXPECT_NEAR(grid.data()[i].imag(), orig[i].imag(), 1e-10);
  }
}

TEST(Grid3C, PlaneWaveSingleMode) {
  const std::size_t n = 8;
  Grid3C grid(n);
  const long kx = 2, ky = 7, kz = 1;  // ky = 7 == -1 mod 8
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t k = 0; k < n; ++k) {
        const double phase =
            2.0 * M_PI *
            (static_cast<double>(kx * static_cast<long>(i)) +
             static_cast<double>(ky * static_cast<long>(j)) +
             static_cast<double>(kz * static_cast<long>(k))) /
            static_cast<double>(n);
        grid.at(i, j, k) = Complex(std::cos(phase), std::sin(phase));
      }
  grid.forward();
  const double nn = static_cast<double>(n * n * n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t k = 0; k < n; ++k) {
        const double expected =
            (i == 2 && j == 7 && k == 1) ? nn : 0.0;
        EXPECT_NEAR(std::abs(grid.at(i, j, k)), expected, 1e-7)
            << i << "," << j << "," << k;
      }
}

TEST(Grid3C, FreqIndexConvention) {
  EXPECT_EQ(freq_index(0, 8), 0);
  EXPECT_EQ(freq_index(3, 8), 3);
  EXPECT_EQ(freq_index(4, 8), 4);   // Nyquist stays positive
  EXPECT_EQ(freq_index(5, 8), -3);
  EXPECT_EQ(freq_index(7, 8), -1);
}

TEST(Grid3C, RejectsNonPow2) {
  EXPECT_THROW(Grid3C(12), std::invalid_argument);
}

}  // namespace
