#include <gtest/gtest.h>

#include <cmath>

#include "core/perf.hpp"

namespace {

using namespace g5;
using core::HostCostModel;
using core::PerformanceReport;
using core::RunWorkload;
using grape::CostModel;
using grape::SystemConfig;

// The central check of the reproduction: pushing the paper's own workload
// through our GRAPE-5 cycle model + calibrated host model must land on the
// published Section 5 row.
TEST(PerfModel, ReproducesPaperHeadlineRow) {
  const auto report = core::project_performance(
      SystemConfig::paper_system(), HostCostModel{}, CostModel{},
      core::paper_workload());

  // Wall clock: paper 30,141 s; model within 5 %.
  EXPECT_NEAR(report.total_s, 30141.0, 0.05 * 30141.0);
  // Raw speed: paper 36.4 Gflops.
  EXPECT_NEAR(report.raw_flops, 36.4e9, 0.05 * 36.4e9);
  // Effective sustained speed: paper 5.92 Gflops.
  EXPECT_NEAR(report.effective_flops, 5.92e9, 0.05 * 5.92e9);
  // Price/performance: paper $7.0/Mflops.
  EXPECT_NEAR(report.usd_per_mflops, 7.0, 0.4);
  // Cost: $40,900.
  EXPECT_NEAR(report.usd_total, 40900.0, 100.0);
  // Average list length: paper 13,431.
  EXPECT_NEAR(report.avg_list_length, 13431.0, 0.02 * 13431.0);
}

TEST(PerfModel, PaperWorkloadNumbers) {
  const RunWorkload w = core::paper_workload();
  EXPECT_EQ(w.n_particles, 2159038u);
  EXPECT_EQ(w.steps, 999u);
  EXPECT_NEAR(static_cast<double>(w.interactions), 2.90e13, 1e10);
  EXPECT_NEAR(static_cast<double>(w.original_interactions), 4.69e12, 1e9);
}

TEST(PerfModel, BreakdownIsConsistent) {
  const auto report = core::project_performance(
      SystemConfig::paper_system(), HostCostModel{}, CostModel{},
      core::paper_workload());
  EXPECT_NEAR(report.total_s,
              report.grape_compute_s + report.grape_dma_s + report.host_s,
              1e-9);
  // GRAPE compute alone: ~1e4 s (pipeline-limited part).
  EXPECT_GT(report.grape_compute_s, 8e3);
  EXPECT_LT(report.grape_compute_s, 1.3e4);
  // Host dominates, as the paper's ratio implies.
  EXPECT_GT(report.host_s, report.grape_compute_s);
}

TEST(PerfModel, EmptyWorkloadIsZero) {
  const auto report = core::project_performance(
      SystemConfig::paper_system(), HostCostModel{}, CostModel{},
      RunWorkload{});
  EXPECT_DOUBLE_EQ(report.grape_compute_s, 0.0);
  EXPECT_DOUBLE_EQ(report.raw_flops, 0.0);
}

TEST(PerfModel, SweepPointTradesHostForGrape) {
  // Larger groups: host time falls, GRAPE time eventually rises.
  const SystemConfig sys = SystemConfig::paper_system();
  const HostCostModel host;
  const std::uint64_t n = 2159038;

  auto mk = [&](double n_g, double list_len) {
    tree::WalkStats w;
    w.lists = static_cast<std::uint64_t>(static_cast<double>(n) / n_g);
    w.list_entries =
        static_cast<std::uint64_t>(static_cast<double>(w.lists) * list_len);
    w.interactions = static_cast<std::uint64_t>(
        static_cast<double>(w.list_entries) * n_g);
    return w;
  };
  // Approximate list-length growth with n_g (external part ~ const).
  const auto small = core::sweep_point(sys, host, n, mk(100.0, 6000.0));
  const auto mid = core::sweep_point(sys, host, n, mk(2000.0, 13431.0));
  const auto large = core::sweep_point(sys, host, n, mk(50000.0, 60000.0));
  EXPECT_GT(small.host_s, mid.host_s);
  EXPECT_GT(large.grape_s, mid.grape_s);
  // The paper's optimum: mid beats both extremes.
  EXPECT_LT(mid.total_s(), small.total_s());
  EXPECT_LT(mid.total_s(), large.total_s());
  EXPECT_NEAR(mid.n_g, 2000.0, 1.0);
}

TEST(HostCostModel, StepSecondsComposition) {
  HostCostModel host;
  host.per_particle_build_us = 1.0;
  host.per_particle_step_us = 2.0;
  host.per_list_entry_us = 3.0;
  host.per_group_us = 4.0;
  EXPECT_NEAR(host.step_seconds(10, 20, 30), 1e-6 * (10 + 20 + 60 + 120),
              1e-15);
}

}  // namespace
