#include <gtest/gtest.h>

#include <sstream>

#include "math/vec3.hpp"

namespace {

using g5::math::Vec3d;

TEST(Vec3, ConstructionAndIndexing) {
  Vec3d v{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(v[0], 1.0);
  EXPECT_DOUBLE_EQ(v[1], 2.0);
  EXPECT_DOUBLE_EQ(v[2], 3.0);
  v[1] = 5.0;
  EXPECT_DOUBLE_EQ(v.y, 5.0);
  const Vec3d zero{};
  EXPECT_DOUBLE_EQ(zero.x + zero.y + zero.z, 0.0);
  const Vec3d filled(2.0);
  EXPECT_EQ(filled, (Vec3d{2.0, 2.0, 2.0}));
}

TEST(Vec3, Arithmetic) {
  const Vec3d a{1.0, 2.0, 3.0};
  const Vec3d b{4.0, 5.0, 6.0};
  EXPECT_EQ(a + b, (Vec3d{5.0, 7.0, 9.0}));
  EXPECT_EQ(b - a, (Vec3d{3.0, 3.0, 3.0}));
  EXPECT_EQ(2.0 * a, (Vec3d{2.0, 4.0, 6.0}));
  EXPECT_EQ(a * 2.0, 2.0 * a);
  EXPECT_EQ(a / 2.0, (Vec3d{0.5, 1.0, 1.5}));
  EXPECT_EQ(-a, (Vec3d{-1.0, -2.0, -3.0}));
  Vec3d c = a;
  c += b;
  c -= a;
  EXPECT_EQ(c, b);
  c *= 3.0;
  c /= 3.0;
  EXPECT_EQ(c, b);
}

TEST(Vec3, DotCrossNorm) {
  const Vec3d a{1.0, 2.0, 3.0};
  const Vec3d b{4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(a.dot(b), 32.0);
  EXPECT_DOUBLE_EQ(a.norm2(), 14.0);
  EXPECT_DOUBLE_EQ(a.norm(), std::sqrt(14.0));
  const Vec3d x{1.0, 0.0, 0.0}, y{0.0, 1.0, 0.0}, z{0.0, 0.0, 1.0};
  EXPECT_EQ(x.cross(y), z);
  EXPECT_EQ(y.cross(z), x);
  EXPECT_EQ(z.cross(x), y);
  // Anti-commutativity and orthogonality.
  EXPECT_EQ(a.cross(b), -(b.cross(a)));
  EXPECT_NEAR(a.cross(b).dot(a), 0.0, 1e-12);
  EXPECT_NEAR(a.cross(b).dot(b), 0.0, 1e-12);
}

TEST(Vec3, MinMaxComponents) {
  const Vec3d v{3.0, -1.0, 2.0};
  EXPECT_DOUBLE_EQ(v.min_component(), -1.0);
  EXPECT_DOUBLE_EQ(v.max_component(), 3.0);
  const Vec3d a{1.0, 5.0, 2.0}, b{3.0, 0.0, 4.0};
  EXPECT_EQ(g5::math::cwise_min(a, b), (Vec3d{1.0, 0.0, 2.0}));
  EXPECT_EQ(g5::math::cwise_max(a, b), (Vec3d{3.0, 5.0, 4.0}));
}

TEST(Vec3, StreamOutput) {
  std::ostringstream os;
  os << Vec3d{1.5, 2.5, 3.5};
  EXPECT_EQ(os.str(), "(1.5, 2.5, 3.5)");
}

}  // namespace
