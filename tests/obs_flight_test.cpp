// Flight recorder: bounded seqlock rings for steps, span events and
// per-thread live span paths. In the TSan CI job's filter together with
// the telemetry/crash suites — the rings are written by the simulation
// and span hooks while the sampler (or a crash handler) reads them.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "util/parallel.hpp"
#include "util/thread.hpp"

namespace {

using namespace g5;

class ObsFlightEnv : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::FlightRecorder::instance().clear();
    obs::FlightRecorder::instance().arm();
  }
  void TearDown() override {
    obs::FlightRecorder::instance().disarm();
    obs::FlightRecorder::instance().clear();
    obs::set_enabled(false);
  }
};

using ObsFlight = ObsFlightEnv;

obs::StepMetrics step_record(std::uint64_t step) {
  obs::StepMetrics m;
  m.step = step;
  m.t_sim = static_cast<double>(step) * 0.01;
  m.interactions = step * 100;
  return m;
}

TEST_F(ObsFlight, StepRingKeepsTheLastKRecords) {
  auto& fr = obs::FlightRecorder::instance();
  const std::uint64_t total = obs::FlightRecorder::kStepCapacity + 36;
  for (std::uint64_t s = 1; s <= total; ++s) fr.record_step(step_record(s));
  EXPECT_EQ(fr.step_count(), total);

  const std::vector<obs::StepMetrics> steps = fr.last_steps();
  ASSERT_EQ(steps.size(), obs::FlightRecorder::kStepCapacity);
  // Oldest-to-newest, ending at the last recorded step.
  EXPECT_EQ(steps.front().step, total - obs::FlightRecorder::kStepCapacity + 1);
  EXPECT_EQ(steps.back().step, total);
  for (std::size_t i = 1; i < steps.size(); ++i) {
    EXPECT_EQ(steps[i].step, steps[i - 1].step + 1);
  }
  EXPECT_EQ(steps.back().interactions, total * 100);
}

TEST_F(ObsFlight, SignalSafeReaderRejectsUnwrittenSlots) {
  auto& fr = obs::FlightRecorder::instance();
  obs::StepMetrics out;
  EXPECT_FALSE(fr.read_step(0, &out));
  fr.record_step(step_record(7));
  ASSERT_TRUE(fr.read_step(0, &out));
  EXPECT_EQ(out.step, 7u);
  EXPECT_FALSE(fr.read_step(1, &out));
}

TEST_F(ObsFlight, ClearResetsCountsButStaysArmed) {
  auto& fr = obs::FlightRecorder::instance();
  fr.record_step(step_record(1));
  fr.record_span("/a/b", 0.0, 1.0);
  fr.clear();
  EXPECT_EQ(fr.step_count(), 0u);
  EXPECT_EQ(fr.span_count(), 0u);
  EXPECT_TRUE(obs::FlightRecorder::armed());
  EXPECT_TRUE(fr.last_steps().empty());
  EXPECT_TRUE(fr.last_spans().empty());
}

TEST_F(ObsFlight, SpanDestructorRecordsEventsWhenArmed) {
  obs::set_enabled(true);
  obs::reset_phases();
  auto& fr = obs::FlightRecorder::instance();
  fr.clear();
  {
    obs::Span outer("outer", "test");
    { obs::Span inner("inner", "test"); }
  }
  const std::vector<obs::SpanEvent> spans = fr.last_spans();
  ASSERT_EQ(spans.size(), 2u);
  // Completion order: inner closes first.
  EXPECT_STREQ(spans[0].path, "/outer/inner");
  EXPECT_STREQ(spans[1].path, "/outer");
  EXPECT_GE(spans[0].dur_us, 0.0);
}

TEST_F(ObsFlight, DisarmedSpansRecordNothing) {
  obs::set_enabled(true);
  obs::reset_phases();
  auto& fr = obs::FlightRecorder::instance();
  fr.disarm();
  fr.clear();
  { obs::Span s("quiet", "test"); }
  EXPECT_EQ(fr.span_count(), 0u);
}

TEST_F(ObsFlight, ThreadPathsNameTheRecordingThreads) {
  obs::set_enabled(true);
  obs::reset_phases();
  util::set_current_thread_name("g5-test-main");
  auto& fr = obs::FlightRecorder::instance();
  fr.clear();
  // Search by name: thread slots persist across tests, so other (dead)
  // threads may still occupy entries.
  const auto find_me = [&fr]() -> std::string {
    for (const obs::ThreadPath& tp : fr.thread_paths()) {
      if (std::string(tp.thread) == "g5-test-main") return tp.path;
    }
    return "<absent>";
  };
  {
    obs::Span s("phase", "test");
    EXPECT_EQ(find_me(), "/phase");
  }
  // After the span closes the slot holds the (empty) parent path.
  EXPECT_EQ(find_me(), "");
}

TEST_F(ObsFlight, SpanRingIsBoundedUnderManyWriters) {
  obs::set_enabled(true);
  obs::reset_phases();
  auto& fr = obs::FlightRecorder::instance();
  fr.clear();
  util::ThreadPool pool(4);
  pool.parallel_for(512, 1, [](std::size_t, std::size_t, unsigned) {
    obs::Span s("burst", "test");
  });
  EXPECT_GE(fr.span_count(), 512u);
  EXPECT_LE(fr.last_spans().size(), obs::FlightRecorder::kSpanCapacity);
}

// Satellite: trace metadata carries real thread names. A traced run
// with worker lanes must label them g5-pool-N, not thread-N.
TEST_F(ObsFlight, TraceMetadataUsesRealThreadNames) {
  obs::set_enabled(true);
  obs::reset_phases();
  util::set_current_thread_name("g5-test-main");
  obs::start_trace();
  {
    util::ThreadPool pool(2);
    pool.parallel_for(64, 1, [](std::size_t, std::size_t, unsigned) {
      obs::Span s("lane", "test");
    });
  }
  obs::stop_trace();
  const std::string path = ::testing::TempDir() + "flight_trace_names.json";
  ASSERT_TRUE(obs::write_trace(path));
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string doc = ss.str();
  EXPECT_NE(doc.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(doc.find("\"g5-pool-1\""), std::string::npos);
  EXPECT_NE(doc.find("\"g5-test-main\""), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
