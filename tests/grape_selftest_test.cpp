#include <gtest/gtest.h>

#include "grape/selftest.hpp"

namespace {

using namespace g5::grape;

SystemConfig small_system() {
  SystemConfig cfg;
  cfg.board.jmem_capacity = 2048;
  return cfg;
}

TEST(SelfTest, HealthySystemPasses) {
  Grape5System system(small_system());
  const auto report = run_selftest(system);
  EXPECT_TRUE(report.passed);
  ASSERT_EQ(report.boards.size(), 2u);
  for (const auto& b : report.boards) {
    EXPECT_TRUE(b.passed);
    EXPECT_GT(b.max_relative_error, 0.0);   // quantization is visible
    EXPECT_LT(b.max_relative_error, 0.02);  // but inside tolerance
  }
  EXPECT_NE(report.str().find("PASSED"), std::string::npos);
}

TEST(SelfTest, DetectsFaultyChipOnOneBoard) {
  Grape5System system(small_system());
  system.board(1).inject_chip_fault(3, 1.0 / 16.0);  // 6 % gain error
  const auto report = run_selftest(system);
  EXPECT_FALSE(report.passed);
  ASSERT_EQ(report.boards.size(), 2u);
  EXPECT_TRUE(report.boards[0].passed);
  EXPECT_FALSE(report.boards[1].passed);
  EXPECT_NE(report.str().find("FAULTY"), std::string::npos);
}

TEST(SelfTest, SubtleFaultStillCaught) {
  // A 3 % gain error is the size the format noise could almost hide —
  // the per-force tolerance of 2 % must still flag it.
  Grape5System system(small_system());
  system.board(0).inject_chip_fault(0, 0.03);
  const auto report = run_selftest(system);
  EXPECT_FALSE(report.boards[0].passed);
}

TEST(SelfTest, ClearedFaultPassesAgain) {
  Grape5System system(small_system());
  system.board(0).inject_chip_fault(5);
  EXPECT_FALSE(run_selftest(system).passed);
  system.board(0).inject_chip_fault(-1);
  EXPECT_TRUE(run_selftest(system).passed);
}

TEST(SelfTest, FaultInjectionValidation) {
  Grape5System system(small_system());
  EXPECT_THROW(system.board(0).inject_chip_fault(99), std::out_of_range);
  EXPECT_EQ(system.board(0).faulty_chip(), -1);
  system.board(0).inject_chip_fault(2);
  EXPECT_EQ(system.board(0).faulty_chip(), 2);
}

TEST(SelfTest, DeterministicInSeed) {
  Grape5System a(small_system()), b(small_system());
  const auto ra = run_selftest(a);
  const auto rb = run_selftest(b);
  ASSERT_EQ(ra.boards.size(), rb.boards.size());
  for (std::size_t i = 0; i < ra.boards.size(); ++i) {
    EXPECT_DOUBLE_EQ(ra.boards[i].max_relative_error,
                     rb.boards[i].max_relative_error);
  }
}

TEST(Grape3Preset, LowerPrecisionHigherError) {
  // The GRAPE-3-class system self-test fails against the GRAPE-5
  // tolerance only if its error actually exceeds it; with a ~2 % pairwise
  // error averaging down over 512 sources, whole-force errors sit near
  // the threshold — use a custom config to check the ordering instead.
  SystemConfig g3 = SystemConfig::grape3_system();
  g3.board.jmem_capacity = 2048;
  Grape5System sys3(g3);
  Grape5System sys5(small_system());
  SelfTestConfig stc;
  stc.tolerance = 1.0;  // never fail; we only compare magnitudes
  const auto r3 = run_selftest(sys3, stc);
  const auto r5 = run_selftest(sys5, stc);
  EXPECT_GT(r3.boards[0].rms_relative_error,
            3.0 * r5.boards[0].rms_relative_error);
}

TEST(Grape3Preset, SystemShape) {
  const SystemConfig g3 = SystemConfig::grape3_system();
  EXPECT_EQ(g3.boards, 1u);
  EXPECT_EQ(g3.total_pipelines(), 8u);
  EXPECT_LT(g3.peak_flops(), SystemConfig::paper_system().peak_flops() / 10);
  EXPECT_EQ(g3.numerics.lns_frac_bits, 5);
  EXPECT_EQ(g3.numerics.position_bits, 20);
}

}  // namespace
