// Engine variants end to end: the bmax MAC and quadrupole options through
// full simulations, and mixed-engine consistency under them.
#include <gtest/gtest.h>

#include <cmath>

#include "core/diagnostics.hpp"
#include "core/engines.hpp"
#include "core/simulation.hpp"
#include "ic/hernquist.hpp"
#include "ic/plummer.hpp"
#include "util/stats.hpp"

namespace {

using namespace g5;
using core::ForceParams;

TEST(EngineVariants, BmaxEngineConservesEnergy) {
  auto pset = ic::make_plummer(ic::PlummerConfig{.n = 256, .seed = 3});
  ForceParams fp;
  fp.eps = 0.05;
  fp.theta = 0.5;
  fp.n_crit = 64;
  fp.mac = tree::Mac::Bmax;
  auto engine = core::make_engine("grape-tree", fp);
  core::SimulationConfig cfg;
  cfg.dt = 0.01;
  cfg.steps = 50;
  cfg.log_every = 0;
  core::Simulation sim(*engine, cfg);
  const auto s = sim.run(pset);
  EXPECT_LT(s.energy_drift, 5e-3);
  EXPECT_GT(s.engine.interactions, 0u);
}

TEST(EngineVariants, QuadrupoleEngineConservesEnergyBetterAtLooseTheta) {
  auto run = [](bool quadrupole) {
    auto pset = ic::make_plummer(ic::PlummerConfig{.n = 256, .seed = 5});
    ForceParams fp;
    fp.eps = 0.05;
    fp.theta = 1.1;  // loose: monopole errors noticeable
    fp.n_crit = 64;
    fp.quadrupole = quadrupole;
    core::HostTreeEngine engine(fp, core::HostTreeEngine::Mode::Modified);
    core::SimulationConfig cfg;
    cfg.dt = 0.01;
    cfg.steps = 100;
    cfg.log_every = 0;
    core::Simulation sim(engine, cfg);
    return sim.run(pset).energy_drift;
  };
  const double mono = run(false);
  const double quad = run(true);
  EXPECT_LT(quad, 2e-3);
  // Quadrupoles should not make things worse; usually substantially better.
  EXPECT_LT(quad, 1.5 * mono + 1e-5);
}

TEST(EngineVariants, HernquistCuspThroughGrapeTree) {
  // The r^-1 cusp produces a huge force dynamic range; the device's range
  // window and accumulator scaling must cope without saturating.
  auto pset = ic::make_hernquist(ic::HernquistConfig{.n = 1024, .seed = 7});
  ForceParams fp;
  fp.eps = 0.01;
  fp.theta = 0.75;
  fp.n_crit = 128;
  auto engine = core::make_engine("grape-tree", fp);
  engine->compute(pset);
  auto* gt = dynamic_cast<core::GrapeTreeEngine*>(engine.get());
  ASSERT_NE(gt, nullptr);
  EXPECT_FALSE(gt->device().system().any_saturation());

  // Against the exact sum.
  model::ParticleSet exact = pset;
  core::HostDirectEngine ref(fp);
  ref.compute(exact);
  util::RunningStat err;
  for (std::size_t i = 0; i < pset.size(); ++i) {
    const double rn = exact.acc()[i].norm();
    if (rn > 0.0) err.add((pset.acc()[i] - exact.acc()[i]).norm() / rn);
  }
  EXPECT_LT(err.rms(), 5e-3);
}

TEST(EngineVariants, MixedOptionsFactoryRoundTrip) {
  // The factory produces engines that carry the variant parameters.
  ForceParams fp;
  fp.mac = tree::Mac::Bmax;
  fp.quadrupole = true;
  for (const char* name : {"host-tree-original", "host-tree-modified"}) {
    auto engine = core::make_engine(name, fp);
    EXPECT_EQ(engine->params().mac, tree::Mac::Bmax) << name;
    EXPECT_TRUE(engine->params().quadrupole) << name;
  }
}

}  // namespace
