// ThreadPool / parallel_for: coverage of every index, chunking edge
// cases, exception propagation, pool reuse, and lane-local accumulation —
// the contract the parallel tree walks build their determinism on.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/parallel.hpp"

namespace {

using g5::util::ThreadPool;
using g5::util::resolve_thread_count;

TEST(ResolveThreadCount, ExplicitRequestWins) {
  EXPECT_EQ(resolve_thread_count(1), 1u);
  EXPECT_EQ(resolve_thread_count(5), 5u);
}

TEST(ResolveThreadCount, AutoIsAtLeastOne) {
  EXPECT_GE(resolve_thread_count(0), 1u);
}

TEST(ThreadPool, SizeMatchesRequest) {
  EXPECT_EQ(ThreadPool(1).size(), 1u);
  EXPECT_EQ(ThreadPool(3).size(), 3u);
}

TEST(ThreadPool, EveryIndexProcessedExactlyOnce) {
  for (unsigned threads : {1u, 2u, 4u}) {
    ThreadPool pool(threads);
    for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                          std::size_t{1000}}) {
      for (std::size_t grain : {std::size_t{0}, std::size_t{1},
                                std::size_t{7}, std::size_t{5000}}) {
        std::vector<std::atomic<int>> hits(n);
        pool.parallel_for(n, grain,
                          [&](std::size_t begin, std::size_t end, unsigned) {
                            for (std::size_t i = begin; i < end; ++i) {
                              hits[i].fetch_add(1);
                            }
                          });
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(hits[i].load(), 1)
              << "threads=" << threads << " n=" << n << " grain=" << grain
              << " i=" << i;
        }
      }
    }
  }
}

TEST(ThreadPool, ChunksAreContiguousAndLaneValid) {
  ThreadPool pool(4);
  const std::size_t n = 503;
  std::vector<int> owner(n, -1);
  std::mutex m;
  pool.parallel_for(n, 16,
                    [&](std::size_t begin, std::size_t end, unsigned lane) {
                      ASSERT_LT(lane, pool.size());
                      ASSERT_LT(begin, end);
                      ASSERT_LE(end, n);
                      std::scoped_lock lock(m);
                      for (std::size_t i = begin; i < end; ++i) {
                        owner[i] = static_cast<int>(lane);
                      }
                    });
  for (std::size_t i = 0; i < n; ++i) ASSERT_GE(owner[i], 0) << i;
}

TEST(ThreadPool, LaneLocalAccumulatorsReduceToTotal) {
  // The engines' pattern: each lane sums into its own slot, the caller
  // reduces after the join.
  ThreadPool pool(3);
  const std::size_t n = 10'000;
  std::vector<std::uint64_t> partial(pool.size(), 0);
  pool.parallel_for(n, 64,
                    [&](std::size_t begin, std::size_t end, unsigned lane) {
                      for (std::size_t i = begin; i < end; ++i) {
                        partial[lane] += i;
                      }
                    });
  const std::uint64_t total =
      std::accumulate(partial.begin(), partial.end(), std::uint64_t{0});
  EXPECT_EQ(total, n * (n - 1) / 2);
}

TEST(ThreadPool, PropagatesBodyException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(100, 1,
                        [](std::size_t begin, std::size_t, unsigned) {
                          if (begin == 42) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool must stay usable after an exception.
  std::atomic<std::size_t> count{0};
  pool.parallel_for(100, 1, [&](std::size_t begin, std::size_t end, unsigned) {
    count += end - begin;
  });
  EXPECT_EQ(count.load(), 100u);
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::size_t> count{0};
    pool.parallel_for(round, 1,
                      [&](std::size_t begin, std::size_t end, unsigned) {
                        count += end - begin;
                      });
    ASSERT_EQ(count.load(), static_cast<std::size_t>(round)) << round;
  }
}

TEST(ResolveThreadCount, ReadsEnvironmentOverride) {
  ::setenv("G5_THREADS", "3", 1);
  EXPECT_EQ(resolve_thread_count(0), 3u);
  EXPECT_EQ(resolve_thread_count(2), 2u);  // explicit request still wins
  ::setenv("G5_THREADS", "not-a-number", 1);
  EXPECT_GE(resolve_thread_count(0), 1u);
  ::unsetenv("G5_THREADS");
}

}  // namespace
