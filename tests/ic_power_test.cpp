#include <gtest/gtest.h>

#include <cmath>

#include "ic/power_spectrum.hpp"

namespace {

using g5::ic::PowerSpectrum;
using g5::ic::PowerSpectrumParams;

TEST(PowerSpectrum, Sigma8Normalization) {
  PowerSpectrumParams p;  // SCDM defaults
  const PowerSpectrum ps(p);
  EXPECT_NEAR(ps.sigma_tophat(8.0 / p.h), p.sigma8, 1e-6);
}

TEST(PowerSpectrum, TransferLimits) {
  const PowerSpectrum ps(PowerSpectrumParams{});
  EXPECT_NEAR(ps.transfer(1e-6), 1.0, 1e-3);  // T -> 1 at large scales
  EXPECT_LT(ps.transfer(10.0), 1e-2);         // strongly suppressed small scales
  // Monotone decreasing.
  double prev = ps.transfer(1e-4);
  for (double k = 1e-3; k < 10.0; k *= 2.0) {
    const double t = ps.transfer(k);
    EXPECT_LT(t, prev);
    prev = t;
  }
}

TEST(PowerSpectrum, SpectrumShape) {
  const PowerSpectrum ps(PowerSpectrumParams{});
  EXPECT_DOUBLE_EQ(ps(0.0), 0.0);
  EXPECT_DOUBLE_EQ(ps(-1.0), 0.0);
  // P ~ k at large scale (ns = 1): doubling k doubles P.
  const double p1 = ps(1e-5), p2 = ps(2e-5);
  EXPECT_NEAR(p2 / p1, 2.0, 0.01);
  // A peak exists between the large-scale rise and small-scale fall.
  EXPECT_GT(ps(0.05), ps(1e-4));
  EXPECT_GT(ps(0.05), ps(5.0));
}

TEST(PowerSpectrum, SigmaDecreasesWithRadius) {
  const PowerSpectrum ps(PowerSpectrumParams{});
  double prev = ps.sigma_tophat(1.0);
  for (double r : {2.0, 4.0, 8.0, 16.0, 32.0}) {
    const double s = ps.sigma_tophat(r);
    EXPECT_LT(s, prev) << r;
    prev = s;
  }
}

TEST(PowerSpectrum, AmplitudeScalesWithSigma8Squared) {
  PowerSpectrumParams lo, hi;
  lo.sigma8 = 0.5;
  hi.sigma8 = 1.0;
  const PowerSpectrum ps_lo(lo), ps_hi(hi);
  EXPECT_NEAR(ps_hi(0.1) / ps_lo(0.1), 4.0, 1e-9);
}

TEST(PowerSpectrum, ShapeParameterMovesTurnover) {
  // Higher Gamma = Omega h pushes the turnover to smaller scales: at a
  // fixed mildly nonlinear k the high-Gamma spectrum retains more power
  // relative to its large-scale amplitude.
  PowerSpectrumParams a, b;
  a.omega_m = 1.0;
  a.h = 0.5;  // Gamma = 0.5
  b.omega_m = 0.3;
  b.h = 0.5;  // Gamma = 0.15
  const PowerSpectrum pa(a), pb(b);
  const double ka = 1.0;
  EXPECT_GT(pa.transfer(ka), pb.transfer(ka));
}

TEST(PowerSpectrum, Validation) {
  PowerSpectrumParams bad;
  bad.h = 0.0;
  EXPECT_THROW(PowerSpectrum{bad}, std::invalid_argument);
  bad = PowerSpectrumParams{};
  bad.sigma8 = -1.0;
  EXPECT_THROW(PowerSpectrum{bad}, std::invalid_argument);
  const PowerSpectrum ps(PowerSpectrumParams{});
  EXPECT_THROW((void)ps.sigma_tophat(0.0), std::invalid_argument);
}

}  // namespace
